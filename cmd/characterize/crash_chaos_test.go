package main

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"splash2/internal/runner"
)

// Kill-9 chaos proofs.
//
// Each case re-executes this test binary as a real characterize process
// with a crash rule armed at one injection point. The child dies by
// SIGKILL mid-sweep — no defers, no flushes — exactly as an operator's
// kill -9 would take it. The parent then restarts against the same cache
// directory with -resume and proves the crash-consistency contract:
// byte-identical results, no leaked leases or temp files, and a journal
// that still parses and names the dead run.

const (
	crashHelperEnv = "SPLASH2_CRASH_HELPER"
	crashArgsEnv   = "SPLASH2_CRASH_ARGS"
)

// TestCrashHelper is not a test: it is the child process body. When the
// helper env vars are set it runs the real CLI and exits with its code —
// unless the armed fault kills it first.
func TestCrashHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("crash helper: only runs re-executed")
	}
	args := strings.Split(os.Getenv(crashArgsEnv), "\n")
	os.Exit(run(args, os.Stdout, os.Stderr))
}

// chaosWorkload is the sweep every chaos case runs: two programs, two
// processor counts, JSON output (stable bytes for the identity check).
func chaosWorkload(cacheDir string) []string {
	return []string{
		"-apps", "fft,lu", "-p", "2", "-plist", "1,2",
		"-format", "json", "-cache-dir", cacheDir, "-lease-ttl", "2s",
	}
}

// runCrashChild re-executes the test binary as a characterize process.
// Safe from spawned goroutines: exec failures come back as an error, not
// a t.Fatal (which would strand the caller's channels).
func runCrashChild(args []string) (exitCode int, stdout, stderr string, fatal error) {
	exe, err := os.Executable()
	if err != nil {
		return 0, "", "", err
	}
	cmd := exec.Command(exe, "-test.run=^TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashHelperEnv+"=1",
		crashArgsEnv+"="+strings.Join(args, "\n"))
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			return 0, "", "", fmt.Errorf("crash child did not run: %w", err)
		}
		code = ee.ExitCode() // -1 when signal-killed
	}
	return code, out.String(), errb.String(), nil
}

// crashDebris lists leftover lease/temp artifacts under the cache dir.
func crashDebris(t *testing.T, cacheDir string) []string {
	t.Helper()
	var debris []string
	err := filepath.WalkDir(cacheDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasSuffix(name, ".lease") || strings.Contains(name, ".tmp") ||
			strings.Contains(name, ".reap-") {
			debris = append(debris, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return debris
}

// TestKill9Chaos: for each injection point, a real process is SIGKILLed
// mid-sweep, and a restart against the same cache directory must produce
// byte-identical results with all crash debris reclaimed.
func TestKill9Chaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real crashing processes")
	}

	// Baseline: the same workload run cleanly, for the identity check.
	baselineDir := t.TempDir()
	code, baseline, stderr := runCLI(t, chaosWorkload(baselineDir)...)
	if code != exitOK {
		t.Fatalf("baseline run exited %d: %s", code, stderr)
	}

	// One crash per distinct injection point, spanning every layer that
	// holds crash-sensitive state: mid-job, mid-store, lease acquisition
	// and the journal append path itself. The seed moves each crash to a
	// different occurrence (1–3), so the CI matrix kills the process at
	// different depths into the sweep; the workload has ≥4 jobs, puts and
	// lease acquisitions, so every occurrence exists.
	seed := 1
	if s := os.Getenv("CRASH_CHAOS_SEED"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			seed = n
		}
	}
	nth := func(i int) int { return 1 + (seed+i)%3 }
	faults := []string{
		fmt.Sprintf("crash@%d=job:*", nth(0)),
		fmt.Sprintf("crash@%d=cache.put:*", nth(1)),
		fmt.Sprintf("crash@%d=lease.acquire:*", nth(2)),
		fmt.Sprintf("crash@%d=journal.append", nth(3)),
	}
	for _, spec := range faults {
		spec := spec
		name := strings.NewReplacer("@", "_", "=", "_", ":", "_", "*", "x").Replace(spec)
		t.Run(name, func(t *testing.T) {
			cacheDir := t.TempDir()
			args := append(chaosWorkload(cacheDir), "-fault", spec)
			code, _, childErr, err := runCrashChild(args)
			if err != nil {
				t.Fatal(err)
			}
			// SIGKILL surfaces as -1 (signal) or 137 (the exit fallback).
			if code != -1 && code != 137 {
				t.Fatalf("crash child exited %d, want SIGKILL death (stderr: %s)", code, childErr)
			}
			if !strings.Contains(childErr, "fault: injected crash at") {
				t.Fatalf("child died but not by the armed fault: %s", childErr)
			}

			// Restart against the same cache dir: reclaim, then finish.
			restartArgs := append(chaosWorkload(cacheDir), "-resume")
			code, out, stderr := runCLI(t, restartArgs...)
			if code != exitOK {
				t.Fatalf("resumed run exited %d: %s", code, stderr)
			}
			if out != baseline {
				t.Errorf("resumed results differ from the clean run (%d vs %d bytes)", len(out), len(baseline))
			}

			// No leases, temp files or takeover debris may survive.
			if debris := crashDebris(t, cacheDir); len(debris) != 0 {
				t.Errorf("crash debris not reclaimed: %v", debris)
			}

			// Every journal parses; the dead run is identifiable (no
			// run.end) and was adopted exactly once; the resumed run's own
			// journal ended cleanly.
			journals, err := filepath.Glob(filepath.Join(runner.JournalDir(cacheDir), "*.jsonl"))
			if err != nil || len(journals) < 2 {
				t.Fatalf("expected crashed + resumed journals, got %v (err %v)", journals, err)
			}
			dead, ended := 0, 0
			for _, path := range journals {
				events, err := runner.ReadJournal(path)
				if err != nil {
					t.Errorf("journal %s corrupt after crash: %v", path, err)
					continue
				}
				s := runner.Summarize(path, events)
				switch {
				case s.Ended:
					ended++
				case s.Resumed:
					dead++
				default:
					t.Errorf("journal %s: dead but never adopted by the resume", path)
				}
			}
			if dead != 1 || ended != 1 {
				t.Errorf("journal census: %d dead-resumed, %d ended; want 1 and 1", dead, ended)
			}
		})
	}
}

// TestTwoProcessSharedCache: the multi-process acceptance proof — two
// real processes started together on one cold cache directory both
// succeed with identical bytes, and the work leases make them split or
// share the jobs rather than duplicate the expensive sweep blindly.
func TestTwoProcessSharedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	cacheDir := t.TempDir()
	type res struct {
		code   int
		stdout string
		stderr string
		err    error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, out, errb, err := runCrashChild(chaosWorkload(cacheDir))
			results <- res{code, out, errb, err}
		}()
	}
	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatalf("children did not run: %v / %v", a.err, b.err)
	}
	if a.code != exitOK || b.code != exitOK {
		t.Fatalf("concurrent runs exited %d and %d\n%s\n%s", a.code, b.code, a.stderr, b.stderr)
	}
	if a.stdout != b.stdout {
		t.Error("concurrent runs produced different bytes")
	}
	if debris := crashDebris(t, cacheDir); len(debris) != 0 {
		t.Errorf("clean concurrent runs leaked: %v", debris)
	}
	// Both journals must exist and have ended cleanly.
	sums := runner.ScanJournals(runner.JournalDir(cacheDir))
	if len(sums) != 2 {
		t.Fatalf("expected 2 journals, got %d", len(sums))
	}
	for _, s := range sums {
		if !s.Ended {
			t.Errorf("journal %s never ended", s.RunID)
		}
	}
}
