package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splash2"
)

// chaosArgs is a small, fast characterization every exit-code test
// builds on: one program, two processor counts, no disk cache.
func chaosArgs(extra ...string) []string {
	args := []string{"-apps", "fft", "-p", "2", "-plist", "1,2", "-no-cache", "-format", "json"}
	return append(args, extra...)
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "bogus"},
		{"-format", "bogus"},
		{"-plist", "1,2abc"},
		{"-no-cache", "-cache-dir", "/tmp/x"},
		{"-fault", "explode=job:*"},
		{"-badflag"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != exitUsage {
			t.Errorf("run(%q) = %d, want %d (stderr: %s)", args, code, exitUsage, stderr)
		}
	}
}

func TestExitClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, chaosArgs()...)
	if code != exitOK {
		t.Fatalf("clean run exited %d, want %d (stderr: %s)", code, exitOK, stderr)
	}
	var res splash2.Results
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("clean run reports failures: %+v", res.Failures)
	}
	if len(res.Table1) == 0 || res.Table1[0].App != "fft" {
		t.Fatalf("results missing table1 rows: %+v", res.Table1)
	}
}

func TestExitDegradedWithManifest(t *testing.T) {
	manifestPath := filepath.Join(t.TempDir(), "failures.json")
	code, stdout, stderr := runCLI(t, chaosArgs(
		"-keep-going",
		"-fault", "error@1=job:*",
		"-failures", manifestPath,
	)...)
	if code != exitDegraded {
		t.Fatalf("degraded run exited %d, want %d (stderr: %s)", code, exitDegraded, stderr)
	}
	if !strings.Contains(stderr, "experiment(s) lost") {
		t.Errorf("stderr does not summarize the damage: %s", stderr)
	}

	// Partial results still export, with the lost experiments listed.
	var res splash2.Results
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("degraded run exported no failure records")
	}

	// The -failures manifest is on disk and consistent with the export.
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("failure manifest not written: %v", err)
	}
	var m splash2.FailureManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Count == 0 || m.Count != len(m.Failures) {
		t.Fatalf("manifest count inconsistent: %+v", m)
	}
	for _, rec := range m.Failures {
		if rec.Skipped {
			continue
		}
		if !strings.Contains(rec.Cause, "injected fault") {
			t.Errorf("failure %q has cause %q, want the injected fault", rec.Label, rec.Cause)
		}
	}
}

func TestExitRuntimeOnFailFastFault(t *testing.T) {
	code, _, stderr := runCLI(t, chaosArgs("-fault", "error@1=job:*")...)
	if code != exitRuntime {
		t.Fatalf("fail-fast faulted run exited %d, want %d (stderr: %s)", code, exitRuntime, stderr)
	}
	if !strings.Contains(stderr, "injected fault") {
		t.Errorf("stderr does not surface the injected fault: %s", stderr)
	}
}

func TestCleanRunWritesNoManifestFile(t *testing.T) {
	manifestPath := filepath.Join(t.TempDir(), "failures.json")
	code, _, stderr := runCLI(t, chaosArgs("-keep-going", "-failures", manifestPath)...)
	if code != exitOK {
		t.Fatalf("clean keep-going run exited %d (stderr: %s)", code, stderr)
	}
	if _, err := os.Stat(manifestPath); !os.IsNotExist(err) {
		t.Fatalf("clean run left a manifest file (stat err: %v)", err)
	}
}
