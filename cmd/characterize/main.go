// Command characterize regenerates the paper's evaluation — Table 1,
// Figures 1–8, Tables 2–3 — on the simulated multiprocessor and prints
// them as text tables (the same rows/series the paper reports).
//
// Usage:
//
//	characterize                      # full suite, sweep-scale problems, 32 procs
//	characterize -scale default       # default (larger) problem sizes
//	characterize -scale paper         # the paper's published sizes (slow)
//	characterize -apps fft,lu -p 16
//	characterize -all-assocs          # Figure 3 with 1/2/4-way and full
//	characterize -plot                # ASCII charts alongside the tables
//	characterize -format json|csv     # machine-readable results
//	characterize -j 8                 # run experiments on 8 workers
//	characterize -no-cache            # skip the on-disk result cache
//	characterize -progress            # live per-experiment progress on stderr
//	characterize -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Results are cached on disk under <user cache dir>/splash2 (override
// with -cache-dir), keyed by program, options, machine configuration and
// suite version, so repeated runs only execute what changed. Note that a
// cached run executes no experiments, so when profiling pair the flags
// with -no-cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"splash2"
)

// parseProcList parses a comma-separated list of processor counts,
// rejecting anything that is not a whole positive integer (Sscanf-style
// parsing would silently accept trailing junk like "8abc"). The result
// is deduplicated and sorted ascending so sweeps are well-ordered.
func parseProcList(s string) ([]int, error) {
	seen := make(map[int]bool)
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		p, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -plist entry %q: not an integer", f)
		}
		if p < 1 {
			return nil, fmt.Errorf("bad -plist entry %q: must be ≥ 1", f)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out, nil
}

func main() {
	// All work happens in run so that deferred profile writers execute
	// before the process exits (os.Exit skips defers).
	os.Exit(run())
}

func run() int {
	var (
		appsFlag   = flag.String("apps", "", "comma-separated subset (default: full suite)")
		procs      = flag.Int("p", 32, "processors for fixed-count experiments")
		procList   = flag.String("plist", "1,2,4,8,16,32", "processor counts for scaling sweeps")
		scaleName  = flag.String("scale", "sweep", `problem sizes: "sweep", "default" or "paper"`)
		allAssocs  = flag.Bool("all-assocs", false, "Figure 3 with all associativities")
		plot       = flag.Bool("plot", false, "render ASCII charts alongside the tables")
		format     = flag.String("format", "text", `output format: "text", "json" or "csv"`)
		workers    = flag.Int("j", 0, "experiment-level parallelism (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "result cache directory (default: <user cache dir>/splash2)")
		noCache    = flag.Bool("no-cache", false, "disable the on-disk result cache")
		progress   = flag.Bool("progress", false, "live per-experiment progress on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	o := splash2.ReportOptions{Procs: *procs, AllAssocs: *allAssocs, Plot: *plot, Workers: *workers}
	if *appsFlag != "" {
		o.Apps = strings.Split(*appsFlag, ",")
	}
	var err error
	if o.ProcList, err = parseProcList(*procList); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		return 2
	}
	switch *scaleName {
	case "sweep":
		o.Scale = splash2.SweepScale
	case "default":
		o.Scale = splash2.DefaultScale
	case "paper":
		o.Scale = splash2.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "characterize: unknown scale %q\n", *scaleName)
		return 2
	}
	switch {
	case *noCache:
		if *cacheDir != "" {
			fmt.Fprintln(os.Stderr, "characterize: -no-cache and -cache-dir are mutually exclusive")
			return 2
		}
	case *cacheDir != "":
		o.CacheDir = *cacheDir
	default:
		dir, err := splash2.DefaultCacheDir()
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize: no user cache dir, running uncached:", err)
		} else {
			o.CacheDir = dir
		}
	}
	if *progress {
		o.Progress = os.Stderr
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "characterize:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "characterize:", err)
			}
		}()
	}

	switch *format {
	case "text":
		if err := splash2.Characterize(os.Stdout, o); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			return 1
		}
	case "json", "csv":
		res, err := splash2.CollectResults(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			return 1
		}
		if *format == "json" {
			err = res.WriteJSON(os.Stdout)
		} else {
			err = res.WriteCSV(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "characterize: unknown format %q\n", *format)
		return 2
	}
	return 0
}
