// Command characterize regenerates the paper's evaluation — Table 1,
// Figures 1–8, Tables 2–3 — on the simulated multiprocessor and prints
// them as text tables (the same rows/series the paper reports).
//
// Usage:
//
//	characterize                      # full suite, sweep-scale problems, 32 procs
//	characterize -scale default       # default (larger) problem sizes
//	characterize -apps fft,lu -p 16
//	characterize -all-assocs          # Figure 3 with 1/2/4-way and full
//	characterize -plot                # ASCII charts alongside the tables
//	characterize -format json|csv     # machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"splash2"
)

func main() {
	var (
		appsFlag  = flag.String("apps", "", "comma-separated subset (default: full suite)")
		procs     = flag.Int("p", 32, "processors for fixed-count experiments")
		procList  = flag.String("plist", "1,2,4,8,16,32", "processor counts for scaling sweeps")
		scaleName = flag.String("scale", "sweep", `problem sizes: "sweep" or "default"`)
		allAssocs = flag.Bool("all-assocs", false, "Figure 3 with all associativities")
		plot      = flag.Bool("plot", false, "render ASCII charts alongside the tables")
		format    = flag.String("format", "text", `output format: "text", "json" or "csv"`)
	)
	flag.Parse()

	o := splash2.ReportOptions{Procs: *procs, AllAssocs: *allAssocs, Plot: *plot}
	if *appsFlag != "" {
		o.Apps = strings.Split(*appsFlag, ",")
	}
	for _, f := range strings.Split(*procList, ",") {
		var p int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &p); err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "characterize: bad -plist entry %q\n", f)
			os.Exit(2)
		}
		o.ProcList = append(o.ProcList, p)
	}
	switch *scaleName {
	case "sweep":
		o.Scale = splash2.SweepScale
	case "default":
		o.Scale = splash2.DefaultScale
	default:
		fmt.Fprintf(os.Stderr, "characterize: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	switch *format {
	case "text":
		if err := splash2.Characterize(os.Stdout, o); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
	case "json", "csv":
		res, err := splash2.CollectResults(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		if *format == "json" {
			err = res.WriteJSON(os.Stdout)
		} else {
			err = res.WriteCSV(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "characterize: unknown format %q\n", *format)
		os.Exit(2)
	}
}
