// Command characterize regenerates the paper's evaluation — Table 1,
// Figures 1–8, Tables 2–3 — on the simulated multiprocessor and prints
// them as text tables (the same rows/series the paper reports).
//
// Usage:
//
//	characterize                      # full suite, sweep-scale problems, 32 procs
//	characterize -scale default       # default (larger) problem sizes
//	characterize -scale paper         # the paper's published sizes (slow)
//	characterize -apps fft,lu -p 16
//	characterize -mode record-replay  # trace each program once, replay per config
//	characterize -all-assocs          # Figure 3 with 1/2/4-way and full
//	characterize -sample-rate 0.01    # add the SHARDS-sampled working-set estimate
//	characterize -sample-seed 7       # … with a different spatial-hash seed
//	characterize -plot                # ASCII charts alongside the tables
//	characterize -format json|csv     # machine-readable results
//	characterize -j 8                 # run experiments on 8 workers
//	characterize -no-cache            # skip the on-disk result cache
//	characterize -progress            # live per-experiment progress on stderr
//	characterize -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Fault tolerance:
//
//	characterize -keep-going          # complete past failed experiments
//	characterize -timeout 5m          # bound each experiment attempt
//	characterize -retries 2           # retry transiently failing experiments
//	characterize -failures fail.json  # write the JSON failure manifest
//	characterize -fault 'error@2=job:run fft*' -fault-seed 7   # chaos drill
//
// Crash safety and multi-process sharing:
//
//	characterize -resume              # reclaim a crashed run, then re-run (cache hits are the resume)
//	characterize -deadline 10m        # whole-run deadline; doomed work cancelled promptly
//	characterize -lease-ttl 10s      # cross-process work-lease expiry (0 disables leases)
//	characterize -no-journal          # skip the durable run journal
//
// Runs that share a cache directory hold per-experiment work leases, so
// two concurrent processes execute each expensive job once and the loser
// adopts the winner's stored result. Every run appends a journal under
// <cache-dir>/journal; after a kill -9, -resume reports what the dead
// run finished and sweeps its stale leases and temp files.
//
// Under -keep-going the run completes past failures: lost rows render as
// FAILED(label: cause) placeholders, the failure manifest summarizes the
// damage, and the process exits with status 2 instead of 0.
//
// Exit status: 0 — clean completion; 1 — usage error; 2 — completed
// with failures (-keep-going); 3 — runtime error.
//
// Results are cached on disk under <user cache dir>/splash2 (override
// with -cache-dir), keyed by program, options, machine configuration and
// suite version, so repeated runs only execute what changed. Note that a
// cached run executes no experiments, so when profiling pair the flags
// with -no-cache.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"splash2"
	"splash2/internal/cli"
)

// Exit statuses (shared with splashd via internal/cli): clean
// completion, bad usage, degraded completion under -keep-going, hard
// runtime error.
const (
	exitOK       = cli.ExitOK
	exitUsage    = cli.ExitUsage
	exitDegraded = cli.ExitDegraded
	exitRuntime  = cli.ExitRuntime
)

func main() {
	// All work happens in run so that deferred profile writers execute
	// before the process exits (os.Exit skips defers).
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		appsFlag   = fs.String("apps", "", "comma-separated subset (default: full suite)")
		procs      = fs.Int("p", 32, "processors for fixed-count experiments")
		procList   = fs.String("plist", "1,2,4,8,16,32", "processor counts for scaling sweeps")
		scaleName  = fs.String("scale", "sweep", `problem sizes: "sweep", "default" or "paper"`)
		modeName   = fs.String("mode", "live", `full-memory execution: "live" (inline simulation) or "record-replay" (trace once, replay per configuration)`)
		spill      = fs.Bool("spill-traces", false, "stream recorded traces to on-disk v2 containers and replay out of core")
		allAssocs  = fs.Bool("all-assocs", false, "Figure 3 with all associativities")
		sampleRate = fs.Float64("sample-rate", 0, "add the SHARDS-sampled working-set estimate at this rate, (0, 1] (0 = off)")
		sampleSeed = fs.Uint64("sample-seed", 1, "spatial-hash seed of the sampled estimator")
		plot       = fs.Bool("plot", false, "render ASCII charts alongside the tables")
		format     = fs.String("format", "text", `output format: "text", "json" or "csv"`)
		workers    = fs.Int("j", 0, "experiment-level parallelism (0 = GOMAXPROCS)")
		cacheDir   = fs.String("cache-dir", "", "result cache directory (default: <user cache dir>/splash2)")
		noCache    = fs.Bool("no-cache", false, "disable the on-disk result cache")
		progress   = fs.Bool("progress", false, "live per-experiment progress on stderr")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")

		resume       = fs.Bool("resume", false, "reclaim crashed runs in the cache dir (report dead journals, sweep stale leases/temps) before running")
		deadline     = fs.Duration("deadline", 0, "whole-run deadline; doomed work is cancelled promptly (0 = none)")
		leaseTTL     = fs.Duration("lease-ttl", splash2.DefaultLeaseTTL, "cross-process work-lease expiry; concurrent runs sharing the cache dir coalesce jobs (0 disables)")
		noJournal    = fs.Bool("no-journal", false, "disable the durable run journal under <cache-dir>/journal")
		keepGoing    = fs.Bool("keep-going", false, "complete past failed experiments (exit 2, FAILED placeholders)")
		timeout      = fs.Duration("timeout", 0, "per-experiment attempt timeout (0 = none)")
		retries      = fs.Int("retries", 0, "extra attempts for transiently failing experiments")
		retryBackoff = fs.Duration("retry-backoff", 0, "first-retry delay, doubling per retry (0 = default)")
		failuresOut  = fs.String("failures", "", "write the JSON failure manifest to this file (-keep-going)")
		faultSpec    = fs.String("fault", "", `inject deterministic faults: "action[(arg)][@nth]=pattern;..."`)
		faultSeed    = fs.Int64("fault-seed", 1, "seed choosing the occurrence of @-nth fault rules")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	o := splash2.ReportOptions{
		Procs: *procs, AllAssocs: *allAssocs, Plot: *plot, Workers: *workers,
		KeepGoing: *keepGoing, Timeout: *timeout, Retries: *retries, RetryBackoff: *retryBackoff,
		SpillTraces: *spill, Deadline: *deadline, NoJournal: *noJournal,
		SampleRate: *sampleRate, SampleSeed: *sampleSeed,
	}
	if *sampleRate < 0 || *sampleRate > 1 {
		fmt.Fprintf(stderr, "characterize: -sample-rate %v out of range (0, 1]\n", *sampleRate)
		return exitUsage
	}
	if *leaseTTL <= 0 {
		o.LeaseTTL = -1 // user asked for no leases
	} else {
		o.LeaseTTL = *leaseTTL
	}
	if *appsFlag != "" {
		o.Apps = strings.Split(*appsFlag, ",")
	}
	var err error
	if o.ProcList, err = cli.ParseProcList(*procList); err != nil {
		fmt.Fprintln(stderr, "characterize:", err)
		return exitUsage
	}
	if o.Scale, err = cli.ParseScale(*scaleName); err != nil {
		fmt.Fprintln(stderr, "characterize:", err)
		return exitUsage
	}
	if o.ExecMode, err = cli.ParseExecMode(*modeName); err != nil {
		fmt.Fprintln(stderr, "characterize:", err)
		return exitUsage
	}
	switch {
	case *noCache:
		if *cacheDir != "" {
			fmt.Fprintln(stderr, "characterize: -no-cache and -cache-dir are mutually exclusive")
			return exitUsage
		}
	case *cacheDir != "":
		o.CacheDir = *cacheDir
	default:
		dir, err := splash2.DefaultCacheDir()
		if err != nil {
			fmt.Fprintln(stderr, "characterize: no user cache dir, running uncached:", err)
		} else {
			o.CacheDir = dir
		}
	}
	if *resume {
		if o.CacheDir == "" {
			fmt.Fprintln(stderr, "characterize: -resume requires a cache directory")
			return exitUsage
		}
		rep, err := splash2.Resume(o.CacheDir, *leaseTTL)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return exitRuntime
		}
		rep.Render(stderr)
	}
	if *progress {
		o.Progress = stderr
	}
	if *faultSpec != "" {
		rules, err := splash2.ParseFaultRules(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return exitUsage
		}
		o.Fault = splash2.NewFaultInjector(*faultSeed, rules...)
	}
	// The manifest is buffered and written to -failures only when the run
	// actually lost experiments, so a clean run leaves no empty file.
	var manifest bytes.Buffer
	if *failuresOut != "" {
		o.ManifestOut = &manifest
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return exitRuntime
		}
		// Stop the profiler before closing so the profile's trailing
		// bytes are flushed, and surface the close error: a silently
		// truncated profile misleads whoever reads it.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "characterize: closing cpu profile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return exitRuntime
		}
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "characterize:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "characterize:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "characterize: closing heap profile:", err)
			}
		}()
	}

	var runErr error
	switch *format {
	case "text":
		runErr = splash2.Characterize(stdout, o)
	case "json", "csv":
		var res *splash2.Results
		res, runErr = splash2.CollectResults(o)
		if runErr != nil && !errors.Is(runErr, splash2.ErrFailures) {
			break
		}
		if o.ManifestOut != nil && len(res.Failures) > 0 {
			m := splash2.FailureManifest{Count: len(res.Failures), Failures: res.Failures}
			if err := m.WriteJSON(&manifest); err != nil {
				fmt.Fprintln(stderr, "characterize:", err)
				return exitRuntime
			}
		}
		var werr error
		if *format == "json" {
			werr = res.WriteJSON(stdout)
		} else {
			werr = res.WriteCSV(stdout)
		}
		if werr != nil {
			fmt.Fprintln(stderr, "characterize:", werr)
			return exitRuntime
		}
	default:
		fmt.Fprintf(stderr, "characterize: unknown format %q\n", *format)
		return exitUsage
	}

	if *failuresOut != "" && manifest.Len() > 0 {
		if err := os.WriteFile(*failuresOut, manifest.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return exitRuntime
		}
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "characterize:", runErr)
	}
	return cli.ExitCode(runErr)
}
