package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splash2/internal/cli"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// recordTo records a small fft trace into dir and returns its path.
func recordTo(t *testing.T, dir, format string) string {
	t.Helper()
	path := filepath.Join(dir, "fft."+format)
	code, _, stderr := runCLI(t, "record", "-app", "fft", "-p", "2", "-opt", "n=64", "-o", path, "-format", format)
	if code != cli.ExitOK {
		t.Fatalf("record exited %d: %s", code, stderr)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"record"}, // -app and -o required
		{"record", "-app", "fft", "-o", "x", "-format", "v3"},
		{"record", "-badflag"},
		{"replay"},             // -i required
		{"info"},               // -i required
		{"convert", "-i", "x"}, // -o required
		{"convert", "-i", "x", "-o", "y", "-to", "v9"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != cli.ExitUsage {
			t.Errorf("run(%q) = %d, want %d", args, code, cli.ExitUsage)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("this is not a trace container"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"record", "-app", "no-such-program", "-o", filepath.Join(dir, "x")},
		{"replay", "-i", filepath.Join(dir, "missing.trace")},
		{"replay", "-i", garbage},
		{"info", "-i", garbage},
		{"convert", "-i", garbage, "-o", filepath.Join(dir, "y")},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != cli.ExitRuntime {
			t.Errorf("run(%q) = %d, want %d", args, code, cli.ExitRuntime)
		}
		if !strings.Contains(stderr, "trace:") {
			t.Errorf("run(%q) stderr lacks a descriptive error: %q", args, stderr)
		}
	}
}

// TestStreamReplayMatchesInMemory pins the out-of-core promise at the
// CLI surface: replaying a v2 container with -stream prints exactly the
// bytes of the in-memory replay, for both the single-configuration and
// sweep paths.
func TestStreamReplayMatchesInMemory(t *testing.T) {
	v2 := recordTo(t, t.TempDir(), "v2")

	for _, extra := range [][]string{
		{"-cache", "16384", "-assoc", "2"},
		{"-sweep"},
	} {
		mem := append([]string{"replay", "-i", v2}, extra...)
		str := append(append([]string{"replay", "-i", v2}, extra...), "-stream")
		code, memOut, stderr := runCLI(t, mem...)
		if code != cli.ExitOK {
			t.Fatalf("in-memory replay exited %d: %s", code, stderr)
		}
		code, strOut, stderr := runCLI(t, str...)
		if code != cli.ExitOK {
			t.Fatalf("streaming replay exited %d: %s", code, stderr)
		}
		if memOut != strOut {
			t.Errorf("streaming replay diverges for %q:\n got %s\nwant %s", extra, strOut, memOut)
		}
	}
}

// TestReplayWindow: -window restricts replay to an epoch range, agrees
// between in-memory and streaming paths, differs from the full replay,
// and rejects malformed ranges.
func TestReplayWindow(t *testing.T) {
	v2 := recordTo(t, t.TempDir(), "v2")

	args := []string{"replay", "-i", v2, "-cache", "16384", "-assoc", "2", "-window", "0:1"}
	code, memOut, stderr := runCLI(t, args...)
	if code != cli.ExitOK {
		t.Fatalf("windowed replay exited %d: %s", code, stderr)
	}
	code, strOut, stderr := runCLI(t, append(args, "-stream")...)
	if code != cli.ExitOK {
		t.Fatalf("windowed streaming replay exited %d: %s", code, stderr)
	}
	if memOut != strOut {
		t.Errorf("windowed streaming replay diverges:\n got %s\nwant %s", strOut, memOut)
	}
	code, fullOut, stderr := runCLI(t, "replay", "-i", v2, "-cache", "16384", "-assoc", "2")
	if code != cli.ExitOK {
		t.Fatalf("full replay exited %d: %s", code, stderr)
	}
	if fullOut == memOut {
		t.Errorf("epoch window 0:1 replayed the same references as the full trace:\n%s", memOut)
	}

	for _, bad := range []string{"nope", "1", "1:0", "-2:3", ":"} {
		if code, _, _ := runCLI(t, "replay", "-i", v2, "-window", bad); code != cli.ExitUsage {
			t.Errorf("-window %q exited %d, want %d", bad, code, cli.ExitUsage)
		}
	}
}

// TestStreamReplayRejectsV1 gives the v1-specific guidance rather than
// a generic magic error.
func TestStreamReplayRejectsV1(t *testing.T) {
	v1 := recordTo(t, t.TempDir(), "v1")
	code, _, stderr := runCLI(t, "replay", "-i", v1, "-stream")
	if code != cli.ExitRuntime {
		t.Fatalf("streaming a v1 trace exited %d, want %d", code, cli.ExitRuntime)
	}
	if !strings.Contains(stderr, "convert") {
		t.Errorf("error does not point at trace convert: %s", stderr)
	}
}

// TestConvertRoundTrip: v1 → v2 → v1 must reproduce the original flat
// bytes exactly, and every form must replay identically.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v1 := recordTo(t, dir, "v1")
	v2 := filepath.Join(dir, "fft.sp2t")
	back := filepath.Join(dir, "fft.back.trace")

	if code, _, stderr := runCLI(t, "convert", "-i", v1, "-o", v2); code != cli.ExitOK {
		t.Fatalf("convert to v2 exited %d: %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "convert", "-i", v2, "-o", back, "-to", "v1"); code != cli.ExitOK {
		t.Fatalf("convert back to v1 exited %d: %s", code, stderr)
	}

	orig, err := os.ReadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	round, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, round) {
		t.Fatalf("v1 → v2 → v1 round trip changed the bytes: %d vs %d", len(orig), len(round))
	}

	fi1, err := os.Stat(v1)
	if err != nil {
		t.Fatal(err)
	}
	fi2, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() >= fi1.Size() {
		t.Errorf("v2 container (%d bytes) is not smaller than flat v1 (%d bytes)", fi2.Size(), fi1.Size())
	}

	code, v1Out, stderr := runCLI(t, "replay", "-i", v1, "-sweep")
	if code != cli.ExitOK {
		t.Fatalf("v1 replay exited %d: %s", code, stderr)
	}
	code, v2Out, stderr := runCLI(t, "replay", "-i", v2, "-sweep")
	if code != cli.ExitOK {
		t.Fatalf("v2 replay exited %d: %s", code, stderr)
	}
	if v1Out != v2Out {
		t.Errorf("v2 replay diverges from v1:\n got %s\nwant %s", v2Out, v1Out)
	}
}

// TestInfoReportsBothFormats: info prints counts for either container,
// with the block shape only for v2.
func TestInfoReportsBothFormats(t *testing.T) {
	dir := t.TempDir()
	v1 := recordTo(t, dir, "v1")
	v2 := recordTo(t, dir, "v2")

	code, out, stderr := runCLI(t, "info", "-i", v1)
	if code != cli.ExitOK {
		t.Fatalf("info v1 exited %d: %s", code, stderr)
	}
	for _, want := range []string{"format          v1", "events", "processors      2", "bytes/reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("v1 info lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "blocks") {
		t.Errorf("v1 info reports a block index:\n%s", out)
	}

	code, out, stderr = runCLI(t, "info", "-i", v2)
	if code != cli.ExitOK {
		t.Fatalf("info v2 exited %d: %s", code, stderr)
	}
	for _, want := range []string{"format          v2", "blocks", "events/block", "bytes/block", "epochs"} {
		if !strings.Contains(out, want) {
			t.Errorf("v2 info lacks %q:\n%s", want, out)
		}
	}
}

// TestStreamFaultInjection drills the block-read fault point from the
// CLI: an injected error surfaces as a descriptive runtime failure.
func TestStreamFaultInjection(t *testing.T) {
	v2 := recordTo(t, t.TempDir(), "v2")
	code, _, stderr := runCLI(t,
		"replay", "-i", v2, "-stream", "-fault", "error@2=trace.read.block:*")
	if code != cli.ExitRuntime {
		t.Fatalf("fault-injected replay exited %d, want %d (stderr: %s)", code, cli.ExitRuntime, stderr)
	}
	if !strings.Contains(stderr, "injected") {
		t.Errorf("stderr does not surface the injected fault: %s", stderr)
	}
}
