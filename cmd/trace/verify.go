package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"splash2/internal/cli"
	"splash2/internal/memsys"
)

// trace verify: integrity audit for stored containers.
//
// Spilled traces are reused across processes and survive crashes, so a
// reader must be able to prove a file is intact before replaying it.
// verify performs the full check offline: the SHA-256 the sidecar
// records must match the container bytes, and every block must decode
// with a header that agrees with the index footer (the same
// cross-checks the streaming replayer applies lazily, applied eagerly
// to the whole file). Exit 0 means every container checked out; exit 3
// reports the damaged ones.

// sidecarSum is the slice of the engine's sidecar JSON verify needs.
type sidecarSum struct {
	TraceSum string `json:"traceSum"`
}

func verify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "trace container to verify")
	dir := fs.String("dir", "", "spill directory: verify every container/sidecar pair in it")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if (*in == "") == (*dir == "") {
		fmt.Fprintln(stderr, "trace verify: exactly one of -i or -dir required")
		return cli.ExitUsage
	}

	var files []string
	if *in != "" {
		files = []string{*in}
	} else {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return fail(stderr, err)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".sp2t") {
				files = append(files, filepath.Join(*dir, e.Name()))
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			fmt.Fprintf(stdout, "verify: no containers under %s\n", *dir)
			return cli.ExitOK
		}
	}

	bad := 0
	for _, path := range files {
		desc, err := verifyContainer(path)
		if err != nil {
			fmt.Fprintf(stderr, "trace verify: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "verify: %s ok (%s)\n", path, desc)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "trace verify: %d of %d container(s) failed\n", bad, len(files))
		return cli.ExitRuntime
	}
	return cli.ExitOK
}

// verifyContainer checks one container end to end and describes what
// was proven ("sidecar sha256 + 214 blocks", "no sidecar, 12 blocks").
func verifyContainer(path string) (string, error) {
	var proofs []string

	// Sidecar first: the recorded SHA-256 must match the container
	// bytes. A missing sidecar is reported but not fatal for a bare -i
	// file (containers written by `trace record` have none); inside a
	// spill dir the engine always writes the pair, and a lone container
	// there would already have been reaped by the orphan sweep.
	sidecar := path + ".json"
	if data, err := os.ReadFile(sidecar); err == nil {
		var sc sidecarSum
		if err := json.Unmarshal(data, &sc); err != nil {
			return "", fmt.Errorf("sidecar %s: %v", sidecar, err)
		}
		sum, err := fileSHA256(path)
		if err != nil {
			return "", err
		}
		if sc.TraceSum != sum {
			return "", fmt.Errorf("sidecar sha256 mismatch: container %s, sidecar records %s", sum, sc.TraceSum)
		}
		proofs = append(proofs, "sidecar sha256")
	} else {
		proofs = append(proofs, "no sidecar")
	}

	format, err := sniffFormat(path)
	if err != nil {
		return "", err
	}
	if format == "v1" {
		// Flat streams have no per-block structure: a full decode is the
		// strongest check available.
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		tr, err := memsys.ReadTrace(f)
		f.Close()
		if err != nil {
			return "", err
		}
		proofs = append(proofs, fmt.Sprintf("v1 full decode, %d events", tr.Len()))
		return strings.Join(proofs, " + "), nil
	}

	// v2: decode every block independently. DecodeBlock cross-checks
	// each block's own header against the index footer (proc, epoch,
	// event count, payload length, address bound); on top of that the
	// footer's totals must agree with the sum of its entries.
	tf, err := memsys.OpenTraceFile(path, nil)
	if err != nil {
		return "", err
	}
	defer tf.Close()
	index := tf.Index()
	var refs, markers uint64
	for i := range index {
		if _, err := tf.DecodeBlock(i); err != nil {
			return "", err
		}
		if index[i].Marker {
			markers++
		} else {
			refs += uint64(index[i].Events)
		}
	}
	meta := tf.Meta()
	if refs != meta.Refs || markers != meta.Markers {
		return "", fmt.Errorf("index footer totals (refs=%d markers=%d) disagree with block sum (refs=%d markers=%d)",
			meta.Refs, meta.Markers, refs, markers)
	}
	proofs = append(proofs, fmt.Sprintf("%d blocks, %d events", len(index), refs+markers))
	return strings.Join(proofs, " + "), nil
}

// fileSHA256 hashes a file's contents to lowercase hex.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
