// Command trace records a SPLASH-2 program's global reference stream to a
// file, replays stored traces through arbitrary cache configurations —
// the execution-driven methodology (reference generator feeding a memory
// system simulator) as a standalone workflow — and inspects or converts
// the stored containers.
//
// Usage:
//
//	trace record -app fft -p 32 -o fft.sp2t [-opt n=4096]
//	trace record -app fft -p 32 -o fft.trace -format v1
//	trace replay -i fft.sp2t -cache 65536 -assoc 2 -line 64
//	trace replay -i fft.sp2t -sweep          # full Figure-3 cache sweep
//	trace replay -i fft.sp2t -sweep -stream  # out-of-core: blocks stream from disk
//	trace replay -i fft.sp2t -stream -window 1:2  # epochs 1-2 only; other blocks never decoded
//	trace info -i fft.sp2t                   # counts, bytes/reference, block shape
//	trace convert -i fft.trace -o fft.sp2t   # v1 → v2 (and -to v1 for the reverse)
//	trace verify -i fft.sp2t                 # decode every block, check the sidecar hash
//	trace verify -dir ~/.cache/splash2/traces  # audit a whole spill directory
//
// Traces come in two formats: the flat v1 stream (one packed word per
// event) and the columnar v2 container (delta-compressed per-processor
// blocks plus an index footer; see internal/README.md). record writes
// v2 by default; replay reads either, and with -stream replays a v2
// container without ever materializing the event array.
//
// Replay can inject deterministic read faults to drill the decoder's
// failure handling (a truncated stream fails with a descriptive error,
// never a panic):
//
//	trace replay -i fft.trace -fault 'shortread(100)=trace.read'
//	trace replay -i fft.sp2t -stream -fault 'error@3=trace.read.block:*'
//
// Exit status: 0 — clean completion; 1 — usage error; 3 — runtime
// error (unreadable input, corrupt container, failed simulation).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"splash2"
	"splash2/internal/cli"
	"splash2/internal/memsys"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return cli.ExitUsage
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout, stderr)
	case "replay":
		return replay(args[1:], stdout, stderr)
	case "info":
		return info(args[1:], stdout, stderr)
	case "convert":
		return convert(args[1:], stdout, stderr)
	case "verify":
		return verify(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return cli.ExitUsage
	}
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: trace record|replay|info|convert|verify [flags]")
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "trace:", err)
	return cli.ExitRuntime
}

type optFlags map[string]int

func (o optFlags) String() string { return fmt.Sprint(map[string]int(o)) }

func (o optFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	o[k] = n
	return nil
}

// writeTrace serializes tr to path in the requested format, returning
// the byte count.
func writeTrace(tr *splash2.Trace, path, format string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	var n int64
	switch format {
	case "v1":
		n, err = tr.WriteTo(f)
	case "v2":
		n, err = tr.WriteV2(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

func record(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "", "program to record")
	procs := fs.Int("p", 32, "processors")
	out := fs.String("o", "", "output trace file")
	format := fs.String("format", "v2", `container format: "v2" (columnar blocks) or "v1" (flat stream)`)
	opts := optFlags{}
	fs.Var(opts, "opt", "program option override key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *app == "" || *out == "" {
		fmt.Fprintln(stderr, "trace record: -app and -o required")
		return cli.ExitUsage
	}
	if *format != "v1" && *format != "v2" {
		fmt.Fprintf(stderr, "trace record: unknown -format %q (want v1 or v2)\n", *format)
		return cli.ExitUsage
	}

	tr, st, err := splash2.RecordTrace(*app, *procs, opts)
	if err != nil {
		return fail(stderr, err)
	}
	n, err := writeTrace(tr, *out, *format)
	if err != nil {
		return fail(stderr, err)
	}
	a := splash2.AggregateCounters(st.Procs)
	fmt.Fprintf(stdout, "recorded %s: %d references (%d instructions) → %s (%d bytes, %s)\n",
		*app, tr.Len(), a.Instr, *out, n, *format)
	return cli.ExitOK
}

// openSource opens a trace for replay: in-memory decode by default, or
// an out-of-core TraceFile when stream is set (v2 containers only).
// The caller owns the returned closer (a no-op for the in-memory path).
func openSource(path string, stream bool, inj *splash2.FaultInjector) (splash2.TraceSource, io.Closer, error) {
	if stream {
		tf, err := memsys.OpenTraceFile(path, inj)
		if err != nil {
			return nil, nil, err
		}
		return tf, tf, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if err := inj.Do(nil, "trace.read"); err != nil {
		return nil, nil, err
	}
	tr, err := memsys.ReadTrace(inj.Reader("trace.read", f))
	if err != nil {
		return nil, nil, err
	}
	return tr, io.NopCloser(nil), nil
}

func replay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace file")
	cache := fs.Int("cache", 1<<20, "cache size in bytes")
	assoc := fs.Int("assoc", 4, "associativity (0 = fully associative)")
	line := fs.Int("line", 64, "line size in bytes")
	procs := fs.Int("p", 0, "replay processors (default: trace's max + 1)")
	sweep := fs.Bool("sweep", false, "replay the full 1K-1M cache-size sweep")
	stream := fs.Bool("stream", false, "stream a v2 container from disk instead of decoding it into memory")
	window := fs.String("window", "", `replay only epochs [start, start+len) as "start:len" (streaming skips out-of-range blocks)`)
	workers := fs.Int("j", 0, "sweep parallelism (0 = GOMAXPROCS)")
	faultSpec := fs.String("fault", "", `inject read faults: "action[(arg)][@nth]=trace.read;..."`)
	faultSeed := fs.Int64("fault-seed", 1, "seed choosing the occurrence of @-nth fault rules")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *in == "" {
		fmt.Fprintln(stderr, "trace replay: -i required")
		return cli.ExitUsage
	}
	var inj *splash2.FaultInjector
	if *faultSpec != "" {
		rules, err := splash2.ParseFaultRules(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "trace replay:", err)
			return cli.ExitUsage
		}
		inj = splash2.NewFaultInjector(*faultSeed, rules...)
	}

	src, closer, err := openSource(*in, *stream, inj)
	if err != nil {
		return fail(stderr, err)
	}
	defer closer.Close()
	if *window != "" {
		lo, n, err := parseWindow(*window)
		if err != nil {
			fmt.Fprintln(stderr, "trace replay:", err)
			return cli.ExitUsage
		}
		if src, err = memsys.EpochWindow(src, lo, lo+n-1); err != nil {
			return fail(stderr, err)
		}
	}
	meta := src.Meta()
	p := *procs
	if p == 0 {
		p = meta.MinProcs // every referencing proc and every home node
	}

	if *sweep {
		sizes := splash2.DefaultCacheSizes()
		cfgs := make([]splash2.MemConfig, len(sizes))
		for i, cs := range sizes {
			cfgs[i] = splash2.MemConfig{Procs: p, CacheSize: cs, Assoc: *assoc, LineSize: *line}
		}
		stats, err := splash2.ReplaySweep(src, cfgs, *workers)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "%-10s %-10s\n", "cache", "miss rate")
		for i, cs := range sizes {
			fmt.Fprintf(stdout, "%-10s %.3f%%\n", fmt.Sprintf("%dK", cs/1024), 100*stats[i].MissRate())
		}
		return cli.ExitOK
	}

	st, err := splash2.ReplayTrace(src, splash2.MemConfig{Procs: p, CacheSize: *cache, Assoc: *assoc, LineSize: *line})
	if err != nil {
		return fail(stderr, err)
	}
	agg := st.Aggregate()
	fmt.Fprintf(stdout, "replayed %d references on %d procs, %dB %d-way, %dB lines\n",
		agg.Refs(), p, *cache, *assoc, *line)
	fmt.Fprintf(stdout, "miss rate  %.3f%% (cold %d, capacity %d, true %d, false %d)\n",
		100*st.MissRate(),
		agg.Misses[memsys.MissCold], agg.Misses[memsys.MissCapacity],
		agg.Misses[memsys.MissTrue], agg.Misses[memsys.MissFalse])
	fmt.Fprintf(stdout, "traffic    local %d B, remote %d B (overhead %d B)\n",
		st.Traffic.LocalData, st.Traffic.Remote(), st.Traffic.RemoteOverhead)
	return cli.ExitOK
}

// parseWindow parses the -window epoch range "start:len".
func parseWindow(s string) (start, n uint64, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &start, &n); err != nil {
		return 0, 0, fmt.Errorf("-window %q: want \"start:len\" (two non-negative integers)", s)
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("-window %q: length must be positive", s)
	}
	return start, n, nil
}

// sniffFormat reads the magic of a trace file: "v1", "v2", or an error.
func sniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return "", fmt.Errorf("%s: reading magic: %w", path, err)
	}
	switch binary.LittleEndian.Uint32(m[:]) {
	case memsys.TraceMagicV1:
		return "v1", nil
	case memsys.TraceMagicV2:
		return "v2", nil
	}
	return "", fmt.Errorf("%s: not a trace file (magic %x)", path, m)
}

func info(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace file")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *in == "" {
		fmt.Fprintln(stderr, "trace info: -i required")
		return cli.ExitUsage
	}
	format, err := sniffFormat(*in)
	if err != nil {
		return fail(stderr, err)
	}
	fi, err := os.Stat(*in)
	if err != nil {
		return fail(stderr, err)
	}

	var meta splash2.TraceMeta
	var index []memsys.BlockInfo
	epochs := uint64(0)
	switch format {
	case "v1":
		f, err := os.Open(*in)
		if err != nil {
			return fail(stderr, err)
		}
		tr, err := memsys.ReadTrace(f)
		f.Close()
		if err != nil {
			return fail(stderr, err)
		}
		meta = tr.Meta()
		// Flat streams carry no epoch numbers; markers delimit the eras.
		epochs = meta.Markers + 1
	case "v2":
		tf, err := splash2.OpenTraceFile(*in)
		if err != nil {
			return fail(stderr, err)
		}
		meta = tf.Meta()
		index = tf.Index()
		tf.Close()
		for _, b := range index {
			if b.Epoch+1 > epochs {
				epochs = b.Epoch + 1
			}
		}
	}

	fmt.Fprintf(stdout, "format          %s (%d bytes)\n", format, fi.Size())
	fmt.Fprintf(stdout, "events          %d (%d references + %d markers)\n",
		meta.Refs+meta.Markers, meta.Refs, meta.Markers)
	fmt.Fprintf(stdout, "processors      %d\n", meta.MaxProc+1)
	fmt.Fprintf(stdout, "epochs          %d\n", epochs)
	fmt.Fprintf(stdout, "max address     %#x\n", uint64(meta.MaxAddr))
	if meta.Refs > 0 {
		fmt.Fprintf(stdout, "bytes/reference %.3f\n", float64(fi.Size())/float64(meta.Refs))
	}
	for p, n := range meta.ProcRefs {
		fmt.Fprintf(stdout, "  proc %-3d      %d references\n", p, n)
	}
	if format != "v2" {
		return cli.ExitOK
	}

	// Block histogram: how full the columnar blocks run, and how small
	// the compressed events land.
	var fills, sizes []int
	markers := 0
	for _, b := range index {
		if b.Marker {
			markers++
			continue
		}
		fills = append(fills, b.Events)
		sizes = append(sizes, int(b.Size))
	}
	fmt.Fprintf(stdout, "blocks          %d (%d event blocks + %d marker blocks)\n",
		len(index), len(fills), markers)
	if len(fills) > 0 {
		sort.Ints(fills)
		sort.Ints(sizes)
		fmt.Fprintf(stdout, "  events/block  min %d, median %d, max %d\n",
			fills[0], fills[len(fills)/2], fills[len(fills)-1])
		fmt.Fprintf(stdout, "  bytes/block   min %d, median %d, max %d\n",
			sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1])
	}
	return cli.ExitOK
}

func convert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace file (v1 or v2, sniffed)")
	out := fs.String("o", "", "output trace file")
	to := fs.String("to", "v2", `target format: "v2" (columnar blocks) or "v1" (flat stream)`)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(stderr, "trace convert: -i and -o required")
		return cli.ExitUsage
	}
	if *to != "v1" && *to != "v2" {
		fmt.Fprintf(stderr, "trace convert: unknown -to %q (want v1 or v2)\n", *to)
		return cli.ExitUsage
	}
	from, err := sniffFormat(*in)
	if err != nil {
		return fail(stderr, err)
	}

	var n int64
	var events int
	if from == "v2" && *to == "v1" {
		// Out of core: stream blocks from the container straight into the
		// flat encoding, never materializing the event array.
		tf, err := splash2.OpenTraceFile(*in)
		if err != nil {
			return fail(stderr, err)
		}
		defer tf.Close()
		events = tf.Len()
		f, err := os.Create(*out)
		if err != nil {
			return fail(stderr, err)
		}
		n, err = tf.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(stderr, err)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return fail(stderr, err)
		}
		tr, err := memsys.ReadTrace(f)
		f.Close()
		if err != nil {
			return fail(stderr, err)
		}
		events = tr.Len()
		if n, err = writeTrace(tr, *out, *to); err != nil {
			return fail(stderr, err)
		}
	}
	fmt.Fprintf(stdout, "converted %s (%s, %d events) → %s (%s, %d bytes)\n",
		*in, from, events, *out, *to, n)
	return cli.ExitOK
}
