// Command trace records a SPLASH-2 program's global reference stream to a
// file, and replays stored traces through arbitrary cache configurations —
// the execution-driven methodology (reference generator feeding a memory
// system simulator) as a standalone workflow.
//
// Usage:
//
//	trace record -app fft -p 32 -o fft.trace [-opt n=4096]
//	trace replay -i fft.trace -cache 65536 -assoc 2 -line 64
//	trace replay -i fft.trace -sweep            # full Figure-3 cache sweep
//
// Replay can inject deterministic read faults to drill the decoder's
// failure handling (a truncated stream fails with a descriptive error,
// never a panic):
//
//	trace replay -i fft.trace -fault 'shortread(100)=trace.read'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"splash2"
	"splash2/internal/memsys"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trace record|replay [flags]")
	os.Exit(2)
}

type optFlags map[string]int

func (o optFlags) String() string { return fmt.Sprint(map[string]int(o)) }

func (o optFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	o[k] = n
	return nil
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "", "program to record")
	procs := fs.Int("p", 32, "processors")
	out := fs.String("o", "", "output trace file")
	opts := optFlags{}
	fs.Var(opts, "opt", "program option override key=value (repeatable)")
	fs.Parse(args)
	if *app == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "trace record: -app and -o required")
		os.Exit(2)
	}

	tr, st, err := splash2.RecordTrace(*app, *procs, opts)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	a := splash2.AggregateCounters(st.Procs)
	fmt.Printf("recorded %s: %d references (%d instructions) → %s (%d bytes)\n",
		*app, tr.Len(), a.Instr, *out, n)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	cache := fs.Int("cache", 1<<20, "cache size in bytes")
	assoc := fs.Int("assoc", 4, "associativity (0 = fully associative)")
	line := fs.Int("line", 64, "line size in bytes")
	procs := fs.Int("p", 0, "replay processors (default: trace's max + 1)")
	sweep := fs.Bool("sweep", false, "replay the full 1K-1M cache-size sweep")
	workers := fs.Int("j", 0, "sweep parallelism (0 = GOMAXPROCS)")
	faultSpec := fs.String("fault", "", `inject read faults: "action[(arg)][@nth]=trace.read;..."`)
	faultSeed := fs.Int64("fault-seed", 1, "seed choosing the occurrence of @-nth fault rules")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "trace replay: -i required")
		os.Exit(2)
	}
	var inj *splash2.FaultInjector
	if *faultSpec != "" {
		rules, err := splash2.ParseFaultRules(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace replay:", err)
			os.Exit(2)
		}
		inj = splash2.NewFaultInjector(*faultSeed, rules...)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := inj.Do(nil, "trace.read"); err != nil {
		fatal(err)
	}
	tr, err := memsys.ReadTrace(inj.Reader("trace.read", f))
	if err != nil {
		fatal(err)
	}
	p := *procs
	if p == 0 {
		p = tr.MaxProc() + 1
	}

	if *sweep {
		sizes := splash2.DefaultCacheSizes()
		cfgs := make([]splash2.MemConfig, len(sizes))
		for i, cs := range sizes {
			cfgs[i] = splash2.MemConfig{Procs: p, CacheSize: cs, Assoc: *assoc, LineSize: *line}
		}
		stats, err := splash2.ReplaySweep(tr, cfgs, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s %-10s\n", "cache", "miss rate")
		for i, cs := range sizes {
			fmt.Printf("%-10s %.3f%%\n", fmt.Sprintf("%dK", cs/1024), 100*stats[i].MissRate())
		}
		return
	}

	st, err := splash2.ReplayTrace(tr, splash2.MemConfig{Procs: p, CacheSize: *cache, Assoc: *assoc, LineSize: *line})
	if err != nil {
		fatal(err)
	}
	agg := st.Aggregate()
	fmt.Printf("replayed %d references on %d procs, %dB %d-way, %dB lines\n",
		agg.Refs(), p, *cache, *assoc, *line)
	fmt.Printf("miss rate  %.3f%% (cold %d, capacity %d, true %d, false %d)\n",
		100*st.MissRate(),
		agg.Misses[memsys.MissCold], agg.Misses[memsys.MissCapacity],
		agg.Misses[memsys.MissTrue], agg.Misses[memsys.MissFalse])
	fmt.Printf("traffic    local %d B, remote %d B (overhead %d B)\n",
		st.Traffic.LocalData, st.Traffic.Remote(), st.Traffic.RemoteOverhead)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
