package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splash2/internal/cli"
	"splash2/internal/memsys"
)

// writeSidecar writes the engine-format sidecar for a container with the
// given hash (the container's real hash unless the test lies on purpose).
func writeSidecar(t *testing.T, container, sum string) {
	t.Helper()
	data, err := json.Marshal(sidecarSum{TraceSum: sum})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(container+".json", data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func hashFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func TestVerifyUsage(t *testing.T) {
	for _, args := range [][]string{
		{"verify"},                         // one of -i/-dir required
		{"verify", "-i", "x", "-dir", "y"}, // not both
		{"verify", "-badflag"},
	} {
		if code, _, _ := runCLI(t, args...); code != cli.ExitUsage {
			t.Errorf("run(%q) = %d, want %d", args, code, cli.ExitUsage)
		}
	}
}

// TestVerifyCleanContainers: freshly recorded containers of both formats
// verify clean, with the v2 path reporting its block decode.
func TestVerifyCleanContainers(t *testing.T) {
	dir := t.TempDir()
	v1 := recordTo(t, dir, "v1")
	v2 := recordTo(t, dir, "v2")

	code, out, stderr := runCLI(t, "verify", "-i", v1)
	if code != cli.ExitOK {
		t.Fatalf("verify v1 exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "v1 full decode") || !strings.Contains(out, "no sidecar") {
		t.Errorf("v1 verify output lacks its proofs: %s", out)
	}

	code, out, stderr = runCLI(t, "verify", "-i", v2)
	if code != cli.ExitOK {
		t.Fatalf("verify v2 exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "blocks") {
		t.Errorf("v2 verify output lacks the block count: %s", out)
	}
}

// TestVerifySidecar: a matching sidecar is part of the proof; a lying
// one fails the container.
func TestVerifySidecar(t *testing.T) {
	dir := t.TempDir()
	v2 := recordTo(t, dir, "v2")
	writeSidecar(t, v2, hashFile(t, v2))

	code, out, stderr := runCLI(t, "verify", "-i", v2)
	if code != cli.ExitOK {
		t.Fatalf("verify with good sidecar exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "sidecar sha256") {
		t.Errorf("verify output lacks the sidecar proof: %s", out)
	}

	writeSidecar(t, v2, strings.Repeat("00", 32))
	code, _, stderr = runCLI(t, "verify", "-i", v2)
	if code != cli.ExitRuntime {
		t.Fatalf("verify with lying sidecar exited %d, want %d", code, cli.ExitRuntime)
	}
	if !strings.Contains(stderr, "mismatch") {
		t.Errorf("stderr does not name the hash mismatch: %s", stderr)
	}
}

// TestVerifyCorruptBlock: flipping a block's tag byte is caught by the
// per-block cross-check against the index footer.
func TestVerifyCorruptBlock(t *testing.T) {
	dir := t.TempDir()
	v2 := recordTo(t, dir, "v2")

	tf, err := memsys.OpenTraceFile(v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	offset := tf.Index()[0].Offset
	tf.Close()
	f, err := os.OpenFile(v2, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, offset); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, _, stderr := runCLI(t, "verify", "-i", v2)
	if code != cli.ExitRuntime {
		t.Fatalf("verify of corrupt container exited %d, want %d (stderr: %s)", code, cli.ExitRuntime, stderr)
	}
}

// TestVerifyDir audits a spill directory: one good pair and one damaged
// container → exit 3 naming only the damaged one; an empty directory is
// a clean no-op.
func TestVerifyDir(t *testing.T) {
	empty := t.TempDir()
	if code, _, stderr := runCLI(t, "verify", "-dir", empty); code != cli.ExitOK {
		t.Fatalf("verify of empty dir exited %d: %s", code, stderr)
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "good.sp2t")
	bad := filepath.Join(dir, "bad.sp2t")
	src := recordTo(t, t.TempDir(), "v2")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	writeSidecar(t, good, hashFile(t, good))
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	writeSidecar(t, bad, strings.Repeat("11", 32))

	code, out, stderr := runCLI(t, "verify", "-dir", dir)
	if code != cli.ExitRuntime {
		t.Fatalf("verify of damaged dir exited %d, want %d", code, cli.ExitRuntime)
	}
	if !strings.Contains(out, "good.sp2t ok") {
		t.Errorf("good container not reported ok: %s", out)
	}
	if !strings.Contains(stderr, "bad.sp2t") || !strings.Contains(stderr, "1 of 2") {
		t.Errorf("damage report wrong: %s", stderr)
	}
}
