// Command splash2 runs one SPLASH-2 program on a simulated multiprocessor
// and prints its characterization: instruction breakdown, PRAM time, miss
// decomposition and traffic.
//
// Usage:
//
//	splash2 -app fft -p 32 -cache 1048576 -assoc 4 -line 64 [-opt n=4096 -opt seed=2] [-verify]
//	splash2 -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"splash2"
	"splash2/internal/memsys"
)

type optFlags map[string]int

func (o optFlags) String() string { return fmt.Sprint(map[string]int(o)) }

func (o optFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	o[k] = n
	return nil
}

func main() {
	var (
		app    = flag.String("app", "", "program to run (see -list)")
		list   = flag.Bool("list", false, "list programs and their options")
		procs  = flag.Int("p", 32, "processors")
		cache  = flag.Int("cache", 1<<20, "cache size in bytes")
		assoc  = flag.Int("assoc", 4, "associativity (0 = fully associative)")
		line   = flag.Int("line", 64, "cache line size in bytes")
		verify = flag.Bool("verify", false, "run the program's correctness check")
		opts   = optFlags{}
	)
	flag.Var(opts, "opt", "program option override key=value (repeatable)")
	flag.Parse()

	if *list {
		for _, name := range splash2.Programs() {
			a, _ := splash2.Program(name)
			kind := "application"
			if a.Kernel {
				kind = "kernel"
			}
			fmt.Printf("%-10s %-11s %s\n           defaults: %v\n", name, kind, a.Doc, a.Defaults)
		}
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "splash2: -app required (or -list)")
		os.Exit(2)
	}

	cfg := splash2.Config{Procs: *procs, CacheSize: *cache, Assoc: *assoc, LineSize: *line}
	run := splash2.RunProgram
	if *verify {
		run = splash2.RunProgramVerified
	}
	res, err := run(*app, cfg, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splash2:", err)
		os.Exit(1)
	}

	st := res.Stats
	a := splash2.AggregateCounters(st.Procs)
	fmt.Printf("program        %s on %d processors\n", *app, *procs)
	fmt.Printf("cache          %d B, %s, %d B lines\n", *cache, assocName(*assoc), *line)
	fmt.Printf("PRAM time      %d cycles\n", st.Time)
	fmt.Printf("instructions   %d (flops %d, reads %d, writes %d)\n", a.Instr, a.Flops, a.Reads, a.Writes)
	fmt.Printf("shared refs    %d reads, %d writes\n", a.SharedReads, a.SharedWrites)
	fmt.Printf("sync ops       %d barriers/proc, %d locks, %d pauses\n",
		a.Barriers/uint64(*procs), a.Locks, a.Pauses)

	mem := st.Mem.Aggregate()
	if mem.Refs() > 0 {
		fmt.Printf("miss rate      %.3f%%\n", 100*st.Mem.MissRate())
		fmt.Printf("  cold         %d\n  capacity     %d\n  true sharing %d\n  false sharing %d\n  upgrades     %d\n",
			mem.Misses[memsys.MissCold], mem.Misses[memsys.MissCapacity],
			mem.Misses[memsys.MissTrue], mem.Misses[memsys.MissFalse], mem.Upgrades)
		tr := st.Mem.Traffic
		fmt.Printf("traffic (B)    local %d, remote data %d, remote overhead %d, writebacks %d\n",
			tr.LocalData, tr.RemoteCold+tr.RemoteShared+tr.RemoteCapacity, tr.RemoteOverhead, tr.RemoteWriteback)
		fmt.Printf("true sharing   %d B (≈ inherent communication)\n", tr.TrueSharingData)
	}
	if *verify {
		fmt.Println("verify         OK")
	}
}

func assocName(a int) string {
	if a == splash2.FullyAssoc {
		return "fully associative"
	}
	return fmt.Sprintf("%d-way", a)
}
