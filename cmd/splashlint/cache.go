// The result cache: a full-checks run is stored keyed by a digest of
// every module source file, so consecutive invocations over an
// unchanged tree — the CI -checks matrix, a SARIF re-render after a
// text run — skip the expensive part (the from-source go/types load)
// entirely. Only full runs are cached; a -checks subset is served by
// projecting the cached full run (see filterCachedDiags), which keeps
// the cache single-entry-per-tree and the subset semantics identical
// to an uncached subset run.
//
// The key covers go.mod, every non-test .go file under the module
// (the analyzer's own sources live there too, so changing a check
// invalidates the cache automatically), and the patterns. Entries are
// written atomically (temp + rename) so a crashed run cannot leave a
// truncated entry behind; an unreadable or undecodable entry is
// treated as a miss, never an error.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"splash2/internal/analysis"
)

// cacheEntry is one stored full run. Diagnostic file paths are kept
// module-root-relative (forward slashes) so an entry is valid across
// checkouts of the same tree.
type cacheEntry struct {
	Packages int                   `json:"packages"`
	Diags    []analysis.Diagnostic `json:"diags"`
}

// cachedRun returns the full-run diagnostics for the tree, from the
// cache when the module's sources are unchanged, running all checks
// and storing the result otherwise. Returned paths are absolute.
func cachedRun(loader *analysis.Loader, dir string, patterns []string) ([]analysis.Diagnostic, int, error) {
	key, err := cacheKey(loader.ModRoot, patterns)
	if err != nil {
		return nil, 0, err
	}
	path := filepath.Join(dir, "splashlint-"+key+".json")

	if data, err := os.ReadFile(path); err == nil {
		var e cacheEntry
		if json.Unmarshal(data, &e) == nil {
			for i := range e.Diags {
				e.Diags[i].File = filepath.Join(loader.ModRoot, filepath.FromSlash(e.Diags[i].File))
			}
			return e.Diags, e.Packages, nil
		}
	}

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, 0, err
	}
	diags := analysis.Run(loader.Fset(), pkgs, analysis.Options{})

	e := cacheEntry{Packages: len(pkgs), Diags: append([]analysis.Diagnostic(nil), diags...)}
	for i := range e.Diags {
		if rel, rerr := filepath.Rel(loader.ModRoot, e.Diags[i].File); rerr == nil && !strings.HasPrefix(rel, "..") {
			e.Diags[i].File = filepath.ToSlash(rel)
		}
	}
	if err := storeEntry(dir, path, e); err != nil {
		// A read-only cache directory degrades to an uncached run; the
		// findings themselves are unaffected.
		fmt.Fprintf(os.Stderr, "splashlint: result cache not written: %v\n", err)
	}
	return diags, len(pkgs), nil
}

func storeEntry(dir, path string, e cacheEntry) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "splashlint-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //splash:allow durability cleanup close on an already-failing path; the Write error is what the caller sees and the temp file is removed
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// cacheKey digests the analyzable surface of the module: go.mod plus
// the path and content of every non-test .go file (testdata included —
// fixture packages are loadable by name), and the patterns. _test.go
// files are never loaded by the analyzer, so they do not invalidate.
func cacheKey(modRoot string, patterns []string) (string, error) {
	var files []string
	err := filepath.WalkDir(modRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if name == "go.mod" && filepath.Dir(p) == modRoot {
			files = append(files, p)
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)

	h := sha256.New()
	fmt.Fprintf(h, "splashlint-cache-v1\npatterns %s\n", strings.Join(patterns, " "))
	for _, p := range files {
		rel, err := filepath.Rel(modRoot, p)
		if err != nil {
			return "", err
		}
		f, err := os.Open(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s\n", filepath.ToSlash(rel))
		_, err = io.Copy(h, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
