package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"splash2/internal/analysis"
)

// fixture is a seeded-violation package (analyzer testdata), relative
// to this directory — guaranteed to produce findings.
const fixture = "../../internal/analysis/testdata/src/accounting"

// cleanPkg has no findings and a tiny import closure.
const cleanPkg = "../../internal/workload"

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitOKOnCleanPackage(t *testing.T) {
	code, stdout, stderr := runLint(t, cleanPkg)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitOK, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed findings: %q", stdout)
	}
}

func TestExitFindingsOnSeededViolations(t *testing.T) {
	code, stdout, stderr := runLint(t, fixture)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitFindings, stderr)
	}
	if !strings.Contains(stdout, "accounting:") {
		t.Fatalf("findings output missing check name: %q", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Fatalf("stderr missing summary: %q", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", fixture)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Check == "" || d.Message == "" {
			t.Fatalf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestExitUsage(t *testing.T) {
	cases := [][]string{
		{},                             // no packages
		{"-nonsense-flag", "./..."},    // unknown flag
		{"-checks", "bogus", cleanPkg}, // unknown check
	}
	for _, args := range cases {
		if code, _, _ := runLint(t, args...); code != exitUsage {
			t.Errorf("args %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestExitInternalOnBadPackage(t *testing.T) {
	code, _, stderr := runLint(t, "./does/not/exist")
	if code != exitInternal {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitInternal, stderr)
	}
}

// TestZeroMatchPatternExitsUsage: a recursive pattern matching no
// packages is a usage error with a diagnostic naming the pattern, not
// an internal failure — and not a silent success.
func TestZeroMatchPatternExitsUsage(t *testing.T) {
	for _, args := range [][]string{
		{"./nonexistent/..."},
		{cleanPkg, "./nonexistent/..."}, // mixed with a matching pattern
	} {
		code, _, stderr := runLint(t, args...)
		if code != exitUsage {
			t.Errorf("args %v: exit = %d, want %d (stderr=%q)", args, code, exitUsage, stderr)
		}
		if !strings.Contains(stderr, "no packages match") || !strings.Contains(stderr, "./nonexistent/...") {
			t.Errorf("args %v: stderr does not name the failing pattern: %q", args, stderr)
		}
	}
}

// TestUnknownCheckListsAvailable: the error must teach the valid names.
func TestUnknownCheckListsAvailable(t *testing.T) {
	code, _, stderr := runLint(t, "-checks", "bogus", cleanPkg)
	if code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
	for _, want := range []string{"unknown check \"bogus\"", "available:", "accounting", "locks", "timetaint", "dataflow", "syntactic"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

// TestCheckGroupsCoverAllChecks pins the -checks group aliases to the
// full registry: a new check must be placed in exactly one group, or
// the CI matrix would silently stop running it.
func TestCheckGroupsCoverAllChecks(t *testing.T) {
	grouped := make(map[string]string)
	for group, names := range checkGroups {
		for _, n := range names {
			if prev, dup := grouped[n]; dup {
				t.Errorf("check %q is in groups %q and %q", n, prev, group)
			}
			grouped[n] = group
		}
	}
	var all, inGroups []string
	for _, c := range analysis.DefaultChecks() {
		all = append(all, c.Name)
	}
	for n := range grouped {
		inGroups = append(inGroups, n)
	}
	sort.Strings(all)
	sort.Strings(inGroups)
	if strings.Join(all, ",") != strings.Join(inGroups, ",") {
		t.Fatalf("groups cover %v, registry has %v", inGroups, all)
	}
}

// TestCheckGroupAlias: "-checks dataflow" must expand to the
// flow-sensitive checks (and exit clean over a package with only
// syntactic seeds and no dataflow ones).
func TestCheckGroupAlias(t *testing.T) {
	code, stdout, stderr := runLint(t, "-checks", "dataflow", cleanPkg)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitOK, stdout, stderr)
	}
	code, stdout, _ = runLint(t, "-checks", "syntactic", fixture)
	if code != exitFindings || !strings.Contains(stdout, "accounting:") {
		t.Fatalf("syntactic group over the accounting fixture: exit=%d stdout=%q", code, stdout)
	}
}

func TestUnknownFormat(t *testing.T) {
	code, _, stderr := runLint(t, "-format", "xml", cleanPkg)
	if code != exitUsage || !strings.Contains(stderr, "unknown format") {
		t.Fatalf("exit=%d stderr=%q, want usage error naming the format", code, stderr)
	}
}

// TestSARIFOutput: -format sarif must produce a valid SARIF 2.1.0 log
// with one result per finding, positioned for PR annotation.
func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-format", "sarif", fixture)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "splashlint" || len(run.Tool.Driver.Rules) == 0 {
		t.Fatalf("driver = %+v", run.Tool.Driver)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a fixture with seeded findings")
	}
	for _, r := range run.Results {
		if r.RuleID == "" || r.Level != "error" || r.Message.Text == "" || len(r.Locations) != 1 {
			t.Fatalf("incomplete result: %+v", r)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, "\\") || loc.Region.StartLine <= 0 {
			t.Fatalf("unusable location: %+v", loc)
		}
	}
}

// TestResultCache: the second run over an unchanged tree must serve
// from the cache (one entry on disk) and report identical findings;
// a subset run against the same cache projects the full run.
func TestResultCache(t *testing.T) {
	dir := t.TempDir()
	code1, out1, _ := runLint(t, "-result-cache", dir, fixture)
	if code1 != exitFindings {
		t.Fatalf("first run: exit = %d, want %d", code1, exitFindings)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "splashlint-*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err %v), want exactly 1", entries, err)
	}
	// Poison the cached entry's mtime-independence by re-running: same
	// tree, same key, so the stored diagnostics must be replayed as-is.
	code2, out2, _ := runLint(t, "-result-cache", dir, fixture)
	if code2 != exitFindings || out2 != out1 {
		t.Fatalf("cached replay diverged: exit=%d\nfirst:\n%s\nsecond:\n%s", code2, out1, out2)
	}
	// The accounting fixture has no procflow findings; the projection
	// must also drop the unused-allow judgments, like an uncached subset.
	code3, out3, stderr3 := runLint(t, "-result-cache", dir, "-checks", "procflow", fixture)
	if code3 != exitOK || out3 != "" {
		t.Fatalf("cached subset: exit=%d stdout=%q stderr=%q", code3, out3, stderr3)
	}
	// An uncached subset over the same package must agree with the
	// cached projection.
	code4, out4, _ := runLint(t, "-checks", "procflow", fixture)
	if code4 != code3 || out4 != out3 {
		t.Fatalf("cached and uncached subset disagree: %d/%q vs %d/%q", code3, out3, code4, out4)
	}
	// A corrupt entry is a miss, not a failure.
	if err := os.WriteFile(entries[0], []byte("not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	code5, out5, _ := runLint(t, "-result-cache", dir, fixture)
	if code5 != exitFindings || out5 != out1 {
		t.Fatalf("run after corrupting the cache: exit=%d, findings diverged", code5)
	}
}

func TestListChecks(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != exitOK {
		t.Fatalf("exit = %d, want %d", code, exitOK)
	}
	for _, name := range []string{"accounting", "procflow", "determinism", "faultpoints"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

// TestChecksSubset: a subset run must not report unused-directive
// findings for the checks that did not run (the accounting fixture has
// an accounting suppression; procflow-only must stay silent about it).
func TestChecksSubset(t *testing.T) {
	code, stdout, stderr := runLint(t, "-checks", "procflow", fixture)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitOK, stdout, stderr)
	}
}
