package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixture is a seeded-violation package (analyzer testdata), relative
// to this directory — guaranteed to produce findings.
const fixture = "../../internal/analysis/testdata/src/accounting"

// cleanPkg has no findings and a tiny import closure.
const cleanPkg = "../../internal/workload"

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitOKOnCleanPackage(t *testing.T) {
	code, stdout, stderr := runLint(t, cleanPkg)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitOK, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed findings: %q", stdout)
	}
}

func TestExitFindingsOnSeededViolations(t *testing.T) {
	code, stdout, stderr := runLint(t, fixture)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitFindings, stderr)
	}
	if !strings.Contains(stdout, "accounting:") {
		t.Fatalf("findings output missing check name: %q", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Fatalf("stderr missing summary: %q", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", fixture)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Check == "" || d.Message == "" {
			t.Fatalf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestExitUsage(t *testing.T) {
	cases := [][]string{
		{},                          // no packages
		{"-nonsense-flag", "./..."}, // unknown flag
		{"-checks", "bogus", cleanPkg}, // unknown check
	}
	for _, args := range cases {
		if code, _, _ := runLint(t, args...); code != exitUsage {
			t.Errorf("args %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestExitInternalOnBadPackage(t *testing.T) {
	code, _, stderr := runLint(t, "./does/not/exist")
	if code != exitInternal {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitInternal, stderr)
	}
}

func TestListChecks(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != exitOK {
		t.Fatalf("exit = %d, want %d", code, exitOK)
	}
	for _, name := range []string{"accounting", "procflow", "determinism", "faultpoints"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

// TestChecksSubset: a subset run must not report unused-directive
// findings for the checks that did not run (the accounting fixture has
// an accounting suppression; procflow-only must stay silent about it).
func TestChecksSubset(t *testing.T) {
	code, stdout, stderr := runLint(t, "-checks", "procflow", fixture)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitOK, stdout, stderr)
	}
}
