// SARIF 2.1.0 output: the minimal static-analysis result log GitHub
// code scanning accepts, so CI can upload findings and render them as
// inline PR annotations. One run, one driver ("splashlint"), one rule
// per check plus the "directive" pseudo-check, one result per finding.
// URIs are module-relative with forward slashes under the conventional
// %SRCROOT% base, which is how the upload action anchors annotations
// to the checked-out tree.
package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"splash2/internal/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the diagnostics as one SARIF run. Every finding
// fails the build (exit 2), so every result is level "error".
func writeSARIF(w io.Writer, checks []*analysis.Check, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(checks)+1)
	for _, c := range checks {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed, duplicate, or unused //splash:allow suppression directives"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(d.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "splashlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
