// Command splashlint is the repository's static analyzer: it enforces
// the invariants the characterization rests on — reference-stream
// accounting, processor ownership, determinism of result paths, and
// the fault-injection label taxonomy. Pure standard library: packages
// are parsed and type-checked from source, no go/packages, no go list.
//
// Usage:
//
//	splashlint ./...                  # whole repository
//	splashlint ./internal/apps/...    # one subtree
//	splashlint -checks accounting,procflow ./...
//	splashlint -json ./...            # machine-readable findings
//	splashlint -list                  # describe the checks
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//splash:allow <check> <reason>
//
// The reason is mandatory, and unused directives are themselves
// findings, so suppressions cannot rot.
//
// Exit status: 0 — clean; 1 — usage error; 2 — findings reported;
// 3 — internal error (parse or type-check failure).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"splash2/internal/analysis"
)

// Exit statuses: clean, bad usage, findings, internal error — the same
// taxonomy as cmd/characterize.
const (
	exitOK       = 0
	exitUsage    = 1
	exitFindings = 2
	exitInternal = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splashlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array")
		checkList = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list      = fs.Bool("list", false, "list the available checks and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: splashlint [-json] [-checks c1,c2] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	all := analysis.DefaultChecks()
	if *list {
		for _, c := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return exitOK
	}

	checks := all
	subset := *checkList != ""
	if subset {
		byName := make(map[string]*analysis.Check, len(all))
		for _, c := range all {
			byName[c.Name] = c
		}
		checks = nil
		for _, name := range strings.Split(*checkList, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "splashlint: unknown check %q\n", name)
				return exitUsage
			}
			checks = append(checks, c)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return exitUsage
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "splashlint: %v\n", err)
		return exitInternal
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "splashlint: %v\n", err)
		return exitInternal
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "splashlint: %v\n", err)
		return exitInternal
	}

	diags := analysis.Run(loader.Fset(), pkgs, analysis.Options{
		Checks: checks,
		// With a check subset, directives for the skipped checks are
		// trivially unused; only a full run can judge them.
		KeepUnusedAllows: subset,
	})

	// Report paths relative to the working directory (clickable, stable
	// across checkouts).
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "splashlint: %v\n", err)
			return exitInternal
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "splashlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitOK
}
