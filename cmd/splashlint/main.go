// Command splashlint is the repository's static analyzer: it enforces
// the invariants the characterization rests on — reference-stream
// accounting, processor ownership, determinism of result paths, the
// fault-injection label taxonomy, and the flow-sensitive lockset /
// context / durability / epoch / time-taint contracts. Pure standard
// library: packages are parsed and type-checked from source, no
// go/packages, no go list.
//
// Usage:
//
//	splashlint ./...                  # whole repository
//	splashlint ./internal/apps/...    # one subtree
//	splashlint -checks accounting,procflow ./...
//	splashlint -checks dataflow ./...  # a check group
//	splashlint -format json ./...     # machine-readable findings
//	splashlint -format sarif ./...    # SARIF 2.1.0 (CI annotations)
//	splashlint -list                  # describe the checks
//
// The -checks flag accepts check names and the two group aliases:
// "syntactic" (the per-node checks) and "dataflow" (the CFG-based
// flow-sensitive checks). -result-cache DIR caches a full run keyed by
// the module's source bytes, so a -checks matrix re-uses one
// type-checked run instead of loading the tree per matrix job.
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//splash:allow <check> <reason>
//
// The reason is mandatory, and unused directives are themselves
// findings, so suppressions cannot rot.
//
// Exit status: 0 — clean; 1 — usage error (including a pattern that
// matches no packages); 2 — findings reported; 3 — internal error
// (parse or type-check failure).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"splash2/internal/analysis"
)

// Exit statuses: clean, bad usage, findings, internal error — the same
// taxonomy as cmd/characterize.
const (
	exitOK       = 0
	exitUsage    = 1
	exitFindings = 2
	exitInternal = 3
)

// checkGroups are the -checks aliases the CI matrix splits on. The
// syntactic checks walk the AST per node; the dataflow checks solve
// per-function fixed points over the CFG. TestCheckGroupsCoverAllChecks
// pins the union to the full registry so a new check cannot silently
// fall out of the matrix.
var checkGroups = map[string][]string{
	"syntactic": {"accounting", "procflow", "determinism", "faultpoints", "tracecapture"},
	"dataflow":  {"ctxflow", "durability", "epochs", "locks", "timetaint"},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splashlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "shorthand for -format json")
		format    = fs.String("format", "", `output format: "text" (default), "json", or "sarif"`)
		checkList = fs.String("checks", "", "comma-separated checks or groups to run (default: all; groups: syntactic, dataflow)")
		list      = fs.Bool("list", false, "list the available checks and exit")
		cacheDir  = fs.String("result-cache", "", "directory caching full-run results keyed by module source (shares one type-checked run across -checks invocations)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: splashlint [-format text|json|sarif] [-checks c1,c2] [-result-cache dir] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "splashlint: unknown format %q (want text, json, or sarif)\n", *format)
		return exitUsage
	}

	all := analysis.DefaultChecks()
	if *list {
		for _, c := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return exitOK
	}

	checks := all
	subset := *checkList != ""
	selected := make(map[string]bool)
	if subset {
		byName := make(map[string]*analysis.Check, len(all))
		names := make([]string, 0, len(all))
		for _, c := range all {
			byName[c.Name] = c
			names = append(names, c.Name)
		}
		sort.Strings(names)
		checks = nil
		for _, name := range strings.Split(*checkList, ",") {
			name = strings.TrimSpace(name)
			expanded := []string{name}
			if group, ok := checkGroups[name]; ok {
				expanded = group
			}
			for _, n := range expanded {
				c, ok := byName[n]
				if !ok {
					fmt.Fprintf(stderr, "splashlint: unknown check %q; available: %s; groups: dataflow, syntactic\n",
						n, strings.Join(names, ", "))
					return exitUsage
				}
				if !selected[n] {
					selected[n] = true
					checks = append(checks, c)
				}
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return exitUsage
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "splashlint: %v\n", err)
		return exitInternal
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "splashlint: %v\n", err)
		return exitInternal
	}

	var (
		diags    []analysis.Diagnostic
		pkgCount int
	)
	if *cacheDir != "" {
		diags, pkgCount, err = cachedRun(loader, *cacheDir, patterns)
		if err == nil && subset {
			diags = filterCachedDiags(diags, selected)
		}
	} else {
		var pkgs []*analysis.Package
		pkgs, err = loader.Load(patterns...)
		if err == nil {
			diags = analysis.Run(loader.Fset(), pkgs, analysis.Options{
				Checks: checks,
				// With a check subset, directives for the skipped checks
				// are trivially unused; only a full run can judge them.
				KeepUnusedAllows: subset,
			})
			pkgCount = len(pkgs)
		}
	}
	if err != nil {
		var noPkgs *analysis.NoPackagesError
		if errors.As(err, &noPkgs) {
			fmt.Fprintf(stderr, "splashlint: %v\n", err)
			fmt.Fprintf(stderr, "splashlint: patterns are directories (\"./internal/mach\"), import paths, or recursive forms of either (\"./...\"), resolved relative to %s\n", wd)
			return exitUsage
		}
		fmt.Fprintf(stderr, "splashlint: %v\n", err)
		return exitInternal
	}

	// Report paths relative to the working directory (clickable, stable
	// across checkouts).
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "splashlint: %v\n", err)
			return exitInternal
		}
	case "sarif":
		if err := writeSARIF(stdout, all, diags); err != nil {
			fmt.Fprintf(stderr, "splashlint: %v\n", err)
			return exitInternal
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "splashlint: %d finding(s) in %d package(s)\n", len(diags), pkgCount)
		return exitFindings
	}
	return exitOK
}

// filterCachedDiags projects a cached full run onto a -checks subset:
// findings of the selected checks survive, and so do malformed- and
// duplicate-directive findings (they are properties of the source, not
// of which checks ran). Unused-directive findings are dropped — with a
// subset, a directive for a skipped check is trivially unused, matching
// the uncached KeepUnusedAllows behavior.
func filterCachedDiags(diags []analysis.Diagnostic, selected map[string]bool) []analysis.Diagnostic {
	out := diags[:0:0]
	for _, d := range diags {
		switch {
		case selected[d.Check]:
			out = append(out, d)
		case d.Check == "directive" && !strings.HasPrefix(d.Message, "unused splash:allow"):
			out = append(out, d)
		}
	}
	return out
}
