package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"splash2/internal/cli"
	"splash2/internal/core"
)

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-mode", "warp"},
		{"-no-cache", "-cache-dir", "/tmp/x"},
		{"-fault", "???"},
		{"stray-arg"},
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		if code := run(context.Background(), args, io.Discard, &stderr); code != cli.ExitUsage {
			t.Errorf("run(%q) = %d, want %d (stderr: %s)", args, code, cli.ExitUsage, stderr.String())
		}
	}
}

func TestListenFailure(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:0"}, io.Discard, &stderr); code != cli.ExitRuntime {
		t.Errorf("bad addr: run = %d, want %d (stderr: %s)", code, cli.ExitRuntime, stderr.String())
	}
}

// syncBuffer is a bytes.Buffer safe to read while the daemon goroutine
// writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// bootDaemon starts the daemon on an ephemeral port and returns its base
// URL plus a stop func that cancels the context and waits for exit.
func bootDaemon(t *testing.T, args ...string) (url string, stop func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdoutR, stdoutW := io.Pipe()
	var stderr syncBuffer

	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-no-cache"}, args...), stdoutW, &stderr)
	}()

	sc := bufio.NewScanner(stdoutR)
	if !sc.Scan() {
		cancel()
		t.Fatalf("daemon produced no boot line (stderr: %s)", stderr.String())
	}
	line := sc.Text()
	const prefix = "splashd: listening on "
	if !strings.HasPrefix(line, prefix) {
		cancel()
		t.Fatalf("boot line %q", line)
	}
	url = "http://" + strings.TrimPrefix(line, prefix)

	return url, func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not exit after cancel")
			return -1
		}
	}
}

func TestDaemonSmoke(t *testing.T) {
	url, stop := bootDaemon(t)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Cold experiment over the wire.
	req := core.Request{Kind: core.KindTable1, Apps: []string{"fft"}, Procs: 2, Scale: "default"}
	body, _ := json.Marshal(req)
	resp, err = http.Post(url+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiment = %d: %s", resp.StatusCode, payload)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on experiment response")
	}
	var res core.Results
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatalf("payload not Results JSON: %v", err)
	}
	if len(res.Table1) != 1 || res.Table1[0].App != "fft" {
		t.Fatalf("unexpected result: %+v", res.Table1)
	}

	// Warm revalidation: 304, no body.
	hr, _ := http.NewRequest(http.MethodPost, url+"/v1/experiments", bytes.NewReader(body))
	hr.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("revalidation = %d with %d body bytes, want bare 304", resp.StatusCode, len(b))
	}

	// Graceful shutdown on signal (context cancel stands in for SIGTERM;
	// main wires NotifyContext to the same path).
	if code := stop(); code != cli.ExitOK {
		t.Errorf("shutdown exit = %d, want %d", code, cli.ExitOK)
	}
}

func TestDaemonMetrics(t *testing.T) {
	url, stop := bootDaemon(t)
	defer stop()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine", "coalescing", "queue", "endpoints"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q block", key)
		}
	}
}
