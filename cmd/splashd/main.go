// Command splashd serves the characterization suite over HTTP:
// experiment requests (which table or figure, which programs, which
// machine parameters) run on one shared engine and return the same JSON
// that `characterize -format json` prints.
//
// Usage:
//
//	splashd                          # listen on :8095, cached, GOMAXPROCS workers
//	splashd -addr 127.0.0.1:9000
//	splashd -j 8 -cache-dir /var/cache/splash2
//	splashd -no-cache                # memo only, nothing on disk
//	splashd -mode record-replay      # trace once, replay per configuration
//	splashd -max-inflight 4 -max-queue 16 -per-client 8
//	splashd -timeout 5m -retries 2   # per-experiment fault policy
//	splashd -drain-timeout 30s       # graceful SIGTERM budget
//	splashd -lease-ttl 10s           # cross-process work-lease expiry (0 disables)
//	splashd -no-journal              # skip the durable run journal
//	splashd -progress                # per-experiment progress on stderr
//	splashd -fault 'error@2=job:run fft*' -fault-seed 7   # chaos drill
//
// Endpoints:
//
//	GET  /healthz                    # 200 while serving, 503 while draining
//	GET  /v1/experiments?kind=...    # run (or join, or revalidate) an experiment
//	POST /v1/experiments             # same, JSON body (core.Request schema)
//	GET  /metrics                    # queue depth, cache hit ratio, coalescing
//
// The kind=working-set-sampled experiment serves the SHARDS-sampled
// working-set estimate; the sampleRate and sampleSeed query parameters
// (or JSON fields) select the sampling configuration and are part of
// the request's content address, so estimates at different rates cache
// and coalesce independently.
//
// Responses carry a deterministic ETag (the request's content address):
// repeat a request with If-None-Match to get 304 without any execution.
// Identical concurrent requests coalesce onto one execution; saturation
// sheds load with 429 + Retry-After. SIGINT/SIGTERM stops accepting
// work, drains live flights up to -drain-timeout, then exits.
//
// Clients may bound a request with a deadline — the timeoutMs body
// field, the deadline query parameter ("30s", "2m"), or the
// X-Splashd-Deadline header. Doomed work is cancelled rather than left
// to wedge an execution slot, and the client gets 504 with a JSON error
// carrying the CLI exit-taxonomy code. Deadlines are excluded from the
// request's content address, so impatient and patient clients coalesce.
//
// Daemons sharing a cache directory (or sharing one with characterize
// runs) hold cross-process work leases, executing each expensive
// experiment once fleet-wide; every run appends a durable journal under
// <cache-dir>/journal for `characterize -resume` crash forensics.
//
// Exit status: 0 — clean shutdown; 1 — usage error; 3 — runtime error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"splash2"
	"splash2/internal/cli"
	"splash2/internal/core"
	"splash2/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splashd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8095", "listen address")
		workers  = fs.Int("j", 0, "experiment-level parallelism (0 = GOMAXPROCS)")
		cacheDir = fs.String("cache-dir", "", "result cache directory (default: <user cache dir>/splash2)")
		noCache  = fs.Bool("no-cache", false, "disable the on-disk result cache")
		modeName = fs.String("mode", "live", `full-memory execution: "live" or "record-replay"`)
		progress = fs.Bool("progress", false, "live per-experiment progress on stderr")

		maxInflight = fs.Int("max-inflight", 4, "experiments executing concurrently")
		maxQueue    = fs.Int("max-queue", 16, "experiments queued behind the executing ones")
		perClient   = fs.Int("per-client", 8, "concurrent requests per client")

		leaseTTL  = fs.Duration("lease-ttl", splash2.DefaultLeaseTTL, "cross-process work-lease expiry; concurrent processes sharing the cache dir coalesce jobs (0 disables)")
		noJournal = fs.Bool("no-journal", false, "disable the durable run journal under <cache-dir>/journal")

		timeout      = fs.Duration("timeout", 0, "per-experiment attempt timeout (0 = none)")
		retries      = fs.Int("retries", 0, "extra attempts for transiently failing experiments")
		retryBackoff = fs.Duration("retry-backoff", 0, "first-retry delay, doubling per retry (0 = default)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for live experiments")

		faultSpec = fs.String("fault", "", `inject deterministic faults: "action[(arg)][@nth]=pattern;..."`)
		faultSeed = fs.Int64("fault-seed", 1, "seed choosing the occurrence of @-nth fault rules")
	)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "splashd: unexpected argument %q\n", fs.Arg(0))
		return cli.ExitUsage
	}

	eo := core.EngineOptions{
		Workers: *workers,
		Context: ctx,
		Timeout: *timeout, Retries: *retries, RetryBackoff: *retryBackoff,
		NoJournal: *noJournal,
	}
	if *leaseTTL <= 0 {
		eo.LeaseTTL = -1 // user asked for no leases
	} else {
		eo.LeaseTTL = *leaseTTL
	}
	var err error
	if eo.ExecMode, err = cli.ParseExecMode(*modeName); err != nil {
		fmt.Fprintln(stderr, "splashd:", err)
		return cli.ExitUsage
	}
	switch {
	case *noCache:
		if *cacheDir != "" {
			fmt.Fprintln(stderr, "splashd: -no-cache and -cache-dir are mutually exclusive")
			return cli.ExitUsage
		}
	case *cacheDir != "":
		eo.CacheDir = *cacheDir
	default:
		dir, err := splash2.DefaultCacheDir()
		if err != nil {
			fmt.Fprintln(stderr, "splashd: no user cache dir, running uncached:", err)
		} else {
			eo.CacheDir = dir
		}
	}
	if *progress {
		eo.Progress = stderr
	}
	if *faultSpec != "" {
		rules, err := splash2.ParseFaultRules(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "splashd:", err)
			return cli.ExitUsage
		}
		eo.Fault = splash2.NewFaultInjector(*faultSeed, rules...)
	}

	engine, err := core.NewEngine(eo)
	if err != nil {
		fmt.Fprintln(stderr, "splashd:", err)
		return cli.ExitRuntime
	}
	// Close writes the journal's run.end marker; without it the next
	// resume would report this daemon as a crashed run.
	defer engine.Close()
	srv := serve.New(ctx, engine, serve.Options{
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		PerClient:   *perClient,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "splashd:", err)
		return cli.ExitRuntime
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "splashd: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "splashd:", err)
		return cli.ExitRuntime
	case <-ctx.Done():
	}

	// Graceful stop: refuse new experiments, let live flights finish,
	// then close the listener and idle connections.
	fmt.Fprintln(stderr, "splashd: draining")
	drained := srv.BeginDrain(*drainTimeout)
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "splashd:", err)
		return cli.ExitRuntime
	}
	if !drained {
		fmt.Fprintln(stderr, "splashd: drain timed out; in-flight experiments abandoned")
	}
	fmt.Fprintln(stderr, "splashd: stopped")
	return cli.ExitOK
}
