// Live-generation benchmarks: the front half of every experiment — the
// program executing on the simulated machine, producing its reference
// stream — as opposed to the replay benches, which measure the back
// half. These intentionally use only the public facade (RecordTrace,
// RunProgram, ReplayTrace), so this file also compiles against older
// trees for interleaved before/after measurements (BENCH_livegen.json).
package splash2_test

import (
	"testing"

	"splash2"
)

// livegenOpts is the fft problem used by the live-generation benches:
// large enough that per-reference capture costs dominate setup, small
// enough for many interleaved measurement rounds.
var livegenOpts = map[string]int{"n": 4096}

// BenchmarkLiveGenRecord measures trace generation: fft at 8 processors
// under the count-only model with recording on — the acceptance workload
// for the batched capture path (every reference used to take two global
// locks here; now a buffered append).
func BenchmarkLiveGenRecord(b *testing.B) {
	var refs int
	for i := 0; i < b.N; i++ {
		tr, _, err := splash2.RecordTrace("fft", 8, livegenOpts)
		if err != nil {
			b.Fatal(err)
		}
		refs = tr.Len()
	}
	b.ReportMetric(float64(refs), "refs")
}

// BenchmarkLiveGenCountOnly is the no-capture control: the same program
// with neither memory system nor recorder attached. The gap between this
// and BenchmarkLiveGenRecord is the true cost of capture.
func BenchmarkLiveGenCountOnly(b *testing.B) {
	cfg := splash2.Config{Procs: 8, MemModel: splash2.CountOnly}
	for i := 0; i < b.N; i++ {
		if _, err := splash2.RunProgram("fft", cfg, livegenOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveGenFullMem measures a live full-memory run (the Table-1 /
// traffic configuration: 1 MB 4-way 64 B caches at 8 processors) — every
// reference enters the coherence simulation, formerly one global lock
// acquisition each, now one per flushed batch.
func BenchmarkLiveGenFullMem(b *testing.B) {
	cfg := splash2.Config{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64}
	for i := 0; i < b.N; i++ {
		res, err := splash2.RunProgram("fft", cfg, livegenOpts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Mem.MissRate() <= 0 {
			b.Fatal("full-memory run produced no misses")
		}
	}
}

// BenchmarkLiveGenRecordThenReplay measures the record-then-replay
// composition behind the -mode record-replay execution path: generate
// the stream once under count-only recording, then drive the cache
// simulation from the trace.
func BenchmarkLiveGenRecordThenReplay(b *testing.B) {
	mc := splash2.MemConfig{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64}
	for i := 0; i < b.N; i++ {
		tr, _, err := splash2.RecordTrace("fft", 8, livegenOpts)
		if err != nil {
			b.Fatal(err)
		}
		st, err := splash2.ReplayTrace(tr, mc)
		if err != nil {
			b.Fatal(err)
		}
		if st.MissRate() <= 0 {
			b.Fatal("replay produced no misses")
		}
	}
}
