module splash2

go 1.22
