// Trace sweep: the execution-driven methodology as a workflow — record a
// program's reference stream once, then replay it through many cache
// configurations. Because every replay sees the identical stream, the
// resulting curves are exactly comparable (the property §2.2 adopts PRAM
// timing for), and replays skip re-executing the program.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"splash2"
)

func main() {
	app := flag.String("app", "radix", "program to record")
	procs := flag.Int("p", 8, "processors")
	flag.Parse()

	start := time.Now()
	tr, st, err := splash2.RecordTrace(*app, *procs, nil)
	if err != nil {
		log.Fatal(err)
	}
	rec := time.Since(start)
	a := splash2.AggregateCounters(st.Procs)
	fmt.Printf("recorded %s: %d references, %d instructions (%.0f ms)\n\n",
		*app, tr.Len(), a.Instr, rec.Seconds()*1000)

	// One recorded execution, three independent sweeps.
	fmt.Println("cache-size sweep (4-way, 64 B lines):")
	for _, cs := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		stats, err := splash2.ReplayTrace(tr, splash2.MemConfig{Procs: *procs, CacheSize: cs, Assoc: 4, LineSize: 64})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6dK  miss %6.3f%%  remote %8d B\n", cs/1024, 100*stats.MissRate(), stats.Traffic.Remote())
	}

	fmt.Println("\nassociativity sweep (64 KB caches):")
	for _, assoc := range []int{1, 2, 4, splash2.FullyAssoc} {
		stats, err := splash2.ReplayTrace(tr, splash2.MemConfig{Procs: *procs, CacheSize: 64 << 10, Assoc: assoc, LineSize: 64})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d-way", assoc)
		if assoc == splash2.FullyAssoc {
			label = "full"
		}
		fmt.Printf("  %-6s  miss %6.3f%%\n", label, 100*stats.MissRate())
	}

	fmt.Println("\nline-size sweep (1 MB caches):")
	for _, ls := range splash2.DefaultLineSizes() {
		stats, err := splash2.ReplayTrace(tr, splash2.MemConfig{Procs: *procs, CacheSize: 1 << 20, Assoc: 4, LineSize: ls})
		if err != nil {
			log.Fatal(err)
		}
		agg := stats.Aggregate()
		fmt.Printf("  %4dB  miss %6.3f%%  false-sharing misses %d\n",
			ls, 100*stats.MissRate(), agg.Misses[splash2.MissFalse])
	}
	fmt.Printf("\ntotal sweep time %.0f ms for 15 configurations of one execution\n",
		time.Since(start).Seconds()*1000)
}
