// Traffic study: reproduce the paper's §6 experiment for a set of
// programs — the communication-to-computation behaviour as processors
// scale, decomposed into the Figure-4 categories, plus the bandwidth
// estimate the paper derives (MB/s per processor at 200 MFLOPS/MIPS).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"splash2"
)

func main() {
	appsFlag := flag.String("apps", "fft,ocean,radix", "comma-separated programs")
	cache := flag.Int("cache", 1<<20, "cache size in bytes")
	flag.Parse()

	procList := []int{1, 2, 4, 8, 16, 32}
	for _, app := range strings.Split(*appsFlag, ",") {
		pts, err := splash2.Traffic(app, procList, *cache, splash2.SweepScale, nil)
		if err != nil {
			log.Fatal(err)
		}
		unit := "instr"
		if pts[0].PerFlop {
			unit = "FLOP"
		}
		fmt.Printf("%s (bytes per %s, %dK caches)\n", app, unit, *cache/1024)
		fmt.Printf("  %-6s %-10s %-10s %-10s %-12s\n", "P", "remote", "local", "true-share", "MB/s @200M")
		for _, t := range pts {
			// The paper's §6 bandwidth estimate: traffic per op × issue rate.
			mbs := t.Remote() * 200e6 / 1e6
			fmt.Printf("  %-6d %-10.4f %-10.4f %-10.4f %-12.1f\n",
				t.Procs, t.Remote(), t.LocalData, t.TrueSharing, mbs)
		}
		fmt.Println()
	}
	fmt.Println("Remote traffic grows with P (finer decomposition ⇒ more boundary")
	fmt.Println("sharing) while capacity-driven local traffic falls as per-processor")
	fmt.Println("partitions start fitting in the cache — the interplay §6 describes.")
}
