// Quickstart: run one SPLASH-2 kernel on a simulated 8-processor machine
// and print the headline characterization numbers — the minimal use of the
// public API.
package main

import (
	"fmt"
	"log"

	"splash2"
)

func main() {
	// A machine with the paper's default memory system (1 MB 4-way caches,
	// 64-byte lines) but 8 processors.
	m, err := splash2.NewMachine(splash2.Config{Procs: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Build the FFT kernel at its default problem size and run it.
	r, err := splash2.Build("fft", m, nil)
	if err != nil {
		log.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		log.Fatal(err)
	}

	st := m.Snapshot()
	a := splash2.AggregateCounters(st.Procs)
	fmt.Printf("FFT on 8 simulated processors\n")
	fmt.Printf("  PRAM time       %d cycles\n", st.Time)
	fmt.Printf("  instructions    %d (%d flops)\n", a.Instr, a.Flops)
	fmt.Printf("  miss rate       %.2f%%\n", 100*st.Mem.MissRate())
	fmt.Printf("  remote traffic  %d bytes (%d true-sharing data)\n",
		st.Mem.Traffic.Remote(), st.Mem.Traffic.TrueSharingData)

	// The same transform on one processor gives the PRAM speedup.
	m1, err := splash2.NewMachine(splash2.Config{Procs: 1, MemModel: splash2.CountOnly})
	if err != nil {
		log.Fatal(err)
	}
	r1, err := splash2.Build("fft", m1, nil)
	if err != nil {
		log.Fatal(err)
	}
	r1.Run(m1)
	fmt.Printf("  PRAM speedup    %.2f× over 1 processor\n",
		float64(m1.Snapshot().Time)/float64(st.Time))
}
