// Line size study: reproduce the paper's §7 experiment — spatial locality
// and false sharing as the cache line grows from 8 to 256 bytes. Programs
// with good spatial locality benefit from long lines (prefetching);
// programs with interleaved fine-grain sharing suffer false sharing.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"splash2"
)

func main() {
	appsFlag := flag.String("apps", "lu,radix,barnes", "comma-separated programs")
	procs := flag.Int("p", 8, "processors")
	flag.Parse()

	for _, app := range strings.Split(*appsFlag, ",") {
		pts, err := splash2.LineSizeSweep(app, *procs, 1<<20, splash2.DefaultLineSizes(), splash2.SweepScale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — miss decomposition vs line size (1 MB caches, %d procs)\n", app, *procs)
		fmt.Printf("  %-6s %8s %8s %8s %8s %8s\n", "line", "cold%", "cap%", "true%", "false%", "total%")
		for _, l := range pts {
			fmt.Printf("  %-6s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				fmt.Sprintf("%dB", l.LineSize), l.ColdPct, l.CapacityPct, l.TruePct, l.FalsePct, l.TotalMissPct())
		}
		first, last := pts[0], pts[len(pts)-1]
		switch {
		case last.FalsePct > 2*first.FalsePct && last.FalsePct > 0.01:
			fmt.Println("  ⇒ false sharing grows with line size: fine-grain interleaved writes")
		case last.TotalMissPct() < first.TotalMissPct():
			fmt.Println("  ⇒ good spatial locality: long lines prefetch effectively")
		default:
			fmt.Println("  ⇒ mixed behaviour")
		}
		fmt.Println()
	}
}
