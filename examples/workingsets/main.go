// Working sets: reproduce the paper's §5 methodology for one program —
// sweep cache size at several associativities, locate the knees in the
// miss-rate curve, and show which operating points are worth simulating.
// This is the experiment behind Figure 3 and Table 2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"splash2"
)

func main() {
	app := flag.String("app", "ocean", "program to analyze")
	procs := flag.Int("p", 8, "processors")
	flag.Parse()

	sizes := splash2.DefaultCacheSizes()
	assocs := []int{1, 2, 4, splash2.FullyAssoc}
	curves, err := splash2.WorkingSets([]string{*app}, *procs, sizes, assocs, splash2.SweepScale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Miss rate vs cache size for %s (%d procs, 64 B lines)\n\n", *app, *procs)
	fmt.Printf("%-8s", "size")
	for _, c := range curves {
		label := fmt.Sprintf("%d-way", c.Assoc)
		if c.Assoc == splash2.FullyAssoc {
			label = "full"
		}
		fmt.Printf("%10s", label)
	}
	fmt.Println()
	for i, cs := range sizes {
		fmt.Printf("%-8s", fmt.Sprintf("%dK", cs/1024))
		for _, c := range curves {
			fmt.Printf("%9.2f%%", c.MissRate[i])
		}
		fmt.Println()
	}

	// Knee detection: the most important working set.
	fmt.Println()
	for _, c := range curves {
		knee, drop := c.Knee()
		if knee == 0 {
			continue
		}
		if c.Assoc == 4 {
			fmt.Printf("4-way knee at %dK (miss rate drops %.2f points): the most\n", knee/1024, drop)
			fmt.Println("important working set fits there — cache sizes below it are the")
			fmt.Println("interesting simulation points; sizes above are redundant (§5).")
		}
	}
	_ = os.Stdout
}
