#!/bin/sh
# splashd walkthrough: boot the daemon, exercise every service feature
# with curl, shut it down gracefully. Run from the repository root.
set -eu

ADDR=127.0.0.1:8095
LOG=$(mktemp)
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG" splashd.bin' EXIT

echo "== build and boot =="
go build -o splashd.bin ./cmd/splashd
./splashd.bin -addr "$ADDR" -no-cache >"$LOG" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
    if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fs "http://$ADDR/healthz"

echo "== cold experiment: Table 1, fft+lu, 4 processors =="
curl -fs "http://$ADDR/v1/experiments?kind=table1&apps=fft,lu&procs=4&scale=default" \
    | head -n 20

echo "== capture the ETag (the request's content address) =="
ETAG=$(curl -fs -D- -o /dev/null -X POST "http://$ADDR/v1/experiments" \
    -d '{"kind":"table1","apps":["fft","lu"],"procs":4,"scale":"default"}' \
    | awk 'tolower($1)=="etag:"{print $2}' | tr -d '\r')
echo "ETag: $ETAG"

echo "== revalidate: 304, zero execution =="
CODE=$(curl -fs -o /dev/null -w '%{http_code}' -H "If-None-Match: $ETAG" \
    "http://$ADDR/v1/experiments?kind=table1&apps=fft,lu&procs=4&scale=default")
echo "status: $CODE"
[ "$CODE" = 304 ]

echo "== stream a sweep: SSE progress, then the result =="
curl -fsN "http://$ADDR/v1/experiments?kind=speedups&apps=fft&plist=1,2&scale=default&stream=1" \
    | grep -E '^(event|data)' | head -n 12

echo "== degraded keep-going run (daemon restarted with a fault rule) =="
kill -TERM "$PID"; wait "$PID" || true
./splashd.bin -addr "$ADDR" -no-cache -fault 'error@1=job:run fft*' >"$LOG" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
    if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fs -D- -X POST "http://$ADDR/v1/experiments" \
    -d '{"kind":"table1","apps":["fft","radix"],"procs":2,"scale":"default","keepGoing":true}' \
    | grep -iE 'x-splashd-degraded|"failures"|"label"' || true

echo "== metrics =="
curl -fs "http://$ADDR/metrics" | head -n 25

echo "== graceful shutdown =="
kill -TERM "$PID"
wait "$PID"
echo "exit: $?"
