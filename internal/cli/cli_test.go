package cli

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"splash2/internal/core"
)

func TestParseProcList(t *testing.T) {
	got, err := ParseProcList(" 8, 1,2 ,8,4")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 4, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseProcList = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "8abc", "0", "-2", "1,,2", "1;2"} {
		if _, err := ParseProcList(bad); err == nil {
			t.Errorf("ParseProcList(%q) accepted", bad)
		}
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{core.ErrFailures, ExitDegraded},
		{fmt.Errorf("3 lost: %w", core.ErrFailures), ExitDegraded},
		{errors.New("disk on fire"), ExitRuntime},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestParseDelegates(t *testing.T) {
	if s, err := ParseScale("paper"); err != nil || s != core.PaperScale {
		t.Errorf("ParseScale(paper) = %v, %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted huge")
	}
	if m, err := ParseExecMode("record-replay"); err != nil || m != core.RecordReplayExec {
		t.Errorf("ParseExecMode = %v, %v", m, err)
	}
	if _, err := ParseExecMode("warp"); err == nil {
		t.Error("ParseExecMode accepted warp")
	}
}
