// Package cli holds the conventions shared by the repository's
// command-line entry points (characterize, splashd): the process exit
// taxonomy and the flag-value parsers both binaries accept. Keeping them
// in one place pins the contract — scripts driving either binary see
// the same exit codes and the same flag grammar.
package cli

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"splash2/internal/core"
)

// Exit statuses shared by every binary: clean completion, bad usage,
// degraded completion under keep-going (results delivered, some
// experiments lost), hard runtime error.
const (
	ExitOK       = 0
	ExitUsage    = 1
	ExitDegraded = 2
	ExitRuntime  = 3
)

// ExitCode maps a run's terminal error to the exit taxonomy: nil is
// clean, core.ErrFailures (a keep-going run that lost experiments but
// delivered results) is degraded, anything else is a runtime error.
// Usage errors never reach this point — they are detected before a run
// starts.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, core.ErrFailures):
		return ExitDegraded
	default:
		return ExitRuntime
	}
}

// ParseProcList parses a comma-separated list of processor counts,
// rejecting anything that is not a whole positive integer (Sscanf-style
// parsing would silently accept trailing junk like "8abc"). The result
// is deduplicated and sorted ascending so sweeps are well-ordered.
func ParseProcList(s string) ([]int, error) {
	seen := make(map[int]bool)
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		p, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -plist entry %q: not an integer", f)
		}
		if p < 1 {
			return nil, fmt.Errorf("bad -plist entry %q: must be ≥ 1", f)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out, nil
}

// ParseScale resolves a -scale flag value.
func ParseScale(name string) (core.Scale, error) { return core.ParseScale(name) }

// ParseExecMode resolves a -mode flag value.
func ParseExecMode(name string) (core.ExecMode, error) { return core.ParseExecMode(name) }
