package serve

import (
	"bytes"
	"context"
	"sync"

	"splash2/internal/core"
	"splash2/internal/runner"
)

// flight is one in-progress experiment execution, shared by every
// request that asked for the same canonical experiment while it ran.
// Requests are content-addressed (core.Request.Key), so "the same
// experiment" is exact: any two requests with equal keys would produce
// byte-identical responses, which is what makes handing one request's
// result to another correct.
type flight struct {
	key  string
	done chan struct{} // closed when body/err are final

	// Results, final under done.
	body     []byte // the rendered JSON response (Results.WriteJSON bytes)
	etag     string
	degraded int // failed experiments carried in the body's manifest
	err      error

	// Progress fan-out to streaming subscribers.
	mu   sync.Mutex
	subs map[chan runner.ProgressEvent]struct{}
}

// subscribe attaches a progress listener to the flight. The channel is
// buffered; a subscriber that falls behind loses events rather than
// stalling the experiment (progress sinks must not block). The returned
// cancel detaches and closes the channel.
func (f *flight) subscribe() (<-chan runner.ProgressEvent, func()) {
	ch := make(chan runner.ProgressEvent, 256)
	f.mu.Lock()
	if f.subs == nil {
		f.subs = make(map[chan runner.ProgressEvent]struct{})
	}
	f.subs[ch] = struct{}{}
	f.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, ch)
			f.mu.Unlock()
			close(ch)
		})
	}
}

// publish fans one progress event out to the subscribers, dropping it
// for any subscriber whose buffer is full.
func (f *flight) publish(ev runner.ProgressEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for ch := range f.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never block the workers
		}
	}
}

// coalescer deduplicates concurrent identical requests onto single
// executions (singleflight keyed by the request's content address) and
// bounds how many executions the daemon accepts at once: up to inflight
// flights run on the engine while up to queue more wait for a slot;
// beyond that join refuses and the caller sheds load with 429.
//
// Flights are keyed by the same hash as the result cache, so the
// admission pipeline composes: a repeated request hits, in order, the
// HTTP validator (ETag, no work at all), a live flight (shares an
// in-progress execution), the engine memo/disk cache (re-serves a
// completed one), and only then real execution.
type coalescer struct {
	engine *core.Engine

	slots chan struct{} // execution permits (capacity = inflight limit)
	limit int           // inflight + queued cap

	mu      sync.Mutex
	flights map[string]*flight
	active  int // flights admitted and not yet finished

	// Cumulative counters (metrics).
	started   int64 // flights that ran (leaders)
	coalesced int64 // requests served by joining an existing flight
	rejected  int64 // joins refused because the pipeline was full

	// hookFlightStart, when non-nil, runs in the flight goroutine before
	// the engine call. Tests use it to hold flights open deterministically.
	hookFlightStart func(key string)
}

func newCoalescer(engine *core.Engine, inflight, queue int) *coalescer {
	return &coalescer{
		engine:  engine,
		slots:   make(chan struct{}, inflight),
		limit:   inflight + queue,
		flights: make(map[string]*flight),
	}
}

// join returns the flight computing req, starting one if none is live.
// ok=false means the daemon is saturated (inflight + queued flights at
// the cap) and the caller must shed the request; joining an existing
// flight always succeeds — it adds no load.
//
// The flight runs detached on ctx (the server's base context, not any
// one request's): a client disconnecting mid-flight never cancels an
// execution other clients share — and since results are cached, even a
// flight every client abandoned completes into cache warmth rather than
// wasted work.
func (c *coalescer) join(ctx context.Context, req core.Request) (*flight, bool) {
	key := req.Key().String()
	c.mu.Lock()
	if f, live := c.flights[key]; live {
		c.coalesced++
		c.mu.Unlock()
		return f, true
	}
	if c.active >= c.limit {
		c.rejected++
		c.mu.Unlock()
		return nil, false
	}
	f := &flight{key: key, etag: req.ETag(), done: make(chan struct{})}
	c.flights[key] = f
	c.active++
	c.started++
	c.mu.Unlock()

	// The leader's deadline bounds the flight context: doomed work is
	// cancelled whether it is still queued for a slot or already
	// executing, so an expired request never wedges the pipeline. (The
	// deadline is excluded from the content address, so a patient and an
	// impatient client still coalesce — the leader's patience governs.)
	go func() {
		fctx, cancel := ctx, context.CancelFunc(func() {})
		if d := req.Deadline(); d > 0 {
			fctx, cancel = context.WithTimeout(ctx, d)
		}
		defer cancel()
		c.run(fctx, req, f)
	}()
	return f, true
}

// run executes one flight: wait for an execution slot, run the request
// through a scoped engine view with progress streaming to subscribers,
// render the response bytes once, finish.
func (c *coalescer) run(ctx context.Context, req core.Request, f *flight) {
	defer func() {
		c.mu.Lock()
		delete(c.flights, f.key)
		c.active--
		c.mu.Unlock()
		close(f.done)
	}()

	select {
	case c.slots <- struct{}{}:
		defer func() { <-c.slots }()
	case <-ctx.Done():
		f.err = ctx.Err()
		return
	}
	if hook := c.hookFlightStart; hook != nil {
		hook(f.key)
	}

	res, err := c.engine.Do(ctx, req, f.publish)
	if err != nil && res == nil {
		f.err = err
		return
	}
	// A degraded keep-going result (ErrFailures) still has a body: the
	// surviving sections plus the failure manifest, exactly as the CLI
	// prints them.
	var buf bytes.Buffer
	if werr := res.WriteJSON(&buf); werr != nil {
		f.err = werr
		return
	}
	f.body = buf.Bytes()
	f.degraded = len(res.Failures)
}

// counts snapshots the coalescer's cumulative and instantaneous state.
func (c *coalescer) counts() (started, coalesced, rejected int64, active, executing int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started, c.coalesced, c.rejected, c.active, len(c.slots)
}

// idle reports whether no flights are live (used by drain).
func (c *coalescer) idle() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active == 0
}
