package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"splash2/internal/cli"
	"splash2/internal/core"
)

// TestDeadlineExceededReturns504: a client whose deadline lapses while
// its flight executes gets the documented JSON 504 immediately — and the
// server is not wedged: the flight finishes for whoever is patient, a
// later request succeeds and a drain completes.
func TestDeadlineExceededReturns504(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{})
	gate := make(chan struct{})
	s.co.hookFlightStart = func(string) { <-gate }

	start := time.Now()
	resp := postJSON(t, ts.URL, smallReq(), map[string]string{headerDeadline: "100ms"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("doomed request = %d, want 504 (body: %s)", resp.StatusCode, b)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("504 took %v; the deadline did not cut the wait", waited)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("504 body is not the JSON error shape: %v", err)
	}
	resp.Body.Close()
	if eb.Exit != cli.ExitRuntime {
		t.Errorf("504 exit taxonomy = %d, want %d", eb.Exit, cli.ExitRuntime)
	}
	if eb.Error == "" {
		t.Error("504 body carries no error text")
	}

	// Release the flight (the closed gate no longer blocks anyone); the
	// server must remain fully usable.
	close(gate)
	resp = postJSON(t, ts.URL, smallReq(), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after a 504 = %d, want 200", resp.StatusCode)
	}

	// The 504 is visible in /metrics and drain is not wedged.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.Deadlines.Exceeded == 0 {
		t.Error("metrics do not count the exceeded deadline")
	}
	if !s.BeginDrain(10 * time.Second) {
		t.Error("drain wedged after a deadline 504")
	}
}

// TestDeadlineParamValidation: the GET deadline query parameter must be
// a positive duration.
func TestDeadlineParamValidation(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	for _, q := range []string{"deadline=bogus", "deadline=-5s"} {
		resp, err := http.Get(ts.URL + "/v1/experiments?kind=table1&apps=fft&procs=2&scale=default&" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET with %s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestMetricsLeaseAndJournal: with a cache directory the engine holds
// work leases and journals the run; both must surface in /metrics.
func TestMetricsLeaseAndJournal(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{CacheDir: t.TempDir()}, Options{})
	resp := postJSON(t, ts.URL, smallReq(), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiment = %d, want 200", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Lease.Acquired == 0 {
		t.Error("metrics report no acquired leases despite a cache dir")
	}
	if !m.Journal.Enabled || m.Journal.RunID == "" {
		t.Errorf("journal block = %+v, want enabled with a run id", m.Journal)
	}
	if m.Journal.Appended == 0 {
		t.Error("journal appended no events during a real run")
	}
}
