package serve

import (
	"sync"
	"time"
)

// endpointStats accumulates per-endpoint request counts and latency.
type endpointStats struct {
	mu sync.Mutex
	m  map[string]*endpointStat
}

type endpointStat struct {
	Count         int64 `json:"count"`
	TotalMicros   int64 `json:"totalMicros"`
	MaxMicros     int64 `json:"maxMicros"`
	ErrorCount    int64 `json:"errors"`    // 4xx
	FailureCount  int64 `json:"failures"`  // 5xx
	NotModified   int64 `json:"notModified"`
	DegradedCount int64 `json:"degraded"`
}

func newEndpointStats() *endpointStats {
	return &endpointStats{m: make(map[string]*endpointStat)}
}

// observe records one finished request against its endpoint.
func (s *endpointStats) observe(endpoint string, status int, degraded bool, d time.Duration) {
	us := d.Microseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.m[endpoint]
	if st == nil {
		st = &endpointStat{}
		s.m[endpoint] = st
	}
	st.Count++
	st.TotalMicros += us
	if us > st.MaxMicros {
		st.MaxMicros = us
	}
	switch {
	case status == 304:
		st.NotModified++
	case status >= 500:
		st.FailureCount++
	case status >= 400:
		st.ErrorCount++
	}
	if degraded {
		st.DegradedCount++
	}
}

// snapshot copies the stats map for JSON rendering.
func (s *endpointStats) snapshot() map[string]endpointStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]endpointStat, len(s.m))
	for k, v := range s.m {
		out[k] = *v
	}
	return out
}

// Metrics is the /metrics response: scheduling and cache counters from
// the shared engine, coalescing and admission state, and per-endpoint
// request statistics. All counters are cumulative since boot except the
// Queue block, which is instantaneous.
type Metrics struct {
	// Engine: cumulative scheduling counters (see runner.Counts) plus
	// long-lived state sizes.
	Engine struct {
		Executed     int64   `json:"executed"`
		CacheHits    int64   `json:"cacheHits"`
		MemoHits     int64   `json:"memoHits"`
		Retries      int64   `json:"retries"`
		Failures     int64   `json:"failures"`
		Skipped      int64   `json:"skipped"`
		HitRatio     float64 `json:"hitRatio"` // (cache+memo) / (cache+memo+executed)
		MemoEntries  int     `json:"memoEntries"`
		FailureLog   int     `json:"failureLog"`
		FailuresLost int64   `json:"failuresLost"`
	} `json:"engine"`

	// Lease: cross-process work-lease activity on the shared cache dir
	// (zero unless another process contends for the same experiments).
	Lease struct {
		Acquired  int64 `json:"acquired"`  // jobs executed under a won lease
		Shared    int64 `json:"shared"`    // jobs adopted from another process's lease
		Takeovers int64 `json:"takeovers"` // stale leases reclaimed from dead owners
	} `json:"lease"`

	// Journal: the durable run journal under <cache-dir>/journal.
	Journal struct {
		Enabled  bool   `json:"enabled"`
		RunID    string `json:"runId,omitempty"`
		Appended int64  `json:"appended"` // events durably written this run
	} `json:"journal"`

	// Deadlines: request-deadline outcomes.
	Deadlines struct {
		Exceeded int64 `json:"exceeded"` // requests answered 504
	} `json:"deadlines"`

	// Coalescing: flights started vs. requests that joined one.
	Coalescing struct {
		Flights   int64 `json:"flights"`
		Coalesced int64 `json:"coalesced"`
		Rejected  int64 `json:"rejected"`
	} `json:"coalescing"`

	// Queue: instantaneous admission state.
	Queue struct {
		Active    int   `json:"active"`    // flights admitted, not yet done
		Executing int   `json:"executing"` // flights holding an engine slot
		Queued    int   `json:"queued"`    // flights waiting for a slot
		Clients   int   `json:"clients"`   // distinct clients with live requests
		ShedByCap int64 `json:"shedByClientCap"`
		Draining  bool  `json:"draining"`
	} `json:"queue"`

	Endpoints map[string]endpointStat `json:"endpoints"`
}
