package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"splash2/internal/core"
	"splash2/internal/fault"
)

// TestLoadCoalescedSweeps is the daemon's load drill: hundreds of
// concurrent clients requesting a handful of overlapping experiment
// shapes. It pins the service's three load-bearing promises at once:
//
//   - far fewer flights run than requests arrive (coalescing works under
//     contention, not just in the two-client unit test);
//   - every response for a shape is byte-identical, and identical to
//     what a cold, serial, cache-less engine computes for the same
//     request — exactly the bytes `characterize -format json` prints,
//     since both are Results.WriteJSON of deterministic results;
//   - a revalidation wave afterwards is pure 304s with zero new work.
func TestLoadCoalescedSweeps(t *testing.T) {
	clients, perShape := 240, 60
	if testing.Short() {
		clients, perShape = 48, 12
	}

	shapes := []core.Request{
		{Kind: core.KindTable1, Apps: []string{"fft", "radix"}, Procs: 2, Scale: "default"},
		{Kind: core.KindSync, Apps: []string{"fft", "lu"}, Procs: 2, Scale: "default"},
		// Overlapping sweeps: both share the fft p=1 and p=2 executions
		// with each other and with the runs above, so the engine-level
		// dedup is exercised across flights, not only within one.
		{Kind: core.KindSpeedups, Apps: []string{"fft"}, ProcList: []int{1, 2}, Scale: "default"},
		{Kind: core.KindSpeedups, Apps: []string{"fft", "radix"}, ProcList: []int{1, 2, 4}, Scale: "default"},
	}
	if clients != perShape*len(shapes) {
		t.Fatalf("bad test geometry: %d clients over %d shapes", clients, len(shapes))
	}

	// The drill asserts overlap (flights ≪ requests), so each shape's
	// first flight must stay open until the slowest clients have sent
	// their requests. The engine keeps getting faster while 240
	// concurrent connects on a small host spread arrivals over hundreds
	// of milliseconds, so without a floor a shape fragments into many
	// short memo-served flights and the count says nothing about
	// coalescing. A deterministic delay on first job execution (memoized
	// reruns don't re-execute, so only the cold flights are held) pins
	// the overlap window without changing any result bytes.
	inj := fault.New(1, fault.Rule{Pattern: "job:*", Action: fault.Delay, Delay: 150 * time.Millisecond})
	s, ts := newTestServer(t, core.EngineOptions{Workers: 4, Fault: inj}, Options{
		MaxInflight: 2,
		// Queue generously: this drill measures coalescing, not load
		// shedding, so no request should see 429.
		MaxQueue:  len(shapes) * 4,
		PerClient: clients,
	})

	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(shapes[i%len(shapes)])
			hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments", bytes.NewReader(body))
			hr.Header.Set("X-Client-ID", fmt.Sprintf("load-%d", i))
			resp, err := client.Do(hr)
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, code, bodies[i])
		}
	}

	// Every client of a shape saw the same bytes.
	for i := range bodies {
		if ref := bodies[i%len(shapes)]; !bytes.Equal(bodies[i], ref) {
			t.Errorf("client %d body differs from its shape's reference", i)
		}
	}

	// Coalescing did its job: the flight count is a tiny fraction of the
	// request count. (It may exceed len(shapes): a request arriving after
	// its shape's flight finished starts a new flight — which the memo
	// then serves without re-executing.)
	started, coalesced, rejected, _, _ := s.co.counts()
	if rejected != 0 {
		t.Errorf("%d requests shed; the queue should have absorbed all leaders", rejected)
	}
	if started >= int64(clients)/4 {
		t.Errorf("flights = %d for %d requests; coalescing is not working", started, clients)
	}
	if started+coalesced != int64(clients) {
		t.Errorf("flights(%d) + coalesced(%d) != requests(%d)", started, coalesced, clients)
	}

	// Byte-identity with the CLI's cold path: a fresh serial engine with
	// no cache and no daemon produces the same JSON for each shape.
	for i, shape := range shapes {
		cold, err := core.NewEngine(core.EngineOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cold.Do(context.Background(), shape, nil)
		if err != nil {
			t.Fatalf("cold shape %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), bodies[i]) {
			t.Errorf("shape %d: served body differs from cold serial run", i)
		}
	}

	// Revalidation wave: every client still holding its copy gets 304,
	// and the engine schedules nothing new.
	before := s.engine.Counts().Submitted
	for i, shape := range shapes {
		resp := postJSON(t, ts.URL, shape, map[string]string{"If-None-Match": shape.ETag()})
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("revalidation of shape %d = %d, want 304", i, resp.StatusCode)
		}
	}
	if after := s.engine.Counts().Submitted; after != before {
		t.Errorf("revalidation wave submitted %d jobs", after-before)
	}
}
