package serve

import (
	"net"
	"net/http"
	"sync"
)

// admission enforces the per-client concurrency cap. The coalescer
// bounds total load on the engine; this bounds how much of that
// capacity one client can occupy, so a client fanning out a sweep
// cannot starve everyone else — even when its requests would only
// join flights.
type admission struct {
	limit int
	mu    sync.Mutex
	live  map[string]int
	shed  int64 // cumulative 429s from this cap (metrics)
}

func newAdmission(perClient int) *admission {
	return &admission{limit: perClient, live: make(map[string]int)}
}

// clientID identifies the requester: the X-Client-ID header when
// present (how cooperating clients and tests name themselves), else the
// remote address without the port, so one host's connections share a
// budget.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// acquire admits one request for id, returning a release func, or
// ok=false when the client is at its cap.
func (a *admission) acquire(id string) (release func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.live[id] >= a.limit {
		a.shed++
		return nil, false
	}
	a.live[id]++
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if a.live[id] <= 1 {
			delete(a.live, id) // keep the map from accumulating dead clients
		} else {
			a.live[id]--
		}
	}, true
}

// counts snapshots the cap's state: distinct live clients and
// cumulative shed requests.
func (a *admission) counts() (clients int, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.live), a.shed
}
