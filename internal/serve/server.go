// Package serve implements splashd's HTTP layer: characterization as a
// service. One shared core.Engine executes every request; the layer in
// front of it turns the engine's determinism and content-addressed
// caching into HTTP semantics:
//
//   - Requests are canonicalized and content-addressed (core.Request.Key),
//     so the response ETag is known before any work happens. A client
//     revalidating with If-None-Match gets 304 with zero execution.
//   - Concurrent identical requests coalesce onto a single execution
//     (singleflight keyed by the same hash as the result cache); each
//     extra client costs a subscription, not a simulation.
//   - Admission control bounds the pipeline: a fixed number of executing
//     flights, a bounded queue behind them, a per-client concurrency cap.
//     Beyond those, requests shed with 429 + Retry-After rather than
//     degrade everyone. BeginDrain flips new experiments to 503 while
//     live flights finish (graceful SIGTERM).
//   - Progress streams as server-sent events fed by the runner's
//     per-graph progress hooks; requests are isolated scopes (PR 3 fault
//     tolerance per request), so one client's keep-going failures never
//     leak into another's response.
//
// The non-streaming response body is byte-identical to
// `characterize -format json` for the equivalent flags: both are
// core.Results.WriteJSON of the same deterministic results.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"splash2/internal/cli"
	"splash2/internal/core"

	// The daemon serves the full suite; pull in every program's
	// registration.
	_ "splash2/internal/apps/all"
)

// Options configures a Server.
type Options struct {
	// MaxInflight bounds concurrently executing flights (≤ 0 selects 4).
	MaxInflight int
	// MaxQueue bounds flights admitted but waiting for an execution slot
	// (≤ 0 selects 16). Requests beyond MaxInflight+MaxQueue shed with
	// 429 unless they coalesce onto a live flight.
	MaxQueue int
	// PerClient bounds one client's concurrent requests (≤ 0 selects 8).
	PerClient int
}

// maxBodyBytes bounds the JSON request body: experiment specs are tiny.
const maxBodyBytes = 1 << 20

// Server is splashd's handler set. Create with New, mount via Handler.
type Server struct {
	engine *core.Engine
	co     *coalescer
	adm    *admission
	stats  *endpointStats

	baseCtx   context.Context // flights run on this, not on request contexts
	drain     context.CancelFunc
	draining  chan struct{} // closed by BeginDrain
	markDrain func()

	// deadline504 counts requests answered 504 because their deadline
	// expired before a result existed (metrics).
	deadline504 atomic.Int64
}

// New builds a server around engine. ctx is the daemon's base context:
// flights run on it (detached from any single client), and cancelling
// it aborts them; use BeginDrain for a graceful stop instead.
func New(ctx context.Context, engine *core.Engine, o Options) *Server {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 16
	}
	if o.PerClient <= 0 {
		o.PerClient = 8
	}
	if ctx == nil {
		ctx = context.Background()
	}
	flightCtx, cancel := context.WithCancel(ctx)
	s := &Server{
		engine:   engine,
		co:       newCoalescer(engine, o.MaxInflight, o.MaxQueue),
		adm:      newAdmission(o.PerClient),
		stats:    newEndpointStats(),
		baseCtx:  flightCtx,
		drain:    cancel,
		draining: make(chan struct{}),
	}
	return s
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/v1/experiments", s.instrument("experiments", s.handleExperiments))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// BeginDrain stops admitting experiment work (new requests get 503 +
// Connection: close) and waits until live flights finish, up to
// timeout; it reports whether the pipeline drained completely. Flights
// still running at the deadline are cancelled.
func (s *Server) BeginDrain(timeout time.Duration) bool {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.co.idle() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.drain() // abandon stragglers
	return s.co.idle()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// instrument wraps a handler with latency/status accounting.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.stats.observe(endpoint, sw.status, sw.Header().Get(headerDegraded) != "", time.Since(start))
	}
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the instrumentation layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m Metrics
	c := s.engine.Counts()
	m.Engine.Executed = c.Executed
	m.Engine.CacheHits = c.CacheHits
	m.Engine.MemoHits = c.MemoHits
	m.Engine.Retries = c.Retried
	m.Engine.Failures = c.Failed
	m.Engine.Skipped = c.Skipped
	if served := c.CacheHits + c.MemoHits; served+c.Executed > 0 {
		m.Engine.HitRatio = float64(served) / float64(served+c.Executed)
	}
	ms := s.engine.MemoStats()
	m.Engine.MemoEntries = ms.MemoEntries
	m.Engine.FailureLog = ms.FailureLog
	m.Engine.FailuresLost = ms.FailuresLost

	m.Lease.Acquired = c.LeaseAcquired
	m.Lease.Shared = c.LeaseShared
	m.Lease.Takeovers = c.LeaseTakeovers
	if j := s.engine.Journal(); j != nil {
		m.Journal.Enabled = true
		m.Journal.RunID = j.RunID()
		m.Journal.Appended = j.Appended()
	}
	m.Deadlines.Exceeded = s.deadline504.Load()

	started, coalesced, rejected, active, executing := s.co.counts()
	m.Coalescing.Flights = started
	m.Coalescing.Coalesced = coalesced
	m.Coalescing.Rejected = rejected
	m.Queue.Active = active
	m.Queue.Executing = executing
	if q := active - executing; q > 0 {
		m.Queue.Queued = q
	}
	m.Queue.Clients, m.Queue.ShedByCap = s.adm.counts()
	m.Queue.Draining = s.isDraining()
	m.Endpoints = s.stats.snapshot()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

// Response headers specific to splashd.
const (
	// headerDegraded carries the failure count of a keep-going response
	// whose body includes a failure manifest.
	headerDegraded = "X-Splashd-Degraded"
	// headerDeadline carries the client's request deadline as a Go
	// duration ("30s", "2m"); equivalent to the timeoutMs body field or
	// the deadline query parameter. The deadline does not change the
	// request's content address, so impatient and patient clients still
	// coalesce onto one flight.
	headerDeadline = "X-Splashd-Deadline"
)

// errorBody is the JSON error envelope for experiment errors that carry
// CLI exit-taxonomy context (deadline expiry, cancellation).
type errorBody struct {
	Error string `json:"error"`
	// Exit is the code the equivalent CLI run would exit with
	// (internal/cli taxonomy: 0 ok, 1 usage, 2 degraded, 3 runtime).
	Exit int `json:"exit"`
}

// writeError renders err as a JSON error envelope with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: "splashd: " + err.Error(), Exit: cli.ExitCode(err)})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		http.Error(w, "splashd: "+err.Error(), http.StatusBadRequest)
		return
	}
	creq, err := req.Canonical()
	if err != nil {
		http.Error(w, "splashd: "+err.Error(), http.StatusBadRequest)
		return
	}

	// Revalidation first: the ETag is the content address of the
	// canonical request, and results are deterministic, so a matching
	// If-None-Match means the client's copy is current — no admission,
	// no execution, no bytes.
	etag := creq.ETag()
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	if s.isDraining() {
		w.Header().Set("Connection", "close")
		http.Error(w, "splashd: draining", http.StatusServiceUnavailable)
		return
	}

	// Per-client cap covers the whole request lifetime, subscriptions
	// included; the flight pipeline cap is applied inside join.
	release, ok := s.adm.acquire(clientID(r))
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "splashd: client concurrency limit", http.StatusTooManyRequests)
		return
	}
	defer release()

	f, ok := s.co.join(s.baseCtx, creq)
	if !ok {
		w.Header().Set("Retry-After", "2")
		http.Error(w, "splashd: at capacity", http.StatusTooManyRequests)
		return
	}

	if wantsStream(r) {
		s.streamFlight(w, r, f)
		return
	}

	// A request deadline bounds this client's wait, not just the
	// execution: a joiner whose deadline expires while the flight is
	// still queued or executing gets the documented 504 immediately (the
	// flight itself continues for more patient subscribers).
	var doomed <-chan time.Time
	if d := creq.Deadline(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		doomed = t.C
	}
	select {
	case <-f.done:
	case <-doomed:
		s.deadline504.Add(1)
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("deadline %v exceeded before the experiment finished: %w", creq.Deadline(), context.DeadlineExceeded))
		return
	case <-r.Context().Done():
		// Client gone. The flight keeps running for its other
		// subscribers (and for the cache); nothing to write.
		return
	}
	s.writeResult(w, f)
}

// writeResult renders a finished flight as the non-streaming response.
func (s *Server) writeResult(w http.ResponseWriter, f *flight) {
	if f.err != nil {
		switch {
		case errors.Is(f.err, context.DeadlineExceeded):
			// The flight's own deadline expired (request deadline mapped
			// onto the flight context): doomed work was cancelled, not
			// left to wedge an execution slot.
			s.deadline504.Add(1)
			writeError(w, http.StatusGatewayTimeout, f.err)
		case errors.Is(f.err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, f.err)
		default:
			http.Error(w, "splashd: "+f.err.Error(), http.StatusInternalServerError)
		}
		return
	}
	if f.degraded > 0 {
		w.Header().Set(headerDegraded, strconv.Itoa(f.degraded))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(f.body)))
	w.Write(f.body)
}

// streamFlight serves one request as an SSE stream: progress events as
// the flight's jobs complete, then a terminal result (the same JSON
// bytes as the plain response) or error event.
func (s *Server) streamFlight(w http.ResponseWriter, r *http.Request, f *flight) {
	events, cancel := f.subscribe()
	defer cancel()
	sse, ok := newSSE(w)
	if !ok {
		http.Error(w, "splashd: transport cannot stream", http.StatusNotImplemented)
		return
	}
	for {
		select {
		case ev := <-events:
			data, _ := json.Marshal(ev)
			sse.event("progress", data)
		case <-f.done:
			// Drain events buffered before completion so clients see the
			// full progress record.
			for {
				select {
				case ev := <-events:
					data, _ := json.Marshal(ev)
					sse.event("progress", data)
					continue
				default:
				}
				break
			}
			if f.err != nil {
				sse.event("error", []byte(f.err.Error()))
			} else {
				if f.degraded > 0 {
					sse.event("degraded", []byte(strconv.Itoa(f.degraded)))
				}
				sse.event("result", f.body)
			}
			return
		case <-r.Context().Done():
			return // subscriber gone; flight continues
		}
	}
}

// wantsStream reports whether the client asked for SSE.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// etagMatch implements If-None-Match for strong validators: a list of
// quoted tags or the wildcard.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// parseRequest decodes an experiment spec from a POST JSON body or GET
// query parameters.
func parseRequest(r *http.Request) (core.Request, error) {
	var req core.Request
	if r.Method == http.MethodPost {
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %v", err)
		}
		return req, applyDeadlineHeader(r, &req)
	}
	q := r.URL.Query()
	req.Kind = q.Get("kind")
	if v := q.Get("apps"); v != "" {
		req.Apps = strings.Split(v, ",")
	}
	var err error
	if v := q.Get("procs"); v != "" {
		if req.Procs, err = strconv.Atoi(v); err != nil {
			return req, fmt.Errorf("bad procs %q", v)
		}
	}
	if v := q.Get("plist"); v != "" {
		if req.ProcList, err = cli.ParseProcList(v); err != nil {
			return req, err
		}
	}
	req.Scale = q.Get("scale")
	req.Mode = q.Get("mode")
	if v := q.Get("cacheSize"); v != "" {
		if req.CacheSize, err = strconv.Atoi(v); err != nil {
			return req, fmt.Errorf("bad cacheSize %q", v)
		}
	}
	if v := q.Get("sampleRate"); v != "" {
		if req.SampleRate, err = strconv.ParseFloat(v, 64); err != nil {
			return req, fmt.Errorf("bad sampleRate %q", v)
		}
	}
	if v := q.Get("sampleSeed"); v != "" {
		if req.SampleSeed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return req, fmt.Errorf("bad sampleSeed %q", v)
		}
	}
	if v := q.Get("keepGoing"); v == "1" || v == "true" {
		req.KeepGoing = true
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return req, fmt.Errorf("bad deadline %q", v)
		}
		req.TimeoutMillis = d.Milliseconds()
	}
	return req, applyDeadlineHeader(r, &req)
}

// applyDeadlineHeader folds the X-Splashd-Deadline header into the
// request. The header wins over a body/query deadline: it is the
// transport-level knob a proxy or impatient client sets without
// rewriting the experiment spec.
func applyDeadlineHeader(r *http.Request, req *core.Request) error {
	v := r.Header.Get(headerDeadline)
	if v == "" {
		return nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return fmt.Errorf("bad %s %q", headerDeadline, v)
	}
	req.TimeoutMillis = d.Milliseconds()
	return nil
}
