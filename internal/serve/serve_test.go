package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"splash2/internal/core"
	"splash2/internal/fault"
)

// newTestServer boots a splashd handler set over a fresh engine.
func newTestServer(t *testing.T, eo core.EngineOptions, so Options) (*Server, *httptest.Server) {
	t.Helper()
	if eo.Workers == 0 {
		eo.Workers = 4
	}
	engine, err := core.NewEngine(eo)
	if err != nil {
		t.Fatal(err)
	}
	s := New(context.Background(), engine, so)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// smallReq is a fast experiment: Table 1 over two programs at 2 procs.
func smallReq() core.Request {
	return core.Request{Kind: core.KindTable1, Apps: []string{"fft", "radix"}, Procs: 2, Scale: "default"}
}

func postJSON(t *testing.T, url string, req core.Request, hdr map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/experiments", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestExperimentBadRequests(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	cases := []core.Request{
		{},                          // no kind
		{Kind: "figure9"},           // unknown kind
		{Kind: "table1", Apps: []string{"doom"}}, // unknown app
		{Kind: "table1", Procs: 999},             // out of range
	}
	for _, req := range cases {
		resp := postJSON(t, ts.URL, req, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, resp.StatusCode)
		}
	}
	// Unknown JSON fields are rejected: a misspelled parameter must not
	// silently select defaults (that would cache-key the wrong spec).
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"kind":"table1","prcs":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	// Method checks.
	resp, err = http.Head(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("HEAD: status %d, want 405", resp.StatusCode)
	}
}

// TestIfNoneMatchSkipsExecution pins the revalidation promise: a client
// holding a current copy is told so without the daemon running anything
// — even from cold, because the ETag is the request's content address,
// not a digest of a previously computed body.
func TestIfNoneMatchSkipsExecution(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{})
	req := smallReq()
	resp := postJSON(t, ts.URL, req, map[string]string{"If-None-Match": req.ETag()})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != req.ETag() {
		t.Errorf("ETag = %q, want %q", got, req.ETag())
	}
	if c := s.engine.Counts(); c.Submitted != 0 {
		t.Errorf("revalidation submitted %d jobs, want 0", c.Submitted)
	}
	started, _, _, _, _ := s.co.counts()
	if started != 0 {
		t.Errorf("revalidation started %d flights, want 0", started)
	}
}

func TestExperimentRoundTripAndETag(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	req := smallReq()
	resp := postJSON(t, ts.URL, req, nil)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	etag := resp.Header.Get("ETag")
	if etag != req.ETag() {
		t.Errorf("ETag = %q, want %q", etag, req.ETag())
	}
	var res core.Results
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("body not Results JSON: %v", err)
	}
	if len(res.Table1) != 2 {
		t.Errorf("Table1 rows = %d, want 2", len(res.Table1))
	}
	// Warm revalidation round-trips the tag.
	resp = postJSON(t, ts.URL, req, map[string]string{"If-None-Match": etag})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("warm revalidation = %d, want 304", resp.StatusCode)
	}
}

// TestCoalescing pins singleflight: N concurrent identical requests,
// one flight, identical bodies. The start hook holds the flight open
// until every request has joined, so the test is deterministic rather
// than timing-dependent.
func TestCoalescing(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{})
	const clients = 8
	gate := make(chan struct{})
	s.co.hookFlightStart = func(string) { <-gate }

	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	status := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL, smallReq(), map[string]string{"X-Client-ID": fmt.Sprintf("c%d", i)})
			defer resp.Body.Close()
			status[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Release the flight once all stragglers have joined it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, coalesced, _, _, _ := s.co.counts()
		if coalesced >= clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if status[i] != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, status[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d body differs from client 0", i)
		}
	}
	started, coalesced, _, _, _ := s.co.counts()
	if started != 1 {
		t.Errorf("flights = %d, want 1", started)
	}
	if coalesced != clients-1 {
		t.Errorf("coalesced = %d, want %d", coalesced, clients-1)
	}
}

// TestDisconnectDoesNotCancelFlight pins per-request isolation the
// other way round: the client that started a flight hanging up must not
// cancel the execution other clients share.
func TestDisconnectDoesNotCancelFlight(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s.co.hookFlightStart = func(string) {
		once.Do(func() { close(started) })
		<-gate
	}

	// Leader: starts the flight, disconnects while it is held open.
	body, _ := json.Marshal(smallReq())
	ctx, cancel := context.WithCancel(context.Background())
	hr, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/experiments", bytes.NewReader(body))
	hr.Header.Set("X-Client-ID", "leader")
	leaderErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		leaderErr <- err
	}()
	<-started

	// Follower joins the same flight, then the leader vanishes.
	followerBody := make(chan []byte, 1)
	go func() {
		resp := postJSON(t, ts.URL, smallReq(), map[string]string{"X-Client-ID": "follower"})
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			b = nil
		}
		followerBody <- b
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, coalesced, _, _, _ := s.co.counts()
		if coalesced >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-leaderErr; err == nil {
		t.Fatal("leader request unexpectedly succeeded before release")
	}
	close(gate)

	b := <-followerBody
	if b == nil {
		t.Fatal("follower did not receive a result after leader disconnect")
	}
	var res core.Results
	if err := json.Unmarshal(b, &res); err != nil || len(res.Table1) != 2 {
		t.Fatalf("follower result damaged after leader disconnect: %v", err)
	}
	startedN, _, _, _, _ := s.co.counts()
	if startedN != 1 {
		t.Errorf("flights = %d, want 1 (no re-execution after disconnect)", startedN)
	}
}

// TestKeepGoingDegradedResponse maps PR 3 fault tolerance onto HTTP: a
// keep-going request that loses experiments still returns 200 with the
// surviving rows, carries the failure manifest in the body, and flags
// the degradation in a header.
func TestKeepGoingDegradedResponse(t *testing.T) {
	rules, err := fault.Parse("error@1=job:run fft*")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, core.EngineOptions{Fault: fault.New(1, rules...)}, Options{})

	req := smallReq()
	req.KeepGoing = true
	resp := postJSON(t, ts.URL, req, nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status %d, want 200: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Splashd-Degraded"); got != "1" {
		t.Errorf("X-Splashd-Degraded = %q, want 1", got)
	}
	var res core.Results
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("manifest carries %d failures, want 1", len(res.Failures))
	}
	if res.Failures[0].Label == "" || res.Failures[0].Cause == "" {
		t.Errorf("manifest entry incomplete: %+v", res.Failures[0])
	}
	var surviving int
	for _, row := range res.Table1 {
		if row.Failed == "" {
			surviving++
		}
	}
	if surviving != 1 {
		t.Errorf("surviving rows = %d, want 1", surviving)
	}

	// Isolation: without keep-going (and without the fault firing again —
	// @1 is spent), the same engine serves a clean request untainted.
	resp = postJSON(t, ts.URL, smallReq(), nil)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean follow-up status %d: %s", resp.StatusCode, body)
	}
	var clean core.Results
	if err := json.Unmarshal(body, &clean); err != nil {
		t.Fatal(err)
	}
	if len(clean.Failures) != 0 {
		t.Errorf("clean response inherited %d failures", len(clean.Failures))
	}
}

func TestPerClientCap(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{PerClient: 1})
	gate := make(chan struct{})
	s.co.hookFlightStart = func(string) { <-gate }
	defer close(gate)

	// First request occupies client c1's whole budget.
	go func() {
		resp := postJSON(t, ts.URL, smallReq(), map[string]string{"X-Client-ID": "c1"})
		resp.Body.Close()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if clients, _ := s.adm.counts(); clients >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// A different experiment from the same client sheds.
	other := core.Request{Kind: core.KindSync, Apps: []string{"fft"}, Procs: 2, Scale: "default"}
	resp := postJSON(t, ts.URL, other, map[string]string{"X-Client-ID": "c1"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-client status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, shed := s.adm.counts(); shed != 1 {
		t.Errorf("shedByClientCap = %d, want 1", shed)
	}
}

func TestQueueCapacity(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{MaxInflight: 1, MaxQueue: 1, PerClient: 8})
	gate := make(chan struct{})
	s.co.hookFlightStart = func(string) { <-gate }
	defer close(gate)

	// Two distinct experiments fill the slot and the queue.
	kinds := []string{core.KindTable1, core.KindSync}
	for i, k := range kinds {
		req := core.Request{Kind: k, Apps: []string{"fft"}, Procs: 2, Scale: "default"}
		go func(i int, req core.Request) {
			resp := postJSON(t, ts.URL, req, map[string]string{"X-Client-ID": fmt.Sprintf("c%d", i)})
			resp.Body.Close()
		}(i, req)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, _, active, _ := s.co.counts()
		if active >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pipeline never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// A third distinct experiment finds the pipeline full.
	req := core.Request{Kind: core.KindSpeedups, Apps: []string{"fft"}, ProcList: []int{1, 2}, Scale: "default"}
	resp := postJSON(t, ts.URL, req, map[string]string{"X-Client-ID": "c9"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	// But joining a live flight adds no load: the queued experiment's
	// twin coalesces instead of shedding. It will block until the gate
	// opens, so only assert admission (no 429) via the coalesced counter.
	twin := core.Request{Kind: core.KindSync, Apps: []string{"fft"}, Procs: 2, Scale: "default"}
	go func() {
		resp := postJSON(t, ts.URL, twin, map[string]string{"X-Client-ID": "c10"})
		resp.Body.Close()
	}()
	for {
		_, coalesced, _, _, _ := s.co.counts()
		if coalesced >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("twin request did not coalesce while pipeline full")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStreamingSSE(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	body, _ := json.Marshal(smallReq())
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments?stream=1", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := parseSSE(t, resp.Body)
	var progress, result int
	var resultData []byte
	for _, ev := range events {
		switch ev.name {
		case "progress":
			progress++
		case "result":
			result++
			resultData = ev.data
		case "error":
			t.Fatalf("error event: %s", ev.data)
		}
	}
	if progress == 0 {
		t.Error("no progress events streamed")
	}
	if result != 1 {
		t.Fatalf("result events = %d, want 1", result)
	}

	// The reassembled result event is byte-identical to the plain
	// response for the same request.
	resp2 := postJSON(t, ts.URL, smallReq(), nil)
	plain, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(resultData, bytes.TrimSuffix(plain, []byte("\n"))) {
		t.Error("streamed result differs from plain response body")
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data []byte
}

func parseSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	var dataLines [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || len(dataLines) > 0 {
				cur.data = bytes.Join(dataLines, []byte("\n"))
				events = append(events, cur)
			}
			cur = sseEvent{}
			dataLines = nil
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			dataLines = append(dataLines, []byte(strings.TrimPrefix(line, "data: ")))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, core.EngineOptions{}, Options{})
	if !s.BeginDrain(time.Second) {
		t.Fatal("idle server did not drain")
	}
	resp := postJSON(t, ts.URL, smallReq(), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining experiments = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hresp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	// One real request so the counters move.
	resp := postJSON(t, ts.URL, smallReq(), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// And one warm twin: every job memo-served.
	resp = postJSON(t, ts.URL, smallReq(), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Engine.Executed == 0 {
		t.Error("metrics report no executed jobs")
	}
	if m.Engine.MemoHits == 0 {
		t.Error("warm twin produced no memo hits")
	}
	if m.Engine.HitRatio <= 0 || m.Engine.HitRatio >= 1 {
		t.Errorf("hitRatio = %v, want in (0,1)", m.Engine.HitRatio)
	}
	if m.Coalescing.Flights != 2 {
		t.Errorf("flights = %d, want 2", m.Coalescing.Flights)
	}
	ep, ok := m.Endpoints["experiments"]
	if !ok || ep.Count != 2 {
		t.Errorf("experiments endpoint stats = %+v", ep)
	}
}

// TestConcurrentMixedLoad exercises the full pipeline under -race:
// distinct and identical requests, streaming and plain, metrics reads
// interleaved.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{MaxInflight: 2, MaxQueue: 8, PerClient: 32})
	reqs := []core.Request{
		smallReq(),
		{Kind: core.KindSync, Apps: []string{"fft"}, Procs: 2, Scale: "default"},
		{Kind: core.KindSpeedups, Apps: []string{"radix"}, ProcList: []int{1, 2}, Scale: "default"},
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := reqs[i%len(reqs)]
			resp := postJSON(t, ts.URL, req, map[string]string{"X-Client-ID": fmt.Sprintf("c%d", i)})
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				failures.Add(1)
			}
		}(i)
		if i%6 == 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Errorf("%d requests failed with unexpected statuses", n)
	}
}

// TestSampledExperiment drills the working-set-sampled kind end to end:
// the GET query parameters select the sampling configuration, the body
// carries curves with confidence bands, and the rate is part of the
// request's content address so different rates neither share an ETag
// nor coalesce.
func TestSampledExperiment(t *testing.T) {
	_, ts := newTestServer(t, core.EngineOptions{}, Options{})
	get := func(q string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/experiments?" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	base := "kind=working-set-sampled&apps=fft&procs=2&scale=default"
	resp, body := get(base + "&sampleRate=0.5&sampleSeed=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res core.Results
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("body not Results JSON: %v", err)
	}
	if len(res.Sampled) != 1 {
		t.Fatalf("Sampled curves = %d, want 1", len(res.Sampled))
	}
	c := res.Sampled[0]
	if c.App != "fft" || c.Rate != 0.5 || c.SampleSeed != 3 {
		t.Errorf("curve identity = %q rate %v seed %d", c.App, c.Rate, c.SampleSeed)
	}
	if len(c.MissRate) != len(c.CacheSizes) || len(c.BandLo) != len(c.CacheSizes) || len(c.BandHi) != len(c.CacheSizes) {
		t.Fatalf("curve shape: %d sizes, %d est, %d lo, %d hi",
			len(c.CacheSizes), len(c.MissRate), len(c.BandLo), len(c.BandHi))
	}
	for i := range c.CacheSizes {
		if c.BandLo[i] > c.MissRate[i] || c.MissRate[i] > c.BandHi[i] {
			t.Errorf("size %d: band [%v, %v] does not contain estimate %v",
				c.CacheSizes[i], c.BandLo[i], c.BandHi[i], c.MissRate[i])
		}
	}

	// A different rate is a different experiment: distinct ETag.
	resp2, body2 := get(base + "&sampleRate=0.25&sampleSeed=3")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if resp.Header.Get("ETag") == resp2.Header.Get("ETag") {
		t.Errorf("rates 0.5 and 0.25 share ETag %q", resp.Header.Get("ETag"))
	}

	// Malformed and out-of-range sampling parameters are rejected.
	for _, bad := range []string{"sampleRate=nope", "sampleRate=1.5", "sampleRate=-0.1", "sampleSeed=-1"} {
		if resp, _ := get(base + "&" + bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
