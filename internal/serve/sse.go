package serve

import (
	"bytes"
	"fmt"
	"net/http"
)

// sseWriter frames server-sent events onto an HTTP response. splashd
// streams experiment progress this way: plain chunked HTTP, one
// "progress" event per completed job, a terminal "result" (or "error")
// event carrying the same bytes the non-streaming endpoint returns.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSE prepares w for an event stream, or reports that the transport
// cannot stream (no http.Flusher).
func newSSE(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	return &sseWriter{w: w, f: f}, true
}

// event writes one named event. Multi-line payloads (the indented
// result JSON) are framed as consecutive data: lines, which the SSE
// wire format reassembles — newline-exact — on the client.
func (s *sseWriter) event(name string, data []byte) {
	fmt.Fprintf(s.w, "event: %s\n", name)
	for _, line := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
		fmt.Fprintf(s.w, "data: %s\n", line)
	}
	fmt.Fprint(s.w, "\n")
	s.f.Flush()
}
