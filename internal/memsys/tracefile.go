package memsys

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"

	"splash2/internal/fault"
)

// TraceFile is an out-of-core view of a v2 trace container: the header
// and index footer are parsed at open, the event blocks stay on disk.
// It implements TraceSource, so ReplayMulti and StackDistances stream
// it block by block with O(block buffer) peak memory — a multi-gigabyte
// paper-scale trace replays without ever materializing the stream. The
// footer also enables random access: DecodeBlock and Window decode any
// (processor, epoch) region without touching the prefix.
//
// A TraceFile is safe for concurrent readers of distinct blocks
// (DecodeBlock and Window allocate their own buffers; the underlying
// ReaderAt must be concurrency-safe, as *os.File is); the streaming
// blocks pass reuses one buffer and is single-consumer like any
// TraceSource.
type TraceFile struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer
	inj    *fault.Injector

	homeLineSize int
	homes        []int32
	meta         TraceMeta
	index        []BlockInfo
	footerOff    int64
}

// BlockInfo describes one block of a v2 container, as recorded in the
// index footer: what it holds and where its bytes live.
type BlockInfo struct {
	// Marker flags a measurement-reset marker block (Proc is meaningless,
	// Events is 1).
	Marker bool
	// Proc is the processor whose events the block holds.
	Proc int
	// Epoch is the synchronization epoch the block was recorded in.
	Epoch uint64
	// Events is the number of events in the block.
	Events int
	// Offset is the block's byte offset in the file (at its tag byte).
	Offset int64
	// Size is the block's encoded length in bytes, tag included.
	Size int64
}

// OpenTraceFile opens an on-disk v2 trace for out-of-core streaming.
// The injector (nil for none) supplies the chaos suite's fault points:
// "trace.read" covers the open and header read, "trace.read.footer" the
// index footer, and "trace.read.block:<i>" each block decode.
func OpenTraceFile(path string, inj *fault.Injector) (*TraceFile, error) {
	if err := inj.Do(context.Background(), "trace.read"); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	tf, err := NewTraceFile(f, fi.Size(), inj)
	if err != nil {
		f.Close()
		return nil, err
	}
	tf.closer = f
	return tf, nil
}

// NewTraceFile parses the header and index footer of a v2 container
// held by any ReaderAt (a file, an mmap, a byte slice). The input is
// untrusted: a corrupt or lying footer yields a descriptive error,
// never a panic or an allocation beyond the file's own size.
func NewTraceFile(r io.ReaderAt, size int64, inj *fault.Injector) (*TraceFile, error) {
	// Smallest legal file: 16-byte header, end tag, 7-byte empty footer,
	// 12-byte trailer.
	if size < 16+1+7+12 {
		return nil, fmt.Errorf("memsys: trace truncated: %d bytes is smaller than an empty v2 container", size)
	}
	hr := inj.Reader("trace.read", io.NewSectionReader(r, 0, size))
	var fixed [16]byte
	if _, err := io.ReadFull(hr, fixed[:]); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(fixed[0:4]); magic != traceMagicV2 {
		if magic == traceMagic {
			return nil, fmt.Errorf("memsys: trace is flat v1 format; convert to v2 for out-of-core streaming (trace convert)")
		}
		return nil, fmt.Errorf("memsys: bad trace magic %#x (want %#x)", magic, traceMagicV2)
	}
	lineSize := binary.LittleEndian.Uint32(fixed[4:8])
	if lineSize == 0 || lineSize > maxHomeLineSize {
		return nil, fmt.Errorf("memsys: corrupt trace: home line size %d out of range (1..%d)", lineSize, maxHomeLineSize)
	}
	nh := binary.LittleEndian.Uint64(fixed[8:16])
	if nh > uint64(size)/4 {
		return nil, fmt.Errorf("memsys: corrupt trace: home map of %d entries cannot fit in %d bytes", nh, size)
	}
	homes, err := readChunked[int32](hr, nh, "home map")
	if err != nil {
		return nil, err
	}
	firstBlockOff := int64(16 + 4*len(homes))

	var trailer [12]byte
	if _, err := r.ReadAt(trailer[:], size-12); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading trailer: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(trailer[8:12]); magic != traceIndexMagic {
		return nil, fmt.Errorf("memsys: corrupt trace: bad index magic %#x (want %#x)", magic, traceIndexMagic)
	}
	footerLen := binary.LittleEndian.Uint64(trailer[0:8])
	// Compare in the unsigned domain: a footer length with the top bit
	// set must not wrap negative and slip past the bound.
	avail := size - 12 - firstBlockOff - 1
	if avail < 0 || footerLen < 7 || footerLen > uint64(avail) {
		return nil, fmt.Errorf("memsys: corrupt trace: trailer footer length %d out of range", footerLen)
	}
	footerOff := size - 12 - int64(footerLen)
	if err := inj.Do(context.Background(), "trace.read.footer"); err != nil {
		return nil, err
	}
	fb := make([]byte, footerLen)
	if _, err := r.ReadAt(fb, footerOff); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading index footer: %w", err)
	}
	fb = inj.Data("trace.read.footer", fb)
	fr := bytes.NewReader(fb)
	foot, err := parseV2Footer(fr)
	if err != nil {
		return nil, err
	}
	if fr.Len() != 0 {
		return nil, fmt.Errorf("memsys: corrupt trace: index footer has %d trailing bytes", fr.Len())
	}
	if foot.firstBlockOff != firstBlockOff {
		return nil, fmt.Errorf("memsys: corrupt trace: index footer says blocks start at %d, header ends at %d", foot.firstBlockOff, firstBlockOff)
	}

	index := make([]BlockInfo, len(foot.blocks))
	off := firstBlockOff
	for i, b := range foot.blocks {
		index[i] = BlockInfo{Marker: b.marker, Proc: b.proc, Epoch: b.epoch, Events: b.events, Offset: off, Size: b.size}
		off += b.size
	}
	if off+1 != footerOff {
		return nil, fmt.Errorf("memsys: corrupt trace: index footer block sizes end at %d, footer starts at %d", off+1, footerOff)
	}
	var end [1]byte
	if _, err := r.ReadAt(end[:], off); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading end tag: %w", err)
	}
	if end[0] != v2TagEnd {
		return nil, fmt.Errorf("memsys: corrupt trace: block sequence ends with tag %d (want %d)", end[0], v2TagEnd)
	}

	maxProc := 0
	if foot.nprocs > 0 {
		maxProc = foot.nprocs - 1
	}
	meta := TraceMeta{
		HomeLineSize: int(lineSize),
		MaxProc:      maxProc,
		MinProcs:     minProcs(maxProc, homes),
		MaxAddr:      foot.maxAddr,
		Refs:         foot.refs,
		Markers:      foot.markers,
		ProcRefs:     foot.procRefs,
	}
	return &TraceFile{
		r: r, size: size, inj: inj,
		homeLineSize: int(lineSize), homes: homes,
		meta: meta, index: index, footerOff: footerOff,
	}, nil
}

// Close releases the underlying file (no-op for a TraceFile built over
// a caller-owned ReaderAt).
func (tf *TraceFile) Close() error {
	if tf.closer == nil {
		return nil
	}
	return tf.closer.Close()
}

// Meta returns the stream summary straight from the index footer — no
// decode pass.
func (tf *TraceFile) Meta() TraceMeta { return tf.meta }

// Len returns the total stream length in events, markers included.
func (tf *TraceFile) Len() int { return int(tf.meta.Refs + tf.meta.Markers) }

// HomeFn adapts the recorded home map to a replay line size.
func (tf *TraceFile) HomeFn(lineSize int) HomeFn {
	return homeFn(tf.homes, tf.homeLineSize, lineSize)
}

// Index returns the block index (a copy).
func (tf *TraceFile) Index() []BlockInfo {
	return append([]BlockInfo(nil), tf.index...)
}

// decodeBlockInto reads and decodes block i, appending its packed
// events to dst (raw is a reusable scratch buffer). The block's own
// header must agree with the index footer entry — a block that lies
// about its contents is reported, not trusted.
func (tf *TraceFile) decodeBlockInto(i int, raw []byte, dst []uint64) (events []uint64, rawOut []byte, err error) {
	info := tf.index[i]
	if err := tf.inj.Do(context.Background(), "trace.read.block:"+strconv.Itoa(i)); err != nil {
		return dst, raw, err
	}
	if cap(raw) < int(info.Size) {
		raw = make([]byte, info.Size)
	}
	buf := raw[:info.Size]
	if _, err := tf.r.ReadAt(buf, info.Offset); err != nil {
		return dst, raw, fmt.Errorf("memsys: trace truncated reading block %d (%d bytes at offset %d): %w", i, info.Size, info.Offset, err)
	}
	buf = tf.inj.Data("trace.read.block:"+strconv.Itoa(i), buf)
	br := bytes.NewReader(buf)
	tag, err := br.ReadByte()
	if err != nil {
		return dst, raw, fmt.Errorf("memsys: trace truncated reading block %d tag: %w", i, err)
	}
	if info.Marker {
		if tag != v2TagMarker {
			return dst, raw, fmt.Errorf("memsys: corrupt trace: block %d has tag %d, index footer says marker", i, tag)
		}
		epoch, err := readUvarint(br, "marker epoch")
		if err != nil {
			return dst, raw, err
		}
		if epoch != info.Epoch {
			return dst, raw, fmt.Errorf("memsys: corrupt trace: block %d records epoch %d, index footer says %d", i, epoch, info.Epoch)
		}
		if br.Len() != 0 {
			return dst, raw, fmt.Errorf("memsys: corrupt trace: marker block %d has %d trailing bytes", i, br.Len())
		}
		return append(dst, resetMarker), raw, nil
	}
	if tag != v2TagEvents {
		return dst, raw, fmt.Errorf("memsys: corrupt trace: block %d has tag %d, index footer says events", i, tag)
	}
	proc, epoch, count, payloadLen, err := readV2EventsHeader(br, 0)
	if err != nil {
		return dst, raw, err
	}
	if proc != info.Proc || epoch != info.Epoch || count != info.Events {
		return dst, raw, fmt.Errorf("memsys: corrupt trace: block %d header (proc=%d epoch=%d events=%d) disagrees with index footer (proc=%d epoch=%d events=%d)",
			i, proc, epoch, count, info.Proc, info.Epoch, info.Events)
	}
	if br.Len() != payloadLen {
		return dst, raw, fmt.Errorf("memsys: corrupt trace: block %d payload length %d, %d bytes remain after header", i, payloadLen, br.Len())
	}
	payload := buf[len(buf)-br.Len():]
	events, maxA, err := decodeV2Payload(payload, proc, count, dst)
	if err != nil {
		return dst, raw, err
	}
	if maxA > tf.meta.MaxAddr {
		return dst, raw, fmt.Errorf("memsys: corrupt trace: block %d address %#x beyond footer maximum %#x", i, uint64(maxA), uint64(tf.meta.MaxAddr))
	}
	return events, raw, nil
}

// DecodeBlock decodes block i independently — no prefix decode, one
// bounded read — returning its packed events (a fresh slice).
func (tf *TraceFile) DecodeBlock(i int) ([]uint64, error) {
	if i < 0 || i >= len(tf.index) {
		return nil, fmt.Errorf("memsys: block %d out of range (trace has %d)", i, len(tf.index))
	}
	events, _, err := tf.decodeBlockInto(i, nil, nil)
	return events, err
}

// Window extracts one processor's references within an epoch range
// [epochLo, epochHi] as a fresh in-memory Trace (same home map), using
// the index footer to decode only the matching blocks — random access
// with no prefix decode. Reset markers are not included.
func (tf *TraceFile) Window(proc int, epochLo, epochHi uint64) (*Trace, error) {
	out := &Trace{homeLineSize: tf.homeLineSize, homes: append([]int32(nil), tf.homes...)}
	var raw []byte
	for i := range tf.index {
		info := tf.index[i]
		if info.Marker || info.Proc != proc || info.Epoch < epochLo || info.Epoch > epochHi {
			continue
		}
		var err error
		out.events, raw, err = tf.decodeBlockInto(i, raw, out.events)
		if err != nil {
			return nil, err
		}
		if k := len(out.spans) - 1; k >= 0 && out.spans[k].epoch == info.Epoch {
			out.spans[k].n += info.Events
		} else {
			out.spans = append(out.spans, traceSpan{epoch: info.Epoch, proc: proc, n: info.Events})
		}
	}
	return out, nil
}

// WriteTo serializes the stream in flat v1 format, block by block —
// the byte-identical output of the equivalent in-memory Trace.WriteTo.
// It makes a TraceFile digestable wherever a result digest or a v2→v1
// conversion needs the canonical flat bytes, still with O(block
// buffer) peak memory.
func (tf *TraceFile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(traceMagic)); err != nil {
		return n, err
	}
	if err := write(uint32(tf.homeLineSize)); err != nil {
		return n, err
	}
	if err := write(uint64(len(tf.homes))); err != nil {
		return n, err
	}
	if err := write(tf.homes); err != nil {
		return n, err
	}
	if err := write(uint64(tf.Len())); err != nil {
		return n, err
	}
	err := tf.blocks(func(events []uint64) error {
		return write(events)
	})
	if err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// decodeAhead is the depth of the streaming decode pipeline: how many
// decoded blocks may sit between the decoder and the consumer. Peak
// memory stays bounded by (decodeAhead+1) decoded blocks plus one
// encoded block, independent of trace length.
const decodeAhead = 4

// decodedBlock carries one decoded block (or the error that stopped
// the decoder) from the decode goroutine to the consumer.
type decodedBlock struct {
	events []uint64
	err    error
}

// blocks streams the whole file in index order — the TraceSource
// contract ReplayMulti, StackDistances and the sampled pass consume.
// Decoding runs one block ahead of the consumer on a separate
// goroutine (bounded by decodeAhead), overlapping DecodeBlock work
// with simulation; blocks are delivered in index order from a fixed
// pool of reused buffers, so the consumer observes the exact event
// sequence of a serial decode loop and peak memory stays independent
// of trace length.
func (tf *TraceFile) blocks(yield func(events []uint64) error) error {
	if len(tf.index) == 0 {
		return nil
	}
	// Size the buffer pool to the largest block in the index so decode
	// appends never reallocate mid-stream.
	maxEvents := 1
	for i := range tf.index {
		if n := int(tf.index[i].Events); n > maxEvents {
			maxEvents = n
		}
	}
	out := make(chan decodedBlock, decodeAhead)
	free := make(chan []uint64, decodeAhead+1)
	for i := 0; i < decodeAhead+1; i++ {
		free <- make([]uint64, 0, maxEvents)
	}
	// stop tells the decoder an early consumer exit (yield error)
	// abandoned the stream; closing it unblocks any pending send.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(out)
		var raw []byte
		for i := range tf.index {
			var buf []uint64
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			events, r, err := tf.decodeBlockInto(i, raw, buf[:0])
			raw = r
			select {
			case out <- decodedBlock{events: events, err: err}:
			case <-stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	for db := range out {
		if db.err != nil {
			return db.err
		}
		if err := yield(db.events); err != nil {
			return err
		}
		free <- db.events
	}
	return nil
}
