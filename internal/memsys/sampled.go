package memsys

import (
	"fmt"
	"math"
	"math/bits"
)

// This file implements a SHARDS-style sampled variant of the Mattson
// stack-distance pass in stackdist.go: spatially-hashed sampling
// estimates the full miss-ratio curve from a small fraction of the
// references, with the same per-processor, invalidation-aware
// semantics as the exact pass.
//
// Spatial hashing (Waldspurger et al., SHARDS) samples LINES, not
// events: a line is tracked iff hash(line) < T, giving sampling rate
// R = T / 2^64. Because sampled-ness is a property of the line, every
// event on a sampled line is seen — including the writes by other
// processors that drive invalidations — so the coherence behaviour of
// the sampled subset is internally exact: holes, hole migration and
// the MESI write-invalidate rule from the exact pass apply unchanged
// to the sampled stacks.
//
// Distances scale by the inverse rate: a sampled stack distance d
// corresponds to an estimated true distance d/R, because the sampled
// stack holds an R-fraction of the resident lines. The histogram is
// accumulated directly in the estimated (true-distance) domain at
// index floor(d/R). For an integer capacity C, floor(d/R) ≥ C iff
// d/R ≥ C, so querying the estimated-domain histogram selects exactly
// the same samples as thresholding the raw sampled distances — and at
// R = 1 the index is d itself, which is what makes the rate-1 pass
// bit-identical to StackDistances.
//
// Each sample carries weight 1/R (estimating R·N references from N
// samples). In fixed-rate mode R is constant, so the pass accumulates
// unit weights and divides by R at query time: at R = 1 every sum is
// an exact small integer and the division is by 1.0, preserving
// bit-identity. In adaptive mode (MaxTracked > 0, a la SHARDS-adj)
// the threshold shrinks whenever the tracked-line budget overflows —
// the maximum-hash line is evicted and T drops to its hash — so the
// weight 1/R_current is applied at accumulation time.
//
// Miss RATIOS use the exact reference count in the denominator: every
// event increments the per-processor read/write counters whether or
// not its line is sampled (this costs one hash and one compare per
// unsampled event, which is where the speedup over the exact pass
// comes from). Anchoring the denominator exactly has the same effect
// as the SHARDS-adj histogram correction — the residual mass that
// correction would add to the always-hit bucket never reaches any
// miss sum here, because misses are summed from the capacity up.
//
// Confidence bands come from jackknifing over 16 hash strata: the low
// four bits of the line hash partition the sampled lines into 16
// independent sub-samples, each stratum accumulates its own miss-
// weight histogram, and the leave-one-out variance of the 16 stratum
// aggregates yields a standard error for the estimated miss ratio at
// every capacity. The construction is deterministic — no RNG — so a
// fixed seed gives byte-identical profiles across runs and GOMAXPROCS
// settings. When the effective rate is 1 the pass is exact and the
// band collapses to zero width.
//
// Spatial sampling is blind below a granularity of 1/R lines: a
// sampled distance of d can only assert the true distance lies near
// d/R, so capacities under a few multiples of 1/R lines would be
// answered from the indistinguishable-from-zero pile and biased low.
// The estimator therefore carries an EXACT small-capacity window
// (ExactLines): a per-processor circular buffer holding the true top-W
// slots of the full Mattson stack — lines and invalidation holes, in
// exact recency order. Every event (sampled or not) updates the
// window with the same three rules as the full stack (insert consumes
// the topmost hole; a re-reference with a hole above migrates the
// topmost hole down to its old slot; otherwise the slot closes), and
// each rule maps to a bounded shift of the buffer because entries
// below the touched slot never move: the slot-close shift up and the
// front-insert shift down cancel. The window's hit histogram is
// therefore exact for every depth < W, and capacities ≤ W·lineSize
// are answered exactly as refs − hits — no sampling error at all —
// while larger capacities use the SHARDS estimate, whose granularity
// 1/R is by then a small fraction of the capacity.
//
// One documented approximation in adaptive mode: evicting a tracked
// line removes its resident stack entries but not any invalidation
// holes it left earlier (holes carry no line identity once pushed, and
// may since have migrated or been consumed). Stale holes inflate later
// depths by at most the number of sampled invalidations between
// threshold drops; with no evictions (fixed-rate mode, or a budget
// that never overflows) the sampled pass has no such term. The exact
// window is unaffected — it never samples.

// SampledOptions configures a sampled stack-distance pass.
type SampledOptions struct {
	// Rate is the spatial sampling rate in (0, 1]: a line is tracked iff
	// hash(line, Seed) falls below Rate·2^64. Rate 1 tracks every line
	// and reproduces StackDistances bit for bit.
	Rate float64
	// Seed perturbs the line hash, choosing an independent sampled
	// subset. The pass is deterministic for a fixed seed.
	Seed uint64
	// MaxTracked, when positive, bounds the number of distinct tracked
	// lines (SHARDS-adj): on overflow the maximum-hash line is evicted
	// and the threshold drops to its hash, so memory stays fixed while
	// the effective rate adapts downward. Zero means fixed-rate mode.
	MaxTracked int
	// ExactLines, when positive, answers capacities up to
	// ExactLines·lineSize exactly from a top-W stack window updated on
	// every reference — spatial sampling cannot resolve distances below
	// ~1/Rate lines, so small caches come from the window instead.
	// Rounded up to a power of two. DefaultExactLines is a good choice;
	// zero disables the window (pure SHARDS).
	ExactLines int
}

// DefaultExactLines is the exact-window depth the engine uses: 512
// lines (32 KB of 64-byte lines) keeps every sweep point at or below
// 32 KB exact, and is ≥ 5/R lines at 1% sampling, past the region
// where the SHARDS distance granularity matters.
const DefaultExactLines = 512

// sampleStrata is the number of hash strata the confidence bands
// jackknife over: the low log2(sampleStrata) bits of the line hash
// assign each sampled line to one stratum.
const sampleStrata = 16

// sampleHash is the spatial sampling hash: splitmix64's finalizer over
// the line number, offset by the seed. Uniform enough that the
// threshold test realizes the configured rate and the low bits stratify
// independently of it.
func sampleHash(line, seed uint64) uint64 {
	z := line + seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sampledCounts accumulates one processor's view of the sampled stream.
type sampledCounts struct {
	// reads and writes are exact: counted for every reference, sampled
	// or not, so estimated miss ratios have an exact denominator.
	reads, writes uint64
	// cold and coherence are weighted sample counts of first-touch and
	// invalidated-copy references among the sampled lines.
	cold, coherence float64
	// hist[d] is the weighted count of sampled re-references whose
	// estimated true stack depth is d; hist[maxLines] aggregates depths
	// ≥ maxLines, which miss at every answerable capacity.
	hist []float64
}

// sampleEntry is one tracked line in the adaptive-mode eviction heap.
type sampleEntry struct {
	hash uint64
	line uint64
}

// sampleHeap is a max-heap of tracked lines ordered by hash, so the
// adaptive mode can evict the maximum-hash line on budget overflow.
type sampleHeap []sampleEntry

func (h *sampleHeap) push(v sampleEntry) {
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].hash >= s[i].hash {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

func (h *sampleHeap) popMax() sampleEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < len(s) && s[l].hash > s[big].hash {
			big = l
		}
		if r < len(s) && s[r].hash > s[big].hash {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	*h = s
	return top
}

// winHole marks an invalidation hole occupying an exact-window slot.
const winHole = ^uint64(0)

// exactWindow is one processor's view of the true top-W slots of its
// Mattson stack: a circular buffer of line numbers and holes in exact
// recency order, plus the exact hit histogram for depths < W. The
// buffer length is a power of two ≥ W so position arithmetic is a
// mask; logical occupancy is capped at W.
type exactWindow struct {
	win   []uint64 // circular: win[(head+depth)&mask]
	mask  int
	head  int
	n     int      // occupied slots (lines + holes), ≤ W
	w     int      // logical capacity
	holes int      // holes among the occupied slots
	hist  []uint64 // hist[d]: exact hits at depth d (d slots above)
}

func newExactWindow(w int) *exactWindow {
	capPow := 1
	for capPow < w {
		capPow <<= 1
	}
	return &exactWindow{win: make([]uint64, capPow), mask: capPow - 1, w: capPow, hist: make([]uint64, capPow)}
}

func (ew *exactWindow) at(d int) uint64     { return ew.win[(ew.head+d)&ew.mask] }
func (ew *exactWindow) set(d int, v uint64) { ew.win[(ew.head+d)&ew.mask] = v }

// find returns the depth of the given slot value (a line known to be
// resident, or winHole with holes > 0).
func (ew *exactWindow) find(v uint64) int {
	for d := 0; d < ew.n; d++ {
		if ew.at(d) == v {
			return d
		}
	}
	// Unreachable while the caller's presence bitset and hole count are
	// consistent with the buffer; returning n makes a violation loud
	// (callers would index hist out of range) instead of silent.
	return ew.n
}

// removeAt deletes the slot at depth d by shifting the slots above it
// down one — entries below d never move, which is exactly why every
// stack rule is a bounded local edit here.
func (ew *exactWindow) removeAt(d int) {
	for ; d > 0; d-- {
		ew.set(d, ew.at(d-1))
	}
	ew.head = (ew.head + 1) & ew.mask
	ew.n--
}

// pushFront makes the given value the most recent slot.
func (ew *exactWindow) pushFront(v uint64) {
	ew.head = (ew.head - 1) & ew.mask
	ew.win[ew.head] = v
	ew.n++
}

// reference handles a re-reference of a resident line: the exact hit
// is recorded at its depth and the line moves to the front under the
// hole rules of the full stack. The whole update is one carry walk —
// the line is written at depth 0 and each slot above the old one
// shifts down a step as the walk passes — so a hit at depth d costs
// exactly d+1 slot writes (the separate find-then-shift formulation
// costs twice that, and this loop is the sampler's hot path). When the
// walk crosses a hole first, the hole is where the shifting stops
// (entries between the hole and the line keep their depths) and the
// line's old slot becomes the migrated hole — the same net edit as the
// full stack's hole-migration rule.
func (ew *exactWindow) reference(line uint64) {
	head, mask, win := ew.head, ew.mask, ew.win
	carry, shifting := line, true
	for d := 0; d < ew.n; d++ {
		idx := (head + d) & mask
		cur := win[idx]
		if cur == line {
			if shifting {
				win[idx] = carry
			} else {
				win[idx] = winHole
			}
			ew.hist[d]++
			return
		}
		if shifting {
			win[idx] = carry
			if cur == winHole {
				shifting = false
			} else {
				carry = cur
			}
		}
	}
	// Unreachable while the caller's presence bitset is consistent with
	// the buffer; falling through leaves the histogram untouched so a
	// violation shows up as a count mismatch, not memory corruption.
}

// insert admits a line not currently resident (cold, invalidated, or
// deeper than the window). It returns the line pushed out of the
// bottom slot, if any, so the caller can clear its presence bit. The
// hole-consuming branch is the same carry walk as reference: the line
// lands at depth 0, everything above the topmost hole shifts down one,
// and the hole itself is overwritten — occupancy is unchanged.
func (ew *exactWindow) insert(line uint64) (dropped uint64, ok bool) {
	if ew.holes > 0 {
		head, mask, win := ew.head, ew.mask, ew.win
		carry := line
		for d := 0; d < ew.n; d++ {
			idx := (head + d) & mask
			cur := win[idx]
			win[idx] = carry
			if cur == winHole {
				ew.holes--
				return 0, false
			}
			carry = cur
		}
	}
	if ew.n == ew.w {
		// The window is full of real lines (a hole would have been
		// consumed above): the bottom one leaves, and pushFront reuses
		// its freed slot — no shifting.
		tail := ew.at(ew.n - 1)
		ew.n--
		ew.pushFront(line)
		return tail, true
	}
	ew.pushFront(line)
	return 0, false
}

// invalidate turns the line's slot into a hole (MESI write by another
// processor); the slot keeps its position, so deeper depths still
// count it.
func (ew *exactWindow) invalidate(line uint64) {
	head, mask, win := ew.head, ew.mask, ew.win
	for d := 0; d < ew.n; d++ {
		idx := (head + d) & mask
		if win[idx] == line {
			win[idx] = winHole
			ew.holes++
			return
		}
	}
}

// SampledProfile is the result of one sampled stack-distance pass:
// exact per-processor reference counts, weighted distance histograms,
// and per-stratum aggregates from which the estimated miss count of a
// fully-associative LRU cache of any profiled size — and a 95%
// confidence band on its miss ratio — follow in O(maxLines) per query.
type SampledProfile struct {
	lineSize int
	maxLines int
	// rate is the effective sampling rate at the end of the pass: the
	// configured rate in fixed mode, the final (possibly lowered)
	// threshold's rate in adaptive mode.
	rate float64
	// exact flags a pass that tracked every line (rate 1, fixed mode):
	// estimates are bit-identical to StackDistances and bands collapse.
	exact bool
	// scaleDiv divides every weighted sum at query time: the fixed-mode
	// rate (samples carry unit weight), or 1 in adaptive mode (weights
	// were applied at accumulation time).
	scaleDiv    float64
	sampledRefs uint64
	procs       []sampledCounts
	// exactLines is the depth of the exact top-W window (0 when
	// disabled): capacities up to exactLines·lineSize are answered
	// exactly from wins[p].hist, with zero-width bands.
	exactLines int
	wins       []*exactWindow
	// strataMiss[k] accumulates stratum k's always-miss weight (cold +
	// coherence); strataHist[k] its estimated-depth histogram. Aggregate
	// across processors — the bands cover the aggregate miss ratio.
	strataMiss [sampleStrata]float64
	strataHist [sampleStrata][]float64
}

// SampledStackDistances runs the sampled one-pass simulation of the
// stream at the given line size. The profile answers any cache size
// from lineSize up to maxCacheSize with an estimated miss count and a
// jackknife confidence band. Measurement-reset markers zero the
// counters while leaving every stack warm, exactly like the exact
// pass. The stream is consumed block by block, so a TraceFile profiles
// out of core; the pass is deterministic for a fixed seed.
func SampledStackDistances(src TraceSource, lineSize, maxCacheSize int, opt SampledOptions) (*SampledProfile, error) {
	if lineSize < WordBytes || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("memsys: line size must be a power of two ≥ %d, got %d", WordBytes, lineSize)
	}
	if maxCacheSize < lineSize {
		return nil, fmt.Errorf("memsys: max cache size %d smaller than line size %d", maxCacheSize, lineSize)
	}
	if opt.Rate <= 0 || opt.Rate > 1 || math.IsNaN(opt.Rate) {
		return nil, fmt.Errorf("memsys: sampling rate must be in (0, 1], got %v", opt.Rate)
	}
	if opt.MaxTracked < 0 {
		return nil, fmt.Errorf("memsys: MaxTracked must be ≥ 0, got %d", opt.MaxTracked)
	}
	if opt.ExactLines < 0 {
		return nil, fmt.Errorf("memsys: ExactLines must be ≥ 0, got %d", opt.ExactLines)
	}
	shift := uint(bits.TrailingZeros(uint(lineSize)))
	maxLines := maxCacheSize / lineSize

	meta := src.Meta()
	nproc := meta.MaxProc + 1
	if nproc > 64 {
		return nil, fmt.Errorf("memsys: at most 64 processors supported (sharer bitset), trace has %d", nproc)
	}
	lines := uint64(meta.MaxAddr)>>shift + 1

	adaptive := opt.MaxTracked > 0
	// all short-circuits the hash test when every line is tracked; it can
	// only be revoked by an adaptive threshold drop.
	all := opt.Rate >= 1
	threshold := ^uint64(0)
	if !all {
		threshold = uint64(opt.Rate * 0x1p64)
		if threshold == 0 {
			threshold = 1
		}
	}

	sp := &SampledProfile{lineSize: lineSize, maxLines: maxLines, procs: make([]sampledCounts, nproc)}
	for k := range sp.strataHist {
		sp.strataHist[k] = make([]float64, maxLines+1)
	}
	var wins []*exactWindow
	var winHolders []uint64
	if opt.ExactLines > 0 {
		wins = make([]*exactWindow, nproc)
		for p := range wins {
			wins[p] = newExactWindow(opt.ExactLines)
		}
		winHolders = make([]uint64, lines) // line -> bitset of procs holding it in-window
		sp.wins = wins
		sp.exactLines = wins[0].w
	}
	stacks := make([]sdStack, nproc)
	for p := 0; p < nproc; p++ {
		l := make([]int64, lines)
		for i := range l {
			l[i] = slotNever
		}
		stacks[p] = sdStack{tree: make(fenwick, sdInitialCap), last: l}
		sp.procs[p].hist = make([]float64, maxLines+1)
	}
	holders := make([]uint64, lines) // line -> bitset of stack-resident procs

	// Adaptive-mode state: which lines have entered the tracked set, and
	// the max-hash eviction heap over them.
	var entered []uint64
	var heap sampleHeap
	tracked := 0
	if adaptive {
		entered = make([]uint64, (lines+63)/64)
	}

	// evictLine removes a tracked line's resident stack entries (its
	// sampled-set membership ends; stale invalidation holes remain, see
	// file comment).
	evictLine := func(line uint64) {
		for rem := holders[line]; rem != 0; rem &= rem - 1 {
			q := bits.TrailingZeros64(rem)
			st := &stacks[q]
			st.tree.add(int(st.last[line]), -1)
			st.last[line] = slotNever
		}
		holders[line] = 0
	}

	err := src.blocks(func(events []uint64) error {
		for _, e := range events {
			if e == resetMarker {
				for p := range sp.procs {
					c := &sp.procs[p]
					c.reads, c.writes, c.cold, c.coherence = 0, 0, 0, 0
					for i := range c.hist {
						c.hist[i] = 0
					}
				}
				for _, ew := range wins {
					for i := range ew.hist {
						ew.hist[i] = 0
					}
				}
				for k := range sp.strataHist {
					sp.strataMiss[k] = 0
					for i := range sp.strataHist[k] {
						sp.strataHist[k][i] = 0
					}
				}
				sp.sampledRefs = 0
				continue
			}
			p := int(e >> 1 & 0x7f)
			line := (e >> 8) >> shift
			// These fire only for streams whose index footer understates
			// the ranges the blocks actually use (a lying or corrupt v2
			// file); an in-memory trace's meta is exact.
			if p >= nproc {
				return fmt.Errorf("memsys: corrupt trace: processor %d beyond declared maximum %d", p, meta.MaxProc)
			}
			if line >= lines {
				return fmt.Errorf("memsys: corrupt trace: address %#x beyond declared maximum %#x", e>>8, uint64(meta.MaxAddr))
			}
			write := e&1 == 1

			c := &sp.procs[p]
			if write {
				c.writes++
			} else {
				c.reads++
			}

			// Exact small-capacity window: every event updates the true
			// top-W stack slots; an unsampled event's full cost is this
			// plus the counters above and the hash-and-compare below.
			if wins != nil {
				ew := wins[p]
				if winHolders[line]>>uint(p)&1 == 1 {
					ew.reference(line)
				} else {
					if dropped, ok := ew.insert(line); ok {
						winHolders[dropped] &^= 1 << uint(p)
					}
					winHolders[line] |= 1 << uint(p)
				}
				if write {
					for rem := winHolders[line] &^ (1 << uint(p)); rem != 0; rem &= rem - 1 {
						wins[bits.TrailingZeros64(rem)].invalidate(line)
					}
					winHolders[line] = 1 << uint(p)
				}
			}

			// The spatial sampling gate: unsampled events cost exactly the
			// counter increments above plus this hash and compare.
			var z uint64
			if !all {
				z = sampleHash(line, opt.Seed)
				if z >= threshold {
					continue
				}
			} else if adaptive {
				z = sampleHash(line, opt.Seed)
			}
			if adaptive && entered[line>>6]&(1<<(line&63)) == 0 {
				entered[line>>6] |= 1 << (line & 63)
				heap.push(sampleEntry{hash: z, line: line})
				tracked++
				if tracked > opt.MaxTracked {
					// Budget overflow: evict the maximum-hash line and drop
					// the threshold to its hash (then any equal-hash peers).
					top := heap.popMax()
					threshold = top.hash
					all = false
					evictLine(top.line)
					tracked--
					for len(heap) > 0 && heap[0].hash >= threshold {
						top = heap.popMax()
						evictLine(top.line)
						tracked--
					}
					if z >= threshold {
						continue // the triggering line was itself evicted
					}
				}
			}
			sp.sampledRefs++

			// Weight and stratum of this sample under the current rate
			// (unit weight while every line is still tracked).
			w := 1.0
			if adaptive && !all {
				w = 0x1p64 / float64(threshold)
			}
			k := int(z & (sampleStrata - 1))

			st := &stacks[p]
			slot := st.last[line]
			st.ensureSlot()
			st.clock++
			now := st.clock
			switch slot {
			case slotNever, slotInval:
				if slot == slotNever {
					c.cold += w
				} else {
					c.coherence += w
				}
				sp.strataMiss[k] += w
				if len(st.holes) > 0 {
					st.tree.add(st.holes.popMax(), -1)
				}
			default:
				cur := int(st.last[line])
				d := int(st.tree.sum(now-1) - st.tree.sum(cur))
				// Scale the sampled depth to the estimated true-distance
				// domain: floor(d·2^64/threshold) = floor(d/rate), computed
				// in integers so the pass is exactly reproducible. With
				// every line tracked the depth is already true.
				dEst := d
				if !all {
					if uint64(d) >= threshold {
						dEst = maxLines
					} else {
						q, _ := bits.Div64(uint64(d), 0, threshold)
						if q >= uint64(maxLines) {
							dEst = maxLines
						} else {
							dEst = int(q)
						}
					}
				}
				if dEst > maxLines {
					dEst = maxLines
				}
				c.hist[dEst] += w
				sp.strataHist[k][dEst] += w
				if len(st.holes) > 0 && st.holes[0] > cur {
					st.tree.add(st.holes.popMax(), -1)
					st.holes.push(cur)
				} else {
					st.tree.add(cur, -1)
				}
			}
			st.tree.add(now, 1)
			st.last[line] = int64(now)
			holders[line] |= 1 << uint(p)

			if write {
				// Illinois-MESI write-invalidate, restricted to the sampled
				// subset: every event on a sampled line is seen (sampling is
				// per line), so the invalidation pattern within the subset
				// matches the exact pass reference for reference.
				for rem := holders[line] &^ (1 << uint(p)); rem != 0; rem &= rem - 1 {
					q := bits.TrailingZeros64(rem)
					stacks[q].holes.push(int(stacks[q].last[line]))
					stacks[q].last[line] = slotInval
				}
				holders[line] = 1 << uint(p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// A pass that never stopped tracking every line is exact, whether the
	// budget was unlimited or simply never overflowed.
	sp.exact = all
	if all {
		sp.rate = 1
	} else {
		sp.rate = float64(threshold) * 0x1p-64
	}
	if adaptive || all {
		sp.scaleDiv = 1
	} else {
		sp.scaleDiv = sp.rate
	}
	return sp, nil
}

// LineSize returns the line size the profile was built at.
func (sp *SampledProfile) LineSize() int { return sp.lineSize }

// MaxCacheSize returns the largest answerable cache size in bytes.
func (sp *SampledProfile) MaxCacheSize() int { return sp.maxLines * sp.lineSize }

// Procs returns the number of processors in the profiled trace.
func (sp *SampledProfile) Procs() int { return len(sp.procs) }

// Rate returns the effective sampling rate at the end of the pass: the
// configured rate in fixed mode, or the final adapted rate when a
// MaxTracked budget forced the threshold down.
func (sp *SampledProfile) Rate() float64 { return sp.rate }

// Exact reports whether the pass tracked every line (rate 1, fixed
// mode), making every estimate bit-identical to StackDistances.
func (sp *SampledProfile) Exact() bool { return sp.exact }

// Refs returns the exact total reference count since the last reset
// marker — every event is counted, sampled or not.
func (sp *SampledProfile) Refs() uint64 {
	var n uint64
	for i := range sp.procs {
		n += sp.procs[i].reads + sp.procs[i].writes
	}
	return n
}

// SampledRefs returns how many references actually entered the sampled
// stacks since the last reset marker.
func (sp *SampledProfile) SampledRefs() uint64 { return sp.sampledRefs }

// capacityLines validates a queried cache size and converts it to lines.
func (sp *SampledProfile) capacityLines(cacheSize int) (int, error) {
	if cacheSize < sp.lineSize || cacheSize%sp.lineSize != 0 {
		return 0, fmt.Errorf("memsys: cache size %d not a positive multiple of line size %d", cacheSize, sp.lineSize)
	}
	c := cacheSize / sp.lineSize
	if c > sp.maxLines {
		return 0, fmt.Errorf("memsys: cache size %d exceeds profiled maximum %d", cacheSize, sp.MaxCacheSize())
	}
	return c, nil
}

// ExactLines returns the depth of the exact small-capacity window in
// lines; capacities up to ExactLines·LineSize carry no sampling error.
// Zero means the window is disabled.
func (sp *SampledProfile) ExactLines() int { return sp.exactLines }

// EstProcMisses returns processor p's estimated miss count in a fully-
// associative LRU cache of the given size. At rate 1, or for capacities
// within the exact window, the estimate equals StackProfile.ProcMisses
// exactly.
func (sp *SampledProfile) EstProcMisses(p, cacheSize int) (float64, error) {
	capLines, err := sp.capacityLines(cacheSize)
	if err != nil {
		return 0, err
	}
	c := &sp.procs[p]
	if capLines <= sp.exactLines {
		// Within the exact window: misses = refs − exact hits above the
		// capacity depth. Integer arithmetic throughout — no estimate.
		hits := uint64(0)
		h := sp.wins[p].hist
		for d := 0; d < capLines; d++ {
			hits += h[d]
		}
		return float64(c.reads + c.writes - hits), nil
	}
	m := c.cold + c.coherence
	for d := capLines; d <= sp.maxLines; d++ {
		m += c.hist[d]
	}
	return m / sp.scaleDiv, nil
}

// EstMisses returns the estimated total miss count across processors
// for a fully-associative LRU cache of the given size.
func (sp *SampledProfile) EstMisses(cacheSize int) (float64, error) {
	var total float64
	for p := range sp.procs {
		m, err := sp.EstProcMisses(p, cacheSize)
		if err != nil {
			return 0, err
		}
		total += m
	}
	return total, nil
}

// EstMissRate returns the estimated misses per reference for a fully-
// associative LRU cache of the given size. The denominator is the
// exact reference count, so at rate 1 the result is bit-identical to
// StackProfile.MissRate.
func (sp *SampledProfile) EstMissRate(cacheSize int) (float64, error) {
	misses, err := sp.EstMisses(cacheSize)
	if err != nil {
		return 0, err
	}
	refs := sp.Refs()
	if refs == 0 {
		return 0, nil
	}
	return misses / float64(refs), nil
}

// Band returns a 95% confidence interval for the aggregate miss ratio
// at the given cache size, from a jackknife over the hash strata. An
// exact pass (rate 1) returns a zero-width band at the estimate. The
// band is clamped to [0, 1].
func (sp *SampledProfile) Band(cacheSize int) (lo, hi float64, err error) {
	capLines, err := sp.capacityLines(cacheSize)
	if err != nil {
		return 0, 0, err
	}
	est, err := sp.EstMissRate(cacheSize)
	if err != nil {
		return 0, 0, err
	}
	if sp.exact || capLines <= sp.exactLines {
		return est, est, nil
	}
	refs := sp.Refs()
	if refs == 0 {
		return 0, 0, nil
	}
	// Per-stratum aggregate miss weight at this capacity, and the
	// leave-one-out estimates it induces.
	const n = float64(sampleStrata)
	var m [sampleStrata]float64
	var total float64
	for k := range m {
		s := sp.strataMiss[k]
		h := sp.strataHist[k]
		for d := capLines; d <= sp.maxLines; d++ {
			s += h[d]
		}
		s /= sp.scaleDiv
		m[k] = s
		total += s
	}
	var loo [sampleStrata]float64
	var mean float64
	for k := range m {
		loo[k] = (total - m[k]) * n / (n - 1) / float64(refs)
		mean += loo[k]
	}
	mean /= n
	var ss float64
	for k := range loo {
		d := loo[k] - mean
		ss += d * d
	}
	se := math.Sqrt((n - 1) / n * ss)
	lo = est - 1.96*se
	hi = est + 1.96*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}
