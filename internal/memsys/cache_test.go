package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cacheCfg(size, assoc, line int) Config {
	return Config{Procs: 1, CacheSize: size, Assoc: assoc, LineSize: line, OverheadBytes: 8}
}

func TestCacheInsertLookup(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, FullyAssoc} {
		c := newCache(cacheCfg(1024, assoc, 64))
		if st := c.lookup(5); st != Invalid {
			t.Fatalf("assoc=%d: empty cache lookup = %v", assoc, st)
		}
		c.insert(5, Shared)
		if st := c.lookup(5); st != Shared {
			t.Fatalf("assoc=%d: lookup after insert = %v", assoc, st)
		}
		c.setState(5, Modified)
		if st := c.peek(5); st != Modified {
			t.Fatalf("assoc=%d: peek after setState = %v", assoc, st)
		}
		c.invalidate(5)
		if st := c.lookup(5); st != Invalid {
			t.Fatalf("assoc=%d: lookup after invalidate = %v", assoc, st)
		}
	}
}

func TestCacheLRUEvictionDirectMapped(t *testing.T) {
	// 4 lines of 64B, direct mapped => lines 0 and 4 conflict.
	c := newCache(cacheCfg(256, 1, 64))
	c.insert(0, Modified)
	victim, vstate, evicted := c.insert(4, Shared)
	if !evicted || victim != 0 || vstate != Modified {
		t.Fatalf("expected eviction of line 0 (M), got victim=%d state=%v evicted=%v", victim, vstate, evicted)
	}
	if c.peek(0) != Invalid || c.peek(4) != Shared {
		t.Fatalf("post-eviction states wrong: %v %v", c.peek(0), c.peek(4))
	}
}

func TestCacheLRUOrderSetAssociative(t *testing.T) {
	// One set of 4 ways (fully sized as 4 lines, 4-way).
	c := newCache(cacheCfg(256, 4, 64))
	for i := uint64(0); i < 4; i++ {
		c.insert(i*1, Shared) // all map to set (line % 1 == 0): sets=1
	}
	// Touch line 0 so line 1 becomes LRU.
	c.lookup(0)
	victim, _, evicted := c.insert(100, Shared)
	if !evicted || victim != 1 {
		t.Fatalf("expected LRU victim 1, got %d (evicted=%v)", victim, evicted)
	}
}

func TestCacheFullyAssociativeExactLRU(t *testing.T) {
	c := newCache(cacheCfg(4*64, FullyAssoc, 64))
	for i := uint64(0); i < 4; i++ {
		c.insert(i, Shared)
	}
	c.lookup(0)
	c.lookup(1)
	// LRU order now: 2 (oldest), 3, 0, 1.
	victim, _, evicted := c.insert(99, Shared)
	if !evicted || victim != 2 {
		t.Fatalf("expected victim 2, got %d evicted=%v", victim, evicted)
	}
	victim, _, evicted = c.insert(98, Shared)
	if !evicted || victim != 3 {
		t.Fatalf("expected victim 3, got %d evicted=%v", victim, evicted)
	}
}

func TestCacheReinsertDoesNotEvict(t *testing.T) {
	for _, assoc := range []int{2, FullyAssoc} {
		c := newCache(cacheCfg(256, assoc, 64))
		c.insert(7, Shared)
		_, _, evicted := c.insert(7, Modified)
		if evicted {
			t.Fatalf("assoc=%d: reinsert evicted", assoc)
		}
		if c.peek(7) != Modified {
			t.Fatalf("assoc=%d: reinsert did not update state", assoc)
		}
		if c.resident() != 1 {
			t.Fatalf("assoc=%d: resident=%d after reinsert", assoc, c.resident())
		}
	}
}

func TestCacheInvalidSlotPreferred(t *testing.T) {
	c := newCache(cacheCfg(256, 4, 64))
	for i := uint64(0); i < 4; i++ {
		c.insert(i, Shared)
	}
	c.invalidate(2)
	_, _, evicted := c.insert(50, Shared)
	if evicted {
		t.Fatal("insert into set with invalid slot should not evict")
	}
	if c.resident() != 4 {
		t.Fatalf("resident=%d, want 4", c.resident())
	}
}

// Property: the cache never holds more valid lines than its capacity, and
// every line reported resident is found by peek. Both associativities are
// driven with the same random trace.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(seed int64, assocSel uint8) bool {
		assocs := []int{1, 2, 4, FullyAssoc}
		assoc := assocs[int(assocSel)%len(assocs)]
		c := newCache(cacheCfg(512, assoc, 64)) // 8 lines
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			line := uint64(rng.Intn(32))
			switch rng.Intn(4) {
			case 0:
				c.insert(line, Shared)
			case 1:
				c.insert(line, Modified)
			case 2:
				c.invalidate(line)
			case 3:
				c.lookup(line)
			}
			if c.resident() > 8 {
				return false
			}
			ok := true
			c.forEach(func(l uint64, st LineState) {
				if c.peek(l) != st {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fully associative cache of N lines always retains the N most
// recently used lines of any trace.
func TestCacheFullyAssocRetainsMRUProperty(t *testing.T) {
	f := func(seed int64) bool {
		const capLines = 8
		c := newCache(cacheCfg(capLines*64, FullyAssoc, 64))
		rng := rand.New(rand.NewSource(seed))
		var order []uint64 // most recent last, unique
		touch := func(l uint64) {
			for i, x := range order {
				if x == l {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, l)
		}
		for i := 0; i < 300; i++ {
			l := uint64(rng.Intn(20))
			if c.peek(l) != Invalid {
				c.lookup(l)
			} else {
				c.insert(l, Shared)
			}
			touch(l)
			// The last min(len(order), capLines) touched lines must be resident.
			start := 0
			if len(order) > capLines {
				start = len(order) - capLines
			}
			for _, want := range order[start:] {
				if c.peek(want) == Invalid {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
