package memsys

import "fmt"

// Default machine parameters from the paper (§2.2, §5, §6): 1 MB 4-way
// set-associative caches with 64-byte lines, 8-byte overhead packets.
const (
	DefaultCacheSize = 1 << 20
	DefaultAssoc     = 4
	DefaultLineSize  = 64
	DefaultOverhead  = 8
)

// Config describes one simulated memory system.
type Config struct {
	// Procs is the number of processors (one per node).
	Procs int
	// CacheSize is the per-processor cache capacity in bytes.
	CacheSize int
	// Assoc is the set associativity; FullyAssoc means fully associative.
	Assoc int
	// LineSize is the cache line size in bytes (power of two, ≥ WordBytes).
	LineSize int
	// OverheadBytes is the size of every overhead packet: requests,
	// invalidations, acknowledgments, replacement hints, and headers for
	// data transfers.
	OverheadBytes int
	// NoReplacementHints disables the replacement hints of §2.2 for
	// Shared-line evictions (ablation): the home's sharer list goes stale
	// and later invalidating actions send spurious invalidations.
	NoReplacementHints bool
}

// FullyAssoc selects a fully associative cache when used as Config.Assoc.
const FullyAssoc = 0

// WithDefaults fills zero fields with the paper's default parameters and
// returns the result. Assoc is left alone: zero means fully associative.
func (c Config) WithDefaults() Config {
	if c.Procs == 0 {
		c.Procs = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.LineSize == 0 {
		c.LineSize = DefaultLineSize
	}
	if c.OverheadBytes == 0 {
		c.OverheadBytes = DefaultOverhead
	}
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Procs <= 0:
		return fmt.Errorf("memsys: Procs must be positive, got %d", c.Procs)
	case c.Procs > 64:
		return fmt.Errorf("memsys: at most 64 processors supported (full-map directory bitset), got %d", c.Procs)
	case c.LineSize < WordBytes || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("memsys: LineSize must be a power of two ≥ %d, got %d", WordBytes, c.LineSize)
	case c.CacheSize < c.LineSize || c.CacheSize%c.LineSize != 0:
		return fmt.Errorf("memsys: CacheSize %d not a multiple of LineSize %d", c.CacheSize, c.LineSize)
	case c.Assoc < 0:
		return fmt.Errorf("memsys: Assoc must be ≥ 0, got %d", c.Assoc)
	case c.Assoc > 0 && (c.CacheSize/c.LineSize)%c.Assoc != 0:
		return fmt.Errorf("memsys: %d lines not divisible into %d-way sets", c.CacheSize/c.LineSize, c.Assoc)
	case c.OverheadBytes <= 0:
		return fmt.Errorf("memsys: OverheadBytes must be positive, got %d", c.OverheadBytes)
	}
	return nil
}

// lines returns the number of cache lines per processor cache.
func (c Config) lines() int { return c.CacheSize / c.LineSize }

// sets returns the number of sets per cache (1 when fully associative).
func (c Config) sets() int {
	if c.Assoc == FullyAssoc {
		return 1
	}
	return c.lines() / c.Assoc
}

// ways returns the associativity actually used per set.
func (c Config) ways() int {
	if c.Assoc == FullyAssoc {
		return c.lines()
	}
	return c.Assoc
}
