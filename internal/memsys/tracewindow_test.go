package memsys

import (
	"bytes"
	"reflect"
	"strconv"
	"testing"

	"splash2/internal/fault"
)

// collectEvents drains a source's block stream into one flat slice.
func collectEvents(t *testing.T, src TraceSource) []uint64 {
	t.Helper()
	var out []uint64
	if err := src.blocks(func(events []uint64) error {
		out = append(out, events...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEpochWindowEquivalence: the in-memory and streaming epoch-window
// views must yield the identical marker-free event subsequence, with
// matching metadata, over traces from both recorder paths.
func TestEpochWindowEquivalence(t *testing.T) {
	traces := map[string]*Trace{
		"single-event": buildSharingTrace(9, 4, 20000, true), // spans == nil: marker-scan path
		"batched":      buildBatchedTrace(10, 4, 20000, 4),   // spans != nil: span path
	}
	for name, tr := range traces {
		tf := openV2(t, writeV2Bytes(t, tr))
		epochs := tr.Meta().Markers + 1
		for _, rng := range [][2]uint64{{0, 0}, {1, 1}, {0, ^uint64(0)}, {1, 2}, {epochs, epochs + 3}} {
			memWin, err := EpochWindow(tr, rng[0], rng[1])
			if err != nil {
				t.Fatal(err)
			}
			fileWin, err := EpochWindow(tf, rng[0], rng[1])
			if err != nil {
				t.Fatal(err)
			}
			memEvents := collectEvents(t, memWin)
			fileEvents := collectEvents(t, fileWin)
			if !reflect.DeepEqual(memEvents, fileEvents) {
				t.Fatalf("%s window %v: in-memory view yields %d events, streaming view %d (or order differs)",
					name, rng, len(memEvents), len(fileEvents))
			}
			for _, e := range memEvents {
				if e == resetMarker {
					t.Fatalf("%s window %v contains a reset marker", name, rng)
				}
			}
			if got := memWin.Meta().Refs; got != uint64(len(memEvents)) {
				t.Fatalf("%s window %v: meta says %d refs, stream has %d", name, rng, got, len(memEvents))
			}
			if memWin.Meta().Refs != fileWin.Meta().Refs {
				t.Fatalf("%s window %v: meta refs differ (%d vs %d)", name, rng, memWin.Meta().Refs, fileWin.Meta().Refs)
			}
			if rng[0] >= epochs && len(memEvents) != 0 {
				t.Fatalf("%s window %v beyond last epoch yields %d events", name, rng, len(memEvents))
			}
		}
	}
}

// TestEpochWindowSkipsBlocks: a streaming window must never read an
// out-of-range block — enforced by arming a read fault on every block
// outside the window, which would fail the replay if touched.
func TestEpochWindowSkipsBlocks(t *testing.T) {
	tr := buildBatchedTrace(5, 4, 30000, 4)
	data := writeV2Bytes(t, tr)
	plain := openV2(t, data)
	const lo, hi = 1, 2
	var rules []fault.Rule
	for i, info := range plain.Index() {
		if info.Marker || info.Epoch < lo || info.Epoch > hi {
			rules = append(rules, fault.Rule{Pattern: "trace.read.block:" + strconv.Itoa(i), Action: fault.Error})
		}
	}
	if len(rules) == 0 {
		t.Fatal("no out-of-range blocks; test trace too small")
	}
	armed, err := NewTraceFile(bytes.NewReader(data), int64(len(data)), fault.New(1, rules...))
	if err != nil {
		t.Fatal(err)
	}
	win, err := EpochWindow(armed, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got := collectEvents(t, win)
	wantWin, err := EpochWindow(plain, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if want := collectEvents(t, wantWin); !reflect.DeepEqual(got, want) {
		t.Fatalf("armed window replayed %d events, want %d", len(got), len(want))
	}
}

// TestEpochWindowValidation: empty ranges and unsupported sources.
func TestEpochWindowValidation(t *testing.T) {
	tr := buildSharingTrace(1, 2, 500, false)
	if _, err := EpochWindow(tr, 3, 2); err == nil {
		t.Fatal("inverted epoch range accepted")
	}
	win, err := EpochWindow(tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EpochWindow(win, 0, 0); err == nil {
		t.Fatal("windowing a window accepted (not a Trace or TraceFile)")
	}
}
