package memsys

import (
	"fmt"
	"math/bits"
	"sync"
)

// HomeFn maps a cache line index to the node whose local memory holds it.
// Data placement (§2.2: "data are distributed among the processing nodes
// according to the guidelines stated in each application") is decided by
// the allocator in package mach and communicated to memsys through this
// function. It is called with the system's internal lock held and must not
// call back into the System.
type HomeFn func(line uint64) int

// dirEntry is one full-map directory entry. sharers is the exact set of
// caches holding the line (replacement hints keep it exact, §2.2); owner is
// the cache holding the line Exclusive or Modified, or -1.
type dirEntry struct {
	sharers uint64
	owner   int8
}

// wordInfo records the last writer of a word and when the write happened,
// for true/false sharing classification. time==0 means never written.
type wordInfo struct {
	time   uint64
	writer int8
}

// Per-processor line history codes packed into the low bits of a seq stamp.
const (
	histNone    = 0 // never cached by this processor
	histPresent = 1
	histEvicted = 2
	histInval   = 3
	histMask    = 3
)

// System simulates the multiprocessor memory system. All methods are safe
// for concurrent use by the processor goroutines; every reference is
// processed atomically under one lock, which is correct under PRAM timing
// (the interleaving of references, not their latency, is all that matters).
type System struct {
	cfg  Config
	home HomeFn

	// lineShift converts byte addresses to line indices (LineSize is a
	// validated power of two, so a shift replaces the division on the
	// hottest path).
	lineShift uint

	mu     sync.Mutex
	caches []*cache
	dir    []dirEntry
	words  []wordInfo
	hist   [][]uint64 // [proc][line] packed history
	seq    uint64

	// Trace replay precomputes the word write history once for a whole
	// multi-configuration sweep (it depends only on the event stream, never
	// on cache parameters): when extWords is set, classify reads the
	// caller-provided curWord instead of s.words, and s.words stays empty.
	extWords bool
	curWord  wordInfo

	procs   []ProcStats
	traffic Traffic

	// Per-node service counters for hotspot analysis (§3: the FFT's
	// staggered transposes exist to avoid memory hotspotting): total data
	// bytes served by each node, and the peak served within any window of
	// hotspotWindow logical cycles. Logical-time windows make the metric
	// deterministic for deterministic programs (requestor clocks do not
	// depend on goroutine scheduling).
	nodeServed []uint64
	nodePeak   []uint64
	nodeWindow []uint64
	nodeWinID  []uint64

	// accessTime is the requestor's logical clock for the access being
	// processed (set under the lock; seq is used when no clock is known,
	// e.g. trace replay).
	accessTime uint64
}

// hotspotWindow is the burst-detection granularity in logical cycles.
const hotspotWindow = 512

// New creates a memory system. cfg is validated after defaults are applied.
func New(cfg Config, home HomeFn) (*System, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if home == nil {
		return nil, fmt.Errorf("memsys: nil HomeFn")
	}
	s := &System{cfg: cfg, home: home}
	s.lineShift = uint(bits.TrailingZeros(uint(cfg.LineSize)))
	s.caches = make([]*cache, cfg.Procs)
	s.hist = make([][]uint64, cfg.Procs)
	for i := range s.caches {
		s.caches[i] = newCache(cfg)
	}
	s.procs = make([]ProcStats, cfg.Procs)
	s.nodeServed = make([]uint64, cfg.Procs)
	s.nodePeak = make([]uint64, cfg.Procs)
	s.nodeWindow = make([]uint64, cfg.Procs)
	s.nodeWinID = make([]uint64, cfg.Procs)
	return s, nil
}

// Config returns the configuration in effect (with defaults applied).
func (s *System) Config() Config { return s.cfg }

// Reserve pre-sizes internal tables for an address space of the given
// number of words, avoiding repeated growth during simulation.
func (s *System) Reserve(words uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.growWords(words)
}

func (s *System) growWords(words uint64) {
	if uint64(len(s.words)) < words && !s.extWords {
		nw := make([]wordInfo, words)
		copy(nw, s.words)
		s.words = nw
	}
	s.growLines(words)
}

// growLines sizes the line-granular tables (directory, per-processor
// history) for an address space of the given number of words.
func (s *System) growLines(words uint64) {
	lines := (words*WordBytes + uint64(s.cfg.LineSize) - 1) / uint64(s.cfg.LineSize)
	if uint64(len(s.dir)) < lines {
		nd := make([]dirEntry, lines)
		for i := range nd {
			nd[i].owner = -1
		}
		copy(nd, s.dir)
		s.dir = nd
		for p := range s.hist {
			nh := make([]uint64, lines)
			copy(nh, s.hist[p])
			s.hist[p] = nh
		}
	}
}

// Access simulates one memory reference by processor p to byte address a.
// It returns the miss kind and whether the reference hit in the cache.
// The global sequence number stands in for the requestor clock in hotspot
// windowing; use AccessAt when the requestor's logical time is known.
func (s *System) Access(p int, a Addr, write bool) (hit bool, kind MissKind) {
	return s.access(p, a, write, 0)
}

// AccessAt is Access with the requestor's logical clock, which makes the
// per-node hotspot windows deterministic for deterministic programs.
func (s *System) AccessAt(p int, a Addr, write bool, now uint64) (hit bool, kind MissKind) {
	return s.access(p, a, write, now)
}

// AccessBatch simulates a batch of references by processor p, taking the
// global lock once for the whole batch instead of once per reference.
// events uses the trace packing (addr<<8 | proc<<1 | write, proc must
// equal p); times carries the requestor's logical clock per event (0
// falls back to the global sequence number, as in Access). This is the
// flush target of internal/mach's per-processor reference buffers; the
// state transitions per event are exactly those of AccessAt.
func (s *System) AccessBatch(p int, events []uint64, times []uint64) {
	if len(events) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range events {
		a := Addr(e >> 8)
		word := a.Word()
		if word >= uint64(len(s.words)) {
			s.growWords(word + 1)
		}
		s.seq++
		now := times[i]
		if now == 0 {
			now = s.seq
		}
		s.accessTime = now
		s.accessCore(p, uint64(a)>>s.lineShift, word, e&1 == 1)
	}
}

func (s *System) access(p int, a Addr, write bool, now uint64) (hit bool, kind MissKind) {
	s.mu.Lock()
	defer s.mu.Unlock()

	word := a.Word()
	if word >= uint64(len(s.words)) {
		s.growWords(word + 1)
	}
	s.seq++
	if now == 0 {
		now = s.seq
	}
	s.accessTime = now
	return s.accessCore(p, uint64(a)>>s.lineShift, word, write)
}

// useExternalWords switches the system to precomputed word-history mode:
// the per-system words table is never allocated and classify consumes the
// packed last-write value handed to each replayAccessExt call instead.
func (s *System) useExternalWords() { s.extWords = true }

// replayAccessExt is the single-threaded replay entry point. Trace
// replay owns its System exclusively, so it skips the global mutex, and
// the word's packed write history (seq<<7 | writer+1, 0 = never written)
// arrives precomputed from one pass over the stream. Reserve must
// already cover the trace's address range. State transitions are
// identical to access with now==0.
func (s *System) replayAccessExt(p int, a Addr, write bool, lw uint64) {
	s.seq++
	s.accessTime = s.seq
	s.curWord = wordInfo{time: lw >> 7, writer: int8(lw&0x7f) - 1}
	s.accessCore(p, uint64(a)>>s.lineShift, a.Word(), write)
}

// accessCore is the protocol engine shared by the locked and replay entry
// points. The caller has sized the tables, advanced seq, and set
// accessTime; it must hold mu or own the System exclusively.
func (s *System) accessCore(p int, line, word uint64, write bool) (hit bool, kind MissKind) {
	st := &s.procs[p]
	if write {
		st.Writes++
	} else {
		st.Reads++
	}

	c := s.caches[p]
	switch state := c.lookup(line); state {
	case Modified:
		if write {
			s.recordWrite(p, word)
		}
		return true, 0
	case Exclusive:
		if write {
			// Illinois silent upgrade: the directory already records p as
			// owner, memory becomes stale without any message.
			c.setState(line, Modified)
			s.recordWrite(p, word)
		}
		return true, 0
	case Shared:
		if !write {
			return true, 0
		}
		s.upgrade(p, line)
		s.recordWrite(p, word)
		return true, 0
	}

	// Miss path.
	kind = s.classify(p, line, word)
	st.Misses[kind]++
	s.fill(p, line, kind, write)
	if write {
		s.recordWrite(p, word)
	}
	return false, kind
}

// rollWindow folds every node's open window into its peak.
func (s *System) rollWindow() {
	for i := range s.nodeWindow {
		if s.nodeWindow[i] > s.nodePeak[i] {
			s.nodePeak[i] = s.nodeWindow[i]
		}
		s.nodeWindow[i] = 0
	}
}

// serve accounts data bytes served by a node's memory or cache, windowed
// by the requestor's logical time.
func (s *System) serve(node int, n uint64) {
	s.nodeServed[node] += n
	win := s.accessTime / hotspotWindow
	if win != s.nodeWinID[node] {
		if s.nodeWindow[node] > s.nodePeak[node] {
			s.nodePeak[node] = s.nodeWindow[node]
		}
		s.nodeWindow[node] = 0
		s.nodeWinID[node] = win
	}
	s.nodeWindow[node] += n
}

// recordWrite stamps the word's last writer for sharing classification.
// In external-words mode the history was precomputed for the whole
// stream, so there is nothing to record.
func (s *System) recordWrite(p int, word uint64) {
	if s.extWords {
		return
	}
	s.words[word] = wordInfo{time: s.seq, writer: int8(p)}
}

// classify determines the miss kind per the extended [DSR+93] scheme.
func (s *System) classify(p int, line, word uint64) MissKind {
	h := s.hist[p][line]
	if h == histNone {
		return MissCold
	}
	lostTime := h >> 2
	wi := s.curWord
	if !s.extWords {
		wi = s.words[word]
	}
	// A write by another processor can only happen while this processor
	// does not hold the line, so comparing against the loss time is exact.
	if wi.time != 0 && int(wi.writer) != p && wi.time >= lostTime {
		return MissTrue
	}
	if h&histMask == histInval {
		return MissFalse
	}
	return MissCapacity
}

// upgrade handles a write hit to a Shared line: invalidate all other
// sharers through the home directory, no data transfer.
func (s *System) upgrade(p int, line uint64) {
	home := s.home(line)
	d := &s.dir[line]
	s.procs[p].Upgrades++
	if home != p {
		s.traffic.RemoteOverhead += uint64(s.cfg.OverheadBytes) // upgrade request
	}
	s.invalidateSharers(p, line, d, home)
	d.sharers = 1 << uint(p)
	d.owner = int8(p)
	s.caches[p].setState(line, Modified)
}

// invalidateSharers sends invalidations to every sharer other than p.
// Invalidations travel home→sharer and acknowledgments sharer→requestor.
func (s *System) invalidateSharers(p int, line uint64, d *dirEntry, home int) {
	ob := uint64(s.cfg.OverheadBytes)
	for rem := d.sharers &^ (1 << uint(p)); rem != 0; rem &= rem - 1 {
		q := bits.TrailingZeros64(rem)
		// Without replacement hints the sharer list can be stale: the
		// invalidation and acknowledgment messages are still sent (that is
		// the cost the hints avoid) but a departed copy has nothing to
		// invalidate and its loss history must not be rewritten.
		if s.caches[q].peek(line) != Invalid {
			s.caches[q].invalidate(line)
			s.hist[q][line] = s.seq<<2 | histInval
		}
		if q != home {
			s.traffic.RemoteOverhead += ob // invalidation
		}
		s.traffic.RemoteOverhead += ob // acknowledgment (q != p by construction)
	}
}

// fill services a miss: obtains the line (from home memory or a remote
// dirty cache), adjusts directory and peer cache states, accounts traffic,
// inserts the line, and handles the victim.
func (s *System) fill(p int, line uint64, kind MissKind, write bool) {
	home := s.home(line)
	d := &s.dir[line]
	ob := uint64(s.cfg.OverheadBytes)
	ls := uint64(s.cfg.LineSize)

	if home != p {
		s.traffic.RemoteOverhead += ob // request to home
	}

	var newState LineState
	switch {
	case d.owner >= 0:
		// Line held Exclusive or Modified by q.
		q := int(d.owner)
		qstate := s.caches[q].peek(line)
		if q != home {
			s.traffic.RemoteOverhead += ob // forward home→owner
		}
		if qstate == Modified {
			// Cache-to-cache transfer q→p (q != p always on a miss).
			s.addData(kind, ls, true)
			s.serve(q, ls)
			s.traffic.RemoteOverhead += ob // data header
			if write {
				// Ownership migrates; memory stays stale.
				s.caches[q].invalidate(line)
				s.hist[q][line] = s.seq<<2 | histInval
				d.sharers = 1 << uint(p)
				d.owner = int8(p)
				newState = Modified
			} else {
				// Sharing writeback q→home brings memory up to date.
				if q != home {
					s.traffic.RemoteWriteback += ls
					s.traffic.RemoteOverhead += ob // writeback header
				} else {
					s.traffic.LocalData += ls
				}
				s.caches[q].setState(line, Shared)
				d.sharers |= 1 << uint(q)
				d.sharers |= 1 << uint(p)
				d.owner = -1
				newState = Shared
			}
		} else {
			// Owner holds it Exclusive (clean): memory is valid.
			if q != home {
				s.traffic.RemoteOverhead += ob // downgrade ack owner→home
			}
			if write {
				s.caches[q].invalidate(line)
				s.hist[q][line] = s.seq<<2 | histInval
				d.sharers = 1 << uint(p)
				d.owner = int8(p)
				newState = Modified
			} else {
				s.caches[q].setState(line, Shared)
				d.sharers |= 1 << uint(q)
				d.sharers |= 1 << uint(p)
				d.owner = -1
				newState = Shared
			}
			s.memoryData(p, home, kind, ls, ob)
		}
	default:
		// Clean: data comes from home memory.
		if write {
			s.invalidateSharers(p, line, d, home)
			d.sharers = 1 << uint(p)
			d.owner = int8(p)
			newState = Modified
		} else if d.sharers == 0 {
			// Illinois valid-exclusive: sole copy, loaded clean.
			d.sharers = 1 << uint(p)
			d.owner = int8(p)
			newState = Exclusive
		} else {
			d.sharers |= 1 << uint(p)
			newState = Shared
		}
		s.memoryData(p, home, kind, ls, ob)
	}

	s.hist[p][line] = s.seq<<2 | histPresent
	victim, vstate, evicted := s.caches[p].insert(line, newState)
	if evicted {
		s.evict(p, victim, vstate)
	}
}

// memoryData accounts the line transfer home→p.
func (s *System) memoryData(p, home int, kind MissKind, ls, ob uint64) {
	s.serve(home, ls)
	if home != p {
		s.addData(kind, ls, true)
		s.traffic.RemoteOverhead += ob // data header
	} else {
		s.addData(kind, ls, false)
	}
}

// addData attributes data bytes to the miss-kind category, and to the
// true-sharing traffic metric when applicable.
func (s *System) addData(kind MissKind, n uint64, remote bool) {
	if kind == MissTrue {
		s.traffic.TrueSharingData += n
	}
	if !remote {
		s.traffic.LocalData += n
		return
	}
	switch kind {
	case MissCold:
		s.traffic.RemoteCold += n
	case MissTrue, MissFalse:
		s.traffic.RemoteShared += n
	default:
		s.traffic.RemoteCapacity += n
	}
}

// evict handles replacement of a victim line from p's cache.
func (s *System) evict(p int, line uint64, vstate LineState) {
	home := s.home(line)
	d := &s.dir[line]
	ob := uint64(s.cfg.OverheadBytes)
	ls := uint64(s.cfg.LineSize)

	switch vstate {
	case Modified:
		d.sharers &^= 1 << uint(p)
		d.owner = -1
		if home != p {
			s.traffic.RemoteWriteback += ls
			s.traffic.RemoteOverhead += ob // writeback header
		} else {
			s.traffic.LocalData += ls
		}
	case Exclusive:
		d.sharers &^= 1 << uint(p)
		d.owner = -1
		if home != p {
			s.traffic.RemoteOverhead += ob // clean-exclusive notification
		}
	case Shared:
		// Replacement hint keeps the home's sharer list exact (§2.2);
		// without it the directory remembers a departed sharer.
		if !s.cfg.NoReplacementHints {
			d.sharers &^= 1 << uint(p)
			if home != p {
				s.traffic.RemoteOverhead += ob
			}
		}
	}
	s.hist[p][line] = s.seq<<2 | histEvicted
}

// Stats returns a snapshot of all counters.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rollWindow()
	out := Stats{
		Procs:      make([]ProcStats, len(s.procs)),
		Traffic:    s.traffic,
		NodeServed: append([]uint64(nil), s.nodeServed...),
		NodePeak:   append([]uint64(nil), s.nodePeak...),
	}
	copy(out.Procs, s.procs)
	return out
}

// ResetStats zeroes all counters while leaving cache and directory state
// warm — used to "start measurements after initialization and cold start"
// for applications that run many time-steps (§2.2).
func (s *System) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetStatsLocked()
}

// resetStatsLocked is ResetStats for callers that hold mu or own the
// System exclusively (trace replay).
func (s *System) resetStatsLocked() {
	for i := range s.procs {
		s.procs[i] = ProcStats{}
	}
	s.traffic = Traffic{}
	for i := range s.nodeServed {
		s.nodeServed[i] = 0
		s.nodePeak[i] = 0
		s.nodeWindow[i] = 0
	}
}

// CheckInvariants validates protocol invariants across caches and
// directory; it is used by tests and returns a descriptive error on the
// first violation found.
func (s *System) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lines := uint64(len(s.dir))
	holders := make([]uint64, lines) // line -> bitset of holding caches
	dirty := make([]uint64, lines)   // line -> bitset of M/E holders
	for p, c := range s.caches {
		var err error
		c.forEach(func(line uint64, st LineState) {
			if err != nil {
				return
			}
			if line >= lines {
				err = fmt.Errorf("line %d: cached beyond directory (%d lines)", line, lines)
				return
			}
			holders[line] |= 1 << uint(p)
			if st == Modified || st == Exclusive {
				dirty[line] |= 1 << uint(p)
				if int(s.dir[line].owner) != p {
					err = fmt.Errorf("line %d: cache %d holds %v but directory owner is %d", line, p, st, s.dir[line].owner)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	exact := !s.cfg.NoReplacementHints
	for line := range s.dir {
		d := s.dir[line]
		held := holders[line]
		if n := bits.OnesCount64(dirty[line]); n > 1 {
			return fmt.Errorf("line %d: %d exclusive/modified copies", line, n)
		}
		if d.sharers&held != held {
			return fmt.Errorf("line %d: directory sharers %b miss cache holders %b", line, d.sharers, held)
		}
		if exact && d.sharers != held {
			return fmt.Errorf("line %d: directory sharers %b != cache holders %b", line, d.sharers, held)
		}
		if d.owner >= 0 {
			st := s.caches[d.owner].peek(uint64(line))
			if st != Modified && st != Exclusive {
				return fmt.Errorf("line %d: directory owner %d holds state %v", line, d.owner, st)
			}
		}
	}
	return nil
}
