package memsys

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Trace is a recorded global reference interleaving — processor, address,
// read/write for every access — together with the home/sharing map of the
// address space that produced it.
//
// This makes the paper's methodology literal: §2.2 adopts PRAM timing
// precisely so that "the execution path of the program [does not] change"
// when architectural parameters are varied. Replaying one recorded trace
// against many cache configurations guarantees identical reference
// streams across a whole Figure-3 sweep, and is an order of magnitude
// faster than re-running the program, exactly like driving the cache
// simulator from a reference generator (Tango-Lite).
type Trace struct {
	// events packs one access per entry: addr<<8 | proc<<1 | write.
	events []uint64

	// Home map of the recording machine, at its line granularity.
	homeLineSize int
	homes        []int32
}

// traceEvent packs an access. Processor id 127 is reserved as the
// measurement-reset marker (mach.Epoch boundaries replay as ResetStats).
func traceEvent(proc int, a Addr, write bool) uint64 {
	e := uint64(a)<<8 | uint64(proc)<<1
	if write {
		e |= 1
	}
	return e
}

// resetMarker flags an epoch boundary in the stream.
const resetMarker = uint64(127) << 1

func (t *Trace) decode(i int) (proc int, a Addr, write bool) {
	e := t.events[i]
	return int(e >> 1 & 0x7f), Addr(e >> 8), e&1 == 1
}

// Len returns the number of recorded references.
func (t *Trace) Len() int { return len(t.events) }

// HomeFn adapts the recorded home map to any replay line size: the home
// of a byte address is looked up at the recording granularity.
func (t *Trace) HomeFn(lineSize int) HomeFn {
	return func(line uint64) int {
		recLine := line * uint64(lineSize) / uint64(t.homeLineSize)
		if recLine < uint64(len(t.homes)) {
			return int(t.homes[recLine])
		}
		return 0
	}
}

// Recorder accumulates a Trace. Appends are serialized by a mutex so the
// recorded interleaving is a legal global order (the same guarantee the
// memory-system lock provides during full simulation).
type Recorder struct {
	mu sync.Mutex
	tr Trace
}

// NewRecorder creates a recorder for a machine whose home map has the
// given line granularity.
func NewRecorder(homeLineSize int) *Recorder {
	return &Recorder{tr: Trace{homeLineSize: homeLineSize}}
}

// Record appends one access.
func (r *Recorder) Record(proc int, a Addr, write bool) {
	if proc >= 127 {
		panic("memsys: trace supports at most 126 processors")
	}
	r.mu.Lock()
	r.tr.events = append(r.tr.events, traceEvent(proc, a, write))
	r.mu.Unlock()
}

// RecordReset appends a measurement-reset marker (epoch boundary).
func (r *Recorder) RecordReset() {
	r.mu.Lock()
	r.tr.events = append(r.tr.events, resetMarker)
	r.mu.Unlock()
}

// Finish attaches the home map and returns the completed trace. The
// recorder must not be used afterwards.
func (r *Recorder) Finish(homes []int32) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr.homes = append([]int32(nil), homes...)
	return &r.tr
}

// Replay feeds the trace through a fresh memory system with the given
// configuration and returns the resulting statistics.
func Replay(t *Trace, cfg Config) (Stats, error) {
	cfg = cfg.WithDefaults()
	need := t.MaxProc() + 1
	for _, h := range t.homes {
		if int(h)+1 > need {
			need = int(h) + 1
		}
	}
	if cfg.Procs < need {
		return Stats{}, fmt.Errorf("memsys: trace needs ≥ %d processors, replay machine has %d", need, cfg.Procs)
	}
	sys, err := New(cfg, t.HomeFn(cfg.LineSize))
	if err != nil {
		return Stats{}, err
	}
	// Pre-size tables from the trace's address range.
	var maxAddr Addr
	for i := range t.events {
		if a := Addr(t.events[i] >> 8); a > maxAddr {
			maxAddr = a
		}
	}
	sys.Reserve(uint64(maxAddr)/WordBytes + 1)
	for i := range t.events {
		if t.events[i] == resetMarker {
			sys.ResetStats()
			continue
		}
		proc, a, write := t.decode(i)
		sys.Access(proc, a, write)
	}
	return sys.Stats(), nil
}

// traceMagic identifies the serialized format.
const traceMagic = 0x53504c32 // "SPL2"

// WriteTo serializes the trace (little-endian binary): magic, line size,
// home count, homes, event count, events. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(traceMagic)); err != nil {
		return n, err
	}
	if err := write(uint32(t.homeLineSize)); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.homes))); err != nil {
		return n, err
	}
	if err := write(t.homes); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.events))); err != nil {
		return n, err
	}
	if err := write(t.events); err != nil {
		return n, err
	}
	return n, nil
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	var magic, lineSize uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("memsys: bad trace magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &lineSize); err != nil {
		return nil, err
	}
	var nh uint64
	if err := binary.Read(r, binary.LittleEndian, &nh); err != nil {
		return nil, err
	}
	t := &Trace{homeLineSize: int(lineSize), homes: make([]int32, nh)}
	if err := binary.Read(r, binary.LittleEndian, t.homes); err != nil {
		return nil, err
	}
	var ne uint64
	if err := binary.Read(r, binary.LittleEndian, &ne); err != nil {
		return nil, err
	}
	t.events = make([]uint64, ne)
	if err := binary.Read(r, binary.LittleEndian, t.events); err != nil {
		return nil, err
	}
	return t, nil
}

// MaxProc returns the highest processor id appearing in the trace.
func (t *Trace) MaxProc() int {
	max := 0
	for i := range t.events {
		if t.events[i] == resetMarker {
			continue
		}
		if p := int(t.events[i] >> 1 & 0x7f); p > max {
			max = p
		}
	}
	return max
}
