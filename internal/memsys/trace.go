package memsys

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// Trace is a recorded global reference interleaving — processor, address,
// read/write for every access — together with the home/sharing map of the
// address space that produced it.
//
// This makes the paper's methodology literal: §2.2 adopts PRAM timing
// precisely so that "the execution path of the program [does not] change"
// when architectural parameters are varied. Replaying one recorded trace
// against many cache configurations guarantees identical reference
// streams across a whole Figure-3 sweep, and is an order of magnitude
// faster than re-running the program, exactly like driving the cache
// simulator from a reference generator (Tango-Lite).
type Trace struct {
	// events packs one access per entry: addr<<8 | proc<<1 | write.
	events []uint64

	// spans is the per-processor run structure of events, when known: the
	// batched recorder's merge produces one span per (epoch, processor)
	// run and the v2 decoder one per block, so the columnar v2 writer can
	// emit epoch-stamped blocks without rediscovering the runs. nil for
	// traces recorded through the serialized single-event path, where
	// WriteV2 derives runs (and reset-marker eras as epochs) by scanning.
	spans []traceSpan

	// Home map of the recording machine, at its line granularity.
	homeLineSize int
	homes        []int32

	// One-pass stream summary (max processor, address range, per-proc
	// reference counts), computed lazily and cached: MaxProc, ReplayMulti
	// and StackDistances all consult it, and traces are shared read-only
	// across concurrent replay jobs, so the scan must run at most once.
	metaOnce sync.Once
	meta     TraceMeta
}

// traceSpan is one maximal run of consecutive events issued by a single
// processor within one synchronization epoch (proc == spanMarker flags a
// measurement-reset marker, n == 1).
type traceSpan struct {
	epoch uint64
	proc  int
	n     int
}

// spanMarker is the traceSpan proc value of a reset-marker span.
const spanMarker = -1

// TraceMeta is the one-pass summary of a reference stream: everything a
// replay needs to pre-size its tables without walking the events. For an
// in-memory Trace it is computed once and cached; a v2 trace file stores
// it in the index footer, so no decode pass is needed at all.
type TraceMeta struct {
	// HomeLineSize is the home-map granularity of the recording machine.
	HomeLineSize int
	// MaxProc is the highest processor id referencing memory (0 for an
	// empty trace).
	MaxProc int
	// MinProcs is the processor count the stream demands of a replay
	// machine: every referencing processor and every home node must exist.
	MinProcs int
	// MaxAddr is the highest byte address referenced.
	MaxAddr Addr
	// Refs counts memory references (reset markers excluded).
	Refs uint64
	// Markers counts measurement-reset markers.
	Markers uint64
	// ProcRefs is the per-processor reference count, indexed by id;
	// length MaxProc+1 (nil when Refs == 0).
	ProcRefs []uint64
}

// Len returns the total stream length in events, markers included.
func (m TraceMeta) Len() int { return int(m.Refs + m.Markers) }

// TraceSource is a replayable reference stream: either an in-memory
// Trace or an out-of-core TraceFile streaming a v2 container from disk.
// ReplayMulti and StackDistances consume sources block by block, so
// their peak memory is O(block buffer + address space), never O(trace).
//
// The blocks method is unexported on purpose: a source must uphold
// in-package invariants (events yielded in exact recorded order, buffers
// valid only until the callback returns), so only memsys types implement
// it.
type TraceSource interface {
	// Meta returns the stream summary (cheap: cached or footer-backed).
	Meta() TraceMeta
	// HomeFn adapts the recorded home map to a replay line size.
	HomeFn(lineSize int) HomeFn
	// blocks calls yield for consecutive chunks of the event stream, in
	// recorded order. The slice is only valid until yield returns.
	blocks(yield func(events []uint64) error) error
}

// traceEvent packs an access. Processor id 127 is reserved as the
// measurement-reset marker (mach.Epoch boundaries replay as ResetStats).
func traceEvent(proc int, a Addr, write bool) uint64 {
	e := uint64(a)<<8 | uint64(proc)<<1
	if write {
		e |= 1
	}
	return e
}

// resetMarker flags an epoch boundary in the stream.
const resetMarker = uint64(127) << 1

func (t *Trace) decode(i int) (proc int, a Addr, write bool) {
	e := t.events[i]
	return int(e >> 1 & 0x7f), Addr(e >> 8), e&1 == 1
}

// Len returns the number of recorded references.
func (t *Trace) Len() int { return len(t.events) }

// homeFn adapts a recorded home map to any replay line size: the home of
// a byte address is looked up at the recording granularity.
func homeFn(homes []int32, homeLineSize, lineSize int) HomeFn {
	return func(line uint64) int {
		recLine := line * uint64(lineSize) / uint64(homeLineSize)
		if recLine < uint64(len(homes)) {
			return int(homes[recLine])
		}
		return 0
	}
}

// HomeFn adapts the recorded home map to any replay line size.
func (t *Trace) HomeFn(lineSize int) HomeFn {
	return homeFn(t.homes, t.homeLineSize, lineSize)
}

// maxTraceProcs is the number of processor ids a trace can carry: the
// packed encoding has 7 bits for the processor, and id 127 is reserved
// as the measurement-reset marker, leaving ids 0..126.
const maxTraceProcs = 127

// epochRun is one contiguous span of a processor sub-stream recorded
// within a single synchronization epoch.
type epochRun struct {
	epoch uint64
	n     int
}

// procStream is one processor's private event sub-stream. Exactly one
// goroutine (the simulated processor) appends to it, so no lock guards
// the hot path. Storage is a chunk list of caller-donated batch buffers
// — RecordBatch takes ownership instead of copying, so capture does no
// per-event copy and no growth-doubling churn; runs carry the
// sync-epoch stamps the deterministic merge in Finish orders by.
type procStream struct {
	chunks [][]uint64
	runs   []epochRun
}

// Recorder accumulates a Trace. It supports two capture paths:
//
//   - Record/RecordReset serialize single events under a mutex, in call
//     order — the recorded interleaving is exactly the caller's
//     interleaving (tools and tests drive this path).
//   - RecordBatch/RecordResetAt append whole per-processor batches to
//     lock-free sub-streams stamped with synchronization epochs; Finish
//     merges them into one legal global order deterministically (by
//     epoch, then processor, then local index), so recording the same
//     deterministic program is byte-identical across runs and
//     GOMAXPROCS settings. internal/mach's batched flush path drives
//     this.
//
// The two paths must not be mixed on one Recorder; Finish panics if
// both were used.
type Recorder struct {
	mu      sync.Mutex
	tr      Trace
	streams []procStream
	markers []uint64 // sync epochs of batched reset markers, nondecreasing
}

// NewRecorder creates a recorder for a machine whose home map has the
// given line granularity.
func NewRecorder(homeLineSize int) *Recorder {
	return &Recorder{
		tr:      Trace{homeLineSize: homeLineSize},
		streams: make([]procStream, maxTraceProcs),
	}
}

// checkProc bounds-checks a processor id against the trace encoding.
func checkProc(proc int) {
	if proc < 0 || proc >= maxTraceProcs {
		panic(fmt.Sprintf("memsys: trace supports at most %d processors (ids 0-%d; id %d is the reset marker), got %d",
			maxTraceProcs, maxTraceProcs-1, maxTraceProcs, proc))
	}
}

// Record appends one access, serialized in call order.
func (r *Recorder) Record(proc int, a Addr, write bool) {
	checkProc(proc)
	r.mu.Lock()
	r.tr.events = append(r.tr.events, traceEvent(proc, a, write))
	r.mu.Unlock()
}

// RecordReset appends a measurement-reset marker (epoch boundary) to the
// serialized single-event stream.
func (r *Recorder) RecordReset() {
	r.mu.Lock()
	r.tr.events = append(r.tr.events, resetMarker)
	r.mu.Unlock()
}

// RecordBatch appends a batch of packed events (traceEvent encoding,
// all by proc) recorded within the given synchronization epoch to the
// processor's private sub-stream. It takes no lock: each simulated
// processor flushes only its own sub-stream, and quiescence at Finish
// is the caller's contract (internal/mach flushes every buffer at
// phase ends before finishing). Epochs must be nondecreasing per
// processor. The recorder takes ownership of the events slice — the
// caller must hand over a buffer it will not touch again.
func (r *Recorder) RecordBatch(proc int, epoch uint64, events []uint64) {
	checkProc(proc)
	if len(events) == 0 {
		return
	}
	st := &r.streams[proc]
	if k := len(st.runs) - 1; k >= 0 && st.runs[k].epoch == epoch {
		st.runs[k].n += len(events)
	} else {
		st.runs = append(st.runs, epochRun{epoch: epoch, n: len(events)})
	}
	st.chunks = append(st.chunks, events)
}

// RecordResetAt records a measurement-reset marker at a synchronization
// epoch boundary: the marker sorts before every batched event of that
// epoch (and after every event of earlier epochs) in the merged trace.
// It must be called from a quiescent point — all processors flushed and
// blocked (Machine.Epoch runs it inside the barrier, ResetStats between
// phases) — with epochs nondecreasing across calls.
func (r *Recorder) RecordResetAt(epoch uint64) {
	r.mu.Lock()
	r.markers = append(r.markers, epoch)
	r.mu.Unlock()
}

// mergeRun is one sortable span of the deterministic merge: a span of
// a processor sub-stream starting at chunk ci offset off, or a reset
// marker (proc == -1, n == 0).
type mergeRun struct {
	epoch   uint64
	proc    int
	ci, off int
	n       int
}

// mergeBatches flattens the per-processor sub-streams and reset markers
// into one legal global event order: by sync epoch, then processor id
// (markers first), then local index. Cross-processor order inside one
// epoch is a choice — any order is legal there, because an epoch by
// construction contains no release→acquire edge — and this fixed choice
// is what makes recordings byte-identical across runs. Alongside the
// flat stream it returns the (epoch, proc) span structure — the merged
// runs are exactly the column blocks of the v2 container, so WriteV2
// can emit them without rediscovery.
func (r *Recorder) mergeBatches() ([]uint64, []traceSpan) {
	var runs []mergeRun
	total := 0
	for _, e := range r.markers {
		runs = append(runs, mergeRun{epoch: e, proc: -1})
		total++
	}
	for p := range r.streams {
		st := &r.streams[p]
		// The chunk list concatenates in run-list (arrival) order, so a
		// walk in that order pins each run's starting chunk position
		// before the sort below rearranges the runs.
		ci, off := 0, 0
		for _, run := range st.runs {
			runs = append(runs, mergeRun{epoch: run.epoch, proc: p, ci: ci, off: off, n: run.n})
			for skip := run.n; skip > 0; {
				take := len(st.chunks[ci]) - off
				if take > skip {
					take = skip
				}
				off += take
				skip -= take
				if off == len(st.chunks[ci]) {
					ci++
					off = 0
				}
			}
		}
		for _, ch := range st.chunks {
			total += len(ch)
		}
	}
	// Stable sort keeps a processor's same-epoch runs (multiple
	// buffer-full flushes between sync points) in append order.
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].epoch != runs[j].epoch {
			return runs[i].epoch < runs[j].epoch
		}
		return runs[i].proc < runs[j].proc
	})
	out := make([]uint64, 0, total)
	var spans []traceSpan
	for _, run := range runs {
		if run.proc < 0 {
			out = append(out, resetMarker)
			spans = append(spans, traceSpan{epoch: run.epoch, proc: spanMarker, n: 1})
			continue
		}
		if k := len(spans) - 1; k >= 0 && spans[k].proc == run.proc && spans[k].epoch == run.epoch {
			spans[k].n += run.n
		} else {
			spans = append(spans, traceSpan{epoch: run.epoch, proc: run.proc, n: run.n})
		}
		st := &r.streams[run.proc]
		ci, off := run.ci, run.off
		for n := run.n; n > 0; {
			ch := st.chunks[ci]
			take := len(ch) - off
			if take > n {
				take = n
			}
			out = append(out, ch[off:off+take]...)
			off += take
			n -= take
			if off == len(ch) {
				ci++
				off = 0
			}
		}
	}
	return out, spans
}

// batchedLocked reports whether the lock-free batched capture path was
// used. It is derived from the sub-stream and marker state rather than
// set by RecordBatch, which must not write any shared scalar (it runs
// concurrently on every processor goroutine).
func (r *Recorder) batchedLocked() bool {
	if len(r.markers) > 0 {
		return true
	}
	for p := range r.streams {
		if len(r.streams[p].runs) > 0 {
			return true
		}
	}
	return false
}

// Finish attaches the home map and returns the completed trace. The
// recorder must not be used afterwards.
func (r *Recorder) Finish(homes []int32) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.batchedLocked() {
		if len(r.tr.events) > 0 {
			panic("memsys: Recorder mixed Record/RecordReset with the batched capture path")
		}
		r.tr.events, r.tr.spans = r.mergeBatches()
		r.streams = nil
	}
	r.tr.homes = append([]int32(nil), homes...)
	return &r.tr
}

// Meta returns the stream summary, computing the one-pass scan on first
// use and caching it (the trace is immutable once handed out, and may be
// consulted by many replay jobs concurrently).
func (t *Trace) Meta() TraceMeta {
	t.metaOnce.Do(func() {
		m := TraceMeta{HomeLineSize: t.homeLineSize}
		var procRefs [maxTraceProcs + 1]uint64
		for _, e := range t.events {
			if e == resetMarker {
				m.Markers++
				continue
			}
			m.Refs++
			p := int(e >> 1 & 0x7f)
			procRefs[p]++
			if p > m.MaxProc {
				m.MaxProc = p
			}
			if a := Addr(e >> 8); a > m.MaxAddr {
				m.MaxAddr = a
			}
		}
		if m.Refs > 0 {
			m.ProcRefs = append([]uint64(nil), procRefs[:m.MaxProc+1]...)
		}
		m.MinProcs = minProcs(m.MaxProc, t.homes)
		t.meta = m
	})
	return t.meta
}

// minProcs returns the processor count a stream demands of a replay
// machine: every referencing processor and every home node must exist.
func minProcs(maxProc int, homes []int32) int {
	need := maxProc + 1
	for _, h := range homes {
		if int(h)+1 > need {
			need = int(h) + 1
		}
	}
	return need
}

// replayBlockSize is the event-block granularity of in-memory replay:
// each system consumes a whole block before the next system starts it,
// so its cache and directory state stay hot, and the per-block lastWrite
// buffer stays small enough to live in L2.
const replayBlockSize = 4096

// blocks yields the in-memory event stream in replayBlockSize chunks
// (no copy — the yielded slices alias the trace).
func (t *Trace) blocks(yield func(events []uint64) error) error {
	for lo := 0; lo < len(t.events); lo += replayBlockSize {
		hi := lo + replayBlockSize
		if hi > len(t.events) {
			hi = len(t.events)
		}
		if err := yield(t.events[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// Replay feeds the stream through a fresh memory system with the given
// configuration and returns the resulting statistics.
func Replay(src TraceSource, cfg Config) (Stats, error) {
	out, err := ReplayMulti(src, []Config{cfg})
	if err != nil {
		return Stats{}, err
	}
	return out[0], nil
}

// ReplayMulti feeds the stream through one fresh memory system per
// configuration in a single fused pass: event decode, reset handling and
// the address-range summary happen once for the whole sweep instead of
// once per configuration, and every reference enters each system through
// the lock-free single-threaded path. The stream is consumed block by
// block with the per-word write history computed incrementally per
// block, so peak memory is O(block buffer + address space) — never
// O(trace) — and a multi-gigabyte TraceFile replays out-of-core on a
// small box. When several CPUs are available the systems are sharded
// across them — each system is still driven by exactly one goroutine
// over the read-only stream, so the statistics are unchanged by the
// sharding. Configurations may differ in any parameter, line size
// included. The returned statistics are, position by position, exactly
// what per-configuration Replay calls would produce (the systems share
// nothing but the decoded stream).
func ReplayMulti(src TraceSource, cfgs []Config) ([]Stats, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	meta := src.Meta()
	systems := make([]*System, len(cfgs))
	for i, cfg := range cfgs {
		cfg = cfg.WithDefaults()
		if cfg.Procs < meta.MinProcs {
			return nil, fmt.Errorf("memsys: trace needs ≥ %d processors, replay machine has %d", meta.MinProcs, cfg.Procs)
		}
		sys, err := New(cfg, src.HomeFn(cfg.LineSize))
		if err != nil {
			return nil, err
		}
		// Pre-size tables from the stream's address range.
		sys.useExternalWords()
		sys.Reserve(uint64(meta.MaxAddr)/WordBytes + 1)
		systems[i] = sys
	}

	// The per-word write history that drives true/false-sharing
	// classification is a property of the stream alone — every system
	// advances seq identically — so compute it once per block for the
	// whole sweep: lastWrite[i] packs the most recent write to event i's
	// word before event i as seq<<7 | writer+1, 0 when never written.
	// The words table persists across blocks (it is O(address space),
	// like every system's own tables); the lastWrite buffer is O(block).
	words := make([]uint64, uint64(meta.MaxAddr)/WordBytes+1)
	var seq uint64
	var lw []uint64

	replayBlock := func(subset []*System, events, lw []uint64) {
		for _, sys := range subset {
			for i, e := range events {
				if e == resetMarker {
					sys.resetStatsLocked()
					continue
				}
				sys.replayAccessExt(int(e>>1&0x7f), Addr(e>>8), e&1 == 1, lw[i])
			}
		}
	}

	// Persistent workers over system shards: every worker replays each
	// block into its own systems, with a barrier per block so the shared
	// block and lastWrite buffers can be reused for the next one. Per
	// system the stream is still processed strictly in order, so results
	// are unchanged by the sharding.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(systems) {
		workers = len(systems)
	}
	type blockWork struct{ events, lw []uint64 }
	var chans []chan blockWork
	var wg sync.WaitGroup
	if workers > 1 {
		chunk := (len(systems) + workers - 1) / workers
		for lo := 0; lo < len(systems); lo += chunk {
			hi := lo + chunk
			if hi > len(systems) {
				hi = len(systems)
			}
			ch := make(chan blockWork)
			chans = append(chans, ch)
			go func(subset []*System) {
				for w := range ch {
					replayBlock(subset, w.events, w.lw)
					wg.Done()
				}
			}(systems[lo:hi])
		}
	}

	err := src.blocks(func(events []uint64) error {
		if cap(lw) < len(events) {
			lw = make([]uint64, len(events))
		}
		b := lw[:len(events)]
		for i, e := range events {
			if e == resetMarker {
				b[i] = 0
				continue
			}
			// Bounds defenses fire only for streams whose index footer
			// understates the ranges the blocks actually use (a lying or
			// corrupt v2 file); an in-memory trace's meta is exact.
			if p := int(e >> 1 & 0x7f); p > meta.MaxProc {
				return fmt.Errorf("memsys: corrupt trace: processor %d beyond declared maximum %d", p, meta.MaxProc)
			}
			w := Addr(e >> 8).Word()
			if w >= uint64(len(words)) {
				return fmt.Errorf("memsys: corrupt trace: address %#x beyond declared maximum %#x", e>>8, uint64(meta.MaxAddr))
			}
			seq++
			b[i] = words[w]
			if e&1 == 1 {
				words[w] = seq<<7 | (e>>1&0x7f + 1)
			}
		}
		if chans == nil {
			replayBlock(systems, events, b)
			return nil
		}
		wg.Add(len(chans))
		for _, ch := range chans {
			ch <- blockWork{events, b}
		}
		wg.Wait()
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	if err != nil {
		return nil, err
	}

	out := make([]Stats, len(cfgs))
	for i, sys := range systems {
		out[i] = sys.Stats()
	}
	return out, nil
}

// traceMagic identifies the flat v1 serialized format.
const traceMagic = 0x53504c32 // "SPL2"

// WriteTo serializes the trace in the flat v1 format (little-endian
// binary): magic, line size, home count, homes, event count, events —
// 8 bytes per event. It implements io.WriterTo. WriteV2 produces the
// compact columnar container instead; ReadTrace accepts both.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(traceMagic)); err != nil {
		return n, err
	}
	if err := write(uint32(t.homeLineSize)); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.homes))); err != nil {
		return n, err
	}
	if err := write(t.homes); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.events))); err != nil {
		return n, err
	}
	if err := write(t.events); err != nil {
		return n, err
	}
	return n, nil
}

// maxHomeLineSize bounds the recorded home-map granularity a trace file
// may claim; real machines use small powers of two, so anything beyond
// 1 MiB marks a corrupt header.
const maxHomeLineSize = 1 << 20

// readCount reads a length-prefix field, labelling truncation with the
// field name.
func readCount(r io.Reader, what string) (uint64, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, fmt.Errorf("memsys: trace truncated reading %s count: %w", what, err)
	}
	return n, nil
}

// readChunked reads n little-endian values in bounded chunks, so a
// corrupt count field in an untrusted trace file produces a descriptive
// truncation error instead of a gigantic up-front allocation (and the
// OOM or panic that follows).
func readChunked[T any](r io.Reader, n uint64, what string) ([]T, error) {
	const chunk = 1 << 16
	capHint := n
	if capHint > chunk {
		capHint = chunk
	}
	out := make([]T, 0, capHint)
	for read := uint64(0); read < n; {
		take := n - read
		if take > chunk {
			take = chunk
		}
		buf := make([]T, take)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("memsys: trace truncated reading %s (%d of %d decoded): %w", what, read, n, err)
		}
		out = append(out, buf...)
		read += take
	}
	return out, nil
}

// ReadTrace deserializes a trace written by WriteTo or WriteV2, sniffing
// the version from the magic. The input is treated as untrusted:
// truncated or corrupt files yield a descriptive error, never a panic or
// an unbounded allocation.
func ReadTrace(r io.Reader) (*Trace, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading magic: %w", err)
	}
	switch magic {
	case traceMagic:
		return readTraceV1(r)
	case traceMagicV2:
		return readTraceV2(r)
	}
	return nil, fmt.Errorf("memsys: bad trace magic %#x (want %#x or %#x)", magic, traceMagic, traceMagicV2)
}

// readTraceV1 decodes the flat v1 body following the magic.
func readTraceV1(r io.Reader) (*Trace, error) {
	var lineSize uint32
	if err := binary.Read(r, binary.LittleEndian, &lineSize); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading home line size: %w", err)
	}
	if lineSize == 0 || lineSize > maxHomeLineSize {
		return nil, fmt.Errorf("memsys: corrupt trace: home line size %d out of range (1..%d)", lineSize, maxHomeLineSize)
	}
	nh, err := readCount(r, "home map")
	if err != nil {
		return nil, err
	}
	homes, err := readChunked[int32](r, nh, "home map")
	if err != nil {
		return nil, err
	}
	ne, err := readCount(r, "event")
	if err != nil {
		return nil, err
	}
	events, err := readChunked[uint64](r, ne, "events")
	if err != nil {
		return nil, err
	}
	return &Trace{homeLineSize: int(lineSize), homes: homes, events: events}, nil
}

// MaxProc returns the highest processor id appearing in the trace.
func (t *Trace) MaxProc() int {
	return t.Meta().MaxProc
}
