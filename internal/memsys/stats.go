package memsys

// MissKind classifies a cache miss following the extension of the
// classification in [DSR+93] used by the paper (§2.2): cold misses are a
// processor's first reference to a line; true sharing misses fetch a word
// written by another processor since this processor last held it (a
// definition independent of finite capacity, associativity, and false
// sharing — §6); false sharing misses re-fetch an invalidated line whose
// accessed word was not remotely written; everything else is a
// capacity/conflict miss.
type MissKind uint8

const (
	MissCold MissKind = iota
	MissTrue
	MissFalse
	MissCapacity
	numMissKinds
)

// String implements fmt.Stringer for MissKind.
func (k MissKind) String() string {
	switch k {
	case MissCold:
		return "cold"
	case MissTrue:
		return "true-sharing"
	case MissFalse:
		return "false-sharing"
	case MissCapacity:
		return "capacity"
	}
	return "unknown"
}

// ProcStats accumulates per-processor reference and miss counts.
type ProcStats struct {
	Reads    uint64
	Writes   uint64
	Misses   [numMissKinds]uint64
	Upgrades uint64 // write hits to Shared lines (invalidating, no data fetch)
}

// Refs returns the total number of references issued.
func (p ProcStats) Refs() uint64 { return p.Reads + p.Writes }

// TotalMisses returns the number of misses of all kinds.
func (p ProcStats) TotalMisses() uint64 {
	var t uint64
	for _, m := range p.Misses {
		t += m
	}
	return t
}

// MissRate returns misses per reference (0 when no references were issued).
func (p ProcStats) MissRate() float64 {
	if r := p.Refs(); r > 0 {
		return float64(p.TotalMisses()) / float64(r)
	}
	return 0
}

// Traffic accumulates network and local-memory traffic in bytes, decomposed
// into the categories of Figure 4 of the paper: remote data by miss type
// plus writebacks, remote overhead (request, invalidation, acknowledgment
// and replacement-hint packets plus data headers), and local data. The
// true-sharing data traffic — the paper's approximation of inherent
// communication — is tracked separately and overlaps the other categories.
type Traffic struct {
	LocalData       uint64
	RemoteCold      uint64
	RemoteShared    uint64 // true + false sharing miss fills crossing nodes
	RemoteCapacity  uint64
	RemoteWriteback uint64
	RemoteOverhead  uint64
	TrueSharingData uint64 // local + remote data moved by true sharing misses
}

// Remote returns total internode traffic (data + overhead).
func (t Traffic) Remote() uint64 {
	return t.RemoteCold + t.RemoteShared + t.RemoteCapacity + t.RemoteWriteback + t.RemoteOverhead
}

// Total returns all traffic including local data.
func (t Traffic) Total() uint64 { return t.Remote() + t.LocalData }

// Stats is a snapshot of a memory system's counters.
type Stats struct {
	Procs   []ProcStats
	Traffic Traffic

	// NodeServed is the total data bytes served by each node's memory (or
	// owning cache); NodePeak the maximum served by a node within any
	// window of consecutive accesses — the hotspot indicator: a node whose
	// peak far exceeds the mean is a temporal hotspot even if totals are
	// uniform (§3's motivation for the FFT's staggered transposes).
	NodeServed []uint64
	NodePeak   []uint64
}

// HotspotRatio returns max(NodePeak) / mean(NodePeak), ≥ 1 when any node
// served bursts; 0 when nothing was served.
func (s Stats) HotspotRatio() float64 {
	var sum, max uint64
	for _, v := range s.NodePeak {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.NodePeak))
	return float64(max) / mean
}

// Aggregate sums the per-processor counters.
func (s Stats) Aggregate() ProcStats {
	var a ProcStats
	for _, p := range s.Procs {
		a.Reads += p.Reads
		a.Writes += p.Writes
		a.Upgrades += p.Upgrades
		for k := range p.Misses {
			a.Misses[k] += p.Misses[k]
		}
	}
	return a
}

// MissRate returns the aggregate miss rate across processors.
func (s Stats) MissRate() float64 { return s.Aggregate().MissRate() }
