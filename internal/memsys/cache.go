package memsys

// LineState is the Illinois-protocol state of a line in one cache:
// dirty (Modified), shared (Shared), valid-exclusive (Exclusive), and
// invalid — the four states named in §2.2 of the paper.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive // valid-exclusive: clean, only copy
	Modified  // dirty
)

// String implements fmt.Stringer for LineState.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// way is one entry of a set-associative cache set, packed to 16 bytes so
// a 4-way set is exactly one 64-byte cache line. tag is (line+1)<<2 with
// the Illinois state in the low two bits; 0 means invalid. Valid lines
// are never in state Invalid, so the probe loop needs one masked compare
// per way instead of a line match plus a state check.
type way struct {
	tag   uint64 // (line+1)<<2 | state, 0 = invalid
	stamp uint64 // LRU timestamp; higher = more recently used
}

// wayTag packs a line and state into a way tag.
func wayTag(line uint64, st LineState) uint64 { return (line+1)<<2 | uint64(st) }

// fnode is one entry of a fully associative cache's LRU list.
type fnode struct {
	line       uint64
	state      LineState
	prev, next *fnode
}

// cache models one processor's single-level cache with LRU replacement.
// Set-associative caches keep per-way LRU timestamps; fully associative
// caches keep an exact LRU list over a hash index.
type cache struct {
	ways    int
	sets    int
	setMask uint64 // sets-1 when sets is a power of two, else 0 (use modulo)
	entries []way  // set i occupies entries[i*ways : (i+1)*ways]
	stamp   uint64

	full  bool
	cap   int
	index map[uint64]*fnode
	head  *fnode // most recently used
	tail  *fnode // least recently used
}

func newCache(cfg Config) *cache {
	c := &cache{full: cfg.Assoc == FullyAssoc}
	if c.full {
		c.cap = cfg.lines()
		c.index = make(map[uint64]*fnode, c.cap)
		return c
	}
	c.ways = cfg.ways()
	c.sets = cfg.sets()
	if c.sets&(c.sets-1) == 0 {
		c.setMask = uint64(c.sets - 1)
	}
	c.entries = make([]way, c.sets*c.ways)
	return c
}

// lookup returns the state of line, touching it for LRU. Invalid means miss.
func (c *cache) lookup(line uint64) LineState {
	if c.full {
		n := c.index[line]
		if n == nil {
			return Invalid
		}
		c.moveToFront(n)
		return n.state
	}
	set := c.set(line)
	want := (line + 1) << 2
	for i := range set {
		if set[i].tag&^3 == want {
			c.stamp++
			set[i].stamp = c.stamp
			return LineState(set[i].tag & 3)
		}
	}
	return Invalid
}

// peek returns the state of line without touching LRU.
func (c *cache) peek(line uint64) LineState {
	if c.full {
		if n := c.index[line]; n != nil {
			return n.state
		}
		return Invalid
	}
	set := c.set(line)
	want := (line + 1) << 2
	for i := range set {
		if set[i].tag&^3 == want {
			return LineState(set[i].tag & 3)
		}
	}
	return Invalid
}

// setState changes the state of a resident line. The line must be present.
func (c *cache) setState(line uint64, st LineState) {
	if c.full {
		c.index[line].state = st
		return
	}
	set := c.set(line)
	want := (line + 1) << 2
	for i := range set {
		if set[i].tag&^3 == want {
			set[i].tag = want | uint64(st)
			return
		}
	}
	panic("memsys: setState on non-resident line")
}

// invalidate drops line from the cache if present.
func (c *cache) invalidate(line uint64) {
	if c.full {
		if n := c.index[line]; n != nil {
			c.unlink(n)
			delete(c.index, line)
		}
		return
	}
	set := c.set(line)
	want := (line + 1) << 2
	for i := range set {
		if set[i].tag&^3 == want {
			set[i].tag = 0
			return
		}
	}
}

// insert places line with the given state, evicting the LRU victim of its
// set if necessary. It reports the victim line and state when an eviction
// of a valid line occurred.
func (c *cache) insert(line uint64, st LineState) (victim uint64, vstate LineState, evicted bool) {
	if c.full {
		if n := c.index[line]; n != nil { // re-insert after upgrade path
			n.state = st
			c.moveToFront(n)
			return 0, Invalid, false
		}
		if len(c.index) >= c.cap {
			v := c.tail
			c.unlink(v)
			delete(c.index, v.line)
			victim, vstate, evicted = v.line, v.state, true
		}
		n := &fnode{line: line, state: st}
		c.pushFront(n)
		c.index[line] = n
		return victim, vstate, evicted
	}

	set := c.set(line)
	want := (line + 1) << 2
	for i := range set {
		if set[i].tag&^3 == want {
			set[i].tag = want | uint64(st)
			c.stamp++
			set[i].stamp = c.stamp
			return 0, Invalid, false
		}
	}
	// Prefer an invalid slot, else evict the LRU valid slot.
	slot := -1
	for i := range set {
		if set[i].tag == 0 {
			slot = i
			break
		}
	}
	if slot == -1 {
		oldest := ^uint64(0)
		for i := range set {
			if set[i].stamp < oldest {
				oldest = set[i].stamp
				slot = i
			}
		}
		victim, vstate, evicted = set[slot].tag>>2-1, LineState(set[slot].tag&3), true
	}
	c.stamp++
	set[slot] = way{tag: wayTag(line, st), stamp: c.stamp}
	return victim, vstate, evicted
}

// resident returns the number of valid lines (used by invariant tests).
func (c *cache) resident() int {
	if c.full {
		return len(c.index)
	}
	n := 0
	for i := range c.entries {
		if c.entries[i].tag != 0 {
			n++
		}
	}
	return n
}

// forEach visits every valid line (used by invariant tests).
func (c *cache) forEach(f func(line uint64, st LineState)) {
	if c.full {
		//splash:allow determinism feeds the order-independent invariant checker (bitset aggregation), never results or traces
		for l, n := range c.index {
			f(l, n.state)
		}
		return
	}
	for i := range c.entries {
		if t := c.entries[i].tag; t != 0 {
			f(t>>2-1, LineState(t&3))
		}
	}
}

func (c *cache) set(line uint64) []way {
	var s int
	if c.setMask != 0 || c.sets == 1 {
		s = int(line & c.setMask)
	} else {
		s = int(line % uint64(c.sets))
	}
	return c.entries[s*c.ways : (s+1)*c.ways]
}

func (c *cache) moveToFront(n *fnode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *cache) pushFront(n *fnode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *cache) unlink(n *fnode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
