package memsys

// LineState is the Illinois-protocol state of a line in one cache:
// dirty (Modified), shared (Shared), valid-exclusive (Exclusive), and
// invalid — the four states named in §2.2 of the paper.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive // valid-exclusive: clean, only copy
	Modified  // dirty
)

// String implements fmt.Stringer for LineState.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// way is one entry of a set-associative cache set.
type way struct {
	line  uint64
	stamp uint64 // LRU timestamp; higher = more recently used
	state LineState
}

// fnode is one entry of a fully associative cache's LRU list.
type fnode struct {
	line       uint64
	state      LineState
	prev, next *fnode
}

// cache models one processor's single-level cache with LRU replacement.
// Set-associative caches keep per-way LRU timestamps; fully associative
// caches keep an exact LRU list over a hash index.
type cache struct {
	ways    int
	sets    int
	entries []way // set i occupies entries[i*ways : (i+1)*ways]
	stamp   uint64

	full  bool
	cap   int
	index map[uint64]*fnode
	head  *fnode // most recently used
	tail  *fnode // least recently used
}

func newCache(cfg Config) *cache {
	c := &cache{full: cfg.Assoc == FullyAssoc}
	if c.full {
		c.cap = cfg.lines()
		c.index = make(map[uint64]*fnode, c.cap)
		return c
	}
	c.ways = cfg.ways()
	c.sets = cfg.sets()
	c.entries = make([]way, c.sets*c.ways)
	return c
}

// lookup returns the state of line, touching it for LRU. Invalid means miss.
func (c *cache) lookup(line uint64) LineState {
	if c.full {
		n := c.index[line]
		if n == nil {
			return Invalid
		}
		c.moveToFront(n)
		return n.state
	}
	set := c.set(line)
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			c.stamp++
			set[i].stamp = c.stamp
			return set[i].state
		}
	}
	return Invalid
}

// peek returns the state of line without touching LRU.
func (c *cache) peek(line uint64) LineState {
	if c.full {
		if n := c.index[line]; n != nil {
			return n.state
		}
		return Invalid
	}
	set := c.set(line)
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			return set[i].state
		}
	}
	return Invalid
}

// setState changes the state of a resident line. The line must be present.
func (c *cache) setState(line uint64, st LineState) {
	if c.full {
		c.index[line].state = st
		return
	}
	set := c.set(line)
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			set[i].state = st
			return
		}
	}
	panic("memsys: setState on non-resident line")
}

// invalidate drops line from the cache if present.
func (c *cache) invalidate(line uint64) {
	if c.full {
		if n := c.index[line]; n != nil {
			c.unlink(n)
			delete(c.index, line)
		}
		return
	}
	set := c.set(line)
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			set[i].state = Invalid
			return
		}
	}
}

// insert places line with the given state, evicting the LRU victim of its
// set if necessary. It reports the victim line and state when an eviction
// of a valid line occurred.
func (c *cache) insert(line uint64, st LineState) (victim uint64, vstate LineState, evicted bool) {
	if c.full {
		if n := c.index[line]; n != nil { // re-insert after upgrade path
			n.state = st
			c.moveToFront(n)
			return 0, Invalid, false
		}
		if len(c.index) >= c.cap {
			v := c.tail
			c.unlink(v)
			delete(c.index, v.line)
			victim, vstate, evicted = v.line, v.state, true
		}
		n := &fnode{line: line, state: st}
		c.pushFront(n)
		c.index[line] = n
		return victim, vstate, evicted
	}

	set := c.set(line)
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			set[i].state = st
			c.stamp++
			set[i].stamp = c.stamp
			return 0, Invalid, false
		}
	}
	// Prefer an invalid slot, else evict the LRU valid slot.
	slot := -1
	for i := range set {
		if set[i].state == Invalid {
			slot = i
			break
		}
	}
	if slot == -1 {
		oldest := ^uint64(0)
		for i := range set {
			if set[i].stamp < oldest {
				oldest = set[i].stamp
				slot = i
			}
		}
		victim, vstate, evicted = set[slot].line, set[slot].state, true
	}
	c.stamp++
	set[slot] = way{line: line, stamp: c.stamp, state: st}
	return victim, vstate, evicted
}

// resident returns the number of valid lines (used by invariant tests).
func (c *cache) resident() int {
	if c.full {
		return len(c.index)
	}
	n := 0
	for i := range c.entries {
		if c.entries[i].state != Invalid {
			n++
		}
	}
	return n
}

// forEach visits every valid line (used by invariant tests).
func (c *cache) forEach(f func(line uint64, st LineState)) {
	if c.full {
		for l, n := range c.index {
			f(l, n.state)
		}
		return
	}
	for i := range c.entries {
		if c.entries[i].state != Invalid {
			f(c.entries[i].line, c.entries[i].state)
		}
	}
}

func (c *cache) set(line uint64) []way {
	s := int(line % uint64(c.sets))
	return c.entries[s*c.ways : (s+1)*c.ways]
}

func (c *cache) moveToFront(n *fnode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *cache) pushFront(n *fnode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *cache) unlink(n *fnode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
