// Package memsys simulates the memory system of a cache-coherent
// shared-address-space multiprocessor with physically distributed memory:
// one processor per node, a single-level cache per processor kept coherent
// by a full-map directory running the Illinois (MESI) protocol with
// replacement hints, exactly as described in §2.2 of the SPLASH-2 paper.
//
// Timing follows the paper's PRAM model: the memory system never delays a
// reference. What memsys produces is the architecturally relevant
// characterization — cache misses decomposed by cause (cold, capacity,
// true sharing, false sharing) and network traffic decomposed by category
// (remote shared/cold/capacity/writeback data, remote overhead, local data)
// — for whatever reference stream the simulated processors issue.
package memsys

// Addr is a byte address in the simulated shared address space.
type Addr uint64

// WordBytes is the size of a simulated machine word. The SPLASH-2 codes are
// double-precision dominated, so one word holds one scalar.
const WordBytes = 8

// Word returns the word index containing a.
func (a Addr) Word() uint64 { return uint64(a) / WordBytes }

// Line returns the cache line index containing a for the given line size.
func (a Addr) Line(lineSize int) uint64 { return uint64(a) / uint64(lineSize) }
