package memsys

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the columnar v2 trace container. The flat v1
// format spends 8 bytes on every event; paper-scale inputs (Barnes 16K,
// FFT 64K, Radix 1M keys) produce reference streams where that — plus
// ReplayMulti's equal-sized lastWrite side array — is the binding memory
// constraint. The v2 container exploits the structure PR 5's batched
// capture already exposes: the stream is a sequence of per-processor
// epoch runs, so the processor id is block metadata instead of a
// per-event field, the read/write flags compress to a bitmap column,
// and the address column — highly sequential within one processor's
// run — delta+varint encodes to a byte or two per reference.
//
// On-disk layout (all varints are encoding/binary uvarint/varint):
//
//	header   magic "SPL3" u32 · homeLineSize u32 · nhomes u64 · homes []int32
//	blocks   a sequence of tagged blocks:
//	         tag 0 (events): proc u8 · epoch uvarint · count uvarint ·
//	             payloadLen uvarint · payload
//	             payload = write bitmap (⌈count/8⌉ bytes, bit i = event i
//	             is a write) · addresses (first absolute uvarint, then
//	             zigzag-varint deltas)
//	         tag 1 (marker): epoch uvarint — a measurement-reset marker
//	         tag 2 (end): terminates the block sequence
//	footer   version uvarint (2) · firstBlockOff · nprocs · maxAddr ·
//	         refs · markers · per-proc ref counts (nprocs uvarints) ·
//	         nblocks · per-block entries (tag u8 · [proc u8] ·
//	         epochDelta uvarint · [count uvarint] · size uvarint)
//	trailer  footerLen u64 · index magic "SP2I" u32
//
// Blocks decode independently: each header carries everything the
// payload needs, so a reader can decode blocks in parallel or decode
// only a (proc, epoch) window selected from the footer. The trailer is
// fixed-size, so a ReaderAt finds the footer without scanning, and the
// footer's per-block sizes turn into absolute offsets by prefix sum —
// random access with no prefix decode (see TraceFile). Epochs are
// nondecreasing across blocks (the recorder's merge order), which is
// why the footer stores deltas.
//
// Forward compatibility: the footer leads with a version; readers must
// reject versions they don't know. New per-block information must go in
// new tags (readers reject unknown tags) or a new version, never by
// appending to existing structures.

// traceMagicV2 identifies the columnar v2 container ("SPL3").
const traceMagicV2 = 0x53504c33

// TraceMagicV1 and TraceMagicV2 expose the two container magics (the
// file's first four little-endian bytes) so tools can sniff a format
// without attempting a decode.
const (
	TraceMagicV1 = traceMagic
	TraceMagicV2 = traceMagicV2
)

// traceIndexMagic ends a v2 file ("SP2I" little-endian); a ReaderAt
// checks it before trusting the trailing footer length.
const traceIndexMagic = 0x49325053

// v2 block tags.
const (
	v2TagEvents = 0
	v2TagMarker = 1
	v2TagEnd    = 2
)

// v2BlockCap is the encoder's events-per-block cap: large enough to
// amortize headers to noise, small enough that one decoded block plus
// its lastWrite buffer stays cache-resident during streaming replay.
const v2BlockCap = 4096

// v2MaxBlockEvents bounds the event count an untrusted block header may
// claim, capping the per-block allocation a corrupt file can demand.
const v2MaxBlockEvents = 1 << 20

// maxTraceAddr is the largest encodable byte address: the packed event
// word keeps 56 bits for the address.
const maxTraceAddr = 1<<56 - 1

// v2MaxPayload bounds an events-block payload: the write bitmap plus at
// most binary.MaxVarintLen64 bytes per address.
func v2MaxPayload(count int) int {
	return (count+7)/8 + count*binary.MaxVarintLen64
}

// v2MaxBlockSize bounds a whole events block (tag, proc, three varint
// header fields, payload) for validating untrusted footer entries.
func v2MaxBlockSize(count int) int64 {
	return int64(2 + 3*binary.MaxVarintLen64 + v2MaxPayload(count))
}

// v2Block describes one encoded block — the unit of the index footer.
type v2Block struct {
	marker bool
	proc   int
	epoch  uint64
	events int   // 1 for a marker
	size   int64 // encoded bytes, tag included
}

// deriveSpans reconstructs the (epoch, proc) run structure of a flat
// event stream that was recorded without epoch stamps (the serialized
// Record path, or a v1 file): runs break at processor changes, and
// reset markers open a new era numbered like the batched recorder does
// — the marker sorts with the epoch that follows it.
func deriveSpans(events []uint64) []traceSpan {
	var spans []traceSpan
	var era uint64
	for _, e := range events {
		if e == resetMarker {
			era++
			spans = append(spans, traceSpan{epoch: era, proc: spanMarker, n: 1})
			continue
		}
		p := int(e >> 1 & 0x7f)
		if k := len(spans) - 1; k >= 0 && spans[k].proc == p && spans[k].epoch == era {
			spans[k].n++
		} else {
			spans = append(spans, traceSpan{epoch: era, proc: p, n: 1})
		}
	}
	return spans
}

// appendV2Events encodes one events block. Addresses delta-encode
// against the block's own first address only, so the block decodes with
// no context from its predecessors.
func appendV2Events(buf, scratch []byte, proc int, epoch uint64, events []uint64) (out, outScratch []byte) {
	payload := scratch[:0]
	nb := (len(events) + 7) / 8
	for i := 0; i < nb; i++ {
		payload = append(payload, 0)
	}
	for i, e := range events {
		if e&1 == 1 {
			payload[i/8] |= 1 << (i % 8)
		}
	}
	var prev uint64
	for i, e := range events {
		a := e >> 8
		if i == 0 {
			payload = binary.AppendUvarint(payload, a)
		} else {
			payload = binary.AppendVarint(payload, int64(a)-int64(prev))
		}
		prev = a
	}
	buf = append(buf, v2TagEvents, byte(proc))
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf, payload
}

// appendV2Footer encodes the index footer (everything between the end
// tag and the fixed trailer).
func appendV2Footer(buf []byte, firstBlockOff int64, m TraceMeta, blocks []v2Block) []byte {
	buf = binary.AppendUvarint(buf, 2)
	buf = binary.AppendUvarint(buf, uint64(firstBlockOff))
	nprocs := 0
	if m.Refs > 0 {
		nprocs = m.MaxProc + 1
	}
	buf = binary.AppendUvarint(buf, uint64(nprocs))
	buf = binary.AppendUvarint(buf, uint64(m.MaxAddr))
	buf = binary.AppendUvarint(buf, m.Refs)
	buf = binary.AppendUvarint(buf, m.Markers)
	for p := 0; p < nprocs; p++ {
		buf = binary.AppendUvarint(buf, m.ProcRefs[p])
	}
	buf = binary.AppendUvarint(buf, uint64(len(blocks)))
	var prevEpoch uint64
	for _, b := range blocks {
		if b.marker {
			buf = append(buf, v2TagMarker)
		} else {
			buf = append(buf, v2TagEvents, byte(b.proc))
		}
		buf = binary.AppendUvarint(buf, b.epoch-prevEpoch)
		prevEpoch = b.epoch
		if !b.marker {
			buf = binary.AppendUvarint(buf, uint64(b.events))
		}
		buf = binary.AppendUvarint(buf, uint64(b.size))
	}
	return buf
}

// WriteV2 serializes the trace in the columnar v2 container. Traces
// recorded through the batched path carry their (epoch, proc) run
// structure from the merge, so the blocks are emitted directly from the
// already-block-shaped sub-streams; otherwise the runs are derived by
// one scan. ReadTrace accepts both formats; a v2→v1→v2 round trip is
// byte-identical.
func (t *Trace) WriteV2(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	hdr := make([]byte, 0, 16+4*len(t.homes))
	hdr = binary.LittleEndian.AppendUint32(hdr, traceMagicV2)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(t.homeLineSize))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(t.homes)))
	for _, h := range t.homes {
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(h))
	}
	if _, err := bw.Write(hdr); err != nil {
		return n, err
	}
	n += int64(len(hdr))
	firstBlockOff := n

	spans := t.spans
	if spans == nil {
		spans = deriveSpans(t.events)
	}
	var blocks []v2Block
	var buf, scratch []byte
	pos := 0
	for _, sp := range spans {
		if sp.proc == spanMarker {
			buf = append(buf[:0], v2TagMarker)
			buf = binary.AppendUvarint(buf, sp.epoch)
			blocks = append(blocks, v2Block{marker: true, epoch: sp.epoch, events: 1, size: int64(len(buf))})
			if _, err := bw.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
			pos += sp.n
			continue
		}
		for done := 0; done < sp.n; {
			take := sp.n - done
			if take > v2BlockCap {
				take = v2BlockCap
			}
			buf, scratch = appendV2Events(buf[:0], scratch, sp.proc, sp.epoch, t.events[pos+done:pos+done+take])
			blocks = append(blocks, v2Block{proc: sp.proc, epoch: sp.epoch, events: take, size: int64(len(buf))})
			if _, err := bw.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
			done += take
		}
		pos += sp.n
	}
	if err := bw.WriteByte(v2TagEnd); err != nil {
		return n, err
	}
	n++

	footer := appendV2Footer(buf[:0], firstBlockOff, t.Meta(), blocks)
	if _, err := bw.Write(footer); err != nil {
		return n, err
	}
	n += int64(len(footer))
	trailer := binary.LittleEndian.AppendUint64(nil, uint64(len(footer)))
	trailer = binary.LittleEndian.AppendUint32(trailer, traceIndexMagic)
	if _, err := bw.Write(trailer); err != nil {
		return n, err
	}
	n += int64(len(trailer))
	return n, bw.Flush()
}

// decodeV2Payload decodes one events-block payload, appending the
// packed events to dst. The payload must be exactly consumed. Returns
// the grown slice and the block's largest address.
func decodeV2Payload(payload []byte, proc, count int, dst []uint64) ([]uint64, Addr, error) {
	nb := (count + 7) / 8
	if len(payload) < nb {
		return dst, 0, fmt.Errorf("memsys: corrupt trace: block payload %d bytes, write bitmap alone needs %d", len(payload), nb)
	}
	bitmap := payload[:nb]
	rest := payload[nb:]
	var addr uint64
	var maxA Addr
	for i := 0; i < count; i++ {
		if i == 0 {
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return dst, 0, fmt.Errorf("memsys: corrupt trace: block base address varint truncated or overlong")
			}
			rest = rest[n:]
			addr = v
		} else {
			d, n := binary.Varint(rest)
			if n <= 0 {
				return dst, 0, fmt.Errorf("memsys: corrupt trace: address delta varint truncated or overlong (event %d of %d)", i, count)
			}
			rest = rest[n:]
			addr = uint64(int64(addr) + d)
		}
		if addr > maxTraceAddr {
			return dst, 0, fmt.Errorf("memsys: corrupt trace: address %#x exceeds the 56-bit event encoding", addr)
		}
		e := addr<<8 | uint64(proc)<<1
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			e |= 1
		}
		dst = append(dst, e)
		if Addr(addr) > maxA {
			maxA = Addr(addr)
		}
	}
	if len(rest) != 0 {
		return dst, 0, fmt.Errorf("memsys: corrupt trace: block payload has %d bytes beyond its %d events", len(rest), count)
	}
	return dst, maxA, nil
}

// readUvarint reads one varint field from an untrusted stream,
// labelling truncation/overflow with the field name.
func readUvarint(s io.ByteReader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(s)
	if err != nil {
		return 0, fmt.Errorf("memsys: trace truncated reading %s: %w", what, err)
	}
	return v, nil
}

// readV2EventsHeader reads and validates the header fields of an events
// block (after the tag): proc, epoch, count, payloadLen. Shared by the
// sequential decoder and TraceFile's per-block decode.
func readV2EventsHeader(s io.ByteReader, prevEpoch uint64) (proc int, epoch uint64, count, payloadLen int, err error) {
	b, err := s.ReadByte()
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("memsys: trace truncated reading block processor: %w", err)
	}
	proc = int(b)
	if proc >= maxTraceProcs {
		return 0, 0, 0, 0, fmt.Errorf("memsys: corrupt trace: block processor %d out of range (0-%d)", proc, maxTraceProcs-1)
	}
	epoch, err = readUvarint(s, "block epoch")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if epoch < prevEpoch {
		return 0, 0, 0, 0, fmt.Errorf("memsys: corrupt trace: block epoch %d after epoch %d (must be nondecreasing)", epoch, prevEpoch)
	}
	c, err := readUvarint(s, "block event count")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if c == 0 || c > v2MaxBlockEvents {
		return 0, 0, 0, 0, fmt.Errorf("memsys: corrupt trace: block event count %d out of range (1-%d)", c, v2MaxBlockEvents)
	}
	count = int(c)
	pl, err := readUvarint(s, "block payload length")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if pl < uint64((count+7)/8+1) || pl > uint64(v2MaxPayload(count)) {
		return 0, 0, 0, 0, fmt.Errorf("memsys: corrupt trace: block payload length %d implausible for %d events", pl, count)
	}
	payloadLen = int(pl)
	return proc, epoch, count, payloadLen, nil
}

// v2Footer is the parsed index footer.
type v2Footer struct {
	firstBlockOff int64
	nprocs        int
	maxAddr       Addr
	refs, markers uint64
	procRefs      []uint64
	blocks        []v2Block
}

// parseV2Footer reads the footer from an untrusted stream. Counts are
// cross-validated (blocks against refs+markers) so a lying footer
// cannot demand allocations beyond what its own byte stream backs.
func parseV2Footer(s io.ByteReader) (v2Footer, error) {
	var f v2Footer
	version, err := readUvarint(s, "footer version")
	if err != nil {
		return f, err
	}
	if version != 2 {
		return f, fmt.Errorf("memsys: corrupt trace: unsupported footer version %d (want 2)", version)
	}
	off, err := readUvarint(s, "footer first-block offset")
	if err != nil {
		return f, err
	}
	f.firstBlockOff = int64(off)
	np, err := readUvarint(s, "footer processor count")
	if err != nil {
		return f, err
	}
	if np > maxTraceProcs {
		return f, fmt.Errorf("memsys: corrupt trace: footer processor count %d out of range (0-%d)", np, maxTraceProcs)
	}
	f.nprocs = int(np)
	ma, err := readUvarint(s, "footer max address")
	if err != nil {
		return f, err
	}
	if ma > maxTraceAddr {
		return f, fmt.Errorf("memsys: corrupt trace: footer max address %#x exceeds the 56-bit event encoding", ma)
	}
	f.maxAddr = Addr(ma)
	if f.refs, err = readUvarint(s, "footer reference count"); err != nil {
		return f, err
	}
	if f.markers, err = readUvarint(s, "footer marker count"); err != nil {
		return f, err
	}
	if f.nprocs > 0 {
		f.procRefs = make([]uint64, f.nprocs)
		var sum uint64
		for p := range f.procRefs {
			if f.procRefs[p], err = readUvarint(s, "footer per-processor reference count"); err != nil {
				return f, err
			}
			sum += f.procRefs[p]
		}
		if sum != f.refs {
			return f, fmt.Errorf("memsys: corrupt trace: footer per-processor counts sum to %d, reference count says %d", sum, f.refs)
		}
	} else if f.refs != 0 {
		return f, fmt.Errorf("memsys: corrupt trace: footer claims %d references but no processors", f.refs)
	}
	nb, err := readUvarint(s, "footer block count")
	if err != nil {
		return f, err
	}
	if nb > f.refs+f.markers {
		return f, fmt.Errorf("memsys: corrupt trace: footer block count %d exceeds %d events", nb, f.refs+f.markers)
	}
	var prevEpoch uint64
	var events, markers uint64
	for i := uint64(0); i < nb; i++ {
		tag, err := s.ReadByte()
		if err != nil {
			return f, fmt.Errorf("memsys: trace truncated reading footer block entry %d: %w", i, err)
		}
		var b v2Block
		switch tag {
		case v2TagEvents:
			pb, err := s.ReadByte()
			if err != nil {
				return f, fmt.Errorf("memsys: trace truncated reading footer block entry %d: %w", i, err)
			}
			b.proc = int(pb)
			if b.proc >= f.nprocs {
				return f, fmt.Errorf("memsys: corrupt trace: footer block %d names processor %d beyond count %d", i, b.proc, f.nprocs)
			}
		case v2TagMarker:
			b.marker = true
		default:
			return f, fmt.Errorf("memsys: corrupt trace: footer block %d has unknown tag %d", i, tag)
		}
		d, err := readUvarint(s, "footer block epoch delta")
		if err != nil {
			return f, err
		}
		b.epoch = prevEpoch + d
		prevEpoch = b.epoch
		if b.marker {
			b.events = 1
			markers++
		} else {
			c, err := readUvarint(s, "footer block event count")
			if err != nil {
				return f, err
			}
			if c == 0 || c > v2MaxBlockEvents {
				return f, fmt.Errorf("memsys: corrupt trace: footer block %d event count %d out of range (1-%d)", i, c, v2MaxBlockEvents)
			}
			b.events = int(c)
			events += c
		}
		sz, err := readUvarint(s, "footer block size")
		if err != nil {
			return f, err
		}
		b.size = int64(sz)
		min := int64(2)
		var max int64 = 1 + binary.MaxVarintLen64
		if !b.marker {
			min = 6
			max = v2MaxBlockSize(b.events)
		}
		if b.size < min || b.size > max {
			return f, fmt.Errorf("memsys: corrupt trace: footer block %d size %d implausible", i, b.size)
		}
		f.blocks = append(f.blocks, b)
	}
	if events != f.refs || markers != f.markers {
		return f, fmt.Errorf("memsys: corrupt trace: footer blocks hold %d references and %d markers, counts say %d and %d",
			events, markers, f.refs, f.markers)
	}
	return f, nil
}

// byteCounter counts bytes consumed from a buffered stream, so the
// sequential v2 decoder can check the footer's claimed block sizes
// against what it actually read.
type byteCounter struct {
	br *bufio.Reader
	n  int64
}

func (c *byteCounter) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *byteCounter) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

// readTraceV2 decodes the v2 body following the magic (sequential,
// whole-trace; see TraceFile for out-of-core streaming). The input is
// untrusted: every header field is bounds-checked before allocation,
// and the index footer must agree with the blocks actually decoded.
func readTraceV2(r io.Reader) (*Trace, error) {
	c := &byteCounter{br: bufio.NewReader(r), n: 4} // magic already consumed

	var fixed [12]byte
	if _, err := io.ReadFull(c, fixed[:]); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading header: %w", err)
	}
	lineSize := binary.LittleEndian.Uint32(fixed[0:4])
	if lineSize == 0 || lineSize > maxHomeLineSize {
		return nil, fmt.Errorf("memsys: corrupt trace: home line size %d out of range (1..%d)", lineSize, maxHomeLineSize)
	}
	nh := binary.LittleEndian.Uint64(fixed[4:12])
	homes, err := readChunked[int32](c, nh, "home map")
	if err != nil {
		return nil, err
	}
	firstBlockOff := c.n

	var events []uint64
	var spans []traceSpan
	var blocks []v2Block
	var payload []byte
	var procRefs [maxTraceProcs]uint64
	meta := TraceMeta{HomeLineSize: int(lineSize)}
	var prevEpoch uint64
	for {
		start := c.n
		tag, err := c.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("memsys: trace truncated reading block tag: %w", err)
		}
		if tag == v2TagEnd {
			break
		}
		switch tag {
		case v2TagEvents:
			proc, epoch, count, payloadLen, err := readV2EventsHeader(c, prevEpoch)
			if err != nil {
				return nil, err
			}
			prevEpoch = epoch
			if cap(payload) < payloadLen {
				payload = make([]byte, payloadLen)
			}
			buf := payload[:payloadLen]
			if _, err := io.ReadFull(c, buf); err != nil {
				return nil, fmt.Errorf("memsys: trace truncated reading block payload (%d bytes wanted): %w", payloadLen, err)
			}
			var maxA Addr
			events, maxA, err = decodeV2Payload(buf, proc, count, events)
			if err != nil {
				return nil, err
			}
			if maxA > meta.MaxAddr {
				meta.MaxAddr = maxA
			}
			if proc > meta.MaxProc {
				meta.MaxProc = proc
			}
			meta.Refs += uint64(count)
			procRefs[proc] += uint64(count)
			if k := len(spans) - 1; k >= 0 && spans[k].proc == proc && spans[k].epoch == epoch {
				spans[k].n += count
			} else {
				spans = append(spans, traceSpan{epoch: epoch, proc: proc, n: count})
			}
			blocks = append(blocks, v2Block{proc: proc, epoch: epoch, events: count, size: c.n - start})
		case v2TagMarker:
			epoch, err := readUvarint(c, "marker epoch")
			if err != nil {
				return nil, err
			}
			if epoch < prevEpoch {
				return nil, fmt.Errorf("memsys: corrupt trace: marker epoch %d after epoch %d (must be nondecreasing)", epoch, prevEpoch)
			}
			prevEpoch = epoch
			events = append(events, resetMarker)
			meta.Markers++
			spans = append(spans, traceSpan{epoch: epoch, proc: spanMarker, n: 1})
			blocks = append(blocks, v2Block{marker: true, epoch: epoch, events: 1, size: c.n - start})
		default:
			return nil, fmt.Errorf("memsys: corrupt trace: unknown block tag %d", tag)
		}
	}

	f, err := parseV2Footer(c)
	if err != nil {
		return nil, err
	}
	footerLen := c.n - firstBlockOff
	for _, b := range blocks {
		footerLen -= b.size
	}
	footerLen-- // end tag
	if f.firstBlockOff != firstBlockOff {
		return nil, fmt.Errorf("memsys: corrupt trace: index footer says blocks start at %d, header ends at %d", f.firstBlockOff, firstBlockOff)
	}
	wantProcs := 0
	if meta.Refs > 0 {
		wantProcs = meta.MaxProc + 1
	}
	if f.nprocs != wantProcs || f.maxAddr != meta.MaxAddr || f.refs != meta.Refs || f.markers != meta.Markers {
		return nil, fmt.Errorf("memsys: corrupt trace: index footer summary (procs=%d maxAddr=%#x refs=%d markers=%d) disagrees with blocks (procs=%d maxAddr=%#x refs=%d markers=%d)",
			f.nprocs, uint64(f.maxAddr), f.refs, f.markers, wantProcs, uint64(meta.MaxAddr), meta.Refs, meta.Markers)
	}
	for p := 0; p < f.nprocs; p++ {
		if f.procRefs[p] != procRefs[p] {
			return nil, fmt.Errorf("memsys: corrupt trace: index footer counts %d references for processor %d, blocks hold %d", f.procRefs[p], p, procRefs[p])
		}
	}
	if len(f.blocks) != len(blocks) {
		return nil, fmt.Errorf("memsys: corrupt trace: index footer lists %d blocks, file holds %d", len(f.blocks), len(blocks))
	}
	for i, b := range blocks {
		if f.blocks[i] != b {
			return nil, fmt.Errorf("memsys: corrupt trace: index footer entry %d %+v disagrees with block %+v", i, f.blocks[i], b)
		}
	}
	var trailer [12]byte
	if _, err := io.ReadFull(c, trailer[:]); err != nil {
		return nil, fmt.Errorf("memsys: trace truncated reading trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(trailer[0:8]); got != uint64(footerLen) {
		return nil, fmt.Errorf("memsys: corrupt trace: trailer footer length %d, footer occupies %d bytes", got, footerLen)
	}
	if got := binary.LittleEndian.Uint32(trailer[8:12]); got != traceIndexMagic {
		return nil, fmt.Errorf("memsys: corrupt trace: bad index magic %#x (want %#x)", got, traceIndexMagic)
	}

	if meta.Refs > 0 {
		meta.ProcRefs = append([]uint64(nil), procRefs[:meta.MaxProc+1]...)
	}
	meta.MinProcs = minProcs(meta.MaxProc, homes)
	tr := &Trace{homeLineSize: int(lineSize), homes: homes, events: events, spans: spans}
	tr.metaOnce.Do(func() { tr.meta = meta })
	return tr, nil
}
