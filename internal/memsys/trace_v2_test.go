package memsys

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
)

// writeV2Bytes serializes tr as a v2 container.
func writeV2Bytes(t testing.TB, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := tr.WriteV2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteV2 reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// openV2 wraps v2 bytes in a TraceFile.
func openV2(t testing.TB, data []byte) *TraceFile {
	t.Helper()
	tf, err := NewTraceFile(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	return tf
}

// buildBatchedTrace builds a trace through the lock-free batched path —
// the shape real recordings have: long per-processor epoch runs with
// mostly-sequential addresses.
func buildBatchedTrace(seed int64, procs, events, epochs int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	rec := NewRecorder(64)
	perProc := events / epochs / procs
	for e := 0; e < epochs; e++ {
		if e > 0 {
			rec.RecordResetAt(uint64(e))
		}
		for p := 0; p < procs; p++ {
			batch := make([]uint64, 0, perProc)
			addr := uint64(p << 20)
			for i := 0; i < perProc; i++ {
				addr += uint64(rng.Intn(256)) &^ 7
				batch = append(batch, addr<<8|uint64(p)<<1|uint64(rng.Intn(2)))
			}
			rec.RecordBatch(p, uint64(e), batch)
		}
	}
	homes := make([]int32, 64)
	for i := range homes {
		homes[i] = int32(i % procs)
	}
	return rec.Finish(homes)
}

// wantSpans is the span structure a decoder must reconstruct: the
// recorded spans when the batched path supplied them, else the derived
// runs of the flat stream.
func wantSpans(tr *Trace) []traceSpan {
	if tr.spans != nil {
		return tr.spans
	}
	return deriveSpans(tr.events)
}

// TestWriteV2RoundTrip: encode → decode must reproduce the event
// stream, home map, span structure and cached meta exactly — for both
// the batched-path trace (spans recorded) and the serialized-path trace
// (spans derived).
func TestWriteV2RoundTrip(t *testing.T) {
	traces := []*Trace{
		buildBatchedTrace(11, 4, 24000, 3), // runs > v2BlockCap: blocks split
		buildSharingTrace(11, 4, 9000, true),
		buildSharingTrace(12, 4, 9000, false),
	}
	for i, tr := range traces {
		back, err := ReadTrace(bytes.NewReader(writeV2Bytes(t, tr)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.events, back.events) {
			t.Fatalf("trace %d: v2 round trip changed the event stream", i)
		}
		if !reflect.DeepEqual(tr.homes, back.homes) || tr.homeLineSize != back.homeLineSize {
			t.Fatalf("trace %d: v2 round trip changed the home map", i)
		}
		if !reflect.DeepEqual(tr.Meta(), back.Meta()) {
			t.Fatalf("trace %d: v2 round trip changed the meta:\n got %+v\nwant %+v", i, back.Meta(), tr.Meta())
		}
		if !reflect.DeepEqual(wantSpans(tr), back.spans) {
			t.Fatalf("trace %d: v2 round trip changed the span structure", i)
		}
	}
}

// TestWriteV2RoundTripProperty extends the round trip over random
// traces, including the flat path (spans derived, not recorded) and a
// second v2 generation: v2 → v1 → v2 must be byte-identical.
func TestWriteV2RoundTripProperty(t *testing.T) {
	f := func(seed int64, resets bool) bool {
		tr := buildSharingTrace(seed, 4, 3000, resets)
		v2 := writeV2Bytes(t, tr)
		back, err := ReadTrace(bytes.NewReader(v2))
		if err != nil {
			t.Log(err)
			return false
		}
		if !reflect.DeepEqual(tr.events, back.events) {
			return false
		}
		// Strip to a flat stream (v1 bytes) and regenerate: the derived
		// spans must reproduce the container byte for byte.
		var v1 bytes.Buffer
		if _, err := back.WriteTo(&v1); err != nil {
			t.Log(err)
			return false
		}
		flat, err := ReadTrace(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Log(err)
			return false
		}
		return bytes.Equal(writeV2Bytes(t, flat), v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestV2CompressesBelowHalfOfV1: on a reference stream with the
// recorder's per-processor run structure, the columnar container must
// be at least 2x smaller than the flat 8-bytes-per-event format.
func TestV2CompressesBelowHalfOfV1(t *testing.T) {
	tr := buildBatchedTrace(3, 8, 60000, 3)
	var v1 bytes.Buffer
	if _, err := tr.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	v2 := writeV2Bytes(t, tr)
	if 2*len(v2) > v1.Len() {
		t.Fatalf("v2 container %d bytes, v1 %d: less than 2x smaller", len(v2), v1.Len())
	}
}

// TestTraceFileMatchesInMemory: every consumer — ReplayMulti,
// StackDistances, WriteTo — must produce identical results whether the
// source is the in-memory Trace or the out-of-core TraceFile.
func TestTraceFileMatchesInMemory(t *testing.T) {
	tr := buildSharingTrace(5, 4, 9000, true)
	tf := openV2(t, writeV2Bytes(t, tr))

	if !reflect.DeepEqual(tf.Meta(), tr.Meta()) {
		t.Fatalf("TraceFile meta %+v, in-memory %+v", tf.Meta(), tr.Meta())
	}
	if tf.Len() != tr.Len() {
		t.Fatalf("TraceFile length %d, in-memory %d", tf.Len(), tr.Len())
	}

	cfgs := []Config{
		{Procs: 4, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8},
		{Procs: 4, CacheSize: 4096, Assoc: FullyAssoc, LineSize: 64, OverheadBytes: 8},
		{Procs: 4, CacheSize: 8192, Assoc: 4, LineSize: 32, OverheadBytes: 8},
	}
	memStats, err := ReplayMulti(tr, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	fileStats, err := ReplayMulti(tf, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memStats, fileStats) {
		t.Fatal("streaming ReplayMulti diverges from in-memory")
	}

	memSD, err := StackDistances(tr, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fileSD, err := StackDistances(tf, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memSD, fileSD) {
		t.Fatal("streaming StackDistances diverges from in-memory")
	}

	var memV1, fileV1 bytes.Buffer
	if _, err := tr.WriteTo(&memV1); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.WriteTo(&fileV1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memV1.Bytes(), fileV1.Bytes()) {
		t.Fatal("TraceFile.WriteTo diverges from the in-memory v1 bytes")
	}
}

// TestTraceFileDecodeBlockIndependence: decoding every block by index —
// no sequential pass — must reassemble the exact event stream, and the
// index must agree with the blocks.
func TestTraceFileDecodeBlockIndependence(t *testing.T) {
	tr := buildSharingTrace(9, 4, 9000, true)
	tf := openV2(t, writeV2Bytes(t, tr))

	index := tf.Index()
	var events []uint64
	// Decode in reverse order to prove independence from the prefix.
	rebuilt := make([][]uint64, len(index))
	for i := len(index) - 1; i >= 0; i-- {
		ev, err := tf.DecodeBlock(i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(ev) != index[i].Events {
			t.Fatalf("block %d decoded %d events, index says %d", i, len(ev), index[i].Events)
		}
		rebuilt[i] = ev
	}
	for _, ev := range rebuilt {
		events = append(events, ev...)
	}
	if !reflect.DeepEqual(events, tr.events) {
		t.Fatal("block-wise decode does not reassemble the stream")
	}

	if _, err := tf.DecodeBlock(len(index)); err == nil {
		t.Fatal("out-of-range block index accepted")
	}
	if _, err := tf.DecodeBlock(-1); err == nil {
		t.Fatal("negative block index accepted")
	}
}

// TestTraceFileWindow: a (proc, epoch) window must hold exactly that
// processor's references from those epochs, in stream order.
func TestTraceFileWindow(t *testing.T) {
	rec := NewRecorder(64)
	// Epoch 0: procs 0 and 1; epoch 1 (after the marker): procs 0 and 2.
	rec.Record(0, 0x100, false)
	rec.Record(1, 0x200, true)
	rec.Record(0, 0x140, false)
	rec.RecordReset()
	rec.Record(2, 0x300, false)
	rec.Record(0, 0x180, true)
	tr := rec.Finish([]int32{0, 1, 2, 3})
	tf := openV2(t, writeV2Bytes(t, tr))

	cases := []struct {
		proc      int
		lo, hi    uint64
		wantAddrs []Addr
	}{
		{proc: 0, lo: 0, hi: ^uint64(0), wantAddrs: []Addr{0x100, 0x140, 0x180}},
		{proc: 0, lo: 0, hi: 0, wantAddrs: []Addr{0x100, 0x140}},
		{proc: 0, lo: 1, hi: 1, wantAddrs: []Addr{0x180}},
		{proc: 1, lo: 0, hi: ^uint64(0), wantAddrs: []Addr{0x200}},
		{proc: 2, lo: 0, hi: 0, wantAddrs: nil},
		{proc: 3, lo: 0, hi: ^uint64(0), wantAddrs: nil},
	}
	for _, tc := range cases {
		w, err := tf.Window(tc.proc, tc.lo, tc.hi)
		if err != nil {
			t.Fatalf("Window(%d, %d, %d): %v", tc.proc, tc.lo, tc.hi, err)
		}
		var got []Addr
		for _, e := range w.events {
			if e == resetMarker {
				t.Fatalf("Window(%d, %d, %d) contains a reset marker", tc.proc, tc.lo, tc.hi)
			}
			if p := int(e >> 1 & 0x7f); p != tc.proc {
				t.Fatalf("Window(%d, %d, %d) contains processor %d", tc.proc, tc.lo, tc.hi, p)
			}
			got = append(got, Addr(e>>8))
		}
		if !reflect.DeepEqual(got, tc.wantAddrs) {
			t.Errorf("Window(%d, %d, %d) = %v, want %v", tc.proc, tc.lo, tc.hi, got, tc.wantAddrs)
		}
	}
}

// TestStreamingReplayPeakAllocation pins the out-of-core promise: total
// heap allocation during a TraceFile replay must be a small fraction of
// the trace's own in-memory footprint — O(block buffer), not O(trace).
func TestStreamingReplayPeakAllocation(t *testing.T) {
	// 400k events in recorder-shaped per-processor runs over a bounded
	// address range (64 KB per processor), so the replay's O(address
	// space) tables stay far below the trace's own ~3.2 MB footprint and
	// any O(trace) allocation stands out.
	rng := rand.New(rand.NewSource(42))
	rec := NewRecorder(64)
	const events = 400_000
	const procs, epochs = 4, 4
	perProc := events / epochs / procs
	for e := 0; e < epochs; e++ {
		if e > 0 {
			rec.RecordResetAt(uint64(e))
		}
		for p := 0; p < procs; p++ {
			batch := make([]uint64, 0, perProc)
			for i := 0; i < perProc; i++ {
				addr := uint64(p)<<16 | uint64(rng.Intn(1<<16))&^7
				batch = append(batch, addr<<8|uint64(p)<<1|uint64(rng.Intn(2)))
			}
			rec.RecordBatch(p, uint64(e), batch)
		}
	}
	tr := rec.Finish(make([]int32, 64))
	data := writeV2Bytes(t, tr)
	tf := openV2(t, data)
	cfg := []Config{{Procs: 4, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8}}

	// Warm up once (lazy pools, machine construction paths), then
	// measure the cumulative allocation of a full streaming replay.
	if _, err := ReplayMulti(tf, cfg); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReplayMulti(tf, cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	allocated := after.TotalAlloc - before.TotalAlloc
	traceBytes := uint64(events * 8)
	if allocated > traceBytes/4 {
		t.Fatalf("streaming replay allocated %d bytes for a %d-byte trace; not O(block buffer)", allocated, traceBytes)
	}

	// The decode-ahead pipeline must not change the scaling: replaying a
	// trace twice as long (same address range, same machine) allocates
	// essentially the same amount — the buffer pool is bounded by the
	// decode-ahead depth, not by trace length.
	rec2 := NewRecorder(64)
	for e := 0; e < epochs; e++ {
		if e > 0 {
			rec2.RecordResetAt(uint64(e))
		}
		for p := 0; p < procs; p++ {
			batch := make([]uint64, 0, 2*perProc)
			for i := 0; i < 2*perProc; i++ {
				addr := uint64(p)<<16 | uint64(rng.Intn(1<<16))&^7
				batch = append(batch, addr<<8|uint64(p)<<1|uint64(rng.Intn(2)))
			}
			rec2.RecordBatch(p, uint64(e), batch)
		}
	}
	tf2 := openV2(t, writeV2Bytes(t, rec2.Finish(make([]int32, 64))))
	if _, err := ReplayMulti(tf2, cfg); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReplayMulti(tf2, cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocated2 := after.TotalAlloc - before.TotalAlloc
	if allocated2 > allocated+allocated/2 {
		t.Fatalf("doubling the trace grew replay allocation %d -> %d bytes; decode buffers not bounded by depth", allocated, allocated2)
	}
}

// TestStreamingDecodeAheadByteIdentical: the decode-ahead pipeline
// behind TraceFile.blocks must deliver the exact event sequence of a
// serial block-by-block decode — same events, same order, markers
// included — and propagate an early consumer exit without deadlock.
func TestStreamingDecodeAheadByteIdentical(t *testing.T) {
	tr := buildSharingTrace(11, 4, 50000, true)
	tf := openV2(t, writeV2Bytes(t, tr))
	if len(tf.index) <= decodeAhead {
		t.Fatalf("trace has %d blocks; need more than the decode-ahead depth %d", len(tf.index), decodeAhead)
	}
	var want []uint64
	for i := range tf.index {
		evs, err := tf.DecodeBlock(i)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, evs...)
	}
	var got []uint64
	if err := tf.blocks(func(events []uint64) error {
		got = append(got, events...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pipeline delivered %d events, serial decode %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: pipeline %#x != serial %#x", i, got[i], want[i])
		}
	}

	// Early exit: a yield error must surface unchanged, leaving no
	// goroutine blocked (the race detector and -timeout would catch a
	// stuck decoder in CI).
	sentinel := errors.New("stop after first block")
	calls := 0
	if err := tf.blocks(func([]uint64) error {
		calls++
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("yield error %v surfaced as %v", sentinel, err)
	}
	if calls != 1 {
		t.Fatalf("yield called %d times after erroring on the first", calls)
	}
}
