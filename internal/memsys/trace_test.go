package memsys

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildTrace(seed int64, procs, events int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	rec := NewRecorder(64)
	for i := 0; i < events; i++ {
		rec.Record(rng.Intn(procs), Addr(rng.Intn(4096))&^7, rng.Intn(3) == 0)
	}
	homes := make([]int32, 64)
	for i := range homes {
		homes[i] = int32(i % procs)
	}
	return rec.Finish(homes)
}

func TestTraceRoundTripSerialization(t *testing.T) {
	tr := buildTrace(1, 4, 500)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.homeLineSize != tr.homeLineSize {
		t.Fatalf("round trip mismatch: %d/%d events", back.Len(), tr.Len())
	}
	for i := range tr.events {
		if tr.events[i] != back.events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	for i := range tr.homes {
		if tr.homes[i] != back.homes[i] {
			t.Fatalf("home %d differs", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Property: replaying a trace through a memory system produces exactly the
// same statistics as feeding the same accesses directly.
func TestReplayEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		const procs = 4
		rng := rand.New(rand.NewSource(seed))
		rec := NewRecorder(64)
		homes := make([]int32, 64)
		for i := range homes {
			homes[i] = int32(i % procs)
		}
		cfg := Config{Procs: procs, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8}
		direct, err := New(cfg, func(line uint64) int {
			if line < uint64(len(homes)) {
				return int(homes[line])
			}
			return 0
		})
		if err != nil {
			return false
		}
		for i := 0; i < 1200; i++ {
			p := rng.Intn(procs)
			a := Addr(rng.Intn(64*48)) &^ 7
			w := rng.Intn(3) == 0
			direct.Access(p, a, w)
			rec.Record(p, a, w)
			if i == 600 {
				direct.ResetStats()
				rec.RecordReset()
			}
		}
		tr := rec.Finish(homes)
		replayed, err := Replay(tr, cfg)
		if err != nil {
			return false
		}
		want := direct.Stats()
		if want.Traffic != replayed.Traffic {
			return false
		}
		for p := range want.Procs {
			if want.Procs[p] != replayed.Procs[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fused multi-configuration replay must be deep-equal,
// configuration by configuration, to independent per-config replays —
// across associativities, cache sizes and line sizes, with epoch resets
// and invalidation-heavy sharing in the stream.
func TestReplayMultiMatchesReplayProperty(t *testing.T) {
	cfgs := []Config{
		{Procs: 4, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8},
		{Procs: 4, CacheSize: 2048, Assoc: 1, LineSize: 64, OverheadBytes: 8},
		{Procs: 4, CacheSize: 4096, Assoc: FullyAssoc, LineSize: 64, OverheadBytes: 8},
		{Procs: 4, CacheSize: 1024, Assoc: 4, LineSize: 16, OverheadBytes: 8},
		{Procs: 4, CacheSize: 8192, Assoc: 2, LineSize: 256, OverheadBytes: 8},
	}
	f := func(seed int64, withResets bool) bool {
		tr := buildSharingTrace(seed, 4, 2000, withResets)
		multi, err := ReplayMulti(tr, cfgs)
		if err != nil {
			t.Log(err)
			return false
		}
		for i, cfg := range cfgs {
			single, err := Replay(tr, cfg)
			if err != nil {
				t.Log(err)
				return false
			}
			if !reflect.DeepEqual(multi[i], single) {
				t.Logf("seed=%d cfg=%d: fused replay diverges:\nmulti:  %+v\nsingle: %+v", seed, i, multi[i], single)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMultiEmptyAndInvalid(t *testing.T) {
	tr := buildTrace(2, 4, 200)
	if out, err := ReplayMulti(tr, nil); err != nil || out != nil {
		t.Fatalf("empty config list: %v, %v", out, err)
	}
	_, err := ReplayMulti(tr, []Config{
		{Procs: 4, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8},
		{Procs: 2, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8},
	})
	if err == nil {
		t.Fatal("undersized machine accepted in fused sweep")
	}
}

func TestReplayAcrossLineSizes(t *testing.T) {
	tr := buildTrace(7, 4, 2000)
	var prevRefs uint64
	for _, ls := range []int{16, 64, 256} {
		st, err := Replay(tr, Config{Procs: 4, CacheSize: 4096, Assoc: 2, LineSize: ls, OverheadBytes: 8})
		if err != nil {
			t.Fatal(err)
		}
		refs := st.Aggregate().Refs()
		if prevRefs != 0 && refs != prevRefs {
			t.Fatalf("reference count changed across line sizes: %d vs %d", refs, prevRefs)
		}
		prevRefs = refs
	}
}

func TestReplayRejectsTooFewProcs(t *testing.T) {
	tr := buildTrace(3, 8, 100)
	if _, err := Replay(tr, Config{Procs: 2, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8}); err == nil {
		t.Fatal("trace with 8 processors replayed on 2")
	}
}

func TestTraceMaxProcSkipsMarkers(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(3, 0, false)
	rec.RecordReset()
	tr := rec.Finish(nil)
	if got := tr.MaxProc(); got != 3 {
		t.Fatalf("MaxProc=%d, want 3", got)
	}
}

func TestRecorderRejectsHugeProcIDs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for proc 127")
		}
	}()
	NewRecorder(64).Record(127, 0, false)
}
