package memsys

import "fmt"

// EpochWindow returns a TraceSource view of src restricted to the
// epoch range [lo, hi] (inclusive), all processors. A streaming
// TraceFile view selects blocks through the index footer, so
// out-of-range blocks are never read or decoded — a sub-window replay
// costs I/O proportional to the window, not the trace. An in-memory
// Trace view selects event ranges by span (or, for traces recorded
// through the single-event path, by counting reset markers, which
// define the epochs the v2 writer would stamp). Reset markers are not
// part of the view: the window is one measurement era, like
// TraceFile.Window.
func EpochWindow(src TraceSource, lo, hi uint64) (TraceSource, error) {
	if lo > hi {
		return nil, fmt.Errorf("memsys: epoch window [%d, %d] is empty", lo, hi)
	}
	switch s := src.(type) {
	case *TraceFile:
		w := &windowedFile{tf: s, lo: lo, hi: hi}
		m := TraceMeta{HomeLineSize: s.homeLineSize, MaxAddr: s.meta.MaxAddr}
		var procRefs [maxTraceProcs + 1]uint64
		for i := range s.index {
			info := s.index[i]
			if info.Marker || info.Epoch < lo || info.Epoch > hi {
				continue
			}
			m.Refs += uint64(info.Events)
			procRefs[info.Proc] += uint64(info.Events)
			if info.Proc > m.MaxProc {
				m.MaxProc = info.Proc
			}
		}
		if m.Refs > 0 {
			m.ProcRefs = append([]uint64(nil), procRefs[:m.MaxProc+1]...)
		}
		m.MinProcs = minProcs(m.MaxProc, s.homes)
		w.meta = m
		return w, nil
	case *Trace:
		w := &windowedTrace{tr: s, ranges: s.epochRanges(lo, hi)}
		m := TraceMeta{HomeLineSize: s.homeLineSize}
		var procRefs [maxTraceProcs + 1]uint64
		for _, r := range w.ranges {
			for _, e := range s.events[r[0]:r[1]] {
				m.Refs++
				p := int(e >> 1 & 0x7f)
				procRefs[p]++
				if p > m.MaxProc {
					m.MaxProc = p
				}
				if a := Addr(e >> 8); a > m.MaxAddr {
					m.MaxAddr = a
				}
			}
		}
		if m.Refs > 0 {
			m.ProcRefs = append([]uint64(nil), procRefs[:m.MaxProc+1]...)
		}
		m.MinProcs = minProcs(m.MaxProc, s.homes)
		w.meta = m
		return w, nil
	}
	return nil, fmt.Errorf("memsys: epoch windows need a Trace or TraceFile source, got %T", src)
}

// windowedFile is an epoch-range view of a v2 container: Meta comes
// from the index footer, blocks from decoding only the in-range ones.
type windowedFile struct {
	tf     *TraceFile
	lo, hi uint64
	meta   TraceMeta
}

func (w *windowedFile) Meta() TraceMeta            { return w.meta }
func (w *windowedFile) HomeFn(lineSize int) HomeFn { return w.tf.HomeFn(lineSize) }

func (w *windowedFile) blocks(yield func(events []uint64) error) error {
	var raw []byte
	var events []uint64
	for i := range w.tf.index {
		info := w.tf.index[i]
		if info.Marker || info.Epoch < w.lo || info.Epoch > w.hi {
			continue
		}
		var err error
		events, raw, err = w.tf.decodeBlockInto(i, raw, events[:0])
		if err != nil {
			return err
		}
		if err := yield(events); err != nil {
			return err
		}
	}
	return nil
}

// windowedTrace is an epoch-range view of an in-memory trace: a list
// of marker-free event index ranges in stream order.
type windowedTrace struct {
	tr     *Trace
	ranges [][2]int
	meta   TraceMeta
}

func (w *windowedTrace) Meta() TraceMeta            { return w.meta }
func (w *windowedTrace) HomeFn(lineSize int) HomeFn { return w.tr.HomeFn(lineSize) }

func (w *windowedTrace) blocks(yield func(events []uint64) error) error {
	for _, r := range w.ranges {
		for lo := r[0]; lo < r[1]; lo += replayBlockSize {
			hi := lo + replayBlockSize
			if hi > r[1] {
				hi = r[1]
			}
			if err := yield(w.tr.events[lo:hi]); err != nil {
				return err
			}
		}
	}
	return nil
}

// epochRanges returns the maximal marker-free event index ranges of
// epochs [lo, hi], in stream order: by span when the run structure is
// known, else by the reset-marker eras a span scan would discover.
func (t *Trace) epochRanges(lo, hi uint64) [][2]int {
	var out [][2]int
	add := func(a, b int) {
		if a >= b {
			return
		}
		if k := len(out) - 1; k >= 0 && out[k][1] == a {
			out[k][1] = b
			return
		}
		out = append(out, [2]int{a, b})
	}
	if t.spans != nil {
		pos := 0
		for _, sp := range t.spans {
			if sp.proc != spanMarker && sp.epoch >= lo && sp.epoch <= hi {
				add(pos, pos+sp.n)
			}
			pos += sp.n
		}
		return out
	}
	epoch, start := uint64(0), 0
	for i, e := range t.events {
		if e != resetMarker {
			continue
		}
		if epoch >= lo && epoch <= hi {
			add(start, i)
		}
		epoch++
		start = i + 1
	}
	if epoch >= lo && epoch <= hi {
		add(start, len(t.events))
	}
	return out
}
