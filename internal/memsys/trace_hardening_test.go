package memsys

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// hardeningTrace builds a small valid trace and its serialized bytes.
func hardeningTrace(t testing.TB) (*Trace, []byte) {
	t.Helper()
	rec := NewRecorder(64)
	rec.Record(0, 0x1000, false)
	rec.Record(1, 0x1040, true)
	rec.RecordReset()
	rec.Record(2, 0x2000, false)
	tr := rec.Finish([]int32{0, 1, 2, 3})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

func TestReadTraceCorruptInputs(t *testing.T) {
	_, good := hardeningTrace(t)

	le := binary.LittleEndian
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name string
		data []byte
		want string // substring expected in the error
	}{
		{"empty", nil, "magic"},
		{"short magic", good[:2], "magic"},
		{"bad magic", corrupt(func(b []byte) []byte {
			le.PutUint32(b, 0xdeadbeef)
			return b
		}), "bad trace magic"},
		{"missing line size", good[:4], "home line size"},
		{"zero line size", corrupt(func(b []byte) []byte {
			le.PutUint32(b[4:], 0)
			return b
		}), "out of range"},
		{"huge line size", corrupt(func(b []byte) []byte {
			le.PutUint32(b[4:], 1<<30)
			return b
		}), "out of range"},
		{"missing home count", good[:8], "home map count"},
		{"home count larger than file", corrupt(func(b []byte) []byte {
			// Claims ~128 TiB of home entries; must error, not allocate.
			le.PutUint64(b[8:], 1<<45)
			return b
		}), "truncated reading home map"},
		{"truncated homes", good[:8+8+4], "home map"},
		// The event-count field sits 8 (count) + 4×8 (events) bytes from
		// the end of a valid file.
		{"missing event count", good[:len(good)-8-4*8], "event count"},
		{"event count larger than file", corrupt(func(b []byte) []byte {
			le.PutUint64(b[len(b)-8-4*8:], 1<<45)
			return b
		}), "truncated reading events"},
		{"truncated events", good[:len(good)-4], "events"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadTrace accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// The pristine bytes must still round-trip.
	tr, err := ReadTrace(bytes.NewReader(good))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if tr.Len() != 4 || tr.homeLineSize != 64 || len(tr.homes) != 4 {
		t.Fatalf("round-trip mismatch: len=%d lineSize=%d homes=%d", tr.Len(), tr.homeLineSize, len(tr.homes))
	}
}

// FuzzReadTrace throws arbitrary bytes at the decoder: it must return a
// value or an error, never panic or balloon memory, and any trace it
// accepts must re-serialize to semantically identical bytes.
func FuzzReadTrace(f *testing.F) {
	_, good := hardeningTrace(f)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte{0x32, 0x4c, 0x50, 0x53}) // magic alone
	truncCount := append([]byte(nil), good[:8]...)
	truncCount = binary.LittleEndian.AppendUint64(truncCount, 1<<40)
	f.Add(truncCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, werr := tr.WriteTo(&buf); werr != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", werr)
		}
		tr2, rerr := ReadTrace(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("re-serialized trace rejected: %v", rerr)
		}
		if tr2.Len() != tr.Len() || tr2.homeLineSize != tr.homeLineSize || len(tr2.homes) != len(tr.homes) {
			t.Fatal("round-trip changed the trace shape")
		}
	})
}
