package memsys

import (
	"fmt"
	"math/bits"
	"sort"
)

// This file implements a Mattson-style LRU stack-distance simulation of a
// recorded trace: one pass produces exact miss counts for EVERY
// fully-associative cache size simultaneously, collapsing the
// fully-associative half of a Figure-3 working-set sweep from one O(N)
// replay per cache size to a single O(N log M) pass.
//
// The classic inclusion argument: an LRU stack orders each processor's
// resident lines by recency, and a fully-associative LRU cache of
// capacity C holds exactly the top C stack entries. A re-reference whose
// line sits at depth d (d lines are more recent) therefore hits iff
// d < C — so a per-depth histogram answers every capacity at once.
//
// Coherence folds in exactly because invalidations are capacity-
// independent under the Illinois (MESI) protocol: after ANY write the
// writer is the sole holder — a write hit on Modified/Exclusive has no
// other holders to begin with, a write hit on Shared upgrades and
// invalidates every other sharer, and a write miss invalidates the owner
// and all sharers during the fill. A write by q thus removes the line
// from every other processor's stack no matter the cache size, and a
// subsequent re-reference by an invalidated processor misses at every
// capacity — matching Replay, where that reference misses whether the
// copy was invalidated (sharing miss) or already evicted (capacity
// miss). Reads never remove lines: a read miss merely downgrades a dirty
// owner to Shared, keeping it resident.
//
// Deletions need one refinement to keep the prefix invariant exact: an
// invalidated entry leaves a HOLE at its stack position rather than
// closing the gap. A capacity-C cache that held the line now runs one
// slot short of C, which is precisely what a hole inside its top C slots
// encodes: cache-C contents are the real entries among the top C slots.
// Stack depth therefore counts holes as well as real entries, and the
// invariant is maintained by two hole rules, each checkable prefix by
// prefix against the per-cache insert/evict semantics:
//
//   - A new line (cold or invalidated copy) enters every cache; pushing
//     it on the stack consumes the topmost hole. Caches whose top-C
//     contained that hole (or one above it) were short a slot and insert
//     without evicting; full caches have all their holes deeper and
//     evict their bottom entry by the shift, as usual.
//   - A re-reference at depth d moves to the front; if some hole lies
//     above the line, the topmost hole migrates down to the line's old
//     slot (caches that missed fill their free slot; caches that hit
//     keep contents — and their hole — unchanged). With no hole above,
//     the old slot closes, the classic Mattson transformation.
//
// Total miss counts are then exact for every capacity; only the
// cold/sharing/capacity decomposition is capacity-dependent, and the
// Figure-3 curves need only totals.

// StackProfile is the result of one stack-distance pass: per-processor
// reference counts and distance histograms from which the miss count of
// a fully-associative LRU cache of any profiled size follows in O(1) per
// processor. Query with Misses, ProcMisses or MissRate.
type StackProfile struct {
	lineSize int
	maxLines int // largest answerable capacity, in lines
	procs    []stackCounts
}

// stackCounts accumulates one processor's view of the stream.
type stackCounts struct {
	reads, writes uint64
	cold          uint64 // first-touch references: miss at every capacity
	coherence     uint64 // invalidated-copy re-fetches: miss at every capacity
	// hist[d] counts re-references that found their line at stack depth d
	// (d still-resident lines touched more recently): hits in any cache
	// of more than d lines. hist[maxLines] aggregates depths ≥ maxLines,
	// which miss at every answerable capacity.
	hist []uint64
}

// fenwick is a binary indexed tree over access-slot indices, counting
// which slots currently mark a stack-resident line. It gives O(log n)
// depth queries under the arbitrary deletions coherence causes.
type fenwick []int32

func (f fenwick) add(i int, v int32) {
	for ; i < len(f); i += i & -i {
		f[i] += v
	}
}

func (f fenwick) sum(i int) int32 {
	var s int32
	for ; i > 0; i -= i & -i {
		s += f[i]
	}
	return s
}

// holeHeap is a max-heap of stack slot indices holding invalidation
// holes; a miss insertion consumes the topmost (most recent) hole.
type holeHeap []int

func (h *holeHeap) push(v int) {
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] >= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

func (h *holeHeap) popMax() int {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < len(s) && s[l] > s[big] {
			big = l
		}
		if r < len(s) && s[r] > s[big] {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	*h = s
	return top
}

// Sentinel slot values for lines not currently on a processor's stack.
const (
	slotNever = -1 // never referenced by this processor
	slotInval = -2 // removed by a coherence invalidation
)

// sdStack is one processor's stack state. The Fenwick tree indexes
// access slots, which grow one per reference — sizing it by reference
// count (as the pre-streaming implementation did) is O(trace) memory,
// the very thing out-of-core replay exists to avoid. Instead the tree
// starts small and, when the slot clock reaches its capacity, compact
// renumbers the occupied slots 1..m in order. Renumbering preserves
// every between-slot count, so depths — and therefore the profile — are
// bit-identical to the unbounded-slot computation. Occupied slots
// (residents plus holes) never exceed the lines the processor has ever
// touched: the total only grows on an insertion with no hole to consume
// (at which point it equals the resident count), so tree memory is
// O(address space / line size), independent of trace length.
type sdStack struct {
	tree  fenwick
	holes holeHeap
	clock int
	last  []int64 // line -> slot, or a sentinel
}

// sdInitialCap is the starting (and minimum post-compaction) Fenwick
// capacity: big enough that compaction cost amortizes to noise, small
// enough to be irrelevant per processor.
const sdInitialCap = 1 << 16

// ensureSlot guarantees the next slot (clock+1) fits the tree,
// compacting and growing when it does not.
func (st *sdStack) ensureSlot() {
	if st.clock+1 < len(st.tree) {
		return
	}
	st.compact()
}

// sdSlot is one occupied stack slot during compaction: the line
// resident there, or -1 for an invalidation hole.
type sdSlot struct {
	slot int
	line int64
}

// compact renumbers the occupied slots 1..m, preserving their order,
// and rebuilds the tree with fresh headroom.
func (st *sdStack) compact() {
	var occ []sdSlot
	for line, s := range st.last {
		if s >= 0 {
			occ = append(occ, sdSlot{slot: int(s), line: int64(line)})
		}
	}
	for _, h := range st.holes {
		occ = append(occ, sdSlot{slot: h, line: -1})
	}
	sort.Slice(occ, func(i, j int) bool { return occ[i].slot < occ[j].slot })
	newCap := 2 * (len(occ) + 2)
	if newCap < sdInitialCap {
		newCap = sdInitialCap
	}
	st.tree = make(fenwick, newCap)
	st.holes = st.holes[:0]
	for rank, o := range occ {
		s := rank + 1
		st.tree.add(s, 1)
		if o.line >= 0 {
			st.last[o.line] = int64(s)
		} else {
			st.holes.push(s)
		}
	}
	st.clock = len(occ)
}

// StackDistances runs the one-pass simulation of the stream at the
// given line size. The profile answers any cache size from lineSize up
// to maxCacheSize. Measurement-reset markers zero the counters while
// leaving every stack warm, exactly like System.ResetStats. The stream
// is consumed block by block with slot-compacted trees, so peak memory
// is O(block buffer + address space) — a TraceFile profiles out of
// core, and the result is bit-identical to the in-memory pass.
func StackDistances(src TraceSource, lineSize, maxCacheSize int) (*StackProfile, error) {
	if lineSize < WordBytes || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("memsys: line size must be a power of two ≥ %d, got %d", WordBytes, lineSize)
	}
	if maxCacheSize < lineSize {
		return nil, fmt.Errorf("memsys: max cache size %d smaller than line size %d", maxCacheSize, lineSize)
	}
	shift := uint(bits.TrailingZeros(uint(lineSize)))
	maxLines := maxCacheSize / lineSize

	// The stream summary replaces the old pre-scan: cached on an
	// in-memory trace, free from the index footer of a TraceFile.
	meta := src.Meta()
	nproc := meta.MaxProc + 1
	if nproc > 64 {
		return nil, fmt.Errorf("memsys: at most 64 processors supported (sharer bitset), trace has %d", nproc)
	}
	lines := uint64(meta.MaxAddr)>>shift + 1

	sp := &StackProfile{lineSize: lineSize, maxLines: maxLines, procs: make([]stackCounts, nproc)}
	stacks := make([]sdStack, nproc)
	for p := 0; p < nproc; p++ {
		l := make([]int64, lines)
		for i := range l {
			l[i] = slotNever
		}
		var refs uint64
		if p < len(meta.ProcRefs) {
			refs = meta.ProcRefs[p]
		}
		capHint := int(refs) + 1
		if refs >= sdInitialCap {
			capHint = sdInitialCap
		}
		stacks[p] = sdStack{tree: make(fenwick, capHint), last: l}
		sp.procs[p].hist = make([]uint64, maxLines+1)
	}
	holders := make([]uint64, lines) // line -> bitset of stack-resident procs

	err := src.blocks(func(events []uint64) error {
		for _, e := range events {
			if e == resetMarker {
				for p := range sp.procs {
					c := &sp.procs[p]
					c.reads, c.writes, c.cold, c.coherence = 0, 0, 0, 0
					for i := range c.hist {
						c.hist[i] = 0
					}
				}
				continue
			}
			p := int(e >> 1 & 0x7f)
			line := (e >> 8) >> shift
			// These fire only for streams whose index footer understates
			// the ranges the blocks actually use (a lying or corrupt v2
			// file); an in-memory trace's meta is exact.
			if p >= nproc {
				return fmt.Errorf("memsys: corrupt trace: processor %d beyond declared maximum %d", p, meta.MaxProc)
			}
			if line >= lines {
				return fmt.Errorf("memsys: corrupt trace: address %#x beyond declared maximum %#x", e>>8, uint64(meta.MaxAddr))
			}
			write := e&1 == 1

			c := &sp.procs[p]
			if write {
				c.writes++
			} else {
				c.reads++
			}

			st := &stacks[p]
			slot := st.last[line]
			st.ensureSlot()
			st.clock++
			now := st.clock
			switch slot {
			case slotNever, slotInval:
				if slot == slotNever {
					c.cold++
				} else {
					c.coherence++
				}
				// The line enters every cache; the insertion fills the
				// frontmost freed slot, if an invalidation left one.
				if len(st.holes) > 0 {
					st.tree.add(st.holes.popMax(), -1)
				}
			default:
				// Compaction may have renumbered the slot read above.
				cur := int(st.last[line])
				// Depth = stack slots (resident lines AND holes) above this
				// one; hit in any cache of more than depth lines.
				d := int(st.tree.sum(now-1) - st.tree.sum(cur))
				if d > maxLines {
					d = maxLines
				}
				c.hist[d]++
				if len(st.holes) > 0 && st.holes[0] > cur {
					// A hole sits above the line: caches that missed fill their
					// freed slot, so the topmost hole migrates down to the old
					// position (which stays occupied, now as a hole).
					st.tree.add(st.holes.popMax(), -1)
					st.holes.push(cur)
				} else {
					st.tree.add(cur, -1)
				}
			}
			st.tree.add(now, 1)
			st.last[line] = int64(now)
			holders[line] |= 1 << uint(p)

			if write {
				// Illinois-MESI: after any write the writer is the sole holder —
				// every other resident copy leaves its stack, its slot staying
				// behind as a hole (see file comment).
				for rem := holders[line] &^ (1 << uint(p)); rem != 0; rem &= rem - 1 {
					q := bits.TrailingZeros64(rem)
					stacks[q].holes.push(int(stacks[q].last[line]))
					stacks[q].last[line] = slotInval
				}
				holders[line] = 1 << uint(p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// LineSize returns the line size the profile was built at.
func (sp *StackProfile) LineSize() int { return sp.lineSize }

// MaxCacheSize returns the largest answerable cache size in bytes.
func (sp *StackProfile) MaxCacheSize() int { return sp.maxLines * sp.lineSize }

// Procs returns the number of processors in the profiled trace.
func (sp *StackProfile) Procs() int { return len(sp.procs) }

// Refs returns the total references counted since the last reset marker.
func (sp *StackProfile) Refs() uint64 {
	var n uint64
	for i := range sp.procs {
		n += sp.procs[i].reads + sp.procs[i].writes
	}
	return n
}

// capacityLines validates a queried cache size and converts it to lines.
func (sp *StackProfile) capacityLines(cacheSize int) (int, error) {
	if cacheSize < sp.lineSize || cacheSize%sp.lineSize != 0 {
		return 0, fmt.Errorf("memsys: cache size %d not a positive multiple of line size %d", cacheSize, sp.lineSize)
	}
	c := cacheSize / sp.lineSize
	if c > sp.maxLines {
		return 0, fmt.Errorf("memsys: cache size %d exceeds profiled maximum %d", cacheSize, sp.MaxCacheSize())
	}
	return c, nil
}

// ProcMisses returns processor p's exact miss count in a fully-
// associative LRU cache of the given size — equal, reference for
// reference, to Replay with Assoc=FullyAssoc and that CacheSize.
func (sp *StackProfile) ProcMisses(p, cacheSize int) (uint64, error) {
	capLines, err := sp.capacityLines(cacheSize)
	if err != nil {
		return 0, err
	}
	c := &sp.procs[p]
	m := c.cold + c.coherence
	for d := capLines; d <= sp.maxLines; d++ {
		m += c.hist[d]
	}
	return m, nil
}

// Misses returns the total miss count across processors for a fully-
// associative LRU cache of the given size.
func (sp *StackProfile) Misses(cacheSize int) (uint64, error) {
	var total uint64
	for p := range sp.procs {
		m, err := sp.ProcMisses(p, cacheSize)
		if err != nil {
			return 0, err
		}
		total += m
	}
	return total, nil
}

// MissRate returns misses per reference for a fully-associative LRU
// cache of the given size. It performs the same integer sums and single
// float division as Stats.MissRate, so the result is bit-identical to
// replaying the trace at that size.
func (sp *StackProfile) MissRate(cacheSize int) (float64, error) {
	misses, err := sp.Misses(cacheSize)
	if err != nil {
		return 0, err
	}
	var refs uint64
	for i := range sp.procs {
		refs += sp.procs[i].reads + sp.procs[i].writes
	}
	if refs == 0 {
		return 0, nil
	}
	return float64(misses) / float64(refs), nil
}
