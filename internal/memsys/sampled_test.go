package memsys

import (
	"math"
	"runtime"
	"testing"
)

// sampledFingerprint flattens every queryable output of a profile —
// per-proc estimates, totals, rates, bands — so determinism tests can
// compare runs bit for bit.
func sampledFingerprint(t *testing.T, sp *SampledProfile, sizes []int) []uint64 {
	t.Helper()
	var out []uint64
	out = append(out, math.Float64bits(sp.Rate()), sp.Refs(), sp.SampledRefs())
	for _, cs := range sizes {
		for p := 0; p < sp.Procs(); p++ {
			m, err := sp.EstProcMisses(p, cs)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, math.Float64bits(m))
		}
		mr, err := sp.EstMissRate(cs)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := sp.Band(cs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, math.Float64bits(mr), math.Float64bits(lo), math.Float64bits(hi))
	}
	return out
}

// TestSampledRateOneBitIdentical: at sampling rate 1 the sampled pass
// must reproduce the exact pass bit for bit — per-processor miss
// counts, aggregate miss rates, reference counts — with zero-width
// confidence bands, on traces with invalidations and epoch resets.
func TestSampledRateOneBitIdentical(t *testing.T) {
	for _, resets := range []bool{false, true} {
		for _, exactLines := range []int{0, 64} {
			tr := buildSharingTrace(7, 4, 5000, resets)
			exact, err := StackDistances(tr, 64, stackSizes[len(stackSizes)-1])
			if err != nil {
				t.Fatal(err)
			}
			sp, err := SampledStackDistances(tr, 64, stackSizes[len(stackSizes)-1], SampledOptions{Rate: 1, Seed: 42, ExactLines: exactLines})
			if err != nil {
				t.Fatal(err)
			}
			if !sp.Exact() {
				t.Fatal("rate-1 profile not flagged exact")
			}
			if sp.Rate() != 1 {
				t.Fatalf("rate-1 profile reports rate %v", sp.Rate())
			}
			if sp.Refs() != exact.Refs() || sp.SampledRefs() != exact.Refs() {
				t.Fatalf("refs %d sampled %d, exact %d", sp.Refs(), sp.SampledRefs(), exact.Refs())
			}
			for _, cs := range stackSizes {
				for p := 0; p < sp.Procs(); p++ {
					want, err := exact.ProcMisses(p, cs)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sp.EstProcMisses(p, cs)
					if err != nil {
						t.Fatal(err)
					}
					if got != float64(want) {
						t.Fatalf("resets=%v cs=%d proc=%d: est %v != exact %d", resets, cs, p, got, want)
					}
				}
				wantRate, err := exact.MissRate(cs)
				if err != nil {
					t.Fatal(err)
				}
				gotRate, err := sp.EstMissRate(cs)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(gotRate) != math.Float64bits(wantRate) {
					t.Fatalf("resets=%v cs=%d: est rate %v not bit-identical to exact %v", resets, cs, gotRate, wantRate)
				}
				lo, hi, err := sp.Band(cs)
				if err != nil {
					t.Fatal(err)
				}
				if lo != gotRate || hi != gotRate {
					t.Fatalf("resets=%v cs=%d: exact pass band [%v, %v] not zero-width at %v", resets, cs, lo, hi, gotRate)
				}
			}
		}
	}
}

// TestSampledAdaptiveNeverOverflowingIsExact: rate 1 with a budget the
// trace never overflows is still the exact pass.
func TestSampledAdaptiveNeverOverflowingIsExact(t *testing.T) {
	tr := buildSharingTrace(3, 4, 4000, true)
	exact, err := StackDistances(tr, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SampledStackDistances(tr, 64, 1<<20, SampledOptions{Rate: 1, Seed: 9, MaxTracked: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Exact() {
		t.Fatal("never-overflowing rate-1 adaptive profile not flagged exact")
	}
	for _, cs := range []int{1 << 10, 16 << 10, 1 << 20} {
		want, err := exact.MissRate(cs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.EstMissRate(cs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("cs=%d: adaptive est %v not bit-identical to exact %v", cs, got, want)
		}
	}
}

// TestSampledDeterministicAcrossGOMAXPROCS: a fixed seed must produce a
// byte-identical profile across repeated runs and GOMAXPROCS settings.
func TestSampledDeterministicAcrossGOMAXPROCS(t *testing.T) {
	tr := buildSharingTrace(21, 4, 6000, true)
	run := func() []uint64 {
		sp, err := SampledStackDistances(tr, 64, 1<<20, SampledOptions{Rate: 0.25, Seed: 5, ExactLines: 64})
		if err != nil {
			t.Fatal(err)
		}
		return sampledFingerprint(t, sp, stackSizes)
	}
	want := run()
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, gmp := range []int{1, 2, old} {
		runtime.GOMAXPROCS(gmp)
		for i := 0; i < 2; i++ {
			got := run()
			if len(got) != len(want) {
				t.Fatalf("GOMAXPROCS=%d: fingerprint length %d != %d", gmp, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("GOMAXPROCS=%d: fingerprint word %d differs", gmp, j)
				}
			}
		}
	}
}

// TestSampledDegenerateInputs: empty and single-processor traces.
func TestSampledDegenerateInputs(t *testing.T) {
	empty := NewRecorder(64).Finish(make([]int32, 4))
	sp, err := SampledStackDistances(empty, 64, 1<<16, SampledOptions{Rate: 0.5, Seed: 1, ExactLines: DefaultExactLines})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Refs() != 0 || sp.SampledRefs() != 0 {
		t.Fatalf("empty trace: refs %d sampled %d", sp.Refs(), sp.SampledRefs())
	}
	mr, err := sp.EstMissRate(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := sp.Band(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if mr != 0 || lo != 0 || hi != 0 {
		t.Fatalf("empty trace: rate %v band [%v, %v]", mr, lo, hi)
	}

	single := buildSharingTrace(13, 1, 3000, false)
	exact, err := StackDistances(single, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sp, err = SampledStackDistances(single, 64, 1<<20, SampledOptions{Rate: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Procs() != 1 {
		t.Fatalf("single-proc trace: %d procs", sp.Procs())
	}
	got, err := sp.EstMissRate(4 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.MissRate(4 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("single-proc rate 1: est %v != exact %v", got, want)
	}
}

// TestSampledErrorEnvelope: on synthetic sharing traces, capacities
// covered by the exact window must match the exact pass bit for bit
// with zero-width bands — at any sampling rate, fixed or adaptive —
// and every estimate above the window must be a valid probability with
// a self-consistent band. (The tight suite-wide error bound at 1%
// sampling is enforced against the recorded apps in internal/core.)
func TestSampledErrorEnvelope(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := buildSharingTrace(seed, 4, 30000, seed%2 == 0)
		exact, err := StackDistances(tr, 64, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []SampledOptions{
			{Rate: 0.3, Seed: uint64(seed), ExactLines: DefaultExactLines},
			{Rate: 0.05, Seed: uint64(seed), ExactLines: DefaultExactLines},
			{Rate: 0.3, Seed: uint64(seed), MaxTracked: 1 << 20, ExactLines: DefaultExactLines}, // adaptive, no overflow
			{Rate: 1, Seed: uint64(seed), MaxTracked: 512, ExactLines: 64},                      // adaptive, forced eviction
			{Rate: 0.3, Seed: uint64(seed)},                                                     // pure SHARDS, no window
		} {
			sp, err := SampledStackDistances(tr, 64, 1<<20, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, cs := range stackSizes {
				want, err := exact.MissRate(cs)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sp.EstMissRate(cs)
				if err != nil {
					t.Fatal(err)
				}
				if got < 0 || got > 1 {
					t.Fatalf("seed=%d opt=%+v cs=%d: estimate %v outside [0,1]", seed, opt, cs, got)
				}
				lo, hi, err := sp.Band(cs)
				if err != nil {
					t.Fatal(err)
				}
				if lo > got || hi < got || lo < 0 || hi > 1 {
					t.Fatalf("seed=%d opt=%+v cs=%d: band [%v, %v] inconsistent with estimate %v", seed, opt, cs, lo, hi, got)
				}
				if cs/64 <= sp.ExactLines() {
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Errorf("seed=%d opt=%+v cs=%d: window-covered estimate %v not bit-identical to exact %v", seed, opt, cs, got, want)
					}
					if lo != got || hi != got {
						t.Errorf("seed=%d opt=%+v cs=%d: window-covered band [%v, %v] not zero-width", seed, opt, cs, lo, hi)
					}
					for p := 0; p < sp.Procs(); p++ {
						wantM, err := exact.ProcMisses(p, cs)
						if err != nil {
							t.Fatal(err)
						}
						gotM, err := sp.EstProcMisses(p, cs)
						if err != nil {
							t.Fatal(err)
						}
						if gotM != float64(wantM) {
							t.Errorf("seed=%d opt=%+v cs=%d proc=%d: window misses %v != exact %d", seed, opt, cs, p, gotM, wantM)
						}
					}
				}
			}
		}
	}
}

// TestSampledExactLinesRounding: the window depth rounds up to a power
// of two and is reported by ExactLines.
func TestSampledExactLinesRounding(t *testing.T) {
	tr := buildSharingTrace(2, 2, 1000, false)
	sp, err := SampledStackDistances(tr, 64, 1<<20, SampledOptions{Rate: 0.5, Seed: 1, ExactLines: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sp.ExactLines() != 128 {
		t.Fatalf("ExactLines 100 rounded to %d, want 128", sp.ExactLines())
	}
	sp, err = SampledStackDistances(tr, 64, 1<<20, SampledOptions{Rate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.ExactLines() != 0 {
		t.Fatalf("window disabled but ExactLines = %d", sp.ExactLines())
	}
}

// TestSampledAdaptiveLowersRate: a tight budget on a wide footprint
// must drop the effective rate below the configured one while keeping
// the tracked-set cardinality bounded.
func TestSampledAdaptiveLowersRate(t *testing.T) {
	tr := buildSharingTrace(17, 4, 20000, false)
	sp, err := SampledStackDistances(tr, 64, 1<<20, SampledOptions{Rate: 1, Seed: 3, MaxTracked: 128})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Exact() {
		t.Fatal("overflowing adaptive profile flagged exact")
	}
	if sp.Rate() >= 1 {
		t.Fatalf("adaptive rate did not drop: %v", sp.Rate())
	}
	if sp.SampledRefs() == 0 || sp.SampledRefs() >= sp.Refs() {
		t.Fatalf("adaptive sampled %d of %d refs", sp.SampledRefs(), sp.Refs())
	}
}

// TestSampledValidation: option and query validation.
func TestSampledValidation(t *testing.T) {
	tr := buildSharingTrace(1, 2, 200, false)
	for _, opt := range []SampledOptions{
		{Rate: 0},
		{Rate: -0.5},
		{Rate: 1.5},
		{Rate: math.NaN()},
		{Rate: 0.5, MaxTracked: -1},
		{Rate: 0.5, ExactLines: -1},
	} {
		if _, err := SampledStackDistances(tr, 64, 1<<16, opt); err == nil {
			t.Fatalf("options %+v accepted", opt)
		}
	}
	if _, err := SampledStackDistances(tr, 48, 1<<16, SampledOptions{Rate: 0.5}); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
	if _, err := SampledStackDistances(tr, 64, 32, SampledOptions{Rate: 0.5}); err == nil {
		t.Fatal("max cache size below line size accepted")
	}
	sp, err := SampledStackDistances(tr, 64, 4096, SampledOptions{Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.EstMissRate(8192); err == nil {
		t.Fatal("query beyond profiled maximum accepted")
	}
	if _, _, err := sp.Band(96); err == nil {
		t.Fatal("non-multiple cache size accepted")
	}
}
