package memsys

import (
	"bytes"
	"strings"
	"testing"
)

// recProcLimit pins the satellite fix: ids 0..126 are accepted, id 127
// (the reset marker) and negatives panic, and the panic message agrees
// with the enforced limit.
func TestRecorderProcLimit(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(0, 8, false)
	rec.Record(126, 16, true) // highest legal id
	if got := rec.Finish(nil).MaxProc(); got != 126 {
		t.Fatalf("MaxProc=%d, want 126", got)
	}
	for _, proc := range []int{127, 128, -1} {
		proc := proc
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("no panic for proc %d", proc)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %T, want string", r)
				}
				if !strings.Contains(msg, "at most 127 processors (ids 0-126") {
					t.Fatalf("panic message %q does not state the real limit", msg)
				}
			}()
			NewRecorder(64).Record(proc, 0, false)
		}()
	}
}

// serialize renders a trace to bytes for equality comparison.
func serialize(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The merge must depend only on (epoch, proc, local index) — never on
// the real-time order RecordBatch calls arrived in.
func TestRecordBatchMergeIsScheduleIndependent(t *testing.T) {
	type batch struct {
		proc   int
		epoch  uint64
		events []uint64
	}
	batches := []batch{
		{0, 1, []uint64{traceEvent(0, 64, false), traceEvent(0, 72, true)}},
		{1, 1, []uint64{traceEvent(1, 128, false)}},
		{0, 2, []uint64{traceEvent(0, 80, false)}},
		{2, 2, []uint64{traceEvent(2, 256, true), traceEvent(2, 264, false)}},
		{1, 3, []uint64{traceEvent(1, 136, true)}},
	}
	record := func(order []int) *Trace {
		rec := NewRecorder(64)
		rec.RecordResetAt(2) // between epochs 1 and 2
		for _, i := range order {
			b := batches[i]
			rec.RecordBatch(b.proc, b.epoch, b.events)
		}
		return rec.Finish(nil)
	}
	want := serialize(t, record([]int{0, 1, 2, 3, 4}))
	for _, order := range [][]int{
		{4, 3, 2, 1, 0},
		{1, 4, 0, 3, 2},
		{3, 0, 4, 1, 2},
	} {
		if got := serialize(t, record(order)); !bytes.Equal(got, want) {
			t.Fatalf("merge differs for arrival order %v", order)
		}
	}
}

// Within one epoch the merge orders by processor id, and a reset marker
// at epoch E precedes every event of epoch E.
func TestRecordBatchMergeOrder(t *testing.T) {
	rec := NewRecorder(64)
	e0, e1, e2 := traceEvent(0, 8, false), traceEvent(1, 16, false), traceEvent(2, 24, true)
	rec.RecordBatch(2, 1, []uint64{e2})
	rec.RecordBatch(0, 1, []uint64{e0})
	rec.RecordBatch(1, 1, []uint64{e1})
	rec.RecordResetAt(1)
	tr := rec.Finish(nil)
	want := []uint64{resetMarker, e0, e1, e2}
	if len(tr.events) != len(want) {
		t.Fatalf("got %d events, want %d", len(tr.events), len(want))
	}
	for i := range want {
		if tr.events[i] != want[i] {
			t.Fatalf("event %d = %#x, want %#x", i, tr.events[i], want[i])
		}
	}
}

// Multiple buffer-full flushes of one processor inside a single epoch
// must keep their append order (the processor's program order).
func TestRecordBatchSameEpochRunsKeepOrder(t *testing.T) {
	rec := NewRecorder(64)
	a := traceEvent(0, 8, false)
	b := traceEvent(0, 16, true)
	c := traceEvent(0, 24, false)
	rec.RecordBatch(0, 5, []uint64{a})
	rec.RecordBatch(0, 5, []uint64{b, c})
	tr := rec.Finish(nil)
	want := []uint64{a, b, c}
	for i := range want {
		if tr.events[i] != want[i] {
			t.Fatalf("event %d = %#x, want %#x", i, tr.events[i], want[i])
		}
	}
}

// Mixing the serialized and batched capture paths is a programming error
// and must fail loudly at Finish, not silently interleave.
func TestRecorderMixedPathsPanic(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(0, 8, false)
	rec.RecordBatch(1, 1, []uint64{traceEvent(1, 16, false)})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mixed Record/RecordBatch use")
		}
	}()
	rec.Finish(nil)
}

// AccessBatch must produce exactly the statistics of per-event AccessAt
// calls in the same order.
func TestAccessBatchMatchesAccessAt(t *testing.T) {
	cfg := Config{Procs: 4, CacheSize: 1024, Assoc: 2, LineSize: 64}
	mk := func() *System {
		s, err := New(cfg, func(uint64) int { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	single, batched := mk(), mk()

	// A per-processor access schedule with sharing and write-backs; the
	// global interleaving (round-robin by processor) is identical on both
	// systems, only the entry point differs.
	perProc := make([][]uint64, 4)
	times := make([][]uint64, 4)
	for p := 0; p < 4; p++ {
		var now uint64
		for i := 0; i < 200; i++ {
			a := Addr((i*13+p*5)%97) * WordBytes
			w := (i+p)%3 == 0
			now += uint64(p + i%7 + 1)
			perProc[p] = append(perProc[p], traceEvent(p, a, w))
			times[p] = append(times[p], now)
		}
	}
	// single: batches of one event; batched: one call per processor run
	// of 50 events. Both present the same per-proc order; the global
	// orders differ (both legal), so compare per-processor counters and
	// protocol invariants rather than global-order-dependent stats.
	for p := 0; p < 4; p++ {
		for i, e := range perProc[p] {
			single.AccessAt(p, Addr(e>>8), e&1 == 1, times[p][i])
		}
		for lo := 0; lo < len(perProc[p]); lo += 50 {
			batched.AccessBatch(p, perProc[p][lo:lo+50], times[p][lo:lo+50])
		}
	}
	ss, bs := single.Stats(), batched.Stats()
	for p := 0; p < 4; p++ {
		if ss.Procs[p].Reads != bs.Procs[p].Reads || ss.Procs[p].Writes != bs.Procs[p].Writes {
			t.Fatalf("proc %d reads/writes differ: single %+v batched %+v", p, ss.Procs[p], bs.Procs[p])
		}
	}
	if err := batched.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Same interleaving presented to both entry points must agree on
	// everything, including miss classification: drive a second pair in
	// identical global order with batch size 1 vs AccessAt.
	s2, b2 := mk(), mk()
	for i := 0; i < 200; i++ {
		for p := 0; p < 4; p++ {
			e := perProc[p][i]
			s2.AccessAt(p, Addr(e>>8), e&1 == 1, times[p][i])
			b2.AccessBatch(p, perProc[p][i:i+1], times[p][i:i+1])
		}
	}
	st2, bt2 := s2.Stats(), b2.Stats()
	for p := 0; p < 4; p++ {
		if st2.Procs[p] != bt2.Procs[p] {
			t.Fatalf("proc %d stats differ under identical interleaving:\nAccessAt:    %+v\nAccessBatch: %+v", p, st2.Procs[p], bt2.Procs[p])
		}
	}
}
