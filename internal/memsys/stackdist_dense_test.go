package memsys

import (
	"fmt"
	"math/rand"
	"testing"
)

// sdEvent is one synthetic access for the dense-capacity equivalence
// test; reset marks an epoch boundary (measurement reset).
type sdEvent struct {
	p     int
	line  int
	write bool
	reset bool
}

func sdBuild(evs []sdEvent) *Trace {
	rec := NewRecorder(64)
	for _, e := range evs {
		if e.reset {
			rec.RecordReset()
			continue
		}
		rec.Record(e.p, Addr(e.line*64), e.write)
	}
	return rec.Finish(make([]int32, 64))
}

// sdCheck compares StackDistances against fully-associative Replay at
// EVERY capacity from 1 to maxLines lines, per processor. It returns a
// description of the first disagreement, or "" when all agree.
func sdCheck(t *testing.T, evs []sdEvent, maxLines int) string {
	t.Helper()
	tr := sdBuild(evs)
	sp, err := StackDistances(tr, 64, maxLines*64)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= maxLines; c++ {
		st, err := Replay(tr, Config{Procs: 8, CacheSize: c * 64, Assoc: FullyAssoc, LineSize: 64, OverheadBytes: 8})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < sp.Procs(); p++ {
			got, err := sp.ProcMisses(p, c*64)
			if err != nil {
				t.Fatal(err)
			}
			if want := st.Procs[p].TotalMisses(); got != want {
				return fmt.Sprintf("cap=%d proc=%d: stackdist %d replay %d", c, p, got, want)
			}
		}
	}
	return ""
}

// TestStackDistanceDenseCapacities drives random multi-processor streams
// — writes (invalidations), epoch resets, heavy line reuse — through the
// stack-distance pass and checks exact per-processor miss counts against
// Replay at every capacity the profile can answer, not just the sparse
// power-of-two sweep points the app-trace tests use. On failure the
// trace is greedily shrunk to a minimal reproducer before reporting.
func TestStackDistanceDenseCapacities(t *testing.T) {
	const maxLines = 40
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nproc := 2 + rng.Intn(7)
		nline := 6 + rng.Intn(25)
		n := 30 + rng.Intn(370)
		evs := make([]sdEvent, n)
		for i := range evs {
			evs[i] = sdEvent{
				p:     rng.Intn(nproc),
				line:  rng.Intn(nline),
				write: rng.Intn(3) == 0,
				reset: rng.Intn(40) == 0,
			}
		}
		if msg := sdCheck(t, evs, maxLines); msg != "" {
			// Greedy shrink: drop events while the failure persists.
			for again := true; again; {
				again = false
				for i := 0; i < len(evs); i++ {
					cand := append(append([]sdEvent(nil), evs[:i]...), evs[i+1:]...)
					if sdCheck(t, cand, maxLines) != "" {
						evs = cand
						again = true
						break
					}
				}
			}
			msg = sdCheck(t, evs, maxLines)
			t.Logf("seed=%d shrunk to %d events: %s", seed, len(evs), msg)
			for _, e := range evs {
				t.Logf("  %+v", e)
			}
			t.Fatal("dense capacity mismatch")
		}
	}
}
