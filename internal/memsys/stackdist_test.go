package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSharingTrace builds a random trace with heavy read-write sharing
// (so coherence invalidations are frequent) and optional epoch resets.
func buildSharingTrace(seed int64, procs, events int, resets bool) *Trace {
	rng := rand.New(rand.NewSource(seed))
	rec := NewRecorder(64)
	for i := 0; i < events; i++ {
		// Mix a small hot shared region with a larger per-processor region
		// so both invalidations and deep stack distances occur.
		p := rng.Intn(procs)
		var a Addr
		if rng.Intn(2) == 0 {
			a = Addr(rng.Intn(1024)) &^ 7
		} else {
			a = Addr(8192+p*4096+rng.Intn(4096)) &^ 7
		}
		rec.Record(p, a, rng.Intn(3) == 0)
		if resets && i > 0 && i%(events/3+1) == 0 {
			rec.RecordReset()
		}
	}
	homes := make([]int32, 64)
	for i := range homes {
		homes[i] = int32(i % procs)
	}
	return rec.Finish(homes)
}

// stackSizes are the fully-associative capacities the equivalence tests
// compare at (in lines of 64 bytes): small enough to force evictions,
// large enough to hold everything.
var stackSizes = []int{1 << 6, 2 << 6, 4 << 6, 8 << 6, 16 << 6, 64 << 6, 512 << 6}

// TestStackDistanceMatchesReplayProperty: the one-pass profile must
// reproduce the per-processor and total miss counts of a fully-
// associative Replay at every cache size, on traces with invalidations
// and epoch resets.
func TestStackDistanceMatchesReplayProperty(t *testing.T) {
	f := func(seed int64, withResets bool) bool {
		const procs = 4
		tr := buildSharingTrace(seed, procs, 3000, withResets)
		sp, err := StackDistances(tr, 64, stackSizes[len(stackSizes)-1])
		if err != nil {
			t.Log(err)
			return false
		}
		for _, cs := range stackSizes {
			st, err := Replay(tr, Config{Procs: procs, CacheSize: cs, Assoc: FullyAssoc, LineSize: 64, OverheadBytes: 8})
			if err != nil {
				t.Log(err)
				return false
			}
			for p := range st.Procs {
				got, err := sp.ProcMisses(p, cs)
				if err != nil {
					t.Log(err)
					return false
				}
				if want := st.Procs[p].TotalMisses(); got != want {
					t.Logf("seed=%d resets=%v size=%d proc=%d: stackdist misses %d, replay %d", seed, withResets, cs, p, got, want)
					return false
				}
			}
			gotRate, err := sp.MissRate(cs)
			if err != nil {
				t.Log(err)
				return false
			}
			if gotRate != st.MissRate() {
				t.Logf("seed=%d size=%d: miss rate %v != replay %v", seed, cs, gotRate, st.MissRate())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestStackDistanceRefsMatchReplay: reference counts after resets must
// agree with Replay's (both count only the final epoch).
func TestStackDistanceRefsMatchReplay(t *testing.T) {
	tr := buildSharingTrace(11, 4, 2000, true)
	sp, err := StackDistances(tr, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(tr, Config{Procs: 4, CacheSize: 1 << 20, Assoc: FullyAssoc, LineSize: 64, OverheadBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Refs() != st.Aggregate().Refs() {
		t.Fatalf("refs %d != replay refs %d", sp.Refs(), st.Aggregate().Refs())
	}
}

// TestStackDistanceAcrossLineSizes: the profile must stay exact at
// non-default line granularities (false-sharing invalidations differ per
// line size).
func TestStackDistanceAcrossLineSizes(t *testing.T) {
	tr := buildSharingTrace(5, 4, 2500, false)
	for _, ls := range []int{16, 64, 256} {
		sp, err := StackDistances(tr, ls, 256*ls)
		if err != nil {
			t.Fatal(err)
		}
		for _, lines := range []int{2, 16, 256} {
			cs := lines * ls
			st, err := Replay(tr, Config{Procs: 4, CacheSize: cs, Assoc: FullyAssoc, LineSize: ls, OverheadBytes: 8})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sp.Misses(cs)
			if err != nil {
				t.Fatal(err)
			}
			if want := st.Aggregate().TotalMisses(); got != want {
				t.Fatalf("ls=%d cs=%d: misses %d != replay %d", ls, cs, got, want)
			}
		}
	}
}

func TestStackDistancesValidation(t *testing.T) {
	tr := buildTrace(1, 4, 100)
	if _, err := StackDistances(tr, 48, 1<<20); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
	if _, err := StackDistances(tr, 64, 32); err == nil {
		t.Fatal("max cache size below line size accepted")
	}
	sp, err := StackDistances(tr, 64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.MissRate(8192); err == nil {
		t.Fatal("query beyond profiled maximum accepted")
	}
	if _, err := sp.MissRate(96); err == nil {
		t.Fatal("non-multiple cache size accepted")
	}
}
