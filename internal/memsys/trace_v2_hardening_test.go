package memsys

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// hardeningTraceV2 builds a small valid v2 container through the
// batched path: two processors in epoch 0, a reset marker, one more
// run in epoch 1 — four blocks, every tag kind represented.
func hardeningTraceV2(t testing.TB) []byte {
	t.Helper()
	rec := NewRecorder(64)
	ev := func(addr uint64, proc int, write bool) uint64 {
		e := addr<<8 | uint64(proc)<<1
		if write {
			e |= 1
		}
		return e
	}
	rec.RecordBatch(0, 0, []uint64{ev(0x1000, 0, false), ev(0x1040, 0, true)})
	rec.RecordBatch(1, 0, []uint64{ev(0x1080, 1, false)})
	rec.RecordResetAt(1)
	rec.RecordBatch(0, 1, []uint64{ev(0x10c0, 0, true)})
	tr := rec.Finish([]int32{0, 1, 2, 3})
	var buf bytes.Buffer
	if _, err := tr.WriteV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// v2Layout opens the pristine bytes and returns the block index and the
// footer offset, so corruption cases can hit exact structures instead
// of guessing byte positions.
func v2Layout(t testing.TB, good []byte) (index []BlockInfo, footerOff int64) {
	t.Helper()
	tf := openV2(t, good)
	return tf.Index(), tf.footerOff
}

// TestReadTraceV2CorruptInputs mirrors the v1 corruption table for the
// sequential v2 decoder: every mutation must yield a descriptive error
// — never a panic, never an allocation the file's bytes don't back.
func TestReadTraceV2CorruptInputs(t *testing.T) {
	good := hardeningTraceV2(t)
	index, footerOff := v2Layout(t, good)

	le := binary.LittleEndian
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	// The first events block: tag at Offset, proc at Offset+1, epoch
	// varint (one byte here) at Offset+2, count varint at Offset+3.
	blk := index[0]
	var marker BlockInfo
	for _, b := range index {
		if b.Marker {
			marker = b
		}
	}
	cases := []struct {
		name string
		data []byte
		want string // substring expected in the error
	}{
		{"truncated header", good[:6], "header"},
		{"zero line size", corrupt(func(b []byte) {
			le.PutUint32(b[4:], 0)
		}), "line size"},
		{"home count larger than file", corrupt(func(b []byte) {
			le.PutUint64(b[8:], 1<<45)
		}), "home map"},
		{"truncated mid-block", good[:blk.Offset+3], "truncated"},
		{"unknown block tag", corrupt(func(b []byte) {
			b[blk.Offset] = 9
		}), "unknown block tag"},
		{"block processor out of range", corrupt(func(b []byte) {
			b[blk.Offset+1] = 127
		}), "out of range"},
		{"zero block event count", corrupt(func(b []byte) {
			b[blk.Offset+3] = 0
		}), "event count"},
		{"block disagrees with footer", corrupt(func(b []byte) {
			// Retag processor 0's first block as processor 2: decodes
			// fine, but the index footer still says processor 0.
			b[blk.Offset+1] = 2
		}), "disagrees"},
		{"marker epoch regression", corrupt(func(b []byte) {
			// The marker opens epoch 1; rewriting it to epoch 0 is
			// legal ordering-wise but contradicts the index footer.
			b[marker.Offset+1] = 0
		}), "footer"},
		{"footer version", corrupt(func(b []byte) {
			b[footerOff] = 9
		}), "version"},
		{"trailer footer length", corrupt(func(b []byte) {
			le.PutUint64(b[len(b)-12:], 1<<40)
		}), "footer length"},
		{"bad index magic", corrupt(func(b []byte) {
			b[len(b)-1] ^= 0xff
		}), "index magic"},
		{"truncated trailer", good[:len(good)-4], "trailer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadTrace accepted corrupt v2 input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// The pristine bytes must still decode.
	tr, err := ReadTrace(bytes.NewReader(good))
	if err != nil {
		t.Fatalf("valid v2 trace rejected: %v", err)
	}
	if tr.Len() != 5 || tr.homeLineSize != 64 || len(tr.homes) != 4 {
		t.Fatalf("round-trip mismatch: len=%d lineSize=%d homes=%d", tr.Len(), tr.homeLineSize, len(tr.homes))
	}
}

// TestTraceFileCorruptInputs drills the open path: NewTraceFile trusts
// nothing — trailer, footer and header must all cross-validate before
// any block is read.
func TestTraceFileCorruptInputs(t *testing.T) {
	good := hardeningTraceV2(t)
	_, footerOff := v2Layout(t, good)

	le := binary.LittleEndian
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	v1 := func() []byte {
		tr, err := ReadTrace(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"smaller than empty container", good[:20], "smaller than an empty"},
		{"flat v1 input", v1, "convert"},
		{"bad magic", corrupt(func(b []byte) {
			le.PutUint32(b, 0xdeadbeef)
		}), "magic"},
		{"zero line size", corrupt(func(b []byte) {
			le.PutUint32(b[4:], 0)
		}), "line size"},
		{"home count larger than file", corrupt(func(b []byte) {
			le.PutUint64(b[8:], 1<<45)
		}), "cannot fit"},
		{"bad index magic", corrupt(func(b []byte) {
			b[len(b)-1] ^= 0xff
		}), "index magic"},
		{"footer length out of range", corrupt(func(b []byte) {
			le.PutUint64(b[len(b)-12:], 1<<40)
		}), "out of range"},
		{"footer length off by one", corrupt(func(b []byte) {
			n := le.Uint64(b[len(b)-12:])
			le.PutUint64(b[len(b)-12:], n+1)
		}), "footer"},
		{"footer version", corrupt(func(b []byte) {
			b[footerOff] = 9
		}), "version"},
		{"corrupt end tag", corrupt(func(b []byte) {
			b[footerOff-1] = 9
		}), "block sequence ends"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewTraceFile(bytes.NewReader(tc.data), int64(len(tc.data)), nil)
			if err == nil {
				t.Fatal("NewTraceFile accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTraceFileCorruptBlocks drills the lazy half: the open succeeds on
// a valid footer, but a block whose bytes contradict the index must be
// reported at decode time — by DecodeBlock and by a streaming replay.
func TestTraceFileCorruptBlocks(t *testing.T) {
	good := hardeningTraceV2(t)
	index, _ := v2Layout(t, good)

	eventsIdx, markerIdx := -1, -1
	for i, b := range index {
		if b.Marker && markerIdx < 0 {
			markerIdx = i
		}
		if !b.Marker && eventsIdx < 0 {
			eventsIdx = i
		}
	}
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := []struct {
		name  string
		data  []byte
		block int
		want  string
	}{
		{"events block retagged as marker", corrupt(func(b []byte) {
			b[index[eventsIdx].Offset] = v2TagMarker
		}), eventsIdx, "index footer says events"},
		{"marker block retagged as events", corrupt(func(b []byte) {
			b[index[markerIdx].Offset] = v2TagEvents
		}), markerIdx, "index footer says marker"},
		{"block header disagrees with footer", corrupt(func(b []byte) {
			b[index[eventsIdx].Offset+1] = 2
		}), eventsIdx, "disagrees with index footer"},
		{"truncated address varint", corrupt(func(b []byte) {
			// The last payload byte becomes a varint continuation with
			// nothing following it.
			off := index[eventsIdx].Offset + index[eventsIdx].Size - 1
			b[off] = 0x80
		}), eventsIdx, "varint"},
		{"marker epoch disagrees with footer", corrupt(func(b []byte) {
			b[index[markerIdx].Offset+1] = 0
		}), markerIdx, "index footer says"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tf, err := NewTraceFile(bytes.NewReader(tc.data), int64(len(tc.data)), nil)
			if err != nil {
				t.Fatalf("open rejected block-level corruption early: %v", err)
			}
			if _, err := tf.DecodeBlock(tc.block); err == nil {
				t.Fatal("DecodeBlock accepted a corrupt block")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The streaming consumers must surface the same failure
			// instead of replaying garbage.
			cfg := Config{Procs: 4, CacheSize: 2048, Assoc: 2, LineSize: 64, OverheadBytes: 8}
			if _, err := Replay(tf, cfg); err == nil {
				t.Fatal("streaming replay accepted a corrupt block")
			}
		})
	}
}

// FuzzReadTraceV2 throws arbitrary bytes at both v2 decoders: they must
// agree on acceptance, never panic, and any accepted container must
// re-serialize to an equivalent stream.
func FuzzReadTraceV2(f *testing.F) {
	good := hardeningTraceV2(f)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-12])
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x55
	f.Add(flip)
	f.Add([]byte{0x33, 0x4c, 0x50, 0x53}) // v2 magic alone

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			// The sequential decoder verifies the footer summary against
			// a full decode; the random-access reader by design cannot
			// (that would defeat random access), so it may stream a
			// container whose footer merely overstates a bound. It must
			// still never panic, and anything it streams must match the
			// block count its own footer promised.
			tf, ferr := NewTraceFile(bytes.NewReader(data), int64(len(data)), nil)
			if ferr != nil {
				return
			}
			n := 0
			if serr := tf.blocks(func(ev []uint64) error {
				n += len(ev)
				return nil
			}); serr == nil && n != tf.Len() {
				t.Fatalf("TraceFile streamed %d events, its footer promises %d", n, tf.Len())
			}
			return
		}
		if len(data) == 0 || binary.LittleEndian.Uint32(data) != traceMagicV2 {
			return // accepted as v1; covered by FuzzReadTrace
		}
		// Re-serialize and decode again: the stream must survive.
		var buf bytes.Buffer
		if _, werr := tr.WriteV2(&buf); werr != nil {
			t.Fatalf("accepted v2 trace failed to re-serialize: %v", werr)
		}
		tr2, rerr := ReadTrace(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("re-serialized v2 trace rejected: %v", rerr)
		}
		if !bytes.Equal(eventWords(tr2), eventWords(tr)) {
			t.Fatal("v2 round trip changed the event stream")
		}
		// The random-access reader must agree with the sequential one.
		tf, ferr := NewTraceFile(bytes.NewReader(data), int64(len(data)), nil)
		if ferr != nil {
			t.Fatalf("sequential decode accepted but TraceFile rejected: %v", ferr)
		}
		var streamed []uint64
		if err := tf.blocks(func(ev []uint64) error {
			streamed = append(streamed, ev...)
			return nil
		}); err != nil {
			t.Fatalf("sequential decode accepted but streaming failed: %v", err)
		}
		if !bytes.Equal(u64Bytes(streamed), u64Bytes(tr.events)) {
			t.Fatal("TraceFile streams a different event sequence")
		}
	})
}

func eventWords(tr *Trace) []byte { return u64Bytes(tr.events) }

func u64Bytes(events []uint64) []byte {
	out := make([]byte, 0, 8*len(events))
	for _, e := range events {
		out = binary.LittleEndian.AppendUint64(out, e)
	}
	return out
}
