package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testSys builds a small system: 4 procs, tiny caches, 64B lines, homes
// assigned round-robin by line.
func testSys(t *testing.T, cacheSize int, assoc int) *System {
	t.Helper()
	s, err := New(Config{
		Procs: 4, CacheSize: cacheSize, Assoc: assoc, LineSize: 64, OverheadBytes: 8,
	}, func(line uint64) int { return int(line % 4) })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addrOfLine(line uint64) Addr { return Addr(line * 64) }

func TestColdMissThenHit(t *testing.T) {
	s := testSys(t, 1024, 2)
	hit, kind := s.Access(0, 0, false)
	if hit || kind != MissCold {
		t.Fatalf("first access: hit=%v kind=%v, want cold miss", hit, kind)
	}
	hit, _ = s.Access(0, 8, false) // same line
	if !hit {
		t.Fatal("second access to same line should hit")
	}
	st := s.Stats()
	if st.Procs[0].Reads != 2 || st.Procs[0].Misses[MissCold] != 1 {
		t.Fatalf("stats: %+v", st.Procs[0])
	}
}

func TestIllinoisExclusiveOnSoleRead(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(0, 0, false)
	if got := s.caches[0].peek(0); got != Exclusive {
		t.Fatalf("sole read loads %v, want Exclusive", got)
	}
	// A silent upgrade on write: no invalidations, no upgrade counter.
	s.Access(0, 0, true)
	if got := s.caches[0].peek(0); got != Modified {
		t.Fatalf("write to Exclusive: %v, want Modified", got)
	}
	if up := s.Stats().Procs[0].Upgrades; up != 0 {
		t.Fatalf("silent E→M counted as upgrade: %d", up)
	}
}

func TestSecondReaderGetsShared(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(0, 0, false)
	s.Access(1, 0, false)
	if s.caches[0].peek(0) != Shared || s.caches[1].peek(0) != Shared {
		t.Fatalf("states: %v %v, want S S", s.caches[0].peek(0), s.caches[1].peek(0))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(0, 0, false)
	s.Access(1, 0, false)
	s.Access(0, 0, true) // upgrade
	if s.caches[0].peek(0) != Modified {
		t.Fatalf("writer state %v, want M", s.caches[0].peek(0))
	}
	if s.caches[1].peek(0) != Invalid {
		t.Fatalf("sharer not invalidated: %v", s.caches[1].peek(0))
	}
	if up := s.Stats().Procs[0].Upgrades; up != 1 {
		t.Fatalf("upgrades=%d, want 1", up)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrueSharingMiss(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(1, 0, false) // P1 reads word 0
	s.Access(0, 0, true)  // P0 writes word 0 → invalidates P1
	hit, kind := s.Access(1, 0, false)
	if hit || kind != MissTrue {
		t.Fatalf("re-read of remotely written word: hit=%v kind=%v, want true-sharing miss", hit, kind)
	}
}

func TestFalseSharingMiss(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(1, 8, false) // P1 reads word 1 of line 0
	s.Access(0, 0, true)  // P0 writes word 0 → invalidates P1's line
	hit, kind := s.Access(1, 8, false)
	if hit || kind != MissFalse {
		t.Fatalf("re-read of unmodified word on invalidated line: kind=%v, want false-sharing", kind)
	}
}

func TestCapacityMiss(t *testing.T) {
	// Direct-mapped, 4 lines: lines 0 and 4 conflict.
	s := testSys(t, 256, 1)
	s.Access(0, addrOfLine(0), false)
	s.Access(0, addrOfLine(4), false) // evicts line 0
	hit, kind := s.Access(0, addrOfLine(0), false)
	if hit || kind != MissCapacity {
		t.Fatalf("refetch after eviction: kind=%v, want capacity", kind)
	}
}

func TestEvictedThenRemotelyWrittenIsTrueSharing(t *testing.T) {
	// True sharing is capacity-independent (§6): if the word was written by
	// another processor after we lost the line — even by eviction — the
	// refetch is inherent communication.
	s := testSys(t, 256, 1)
	s.Access(0, addrOfLine(0), false)
	s.Access(0, addrOfLine(4), false) // evict line 0 from P0
	s.Access(1, addrOfLine(0), true)  // P1 writes the word P0 read
	hit, kind := s.Access(0, addrOfLine(0), false)
	if hit || kind != MissTrue {
		t.Fatalf("kind=%v, want true-sharing", kind)
	}
}

func TestDirtyRemoteFetchSharingWriteback(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(0, 0, true) // P0: M
	before := s.Stats().Traffic
	s.Access(1, 0, false) // P1 read miss, dirty at P0
	after := s.Stats().Traffic
	if s.caches[0].peek(0) != Shared || s.caches[1].peek(0) != Shared {
		t.Fatalf("states after dirty read: %v %v", s.caches[0].peek(0), s.caches[1].peek(0))
	}
	// Data crossed P0→P1 (remote shared or cold) plus sharing writeback to home.
	if after.Remote() <= before.Remote() {
		t.Fatal("dirty remote fetch generated no remote traffic")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMissMigratesOwnership(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(0, 0, true)
	s.Access(1, 0, true) // write miss, dirty at P0
	if s.caches[0].peek(0) != Invalid || s.caches[1].peek(0) != Modified {
		t.Fatalf("states: %v %v, want I M", s.caches[0].peek(0), s.caches[1].peek(0))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	s := testSys(t, 256, 1) // 4 lines direct-mapped
	// Line 0's home is proc 0; run on proc 1 so the writeback is remote.
	s.Access(1, addrOfLine(0), true)
	before := s.Stats().Traffic.RemoteWriteback
	s.Access(1, addrOfLine(4), false) // evicts dirty line 0, home=0 remote
	after := s.Stats().Traffic.RemoteWriteback
	if after != before+64 {
		t.Fatalf("remote writeback bytes: %d → %d, want +64", before, after)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalVsRemoteData(t *testing.T) {
	s := testSys(t, 1024, 2)
	// Line 0 homes at proc 0: local fill.
	s.Access(0, addrOfLine(0), false)
	tr := s.Stats().Traffic
	if tr.LocalData != 64 || tr.Remote() != 0 {
		t.Fatalf("local fill: %+v", tr)
	}
	// Line 1 homes at proc 1: remote fill by proc 0 = request + data + header.
	s.Access(0, addrOfLine(1), false)
	tr = s.Stats().Traffic
	if tr.RemoteCold != 64 {
		t.Fatalf("remote cold data = %d, want 64", tr.RemoteCold)
	}
	if tr.RemoteOverhead != 16 { // request 8 + data header 8
		t.Fatalf("remote overhead = %d, want 16", tr.RemoteOverhead)
	}
}

func TestTrueSharingTrafficMetric(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(1, 0, false)
	s.Access(0, 0, true)
	s.Access(1, 0, false) // true-sharing miss: 64B data
	if got := s.Stats().Traffic.TrueSharingData; got != 64 {
		t.Fatalf("true sharing data = %d, want 64", got)
	}
}

func TestReplacementHintKeepsDirectoryExact(t *testing.T) {
	s := testSys(t, 256, 1)
	s.Access(0, addrOfLine(1), false) // shared line homed remotely
	s.Access(1, addrOfLine(1), false)
	s.Access(0, addrOfLine(5), false) // evicts line 1 from P0 (hint)
	if d := s.dir[1]; d.sharers != 1<<1 {
		t.Fatalf("directory sharers after hint: %b, want only P1", d.sharers)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResetStatsKeepsCachesWarm(t *testing.T) {
	s := testSys(t, 1024, 2)
	s.Access(0, 0, false)
	s.ResetStats()
	st := s.Stats()
	if st.Procs[0].Reads != 0 || st.Traffic.Total() != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	hit, _ := s.Access(0, 0, false)
	if !hit {
		t.Fatal("cache went cold across ResetStats")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Procs: -1},
		{Procs: 65, CacheSize: 1024, LineSize: 64, OverheadBytes: 8},
		{Procs: 2, CacheSize: 1000, LineSize: 64, OverheadBytes: 8},
		{Procs: 2, CacheSize: 1024, LineSize: 48, OverheadBytes: 8},
		{Procs: 2, CacheSize: 1024, LineSize: 64, Assoc: 3, OverheadBytes: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not: %+v", i, c)
		}
	}
	if _, err := New(Config{Procs: 2}, nil); err == nil {
		t.Error("nil HomeFn accepted")
	}
}

// Property: after any random access trace the protocol invariants hold —
// at most one E/M copy per line, directory sharer sets match cache
// contents, owner pointer consistent.
func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(seed int64, assocSel, sizeSel uint8) bool {
		assocs := []int{1, 2, 4, FullyAssoc}
		sizes := []int{256, 512, 1024}
		s, err := New(Config{
			Procs:     4,
			CacheSize: sizes[int(sizeSel)%len(sizes)],
			Assoc:     assocs[int(assocSel)%len(assocs)],
			LineSize:  64, OverheadBytes: 8,
		}, func(line uint64) int { return int(line % 4) })
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			p := rng.Intn(4)
			a := Addr(rng.Intn(64*32)) &^ 7
			s.Access(p, a, rng.Intn(3) == 0)
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every reference is either a hit or exactly one miss kind, and
// per-proc reads+writes equals issued references.
func TestAccountingConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, err := New(Config{Procs: 4, CacheSize: 512, Assoc: 2, LineSize: 64, OverheadBytes: 8},
			func(line uint64) int { return int(line % 4) })
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		issued := make([]uint64, 4)
		misses := uint64(0)
		for i := 0; i < 1500; i++ {
			p := rng.Intn(4)
			a := Addr(rng.Intn(64*64)) &^ 7
			hit, _ := s.Access(p, a, rng.Intn(2) == 0)
			issued[p]++
			if !hit {
				misses++
			}
		}
		st := s.Stats()
		var total uint64
		for p := range issued {
			if st.Procs[p].Refs() != issued[p] {
				return false
			}
			total += st.Procs[p].TotalMisses()
		}
		return total == misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a single processor no sharing misses or remote sharing
// traffic can ever occur.
func TestUniprocessorHasNoSharingProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, err := New(Config{Procs: 1, CacheSize: 512, Assoc: 2, LineSize: 64, OverheadBytes: 8},
			func(line uint64) int { return 0 })
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			s.Access(0, Addr(rng.Intn(64*64))&^7, rng.Intn(2) == 0)
		}
		st := s.Stats()
		return st.Procs[0].Misses[MissTrue] == 0 &&
			st.Procs[0].Misses[MissFalse] == 0 &&
			st.Traffic.Remote() == 0 &&
			st.Traffic.TrueSharingData == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss rate is monotonically non-increasing in cache size for a
// fully associative cache replaying the same single-processor trace
// (inclusion property of LRU).
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Addr, 3000)
		for i := range trace {
			trace[i] = Addr(rng.Intn(64*128)) &^ 7
		}
		var prev uint64 = ^uint64(0)
		for _, size := range []int{512, 1024, 2048, 4096} {
			s, err := New(Config{Procs: 1, CacheSize: size, Assoc: FullyAssoc, LineSize: 64, OverheadBytes: 8},
				func(line uint64) int { return 0 })
			if err != nil {
				return false
			}
			for _, a := range trace {
				s.Access(0, a, false)
			}
			m := s.Stats().Procs[0].TotalMisses()
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMissKindStrings(t *testing.T) {
	want := map[MissKind]string{MissCold: "cold", MissTrue: "true-sharing", MissFalse: "false-sharing", MissCapacity: "capacity", numMissKinds: "unknown"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String()=%q want %q", k, k.String(), w)
		}
	}
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" || LineState(9).String() != "?" {
		t.Error("LineState strings wrong")
	}
}
