// Package fault is a deterministic, rule-based fault injector for the
// experiment scheduler and its I/O paths. The chaos test-suite and the
// -fault CLI flags use it to prove the fault-tolerance invariant: injected
// faults may fail individual experiments, but they never change the
// numeric results of the experiments that survive.
//
// An Injector holds an ordered list of Rules. Code under test calls it at
// named injection points ("job:<label>", "cache.get:<key>",
// "cache.put:<key>", "trace.read", "trace.read.footer",
// "trace.read.block:<i>", "lease.acquire:<key>", "journal.append",
// "sample.estimate:<app>"):
// Do evaluates the error/panic/delay rules for an operation, Data and
// Reader apply short-read truncation to bytes and streams. Every firing
// is logged, so tests can assert that a run's failure manifest lists
// exactly the injected operations.
//
// Determinism: rules fire by occurrence count (Rule.Nth), and the only
// randomness is the seed-derived choice of occurrence for Nth < 0 rules —
// the same seed and rule set always picks the same occurrences. Under a
// parallel scheduler the Nth matching operation can differ between runs
// (scheduling order), which is exactly the point: the Fired log records
// what actually happened, and the invariants must hold regardless.
package fault

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Action selects what a firing rule does to the operation.
type Action int

const (
	// Error makes the operation return an injected error.
	Error Action = iota
	// Panic makes the operation panic.
	Panic
	// Delay stalls the operation for Rule.Delay, then lets it proceed.
	Delay
	// ShortRead truncates the operation's data to Rule.Keep bytes.
	ShortRead
	// Crash hard-kills the process at the operation — the injected
	// equivalent of kill -9: no deferred functions, no cleanup, no
	// flushes. The kill-9 chaos suite re-execs a real binary with a
	// crash rule and asserts that a restart against the same cache
	// directory recovers completely.
	Crash
)

// String names the action (progress output, firing logs).
func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case ShortRead:
		return "shortread"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Rule describes one injection: which operations it matches and what it
// does to them.
type Rule struct {
	// Pattern is a wildcard pattern over operation names, e.g.
	// "job:run fft*" or "cache.get:*": '*' matches any substring
	// (including '/' — job labels contain cache shapes like
	// "1024K/4-way/64B"), every other byte matches literally.
	Pattern string
	// Action is what happens when the rule fires.
	Action Action
	// Nth selects the matching occurrence that fires: n > 0 fires on the
	// nth match only, 0 fires on every match, and -k fires on one
	// seed-chosen occurrence within the first k matches.
	Nth int
	// Transient marks injected errors as retryable: the scheduler's
	// retry-with-backoff policy applies to them.
	Transient bool
	// Delay is the stall applied by Delay rules.
	Delay time.Duration
	// Keep is the byte count ShortRead rules truncate to.
	Keep int
}

// InjectedError is the error returned by a firing Error rule.
type InjectedError struct {
	// Op is the operation the error was injected at.
	Op string
	// IsTransient mirrors Rule.Transient.
	IsTransient bool
}

// Error describes the injection.
func (e *InjectedError) Error() string {
	if e.IsTransient {
		return fmt.Sprintf("injected transient fault at %s", e.Op)
	}
	return fmt.Sprintf("injected fault at %s", e.Op)
}

// Transient reports whether the scheduler should retry the operation (the
// runner detects this method without importing this package).
func (e *InjectedError) Transient() bool { return e.IsTransient }

// Firing records one rule application.
type Firing struct {
	// Op is the operation the rule fired at.
	Op string `json:"op"`
	// Rule is the index of the firing rule.
	Rule int `json:"rule"`
	// Action is the applied action.
	Action Action `json:"action"`
}

// Injector evaluates rules at injection points. All methods are safe for
// concurrent use and safe on a nil receiver (every call is a no-op), so
// fault hooks cost one nil check when injection is disabled.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules []Rule
	nth   []int // resolved occurrence per rule (Nth < 0 becomes seed-chosen)
	count []int // matching occurrences seen per rule
	fired []Firing
}

// New builds an injector from a seed and rules. The seed only matters for
// rules with Nth < 0, whose firing occurrence it chooses.
func New(seed int64, rules ...Rule) *Injector {
	inj := &Injector{
		seed:  seed,
		rules: append([]Rule(nil), rules...),
		nth:   make([]int, len(rules)),
		count: make([]int, len(rules)),
	}
	for i, ru := range rules {
		n := ru.Nth
		if n < 0 {
			n = 1 + int(splitmix64(uint64(seed)+0x9e3779b97f4a7c15*uint64(i+1))%uint64(-n))
		}
		inj.nth[i] = n
	}
	return inj
}

// match reports whether pattern matches op: '*' matches any substring
// (unlike path.Match it crosses '/', which job labels contain), all
// other bytes match literally. Greedy segment scan: the pieces between
// stars must appear in order, the first anchored at the start and the
// last at the end.
func match(pattern, op string) bool {
	segs := strings.Split(pattern, "*")
	if len(segs) == 1 {
		return pattern == op
	}
	if !strings.HasPrefix(op, segs[0]) {
		return false
	}
	op = op[len(segs[0]):]
	last := segs[len(segs)-1]
	for _, seg := range segs[1 : len(segs)-1] {
		i := strings.Index(op, seg)
		if i < 0 {
			return false
		}
		op = op[i+len(seg):]
	}
	return strings.HasSuffix(op, last)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash used
// to derive per-rule occurrences from the seed.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Fired returns a snapshot of every rule application so far.
func (i *Injector) Fired() []Firing {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Firing(nil), i.fired...)
}

// evaluate advances occurrence counters for every rule matching op whose
// action satisfies pred and returns the rules that fire.
func (i *Injector) evaluate(op string, pred func(Action) bool) []Rule {
	var out []Rule
	i.mu.Lock()
	defer i.mu.Unlock()
	for idx := range i.rules {
		ru := i.rules[idx]
		if !pred(ru.Action) {
			continue
		}
		if !match(ru.Pattern, op) {
			continue
		}
		i.count[idx]++
		if i.nth[idx] != 0 && i.count[idx] != i.nth[idx] {
			continue
		}
		i.fired = append(i.fired, Firing{Op: op, Rule: idx, Action: ru.Action})
		out = append(out, ru)
	}
	return out
}

// Do evaluates the Error, Panic, Delay and Crash rules for op: firing
// Delay rules stall (honouring ctx), a firing Crash rule hard-kills the
// process, a firing Panic rule panics, and a firing Error rule returns
// an *InjectedError. Callers place Do where a real fault could strike —
// the start of a job, a cache read, a file open.
func (i *Injector) Do(ctx context.Context, op string) error {
	if i == nil {
		return nil
	}
	fired := i.evaluate(op, func(a Action) bool { return a != ShortRead })
	var delay time.Duration
	doPanic := false
	doCrash := false
	var errRule *Rule
	for idx := range fired {
		switch ru := fired[idx]; ru.Action {
		case Delay:
			if ru.Delay > delay {
				delay = ru.Delay
			}
		case Panic:
			doPanic = true
		case Crash:
			doCrash = true
		case Error:
			if errRule == nil {
				errRule = &fired[idx]
			}
		}
	}
	if doCrash {
		crashProcess(op)
	}
	if delay > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if doPanic {
		panic(fmt.Sprintf("fault: injected panic at %s (seed %d)", op, i.seed))
	}
	if errRule != nil {
		return &InjectedError{Op: op, IsTransient: errRule.Transient}
	}
	return nil
}

// shortRead evaluates the ShortRead rules for op, returning the smallest
// byte count to keep and whether any rule fired.
func (i *Injector) shortRead(op string) (keep int, fired bool) {
	rules := i.evaluate(op, func(a Action) bool { return a == ShortRead })
	for _, ru := range rules {
		if !fired || ru.Keep < keep {
			keep, fired = ru.Keep, true
		}
	}
	return keep, fired
}

// Data applies the ShortRead rules for op to in-memory bytes (cache
// entries), truncating to the rule's Keep length when one fires.
func (i *Injector) Data(op string, data []byte) []byte {
	if i == nil {
		return data
	}
	if keep, ok := i.shortRead(op); ok && keep < len(data) {
		return data[:keep]
	}
	return data
}

// Reader wraps r so that a firing ShortRead rule truncates the stream
// after Keep bytes (trace files). The rules are evaluated once, at wrap
// time.
func (i *Injector) Reader(op string, r io.Reader) io.Reader {
	if i == nil {
		return r
	}
	if keep, ok := i.shortRead(op); ok {
		return io.LimitReader(r, int64(keep))
	}
	return r
}

// Parse builds rules from a compact spec — the -fault CLI syntax:
//
//	spec  = rule *(";" rule)
//	rule  = action ["(" arg ")"] ["@" nth] "=" pattern
//
// Actions: "error", "terror" (transient error), "panic", "delay" (arg:
// duration), "shortread" (arg: bytes to keep) and "crash" (hard process
// kill — see Crash). nth follows Rule.Nth.
// Example: "error=job:run fft*;delay(50ms)@2=job:wsweep*".
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, pattern, ok := strings.Cut(part, "=")
		if !ok || pattern == "" {
			return nil, fmt.Errorf("fault: rule %q: want action[(arg)][@nth]=pattern", part)
		}
		ru := Rule{Pattern: pattern}
		action, nthStr, hasNth := strings.Cut(head, "@")
		if hasNth {
			n, err := strconv.Atoi(nthStr)
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad occurrence %q", part, nthStr)
			}
			ru.Nth = n
		}
		var arg string
		if open := strings.Index(action, "("); open >= 0 {
			cl := strings.LastIndex(action, ")")
			if cl < open {
				return nil, fmt.Errorf("fault: rule %q: unbalanced parentheses", part)
			}
			arg = action[open+1 : cl]
			action = action[:open]
		}
		switch action {
		case "error":
			ru.Action = Error
		case "terror":
			ru.Action = Error
			ru.Transient = true
		case "panic":
			ru.Action = Panic
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad delay %q", part, arg)
			}
			ru.Action = Delay
			ru.Delay = d
		case "shortread":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: rule %q: bad byte count %q", part, arg)
			}
			ru.Action = ShortRead
			ru.Keep = n
		case "crash":
			ru.Action = Crash
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown action %q", part, action)
		}
		rules = append(rules, ru)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty rule spec")
	}
	return rules, nil
}
