package fault

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Do(context.Background(), "job:x"); err != nil {
		t.Fatal(err)
	}
	if got := inj.Data("cache.get:x", []byte("abc")); string(got) != "abc" {
		t.Fatalf("nil Data altered bytes: %q", got)
	}
	r := strings.NewReader("abc")
	if inj.Reader("trace.read", r) != io.Reader(r) {
		t.Fatal("nil Reader wrapped the stream")
	}
	if inj.Fired() != nil {
		t.Fatal("nil Fired not empty")
	}
}

func TestErrorRuleNthOccurrence(t *testing.T) {
	inj := New(1, Rule{Pattern: "job:run *", Action: Error, Nth: 2})
	ctx := context.Background()
	if err := inj.Do(ctx, "job:run fft"); err != nil {
		t.Fatalf("first occurrence fired: %v", err)
	}
	err := inj.Do(ctx, "job:run lu")
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("second occurrence did not fire: %v", err)
	}
	if ie.Transient() {
		t.Fatal("non-transient rule produced transient error")
	}
	if err := inj.Do(ctx, "job:run fft"); err != nil {
		t.Fatalf("third occurrence fired: %v", err)
	}
	if err := inj.Do(ctx, "job:record fft"); err != nil {
		t.Fatalf("non-matching op fired: %v", err)
	}
	fired := inj.Fired()
	if len(fired) != 1 || fired[0].Op != "job:run lu" || fired[0].Action != Error {
		t.Fatalf("fired log = %+v", fired)
	}
}

func TestEveryOccurrenceAndTransient(t *testing.T) {
	inj := New(1, Rule{Pattern: "job:x", Action: Error, Transient: true})
	for i := 0; i < 3; i++ {
		err := inj.Do(context.Background(), "job:x")
		var ie *InjectedError
		if !errors.As(err, &ie) || !ie.Transient() {
			t.Fatalf("occurrence %d: %v", i, err)
		}
	}
	if len(inj.Fired()) != 3 {
		t.Fatalf("fired %d times, want 3", len(inj.Fired()))
	}
}

func TestPanicRule(t *testing.T) {
	inj := New(7, Rule{Pattern: "job:boom", Action: Panic})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "job:boom") {
			t.Fatalf("panic value %v", p)
		}
	}()
	inj.Do(context.Background(), "job:boom")
}

func TestDelayRuleHonoursContext(t *testing.T) {
	inj := New(1, Rule{Pattern: "job:slow", Action: Delay, Delay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Do(ctx, "job:slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored context")
	}
}

func TestShortReadDataAndReader(t *testing.T) {
	inj := New(1,
		Rule{Pattern: "cache.get:*", Action: ShortRead, Keep: 2},
		Rule{Pattern: "trace.read", Action: ShortRead, Keep: 3})
	if got := inj.Data("cache.get:abcd", []byte("hello")); string(got) != "he" {
		t.Fatalf("Data = %q", got)
	}
	// Error/panic evaluation must not consume ShortRead occurrences.
	if err := inj.Do(context.Background(), "cache.get:abcd"); err != nil {
		t.Fatal(err)
	}
	r := inj.Reader("trace.read", strings.NewReader("hello"))
	b, _ := io.ReadAll(r)
	if string(b) != "hel" {
		t.Fatalf("Reader = %q", b)
	}
}

func TestSeededOccurrenceIsDeterministic(t *testing.T) {
	pick := func(seed int64) []int {
		inj := New(seed,
			Rule{Pattern: "op", Action: Error, Nth: -5},
			Rule{Pattern: "op2", Action: Error, Nth: -5})
		return append([]int(nil), inj.nth...)
	}
	a, b := pick(42), pick(42)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed chose different occurrences: %v vs %v", a, b)
	}
	for _, n := range a {
		if n < 1 || n > 5 {
			t.Fatalf("occurrence %d out of range [1,5]", n)
		}
	}
	// Different seeds eventually choose different occurrences.
	diverged := false
	for seed := int64(0); seed < 32 && !diverged; seed++ {
		c := pick(seed)
		diverged = c[0] != a[0] || c[1] != a[1]
	}
	if !diverged {
		t.Fatal("32 seeds all chose identical occurrences")
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("error=job:run fft*; terror@2=cache.get:*;panic=job:boom;delay(50ms)@-4=job:slow*;shortread(16)=trace.read")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Pattern: "job:run fft*", Action: Error},
		{Pattern: "cache.get:*", Action: Error, Transient: true, Nth: 2},
		{Pattern: "job:boom", Action: Panic},
		{Pattern: "job:slow*", Action: Delay, Delay: 50 * time.Millisecond, Nth: -4},
		{Pattern: "trace.read", Action: ShortRead, Keep: 16},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}

	for _, bad := range []string{"", "error", "bogus=x", "delay=x", "delay(zzz)=x", "shortread(-1)=x", "error@x=y"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestReaderPassThroughWithoutRule(t *testing.T) {
	inj := New(1, Rule{Pattern: "other", Action: ShortRead, Keep: 1})
	var buf bytes.Buffer
	buf.WriteString("payload")
	b, _ := io.ReadAll(inj.Reader("trace.read", &buf))
	if string(b) != "payload" {
		t.Fatalf("non-matching Reader truncated: %q", b)
	}
}

// TestMatchCrossesSlashes: '*' must match any substring, including the
// '/' bytes in run-job labels like "cache=1024K/4-way/64B" (path.Match
// semantics would silently never fire on those).
func TestMatchCrossesSlashes(t *testing.T) {
	cases := []struct {
		pattern, op string
		want        bool
	}{
		{"job:run *", "job:run fft p=4 cache=1024K/4-way/64B model=0", true},
		{"job:*", "job:replay trace 16K/4-way/64B", true},
		{"job:*4-way*", "job:replay trace 16K/4-way/64B", true},
		{"job:run *", "job:record fft p=4", false},
		{"job:run fft*model=0", "job:run fft p=4 cache=1024K/4-way/64B model=0", true},
		{"job:run fft*model=1", "job:run fft p=4 cache=1024K/4-way/64B model=0", false},
		{"*", "anything at all", true},
		{"job:x", "job:x", true},
		{"job:x", "job:xy", false},
	}
	for _, c := range cases {
		inj := New(1, Rule{Pattern: c.pattern, Action: Error})
		err := inj.Do(context.Background(), c.op)
		if got := err != nil; got != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.pattern, c.op, got, c.want)
		}
	}
}
