package fault

import (
	"fmt"
	"os"
)

// crashProcess is how a firing Crash rule kills the process. It is a
// variable so unit tests can observe the crash without dying; everything
// else gets the real thing: SIGKILL-equivalent termination with no
// deferred functions, no flushes, no atexit — the closest a process can
// come to being kill -9'd by an operator.
var crashProcess = func(op string) {
	// A note on stderr is best-effort and unbuffered; the chaos harness
	// uses it to confirm the death was the injected one.
	fmt.Fprintf(os.Stderr, "fault: injected crash at %s\n", op)
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		p.Kill() // SIGKILL on unix: no handlers, no cleanup
	}
	// Kill is asynchronous (and a no-op on some platforms for self);
	// make death certain. 137 = 128+SIGKILL, matching the signal path.
	os.Exit(137)
}
