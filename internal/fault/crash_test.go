package fault

import (
	"context"
	"testing"
)

// TestCrashRuleFires swaps the process killer for a recorder and checks
// that a Crash rule fires exactly at its selected occurrence — the
// kill -9 chaos harness depends on that precision to place crashes.
func TestCrashRuleFires(t *testing.T) {
	saved := crashProcess
	defer func() { crashProcess = saved }()
	var crashedAt []string
	crashProcess = func(op string) { crashedAt = append(crashedAt, op) }

	inj := New(1, Rule{Pattern: "cache.put:*", Action: Crash, Nth: 2})
	ctx := context.Background()
	inj.Do(ctx, "cache.put:aa")
	inj.Do(ctx, "cache.get:aa") // non-matching op
	inj.Do(ctx, "cache.put:bb") // second match: the crash
	inj.Do(ctx, "cache.put:cc")

	if len(crashedAt) != 1 || crashedAt[0] != "cache.put:bb" {
		t.Fatalf("crashed at %v, want exactly [cache.put:bb]", crashedAt)
	}
	fired := inj.Fired()
	if len(fired) != 1 || fired[0].Action != Crash {
		t.Fatalf("fired log = %+v, want one Crash firing", fired)
	}
}

// TestCrashSpecParses: the chaos harness builds crash rules from the
// -fault flag syntax; they must round-trip through Parse.
func TestCrashSpecParses(t *testing.T) {
	rules, err := Parse("crash@1=lease.acquire:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Action != Crash || rules[0].Nth != 1 ||
		rules[0].Pattern != "lease.acquire:*" {
		t.Fatalf("parsed rules = %+v", rules)
	}
	if rules[0].Action.String() != "crash" {
		t.Fatalf("Action.String() = %q, want crash", rules[0].Action.String())
	}
}
