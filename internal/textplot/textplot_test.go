package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	var buf bytes.Buffer
	LineChart(&buf, "speedup", []string{"1", "2", "4", "8"}, []Series{
		{Name: "fft", Values: []float64{1, 2, 4, 8}},
		{Name: "lu", Values: []float64{1, 1.8, 3, 4.4}},
	}, 40, 10)
	out := buf.String()
	for _, want := range []string{"speedup", "* fft", "o lu", "8", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + height rows + axis + labels + legend.
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestLineChartMonotoneSeriesTopRight(t *testing.T) {
	var buf bytes.Buffer
	LineChart(&buf, "t", []string{"a", "b", "c"}, []Series{
		{Name: "up", Values: []float64{0, 5, 10}},
	}, 30, 8)
	lines := strings.Split(buf.String(), "\n")
	top := lines[1]
	bottom := lines[8]
	if !strings.Contains(top, "*") {
		t.Fatalf("max value not on top row: %q", top)
	}
	if !strings.HasPrefix(strings.TrimLeft(bottom[strings.Index(bottom, "|")+1:], " "), "") && !strings.Contains(bottom, "*") {
		t.Fatalf("min value not on bottom row: %q", bottom)
	}
}

func TestLineChartDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	LineChart(&buf, "t", nil, []Series{{Name: "x", Values: []float64{1}}}, 40, 10)
	LineChart(&buf, "t", []string{"a"}, nil, 40, 10)
	LineChart(&buf, "t", []string{"a"}, []Series{{Name: "x", Values: []float64{1}}}, 2, 1)
	if buf.Len() != 0 {
		t.Fatal("degenerate inputs produced output")
	}
	// Constant series must not divide by zero.
	LineChart(&buf, "t", []string{"a", "b"}, []Series{{Name: "x", Values: []float64{0, 0}}}, 20, 5)
	if buf.Len() == 0 {
		t.Fatal("constant series produced no output")
	}
}

func TestStackedBars(t *testing.T) {
	var buf bytes.Buffer
	StackedBars(&buf, "traffic", []string{"fft", "lu"}, [][]Segment{
		{{Label: "remote", Value: 2}, {Label: "local", Value: 1}},
		{{Label: "remote", Value: 0.5}, {Label: "local", Value: 0.2}},
	}, 30)
	out := buf.String()
	for _, want := range []string{"traffic", "fft", "lu", "# remote", "= local", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bars missing %q:\n%s", want, out)
		}
	}
	// The larger row must use more filled cells.
	lines := strings.Split(out, "\n")
	fill := func(s string) int { return strings.Count(s, "#") + strings.Count(s, "=") }
	if fill(lines[1]) <= fill(lines[2]) {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
}

func TestStackedBarsDegenerate(t *testing.T) {
	var buf bytes.Buffer
	StackedBars(&buf, "t", nil, nil, 30)
	StackedBars(&buf, "t", []string{"a"}, [][]Segment{{}, {}}, 30) // length mismatch
	if buf.Len() != 0 {
		t.Fatal("degenerate inputs produced output")
	}
	StackedBars(&buf, "t", []string{"a"}, [][]Segment{{{Label: "x", Value: 0}}}, 30)
	if buf.Len() == 0 {
		t.Fatal("all-zero bars produced no output")
	}
}
