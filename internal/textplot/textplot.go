// Package textplot renders the characterization results as terminal
// charts — line charts for the miss-rate and speedup figures and stacked
// horizontal bars for the traffic breakdowns — standing in for the
// paper's figures (and for its online interactive graphing tool).
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// markers distinguish overlapping series in a line chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~', '^', '='}

// LineChart draws series against shared x labels on a character grid.
// Heights and widths are in character cells; the y axis is linear from 0
// (or the data minimum, if negative) to the data maximum.
func LineChart(w io.Writer, title string, xLabels []string, series []Series, width, height int) {
	if len(series) == 0 || len(xLabels) == 0 || width < 8 || height < 3 {
		return
	}
	minV, maxV := 0.0, math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
			if v < minV {
				minV = v
			}
		}
	}
	if maxV <= minV {
		maxV = minV + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	cell := func(v float64) int {
		frac := (v - minV) / (maxV - minV)
		row := int(math.Round(frac * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return height - 1 - row
	}
	xpos := func(i int) int {
		if len(xLabels) == 1 {
			return 0
		}
		return i * (width - 1) / (len(xLabels) - 1)
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		prevR, prevC := -1, -1
		for i, v := range s.Values {
			if i >= len(xLabels) {
				break
			}
			r, c := cell(v), xpos(i)
			if prevC >= 0 {
				drawSegment(grid, prevR, prevC, r, c, '.')
			}
			grid[r][c] = m
			prevR, prevC = r, c
		}
	}

	fmt.Fprintln(w, title)
	yTop := fmt.Sprintf("%.3g", maxV)
	yBot := fmt.Sprintf("%.3g", minV)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	// X labels: first, middle, last.
	xl := make([]byte, width)
	for i := range xl {
		xl[i] = ' '
	}
	place := func(i int) {
		lbl := xLabels[i]
		c := xpos(i)
		if c+len(lbl) > width {
			c = width - len(lbl)
		}
		copy(xl[c:], lbl)
	}
	place(0)
	if len(xLabels) > 2 {
		place(len(xLabels) / 2)
	}
	if len(xLabels) > 1 {
		place(len(xLabels) - 1)
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", pad), string(xl))
	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", pad), strings.Join(legend, "   "))
}

// drawSegment connects two cells with a light trail (never overwriting
// markers already placed).
func drawSegment(grid [][]byte, r0, c0, r1, c1 int, ch byte) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		r := r0 + (r1-r0)*s/steps
		c := c0 + (c1-c0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		}
	}
}

// Segment is one component of a stacked bar.
type Segment struct {
	Label string
	Value float64
}

// barGlyphs fills stacked bars, one glyph per segment position.
var barGlyphs = []byte{'#', '=', ':', '+', 'o', '.', '~'}

// StackedBars draws horizontal stacked bars, one per row, sharing a scale.
func StackedBars(w io.Writer, title string, rows []string, segments [][]Segment, width int) {
	if len(rows) == 0 || len(rows) != len(segments) || width < 10 {
		return
	}
	var maxTotal float64
	for _, segs := range segments {
		total := 0.0
		for _, s := range segs {
			total += s.Value
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	rowPad := 0
	for _, r := range rows {
		if len(r) > rowPad {
			rowPad = len(r)
		}
	}
	fmt.Fprintln(w, title)
	for i, segs := range segments {
		var bar strings.Builder
		total := 0.0
		for si, s := range segs {
			cells := int(math.Round(s.Value / maxTotal * float64(width)))
			bar.Write(bytesRepeat(barGlyphs[si%len(barGlyphs)], cells))
			total += s.Value
		}
		fmt.Fprintf(w, "%-*s |%-*s| %.3g\n", rowPad, rows[i], width, bar.String(), total)
	}
	// Legend from the first row's labels.
	var legend []string
	for si, s := range segments[0] {
		legend = append(legend, fmt.Sprintf("%c %s", barGlyphs[si%len(barGlyphs)], s.Label))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", rowPad), strings.Join(legend, "  "))
}

func bytesRepeat(b byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
