package analysis

// The durability check: the error results of the operations crash
// safety rests on must be consulted on every path. PR 8's contract is
// "store-before-release" and "cache hits are the resume": an ignored
// error from an atomic rename, a writable-file Close, a Cache.Put, a
// journal close or a lease operation turns a recoverable failure into
// silent cache/journal corruption that only surfaces as a wrong resume
// much later. Unlike a syntactic errcheck, this one is flow-sensitive:
//
//   - it knows which *os.File variables are WRITABLE (assigned from
//     os.Create/os.CreateTemp, or os.OpenFile with a writing flag) —
//     Close on a read-only file cannot lose data and is not flagged;
//   - an error assigned to a variable may be checked later on every
//     path; only a path that reaches the function exit (or overwrites
//     the variable) without consulting it is reported;
//   - `defer f.Close()` on a writable file is reported unless the
//     function also has an explicit, non-deferred Close of the same
//     file whose error is handled (the close-twice idiom: checked
//     Close on the success path, deferred Close as cleanup).
//
// Monitored operations: os.Rename; Close on writable *os.File values;
// and the internal/runner durability surface (Cache.Put, Journal.Close,
// MarkResumed, and any Release/Heartbeat/Append-named method with an
// error result).

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// durFact is the flow fact: the set of writable-file variables and the
// set of pending (assigned but not yet consulted) monitored errors,
// each keyed by variable identity and carrying the position and
// description of the operation that produced it.
type durFact struct {
	wfiles  stringSet
	pending map[string]durPending
}

type durPending struct {
	pos  token.Pos
	desc string
}

func durEqual(a, b durFact) bool {
	if !a.wfiles.equal(b.wfiles) || len(a.pending) != len(b.pending) {
		return false
	}
	for k, v := range a.pending {
		if w, ok := b.pending[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func durJoin(a, b durFact) durFact {
	out := durFact{wfiles: a.wfiles.union(b.wfiles), pending: a.pending}
	for k, v := range b.pending {
		if w, ok := out.pending[k]; !ok || v.pos < w.pos {
			out = out.withPending(k, v)
		}
	}
	return out
}

func (f durFact) withPending(k string, v durPending) durFact {
	out := make(map[string]durPending, len(f.pending)+1)
	for k2, v2 := range f.pending {
		out[k2] = v2
	}
	out[k] = v
	return durFact{wfiles: f.wfiles, pending: out}
}

func (f durFact) withoutPending(k string) durFact {
	if _, ok := f.pending[k]; !ok {
		return f
	}
	out := make(map[string]durPending, len(f.pending))
	for k2, v2 := range f.pending {
		if k2 != k {
			out[k2] = v2
		}
	}
	return durFact{wfiles: f.wfiles, pending: out}
}

func objKey(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// runnerMonitoredMethods are the internal/runner durability surface, by
// lowercased name; matched only when the callee has an error result.
var runnerMonitoredMethods = map[string]bool{
	"put": true, "close": true, "markresumed": true,
	"release": true, "heartbeat": true, "append": true,
}

// monitoredCall classifies a call whose error result must be consulted.
// Close-on-*os.File is writability-dependent and resolved against the
// fact by the caller; for those, fileRecv is the receiver identity.
func monitoredCall(info *types.Info, call *ast.CallExpr) (desc string, fileRecv string, ok bool) {
	fn, sig := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || sig == nil {
		return "", "", false
	}
	// The callee must return an error (by convention the last result).
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return "", "", false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "os" && fn.Name() == "Rename":
		return "os.Rename", "", true
	case fn.Name() == "Close" && sig.Recv() != nil && isOSFileType(sig.Recv().Type()):
		sel, okSel := call.Fun.(*ast.SelectorExpr)
		if !okSel {
			return "", "", false
		}
		id, okID := sel.X.(*ast.Ident)
		if !okID {
			return "", "", false
		}
		obj := info.Uses[id]
		if obj == nil {
			return "", "", false
		}
		return "Close of writable file " + id.Name, objKey(obj), true
	case strings.HasSuffix(path, "internal/runner") && runnerMonitoredMethods[strings.ToLower(fn.Name())]:
		recv := "runner"
		if sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, okp := t.(*types.Pointer); okp {
				t = p.Elem()
			}
			if named, okn := t.(*types.Named); okn {
				recv = named.Obj().Name()
			}
		}
		return recv + "." + fn.Name(), "", true
	}
	return "", "", false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isOSFileType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "File" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os"
}

// writableFileSource reports whether call opens a file for writing:
// os.Create, os.CreateTemp, or os.OpenFile with a flag expression that
// is (or may be) a writing mode. A non-constant flag counts as writable.
func writableFileSource(info *types.Info, call *ast.CallExpr) bool {
	fn, _ := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		tv, ok := info.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return true // dynamic flag: assume writable
		}
		v, okv := constant.Int64Val(constant.ToInt(tv.Value))
		if !okv {
			return true
		}
		// os.O_WRONLY=1, os.O_RDWR=2, os.O_APPEND/O_CREATE/O_TRUNC all
		// imply intent to write through this descriptor.
		const writeBits = 0x1 | 0x2 | 0x400 | 0x40 | 0x200
		return v&writeBits != 0
	}
	return false
}

// runDurability applies the analysis everywhere (crash-safety is not a
// per-package property: trace spills, cache writes and CLI tooling all
// rename and close files).
func runDurability(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, g := range pass.Pkg.FuncCFGs(f) {
			runDurabilityFunc(pass, info, g)
		}
	}
}

func runDurabilityFunc(pass *Pass, info *types.Info, g *CFG) {
	// Pre-scan: functions with no monitored calls and no file opens are
	// skipped without solving.
	interesting := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectAtom(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if _, _, mon := monitoredCall(info, call); mon || writableFileSource(info, call) {
						interesting = true
					}
				}
				return !interesting
			})
		}
	}
	if !interesting {
		return
	}

	// Objects read anywhere in the function (assignment right-hand sides,
	// conditions, arguments — not assignment targets). The overwrite and
	// end-of-function diagnostics only fire for errors that are NEVER
	// consulted: the standard `if cerr := f.Close(); err == nil { err =
	// cerr }` idiom deliberately drops the close error when an earlier
	// error takes precedence, and the path-insensitive join cannot see
	// that the dropping paths are exactly the superseded ones.
	consumed := make(map[string]bool)
	var markReads func(n ast.Node)
	markReads = func(n ast.Node) {
		inspectAtom(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for i, r := range m.Rhs {
					if !blankDiscard(m, i, r) {
						markReads(r)
					}
				}
				return false
			case *ast.Ident:
				if obj := info.Uses[m]; obj != nil {
					consumed[objKey(obj)] = true
				}
			}
			return true
		})
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			markReads(n)
		}
	}

	// Receivers with an explicit (non-deferred) Close somewhere in the
	// function: their deferred Close is the cleanup half of the
	// close-twice idiom and is not reported.
	explicitClose := make(map[string]bool)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue
			}
			inspectAtom(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if _, fileRecv, mon := monitoredCall(info, call); mon && fileRecv != "" {
						explicitClose[fileRecv] = true
					}
				}
				return true
			})
		}
	}

	// step advances the fact across one atom; when report is non-nil the
	// walk also diagnoses (the solve pass runs with report == nil).
	step := func(n ast.Node, in durFact, report func(pos token.Pos, format string, args ...any)) durFact {
		out := in
		diag := func(pos token.Pos, format string, args ...any) {
			if report != nil {
				report(pos, format, args...)
			}
		}
		// isMonitored resolves writability for Close calls against the
		// current fact.
		isMonitored := func(call *ast.CallExpr) (string, bool) {
			desc, fileRecv, mon := monitoredCall(info, call)
			if !mon {
				return "", false
			}
			if fileRecv != "" && !out.wfiles[fileRecv] {
				return "", false // Close of a non-writable file
			}
			return desc, true
		}
		// clearUses drops pending entries whose variable is read in e.
		clearUses := func(e ast.Node) {
			if e == nil {
				return
			}
			inspectAtom(e, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						out = out.withoutPending(objKey(obj))
					}
				}
				return true
			})
		}

		switch n := n.(type) {
		case *ast.DeferStmt:
			if desc, mon := isMonitored(n.Call); mon {
				_, fileRecv, _ := monitoredCall(info, n.Call)
				if fileRecv != "" && explicitClose[fileRecv] {
					return out // cleanup half of the close-twice idiom
				}
				diag(n.Call.Pos(),
					"deferred %s discards its error; check an explicit Close/Put on the success path (or annotate a deliberate best-effort close)", desc)
			}
			clearUses(n.Call) // args evaluated now; reading err consults it
			return out

		case *ast.GoStmt:
			if desc, mon := isMonitored(n.Call); mon {
				diag(n.Call.Pos(), "%s spawned with go; its error is unobservable on every path", desc)
			}
			clearUses(n.Call)
			return out

		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if desc, mon := isMonitored(call); mon {
					diag(call.Pos(), "%s result discarded; this error must be checked on every path (crash consistency depends on it)", desc)
					clearUses(call)
					return out
				}
			}

		case *ast.AssignStmt:
			// Reads on the RHS consult pending errors — except `_ = err`,
			// which discards a value without consulting it. Then LHS
			// writes create or kill pendings.
			for i, r := range n.Rhs {
				if !blankDiscard(n, i, r) {
					clearUses(r)
				}
			}
			// Monitored call on the RHS: locate the error-result LHS.
			handled := make(map[int]string) // lhs index -> op desc
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if desc, mon := isMonitored(call); mon {
						handled[len(n.Lhs)-1] = desc
					}
				}
			} else if len(n.Rhs) == len(n.Lhs) {
				for i, r := range n.Rhs {
					if call, ok := r.(*ast.CallExpr); ok {
						if desc, mon := isMonitored(call); mon {
							handled[i] = desc
						}
					}
				}
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				desc, isMon := handled[i]
				if id.Name == "_" {
					if isMon {
						diag(n.Rhs[min(i, len(n.Rhs)-1)].Pos(),
							"%s error assigned to _; this error must be checked on every path", desc)
					}
					continue
				}
				if obj == nil {
					continue
				}
				k := objKey(obj)
				if prev, pending := out.pending[k]; pending {
					if !consumed[k] {
						diag(prev.pos, "%s error is overwritten before being checked", prev.desc)
					}
					out = out.withoutPending(k)
				}
				if isMon && isErrorType(obj.Type()) {
					out = out.withPending(k, durPending{pos: n.Rhs[min(i, len(n.Rhs)-1)].Pos(), desc: desc})
				}
				// Track writable files through assignment.
				if isOSFileType(obj.Type()) {
					src := durAssignSource(n, i)
					if call, okc := src.(*ast.CallExpr); okc && writableFileSource(info, call) {
						out = durFact{wfiles: out.wfiles.with(k), pending: out.pending}
					} else if id2, ok2 := src.(*ast.Ident); ok2 {
						if o2 := info.Uses[id2]; o2 != nil && out.wfiles[objKey(o2)] {
							out = durFact{wfiles: out.wfiles.with(k), pending: out.pending}
						} else {
							out = durFact{wfiles: out.wfiles.without(k), pending: out.pending}
						}
					} else {
						out = durFact{wfiles: out.wfiles.without(k), pending: out.pending}
					}
				}
			}
			return out
		}

		// Any other atom: every identifier read consults pending errors
		// (conditions, returns, call arguments, range expressions, ...).
		clearUses(n)
		return out
	}

	facts := solve(g, durFact{wfiles: stringSet{}, pending: map[string]durPending{}},
		flowFuncs[durFact]{
			step:  func(n ast.Node, in durFact) durFact { return step(n, in, nil) },
			join:  durJoin,
			equal: durEqual,
		})

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, b := range g.Blocks {
		in, reachable := facts[b]
		if !reachable {
			continue
		}
		cur := in
		for _, n := range b.Nodes {
			cur = step(n, cur, report)
		}
	}
	// Pending errors that survive to the function exit were never
	// consulted on some path.
	if exitFact, ok := facts[g.Exit]; ok {
		for _, k := range sortedPendingKeys(exitFact.pending) {
			if consumed[k] {
				continue
			}
			p := exitFact.pending[k]
			report(p.pos, "%s error is never consulted; it reaches the end of the function unchecked", p.desc)
		}
	}
}

// blankDiscard reports whether RHS index i of the assignment is a bare
// identifier assigned to the blank identifier: `_ = err` explicitly
// discards the value, it does not consult it. Anything computed (`_ =
// f(err)`) still reads its operands.
func blankDiscard(n *ast.AssignStmt, i int, r ast.Expr) bool {
	if len(n.Rhs) != len(n.Lhs) {
		return false
	}
	lhs, ok := n.Lhs[i].(*ast.Ident)
	if !ok || lhs.Name != "_" {
		return false
	}
	_, isIdent := r.(*ast.Ident)
	return isIdent
}

// durAssignSource finds the RHS expression feeding lhs index i (the
// first result of a multi-value call counts for index 0).
func durAssignSource(n *ast.AssignStmt, i int) ast.Expr {
	if len(n.Rhs) == len(n.Lhs) {
		return n.Rhs[i]
	}
	if len(n.Rhs) == 1 && i == 0 {
		return n.Rhs[0]
	}
	return nil
}

func sortedPendingKeys(m map[string]durPending) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
