package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The standard library is type-checked from source (no export data in
// modern GOROOTs), which dominates load time. One process-wide source
// importer with its own file set caches that work across Loaders; it is
// safe because no check ever resolves a std-library position — all
// diagnostics point into module files, whose positions live in the
// per-loader file set.
var (
	stdOnce     sync.Once
	stdFset     = token.NewFileSet()
	stdImporter types.ImporterFrom
	stdMu       sync.Mutex
)

func sharedStdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		stdImporter = importer.ForCompiler(stdFset, "source", nil).(types.ImporterFrom)
	})
	return stdImporter
}

// NoPackagesError reports a package pattern that matched nothing on
// disk. It is a usage error, not an internal one: the tree was never
// loaded, so there is nothing to diagnose beyond the pattern itself.
// cmd/splashlint maps it to its usage exit status.
type NoPackagesError struct {
	// Pattern is the pattern as the caller wrote it.
	Pattern string
}

func (e *NoPackagesError) Error() string {
	return fmt.Sprintf("analysis: no packages match %q", e.Pattern)
}

// Package is one type-checked module package: the parsed syntax, the
// type information, and enough position context to report diagnostics.
type Package struct {
	// Path is the import path ("splash2/internal/mach").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's resolution maps for Files.
	Info *types.Info

	// cfgs memoizes per-file control-flow graphs (see cfg.go) so the
	// flow-sensitive checks lower each function once per package.
	cfgs map[*ast.File][]*CFG
}

// Loader loads and type-checks module packages from source, in
// dependency order, using only the standard library: module-local
// imports are resolved against the module root, everything else is
// delegated to go/importer's source importer (which parses GOROOT).
// Test files (_test.go) are not loaded; the checks exempt test code by
// contract, so analyzing it would only produce noise.
type Loader struct {
	// ModRoot is the absolute module root (the directory with go.mod).
	ModRoot string
	// ModPath is the module path from go.mod ("splash2").
	ModPath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = sharedStdImporter()
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", file)
}

// Fset returns the loader's file set (all positions resolve through it).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from
// the repo source tree; everything else (the standard library) goes to
// the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	// The shared std importer is not safe for concurrent use; loads are
	// single-goroutine per Loader, but Loaders may coexist (tests).
	stdMu.Lock()
	defer stdMu.Unlock()
	return l.std.ImportFrom(path, dir, mode)
}

func (l *Loader) isModulePath(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// pathFor maps an absolute directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside the module", dir)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// load type-checks one module package (and, recursively through the
// importer, everything it depends on — dependency order falls out of
// the depth-first import walk).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory, with comments
// (the suppression directives live in them). Build constraints are
// honored via go/build's MatchFile, so a file gated to another platform
// or behind an inactive tag is excluded exactly as `go build` would —
// type-checking it alongside the active files would produce spurious
// redeclaration errors.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	bctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if match, err := bctx.MatchFile(dir, name); err != nil || !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load resolves the given package patterns and type-checks every match.
// Patterns are directories ("./internal/mach"), import paths
// ("splash2/internal/mach"), or recursive forms of either ("./...",
// "./internal/...'). Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, p := range expanded {
			paths[p] = true
		}
	}
	if len(paths) == 0 {
		return nil, &NoPackagesError{Pattern: strings.Join(patterns, " ")}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	pkgs := make([]*Package, 0, len(sorted))
	for _, p := range sorted {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand resolves one pattern to a list of import paths. A recursive
// pattern that matches nothing — the root does not exist, or no package
// lives under it — is a NoPackagesError: when it arrives alongside
// matching patterns it must not be swallowed into their union, because
// a silently ignored pattern reads as "that subtree is clean".
func (l *Loader) expand(pat string) ([]string, error) {
	orig := pat
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = l.ModRoot
		}
	}
	var dir string
	switch {
	case l.isModulePath(pat):
		dir = l.dirFor(pat)
	case filepath.IsAbs(pat):
		dir = pat
	default:
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		dir = abs
	}
	if !recursive {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		return []string{path}, nil
	}
	if _, err := os.Stat(dir); err != nil {
		return nil, &NoPackagesError{Pattern: orig}
	}
	paths, err := l.walk(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, &NoPackagesError{Pattern: orig}
	}
	return paths, nil
}

// walk finds every package directory under root, skipping testdata,
// vendor and hidden directories (fixture packages under testdata are
// loadable, but only by naming them explicitly).
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		// A directory whose every file is excluded by build constraints
		// is not a package on this platform; discovering it would only
		// make load fail on an empty file list.
		if match, merr := build.Default.MatchFile(filepath.Dir(p), d.Name()); merr != nil || !match {
			return nil
		}
		path, err := l.pathFor(filepath.Dir(p))
		if err != nil {
			return err
		}
		if len(out) == 0 || out[len(out)-1] != path {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
