package analysis

// The epochs check: the PR 5 ordering contract for batched reference
// capture. Every synchronization edge in internal/mach is a
// release→acquire pair over Lamport-style sync epochs: the releasing
// side must flush its reference buffer and publish its epoch (via
// Proc.syncRelease, stored into the primitive's epoch field) BEFORE any
// waiter can observe the release — otherwise a waiter can join an epoch
// that does not yet cover the releaser's buffered references, and the
// recorder's merged order (sorted by epoch, proc, local index) is no
// longer a legal interleaving: recordings stop being byte-deterministic
// in exactly the hard-to-reproduce, scheduler-dependent way PR 5
// eliminated.
//
// Flow-sensitively, within the scoped package (internal/mach), every
// path from function entry to a waiter-waking call must contain an
// epoch publication first:
//
//   - waking calls: Broadcast/Signal on a sync.Cond, and — in functions
//     that publish a release time (a store to a *elease* field, the
//     Lock.Release shape) — Unlock on the sync.Mutex guarding it;
//   - publications: a call to syncRelease (whose receiver flushes and
//     returns the current epoch) or a store to an epoch-named field.

import (
	"go/ast"
	"go/types"
	"strings"
)

// runEpochs applies the must-publish-before-wake analysis.
func (cfg Config) runEpochs(pass *Pass) {
	if !hasAnyPrefix(pass.Pkg.Types.Path(), cfg.EpochScope) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, g := range pass.Pkg.FuncCFGs(f) {
			runEpochsFunc(pass, info, g)
		}
	}
}

// epochPublication reports whether the atom contains an epoch
// publication: a syncRelease call or a store to an epoch-named field.
func epochPublication(info *types.Info, n ast.Node) bool {
	found := false
	inspectAtom(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "syncRelease" {
				found = true
			}
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok &&
					strings.Contains(strings.ToLower(sel.Sel.Name), "epoch") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// condWakeCall matches Broadcast/Signal on a *sync.Cond.
func condWakeCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Broadcast" && sel.Sel.Name != "Signal") {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	return isSyncType(s.Recv(), "Cond")
}

// mutexUnlockCall matches Unlock/RUnlock on sync.Mutex/RWMutex.
func mutexUnlockCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	return isSyncType(s.Recv(), "Mutex") || isSyncType(s.Recv(), "RWMutex")
}

func isSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync"
}

// storesReleaseTime reports whether the function stores to a
// release-time field (name contains "elease" but is not itself the
// epoch field) — the Lock.Release/Barrier shape where the matching
// Unlock is what lets waiters proceed.
func storesReleaseTime(g *CFG) bool {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			inspectAtom(n, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if sel, ok := l.(*ast.SelectorExpr); ok {
							lower := strings.ToLower(sel.Sel.Name)
							if strings.Contains(lower, "elease") && !strings.Contains(lower, "epoch") {
								found = true
							}
						}
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

func runEpochsFunc(pass *Pass, info *types.Info, g *CFG) {
	// Pre-scan: only functions that wake someone need solving.
	wakes := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectAtom(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && condWakeCall(info, call) {
					wakes = true
				}
				return !wakes
			})
		}
	}
	checkUnlocks := storesReleaseTime(g)
	if !wakes && !checkUnlocks {
		return
	}

	// Must-analysis over a single bit: "an epoch publication has
	// happened on every path to here". Join is AND.
	step := func(n ast.Node, in bool) bool {
		if in {
			return true
		}
		return epochPublication(info, n)
	}
	facts := solve(g, false, flowFuncs[bool]{
		step:  step,
		join:  func(a, b bool) bool { return a && b },
		equal: func(a, b bool) bool { return a == b },
	})

	for _, b := range g.Blocks {
		in, reachable := facts[b]
		if !reachable {
			continue
		}
		cur := in
		for _, n := range b.Nodes {
			if !cur {
				if _, isDefer := n.(*ast.DeferStmt); !isDefer {
					inspectAtom(n, func(m ast.Node) bool {
						call, ok := m.(*ast.CallExpr)
						if !ok {
							return true
						}
						if condWakeCall(info, call) {
							pass.Reportf(call.Pos(),
								"%s wakes waiters before publishing a recorder epoch on some path; call syncRelease (and store the epoch) first, or waiters join an epoch that does not cover the releaser's buffered references", g.FuncName())
						} else if checkUnlocks && mutexUnlockCall(info, call) {
							pass.Reportf(call.Pos(),
								"%s publishes a release time but unlocks before publishing a recorder epoch on some path; the next acquirer would join a stale epoch", g.FuncName())
						}
						return true
					})
				}
			}
			cur = step(n, cur)
		}
	}
}
