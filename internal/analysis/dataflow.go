package analysis

// A small forward dataflow framework over the cfg.go graphs: facts
// propagate from a function's entry along successor edges, joined at
// merge points, to a fixpoint (classic worklist iteration). The checks
// define the fact type and three operations; the framework owns the
// iteration order and termination.
//
// A flowFuncs instance must be monotone (step may only move facts up
// the lattice induced by join) and the fact space per function must be
// finite — every check here satisfies both by construction (sets over
// the function's identifiers). As a defense against a non-monotone
// transfer looping forever, Solve gives up after a generous bound and
// returns the facts computed so far; a check then under-reports rather
// than hanging the analyzer.

import "go/ast"

// flowFuncs defines one dataflow problem over facts of type F.
type flowFuncs[F any] struct {
	// step advances a fact across one straight-line atom. It must not
	// mutate in; return a new fact (or in itself when unchanged).
	step func(n ast.Node, in F) F
	// join merges two incoming path facts.
	join func(a, b F) F
	// equal reports fact equivalence (fixpoint detection).
	equal func(a, b F) bool
}

// blockStep folds step over every atom of a block.
func (fns *flowFuncs[F]) blockStep(b *Block, in F) F {
	out := in
	for _, n := range b.Nodes {
		out = fns.step(n, out)
	}
	return out
}

// Solve runs the worklist iteration and returns the fact at entry of
// every reachable block. Unreachable blocks are absent from the map.
func solve[F any](g *CFG, entry F, fns flowFuncs[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = entry

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	// Bound: |blocks|² × a constant covers every chain the set-valued
	// lattices used here can build; hitting it means a transfer bug.
	budget := (len(g.Blocks)*len(g.Blocks) + 64) * 8
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := fns.blockStep(b, in[b])
		for _, s := range b.Succs {
			old, seen := in[s]
			var merged F
			if seen {
				merged = fns.join(old, out)
			} else {
				merged = out
			}
			if !seen || !fns.equal(old, merged) {
				in[s] = merged
				if !queued[s] {
					work = append(work, s)
					queued[s] = true
				}
			}
		}
	}
	return in
}

// inspectAtom walks one CFG atom, skipping nested function literals
// (each literal is its own CFG — its body is not part of this flow).
// A RangeStmt atom stands for the iteration step only: its body is
// lowered into its own blocks, so walking it here would double-count
// every body statement with the loop head's entry fact.
func inspectAtom(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			inspectAtom(rs.Key, f)
		}
		if rs.Value != nil {
			inspectAtom(rs.Value, f)
		}
		inspectAtom(rs.X, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return f(m)
	})
}

// ---------------------------------------------------------------------------
// Shared set-of-strings fact helpers (locksets, taint sets).

// stringSet is an immutable-by-convention set fact.
type stringSet map[string]bool

func (s stringSet) with(k string) stringSet {
	if s[k] {
		return s
	}
	out := make(stringSet, len(s)+1)
	for k2 := range s {
		out[k2] = true
	}
	out[k] = true
	return out
}

func (s stringSet) without(k string) stringSet {
	if !s[k] {
		return s
	}
	out := make(stringSet, len(s))
	for k2 := range s {
		if k2 != k {
			out[k2] = true
		}
	}
	return out
}

func (s stringSet) union(t stringSet) stringSet {
	if len(t) == 0 {
		return s
	}
	if len(s) == 0 {
		return t
	}
	out := make(stringSet, len(s)+len(t))
	for k := range s {
		out[k] = true
	}
	for k := range t {
		out[k] = true
	}
	return out
}

func (s stringSet) intersect(t stringSet) stringSet {
	out := make(stringSet)
	for k := range s {
		if t[k] {
			out[k] = true
		}
	}
	return out
}

func (s stringSet) equal(t stringSet) bool {
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

func (s stringSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	// insertion sort: sets here are tiny (a handful of locks/vars)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
