package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"splash2/internal/analysis"
)

// fixturePkgs are the seeded-violation packages under testdata/src.
var fixturePkgs = []string{
	"accounting", "procflow", "determ", "faultpts", "tracecap", "directive",
	"locks", "ctxflow", "durability", "epochs", "timetaint", "buildtag",
}

const fixturePrefix = "splash2/internal/analysis/testdata/src"

// fixtureConfig points each scoped check at its own fixture package (the
// default scopes name the real packages). Per-directory scoping keeps
// the fixtures independent: the timetaint fixture may read the wall
// clock without tripping determinism, and so on.
func fixtureConfig() analysis.Config {
	cfg := analysis.DefaultConfig()
	cfg.DeterminismScope = []string{fixturePrefix + "/determ"}
	cfg.RandScope = []string{fixturePrefix + "/determ"}
	cfg.CtxScope = []string{fixturePrefix + "/ctxflow"}
	cfg.EpochScope = []string{fixturePrefix + "/epochs"}
	cfg.TaintScope = []string{fixturePrefix + "/timetaint"}
	cfg.TaintResultScope = []string{fixturePrefix + "/timetaint"}
	return cfg
}

// wantMarker matches the golden-diagnostic markers in fixture files:
// `// want <check>` (finding on this line) and `// want+1 <check>`
// (finding on the next line).
var wantMarker = regexp.MustCompile(`// want(\+1)? ([a-z]+)`)

// collectWants parses the markers of every fixture file into
// "file:line:check" keys.
func collectWants(t *testing.T, root string) map[string]int {
	t.Helper()
	wants := make(map[string]int)
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				n := i + 1
				if m[1] == "+1" {
					n++
				}
				wants[fmt.Sprintf("%s:%d:%s", abs, n, m[2])]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func loadFixtures(t *testing.T) ([]analysis.Diagnostic, *analysis.Loader) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(fixturePkgs))
	for i, p := range fixturePkgs {
		paths[i] = fixturePrefix + "/" + p
	}
	pkgs, err := loader.Load(paths...)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(loader.Fset(), pkgs, analysis.Options{
		Checks: analysis.ChecksWith(fixtureConfig()),
	})
	return diags, loader
}

// TestFixtureGoldenDiagnostics asserts the analyzer reports exactly the
// seeded violations — every marker detected, at the marked file:line,
// and nothing else (suppressed seeds must stay silent).
func TestFixtureGoldenDiagnostics(t *testing.T) {
	diags, _ := loadFixtures(t)

	got := make(map[string]int)
	for _, d := range diags {
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic without a position: %+v", d)
		}
		got[fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Check)]++
	}
	wants := collectWants(t, filepath.Join("testdata", "src"))
	if len(wants) == 0 {
		t.Fatal("no want markers found under testdata/src")
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := wants[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != wants[k] {
			t.Errorf("%s: got %d finding(s), want %d", k, got[k], wants[k])
		}
	}
}

// TestDiagnosticsSorted asserts stable position ordering (the CLI output
// and JSON encoding rely on it).
func TestDiagnosticsSorted(t *testing.T) {
	diags, _ := loadFixtures(t)
	if len(diags) < 2 {
		t.Fatalf("expected several findings, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering format.
func TestDiagnosticString(t *testing.T) {
	d := analysis.Diagnostic{File: "x.go", Line: 3, Col: 7, Check: "accounting", Message: "m"}
	if got, want := d.String(), "x.go:3:7: accounting: m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestSubsetKeepsUnusedAllows: running one check must not report
// directives for the checks that did not run.
func TestSubsetKeepsUnusedAllows(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(fixturePrefix + "/accounting")
	if err != nil {
		t.Fatal(err)
	}
	var procflowOnly []*analysis.Check
	for _, c := range analysis.ChecksWith(fixtureConfig()) {
		if c.Name == "procflow" {
			procflowOnly = append(procflowOnly, c)
		}
	}
	diags := analysis.Run(loader.Fset(), pkgs, analysis.Options{
		Checks: procflowOnly, KeepUnusedAllows: true,
	})
	if len(diags) != 0 {
		t.Fatalf("procflow-only run over the accounting fixture reported %d findings: %v", len(diags), diags)
	}
}

// TestRealTreeClean is the acceptance gate in test form: the repository
// itself must lint clean (all real findings fixed or annotated).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(loader.Fset(), pkgs, analysis.Options{})
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
