package analysis

// Per-function control-flow graphs for the flow-sensitive checks. The
// builder lowers one function body (FuncDecl or FuncLit) into basic
// blocks of "atoms" — simple statements and the condition/tag
// expressions of the control statements that branch on them — connected
// by successor edges. Compound statements never appear as atoms: an
// IfStmt contributes its condition to the current block and its
// branches become separate blocks, so a transfer function only ever
// sees straight-line nodes.
//
// Accuracy choices, in the direction of fewer false positives:
//
//   - panic(...) and the recognized no-return calls (os.Exit,
//     log.Fatal*, runtime.Goexit) terminate their path: code after them
//     is modeled as unreachable, and a path that panics instead of
//     unlocking or checking an error is not reported.
//   - defer bodies are not part of the statement flow (they run at
//     function exit); the DeferStmt atom marks the registration point
//     and CFG.Defers collects them in registration order for checks
//     that reason about exit-time actions.
//   - function literals are not inlined; each literal gets its own CFG
//     (FuncCFGs returns both), and transfer functions skip FuncLit
//     subtrees inside atoms.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: a maximal straight-line atom sequence.
type Block struct {
	Index int
	Nodes []ast.Node // simple statements and branch condition expressions
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Fn     ast.Node // *ast.FuncDecl or *ast.FuncLit
	Blocks []*Block // in creation order; Blocks[0] is Entry
	Entry  *Block
	Exit   *Block // every normal return (and body fall-off) edges here
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the under-construction graph and the break /
// continue / label context of the statement being lowered.
type cfgBuilder struct {
	cfg  *CFG
	info *types.Info
	cur  *Block // nil after a terminating statement (dead code follows)

	breaks    []breakFrame
	continues []continueFrame
	labels    map[string]*Block // goto targets, created on demand
}

type breakFrame struct {
	label  string
	target *Block
}

type continueFrame struct {
	label  string
	target *Block
}

// BuildCFG lowers fn (a *ast.FuncDecl or *ast.FuncLit) into a CFG.
// Functions without a body (external declarations) yield a graph whose
// entry falls straight through to the exit.
func BuildCFG(fn ast.Node, info *types.Info) *CFG {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		panic("analysis: BuildCFG on a non-function node")
	}
	b := &cfgBuilder{
		cfg:    &CFG{Fn: fn},
		info:   info,
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit) // fall off the end of the body
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump edges the current block to target and kills the current path.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// startBlock begins a new current block (used for join points and for
// statically dead code, which gets an unreachable block so lowering can
// continue without nil checks).
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

// add appends one atom to the current block, materializing an
// unreachable block when the path is dead.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt lowers one statement.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.noReturnCall(call) {
			b.cur = nil
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt:
		b.add(s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.EmptyStmt:
		// nothing

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.LabeledStmt:
		b.labeled(s)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	default:
		// Anything unrecognized is treated as a straight-line atom.
		b.add(s)
	}
}

// labeled lowers `L: stmt`, wiring the label for goto and for labeled
// break/continue on the labeled loop or switch.
func (b *cfgBuilder) labeled(s *ast.LabeledStmt) {
	name := s.Label.Name
	target := b.labels[name]
	if target == nil {
		target = b.newBlock()
		b.labels[name] = target
	}
	b.jump(target)
	b.startBlock(target)
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, name)
	case *ast.SelectStmt:
		b.selectStmt(inner, name)
	default:
		b.stmt(s.Stmt)
	}
}

// branch lowers break/continue/goto; fallthrough is handled by the
// switch lowering and ignored here (its effect is the clause edge).
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.breaks) - 1; i >= 0; i-- {
			if label == "" || b.breaks[i].label == label {
				b.jump(b.breaks[i].target)
				return
			}
		}
		b.cur = nil // break outside any frame: malformed, kill the path
	case token.CONTINUE:
		for i := len(b.continues) - 1; i >= 0; i-- {
			if label == "" || b.continues[i].label == label {
				b.jump(b.continues[i].target)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		target := b.labels[label]
		if target == nil {
			target = b.newBlock()
			b.labels[label] = target
		}
		b.jump(target)
	case token.FALLTHROUGH:
		// The enclosing switch lowering adds the clause→clause edge.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	condBlock := b.cur
	done := b.newBlock()

	thenBlock := b.newBlock()
	condBlock.Succs = append(condBlock.Succs, thenBlock)
	b.startBlock(thenBlock)
	b.stmtList(s.Body.List)
	b.jump(done)

	if s.Else != nil {
		elseBlock := b.newBlock()
		condBlock.Succs = append(condBlock.Succs, elseBlock)
		b.startBlock(elseBlock)
		b.stmt(s.Else)
		b.jump(done)
	} else {
		condBlock.Succs = append(condBlock.Succs, done)
	}
	b.startBlock(done)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	done := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.jump(head)
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
		b.cur.Succs = append(b.cur.Succs, done)
	}
	body := b.newBlock()
	b.cur.Succs = append(b.cur.Succs, body)
	b.cur = nil

	b.breaks = append(b.breaks, breakFrame{label, done})
	b.continues = append(b.continues, continueFrame{label, post})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	if s.Post != nil {
		b.jump(post)
		b.startBlock(post)
		b.stmt(s.Post)
		b.jump(head)
	} else {
		b.jump(head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.startBlock(done)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	done := b.newBlock()
	b.jump(head)
	b.startBlock(head)
	b.add(s) // the RangeStmt atom stands for the iteration step (X eval + key/value assignment)
	headBlock := b.cur
	headBlock.Succs = append(headBlock.Succs, done)
	body := b.newBlock()
	headBlock.Succs = append(headBlock.Succs, body)
	b.cur = nil

	b.breaks = append(b.breaks, breakFrame{label, done})
	b.continues = append(b.continues, continueFrame{label, head})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	b.jump(head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.startBlock(done)
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.startBlock(head)
	}
	done := b.newBlock()
	b.lowerClauses(head, done, label, s.Body.List, func(clause ast.Stmt) (exprs []ast.Expr, body []ast.Stmt, isDefault bool) {
		cc := clause.(*ast.CaseClause)
		return cc.List, cc.Body, cc.List == nil
	})
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	done := b.newBlock()
	b.lowerClauses(head, done, label, s.Body.List, func(clause ast.Stmt) ([]ast.Expr, []ast.Stmt, bool) {
		cc := clause.(*ast.CaseClause)
		return nil, cc.Body, cc.List == nil
	})
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
	}
	b.cur = nil
	done := b.newBlock()
	b.breaks = append(b.breaks, breakFrame{label, done})
	reached := len(s.Body.List) == 0
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.startBlock(blk)
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
		reached = true
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !reached {
		head.Succs = append(head.Succs, done)
	}
	b.startBlock(done)
}

// lowerClauses wires switch-shaped clause lists: every clause is entered
// from the head (conservatively — clause order and guard evaluation are
// not modeled), fallthrough edges to the next clause, and a missing
// default adds a head→done edge.
func (b *cfgBuilder) lowerClauses(head, done *Block, label string, clauses []ast.Stmt,
	split func(ast.Stmt) ([]ast.Expr, []ast.Stmt, bool)) {

	b.cur = nil
	b.breaks = append(b.breaks, breakFrame{label, done})
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
	}
	hasDefault := false
	for i, clause := range clauses {
		exprs, body, isDefault := split(clause)
		if isDefault {
			hasDefault = true
		}
		b.startBlock(blocks[i])
		for _, e := range exprs {
			b.add(e)
		}
		// A fallthrough must be the clause's final statement; lower the
		// body and, if it ends in fallthrough, edge to the next clause.
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(done)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.startBlock(done)
}

// noReturnCall recognizes calls that never return control to the caller.
func (b *cfgBuilder) noReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := b.info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		fn, ok := b.info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln" ||
				fn.Name() == "Panic" || fn.Name() == "Panicf" || fn.Name() == "Panicln"
		}
	}
	return false
}

// FuncCFGs builds (and memoizes on the package) the CFG of every
// function declaration and function literal in file. The checks share
// these: five flow-sensitive checks over one package lower each
// function once, not five times.
func (pkg *Package) FuncCFGs(file *ast.File) []*CFG {
	if pkg.cfgs == nil {
		pkg.cfgs = make(map[*ast.File][]*CFG)
	}
	if got, ok := pkg.cfgs[file]; ok {
		return got
	}
	var out []*CFG
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, BuildCFG(n, pkg.Info))
			}
		case *ast.FuncLit:
			out = append(out, BuildCFG(n, pkg.Info))
		}
		return true
	})
	pkg.cfgs[file] = out
	return out
}

// FuncName names a CFG's function for diagnostics: the declared name,
// or "func literal" for anonymous functions.
func (g *CFG) FuncName() string {
	if fd, ok := g.Fn.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "func literal"
}

// FuncType returns the function's type expression (parameter access).
func (g *CFG) FuncType() *ast.FuncType {
	switch fn := g.Fn.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}
