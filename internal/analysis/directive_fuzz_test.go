// In-package tests for the //splash:allow directive parser: a fuzz
// harness over the text after the marker, plus deterministic coverage
// of the duplicate-directive rule. The parser sits on the trust
// boundary of the suppression mechanism — a directive that parses
// differently than the oracle predicts either silences a finding it
// should not, or rots silently — so every input must land in exactly
// one bucket: one well-formed directive, or one "directive" finding.
package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fuzzKnown is the check registry the fuzz harness resolves against.
var fuzzKnown = map[string]bool{"accounting": true, "determinism": true}

func parseDirectiveFile(src string) (*token.FileSet, *Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	return fset, &Package{Path: "p", Files: []*ast.File{f}}, nil
}

func FuzzAllowDirective(f *testing.F) {
	f.Add(" accounting deliberate read for verification")
	f.Add(" accounting")
	f.Add("")
	f.Add("   ")
	f.Add(" bogus some reason")
	f.Add("\taccounting\ttabbed reason")
	f.Add(" determinism fixture: reason with //splash:allow accounting embedded")
	f.Add("x accounting glued to the marker")
	f.Add(" accounting   non-breaking space")
	f.Add(" accounting reason with trailing spaces   ")

	f.Fuzz(func(t *testing.T, rest string) {
		if strings.ContainsAny(rest, "\n\r") {
			t.Skip("a line directive cannot span lines")
		}
		src := "package p\n\n//splash:allow" + rest + "\nvar X = 1\n"
		fset, pkg, err := parseDirectiveFile(src)
		if err != nil {
			t.Skip("input breaks the surrounding file")
		}

		var diags []Diagnostic
		allows := collectAllows(fset, []*Package{pkg}, fuzzKnown,
			func(d Diagnostic) { diags = append(diags, d) })

		// Exactly one outcome per directive: parsed or reported.
		if len(allows)+len(diags) != 1 {
			t.Fatalf("input %q: %d allows + %d diags, want exactly 1 outcome", rest, len(allows), len(diags))
		}
		for _, d := range diags {
			if d.Check != directiveCheckName {
				t.Fatalf("input %q: malformed directive reported as check %q", rest, d.Check)
			}
			if d.Line != 3 || d.Col <= 0 {
				t.Fatalf("input %q: diagnostic at %d:%d, want line 3", rest, d.Line, d.Col)
			}
		}

		// Oracle: the documented grammar is "check name, then a reason".
		fields := strings.Fields(rest)
		wellFormed := len(fields) >= 2 && fuzzKnown[fields[0]]
		if wellFormed != (len(allows) == 1) {
			t.Fatalf("input %q: oracle says wellFormed=%v, parser returned %d directives", rest, wellFormed, len(allows))
		}
		if wellFormed {
			a := allows[0]
			if a.check != fields[0] {
				t.Fatalf("input %q: parsed check %q, want %q", rest, a.check, fields[0])
			}
			if strings.TrimSpace(a.reason) == "" {
				t.Fatalf("input %q: well-formed directive with empty reason", rest)
			}
			if a.line != 3 {
				t.Fatalf("input %q: directive line %d, want 3", rest, a.line)
			}
		}
	})
}

// TestDuplicateDirective: two directives for the same check on adjacent
// lines overlap (each covers the other's line); the second is reported
// and does not enter the suppression set.
func TestDuplicateDirective(t *testing.T) {
	src := `package p

//splash:allow accounting first reason
//splash:allow accounting second reason
var X = 1
`
	fset, pkg, err := parseDirectiveFile(src)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	allows := collectAllows(fset, []*Package{pkg}, fuzzKnown,
		func(d Diagnostic) { diags = append(diags, d) })
	if len(allows) != 1 || allows[0].line != 3 {
		t.Fatalf("allows = %+v, want only the line-3 directive", allows)
	}
	if len(diags) != 1 || diags[0].Line != 4 || !strings.Contains(diags[0].Message, "duplicate") {
		t.Fatalf("diags = %+v, want one duplicate finding at line 4", diags)
	}
}

// TestNonAdjacentSameCheckDirectives: a one-line gap means disjoint
// coverage; both directives stand.
func TestNonAdjacentSameCheckDirectives(t *testing.T) {
	src := `package p

//splash:allow accounting covers lines 3 and 4
var X = 1
//splash:allow accounting covers lines 5 and 6
var Y = 2
`
	fset, pkg, err := parseDirectiveFile(src)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	allows := collectAllows(fset, []*Package{pkg}, fuzzKnown,
		func(d Diagnostic) { diags = append(diags, d) })
	if len(allows) != 2 || len(diags) != 0 {
		t.Fatalf("allows = %d, diags = %+v; want 2 directives and no findings", len(allows), diags)
	}
}
