// Package analysis is a stdlib-only static analyzer framework for this
// repository, in the style of golang.org/x/tools/go/analysis but built
// on go/parser + go/types alone (an in-repo source importer loads
// packages in dependency order; see load.go).
//
// The checks enforce the invariants the characterization rests on:
//
//   - accounting: every shared-array access in measured code flows
//     through mach.Proc (Get/Set), never the Peek/Init/Raw escape
//     hatches that bypass the reference stream.
//   - procflow: *mach.Proc values stay on the goroutine that owns them,
//     so every reference is attributed to the issuing processor.
//   - determinism: results, traces and exports are byte-identical
//     across reruns — no wall-clock reads, no global math/rand, no map
//     iteration order in result paths.
//   - faultpoints: fault-injection site labels are literals from the
//     documented job:/cache.get:/cache.put:/trace.read taxonomy
//     (trace.read.footer and trace.read.block:<i> cover the v2
//     container's out-of-core reads).
//
// A finding can be suppressed with a directive comment on the same line
// or the line directly above:
//
//	//splash:allow <check> <reason>
//
// The reason is mandatory; an unused or malformed directive is itself a
// finding (check "directive"), so annotations cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, position-accurate to the offending token.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one analyzer: a name (used in directives and output), a
// one-line contract, and a Run function invoked once per package.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (check, package) unit of work.
type Pass struct {
	Check *Check
	Pkg   *Package
	Fset  *token.FileSet

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// allowDirective is one parsed //splash:allow comment.
type allowDirective struct {
	file   string
	line   int // line the directive is written on
	check  string
	reason string
	pos    token.Pos
	used   bool
}

// directiveCheckName is the pseudo-check that reports malformed or
// unused suppression directives; it cannot itself be suppressed.
const directiveCheckName = "directive"

// collectAllows parses the //splash:allow directives of a package.
// Malformed directives (no check name, no reason, unknown check) and
// duplicates (two directives for the same check whose one-line coverage
// windows overlap — the pair stays "used" forever, so neither can rot
// into an unused-directive finding on its own) are reported immediately.
func collectAllows(fset *token.FileSet, pkgs []*Package, known map[string]bool, report func(Diagnostic)) []*allowDirective {
	var allows []*allowDirective
	bad := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		report(Diagnostic{File: p.Filename, Line: p.Line, Col: p.Column,
			Check: directiveCheckName, Message: fmt.Sprintf(format, args...)})
	}
	// prev tracks, per file, the last directive line seen for each check;
	// comments arrive in source order, so one look-back suffices.
	type fileCheck struct {
		file  string
		check string
	}
	prev := make(map[fileCheck]int)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//splash:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad(c.Slash, "splash:allow needs a check name and a reason")
						continue
					}
					if !known[fields[0]] {
						bad(c.Slash, "splash:allow names unknown check %q", fields[0])
						continue
					}
					if len(fields) < 2 {
						bad(c.Slash, "splash:allow %s needs a reason", fields[0])
						continue
					}
					p := fset.Position(c.Slash)
					if last, seen := prev[fileCheck{p.Filename, fields[0]}]; seen && p.Line-last <= 1 {
						bad(c.Slash, "duplicate splash:allow %s directive (line %d already covers this line)", fields[0], last)
						continue
					}
					prev[fileCheck{p.Filename, fields[0]}] = p.Line
					allows = append(allows, &allowDirective{
						file: p.Filename, line: p.Line,
						check:  fields[0],
						reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
						pos:    c.Slash,
					})
				}
			}
		}
	}
	return allows
}

// Options configures a Run.
type Options struct {
	// Checks is the set to run; nil means DefaultChecks().
	Checks []*Check
	// KeepUnusedAllows suppresses the unused-directive findings; set
	// when running a subset of checks (a directive for a check that did
	// not run is trivially unused).
	KeepUnusedAllows bool
}

// Run applies the checks to every package and returns the surviving
// findings sorted by position. Suppressed findings are dropped; unused
// or malformed //splash:allow directives are reported as check
// "directive" findings.
func Run(fset *token.FileSet, pkgs []*Package, opts Options) []Diagnostic {
	checks := opts.Checks
	if checks == nil {
		checks = DefaultChecks()
	}
	known := make(map[string]bool, len(checks))
	for _, c := range DefaultChecks() {
		known[c.Name] = true
	}

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	allows := collectAllows(fset, pkgs, known, collect)

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, c := range checks {
			pass := &Pass{Check: c, Pkg: pkg, Fset: fset,
				report: func(d Diagnostic) { raw = append(raw, d) }}
			c.Run(pass)
		}
	}

	// A directive on the finding's line, or on the line directly above
	// it, suppresses the finding.
	for _, d := range raw {
		suppressed := false
		for _, a := range allows {
			if a.check == d.Check && a.file == d.File && (a.line == d.Line || a.line == d.Line-1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			diags = append(diags, d)
		}
	}
	if !opts.KeepUnusedAllows {
		for _, a := range allows {
			if !a.used {
				p := Diagnostic{File: a.file, Line: a.line, Col: 1, Check: directiveCheckName,
					Message: fmt.Sprintf("unused splash:allow %s directive (nothing to suppress here)", a.check)}
				diags = append(diags, p)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// enclosingFuncs maps every node position range to its innermost named
// function. Function literals belong to the named function they are
// written in — a closure inside Verify is still verification code.
type funcRange struct {
	name     string
	from, to token.Pos
}

// namedFuncRanges collects the named-function ranges of a file,
// innermost last so lookups can scan back to front.
func namedFuncRanges(f *ast.File) []funcRange {
	var out []funcRange
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			out = append(out, funcRange{name: fd.Name.Name, from: fd.Pos(), to: fd.End()})
		}
		return true
	})
	return out
}

// enclosingFuncName returns the name of the named function containing
// pos ("" at package scope). Ranges from namedFuncRanges are in source
// order; the last one containing pos is the innermost (methods cannot
// nest, so this only matters for nested FuncDecls, which Go forbids —
// the scan still picks the right one).
func enclosingFuncName(ranges []funcRange, pos token.Pos) string {
	name := ""
	for _, r := range ranges {
		if r.from <= pos && pos < r.to {
			name = r.name
		}
	}
	return name
}
