package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Config scopes the checks. The zero value is not useful; start from
// DefaultConfig. Tests point the scopes at fixture packages.
type Config struct {
	// DeterminismScope lists import-path prefixes where wall-clock
	// reads and map-order iteration are forbidden (the packages whose
	// output feeds results, traces and exports).
	DeterminismScope []string
	// RandScope lists import-path prefixes where importing math/rand is
	// forbidden (these must use internal/workload's deterministic RNG).
	RandScope []string
	// CtxScope lists import-path prefixes where detaching from the
	// request context (context.Background/TODO flowing into module
	// calls) is forbidden — the serving/execution request paths.
	CtxScope []string
	// EpochScope lists import-path prefixes whose synchronization edges
	// must publish a recorder epoch before releasing waiters.
	EpochScope []string
	// TaintScope lists import-path prefixes where wall-clock-derived
	// values must not reach cache keys, request identities, or cached
	// bytes.
	TaintScope []string
	// TaintResultScope lists import-path prefixes (a subset of
	// TaintScope) where, additionally, exported functions must not
	// return wall-clock-derived values.
	TaintResultScope []string
}

// DefaultConfig scopes determinism to the result-producing packages.
func DefaultConfig() Config {
	return Config{
		DeterminismScope: []string{
			"splash2/internal/apps",
			"splash2/internal/memsys",
			"splash2/internal/core",
		},
		RandScope: []string{
			"splash2/internal/apps",
			"splash2/internal/memsys",
			"splash2/internal/core",
			"splash2/internal/workload",
		},
		CtxScope: []string{
			"splash2/internal/serve",
			"splash2/internal/runner",
			"splash2/internal/core",
		},
		EpochScope: []string{
			"splash2/internal/mach",
		},
		TaintScope: []string{
			"splash2/internal/runner",
			"splash2/internal/serve",
			"splash2/internal/core",
		},
		TaintResultScope: []string{
			"splash2/internal/core",
		},
	}
}

// DefaultChecks returns every check with the default scopes.
func DefaultChecks() []*Check { return ChecksWith(DefaultConfig()) }

// ChecksWith builds the check set against a custom scope configuration.
func ChecksWith(cfg Config) []*Check {
	return []*Check{
		{Name: "accounting", Doc: "Peek/Init/Raw on mach arrays bypass the reference stream; allowed only in init/verify code", Run: runAccounting},
		{Name: "procflow", Doc: "*mach.Proc must not be stored in globals/structs or captured across goroutine spawns", Run: runProcflow},
		{Name: "determinism", Doc: "no wall-clock reads, global math/rand, or map-order iteration in result-producing packages", Run: cfg.runDeterminism},
		{Name: "faultpoints", Doc: "fault injection labels must be literals from the job:/cache.get:/cache.put:/trace.read[.footer|.block:]/lease.acquire:/journal.append/sample.estimate: taxonomy", Run: runFaultpoints},
		{Name: "tracecapture", Doc: "per-reference memsys entry points (Recorder.Record*, System.Access*) are reserved for internal/mach's batched capture path", Run: runTracecapture},
		{Name: "locks", Doc: "flow-sensitive lockset analysis over mach.Lock: unpaired Release, double Acquire, and locks held across barrier-like rendezvous", Run: runLocks},
		{Name: "ctxflow", Doc: "request paths must thread the caller's context.Context; context.Background/TODO on any path detaches cancellation, deadlines and fault scoping", Run: cfg.runCtxflow},
		{Name: "durability", Doc: "error results of journal/lease/cache/rename/Close-on-writable-file operations must be checked on every path", Run: runDurability},
		{Name: "epochs", Doc: "every sync edge in internal/mach must publish a recorder epoch before releasing waiters", Run: cfg.runEpochs},
		{Name: "timetaint", Doc: "wall-clock-derived values must not flow into cache keys, request identities, cached bytes, or exported results", Run: cfg.runTimetaint},
	}
}

// machPkgSuffix identifies the simulated-machine package by path.
const machPkgSuffix = "internal/mach"

func isMachPackage(p *types.Package) bool {
	return p != nil && strings.HasSuffix(p.Path(), machPkgSuffix)
}

// memsysPkgSuffix identifies the memory-system package by path.
const memsysPkgSuffix = "internal/memsys"

func isMemsysPackage(p *types.Package) bool {
	return p != nil && strings.HasSuffix(p.Path(), memsysPkgSuffix)
}

func hasAnyPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// accounting

// accountingMethods are the mach array escape hatches that touch Go
// values without issuing simulated references.
var accountingMethods = map[string]bool{"Peek": true, "Init": true, "Raw": true}

// accountingArrays are the receiver types the escape hatches live on.
var accountingArrays = map[string]bool{"F64Array": true, "IntArray": true, "C128Array": true}

// accountingExemptWords mark init/verify function names: input
// construction and result verification legitimately run outside the
// measured reference stream. A function whose (lowercased) name
// contains one of these words may use the escape hatches.
var accountingExemptWords = []string{
	"init", "new", "gen", "build", "setup", "make", "load",
	"verify", "check", "validate", "residual",
}

func accountingExemptFunc(name string) bool {
	l := strings.ToLower(name)
	for _, w := range accountingExemptWords {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

// runAccounting flags Peek/Init/Raw selections on mach arrays outside
// init/verify functions: those accesses never reach the reference
// stream, so every one in measured code silently corrupts the
// characterization. Main packages (input assembly, output printing) and
// the mach package itself are exempt.
func runAccounting(pass *Pass) {
	if isMachPackage(pass.Pkg.Types) || pass.Pkg.Types.Name() == "main" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ranges := namedFuncRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil {
				return true
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok || !accountingMethods[fn.Name()] || !isMachPackage(fn.Pkg()) {
				return true
			}
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || !accountingArrays[named.Obj().Name()] {
				return true
			}
			encl := enclosingFuncName(ranges, sel.Sel.Pos())
			if accountingExemptFunc(encl) {
				return true
			}
			where := "at package scope"
			if encl != "" {
				where = "in " + encl
			}
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s bypasses the reference stream %s; use Get/Set through a *mach.Proc, or rename/annotate if this is init or verify code",
				named.Obj().Name(), fn.Name(), where)
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// procflow

// isProcType reports whether t is *mach.Proc (or mach.Proc itself).
func isProcType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Proc" && isMachPackage(named.Obj().Pkg())
}

// containsProcType unwraps composites: a []*mach.Proc slice or a
// map[int]*mach.Proc stored globally is just as much an ownership leak.
func containsProcType(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return isProcType(t) || containsProcType(u.Elem())
	case *types.Slice:
		return containsProcType(u.Elem())
	case *types.Array:
		return containsProcType(u.Elem())
	case *types.Map:
		return containsProcType(u.Key()) || containsProcType(u.Elem())
	case *types.Chan:
		return containsProcType(u.Elem())
	default:
		return isProcType(t)
	}
}

// runProcflow enforces processor ownership: a *mach.Proc is the
// identity under which references are accounted, so it must flow down
// the call stack of the goroutine that runs that processor — never
// through globals, struct fields, or closures spawned on other
// goroutines. The mach package itself (which creates and runs procs) is
// exempt.
func runProcflow(pass *Pass) {
	if isMachPackage(pass.Pkg.Types) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Struct fields holding procs.
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := info.Types[field.Type]
				if ok && containsProcType(tv.Type) {
					pass.Reportf(field.Type.Pos(),
						"struct field stores *mach.Proc; accesses must be attributed to the issuing processor — pass the proc down the call stack instead")
				}
			}
			return true
		})
		// Package-level variables holding procs.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj != nil && containsProcType(obj.Type()) {
						pass.Reportf(name.Pos(),
							"package-level variable %s stores *mach.Proc; procs are goroutine-owned and must not be global", name.Name)
					}
				}
			}
		}
		// Procs captured by goroutine-spawned closures.
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := info.Uses[id].(*types.Var)
				if !ok || !isProcType(obj.Type()) {
					return true
				}
				// Free variable: declared outside the literal.
				if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
					pass.Reportf(id.Pos(),
						"%s (*mach.Proc) captured by a go-spawned closure; the new goroutine would issue references under another processor's identity — pass it as an argument only if the spawned goroutine IS that processor", id.Name)
				}
				return true
			})
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// determinism

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// runDeterminism enforces rerun-identical behaviour in the packages
// whose output feeds results, traces and exports: replay equivalence
// and the content-addressed result cache both assume byte-identical
// reruns, so a wall-clock read, a global math/rand draw, or a map-order
// iteration in these packages is a correctness bug, not a style issue.
func (cfg Config) runDeterminism(pass *Pass) {
	path := pass.Pkg.Types.Path()
	inScope := hasAnyPrefix(path, cfg.DeterminismScope)
	inRandScope := hasAnyPrefix(path, cfg.RandScope)
	if !inScope && !inRandScope {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if inRandScope {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Path.Pos(),
						"import of %s; workloads must use the deterministic internal/workload RNG", p)
				}
			}
		}
		if !inScope {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := info.Uses[n.Sel].(*types.Func)
				if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && clockFuncs[fn.Name()] {
					pass.Reportf(n.Sel.Pos(),
						"time.%s reads the wall clock; results and traces must be byte-identical across reruns", fn.Name())
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Range,
							"map iteration order is nondeterministic; iterate sorted keys (or annotate if order provably cannot reach results)")
					}
				}
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// tracecapture

// captureMethods are the per-reference memsys entry points, by receiver
// type: recording and live simulation must flow through internal/mach's
// batched per-processor buffers (Proc.Read/Write), which stamp events
// with synchronization epochs. A direct call from application or driver
// code would produce events outside any epoch order — breaking both the
// byte-determinism of recordings and the one-lock-per-batch fast path.
var captureMethods = map[string]map[string]bool{
	"Recorder": {"Record": true, "RecordReset": true, "RecordBatch": true, "RecordResetAt": true},
	"System":   {"Access": true, "AccessAt": true, "AccessBatch": true},
}

// runTracecapture flags selections of the per-reference capture methods
// outside internal/mach (where the batched flush path lives) and
// internal/memsys itself (replay and tests drive their own systems).
func runTracecapture(pass *Pass) {
	if isMachPackage(pass.Pkg.Types) || isMemsysPackage(pass.Pkg.Types) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil {
				return true
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok || !isMemsysPackage(fn.Pkg()) {
				return true
			}
			recv := s.Recv()
			if p, okp := recv.(*types.Pointer); okp {
				recv = p.Elem()
			}
			named, okn := recv.(*types.Named)
			if !okn {
				return true
			}
			methods := captureMethods[named.Obj().Name()]
			if methods == nil || !methods[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s bypasses the batched per-processor capture path; issue references through *mach.Proc Read/Write so they are epoch-stamped and batched (annotate only deliberate tooling escapes)",
				named.Obj().Name(), fn.Name())
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// faultpoints

// faultLabelArg maps injector methods to the index of their label
// argument.
var faultLabelArg = map[string]int{"Do": 1, "Data": 0, "Reader": 0}

// faultTaxonomy is the documented injection-point namespace (see
// internal/fault's package doc and the -fault CLI syntax).
var faultTaxonomy = []string{
	"job:", "cache.get:", "cache.put:",
	"trace.read", "trace.read.footer", "trace.read.block:",
	"lease.acquire:", "journal.append", "sample.estimate:",
}

// validFaultLabel reports whether a label (or its known literal prefix)
// belongs to the taxonomy.
func validFaultLabel(prefix string, complete bool) bool {
	for _, t := range faultTaxonomy {
		if strings.HasPrefix(prefix, t) {
			return true
		}
		// An incomplete prefix like "trace." may still extend to a
		// taxonomy item; only a complete value can be rejected for
		// being a proper prefix of one.
		if !complete && strings.HasPrefix(t, prefix) {
			return true
		}
	}
	return false
}

// runFaultpoints checks that every fault-injection site label has a
// literal prefix from the documented taxonomy, so chaos rules written
// against the documented names always match and a typo cannot silently
// disarm an injection point. The fault package itself is exempt.
func runFaultpoints(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Types.Path(), "internal/fault") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil {
				return true
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok {
				return true
			}
			argIdx, ok := faultLabelArg[fn.Name()]
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/fault") {
				return true
			}
			recv := s.Recv()
			if p, okp := recv.(*types.Pointer); okp {
				recv = p.Elem()
			}
			if named, okn := recv.(*types.Named); !okn || named.Obj().Name() != "Injector" {
				return true
			}
			if argIdx >= len(call.Args) {
				return true
			}
			arg := call.Args[argIdx]
			prefix, complete, ok := literalPrefix(info, f, arg, 0)
			if !ok {
				pass.Reportf(arg.Pos(),
					"fault point label is not resolvable to a literal; labels must start with one of %s so chaos rules can target them",
					strings.Join(faultTaxonomy, ", "))
				return true
			}
			if !validFaultLabel(prefix, complete) {
				pass.Reportf(arg.Pos(),
					"fault point label %q is outside the documented taxonomy (%s)",
					prefix, strings.Join(faultTaxonomy, ", "))
			}
			return true
		})
	}
}

// literalPrefix resolves the statically known leading string of an
// expression: a string literal or constant yields its full value
// (complete=true); lit+expr yields the literal part (complete=false); a
// local variable with exactly one assignment resolves through that
// assignment. ok=false means nothing is statically known.
func literalPrefix(info *types.Info, f *ast.File, e ast.Expr, depth int) (prefix string, complete bool, ok bool) {
	if depth > 8 {
		return "", false, false
	}
	if tv, found := info.Types[e]; found && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true, true
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return literalPrefix(info, f, e.X, depth+1)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			p, _, ok := literalPrefix(info, f, e.X, depth+1)
			return p, false, ok
		}
	case *ast.Ident:
		obj, okv := info.Defs[e].(*types.Var)
		if !okv {
			obj, okv = info.Uses[e].(*types.Var)
		}
		if !okv || obj == nil {
			return "", false, false
		}
		if src := singleAssignment(info, f, obj); src != nil {
			return literalPrefix(info, f, src, depth+1)
		}
	}
	return "", false, false
}

// singleAssignment returns the one expression ever assigned to obj
// within the file, or nil when there are zero or several (then the
// value is not statically known).
func singleAssignment(info *types.Info, f *ast.File, obj *types.Var) ast.Expr {
	var src ast.Expr
	count := 0
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] == obj || info.Uses[id] == obj {
					count++
					if len(n.Rhs) == len(n.Lhs) {
						src = n.Rhs[i]
					} else {
						src = nil // multi-value assignment: give up
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] == obj {
					count++
					if i < len(n.Values) {
						src = n.Values[i]
					}
				}
			}
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return src
}
