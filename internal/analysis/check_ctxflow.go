package analysis

// The ctxflow check: request-context propagation through the serving
// and execution layers. Deadlines, cancellation and fault evaluation
// all ride the context.Context threaded from splashd/characterize down
// to cache I/O, journal appends and coalesced flights (PR 6/PR 8); a
// path that swaps in context.Background()/TODO() silently detaches that
// machinery — the request "completes" but can no longer be cancelled,
// deadlined, or fault-scoped.
//
// Flow-sensitively, in the scoped packages, the check tracks which
// local variables hold a FRESH context (one created by
// context.Background()/context.TODO(), or derived from one via
// context.With*) and reports any module-internal call whose
// context.Context argument is fresh on some path. One shape is
// exempted, because it is the documented nil-tolerance idiom of this
// repository's APIs and the caller's context is provably absent there:
//
//	if ctx == nil {
//		ctx = context.Background()
//	}

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxObjKey gives a flow-fact identity to a context-typed variable.
func ctxObjKey(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// freshCtxCall reports whether call is context.Background() or
// context.TODO().
func freshCtxCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// deriveCtxCall returns the parent-context argument of a context.With*
// call (WithCancel, WithTimeout, WithDeadline, WithValue, ...), or nil.
func deriveCtxCall(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" ||
		!strings.HasPrefix(fn.Name(), "With") || len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

// nilGuardedFresh collects the positions of Background()/TODO() calls
// justified by the nil-tolerance idiom: inside `if x == nil { x = ... }`
// where x is a context-typed variable assigned the fresh context.
func nilGuardedFresh(info *types.Info, f *ast.File) map[token.Pos]bool {
	justified := make(map[token.Pos]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			return true
		}
		var guarded *ast.Ident
		for _, pair := range [][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			id, okID := pair[0].(*ast.Ident)
			nilID, okNil := pair[1].(*ast.Ident)
			if !okID || !okNil {
				continue
			}
			if _, isNil := info.Uses[nilID].(*types.Nil); !isNil {
				continue
			}
			if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
				guarded = id
			}
		}
		if guarded == nil {
			return true
		}
		guardObj := info.Uses[guarded]
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.Uses[id] != guardObj || i >= len(as.Rhs) {
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && freshCtxCall(info, call) {
					justified[call.Pos()] = true
				}
			}
			return true
		})
		return true
	})
	return justified
}

// runCtxflow applies the analysis to the configured packages.
func (cfg Config) runCtxflow(pass *Pass) {
	if !hasAnyPrefix(pass.Pkg.Types.Path(), cfg.CtxScope) {
		return
	}
	modPrefix, _, _ := strings.Cut(pass.Pkg.Path, "/")
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		justified := nilGuardedFresh(info, f)
		for _, g := range pass.Pkg.FuncCFGs(f) {
			runCtxflowFunc(pass, info, g, justified, modPrefix)
		}
	}
}

func runCtxflowFunc(pass *Pass, info *types.Info, g *CFG, justified map[token.Pos]bool, modPrefix string) {
	// exprFresh decides, under fact `fresh`, whether e evaluates to a
	// fresh (caller-detached) context.
	var exprFresh func(e ast.Expr, fresh stringSet) bool
	exprFresh = func(e ast.Expr, fresh stringSet) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return exprFresh(e.X, fresh)
		case *ast.CallExpr:
			if freshCtxCall(info, e) {
				return !justified[e.Pos()]
			}
			if parent := deriveCtxCall(info, e); parent != nil {
				return exprFresh(parent, fresh)
			}
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return fresh[ctxObjKey(obj)]
			}
		}
		return false
	}

	// assign applies one assignment or declaration to the fact.
	assign := func(lhs []ast.Expr, rhs []ast.Expr, fresh stringSet) stringSet {
		out := fresh
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			var r ast.Expr
			switch {
			case len(rhs) == len(lhs):
				r = rhs[i]
			case len(rhs) == 1:
				r = rhs[0] // multi-value: ctx, cancel := context.WithX(...)
			}
			if r != nil && exprFresh(r, out) {
				out = out.with(ctxObjKey(obj))
			} else {
				out = out.without(ctxObjKey(obj))
			}
		}
		return out
	}

	step := func(n ast.Node, in stringSet) stringSet {
		out := in
		inspectAtom(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				out = assign(m.Lhs, m.Rhs, out)
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(m.Names))
				for i, name := range m.Names {
					lhs[i] = name
				}
				out = assign(lhs, m.Values, out)
			}
			return true
		})
		return out
	}

	facts := solve(g, stringSet{}, flowFuncs[stringSet]{
		step:  step,
		join:  stringSet.union,
		equal: stringSet.equal,
	})

	// Report pass: flag module-internal calls receiving a fresh context.
	for _, b := range g.Blocks {
		in, reachable := facts[b]
		if !reachable {
			continue
		}
		cur := in
		for _, n := range b.Nodes {
			inspectAtom(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, sig := calleeOf(info, call)
				if callee == nil || sig == nil || callee.Pkg() == nil {
					return true
				}
				path := callee.Pkg().Path()
				if path != modPrefix && !strings.HasPrefix(path, modPrefix+"/") {
					return true
				}
				params := sig.Params()
				for i := 0; i < params.Len() && i < len(call.Args); i++ {
					if !isContextType(params.At(i).Type()) {
						continue
					}
					if exprFresh(call.Args[i], cur) {
						pass.Reportf(call.Args[i].Pos(),
							"%s receives a context.Background/TODO on this path, detaching it from request cancellation, deadlines and fault scoping; thread the caller's ctx (or guard with `if ctx == nil`)",
							callee.Name())
					}
				}
				return true
			})
			cur = step(n, cur)
		}
	}
}

// calleeOf resolves a call's target function object and signature
// (methods through Selections, package functions through Uses).
func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, *types.Signature) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn, s.Type().(*types.Signature)
			}
			return nil, nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, fn.Type().(*types.Signature)
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, fn.Type().(*types.Signature)
		}
	}
	return nil, nil
}
