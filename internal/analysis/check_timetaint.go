package analysis

// The timetaint check: wall-clock and duration values must not flow
// into exported results or cache keys. The content-addressed cache and
// the 304/coalescing machinery all assume a request's identity and its
// result are pure functions of the experiment inputs; a time-derived
// value folded into runner.KeyOf (every rerun misses), a Request
// Key/ETag/Canonical (revalidation breaks), a Cache.Put value (two
// byte-different entries for one key) or an exported result returned
// from internal/core (reruns stop being byte-identical) silently
// destroys those contracts. The serving layer legitimately measures
// time (latency metrics, heartbeats, deadlines), so an import-level ban
// is wrong there — the check instead runs an intraprocedural taint
// analysis over the CFG: time.Now/Since/Until seed the taint, it
// propagates through arithmetic, method calls on tainted receivers and
// assignments, and only the sink uses above are reported.

import (
	"go/ast"
	"go/types"
	"strings"
)

// timeTaintSources are the time package functions whose results carry
// wall-clock taint.
var timeTaintSources = map[string]bool{"Now": true, "Since": true, "Until": true}

// taintSinkMethods are method names whose arguments must be
// wall-clock-free when defined on module types.
var taintSinkMethods = map[string]bool{"Key": true, "ETag": true, "Canonical": true}

// runTimetaint applies the taint analysis to the configured packages.
func (cfg Config) runTimetaint(pass *Pass) {
	path := pass.Pkg.Types.Path()
	if !hasAnyPrefix(path, cfg.TaintScope) {
		return
	}
	resultScope := hasAnyPrefix(path, cfg.TaintResultScope)
	modPrefix, _, _ := strings.Cut(pass.Pkg.Path, "/")
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, g := range pass.Pkg.FuncCFGs(f) {
			runTimetaintFunc(pass, info, g, modPrefix, resultScope)
		}
	}
}

// timeSourceCall matches time.Now/Since/Until.
func timeSourceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && timeTaintSources[fn.Name()]
}

func runTimetaintFunc(pass *Pass, info *types.Info, g *CFG, modPrefix string, resultScope bool) {
	// Pre-scan: functions that never touch a taint source are clean.
	touches := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectAtom(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && timeSourceCall(info, call) {
					touches = true
				}
				return !touches
			})
		}
	}
	if !touches {
		return
	}

	// exprTaint decides, under fact `tainted`, whether e carries
	// wall-clock taint.
	var exprTaint func(e ast.Expr, tainted stringSet) bool
	exprTaint = func(e ast.Expr, tainted stringSet) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return exprTaint(e.X, tainted)
		case *ast.UnaryExpr:
			return exprTaint(e.X, tainted)
		case *ast.StarExpr:
			return exprTaint(e.X, tainted)
		case *ast.BinaryExpr:
			return exprTaint(e.X, tainted) || exprTaint(e.Y, tainted)
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return tainted[objKey(obj)]
			}
		case *ast.CallExpr:
			if timeSourceCall(info, e) {
				return true
			}
			// Conversions and method calls propagate the taint of their
			// operands: int64(d), d.Seconds(), t.Sub(u), t.Format(...).
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if s := info.Selections[sel]; s != nil && exprTaint(sel.X, tainted) {
					return true
				}
			}
			for _, a := range e.Args {
				if exprTaint(a, tainted) {
					return true
				}
			}
		case *ast.SelectorExpr:
			// Field read off a tainted value stays tainted.
			return exprTaint(e.X, tainted)
		case *ast.IndexExpr:
			return exprTaint(e.X, tainted)
		}
		return false
	}

	step := func(n ast.Node, in stringSet) stringSet {
		out := in
		inspectAtom(n, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				var r ast.Expr
				switch {
				case len(as.Rhs) == len(as.Lhs):
					r = as.Rhs[i]
				case len(as.Rhs) == 1:
					r = as.Rhs[0]
				}
				k := objKey(obj)
				if r != nil && exprTaint(r, out) {
					out = out.with(k)
				} else {
					out = out.without(k)
				}
			}
			return true
		})
		return out
	}

	facts := solve(g, stringSet{}, flowFuncs[stringSet]{
		step:  step,
		join:  stringSet.union,
		equal: stringSet.equal,
	})

	exported := false
	if fd, ok := g.Fn.(*ast.FuncDecl); ok {
		exported = fd.Name.IsExported()
	}

	for _, b := range g.Blocks {
		in, reachable := facts[b]
		if !reachable {
			continue
		}
		cur := in
		for _, n := range b.Nodes {
			inspectAtom(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					reportTaintSink(pass, info, m, cur, exprTaint, modPrefix)
				case *ast.ReturnStmt:
					if resultScope && exported {
						for _, r := range m.Results {
							// A returned module-internal call is the callee's
							// responsibility: its arguments hit the sink rules
							// above and its own returns are analyzed in turn —
							// flagging it here would double-report.
							if call, okc := r.(*ast.CallExpr); okc {
								if fn, _ := calleeOf(info, call); fn != nil && fn.Pkg() != nil {
									p := fn.Pkg().Path()
									if p == modPrefix || strings.HasPrefix(p, modPrefix+"/") {
										continue
									}
								}
							}
							if exprTaint(r, cur) {
								pass.Reportf(r.Pos(),
									"wall-clock-derived value returned from exported %s; results must be byte-identical across reruns — derive reported values from logical clocks/inputs only", g.FuncName())
							}
						}
					}
				}
				return true
			})
			cur = step(n, cur)
		}
	}
}

// reportTaintSink flags tainted arguments reaching key/result sinks.
func reportTaintSink(pass *Pass, info *types.Info, call *ast.CallExpr, cur stringSet,
	exprTaint func(ast.Expr, stringSet) bool, modPrefix string) {

	fn, sig := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || sig == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != modPrefix && !strings.HasPrefix(path, modPrefix+"/") {
		return
	}
	switch {
	case fn.Name() == "KeyOf" && strings.HasSuffix(path, "internal/runner"):
		for _, a := range call.Args {
			if exprTaint(a, cur) {
				pass.Reportf(a.Pos(),
					"wall-clock-derived value flows into runner.KeyOf; cache keys must be pure functions of the experiment inputs (every rerun would miss)")
			}
		}
	case taintSinkMethods[fn.Name()] && sig.Recv() != nil:
		for _, a := range call.Args {
			if exprTaint(a, cur) {
				pass.Reportf(a.Pos(),
					"wall-clock-derived value flows into %s.%s; request identity must not depend on when it was computed", recvTypeName(sig), fn.Name())
			}
		}
	case fn.Name() == "Put" && strings.HasSuffix(path, "internal/runner") && len(call.Args) >= 3:
		if exprTaint(call.Args[2], cur) {
			pass.Reportf(call.Args[2].Pos(),
				"wall-clock-derived bytes flow into Cache.Put; cached results must be byte-identical across reruns")
		}
	}
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "receiver"
}
