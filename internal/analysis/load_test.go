package analysis_test

import (
	"errors"
	"strings"
	"testing"

	"splash2/internal/analysis"
)

// TestLoaderHonorsBuildConstraints: the buildtag fixture redeclares a
// symbol in a file gated behind a tag that is never set; loading
// succeeds only if parseDir excludes that file the way `go build` does.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(fixturePrefix + "/buildtag")
	if err != nil {
		t.Fatalf("loading the buildtag fixture: %v (the constrained file leaked into the package?)", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types.Scope().Lookup("Active") == nil {
		t.Fatal("Active not found in the loaded package")
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (excluded.go must not be parsed)", len(pkg.Files))
	}
}

// TestLoadZeroMatchPattern: a recursive pattern matching nothing is a
// typed NoPackagesError naming the pattern — including when it arrives
// alongside patterns that do match, so a misspelled subtree cannot be
// silently skipped and read as clean.
func TestLoadZeroMatchPattern(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, patterns := range [][]string{
		{"./definitely/not/here/..."},
		{fixturePrefix + "/accounting", "./definitely/not/here/..."},
	} {
		_, err := loader.Load(patterns...)
		var noPkgs *analysis.NoPackagesError
		if !errors.As(err, &noPkgs) {
			t.Fatalf("Load(%v) = %v, want NoPackagesError", patterns, err)
		}
		if !strings.Contains(noPkgs.Pattern, "./definitely/not/here/...") {
			t.Fatalf("NoPackagesError.Pattern = %q, want the failing pattern", noPkgs.Pattern)
		}
	}
}

// TestLoadEmptySubtreePattern: a recursive pattern over an existing
// directory containing no packages is also a zero match.
func TestLoadEmptySubtreePattern(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() // exists, holds no Go files — but lives outside the module
	_, err = loader.Load(dir + "/...")
	var noPkgs *analysis.NoPackagesError
	if !errors.As(err, &noPkgs) {
		t.Fatalf("Load(%s/...) = %v, want NoPackagesError", dir, err)
	}
}
