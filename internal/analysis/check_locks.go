package analysis

// The locks check: a flow-sensitive lockset analysis over mach.Lock
// critical sections. For every function it tracks, per CFG point, the
// set of locks that MAY be held (union at joins) and the set that MUST
// be held (intersection at joins), and reports:
//
//   - Release of a lock that is not must-held: on at least one path to
//     this point the lock was never acquired (or already released) —
//     under PRAM serialization an unpaired Release corrupts the
//     release-time/epoch publication the next acquirer joins.
//   - Acquire of a lock that is already may-held: a double acquire
//     self-deadlocks mach.Lock (it is not reentrant) on that path.
//   - A blocking synchronization call (Barrier.Wait, Flag.Wait,
//     TaskQueues.PopOrSteal, Machine.Epoch) or a phase boundary
//     (ResetStats, FinishRecording) while a lock is may-held: every
//     other participant must reach the same rendezvous, which they
//     cannot if one of them needs the held lock — and the paper's sync
//     accounting would fold lock wait into barrier wait even when it
//     does not deadlock outright.
//
// Locks are identified by the canonical source text of the receiver
// expression (types.ExprString), scoped to the enclosing function: `lk`,
// `s.mu` and `locks[i]` are distinct locks; two syntactically identical
// expressions are conservatively the same lock.

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockFact is the pair lockset fact. must ⊆ may on every consistent path.
type lockFact struct {
	may  stringSet
	must stringSet
}

func lockJoin(a, b lockFact) lockFact {
	return lockFact{may: a.may.union(b.may), must: a.must.intersect(b.must)}
}

func lockEqual(a, b lockFact) bool {
	return a.may.equal(b.may) && a.must.equal(b.must)
}

// barrierLikeMethods are the mach entry points a held lock must not
// cross: all-participant rendezvous and measurement-phase boundaries.
var barrierLikeMethods = map[string]string{
	"Wait":            "a Barrier/Flag wait",
	"PopOrSteal":      "a task-queue wait",
	"Epoch":           "a measurement-phase boundary (Machine.Epoch)",
	"ResetStats":      "a measurement-phase boundary (ResetStats)",
	"FinishRecording": "the end of recording (FinishRecording)",
}

// lockEvent classifies one call atom for the lockset transfer.
type lockEvent int

const (
	lockNone lockEvent = iota
	lockAcquire
	lockRelease
	lockBarrier
)

// classifyLockCall recognizes mach.Lock Acquire/Release and the
// barrier-like calls. id is the lock identity for acquire/release and
// the human description for barrier-like calls.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (ev lockEvent, id string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone, ""
	}
	s := info.Selections[sel]
	if s == nil {
		return lockNone, ""
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !isMachPackage(fn.Pkg()) {
		return lockNone, ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return lockNone, ""
	}
	switch named.Obj().Name() {
	case "Lock":
		switch fn.Name() {
		case "Acquire":
			return lockAcquire, types.ExprString(sel.X)
		case "Release":
			return lockRelease, types.ExprString(sel.X)
		}
	case "Barrier", "Flag", "TaskQueues", "Machine":
		if desc, ok := barrierLikeMethods[fn.Name()]; ok {
			// Flag.Set and IsSet do not block; only the waits count.
			if named.Obj().Name() == "Flag" && fn.Name() != "Wait" {
				return lockNone, ""
			}
			return lockBarrier, desc
		}
	}
	return lockNone, ""
}

// runLocks applies the lockset analysis to every function of the
// package. The mach package itself is exempt: it implements the
// primitives the invariant is stated over.
func runLocks(pass *Pass) {
	if isMachPackage(pass.Pkg.Types) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, g := range pass.Pkg.FuncCFGs(f) {
			runLocksFunc(pass, info, g)
		}
	}
}

func runLocksFunc(pass *Pass, info *types.Info, g *CFG) {
	// Fast pre-scan: skip functions that never touch a mach.Lock (the
	// overwhelming majority) without solving anything.
	touches := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectAtom(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if ev, _ := classifyLockCall(info, call); ev == lockAcquire || ev == lockRelease {
						touches = true
					}
				}
				return !touches
			})
		}
	}
	if !touches {
		return
	}

	step := func(n ast.Node, in lockFact) lockFact {
		out := in
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// Deferred releases run at function exit, not here; the
			// registration point does not change the lockset.
			return out
		}
		inspectAtom(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch ev, id := classifyLockCall(info, call); ev {
			case lockAcquire:
				out = lockFact{may: out.may.with(id), must: out.must.with(id)}
			case lockRelease:
				out = lockFact{may: out.may.without(id), must: out.must.without(id)}
			}
			return true
		})
		return out
	}
	facts := solve(g, lockFact{may: stringSet{}, must: stringSet{}}, flowFuncs[lockFact]{
		step: step, join: lockJoin, equal: lockEqual,
	})

	// Report pass: re-step through each reachable block and diagnose at
	// the offending call sites with the fact in flight.
	for _, b := range g.Blocks {
		in, reachable := facts[b]
		if !reachable {
			continue
		}
		cur := in
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue
			}
			inspectAtom(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				ev, id := classifyLockCall(info, call)
				switch ev {
				case lockAcquire:
					if cur.may[id] {
						pass.Reportf(call.Pos(),
							"second Acquire of %s while it may already be held (mach.Lock is not reentrant; this path self-deadlocks)", id)
					}
				case lockRelease:
					if !cur.must[id] {
						if cur.may[id] {
							pass.Reportf(call.Pos(),
								"Release of %s which is not held on every path to this point", id)
						} else {
							pass.Reportf(call.Pos(),
								"Release of %s without a matching Acquire on this path", id)
						}
					}
				case lockBarrier:
					if len(cur.may) > 0 {
						pass.Reportf(call.Pos(),
							"lock %s may be held across %s; all participants must reach the rendezvous, and sync accounting folds the lock wait into it — release before synchronizing",
							strings.Join(cur.may.sorted(), ", "), id)
					}
				}
				return true
			})
			cur = step(n, cur)
		}
	}
}
