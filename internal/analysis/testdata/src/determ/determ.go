// Package determ seeds determinism violations: wall-clock reads, a
// global math/rand import, and map-order iteration.
package determ

import (
	"math/rand" // want determinism
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want determinism
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism
}

func iterate(m map[string]int) []string {
	var keys []string
	for k := range m { // want determinism
		keys = append(keys, k)
	}
	return keys
}

func iterateAllowed(m map[string]int) int {
	s := 0
	//splash:allow determinism fixture: sum is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

// Durations and deadline arithmetic that never read the clock are fine.
func budget(d time.Duration) time.Duration { return 2 * d }

func draw() int { return rand.Intn(4) }
