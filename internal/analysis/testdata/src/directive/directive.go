// Package directive seeds malformed and unused //splash:allow
// directives; the framework reports them as check "directive" findings.
// The `// want+1 <check>` form marks a finding on the following line.
package directive

// want+1 directive
//splash:allow

// want+1 directive
//splash:allow bogus some reason

// want+1 directive
//splash:allow accounting

// want+1 directive
//splash:allow determinism fixture: nothing on the next line triggers, so this is unused

// Two directives for the same check on adjacent lines overlap: each
// covers the other's line, so the pair would mark itself used forever.
// The first is reported as unused (nothing real to suppress), the
// second as a duplicate.
//splash:allow faultpoints fixture: first of an overlapping pair // want directive
//splash:allow faultpoints fixture: second of an overlapping pair // want directive
