// Package directive seeds malformed and unused //splash:allow
// directives; the framework reports them as check "directive" findings.
// The `// want+1 <check>` form marks a finding on the following line.
package directive

// want+1 directive
//splash:allow

// want+1 directive
//splash:allow bogus some reason

// want+1 directive
//splash:allow accounting

// want+1 directive
//splash:allow determinism fixture: nothing on the next line triggers, so this is unused
