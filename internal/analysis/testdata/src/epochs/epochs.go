// Package epochs seeds violations of the release→acquire epoch
// publication order: a waiter-waking call (sync.Cond Broadcast/Signal,
// or the Unlock paired with a release-time store) reached on a path
// with no prior epoch publication. The shapes mirror internal/mach's
// Flag.Set and Lock.Release.
package epochs

import "sync"

type proc struct{ epoch uint64 }

// syncRelease mirrors mach.Proc.syncRelease: flush the reference
// buffer, bump and return the epoch.
func (p *proc) syncRelease() uint64 {
	p.epoch++
	return p.epoch
}

type flag struct {
	mu       sync.Mutex
	cv       *sync.Cond
	set      bool
	setEpoch uint64
}

func (f *flag) setOK(p *proc) {
	f.mu.Lock()
	f.set = true
	f.setEpoch = p.syncRelease()
	f.cv.Broadcast()
	f.mu.Unlock()
}

func (f *flag) setBeforePublish(p *proc) {
	f.mu.Lock()
	f.set = true
	f.cv.Broadcast() // want epochs
	f.setEpoch = p.syncRelease()
	f.mu.Unlock()
}

func (f *flag) publishSkippedOnOnePath(p *proc, fast bool) {
	f.mu.Lock()
	f.set = true
	if !fast {
		f.setEpoch = p.syncRelease()
	}
	f.cv.Broadcast() // want epochs
	f.mu.Unlock()
}

func (f *flag) signalOK(p *proc) {
	f.mu.Lock()
	_ = p.syncRelease()
	f.cv.Signal()
	f.mu.Unlock()
}

type lock struct {
	mu           sync.Mutex
	lastRelease  uint64
	releaseEpoch uint64
}

// The Lock.Release shape: a release-time store makes the Unlock the
// edge waiters observe, so the epoch must be published before it.
func (l *lock) releaseOK(p *proc, now uint64) {
	l.mu.Lock()
	l.lastRelease = now
	l.releaseEpoch = p.syncRelease()
	l.mu.Unlock()
}

func (l *lock) releaseUnpublished(p *proc, now uint64) {
	l.mu.Lock()
	l.lastRelease = now
	l.mu.Unlock() // want epochs
}

// No release-time store: a plain critical section's Unlock is not a
// sync edge the recorder orders, so nothing is required before it.
func (l *lock) plainCriticalSection(xs []uint64) {
	l.mu.Lock()
	xs[0]++
	l.mu.Unlock()
}

func (f *flag) suppressed(p *proc) {
	f.mu.Lock()
	f.set = true
	//splash:allow epochs fixture: no recorder attached to this primitive
	f.cv.Broadcast()
	f.mu.Unlock()
}
