// Package faultpts seeds fault-injection label violations: labels
// outside the documented taxonomy and labels the analyzer cannot
// resolve to a literal prefix.
package faultpts

import (
	"context"
	"io"
	"strconv"

	"splash2/internal/fault"
)

func good(inj *fault.Injector, key string) error {
	if err := inj.Do(context.Background(), "job:run fft"); err != nil {
		return err
	}
	// A single-assignment local with a literal prefix resolves.
	op := "cache.get:" + key
	if err := inj.Do(context.Background(), op); err != nil {
		return err
	}
	_ = inj.Data("cache.put:"+key, nil)
	return nil
}

const traceOp = "trace.read"

func goodConst(inj *fault.Injector, r io.Reader) io.Reader {
	return inj.Reader(traceOp, r)
}

func goodV2Blocks(inj *fault.Injector, i int) error {
	if err := inj.Do(context.Background(), "trace.read.footer"); err != nil {
		return err
	}
	_ = inj.Data("trace.read.block:"+strconv.Itoa(i), nil)
	return nil
}

func goodSampled(inj *fault.Injector, app string) error {
	return inj.Do(context.Background(), "sample.estimate:"+app)
}

func bad(inj *fault.Injector, r io.Reader, label string) {
	_ = inj.Do(context.Background(), "disk.write:x") // want faultpoints
	_ = inj.Reader(label, r)                         // want faultpoints
}

func badReassigned(inj *fault.Injector, key string) {
	op := "job:" + key
	op = key                             // second assignment: prefix no longer statically known
	_ = inj.Do(context.Background(), op) // want faultpoints
}
