// Package timetaint seeds wall-clock taint violations: time-derived
// values flowing into cache keys, request identities, cached bytes, and
// exported results.
package timetaint

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"splash2/internal/runner"
)

type ticket struct{ id string }

func (t *ticket) ETag(v string) string { return t.id + ":" + v }

func busy(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

func KeyFromTime(name string) runner.Key {
	stamp := time.Now().UnixNano()
	return runner.KeyOf("bench", name, fmt.Sprint(stamp)) // want timetaint
}

func KeyFromInputs(name string, n int) runner.Key {
	return runner.KeyOf("bench", name, strconv.Itoa(n))
}

func StampedETag(t *ticket) string {
	return t.ETag(time.Now().String()) // want timetaint
}

func InputETag(t *ticket, n int) string {
	return t.ETag(strconv.Itoa(n))
}

// Exported result derived from the wall clock: reruns stop being
// byte-identical.
func MeasureBad(n int) float64 {
	t0 := time.Now()
	busy(n)
	return time.Since(t0).Seconds() // want timetaint
}

// Unexported helpers may measure; only exported results are the
// reproducibility surface.
func measureInternal(n int) float64 {
	t0 := time.Now()
	busy(n)
	return time.Since(t0).Seconds()
}

// Arithmetic and method calls propagate the taint.
func MeasureDerived(n int) int64 {
	t0 := time.Now()
	busy(n)
	d := time.Since(t0)
	return d.Nanoseconds() / int64(n+1) // want timetaint
}

// Wall-clock bytes cached under a pure key: two runs produce two
// different "identical" entries.
func PutStamped(ctx context.Context, c *runner.Cache, k runner.Key) error {
	v := []byte(time.Now().String())
	return c.Put(ctx, k, v) // want timetaint
}

func PutPure(ctx context.Context, c *runner.Cache, k runner.Key, n int) error {
	return c.Put(ctx, k, []byte(strconv.Itoa(n)))
}

// Overwriting the variable with an input-derived value kills the taint.
func Washed(name string) runner.Key {
	s := time.Now().String()
	s = name
	return runner.KeyOf("bench", s)
}

func SuppressedETag(t *ticket) string {
	//splash:allow timetaint fixture: diagnostic etag, never used as a cache identity
	return t.ETag(time.Now().String())
}
