// Package tracecap seeds trace-capture violations: application/driver
// code calling the per-reference memsys entry points directly, which
// bypasses internal/mach's batched epoch-stamped capture path. The
// `// want <check>` markers are the golden diagnostics asserted by
// analysis_test.go.
package tracecap

import "splash2/internal/memsys"

// record stands in for app code writing straight into a recorder.
func record(rec *memsys.Recorder, a memsys.Addr) {
	rec.Record(0, a, true)                     // want tracecapture
	rec.RecordReset()                          // want tracecapture
	rec.RecordBatch(1, 3, []uint64{uint64(a)}) // want tracecapture
	rec.RecordResetAt(4)                       // want tracecapture
}

// simulate stands in for driver code poking the memory system per event.
func simulate(sys *memsys.System, a memsys.Addr) {
	sys.Access(0, a, false)                      // want tracecapture
	sys.AccessAt(1, a, true, 7)                  // want tracecapture
	sys.AccessBatch(2, []uint64{8}, []uint64{1}) // want tracecapture
}

// methodValue escapes via a bound method, not a call.
func methodValue(sys *memsys.System) func(int, memsys.Addr, bool) (bool, memsys.MissKind) {
	return sys.Access // want tracecapture
}

// suppressed shows a justified tooling escape.
func suppressed(rec *memsys.Recorder) {
	//splash:allow tracecapture fixture: deliberate single-event tooling write with a reason
	rec.Record(0, 8, false)
}

// replayIsClean: the replay entry points are not per-reference capture
// and stay legal everywhere.
func replayIsClean(tr *memsys.Trace, cfg memsys.Config) (memsys.Stats, error) {
	return memsys.Replay(tr, cfg)
}
