// Package procflow seeds processor-ownership violations: procs stored
// in globals, structs and composite types, and procs captured by
// go-spawned closures.
package procflow

import "splash2/internal/mach"

var leaked *mach.Proc // want procflow

var pool []*mach.Proc // want procflow

type holder struct {
	p *mach.Proc // want procflow
	n int
}

type nested struct {
	m map[int]*mach.Proc // want procflow
}

type clean struct{ id int }

func spawn(p *mach.Proc, ch chan int) {
	go func() {
		_ = p // want procflow
		ch <- 1
	}()
	// Ownership transfer by argument is the mach.Run idiom: the spawned
	// goroutine IS the processor. Not flagged.
	go body(p)
}

func spawnAllowed(p *mach.Proc, done chan struct{}) {
	go func() {
		//splash:allow procflow fixture: supervisor reads the proc id only, issues no references
		_ = p.ID
		close(done)
	}()
}

func body(p *mach.Proc) {
	// A closure on the proc's own goroutine may capture it freely.
	f := func() { p.Instr(1) }
	f()
}
