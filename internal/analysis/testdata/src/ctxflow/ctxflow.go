// Package ctxflow seeds request-context violations: paths on which a
// module-internal call receives a context created by
// context.Background/TODO instead of the caller's context.
package ctxflow

import "context"

func work(ctx context.Context, n int) error {
	_ = ctx
	return nil
}

func detachedVar(n int) {
	ctx := context.Background()
	work(ctx, n) // want ctxflow
}

func detachedDirect() {
	work(context.TODO(), 1) // want ctxflow
}

func detachedDerived() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	work(ctx, 2) // want ctxflow
}

func detachedOnOnePath(ctx context.Context, cold bool) {
	if cold {
		ctx = context.Background()
	}
	work(ctx, 3) // want ctxflow
}

func threaded(ctx context.Context) {
	work(ctx, 4)
}

func derivedThreaded(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	work(c, 5)
}

// The documented nil-tolerance idiom: the caller's context is provably
// absent, so substituting Background is the API's contract, not a leak.
func nilGuarded(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	work(ctx, 6)
}

// Reassignment from the caller's context washes the freshness.
func rethreaded(ctx context.Context) {
	c := context.Background()
	c = ctx
	work(c, 7)
}

func suppressed() {
	//splash:allow ctxflow fixture: lifecycle event outside any request
	work(context.Background(), 8)
}
