// Package locks seeds lockset violations over mach.Lock critical
// sections: double acquires, releases without a matching acquire, and
// locks held across barrier-like rendezvous.
package locks

import "splash2/internal/mach"

type shared struct {
	mu    mach.Lock
	other mach.Lock
	bar   *mach.Barrier
}

func doubleAcquire(p *mach.Proc, s *shared) {
	s.mu.Acquire(p)
	s.mu.Acquire(p) // want locks
	s.mu.Release(p)
}

func releaseUnheld(p *mach.Proc, s *shared) {
	s.other.Release(p) // want locks
}

func releaseNotOnEveryPath(p *mach.Proc, s *shared, cond bool) {
	if cond {
		s.mu.Acquire(p)
	}
	s.mu.Release(p) // want locks
}

func heldAcrossBarrier(p *mach.Proc, s *shared) {
	s.mu.Acquire(p)
	s.bar.Wait(p) // want locks
	s.mu.Release(p)
}

func heldOnOnePathAcrossBarrier(p *mach.Proc, s *shared, fast bool) {
	if !fast {
		s.mu.Acquire(p)
	}
	s.bar.Wait(p) // want locks
	if !fast {
		s.mu.Release(p) // want locks
	}
}

func clean(p *mach.Proc, s *shared) {
	s.mu.Acquire(p)
	s.mu.Release(p)
	s.bar.Wait(p)
}

func cleanEarlyReturn(p *mach.Proc, s *shared, n int) int {
	s.mu.Acquire(p)
	if n > 0 {
		s.mu.Release(p)
		return n
	}
	s.mu.Release(p)
	return 0
}

func cleanLoop(p *mach.Proc, s *shared, xs []int) {
	for range xs {
		s.mu.Acquire(p)
		s.mu.Release(p)
	}
	s.bar.Wait(p)
}

func cleanNested(p *mach.Proc, s *shared) {
	s.mu.Acquire(p)
	s.other.Acquire(p)
	s.other.Release(p)
	s.mu.Release(p)
}

// A panic path never reaches the release; the terminated path is not a
// leak the next statement can observe.
func cleanPanics(p *mach.Proc, s *shared, ok bool) {
	s.mu.Acquire(p)
	if !ok {
		panic("bad state")
	}
	s.mu.Release(p)
}

func suppressed(p *mach.Proc, s *shared) {
	s.mu.Acquire(p)
	//splash:allow locks fixture: the rendezvous partners never contend for this lock
	s.bar.Wait(p)
	s.mu.Release(p)
}
