// Package durability seeds unchecked-error violations on the crash
// safety surface: atomic renames, closes of writable files, and the
// runner cache/journal/lease operations.
package durability

import (
	"context"
	"os"

	"splash2/internal/runner"
)

func renameDiscarded(dir string) {
	os.Rename(dir+"/a", dir+"/b") // want durability
}

func renameBlank(dir string) {
	_ = os.Rename(dir+"/a", dir+"/b") // want durability
}

func renameChecked(dir string) error {
	return os.Rename(dir+"/a", dir+"/b")
}

// The first rename's error is clobbered by the second before anything
// reads it; `_ =` discards rather than consults, so the second error is
// never consulted either.
func renameOverwritten(dir string) {
	err := os.Rename(dir+"/a", dir+"/b") // want durability
	err = os.Rename(dir+"/b", dir+"/c")  // want durability
	_ = err
}

func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want durability
	_, err = f.Write([]byte("x"))
	return err
}

// The close-twice idiom: checked Close on the success path, deferred
// Close as cleanup for the error paths. Not flagged.
func closeTwice(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close()
}

// Close on a read-only file cannot lose buffered writes.
func readOnlyClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

func goClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	go f.Close() // want durability
	return nil
}

func putDiscarded(ctx context.Context, c *runner.Cache, k runner.Key, v []byte) {
	c.Put(ctx, k, v) // want durability
}

func putChecked(ctx context.Context, c *runner.Cache, k runner.Key, v []byte) error {
	return c.Put(ctx, k, v)
}

// The standard conditional-propagation idiom: the close error is
// deliberately superseded when an earlier error is already being
// returned. Not flagged.
func closePropagated(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func suppressed(dir string) {
	//splash:allow durability fixture: scratch-space rename, both names are temp artifacts
	os.Rename(dir+"/a", dir+"/b")
}
