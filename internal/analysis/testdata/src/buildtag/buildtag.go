// Package buildtag exercises the loader's build-constraint handling:
// excluded.go redeclares Active behind a tag that is never set, so this
// package only type-checks if the loader honors the constraint exactly
// as `go build` would.
package buildtag

func Active() int { return 1 }
