//go:build splashlint_never_tag

// Redeclares Active: type-checking fails if the loader parses this
// file despite its inactive build constraint.
package buildtag

func Active() int { return 2 }
