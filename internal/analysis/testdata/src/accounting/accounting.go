// Package accounting seeds reference-stream accounting violations: the
// analyzer must flag every escape-hatch use in measured code and accept
// the init/verify and suppressed ones. The `// want <check>` markers are
// the golden diagnostics asserted by analysis_test.go.
package accounting

import "splash2/internal/mach"

type state struct {
	f *mach.F64Array
	i *mach.IntArray
	c *mach.C128Array
}

// compute stands in for measured application code.
func compute(s state, p *mach.Proc) float64 {
	v := s.f.Peek(0) // want accounting
	s.f.Init(1, v)   // want accounting
	_ = s.i.Raw()    // want accounting
	_ = s.c.Peek(2)  // want accounting
	s.f.Set(p, 0, v) // accounted access: clean
	return v
}

// methodValue escapes via a bound method, not a call.
func methodValue(s state) func() []float64 {
	return s.f.Raw // want accounting
}

// suppressed shows a justified escape in measured code.
func suppressed(s state) float64 {
	//splash:allow accounting fixture: deliberate unaccounted read with a reason
	return s.f.Peek(0)
}

// initInput constructs inputs; escapes are part of the contract here.
func initInput(s state) { s.f.Init(0, 1) }

// verifyOutput checks results; escapes are part of the contract here.
func verifyOutput(s state) float64 { return s.f.Peek(0) }
