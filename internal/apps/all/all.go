// Package all registers the complete SPLASH-2 suite: import it for side
// effects to make every program available through the apps registry.
package all

import (
	_ "splash2/internal/apps/barnes"
	_ "splash2/internal/apps/cholesky"
	_ "splash2/internal/apps/fft"
	_ "splash2/internal/apps/fmm"
	_ "splash2/internal/apps/lu"
	_ "splash2/internal/apps/ocean"
	_ "splash2/internal/apps/radiosity"
	_ "splash2/internal/apps/radix"
	_ "splash2/internal/apps/raytrace"
	_ "splash2/internal/apps/volrend"
	_ "splash2/internal/apps/water"
)
