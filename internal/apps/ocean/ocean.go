// Package ocean implements the SPLASH-2 Ocean application: large-scale
// ocean movement driven by eddy and boundary currents. Relative to the
// SPLASH original it (i) partitions grids into square-like subgrids rather
// than column groups to improve the communication-to-computation ratio,
// (ii) represents grids as conceptually 2-D arrays with all subgrids
// allocated contiguously and locally, and (iii) solves its elliptic
// equations with a red-black Gauss-Seidel multigrid solver [Bra77] (§3,
// [WSH93]).
//
// The simulated physics is a barotropic vorticity step: each time-step
// advances the vorticity field with an advective Jacobian plus diffusion,
// then recovers the stream function by solving ∇²ψ = Γ with the multigrid
// solver. This preserves the structure the paper characterizes — many
// near-neighbor stencil phases over multiple grids, streaming through a
// processor's partition, plus multigrid sweeps over a grid hierarchy.
package ocean

import (
	"fmt"
	"math"

	"splash2/internal/apps"
	"splash2/internal/apps/partition"
	"splash2/internal/mach"
)

func init() {
	apps.Register(&apps.App{
		Name:      "ocean",
		FlopBased: true,
		Doc:       "ocean currents: stencil phases + red-black multigrid solver",
		Defaults: map[string]int{
			"n":       64, // interior grid points per side; paper default: 256 (258×258 grid)
			"steps":   2,
			"vcycles": 3,
			"columns": 0, // 1: SPLASH-1-style column-strip partition (ablation)
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["n"], opt["steps"], opt["vcycles"], opt["columns"] != 0)
		},
	})
}

// Ocean is one configured simulation instance.
type Ocean struct {
	mch     *mach.Machine
	n       int
	steps   int
	vcycles int
	pr, pc  int
	h       float64
	dt, nu  float64

	psi, vort, vort2, jac *Grid
	// Multigrid hierarchy: level 0 is the finest (n).
	mgU, mgRHS, mgRes []*Grid
	mgN               []int
	maxres            *mach.F64Array // per-proc residual slots (line padded)
	barrier           *mach.Barrier
}

// New builds the simulation. n must be divisible by both dimensions of
// the processor grid. With columns=true, grids are partitioned into
// column strips instead of square-like subgrids — the SPLASH-1
// organization whose worse perimeter-to-area ratio motivated the SPLASH-2
// rewrite (§3); kept as an ablation.
func New(mch *mach.Machine, n, steps, vcycles int, columns bool) (*Ocean, error) {
	if n < 4 {
		return nil, fmt.Errorf("ocean: grid too small: n=%d", n)
	}
	o := &Ocean{
		mch: mch, n: n, steps: steps, vcycles: vcycles,
		h: 1 / float64(n+1), dt: 1e-4, nu: 1e-2,
		barrier: mch.NewBarrier(),
	}
	if columns {
		o.pr, o.pc = 1, mch.Procs()
	} else {
		o.pr, o.pc = partition.ProcGrid(mch.Procs())
	}

	var err error
	mk := func(sz int) *Grid {
		if err != nil {
			return nil
		}
		var g *Grid
		g, err = NewGrid(mch, sz, o.pr, o.pc)
		return g
	}
	o.psi, o.vort, o.vort2, o.jac = mk(n), mk(n), mk(n), mk(n)

	// Multigrid hierarchy down to the coarsest level that still divides
	// evenly among the processor grid.
	sz := n
	for {
		o.mgN = append(o.mgN, sz)
		o.mgU = append(o.mgU, mk(sz))
		o.mgRHS = append(o.mgRHS, mk(sz))
		o.mgRes = append(o.mgRes, mk(sz))
		next := sz / 2
		if sz%2 != 0 || next < 4 || next%o.pr != 0 || next%o.pc != 0 {
			break
		}
		sz = next
	}
	if err != nil {
		return nil, err
	}

	pad := mch.LineSize() / mach.WordBytes
	o.maxres = mch.NewF64(mch.Procs()*pad, true, mach.Interleaved())

	// Initial vorticity: two counter-rotating gyres.
	for i := 0; i <= n+1; i++ {
		for j := 0; j <= n+1; j++ {
			x := float64(i) * o.h
			y := float64(j) * o.h
			o.vort.Init(i, j, math.Sin(math.Pi*x)*math.Sin(2*math.Pi*y))
			o.psi.Init(i, j, 0)
		}
	}
	return o, nil
}

// Run executes the time-steps. Measurement restarts after the first step
// (initialization and cold start), as the paper does for iterative codes.
func (o *Ocean) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		o.timestep(p, 0)
		if o.steps > 1 {
			m.Epoch(p, o.barrier)
			for s := 1; s < o.steps; s++ {
				o.timestep(p, s)
			}
		}
	})
}

// buffers returns the vorticity source/destination for a step: the two
// grids alternate roles by step parity, so no shared pointer swap is
// needed (every processor derives the same assignment locally).
func (o *Ocean) buffers(step int) (src, dst *Grid) {
	if step%2 == 0 {
		return o.vort, o.vort2
	}
	return o.vort2, o.vort
}

func (o *Ocean) timestep(p *mach.Proc, step int) {
	i0, i1, j0, j1 := o.psi.Block(p.ID)
	h2 := o.h * o.h
	src, dst := o.buffers(step)

	// Phase 1: advective Jacobian J(ψ,Γ) into its own grid.
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			dpsiX := o.psi.Get(p, i+1, j) - o.psi.Get(p, i-1, j)
			dpsiY := o.psi.Get(p, i, j+1) - o.psi.Get(p, i, j-1)
			dvorX := src.Get(p, i+1, j) - src.Get(p, i-1, j)
			dvorY := src.Get(p, i, j+1) - src.Get(p, i, j-1)
			o.jac.Set(p, i, j, (dpsiX*dvorY-dpsiY*dvorX)/(4*h2))
			p.Flop(9)
		}
	}
	o.barrier.Wait(p)

	// Phase 2: vorticity update Γ' = Γ + dt(−J + ν∇²Γ) into the other buffer.
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			lap := (src.Get(p, i-1, j) + src.Get(p, i+1, j) +
				src.Get(p, i, j-1) + src.Get(p, i, j+1) - 4*src.Get(p, i, j)) / h2
			v := src.Get(p, i, j) + o.dt*(-o.jac.Get(p, i, j)+o.nu*lap)
			dst.Set(p, i, j, v)
			p.Flop(12)
		}
	}
	o.barrier.Wait(p)

	// Phase 3: copy Γ into the solver RHS and ψ into the solution grid.
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			o.mgRHS[0].Set(p, i, j, dst.Get(p, i, j))
			o.mgU[0].Set(p, i, j, o.psi.Get(p, i, j))
		}
	}
	o.barrier.Wait(p)

	// Phase 4: multigrid solve ∇²ψ = Γ.
	o.solve(p)

	// Phase 5: copy solution back to ψ.
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			o.psi.Set(p, i, j, o.mgU[0].Get(p, i, j))
		}
	}
	o.barrier.Wait(p)
}

// finalVort returns the buffer holding the last completed step's vorticity.
func (o *Ocean) finalVort() *Grid {
	_, dst := o.buffers(o.steps - 1)
	return dst
}

// Verify checks that the final stream function satisfies the Poisson
// equation to the solver's tolerance and respects the boundary conditions.
func (o *Ocean) Verify() error {
	vort := o.finalVort()
	res := MaxAbsResidual(o.psi, vort, o.h)
	var rhsScale float64
	for i := 1; i <= o.n; i++ {
		for j := 1; j <= o.n; j++ {
			if a := math.Abs(vort.Peek(i, j)); a > rhsScale {
				rhsScale = a
			}
		}
	}
	if res > 0.05*rhsScale {
		return fmt.Errorf("ocean: Poisson residual %g vs rhs scale %g", res, rhsScale)
	}
	for k := 0; k <= o.n+1; k++ {
		if o.psi.Peek(0, k) != 0 || o.psi.Peek(o.n+1, k) != 0 || o.psi.Peek(k, 0) != 0 || o.psi.Peek(k, o.n+1) != 0 {
			return fmt.Errorf("ocean: boundary condition violated")
		}
	}
	for i := 1; i <= o.n; i++ {
		for j := 1; j <= o.n; j++ {
			if math.IsNaN(vort.Peek(i, j)) || math.IsInf(vort.Peek(i, j), 0) {
				return fmt.Errorf("ocean: vorticity diverged at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// Psi exposes the stream function grid (tests).
func (o *Ocean) Psi() *Grid { return o.psi }
