package ocean

import (
	"math"
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
}

func TestGridPartition(t *testing.T) {
	m := machine(4)
	g, err := NewGrid(m, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All four blocks together must cover the interior exactly once.
	covered := map[[2]int]int{}
	for pid := 0; pid < 4; pid++ {
		i0, i1, j0, j1 := g.Block(pid)
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				covered[[2]int{i, j}]++
			}
		}
	}
	if len(covered) != 16*16 {
		t.Fatalf("covered %d interior cells, want 256", len(covered))
	}
	for c, n := range covered {
		if n != 1 {
			t.Fatalf("cell %v covered %d times", c, n)
		}
	}
}

func TestGridRoundTrip(t *testing.T) {
	m := machine(4)
	g, err := NewGrid(m, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 9; i++ {
		for j := 0; j <= 9; j++ {
			g.Init(i, j, float64(i*100+j))
		}
	}
	for i := 0; i <= 9; i++ {
		for j := 0; j <= 9; j++ {
			if g.Peek(i, j) != float64(i*100+j) {
				t.Fatalf("cell (%d,%d) = %v", i, j, g.Peek(i, j))
			}
		}
	}
}

func TestGridRejectsBadPartition(t *testing.T) {
	m := machine(4)
	if _, err := NewGrid(m, 15, 2, 2); err == nil {
		t.Fatal("accepted non-divisible grid")
	}
}

func TestMultigridSolvesPoisson(t *testing.T) {
	m := machine(4)
	o, err := New(m, 32, 1, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	o.Run(m)
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKnownSolution(t *testing.T) {
	// Solve ∇²u = rhs with rhs derived from u* = sin(πx)sin(πy):
	// ∇²u* = −2π² sin(πx) sin(πy). The solver should approach u*.
	m := machine(1)
	o, err := New(m, 32, 1, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	n := 32
	for i := 0; i <= n+1; i++ {
		for j := 0; j <= n+1; j++ {
			x, y := float64(i)*o.h, float64(j)*o.h
			o.vort.Init(i, j, -2*math.Pi*math.Pi*math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
		}
	}
	m.Run(func(p *mach.Proc) {
		i0, i1, j0, j1 := o.psi.Block(p.ID)
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				o.mgRHS[0].Set(p, i, j, o.vort.Get(p, i, j))
				o.mgU[0].Set(p, i, j, 0)
			}
		}
		o.barrier.Wait(p)
		o.solve(p)
	})
	var worst float64
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			x, y := float64(i)*o.h, float64(j)*o.h
			want := math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			if d := math.Abs(o.mgU[0].Peek(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	// Discretization error of the 5-point stencil at h=1/33 is ~1e-3.
	if worst > 5e-3 {
		t.Fatalf("solution error %g too large", worst)
	}
}

func TestDeterministicAcrossProcCounts(t *testing.T) {
	var ref []float64
	for _, procs := range []int{1, 4} {
		m := machine(procs)
		o, err := New(m, 16, 2, 3, false)
		if err != nil {
			t.Fatal(err)
		}
		o.Run(m)
		flat := make([]float64, 0, 18*18)
		for i := 0; i <= 17; i++ {
			for j := 0; j <= 17; j++ {
				flat = append(flat, o.psi.Peek(i, j))
			}
		}
		if ref == nil {
			ref = flat
			continue
		}
		for k := range ref {
			if math.Abs(ref[k]-flat[k]) > 1e-12 {
				t.Fatalf("ψ differs across processor counts at %d: %g vs %g", k, ref[k], flat[k])
			}
		}
	}
}

func TestRegisteredAndEpochUsed(t *testing.T) {
	a, err := apps.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"n": 16, "steps": 2, "vcycles": 2}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	ag := st.Mem.Aggregate()
	// Measurement restarted after the first step: cold misses should be a
	// small share (warm caches), but stencil communication persists.
	if ag.Refs() == 0 {
		t.Fatal("no post-epoch references")
	}
	if st.Mem.Traffic.TrueSharingData == 0 {
		t.Fatal("no boundary-exchange communication detected")
	}
}

func TestHierarchyDepth(t *testing.T) {
	m := machine(4)
	o, err := New(m, 32, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// 32 → 16 → 8 → 4 with a 2×2 processor grid.
	if len(o.mgN) != 4 {
		t.Fatalf("levels %v", o.mgN)
	}
}

func TestColumnPartitionAblation(t *testing.T) {
	// §3: square-like subgrids improve the communication-to-computation
	// ratio over column strips (perimeter 2√(A/P)·2 vs full columns).
	comm := func(columns bool) uint64 {
		// P=8 keeps the coarse multigrid levels partitionable under both
		// decompositions (column strips need n divisible by P at every level).
		m := mach.MustNew(mach.Config{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64})
		o, err := New(m, 32, 1, 6, columns)
		if err != nil {
			t.Fatal(err)
		}
		o.Run(m)
		if err := o.Verify(); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot().Mem.Traffic.TrueSharingData
	}
	square := comm(false)
	columns := comm(true)
	if square == 0 || columns == 0 {
		t.Fatalf("no communication measured: square=%d columns=%d", square, columns)
	}
	if columns <= square {
		t.Fatalf("column strips communicate less than square subgrids: %d <= %d", columns, square)
	}
}
