package ocean

import (
	"math"

	"splash2/internal/mach"
)

// solve runs V-cycles of the red-black Gauss-Seidel multigrid solver on
// level 0 (∇²u = rhs) until the residual norm stops improving enough or
// the cycle budget is exhausted. Every processor executes the same cycle
// decisions, so the computation is deterministic for any processor count.
func (o *Ocean) solve(p *mach.Proc) {
	for c := 0; c < o.vcycles; c++ {
		o.vcycle(p, 0)
		res := o.residualNorm(p, 0)
		if res < 1e-6 {
			break
		}
	}
}

// vcycle performs one V-cycle starting at level l.
func (o *Ocean) vcycle(p *mach.Proc, l int) {
	last := len(o.mgN) - 1
	if l == last {
		for s := 0; s < 20; s++ {
			o.relax(p, l)
		}
		return
	}
	o.relax(p, l)
	o.relax(p, l)
	o.restrictResidual(p, l)
	o.clearLevel(p, l+1)
	o.vcycle(p, l+1)
	o.prolongCorrect(p, l)
	o.relax(p, l)
}

// relax runs one red-black Gauss-Seidel sweep (both colors) on level l.
func (o *Ocean) relax(p *mach.Proc, l int) {
	u, rhs := o.mgU[l], o.mgRHS[l]
	h2 := o.levelH(l) * o.levelH(l)
	i0, i1, j0, j1 := u.Block(p.ID)
	for color := 0; color < 2; color++ {
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				if (i+j)&1 != color {
					continue
				}
				v := (u.Get(p, i-1, j) + u.Get(p, i+1, j) + u.Get(p, i, j-1) + u.Get(p, i, j+1) - h2*rhs.Get(p, i, j)) / 4
				u.Set(p, i, j, v)
				p.Flop(6)
			}
		}
		o.barrier.Wait(p)
	}
}

// restrictResidual computes the fine residual and restricts it by full
// weighting into the next-coarser RHS.
func (o *Ocean) restrictResidual(p *mach.Proc, l int) {
	u, rhs, res := o.mgU[l], o.mgRHS[l], o.mgRes[l]
	h2 := o.levelH(l) * o.levelH(l)
	i0, i1, j0, j1 := u.Block(p.ID)
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			lap := (u.Get(p, i-1, j) + u.Get(p, i+1, j) + u.Get(p, i, j-1) + u.Get(p, i, j+1) - 4*u.Get(p, i, j)) / h2
			res.Set(p, i, j, rhs.Get(p, i, j)-lap)
			p.Flop(8)
		}
	}
	o.barrier.Wait(p)

	// Cell-centered coarsening: coarse cell (I,J) aggregates fine cells
	// {2I−1,2I}×{2J−1,2J}, which stays aligned for the even grid sizes the
	// subgrid partition requires.
	crhs := o.mgRHS[l+1]
	ci0, ci1, cj0, cj1 := crhs.Block(p.ID)
	for ci := ci0; ci < ci1; ci++ {
		for cj := cj0; cj < cj1; cj++ {
			fi, fj := 2*ci, 2*cj
			v := (res.Get(p, fi-1, fj-1) + res.Get(p, fi, fj-1) +
				res.Get(p, fi-1, fj) + res.Get(p, fi, fj)) / 4
			crhs.Set(p, ci, cj, v)
			p.Flop(4)
		}
	}
	o.barrier.Wait(p)
}

// clearLevel zeroes the coarse solution before the recursive solve.
func (o *Ocean) clearLevel(p *mach.Proc, l int) {
	u := o.mgU[l]
	i0, i1, j0, j1 := u.Block(p.ID)
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			u.Set(p, i, j, 0)
		}
	}
	o.barrier.Wait(p)
}

// prolongCorrect interpolates the coarse correction bilinearly onto the
// fine grid and adds it to the fine solution.
func (o *Ocean) prolongCorrect(p *mach.Proc, l int) {
	u, cu := o.mgU[l], o.mgU[l+1]
	nc := o.mgN[l+1]
	i0, i1, j0, j1 := u.Block(p.ID)
	cAt := func(i, j int) float64 {
		if i < 1 || j < 1 || i > nc || j > nc {
			return 0 // Dirichlet: zero correction at the walls
		}
		return cu.Get(p, i, j)
	}
	// Cell-centered bilinear interpolation: fine cell 2I−1 sits a half
	// fine-cell inside coarse cell I (weights ¾/¼ toward I−1), fine cell
	// 2I a half cell toward I+1.
	weights := func(f int) (a, b int, wa, wb float64) {
		if f%2 == 1 {
			return (f + 1) / 2, (f+1)/2 - 1, 0.75, 0.25
		}
		return f / 2, f/2 + 1, 0.75, 0.25
	}
	for i := i0; i < i1; i++ {
		ia, ib, wia, wib := weights(i)
		for j := j0; j < j1; j++ {
			ja, jb, wja, wjb := weights(j)
			e := wia*wja*cAt(ia, ja) + wia*wjb*cAt(ia, jb) +
				wib*wja*cAt(ib, ja) + wib*wjb*cAt(ib, jb)
			u.Set(p, i, j, u.Get(p, i, j)+e)
			p.Flop(11)
		}
	}
	o.barrier.Wait(p)
}

// residualNorm computes the global max-norm of the level-l residual via a
// per-processor shared reduction array; every processor returns the same
// value.
func (o *Ocean) residualNorm(p *mach.Proc, l int) float64 {
	u, rhs := o.mgU[l], o.mgRHS[l]
	h2 := o.levelH(l) * o.levelH(l)
	i0, i1, j0, j1 := u.Block(p.ID)
	var local float64
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			lap := (u.Get(p, i-1, j) + u.Get(p, i+1, j) + u.Get(p, i, j-1) + u.Get(p, i, j+1) - 4*u.Get(p, i, j)) / h2
			if r := math.Abs(rhs.Get(p, i, j) - lap); r > local {
				local = r
			}
			p.Flop(8)
		}
	}
	pad := o.mch.LineSize() / mach.WordBytes
	o.maxres.Set(p, p.ID*pad, local)
	o.barrier.Wait(p)
	var global float64
	for q := 0; q < o.mch.Procs(); q++ {
		if v := o.maxres.Get(p, q*pad); v > global {
			global = v
		}
	}
	o.barrier.Wait(p)
	return global
}

// levelH returns the mesh spacing of level l (doubling per level keeps the
// coarse operators exact restrictions of the fine one).
func (o *Ocean) levelH(l int) float64 {
	return o.h * float64(int(1)<<uint(l))
}
