package ocean

import (
	"fmt"
	"math"

	"splash2/internal/mach"
)

// Grid is an (n+2)×(n+2) scalar field (n interior points plus boundary)
// partitioned into square-like subgrids, one per processor, with every
// subgrid allocated contiguously in its owner's local memory — the
// "conceptually 2-D, physically 4-D array" organization that distinguishes
// SPLASH-2 Ocean from its column-partitioned predecessor (§3).
type Grid struct {
	n      int // interior points per side
	pr, pc int
	// Partition: interior rows split into pr bands, columns into pc bands;
	// boundary rows/cols attach to the adjacent edge band.
	rowStart []int // global start row of each band (len pr+1, in 0..n+2)
	colStart []int
	subs     []*mach.F64Array // pr*pc subgrids, row-major by (bi,bj)
	widths   []int            // columns per band
}

// NewGrid allocates the partitioned field. n must be divisible by both
// processor-grid dimensions.
func NewGrid(m *mach.Machine, n, pr, pc int) (*Grid, error) {
	if n%pr != 0 || n%pc != 0 {
		return nil, fmt.Errorf("ocean: grid n=%d not divisible by %d×%d processor grid", n, pr, pc)
	}
	g := &Grid{n: n, pr: pr, pc: pc}
	g.rowStart = bandStarts(n, pr)
	g.colStart = bandStarts(n, pc)
	g.widths = make([]int, pc)
	for j := 0; j < pc; j++ {
		g.widths[j] = g.colStart[j+1] - g.colStart[j]
	}
	g.subs = make([]*mach.F64Array, pr*pc)
	for bi := 0; bi < pr; bi++ {
		rows := g.rowStart[bi+1] - g.rowStart[bi]
		for bj := 0; bj < pc; bj++ {
			owner := bi*pc + bj
			g.subs[bi*pc+bj] = m.NewF64(rows*g.widths[bj], true, mach.Owner(owner%m.Procs()))
		}
	}
	return g, nil
}

// bandStarts splits rows 0..n+1 into bands: band 0 starts at 0 (taking the
// low boundary row), the last band ends at n+2 (taking the high boundary).
func bandStarts(n, parts int) []int {
	s := make([]int, parts+1)
	per := n / parts
	s[0] = 0
	for k := 1; k < parts; k++ {
		s[k] = 1 + k*per
	}
	s[parts] = n + 2
	return s
}

func (g *Grid) locate(i, j int) (sub *mach.F64Array, off int) {
	bi := bandOf(g.rowStart, i)
	bj := bandOf(g.colStart, j)
	w := g.widths[bj]
	off = (i-g.rowStart[bi])*w + (j - g.colStart[bj])
	return g.subs[bi*g.pc+bj], off
}

func bandOf(starts []int, x int) int {
	// Bands are near-uniform; locate by division then adjust.
	for b := 0; b < len(starts)-1; b++ {
		if x >= starts[b] && x < starts[b+1] {
			return b
		}
	}
	panic(fmt.Sprintf("ocean: index %d outside grid", x))
}

// Get loads cell (i,j) through the memory system.
func (g *Grid) Get(p *mach.Proc, i, j int) float64 {
	sub, off := g.locate(i, j)
	return sub.Get(p, off)
}

// Set stores cell (i,j) through the memory system.
func (g *Grid) Set(p *mach.Proc, i, j int, v float64) {
	sub, off := g.locate(i, j)
	sub.Set(p, off, v)
}

// Peek reads without simulation (verification).
func (g *Grid) Peek(i, j int) float64 {
	sub, off := g.locate(i, j)
	//splash:allow accounting Grid.Peek is itself the documented verification escape hatch; callers are residual/verify code
	return sub.Peek(off)
}

// Init writes without simulation (input construction).
func (g *Grid) Init(i, j int, v float64) {
	sub, off := g.locate(i, j)
	sub.Init(off, v)
}

// N returns the interior dimension.
func (g *Grid) N() int { return g.n }

// Block returns processor p's interior cell range [i0,i1)×[j0,j1).
func (g *Grid) Block(pid int) (i0, i1, j0, j1 int) {
	bi, bj := pid/g.pc, pid%g.pc
	i0, i1 = g.rowStart[bi], g.rowStart[bi+1]
	j0, j1 = g.colStart[bj], g.colStart[bj+1]
	// Trim boundary rows/cols: interior only.
	if i0 == 0 {
		i0 = 1
	}
	if i1 == g.n+2 {
		i1 = g.n + 1
	}
	if j0 == 0 {
		j0 = 1
	}
	if j1 == g.n+2 {
		j1 = g.n + 1
	}
	return
}

// MaxAbsResidual computes ‖rhs − ∇²u‖∞ without simulation (verification).
func MaxAbsResidual(u, rhs *Grid, h float64) float64 {
	n := u.N()
	var worst float64
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			lap := (u.Peek(i-1, j) + u.Peek(i+1, j) + u.Peek(i, j-1) + u.Peek(i, j+1) - 4*u.Peek(i, j)) / (h * h)
			if r := math.Abs(rhs.Peek(i, j) - lap); r > worst {
				worst = r
			}
		}
	}
	return worst
}
