// Package volrend implements the SPLASH-2 Volrend application: rendering a
// three-dimensional volume using ray casting. The volume is a cube of
// voxels, an octree (a min-max pyramid over voxel blocks) lets rays leap
// over empty space quickly, rays do not reflect but are sampled along
// their linear paths with trilinear interpolation, and early ray
// termination stops marching once accumulated opacity saturates. The
// program renders several frames from changing viewpoints; partitioning
// and task queues mirror Raytrace (§3, [NiL92]). The volume is a synthetic
// nested-shell "head" (see internal/workload).
package volrend

import (
	"fmt"
	"math"
	"math/bits"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name: "volrend",
		Doc:  "volume renderer: ray casting with min-max octree skipping",
		Defaults: map[string]int{
			"dim":    32, // voxels per side; paper input: 256³ head
			"width":  48, // image side
			"frames": 2,
			"tile":   4,
			"block":  4, // octree leaf block size (voxels)
			"seed":   1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["dim"], opt["width"], opt["frames"], opt["tile"], opt["block"], uint64(opt["seed"]))
		},
	})
}

const (
	opacityCut   = 0.98 // early ray termination
	emptyCut     = 0.06 // blocks with max density below this are skipped
	sampleStride = 0.6  // sampling step in voxel units
)

// Volrend is one configured render instance.
type Volrend struct {
	mch    *mach.Machine
	dim    int
	w      int
	frames int
	tile   int
	block  int
	levels int

	vox     *mach.F64Array   // dim³ densities
	octMax  []*mach.F64Array // per-level max pyramid, level 0 = blocks
	pixels  *mach.F64Array   // w×w×frames (one image per frame)
	queues  *mach.TaskQueues
	barrier *mach.Barrier
}

// ctx routes accesses through the memory system or directly (verification).
type ctx struct {
	v *Volrend
	//splash:allow procflow ctx is a per-call-stack view that never outlives the frame or crosses goroutines; p==nil marks verification
	p *mach.Proc
}

func (c ctx) f(a *mach.F64Array, i int) float64 {
	if c.p != nil {
		return a.Get(c.p, i)
	}
	//splash:allow accounting p==nil selects the unsimulated verification re-execution path
	return a.Peek(i)
}

func (c ctx) flop(n int) {
	if c.p != nil {
		c.p.Flop(n)
	}
}

// New builds the renderer: generates the volume and its min-max pyramid.
func New(m *mach.Machine, dim, width, frames, tile, block int, seed uint64) (*Volrend, error) {
	switch {
	case dim < 8 || bits.OnesCount(uint(dim)) != 1:
		return nil, fmt.Errorf("volrend: dim %d must be a power of two ≥ 8", dim)
	case block < 2 || bits.OnesCount(uint(block)) != 1 || dim%block != 0:
		return nil, fmt.Errorf("volrend: block %d must be a power of two dividing dim %d", block, dim)
	case width < 4 || tile < 1 || frames < 1:
		return nil, fmt.Errorf("volrend: bad image parameters w=%d tile=%d frames=%d", width, tile, frames)
	}
	v := &Volrend{mch: m, dim: dim, w: width, frames: frames, tile: tile, block: block, barrier: m.NewBarrier()}

	vol := workload.GenVolume(dim, seed)
	v.vox = m.NewF64(dim*dim*dim, true, mach.Blocked())
	for i, d := range vol.Voxels {
		v.vox.Init(i, d)
	}

	// Min-max pyramid: level 0 has (dim/block)³ entries holding the max
	// density of each block (padded by one voxel for interpolation);
	// higher levels combine 2³ children.
	nb := dim / block
	level := make([]float64, nb*nb*nb)
	for bz := 0; bz < nb; bz++ {
		for by := 0; by < nb; by++ {
			for bx := 0; bx < nb; bx++ {
				var mx float64
				for z := bz*block - 1; z <= (bz+1)*block; z++ {
					for y := by*block - 1; y <= (by+1)*block; y++ {
						for x := bx*block - 1; x <= (bx+1)*block; x++ {
							if d := vol.At(clampi(x, dim), clampi(y, dim), clampi(z, dim)); d > mx {
								mx = d
							}
						}
					}
				}
				level[(bz*nb+by)*nb+bx] = mx
			}
		}
	}
	for n := nb; n >= 1; n /= 2 {
		arr := m.NewF64(len(level), true, mach.Interleaved())
		for i, d := range level {
			arr.Init(i, d)
		}
		v.octMax = append(v.octMax, arr)
		if n == 1 {
			break
		}
		next := make([]float64, (n/2)*(n/2)*(n/2))
		for z := 0; z < n/2; z++ {
			for y := 0; y < n/2; y++ {
				for x := 0; x < n/2; x++ {
					var mx float64
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								d := level[((2*z+dz)*n+2*y+dy)*n+2*x+dx]
								if d > mx {
									mx = d
								}
							}
						}
					}
					next[(z*(n/2)+y)*(n/2)+x] = mx
				}
			}
		}
		level = next
	}
	v.levels = len(v.octMax)

	v.pixels = m.NewF64(width*width*frames, true, mach.Blocked())
	v.queues = m.NewTaskQueues(width*width/tile/tile + 8)
	return v, nil
}

func clampi(x, dim int) int {
	if x < 0 {
		return 0
	}
	if x >= dim {
		return dim - 1
	}
	return x
}

// Run renders the frames; measurement restarts after the first frame.
func (v *Volrend) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		v.renderFrame(p, 0)
		if v.frames > 1 {
			m.Epoch(p, v.barrier)
			for fr := 1; fr < v.frames; fr++ {
				v.renderFrame(p, fr)
			}
		}
	})
}

// renderFrame distributes tiles (contiguous blocks per processor) and
// renders with stealing, exactly like Raytrace.
func (v *Volrend) renderFrame(p *mach.Proc, frame int) {
	tiles := (v.w / v.tile) * (v.w / v.tile)
	lo := p.ID * tiles / v.mch.Procs()
	hi := (p.ID + 1) * tiles / v.mch.Procs()
	for t := lo; t < hi; t++ {
		v.queues.Push(p, t)
	}
	v.barrier.Wait(p)
	for {
		t, ok := v.queues.PopOrSteal(p)
		if !ok {
			break
		}
		v.renderTile(ctx{v, p}, frame, t)
		v.queues.Done(p)
	}
	v.barrier.Wait(p)
}

func (v *Volrend) renderTile(c ctx, frame, t int) {
	perRow := v.w / v.tile
	ty, tx := t/perRow, t%perRow
	for dy := 0; dy < v.tile; dy++ {
		for dx := 0; dx < v.tile; dx++ {
			px := tx*v.tile + dx
			py := ty*v.tile + dy
			val := v.castRay(c, frame, px, py)
			if c.p != nil {
				v.pixels.Set(c.p, (frame*v.w+py)*v.w+px, val)
			}
		}
	}
}

// Verify re-casts sampled rays unsimulated and requires identical pixels,
// plus image sanity (values in range, frames non-empty and distinct).
func (v *Volrend) Verify() error {
	for i := 0; i < v.w*v.w*v.frames; i++ {
		px := v.pixels.Peek(i)
		if math.IsNaN(px) || px < 0 || px > 1.0001 {
			return fmt.Errorf("volrend: pixel %d out of range: %v", i, px)
		}
	}
	for fr := 0; fr < v.frames; fr++ {
		var sum float64
		for i := 0; i < v.w*v.w; i++ {
			sum += v.pixels.Peek(fr*v.w*v.w + i)
		}
		if sum == 0 {
			return fmt.Errorf("volrend: frame %d is empty", fr)
		}
	}
	rng := workload.NewRNG(555)
	plain := ctx{v, nil}
	for s := 0; s < 48; s++ {
		fr := rng.Intn(v.frames)
		px := rng.Intn(v.w)
		py := rng.Intn(v.w)
		want := v.castRay(plain, fr, px, py)
		if got := v.pixels.Peek((fr*v.w+py)*v.w + px); got != want {
			return fmt.Errorf("volrend: pixel (%d,%d,f%d) = %v, re-cast = %v", px, py, fr, got, want)
		}
	}
	return nil
}

// Pixels exposes the rendered frames (tests).
//
//splash:allow accounting result export after the measured phase; verification reads Go values only
func (v *Volrend) Pixels() []float64 { return v.pixels.Raw() }
