package volrend

import "math"

// castRay marches one ray through the volume for pixel (px,py) of the
// given frame. The viewpoint orbits the volume: each frame rotates the
// camera by 0.35 radians about the vertical axis.
func (v *Volrend) castRay(c ctx, frame, px, py int) float64 {
	d := float64(v.dim)
	angle := 0.5 + 0.35*float64(frame)
	sin, cos := math.Sincos(angle)

	// Camera on a circle of radius 1.8·dim around the volume center,
	// looking at the center; simple pinhole projection.
	center := d / 2
	ox := center + 1.8*d*cos
	oy := center + 0.4*d
	oz := center + 1.8*d*sin

	// Image plane basis: right = (−sin,0,cos), up = y-ish orthogonal.
	u := (float64(px)/float64(v.w-1) - 0.5) * d * 1.3
	w := (0.5 - float64(py)/float64(v.w-1)) * d * 1.3
	tx := center + u*(-sin)
	ty := center + w
	tz := center + u*cos
	dx, dy, dz := tx-ox, ty-oy, tz-oz
	dl := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/dl, dy/dl, dz/dl
	c.flop(25)

	// Clip against the volume bounds [0,dim−1]³.
	t0, t1, ok := clipBox(ox, oy, oz, dx, dy, dz, d-1)
	c.flop(12)
	if !ok {
		return 0
	}

	var color, alpha float64
	step := sampleStride
	t := t0 + 1e-6
	for t < t1 && alpha < opacityCut {
		x := ox + t*dx
		y := oy + t*dy
		z := oz + t*dz

		// Octree skip: if the block containing the sample is empty, jump
		// past it using the min-max pyramid (coarsest empty ancestor).
		if skip := v.emptySkip(c, x, y, z); skip > 0 {
			t += skip
			continue
		}

		dens := v.trilinear(c, x, y, z)
		if dens > emptyCut {
			// Transfer function: opacity and brightness ramp with density.
			op := (dens - emptyCut) * 1.6 * step
			if op > 1 {
				op = 1
			}
			color += (1 - alpha) * op * dens
			alpha += (1 - alpha) * op
			c.flop(8)
		}
		t += step
	}
	if color > 1 {
		color = 1
	}
	return color
}

// emptySkip returns a parametric distance to skip if the sample point lies
// in an empty octree block (0 means the block is occupied). It checks the
// pyramid from coarse to fine, taking the largest empty block.
func (v *Volrend) emptySkip(c ctx, x, y, z float64) float64 {
	nb := v.dim / v.block
	bx := int(x) / v.block
	by := int(y) / v.block
	bz := int(z) / v.block
	if bx < 0 || by < 0 || bz < 0 || bx >= nb || by >= nb || bz >= nb {
		return 0
	}
	// Walk from the coarsest level down: level index v.levels-1 is the
	// single root block, level 0 the finest.
	for lvl := v.levels - 1; lvl >= 0; lvl-- {
		n := nb >> uint(lvl)
		if n == 0 {
			continue
		}
		shift := uint(lvl)
		ix := (bx >> shift)
		iy := (by >> shift)
		iz := (bz >> shift)
		mx := c.f(v.octMax[lvl], (iz*n+iy)*n+ix)
		if mx < emptyCut {
			// Empty: skip roughly the block diagonal at this level.
			return float64(v.block<<shift) * 0.9
		}
	}
	return 0
}

// trilinear samples the volume at a fractional position (8 voxel reads).
func (v *Volrend) trilinear(c ctx, x, y, z float64) float64 {
	x0 := int(x)
	y0 := int(y)
	z0 := int(z)
	if x0 < 0 || y0 < 0 || z0 < 0 || x0 >= v.dim-1 || y0 >= v.dim-1 || z0 >= v.dim-1 {
		return 0
	}
	fx := x - float64(x0)
	fy := y - float64(y0)
	fz := z - float64(z0)
	at := func(xi, yi, zi int) float64 {
		return c.f(v.vox, (zi*v.dim+yi)*v.dim+xi)
	}
	c00 := at(x0, y0, z0)*(1-fx) + at(x0+1, y0, z0)*fx
	c01 := at(x0, y0, z0+1)*(1-fx) + at(x0+1, y0, z0+1)*fx
	c10 := at(x0, y0+1, z0)*(1-fx) + at(x0+1, y0+1, z0)*fx
	c11 := at(x0, y0+1, z0+1)*(1-fx) + at(x0+1, y0+1, z0+1)*fx
	c0 := c00*(1-fy) + c10*fy
	c1 := c01*(1-fy) + c11*fy
	c.flop(21)
	return c0*(1-fz) + c1*fz
}

// clipBox intersects a ray with the cube [0,s]³.
func clipBox(ox, oy, oz, dx, dy, dz, s float64) (t0, t1 float64, ok bool) {
	t0, t1 = 0, math.Inf(1)
	for _, ax := range [3][2]float64{{ox, dx}, {oy, dy}, {oz, dz}} {
		o, d := ax[0], ax[1]
		if math.Abs(d) < 1e-12 {
			if o < 0 || o > s {
				return 0, 0, false
			}
			continue
		}
		a := (0 - o) / d
		b := (s - o) / d
		if a > b {
			a, b = b, a
		}
		if a > t0 {
			t0 = a
		}
		if b < t1 {
			t1 = b
		}
	}
	return t0, t1, t0 <= t1
}
