package volrend

import (
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 128 << 10, Assoc: 4, LineSize: 64})
}

func TestRenderAndVerify(t *testing.T) {
	m := machine(4)
	v, err := New(m, 16, 24, 2, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	v.Run(m)
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossProcCounts(t *testing.T) {
	var ref []float64
	for _, procs := range []int{1, 4} {
		m := machine(procs)
		v, err := New(m, 16, 24, 1, 4, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		v.Run(m)
		img := append([]float64(nil), v.Pixels()...)
		if ref == nil {
			ref = img
			continue
		}
		for i := range ref {
			if ref[i] != img[i] {
				t.Fatalf("pixel %d differs across processor counts", i)
			}
		}
	}
}

func TestFramesDiffer(t *testing.T) {
	m := machine(2)
	v, err := New(m, 16, 24, 2, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	v.Run(m)
	img := v.Pixels()
	n := 24 * 24
	same := true
	for i := 0; i < n; i++ {
		if img[i] != img[n+i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rotating viewpoint produced identical frames")
	}
}

func TestOctreeSkipMatchesVolume(t *testing.T) {
	m := machine(1)
	v, err := New(m, 32, 8, 1, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := ctx{v, nil}
	// Corner blocks of the shell volume are empty: skip must be positive.
	if s := v.emptySkip(c, 0.5, 0.5, 0.5); s <= 0 {
		t.Fatal("corner block not skipped")
	}
	// Center is dense: no skipping allowed.
	if s := v.emptySkip(c, 16, 16, 16); s != 0 {
		t.Fatalf("dense center skipped by %v", s)
	}
}

func TestTrilinearInterpolatesLinearly(t *testing.T) {
	m := machine(1)
	v, err := New(m, 8, 8, 1, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the volume with a linear ramp in x: f(x,y,z) = x/8.
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v.vox.Init((z*8+y)*8+x, float64(x)/8)
			}
		}
	}
	c := ctx{v, nil}
	got := v.trilinear(c, 2.5, 3, 3)
	if want := 2.5 / 8; got != want {
		t.Fatalf("trilinear(2.5) = %v, want %v", got, want)
	}
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("volrend")
	if err != nil {
		t.Fatal(err)
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"dim": 16, "width": 16, "frames": 1, "tile": 4}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadParams(t *testing.T) {
	m := machine(1)
	if _, err := New(m, 12, 16, 1, 4, 4, 1); err == nil {
		t.Error("non-power-of-two dim accepted")
	}
	if _, err := New(m, 16, 16, 1, 4, 3, 1); err == nil {
		t.Error("non-power-of-two block accepted")
	}
	if _, err := New(m, 16, 2, 1, 4, 4, 1); err == nil {
		t.Error("tiny image accepted")
	}
}
