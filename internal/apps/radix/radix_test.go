package radix

import (
	"testing"
	"testing/quick"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
}

func TestSortsCorrectly(t *testing.T) {
	m := machine(4)
	r, err := New(m, 1024, 16, 1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(1)
	r, err := New(m, 256, 16, 1<<8, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOddPassCountLandsInB(t *testing.T) {
	m := machine(2)
	// 3 passes of 4 bits over 12-bit keys: odd → result in keysB.
	r, err := New(m, 128, 16, 1<<12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.passes != 3 {
		t.Fatalf("passes=%d, want 3", r.passes)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEvenPassCountLandsInA(t *testing.T) {
	m := machine(2)
	r, err := New(m, 128, 16, 1<<8, 4) // 2 passes
	if err != nil {
		t.Fatal(err)
	}
	if r.passes != 2 {
		t.Fatalf("passes=%d, want 2", r.passes)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	m := machine(4)
	if _, err := New(m, 1023, 16, 1<<12, 1); err == nil {
		t.Error("n not divisible by procs accepted")
	}
	if _, err := New(m, 1024, 15, 1<<12, 1); err == nil {
		t.Error("non-power-of-two radix accepted")
	}
	if _, err := New(m, 1024, 16, 1000, 1); err == nil {
		t.Error("non-power-of-two maxkey accepted")
	}
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("radix")
	if err != nil {
		t.Fatal(err)
	}
	if a.FlopBased {
		t.Fatal("radix should report bytes/instruction")
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"n": 512, "radix": 16, "maxkey": 1 << 8}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	// The permutation is all-to-all: remote traffic must exist.
	if m.Snapshot().Mem.Traffic.Remote() == 0 {
		t.Fatal("no communication in permutation phase")
	}
}

// Property: sorting is correct for any seed, processor count, and digit
// geometry, including radix larger and smaller than the processor count.
func TestSortProperty(t *testing.T) {
	f := func(seed uint64, sel uint8) bool {
		type cfg struct{ p, n, radix, maxkey int }
		cfgs := []cfg{
			{1, 256, 16, 1 << 8},
			{2, 256, 4, 1 << 8}, // radix > passes, radix > procs
			{4, 512, 2, 1 << 4}, // radix < procs
			{8, 512, 64, 1 << 12},
		}
		c := cfgs[int(sel)%len(cfgs)]
		m := machine(c.p)
		r, err := New(m, c.n, c.radix, c.maxkey, seed)
		if err != nil {
			return false
		}
		r.Run(m)
		return r.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
