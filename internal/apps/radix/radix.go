// Package radix implements the SPLASH-2 integer radix sort kernel
// [BLM+91]: iterative, one iteration per radix-r digit. In each iteration
// a processor passes over its assigned keys generating a local histogram,
// the local histograms are accumulated into a global histogram (a prefix
// computation that is not completely parallelizable — the cause of the
// kernel's limited speedup in Figure 1), and each processor then permutes
// its keys into a new array using the global histogram. The permutation is
// sender-determined all-to-all communication: keys move through writes
// rather than reads (§3, [WSH94], [HHS+95]).
package radix

import (
	"fmt"
	"math/bits"
	"sort"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:   "radix",
		Kernel: true,
		Doc:    "parallel integer radix sort",
		Defaults: map[string]int{
			"n":      32768, // paper default: 1048576
			"radix":  256,   // paper default: 1024
			"maxkey": 1 << 24,
			"seed":   1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["n"], opt["radix"], opt["maxkey"], uint64(opt["seed"]))
		},
	})
}

// Radix is one configured sort instance.
type Radix struct {
	mch     *mach.Machine
	n       int
	radix   int
	logR    int
	passes  int
	keysA   *mach.IntArray
	keysB   *mach.IntArray
	hist    *mach.IntArray // p×radix, processor-major, owner-placed rows
	totals  *mach.IntArray // per-digit totals then global exclusive prefix
	input   []int
	barrier *mach.Barrier
}

// New builds the kernel. n must be divisible by the processor count and
// radix/maxkey must be powers of two.
func New(mch *mach.Machine, n, radix, maxkey int, seed uint64) (*Radix, error) {
	p := mch.Procs()
	switch {
	case n <= 0 || n%p != 0:
		return nil, fmt.Errorf("radix: n=%d not divisible by %d processors", n, p)
	case radix < 2 || bits.OnesCount(uint(radix)) != 1:
		return nil, fmt.Errorf("radix: radix %d not a power of two", radix)
	case maxkey < 2 || bits.OnesCount(uint(maxkey)) != 1:
		return nil, fmt.Errorf("radix: maxkey %d not a power of two", maxkey)
	}
	r := &Radix{
		mch: mch, n: n, radix: radix,
		logR:    bits.TrailingZeros(uint(radix)),
		barrier: mch.NewBarrier(),
	}
	logMax := bits.TrailingZeros(uint(maxkey))
	r.passes = (logMax + r.logR - 1) / r.logR

	r.keysA = mch.NewInt(n, true, mach.Blocked())
	r.keysB = mch.NewInt(n, true, mach.Blocked())
	r.hist = mch.NewInt(p*radix, true, mach.Blocked()) // row per proc ⇒ blocked = owner-local
	r.totals = mch.NewInt(radix, true, mach.Blocked())

	r.input = workload.Keys(n, maxkey, seed)
	for i, k := range r.input {
		r.keysA.Init(i, k)
	}
	return r, nil
}

// Run executes the sort.
func (r *Radix) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		src, dst := r.keysA, r.keysB
		for pass := 0; pass < r.passes; pass++ {
			r.sortPass(p, src, dst, pass*r.logR)
			src, dst = dst, src
		}
	})
}

func (r *Radix) sortPass(p *mach.Proc, src, dst *mach.IntArray, shift int) {
	procs := r.mch.Procs()
	kpp := r.n / procs
	lo, hi := p.ID*kpp, (p.ID+1)*kpp
	row := p.ID * r.radix

	// Phase 1: local histogram over this processor's keys.
	for v := 0; v < r.radix; v++ {
		r.hist.Set(p, row+v, 0)
	}
	for i := lo; i < hi; i++ {
		d := (src.Get(p, i) >> shift) & (r.radix - 1)
		r.hist.Add(p, row+d, 1)
		p.Instr(2)
	}
	r.barrier.Wait(p)

	// Phase 2a: each processor owns a contiguous digit range and converts
	// the histogram column into an exclusive per-processor prefix, leaving
	// the column total in totals[v].
	dpp := (r.radix + procs - 1) / procs
	for v := p.ID * dpp; v < (p.ID+1)*dpp && v < r.radix; v++ {
		running := 0
		for j := 0; j < procs; j++ {
			c := r.hist.Get(p, j*r.radix+v)
			r.hist.Set(p, j*r.radix+v, running)
			running += c
			p.Instr(1)
		}
		r.totals.Set(p, v, running)
	}
	r.barrier.Wait(p)

	// Phase 2b: exclusive prefix over the digit totals. This scan over all
	// radix digits is the serial O(radix + log p) bottleneck the paper
	// attributes Radix's sub-linear speedup to.
	if p.ID == 0 {
		running := 0
		for v := 0; v < r.radix; v++ {
			c := r.totals.Get(p, v)
			r.totals.Set(p, v, running)
			running += c
			p.Instr(1)
		}
	}
	r.barrier.Wait(p)

	// Phase 3: permutation — write keys to their global positions.
	for i := lo; i < hi; i++ {
		k := src.Get(p, i)
		d := (k >> shift) & (r.radix - 1)
		pos := r.totals.Get(p, d) + r.hist.Get(p, row+d)
		r.hist.Add(p, row+d, 1)
		dst.Set(p, pos, k)
		p.Instr(3)
	}
	r.barrier.Wait(p)
}

// Output returns the sorted keys.
func (r *Radix) Output() []int {
	if r.passes%2 == 1 {
		//splash:allow accounting result export after the measured phase; verification reads Go values only
		return r.keysB.Raw()
	}
	//splash:allow accounting result export after the measured phase; verification reads Go values only
	return r.keysA.Raw()
}

// Verify checks the output against the standard library sort of the input.
func (r *Radix) Verify() error {
	want := append([]int(nil), r.input...)
	sort.Ints(want)
	got := r.Output()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("radix: output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
