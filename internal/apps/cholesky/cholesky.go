// Package cholesky implements the SPLASH-2 blocked sparse Cholesky
// factorization kernel: it factors a sparse SPD matrix into L·Lᵀ. It is
// similar in structure and partitioning to LU but (i) operates on sparse
// matrices, which have a larger communication-to-computation ratio for
// comparable problem sizes, and (ii) is *not* globally synchronized
// between steps (§3): block columns become ready dynamically as their
// updates complete, and processors pull ready columns from distributed
// task queues with stealing.
//
// The input is a synthetic block-sparse SPD matrix standing in for tk15.O
// (see internal/workload); fill-in is computed by a block-level symbolic
// factorization before the measured numeric phase.
package cholesky

import (
	"fmt"
	"math"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:      "cholesky",
		Kernel:    true,
		FlopBased: true,
		Doc:       "blocked sparse Cholesky factorization",
		Defaults: map[string]int{
			"nblocks": 32, // block columns; paper input: tk15.O
			"b":       8,
			"extra":   2, // random sub-diagonal blocks per column
			"seed":    1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["nblocks"], opt["b"], opt["extra"], uint64(opt["seed"]))
		},
	})
}

// Cholesky is one configured factorization instance.
type Cholesky struct {
	mch  *mach.Machine
	n, b int // block dimension, block size

	cols    [][]int // fill pattern: rows ≥ j per column, sorted, diag first
	blocks  map[int]*mach.F64Array
	orig    []float64      // dense A for verification
	count   *mach.IntArray // remaining updates per column
	colLock []mach.Lock
	queue   *mach.TaskQueues
}

// New generates the matrix, runs the block symbolic factorization, and
// allocates the fill pattern with block columns distributed round-robin.
func New(m *mach.Machine, nblocks, bsize, extra int, seed uint64) (*Cholesky, error) {
	if nblocks < 2 || bsize < 1 {
		return nil, fmt.Errorf("cholesky: bad dimensions %d×%d blocks", nblocks, bsize)
	}
	a := workload.GenBlockSPD(nblocks, bsize, extra, seed)
	c := &Cholesky{mch: m, n: nblocks, b: bsize, orig: a.Dense()}
	c.cols = symbolic(a)

	// Allocate every block of the fill pattern; initialize with A's values
	// (zero where fill). Column j is homed at its owner.
	c.blocks = make(map[int]*mach.F64Array)
	for j := 0; j < nblocks; j++ {
		for _, i := range c.cols[j] {
			blk := m.NewF64(bsize*bsize, true, mach.Owner(j%m.Procs()))
			if src := a.Block(i, j); src != nil {
				for k, v := range src {
					blk.Init(k, v)
				}
			}
			c.blocks[i*nblocks+j] = blk
		}
	}

	// Dependency counts: column k waits for one update batch from every
	// earlier column whose structure contains k.
	c.count = m.NewInt(nblocks, true, mach.Blocked())
	c.colLock = make([]mach.Lock, nblocks)
	for j := 0; j < nblocks; j++ {
		for _, i := range c.cols[j][1:] {
			c.count.Init(i, c.count.Peek(i)+1)
		}
	}
	c.queue = m.NewTaskQueues(2*nblocks + 4)
	return c, nil
}

// symbolic computes the block fill pattern via the elimination-tree pass:
// each column's structure (minus its first sub-diagonal element) is merged
// into its parent's.
func symbolic(a *workload.BlockSparse) [][]int {
	n := a.N
	sets := make([]map[int]bool, n)
	for j := 0; j < n; j++ {
		sets[j] = map[int]bool{}
		for _, i := range a.Cols[j] {
			sets[j][i] = true
		}
	}
	for j := 0; j < n; j++ {
		parent := n
		//splash:allow determinism computes the set minimum; iteration order cannot affect it
		for i := range sets[j] {
			if i > j && i < parent {
				parent = i
			}
		}
		if parent == n {
			continue
		}
		//splash:allow determinism set union into a set; iteration order cannot affect the result
		for i := range sets[j] {
			if i > j && i != parent {
				sets[parent][i] = true
			}
		}
	}
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		//splash:allow determinism keys are sorted immediately below; order cannot escape
		for i := range sets[j] {
			cols[j] = append(cols[j], i)
		}
		sortInts(cols[j])
	}
	return cols
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func (c *Cholesky) block(i, j int) *mach.F64Array { return c.blocks[i*c.n+j] }

// Run executes the numeric factorization with dynamic column scheduling.
func (c *Cholesky) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		// Seed the queues: every processor pushes its own ready columns.
		for j := p.ID; j < c.n; j += m.Procs() {
			if c.count.Get(p, j) == 0 {
				c.queue.Push(p, j)
			}
		}
	})
	m.Run(func(p *mach.Proc) {
		for {
			j, ok := c.queue.PopOrSteal(p)
			if !ok {
				return
			}
			c.factorColumn(p, j)
			c.queue.Done(p)
		}
	})
}

// factorColumn factors block column j and applies its updates to the
// trailing columns, releasing any that become ready.
func (c *Cholesky) factorColumn(p *mach.Proc, j int) {
	b := c.b
	diag := c.block(j, j)

	// Dense Cholesky of the diagonal block (lower triangle).
	for t := 0; t < b; t++ {
		d := diag.Get(p, t*b+t)
		for k := 0; k < t; k++ {
			v := diag.Get(p, t*b+k)
			d -= v * v
			p.Flop(2)
		}
		d = math.Sqrt(d)
		p.Flop(1)
		diag.Set(p, t*b+t, d)
		for r := t + 1; r < b; r++ {
			s := diag.Get(p, r*b+t)
			for k := 0; k < t; k++ {
				s -= diag.Get(p, r*b+k) * diag.Get(p, t*b+k)
				p.Flop(2)
			}
			diag.Set(p, r*b+t, s/d)
			p.Flop(1)
		}
	}

	// Sub-diagonal blocks: L(i,j) = A(i,j)·L(j,j)⁻ᵀ (row-wise forward
	// substitution against the diagonal block).
	rows := c.cols[j][1:]
	for _, i := range rows {
		blk := c.block(i, j)
		for r := 0; r < b; r++ {
			for t := 0; t < b; t++ {
				s := blk.Get(p, r*b+t)
				for k := 0; k < t; k++ {
					s -= blk.Get(p, r*b+k) * diag.Get(p, t*b+k)
					p.Flop(2)
				}
				blk.Set(p, r*b+t, s/diag.Get(p, t*b+t))
				p.Flop(1)
			}
		}
	}

	// Trailing updates: for every pair (i ≥ k) in struct(j),
	// A(i,k) −= L(i,j)·L(k,j)ᵀ, serialized per destination column.
	for ki, k := range rows {
		c.colLock[k].Acquire(p)
		for _, i := range rows[ki:] {
			li, lk, dst := c.block(i, j), c.block(k, j), c.block(i, k)
			if dst == nil {
				panic(fmt.Sprintf("cholesky: fill pattern missing block (%d,%d)", i, k))
			}
			for r := 0; r < b; r++ {
				for cc := 0; cc < b; cc++ {
					s := dst.Get(p, r*b+cc)
					for t := 0; t < b; t++ {
						s -= li.Get(p, r*b+t) * lk.Get(p, cc*b+t)
						p.Flop(2)
					}
					dst.Set(p, r*b+cc, s)
				}
			}
		}
		ready := c.count.Add(p, k, -1) == 0
		c.colLock[k].Release(p)
		if ready {
			c.queue.Push(p, k)
		}
	}
}

// Verify reconstructs L·Lᵀ densely and compares it to the original A.
func (c *Cholesky) Verify() error {
	n := c.n * c.b
	lf := make([]float64, n*n)
	for j := 0; j < c.n; j++ {
		for _, i := range c.cols[j] {
			blk := c.block(i, j)
			for r := 0; r < c.b; r++ {
				for cc := 0; cc < c.b; cc++ {
					gi, gj := i*c.b+r, j*c.b+cc
					if gi >= gj {
						lf[gi*n+gj] = blk.Peek(r*c.b + cc)
					}
				}
			}
		}
	}
	var maxErr, scale float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for t := 0; t <= j; t++ {
				s += lf[i*n+t] * lf[j*n+t]
			}
			if e := math.Abs(s - c.orig[i*n+j]); e > maxErr {
				maxErr = e
			}
			if a := math.Abs(c.orig[i*n+j]); a > scale {
				scale = a
			}
		}
	}
	if maxErr > 1e-9*(scale+1)*float64(n) {
		return fmt.Errorf("cholesky: residual ‖A−LLᵀ‖∞ = %g (scale %g)", maxErr, scale)
	}
	return nil
}

// FillBlocks returns the number of blocks in the filled pattern (tests).
func (c *Cholesky) FillBlocks() int { return len(c.blocks) }
