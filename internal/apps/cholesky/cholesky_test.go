package cholesky

import (
	"testing"
	"testing/quick"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
}

func TestFactorizationCorrect(t *testing.T) {
	m := machine(4)
	c, err := New(m, 12, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(m)
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(1)
	c, err := New(m, 8, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(m)
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicClosure(t *testing.T) {
	// The fill pattern must be closed: for any i ≥ k > j both in
	// struct(j), block (i,k) must exist in column k.
	a := workload.GenBlockSPD(16, 2, 3, 5)
	cols := symbolic(a)
	member := make([]map[int]bool, len(cols))
	for j, rows := range cols {
		member[j] = map[int]bool{}
		for _, i := range rows {
			member[j][i] = true
		}
	}
	for j, rows := range cols {
		if len(rows) == 0 || rows[0] != j {
			t.Fatalf("column %d missing diagonal: %v", j, rows)
		}
		for x, k := range rows[1:] {
			for _, i := range rows[1+x:] {
				if !member[k][i] {
					t.Fatalf("fill not closed: (%d,%d) from column %d", i, k, j)
				}
			}
		}
	}
}

func TestFillAtLeastInput(t *testing.T) {
	a := workload.GenBlockSPD(10, 2, 2, 3)
	cols := symbolic(a)
	for j := range a.Cols {
		have := map[int]bool{}
		for _, i := range cols[j] {
			have[i] = true
		}
		for _, i := range a.Cols[j] {
			if !have[i] {
				t.Fatalf("symbolic dropped input block (%d,%d)", i, j)
			}
		}
	}
}

func TestRegisteredNoBarriers(t *testing.T) {
	a, err := apps.Get("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	m := machine(4)
	r, err := a.Build(m, a.Options(map[string]int{"nblocks": 10, "b": 4}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	ag := mach.Aggregate(st.Procs)
	// "Not globally synchronized between steps": locks, no barriers.
	if ag.Barriers != 0 {
		t.Fatalf("cholesky used %d barriers", ag.Barriers)
	}
	if ag.Locks == 0 {
		t.Fatal("no lock operations")
	}
	if ag.Flops == 0 {
		t.Fatal("no flops")
	}
}

// Property: correct for any seed / geometry / processor count.
func TestFactorProperty(t *testing.T) {
	f := func(seed uint64, sel uint8) bool {
		type cfg struct{ p, n, b, extra int }
		cfgs := []cfg{{1, 8, 2, 1}, {2, 10, 3, 2}, {4, 12, 2, 3}, {8, 9, 4, 1}}
		cc := cfgs[int(sel)%len(cfgs)]
		m := machine(cc.p)
		c, err := New(m, cc.n, cc.b, cc.extra, seed)
		if err != nil {
			return false
		}
		c.Run(m)
		return c.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
