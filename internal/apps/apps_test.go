package apps

import (
	"testing"

	"splash2/internal/mach"
)

func TestRegisterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty registration accepted")
		}
	}()
	Register(&App{})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(&App{Name: "test-dup", Build: func(m *mach.Machine, opt map[string]int) (Runner, error) { return nil, nil }})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	Register(&App{Name: "test-dup", Build: func(m *mach.Machine, opt map[string]int) (Runner, error) { return nil, nil }})
}

func TestOptionsMergeAndFilter(t *testing.T) {
	a := &App{Name: "test-opts", Defaults: map[string]int{"n": 10, "seed": 1}}
	got := a.Options(map[string]int{"n": 99, "bogus": 7})
	if got["n"] != 99 {
		t.Fatalf("override lost: %v", got)
	}
	if got["seed"] != 1 {
		t.Fatalf("default lost: %v", got)
	}
	if _, ok := got["bogus"]; ok {
		t.Fatalf("unknown option accepted: %v", got)
	}
	// Defaults themselves must not be mutated.
	if a.Defaults["n"] != 10 {
		t.Fatal("Options mutated Defaults")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-program"); err == nil {
		t.Fatal("unknown program found")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique: %v", names)
		}
	}
}
