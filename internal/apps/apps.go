// Package apps defines the application registry for the twelve SPLASH-2
// programs. Each program lives in its own subpackage and registers itself
// at init time; importing splash2/internal/apps/all pulls in the full
// suite.
//
// Programs are real parallel algorithms written against internal/mach:
// every shared (and per-processor private) data reference is issued into
// the simulated memory system, and computation is accounted under the PRAM
// timing model, reproducing the paper's execution-driven methodology.
package apps

import (
	"fmt"
	"sort"
	"sync"

	"splash2/internal/mach"
)

// Runner is one configured application instance bound to a machine.
type Runner interface {
	// Run executes the program's parallel computation. Programs that
	// execute many time-steps reset measurement after initialization and
	// cold start, as the paper does (§2.2).
	Run(m *mach.Machine)
	// Verify checks the computed result for correctness (factorization
	// residuals, sortedness, force accuracy against direct summation, …).
	Verify() error
}

// App describes one registered SPLASH-2 program.
type App struct {
	// Name is the canonical lowercase program name ("fft", "water-nsq"…).
	Name string
	// Kernel distinguishes the four kernels from the eight applications.
	Kernel bool
	// FlopBased selects bytes/FLOP (vs bytes/instruction) traffic
	// reporting, per the paper's convention (§6).
	FlopBased bool
	// Doc is a one-line description.
	Doc string
	// Defaults are the scaled-down default problem parameters; paper-scale
	// values are documented per option in DESIGN.md.
	Defaults map[string]int
	// Build constructs a Runner for the machine with the given options
	// (missing options take defaults).
	Build func(m *mach.Machine, opt map[string]int) (Runner, error)
}

// Options merges overrides into the app's defaults.
func (a *App) Options(over map[string]int) map[string]int {
	o := make(map[string]int, len(a.Defaults))
	//splash:allow determinism key-wise merge map->map; iteration order cannot affect the merged result
	for k, v := range a.Defaults {
		o[k] = v
	}
	//splash:allow determinism key-wise merge map->map; iteration order cannot affect the merged result
	for k, v := range over {
		if _, ok := a.Defaults[k]; !ok {
			continue
		}
		o[k] = v
	}
	return o
}

var (
	regMu    sync.Mutex
	registry = map[string]*App{}
)

// Register adds an app to the registry; duplicate names panic.
func Register(a *App) {
	regMu.Lock()
	defer regMu.Unlock()
	if a.Name == "" || a.Build == nil {
		panic("apps: Register with empty name or nil Build")
	}
	if _, dup := registry[a.Name]; dup {
		panic("apps: duplicate registration of " + a.Name)
	}
	registry[a.Name] = a
}

// Get looks up a registered app by name.
func Get(name string) (*App, error) {
	regMu.Lock()
	defer regMu.Unlock()
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown program %q (have %v)", name, namesLocked())
	}
	return a, nil
}

// Names returns all registered program names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	//splash:allow determinism keys are sorted immediately below; order cannot escape
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BuildWithDefaults is a convenience: look up, merge options, build.
func BuildWithDefaults(name string, m *mach.Machine, over map[string]int) (Runner, error) {
	a, err := Get(name)
	if err != nil {
		return nil, err
	}
	return a.Build(m, a.Options(over))
}
