package lu

import (
	"testing"
	"testing/quick"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/memsys"
)

func machine(t *testing.T, procs int) *mach.Machine {
	t.Helper()
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
}

func TestFactorizationCorrect(t *testing.T) {
	m := machine(t, 4)
	l, err := New(m, 32, 4, BlockContiguous, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(m)
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(t, 1)
	l, err := New(m, 16, 4, BlockContiguous, 2)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(m)
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadBlockSize(t *testing.T) {
	m := machine(t, 2)
	if _, err := New(m, 30, 4, BlockContiguous, 1); err == nil {
		t.Fatal("accepted block size not dividing n")
	}
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("lu")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Kernel || !a.FlopBased {
		t.Fatal("lu should be a flop-based kernel")
	}
	m := machine(t, 2)
	r, err := a.Build(m, a.Options(map[string]int{"n": 16, "b": 4}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if mach.Aggregate(st.Procs).Flops == 0 {
		t.Fatal("no flops recorded")
	}
}

func TestProcGrid(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4}, 32: {4, 8}}
	for p, want := range cases {
		pr, pc := procGrid(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("procGrid(%d) = %d,%d want %v", p, pr, pc, want)
		}
		if pr*pc != p {
			t.Errorf("procGrid(%d) does not cover all procs", p)
		}
	}
}

func TestOwnershipCoversAllBlocks(t *testing.T) {
	m := machine(t, 8)
	l, err := New(m, 32, 4, BlockContiguous, 3)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[int]int{}
	for i := 0; i < l.nb; i++ {
		for j := 0; j < l.nb; j++ {
			o := l.owner(i, j)
			if o < 0 || o >= 8 {
				t.Fatalf("owner(%d,%d)=%d out of range", i, j, o)
			}
			owned[o]++
		}
	}
	if len(owned) != 8 {
		t.Fatalf("only %d processors own blocks", len(owned))
	}
}

// Property: the factorization is correct for any processor count and a
// range of block configurations.
func TestFactorAnyConfigProperty(t *testing.T) {
	f := func(procSel, sizeSel uint8, seed uint64) bool {
		procs := []int{1, 2, 3, 4}[int(procSel)%4]
		n, b := [][2]int{{16, 4}, {24, 4}, {16, 8}, {24, 8}}[int(sizeSel)%4][0],
			[][2]int{{16, 4}, {24, 4}, {16, 8}, {24, 8}}[int(sizeSel)%4][1]
		m := mach.MustNew(mach.Config{Procs: procs, CacheSize: 32 << 10, Assoc: 2, LineSize: 64})
		l, err := New(m, n, b, BlockContiguous, seed)
		if err != nil {
			return false
		}
		l.Run(m)
		return l.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossProcCounts(t *testing.T) {
	results := make([][]float64, 0, 2)
	for _, procs := range []int{1, 4} {
		m := machine(t, procs)
		l, err := New(m, 16, 4, BlockContiguous, 7)
		if err != nil {
			t.Fatal(err)
		}
		l.Run(m)
		flat := make([]float64, 0, 16*16)
		for _, b := range l.blocks {
			flat = append(flat, b.Raw()...)
		}
		results = append(results, flat)
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("factor differs across processor counts at %d", i)
		}
	}
}

func TestRowMajorLayoutAlsoCorrect(t *testing.T) {
	m := machine(t, 4)
	l, err := New(m, 32, 4, RowMajor, 5)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(m)
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The §3 layout argument: with lines longer than a block row, the
// row-major layout interleaves different blocks on one line, producing
// false sharing that the block-contiguous layout avoids entirely.
func TestLayoutAblationFalseSharing(t *testing.T) {
	miss := func(layout Layout) (falseShare, total uint64) {
		m := mach.MustNew(mach.Config{Procs: 4, CacheSize: 1 << 20, Assoc: 4, LineSize: 64})
		l, err := New(m, 32, 4, layout, 3) // 4 doubles per block row < 8 per line
		if err != nil {
			t.Fatal(err)
		}
		l.Run(m)
		agg := m.Snapshot().Mem.Aggregate()
		return agg.Misses[memsys.MissFalse], agg.TotalMisses()
	}
	fsBlocked, _ := miss(BlockContiguous)
	fsRowMajor, _ := miss(RowMajor)
	if fsBlocked != 0 {
		t.Fatalf("block-contiguous layout has %d false sharing misses", fsBlocked)
	}
	if fsRowMajor == 0 {
		t.Fatal("row-major layout shows no false sharing; ablation ineffective")
	}
}
