// Package lu implements the SPLASH-2 LU kernel: blocked dense LU
// factorization of an n×n matrix divided into an N×N array of B×B blocks
// (n = N·B) to exploit temporal locality on submatrix elements. Block
// ownership uses a 2-D scatter decomposition, blocks are updated only by
// their owners, elements within a block are contiguous, and blocks are
// allocated in the local memory of the processor that owns them — exactly
// the organization described in §3 of the paper. No pivoting is performed
// (the generated matrix is diagonally dominant), matching the original
// code.
package lu

import (
	"fmt"
	"math"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:      "lu",
		Kernel:    true,
		FlopBased: true,
		Doc:       "blocked dense LU factorization (2-D scatter decomposition)",
		Defaults: map[string]int{
			"n":      128, // paper default: 512
			"b":      8,   // paper default: 16
			"layout": 0,   // 0: blocks contiguous+owner-local (§3); 1: global row-major (ablation)
			"seed":   1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["n"], opt["b"], Layout(opt["layout"]), uint64(opt["seed"]))
		},
	})
}

// Layout selects the matrix memory organization.
type Layout int

const (
	// BlockContiguous stores each B×B block contiguously in its owner's
	// local memory — the SPLASH-2 organization (§3: "elements within a
	// block are allocated contiguously ... blocks are allocated locally to
	// processors that own them").
	BlockContiguous Layout = iota
	// RowMajor stores the matrix as one global row-major array with
	// blocked home assignment — the naive organization the paper's layout
	// improves on; blocks span rows of the whole matrix, so cache lines
	// interleave elements of different blocks (ablation).
	RowMajor
)

// LU is one configured factorization instance.
type LU struct {
	m       *mach.Machine
	n, bs   int // matrix order, block size
	nb      int // blocks per dimension
	pr, pc  int // processor grid
	layout  Layout
	blocks  []*mach.F64Array // BlockContiguous storage
	global  *mach.F64Array   // RowMajor storage
	orig    []float64        // dense copy of A for verification
	barrier *mach.Barrier
}

// New builds the kernel: allocates the matrix under the requested layout
// and fills it with a diagonally dominant random matrix.
func New(m *mach.Machine, n, bs int, layout Layout, seed uint64) (*LU, error) {
	if n <= 0 || bs <= 0 || n%bs != 0 {
		return nil, fmt.Errorf("lu: block size %d must divide matrix order %d", bs, n)
	}
	l := &LU{m: m, n: n, bs: bs, nb: n / bs, layout: layout, barrier: m.NewBarrier()}
	l.pr, l.pc = procGrid(m.Procs())

	rng := workload.NewRNG(seed)
	l.orig = make([]float64, n*n)
	if layout == BlockContiguous {
		l.blocks = make([]*mach.F64Array, l.nb*l.nb)
		for bi := 0; bi < l.nb; bi++ {
			for bj := 0; bj < l.nb; bj++ {
				l.blocks[bi*l.nb+bj] = m.NewF64(bs*bs, true, mach.Owner(l.owner(bi, bj)))
			}
		}
	} else {
		l.global = m.NewF64(n*n, true, mach.Blocked())
	}
	for bi := 0; bi < l.nb; bi++ {
		for bj := 0; bj < l.nb; bj++ {
			for r := 0; r < bs; r++ {
				for c := 0; c < bs; c++ {
					v := rng.Range(-0.5, 0.5)
					gi, gj := bi*bs+r, bj*bs+c
					if gi == gj {
						v += float64(n)
					}
					l.initAt(bi, bj, r, c, v)
					l.orig[gi*n+gj] = v
				}
			}
		}
	}
	return l, nil
}

// Element accessors dispatch on layout; indices are (block row, block
// column, row in block, column in block).

func (l *LU) get(p *mach.Proc, bi, bj, r, c int) float64 {
	if l.layout == BlockContiguous {
		return l.blocks[bi*l.nb+bj].Get(p, r*l.bs+c)
	}
	return l.global.Get(p, (bi*l.bs+r)*l.n+bj*l.bs+c)
}

func (l *LU) set(p *mach.Proc, bi, bj, r, c int, v float64) {
	if l.layout == BlockContiguous {
		l.blocks[bi*l.nb+bj].Set(p, r*l.bs+c, v)
		return
	}
	l.global.Set(p, (bi*l.bs+r)*l.n+bj*l.bs+c, v)
}

func (l *LU) initAt(bi, bj, r, c int, v float64) {
	if l.layout == BlockContiguous {
		l.blocks[bi*l.nb+bj].Init(r*l.bs+c, v)
		return
	}
	l.global.Init((bi*l.bs+r)*l.n+bj*l.bs+c, v)
}

func (l *LU) peek(bi, bj, r, c int) float64 {
	if l.layout == BlockContiguous {
		//splash:allow accounting layout-aware read used only by Verify's residual expansion
		return l.blocks[bi*l.nb+bj].Peek(r*l.bs + c)
	}
	//splash:allow accounting layout-aware read used only by Verify's residual expansion
	return l.global.Peek((bi*l.bs+r)*l.n + bj*l.bs + c)
}

// owner implements the 2-D scatter decomposition of blocks.
func (l *LU) owner(bi, bj int) int { return (bi%l.pr)*l.pc + bj%l.pc }

// procGrid factors p into the most square pr×pc grid with pr·pc = p.
func procGrid(p int) (pr, pc int) {
	pr = int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	return pr, p / pr
}

// Run executes the factorization on all processors: nb steps, each with
// the diagonal-factor / perimeter / interior phases separated by barriers.
func (l *LU) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		for k := 0; k < l.nb; k++ {
			l.factorStep(p, k)
		}
	})
}

func (l *LU) factorStep(p *mach.Proc, k int) {
	bs, nb := l.bs, l.nb
	// 1. Owner of the diagonal block factors it in place (L\U storage).
	if l.owner(k, k) == p.ID {
		for t := 0; t < bs; t++ {
			piv := l.get(p, k, k, t, t)
			for r := t + 1; r < bs; r++ {
				v := l.get(p, k, k, r, t) / piv
				p.Flop(1)
				l.set(p, k, k, r, t, v)
				for c := t + 1; c < bs; c++ {
					u := l.get(p, k, k, t, c)
					l.set(p, k, k, r, c, l.get(p, k, k, r, c)-v*u)
					p.Flop(2)
				}
			}
		}
	}
	l.barrier.Wait(p)

	// 2. Perimeter blocks: row blocks get L(k,k)⁻¹·A, column blocks get
	// A·U(k,k)⁻¹, each computed by its owner.
	for j := k + 1; j < nb; j++ {
		if l.owner(k, j) == p.ID {
			for t := 0; t < bs; t++ {
				for r := t + 1; r < bs; r++ {
					lv := l.get(p, k, k, r, t)
					for c := 0; c < bs; c++ {
						l.set(p, k, j, r, c, l.get(p, k, j, r, c)-lv*l.get(p, k, j, t, c))
						p.Flop(2)
					}
				}
			}
		}
	}
	for i := k + 1; i < nb; i++ {
		if l.owner(i, k) == p.ID {
			for t := 0; t < bs; t++ {
				piv := l.get(p, k, k, t, t)
				for r := 0; r < bs; r++ {
					v := l.get(p, i, k, r, t) / piv
					p.Flop(1)
					l.set(p, i, k, r, t, v)
					for c := t + 1; c < bs; c++ {
						u := l.get(p, k, k, t, c)
						l.set(p, i, k, r, c, l.get(p, i, k, r, c)-v*u)
						p.Flop(2)
					}
				}
			}
		}
	}
	l.barrier.Wait(p)

	// 3. Interior update: A(i,j) -= L(i,k)·U(k,j), owner-computes.
	for i := k + 1; i < nb; i++ {
		for j := k + 1; j < nb; j++ {
			if l.owner(i, j) != p.ID {
				continue
			}
			for r := 0; r < bs; r++ {
				for c := 0; c < bs; c++ {
					acc := l.get(p, i, j, r, c)
					for t := 0; t < bs; t++ {
						acc -= l.get(p, i, k, r, t) * l.get(p, k, j, t, c)
						p.Flop(2)
					}
					l.set(p, i, j, r, c, acc)
				}
			}
		}
	}
	l.barrier.Wait(p)
}

// Verify reconstructs L·U densely and compares against the original A.
func (l *LU) Verify() error {
	n, bs, nb := l.n, l.bs, l.nb
	// Expand the in-place factor into dense L (unit lower) and U (upper).
	lf := make([]float64, n*n)
	uf := make([]float64, n*n)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for r := 0; r < bs; r++ {
				for c := 0; c < bs; c++ {
					gi, gj := bi*bs+r, bj*bs+c
					v := l.peek(bi, bj, r, c)
					switch {
					case gi > gj:
						lf[gi*n+gj] = v
					case gi == gj:
						lf[gi*n+gj] = 1
						uf[gi*n+gj] = v
					default:
						uf[gi*n+gj] = v
					}
				}
			}
		}
	}
	var maxErr, scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			hi := j
			if i < j {
				hi = i
			}
			for t := 0; t <= hi; t++ {
				s += lf[i*n+t] * uf[t*n+j]
			}
			if e := math.Abs(s - l.orig[i*n+j]); e > maxErr {
				maxErr = e
			}
			if a := math.Abs(l.orig[i*n+j]); a > scale {
				scale = a
			}
		}
	}
	if maxErr > 1e-8*scale*float64(n) {
		return fmt.Errorf("lu: residual ‖A−LU‖∞ = %g too large (scale %g)", maxErr, scale)
	}
	return nil
}
