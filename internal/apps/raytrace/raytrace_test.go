package raytrace

import (
	"math"
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 128 << 10, Assoc: 4, LineSize: 64})
}

func TestRenderAndVerify(t *testing.T) {
	m := machine(4)
	r, err := New(m, 32, 16, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossProcCounts(t *testing.T) {
	var ref []float64
	for _, procs := range []int{1, 4} {
		m := machine(procs)
		r, err := New(m, 32, 16, 4, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		r.Run(m)
		img := append([]float64(nil), r.Pixels()...)
		if ref == nil {
			ref = img
			continue
		}
		for i := range ref {
			if ref[i] != img[i] {
				t.Fatalf("pixel %d differs across processor counts", i)
			}
		}
	}
}

func TestClipUnitCube(t *testing.T) {
	// Ray entering the cube from outside along +z.
	t0, t1, ok := clipUnitCube(0.5, 0.5, -1, 0, 0, 1)
	if !ok || math.Abs(t0-1) > 1e-12 || math.Abs(t1-2) > 1e-12 {
		t.Fatalf("clip: %v %v %v", t0, t1, ok)
	}
	// Ray missing the cube.
	if _, _, ok := clipUnitCube(2, 2, -1, 0, 0, 1); ok {
		t.Fatal("miss reported as hit")
	}
	// Ray parallel to an axis inside the slab.
	if _, _, ok := clipUnitCube(0.5, 0.5, 0.5, 1, 0, 0); !ok {
		t.Fatal("interior axis ray rejected")
	}
}

func TestHitSphereGeometry(t *testing.T) {
	m := machine(1)
	r, err := New(m, 8, 4, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Place a known sphere: overwrite sphere 1 with center (0.5,0.5,0.5) r=0.1.
	base := sphereStep * 1
	for i, v := range []float64{0.5, 0.5, 0.5, 0.1} {
		r.spheres.Init(base+i, v)
	}
	c := ctx{r, nil}
	tt, ok := r.hitSphere(c, 1, 0.5, 0.5, -1, 0, 0, 1)
	if !ok || math.Abs(tt-1.4) > 1e-9 {
		t.Fatalf("hitSphere: t=%v ok=%v, want 1.4", tt, ok)
	}
	if _, ok := r.hitSphere(c, 1, 0.5, 0.9, -1, 0, 0, 1); ok {
		t.Fatal("ray missing sphere reported hit")
	}
}

func TestCellsOverlapping(t *testing.T) {
	s := workload.Sphere{X: 0.5, Y: 0.5, Z: 0.5, Radius: 0.1}
	count := 0
	cellsOverlapping(4, s, func(int) { count++ })
	// Radius 0.1 around center touches cells 1..2 in each axis: 8 cells.
	if count != 8 {
		t.Fatalf("overlap count %d, want 8", count)
	}
}

func TestGroundVisibleAtBottom(t *testing.T) {
	m := machine(2)
	r, err := New(m, 32, 8, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	// Bottom rows look at the ground plane: should not all be sky.
	img := r.Pixels()
	var bottom float64
	for x := 0; x < 32; x++ {
		bottom += img[31*32+x]
	}
	if bottom == 0 {
		t.Fatal("bottom of image entirely dark")
	}
}

func TestRegisteredAndSteals(t *testing.T) {
	a, err := apps.Get("raytrace")
	if err != nil {
		t.Fatal(err)
	}
	if a.FlopBased {
		t.Fatal("raytrace reports bytes/instruction in the paper")
	}
	m := machine(4)
	r, err := a.Build(m, a.Options(map[string]int{"width": 32, "spheres": 16, "grid": 4, "tile": 4}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if mach.Aggregate(m.Snapshot().Procs).Locks == 0 {
		t.Fatal("task queues never locked")
	}
}

func TestRejectsBadParams(t *testing.T) {
	m := machine(1)
	if _, err := New(m, 2, 16, 4, 4, 1); err == nil {
		t.Error("width=2 accepted")
	}
	if _, err := New(m, 32, 1, 4, 4, 1); err == nil {
		t.Error("1 sphere accepted")
	}
}
