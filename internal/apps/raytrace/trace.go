package raytrace

import (
	"fmt"
	"math"

	"splash2/internal/workload"
)

// hit describes the nearest intersection along a ray.
type hit struct {
	t  float64
	id int
}

// trace returns the brightness carried back along the ray. weight is the
// accumulated reflection attenuation: rays terminate early when it falls
// below minWeight or the recursion exceeds maxDepth (early ray
// termination, §3).
func (r *Raytrace) trace(c ctx, ox, oy, oz, dx, dy, dz, weight float64, depth int) float64 {
	if depth > maxDepth || weight < minWeight {
		return 0
	}
	h, ok := r.intersect(c, ox, oy, oz, dx, dy, dz, math.Inf(1))
	if !ok {
		// Sky gradient.
		c.flop(2)
		return 0.15 + 0.1*dy
	}
	base := sphereStep * h.id
	sx := c.f(r.spheres, base)
	sy := c.f(r.spheres, base+1)
	sz := c.f(r.spheres, base+2)
	rad := c.f(r.spheres, base+3)
	diffuse := c.f(r.spheres, base+4)
	reflect := c.f(r.spheres, base+5)

	// Hit point and unit normal.
	hx := ox + h.t*dx
	hy := oy + h.t*dy
	hz := oz + h.t*dz
	nx, ny, nz := (hx-sx)/rad, (hy-sy)/rad, (hz-sz)/rad
	c.flop(12)

	// Shadow ray toward the point light.
	lx, ly, lz := r.scene.LightX-hx, r.scene.LightY-hy, r.scene.LightZ-hz
	ldist := math.Sqrt(lx*lx + ly*ly + lz*lz)
	lx, ly, lz = lx/ldist, ly/ldist, lz/ldist
	c.flop(9)
	brightness := 0.08 // ambient
	cosL := nx*lx + ny*ly + nz*lz
	c.flop(5)
	if cosL > 0 {
		if _, blocked := r.intersect(c, hx+1e-6*nx, hy+1e-6*ny, hz+1e-6*nz, lx, ly, lz, ldist); !blocked {
			brightness += diffuse * cosL
			c.flop(2)
		}
	}

	// Reflection ray.
	if reflect > 0 {
		dot := dx*nx + dy*ny + dz*nz
		rx := dx - 2*dot*nx
		ry := dy - 2*dot*ny
		rz := dz - 2*dot*nz
		c.flop(11)
		brightness += reflect * r.trace(c, hx+1e-6*nx, hy+1e-6*ny, hz+1e-6*nz, rx, ry, rz, weight*reflect, depth+1)
	}
	return brightness
}

// intersect finds the nearest sphere hit with t < tMax: the ground sphere
// is always tested, cluster spheres through the uniform grid via 3-D DDA.
func (r *Raytrace) intersect(c ctx, ox, oy, oz, dx, dy, dz, tMax float64) (hit, bool) {
	best := hit{t: tMax, id: -1}
	if t, ok := r.hitSphere(c, 0, ox, oy, oz, dx, dy, dz); ok && t < best.t {
		best = hit{t, 0}
	}

	// Clip the ray against the unit cube that bounds the grid.
	t0, t1, ok := clipUnitCube(ox, oy, oz, dx, dy, dz)
	c.flop(12)
	if ok && t0 < best.t {
		r.gridWalk(c, ox, oy, oz, dx, dy, dz, t0, math.Min(t1, best.t), &best)
	}
	if best.id == -1 {
		return best, false
	}
	return best, true
}

// gridWalk steps through grid cells along the ray testing the spheres
// listed in each, stopping as soon as the best hit precedes the next cell.
func (r *Raytrace) gridWalk(c ctx, ox, oy, oz, dx, dy, dz, t0, t1 float64, best *hit) {
	g := float64(r.g)
	// Entry point nudged inside.
	ex := ox + (t0+1e-9)*dx
	ey := oy + (t0+1e-9)*dy
	ez := oz + (t0+1e-9)*dz
	ix, iy, iz := cellIndex(ex, r.g), cellIndex(ey, r.g), cellIndex(ez, r.g)

	stepX, tMaxX, tDeltaX := ddaAxis(ox, dx, ix, g, t0)
	stepY, tMaxY, tDeltaY := ddaAxis(oy, dy, iy, g, t0)
	stepZ, tMaxZ, tDeltaZ := ddaAxis(oz, dz, iz, g, t0)
	c.flop(18)

	t := t0
	for t <= t1 && t < best.t {
		cell := (iz*r.g+iy)*r.g + ix
		s0 := c.iv(r.cellStart, cell)
		s1 := c.iv(r.cellStart, cell+1)
		for k := s0; k < s1; k++ {
			id := c.iv(r.cellItems, k)
			if tt, ok := r.hitSphere(c, id, ox, oy, oz, dx, dy, dz); ok && tt < best.t {
				best.t = tt
				best.id = id
			}
		}
		// Advance to the next cell boundary.
		switch {
		case tMaxX <= tMaxY && tMaxX <= tMaxZ:
			t = tMaxX
			tMaxX += tDeltaX
			ix += stepX
			if ix < 0 || ix >= r.g {
				return
			}
		case tMaxY <= tMaxZ:
			t = tMaxY
			tMaxY += tDeltaY
			iy += stepY
			if iy < 0 || iy >= r.g {
				return
			}
		default:
			t = tMaxZ
			tMaxZ += tDeltaZ
			iz += stepZ
			if iz < 0 || iz >= r.g {
				return
			}
		}
		c.flop(4)
	}
}

// hitSphere intersects the ray with sphere id, reading its geometry.
func (r *Raytrace) hitSphere(c ctx, id int, ox, oy, oz, dx, dy, dz float64) (float64, bool) {
	base := sphereStep * id
	sx := c.f(r.spheres, base)
	sy := c.f(r.spheres, base+1)
	sz := c.f(r.spheres, base+2)
	rad := c.f(r.spheres, base+3)
	lx, ly, lz := sx-ox, sy-oy, sz-oz
	b := lx*dx + ly*dy + lz*dz
	cc := lx*lx + ly*ly + lz*lz - rad*rad
	disc := b*b - cc
	c.flop(17)
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	c.flop(2)
	if t := b - sq; t > 1e-7 {
		return t, true
	}
	if t := b + sq; t > 1e-7 {
		return t, true
	}
	return 0, false
}

// ddaAxis prepares one axis of the 3-D DDA.
func ddaAxis(o, d float64, idx int, g, t0 float64) (step int, tMax, tDelta float64) {
	if d > 1e-12 {
		step = 1
		boundary := (float64(idx) + 1) / g
		tMax = (boundary - o) / d
		tDelta = 1 / (g * d)
		return
	}
	if d < -1e-12 {
		step = -1
		boundary := float64(idx) / g
		tMax = (boundary - o) / d
		tDelta = -1 / (g * d)
		return
	}
	return 0, math.Inf(1), math.Inf(1)
}

// clipUnitCube returns the parametric overlap of the ray with [0,1]³.
func clipUnitCube(ox, oy, oz, dx, dy, dz float64) (t0, t1 float64, ok bool) {
	t0, t1 = 0, math.Inf(1)
	for _, ax := range [3][2]float64{{ox, dx}, {oy, dy}, {oz, dz}} {
		o, d := ax[0], ax[1]
		if math.Abs(d) < 1e-12 {
			if o < 0 || o > 1 {
				return 0, 0, false
			}
			continue
		}
		a := (0 - o) / d
		b := (1 - o) / d
		if a > b {
			a, b = b, a
		}
		if a > t0 {
			t0 = a
		}
		if b < t1 {
			t1 = b
		}
	}
	return t0, t1, t0 <= t1
}

func cellIndex(v float64, g int) int {
	i := int(v * float64(g))
	if i < 0 {
		return 0
	}
	if i >= g {
		return g - 1
	}
	return i
}

func norm3(x, y, z float64) (float64, float64, float64) {
	l := math.Sqrt(x*x + y*y + z*z)
	return x / l, y / l, z / l
}

// Verify re-executes a sample of pixels without the memory system and
// requires bit-identical results, plus global image sanity checks.
func (r *Raytrace) Verify() error {
	var minV, maxV float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < r.w*r.w; i++ {
		v := r.pixels.Peek(i)
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("raytrace: pixel %d out of range: %v", i, v)
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV-minV < 1e-3 {
		return fmt.Errorf("raytrace: image is flat (min %g max %g)", minV, maxV)
	}
	rng := workload.NewRNG(777)
	plain := ctx{r, nil}
	for s := 0; s < 64; s++ {
		px := rng.Intn(r.w)
		py := rng.Intn(r.w)
		want := r.tracePixel(plain, px, py)
		if want > 1 {
			want = 1
		}
		if got := r.pixels.Peek(py*r.w + px); got != want {
			return fmt.Errorf("raytrace: pixel (%d,%d) = %v, re-trace = %v", px, py, got, want)
		}
	}
	return nil
}

// Pixels exposes the rendered image (tests).
//
//splash:allow accounting result export after the measured phase; verification reads Go values only
func (r *Raytrace) Pixels() []float64 { return r.pixels.Raw() }
