// Package raytrace implements the SPLASH-2 Raytrace application: rendering
// a three-dimensional scene using ray tracing. A uniform spatial grid
// accelerates ray-object intersection, early ray termination is
// implemented, rays reflect unpredictably off the objects they strike, and
// the image plane is partitioned among processors in contiguous blocks of
// pixel groups with distributed task queues and task stealing (§3,
// [SGL94]). The scene is a synthetic sphere cluster standing in for the
// paper's "car" model (see internal/workload).
package raytrace

import (
	"fmt"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name: "raytrace",
		Doc:  "ray tracer with uniform-grid acceleration and task stealing",
		Defaults: map[string]int{
			"width":   64, // image side; paper input: car at higher resolution
			"spheres": 32,
			"grid":    8, // acceleration grid cells per side
			"tile":    4, // pixels per task tile side
			"seed":    1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["width"], opt["spheres"], opt["grid"], opt["tile"], uint64(opt["seed"]))
		},
	})
}

const (
	maxDepth   = 4
	minWeight  = 0.05 // early ray termination threshold
	sphereStep = 6    // words per sphere record
)

// Raytrace is one configured render instance.
type Raytrace struct {
	mch   *mach.Machine
	w     int
	ns    int
	g     int // grid cells per side
	tile  int
	scene *workload.Scene

	spheres   *mach.F64Array // 6 words each: x,y,z,r,diffuse,reflect
	cellStart *mach.IntArray // CSR offsets, g³+1
	cellItems *mach.IntArray // sphere ids
	pixels    *mach.F64Array // w×w image
	queues    *mach.TaskQueues
}

// ctx routes data accesses either through the memory system (rendering)
// or directly (verification re-execution); both paths compute identically.
type ctx struct {
	r *Raytrace
	//splash:allow procflow ctx is a per-call-stack view that never outlives the frame or crosses goroutines; p==nil marks verification
	p *mach.Proc
}

func (c ctx) f(a *mach.F64Array, i int) float64 {
	if c.p != nil {
		return a.Get(c.p, i)
	}
	//splash:allow accounting p==nil selects the unsimulated verification re-execution path
	return a.Peek(i)
}

func (c ctx) iv(a *mach.IntArray, i int) int {
	if c.p != nil {
		return a.Get(c.p, i)
	}
	//splash:allow accounting p==nil selects the unsimulated verification re-execution path
	return a.Peek(i)
}

func (c ctx) flop(n int) {
	if c.p != nil {
		c.p.Flop(n)
	}
}

// New builds the renderer: generates the scene, grids it, and allocates
// the shared image.
func New(m *mach.Machine, width, nspheres, grid, tile int, seed uint64) (*Raytrace, error) {
	if width < 4 || nspheres < 2 || grid < 2 || tile < 1 {
		return nil, fmt.Errorf("raytrace: bad parameters w=%d ns=%d g=%d tile=%d", width, nspheres, grid, tile)
	}
	r := &Raytrace{mch: m, w: width, ns: nspheres, g: grid, tile: tile}
	r.scene = workload.GenScene(nspheres, seed)

	r.spheres = m.NewF64(sphereStep*nspheres, true, mach.Interleaved())
	for i, s := range r.scene.Spheres {
		base := sphereStep * i
		r.spheres.Init(base, s.X)
		r.spheres.Init(base+1, s.Y)
		r.spheres.Init(base+2, s.Z)
		r.spheres.Init(base+3, s.Radius)
		r.spheres.Init(base+4, s.Diffuse)
		r.spheres.Init(base+5, s.Reflect)
	}

	// Uniform grid over the unit cube for the cluster spheres (the ground
	// sphere, index 0, is tested on every ray). CSR built at input time.
	g3 := grid * grid * grid
	lists := make([][]int, g3)
	for i := 1; i < nspheres; i++ {
		s := r.scene.Spheres[i]
		cellsOverlapping(grid, s, func(c int) { lists[c] = append(lists[c], i) })
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	r.cellStart = m.NewInt(g3+1, true, mach.Interleaved())
	r.cellItems = m.NewInt(total+1, true, mach.Interleaved())
	off := 0
	for c, l := range lists {
		r.cellStart.Init(c, off)
		for _, id := range l {
			r.cellItems.Init(off, id)
			off++
		}
	}
	r.cellStart.Init(g3, off)

	r.pixels = m.NewF64(width*width, true, mach.Blocked())
	r.queues = m.NewTaskQueues(width*width/tile/tile + 8)
	return r, nil
}

// cellsOverlapping invokes fn for every grid cell whose box intersects the
// sphere's bounding box (clipped to the unit cube).
func cellsOverlapping(g int, s workload.Sphere, fn func(cell int)) {
	clampIdx := func(v float64) int {
		i := int(v * float64(g))
		if i < 0 {
			i = 0
		}
		if i >= g {
			i = g - 1
		}
		return i
	}
	x0, x1 := clampIdx(s.X-s.Radius), clampIdx(s.X+s.Radius)
	y0, y1 := clampIdx(s.Y-s.Radius), clampIdx(s.Y+s.Radius)
	z0, z1 := clampIdx(s.Z-s.Radius), clampIdx(s.Z+s.Radius)
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				fn((z*g+y)*g + x)
			}
		}
	}
}

// Run renders the frame: every processor seeds its queue with its
// contiguous block of tiles, then all render with stealing.
func (r *Raytrace) Run(m *mach.Machine) {
	tiles := (r.w / r.tile) * (r.w / r.tile)
	m.Run(func(p *mach.Proc) {
		lo := p.ID * tiles / m.Procs()
		hi := (p.ID + 1) * tiles / m.Procs()
		for t := lo; t < hi; t++ {
			r.queues.Push(p, t)
		}
	})
	m.Run(func(p *mach.Proc) {
		for {
			t, ok := r.queues.PopOrSteal(p)
			if !ok {
				return
			}
			r.renderTile(ctx{r, p}, t)
			r.queues.Done(p)
		}
	})
}

// renderTile traces every pixel of one tile.
func (r *Raytrace) renderTile(c ctx, t int) {
	perRow := r.w / r.tile
	ty, tx := t/perRow, t%perRow
	for dy := 0; dy < r.tile; dy++ {
		for dx := 0; dx < r.tile; dx++ {
			px := tx*r.tile + dx
			py := ty*r.tile + dy
			v := r.tracePixel(c, px, py)
			if c.p != nil {
				r.pixels.Set(c.p, py*r.w+px, v)
			}
		}
	}
}

// tracePixel shoots the primary ray for pixel (px,py).
func (r *Raytrace) tracePixel(c ctx, px, py int) float64 {
	// Camera at (0.5, 0.7, -1.6) looking toward the cluster.
	ox, oy, oz := 0.5, 0.7, -1.6
	ix := float64(px)/float64(r.w-1) - 0.5
	iy := 0.5 - float64(py)/float64(r.w-1)
	dx, dy, dz := norm3(ix, iy+0.1, 1.4)
	c.flop(12)
	v := r.trace(c, ox, oy, oz, dx, dy, dz, 1.0, 0)
	if v > 1 {
		v = 1
	}
	return v
}
