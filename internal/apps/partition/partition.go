// Package partition provides the decomposition helpers shared by the
// SPLASH-2 programs: 2-D processor grids for block decompositions and
// contiguous 1-D range splits.
package partition

import "math"

// ProcGrid factors p into the most square pr×pc grid with pr·pc = p,
// pr ≤ pc — the shape used by the 2-D scatter (LU, Cholesky) and subgrid
// (Ocean) decompositions.
func ProcGrid(p int) (pr, pc int) {
	pr = int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	return pr, p / pr
}

// Range returns the half-open slice [lo,hi) of n items assigned to worker
// id of total workers under a contiguous block partition.
func Range(id, workers, n int) (lo, hi int) {
	per := n / workers
	rem := n % workers
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
