// Package fft implements the SPLASH-2 FFT kernel: a complex 1-D radix-√n
// six-step FFT optimized to minimize interprocessor communication. The n
// complex data points and the n roots of unity are organized as √n×√n
// matrices partitioned so that every processor owns a contiguous set of
// rows allocated in its local memory. Communication happens in three
// matrix transpose steps: every processor transposes a contiguous
// (√n/p)×(√n/p) submatrix from every other processor, blocked to exploit
// cache-line reuse and staggered (processor i starts with the submatrix of
// processor i+1) to avoid memory hotspotting (§3, [Bai90], [WSH94]).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:      "fft",
		Kernel:    true,
		FlopBased: true,
		Doc:       "complex 1-D radix-√n six-step FFT",
		Defaults: map[string]int{
			"n":       4096, // paper default: 65536
			"bs":      4,    // transpose tile size
			"stagger": 1,    // 0: all processors transpose from node 0 first (hotspot ablation)
			"seed":    1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["n"], opt["bs"], opt["stagger"] != 0, uint64(opt["seed"]))
		},
	})
}

// FFT is one configured transform instance.
type FFT struct {
	mch     *mach.Machine
	n, m    int               // points, matrix side (m = √n)
	rpp     int               // rows per processor
	bs      int               // transpose tile size
	stagger bool              // staggered transpose order (§3: avoids memory hotspotting)
	x       *mach.C128Array   // data matrix
	trans   *mach.C128Array   // transpose scratch
	u       *mach.C128Array   // roots-of-unity matrix ω^(r·c)
	tw      []*mach.C128Array // per-processor private row-FFT twiddles
	input   []complex128      // original data for verification
	barrier *mach.Barrier
}

// New builds the kernel: n must be a power of four so that √n is a power
// of two, and the processor count must divide √n.
func New(mch *mach.Machine, n, bs int, stagger bool, seed uint64) (*FFT, error) {
	if n < 4 || bits.OnesCount(uint(n)) != 1 || bits.TrailingZeros(uint(n))%2 != 0 {
		return nil, fmt.Errorf("fft: n=%d must be a power of 4", n)
	}
	side := 1 << (bits.TrailingZeros(uint(n)) / 2)
	p := mch.Procs()
	if side%p != 0 {
		return nil, fmt.Errorf("fft: √n=%d not divisible by %d processors", side, p)
	}
	if bs <= 0 {
		bs = 4
	}
	f := &FFT{mch: mch, n: n, m: side, rpp: side / p, bs: bs, stagger: stagger, barrier: mch.NewBarrier()}

	f.x = mch.NewC128(n, true, mach.Blocked())
	f.trans = mch.NewC128(n, true, mach.Blocked())
	f.u = mch.NewC128(n, true, mach.Blocked())

	rng := workload.NewRNG(seed)
	f.input = make([]complex128, n)
	for i := 0; i < n; i++ {
		v := complex(rng.Range(-1, 1), rng.Range(-1, 1))
		f.input[i] = v
		f.x.Init(i, v)
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			e := -2 * math.Pi * float64(r) * float64(c) / float64(n)
			f.u.Init(r*side+c, cmplx.Exp(complex(0, e)))
		}
	}
	// Private per-processor twiddles for the √n-point row FFTs.
	f.tw = make([]*mach.C128Array, p)
	for pid := 0; pid < p; pid++ {
		t := mch.NewC128(side/2, false, mach.Owner(pid))
		for k := 0; k < side/2; k++ {
			e := -2 * math.Pi * float64(k) / float64(side)
			t.Init(k, cmplx.Exp(complex(0, e)))
		}
		f.tw[pid] = t
	}
	return f, nil
}

// Run executes the six-step algorithm.
func (f *FFT) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		f.transpose(p, f.x, f.trans)
		f.barrier.Wait(p)
		f.rowFFTs(p, f.trans)
		f.twiddle(p, f.trans)
		f.barrier.Wait(p)
		f.transpose(p, f.trans, f.x)
		f.barrier.Wait(p)
		f.rowFFTs(p, f.x)
		f.barrier.Wait(p)
		f.transpose(p, f.x, f.trans)
		f.barrier.Wait(p)
	})
}

// transpose writes dst = srcᵀ for this processor's destination rows,
// visiting source submatrices in staggered order and in bs×bs tiles.
func (f *FFT) transpose(p *mach.Proc, src, dst *mach.C128Array) {
	procs := f.mch.Procs()
	r0 := p.ID * f.rpp
	for s := 1; s <= procs; s++ {
		partner := (p.ID + s) % procs // staggered: i transposes from i+1 first
		if !f.stagger {
			partner = s % procs // ablation: everyone starts at node 0, 1, …
		}
		c0 := partner * f.rpp
		for tr := 0; tr < f.rpp; tr += f.bs {
			for tc := 0; tc < f.rpp; tc += f.bs {
				for r := tr; r < tr+f.bs && r < f.rpp; r++ {
					for c := tc; c < tc+f.bs && c < f.rpp; c++ {
						v := src.Get(p, (c0+c)*f.m+(r0+r))
						dst.Set(p, (r0+r)*f.m+(c0+c), v)
						p.Instr(2) // index arithmetic
					}
				}
			}
		}
	}
}

// rowFFTs runs an in-place iterative radix-2 FFT over each of this
// processor's rows of a.
func (f *FFT) rowFFTs(p *mach.Proc, a *mach.C128Array) {
	tw := f.tw[p.ID]
	for r := p.ID * f.rpp; r < (p.ID+1)*f.rpp; r++ {
		base := r * f.m
		f.bitReverse(p, a, base)
		for span := 1; span < f.m; span *= 2 {
			step := f.m / (2 * span)
			for k := 0; k < f.m; k += 2 * span {
				for j := 0; j < span; j++ {
					w := tw.Get(p, j*step)
					lo := a.Get(p, base+k+j)
					hi := a.Get(p, base+k+j+span)
					t := w * hi
					a.Set(p, base+k+j, lo+t)
					a.Set(p, base+k+j+span, lo-t)
					p.Flop(10) // complex mult (6) + two complex adds (4)
				}
			}
		}
	}
}

// bitReverse permutes one row into bit-reversed order.
func (f *FFT) bitReverse(p *mach.Proc, a *mach.C128Array, base int) {
	logm := bits.TrailingZeros(uint(f.m))
	for i := 0; i < f.m; i++ {
		j := int(bits.Reverse32(uint32(i)) >> (32 - logm))
		if j > i {
			vi := a.Get(p, base+i)
			vj := a.Get(p, base+j)
			a.Set(p, base+i, vj)
			a.Set(p, base+j, vi)
		}
		p.Instr(2)
	}
}

// twiddle multiplies element (r,c) of this processor's rows by ω^(r·c),
// read from the locally allocated partition of the roots matrix.
func (f *FFT) twiddle(p *mach.Proc, a *mach.C128Array) {
	for r := p.ID * f.rpp; r < (p.ID+1)*f.rpp; r++ {
		for c := 0; c < f.m; c++ {
			w := f.u.Get(p, r*f.m+c)
			a.Set(p, r*f.m+c, a.Get(p, r*f.m+c)*w)
			p.Flop(6)
		}
	}
}

// Output returns the transform result (natural order) for verification.
//
//splash:allow accounting result export after the measured phase; verification reads Go values only
func (f *FFT) Output() []complex128 { return f.trans.Raw() }

// Verify compares against a direct DFT: fully for small n, on sampled
// output indices for large n.
func (f *FFT) Verify() error {
	out := f.Output()
	check := func(j int) error {
		var want complex128
		for k := 0; k < f.n; k++ {
			e := -2 * math.Pi * float64(j) * float64(k) / float64(f.n)
			want += f.input[k] * cmplx.Exp(complex(0, e))
		}
		if d := cmplx.Abs(out[j] - want); d > 1e-6*math.Sqrt(float64(f.n)) {
			return fmt.Errorf("fft: output[%d] = %v, direct DFT = %v (|Δ|=%g)", j, out[j], want, d)
		}
		return nil
	}
	if f.n <= 1024 {
		for j := 0; j < f.n; j++ {
			if err := check(j); err != nil {
				return err
			}
		}
		return nil
	}
	rng := workload.NewRNG(99)
	for s := 0; s < 16; s++ {
		if err := check(rng.Intn(f.n)); err != nil {
			return err
		}
	}
	return nil
}
