package fft

import (
	"testing"
	"testing/quick"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
}

func TestMatchesDirectDFT(t *testing.T) {
	m := machine(4)
	f, err := New(m, 256, 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(m)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(1)
	f, err := New(m, 64, 2, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(m)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadSizes(t *testing.T) {
	m := machine(2)
	for _, n := range []int{0, 3, 128, 512} { // 128, 512 are not powers of 4
		if _, err := New(m, n, 4, true, 1); err == nil {
			t.Errorf("n=%d accepted", n)
		}
	}
	// √1024 = 32 rows not divisible by 3 procs... 3 procs: invalid anyway
	m3 := mach.MustNew(mach.Config{Procs: 3, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
	if _, err := New(m3, 256, 4, true, 1); err == nil {
		t.Error("16 rows on 3 procs accepted")
	}
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"n": 64}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if mach.Aggregate(st.Procs).Flops == 0 {
		t.Fatal("no flops counted")
	}
	// Transposes communicate: with >1 proc there must be remote traffic.
	if st.Mem.Traffic.Remote() == 0 {
		t.Fatal("no communication in transposes")
	}
}

// Property: the transform is correct for any seed and supported size/proc
// combination.
func TestTransformProperty(t *testing.T) {
	f := func(seed uint64, procSel, sizeSel uint8) bool {
		procs := []int{1, 2, 4}[int(procSel)%3]
		n := []int{64, 256}[int(sizeSel)%2]
		m := machine(procs)
		ff, err := New(m, n, 2, true, seed)
		if err != nil {
			return false
		}
		ff.Run(m)
		return ff.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalEnergyConservation(t *testing.T) {
	m := machine(4)
	f, err := New(m, 256, 4, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(m)
	var ein, eout float64
	for _, v := range f.input {
		ein += real(v)*real(v) + imag(v)*imag(v)
	}
	for _, v := range f.Output() {
		eout += real(v)*real(v) + imag(v)*imag(v)
	}
	// Parseval: Σ|X|² = n·Σ|x|².
	if ratio := eout / (ein * 256); ratio < 0.999999 || ratio > 1.000001 {
		t.Fatalf("Parseval violated: ratio=%v", ratio)
	}
}

// §3: the staggered transpose order exists to avoid memory hotspotting.
// Without it, every processor fetches from the same home node in the same
// phase, and that node's peak service burst rises well above the mean.
func TestStaggerAblationHotspot(t *testing.T) {
	ratio := func(stagger bool) float64 {
		m := machine(8)
		f, err := New(m, 4096, 4, stagger, 11)
		if err != nil {
			t.Fatal(err)
		}
		f.Run(m)
		if err := f.Verify(); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot().Mem.HotspotRatio()
	}
	staggered := ratio(true)
	sequential := ratio(false)
	if sequential <= staggered {
		t.Fatalf("sequential transpose order shows no extra hotspotting: %.2f <= %.2f", sequential, staggered)
	}
}
