// Package fmm implements the SPLASH-2 FMM application: 2-D N-body
// simulation using the adaptive Fast Multipole Method [Gre87]. Unlike
// Barnes, the tree is not traversed once per body: a single upward pass
// computes multipole expansions, cell-cell interactions convert them to
// local expansions, and a downward pass propagates effects to the bodies;
// accuracy is controlled by the number of expansion terms rather than by
// how many cells a body interacts with (§3). Communication is unstructured
// and no attempt is made at intelligent distribution of particle data.
package fmm

import (
	"fmt"
	"math"
	"math/cmplx"

	"splash2/internal/apps"
	"splash2/internal/apps/partition"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:      "fmm",
		FlopBased: true,
		Doc:       "adaptive 2-D Fast Multipole Method N-body simulation",
		Defaults: map[string]int{
			"n":       512, // paper default: 16384
			"steps":   2,
			"terms":   10,
			"leafcap": 8,
			"seed":    1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["n"], opt["steps"], opt["terms"], opt["leafcap"], uint64(opt["seed"]))
		},
	})
}

const fmmDt = 0.005

// FMM is one configured simulation instance.
type FMM struct {
	mch     *mach.Machine
	n       int
	steps   int
	terms   int
	leafCap int

	pos *mach.F64Array // 2n (x,y)
	vel *mach.F64Array // 2n
	fld *mach.F64Array // 2n (complex field per body)
	q   *mach.F64Array // n charges

	// Quadtree pool.
	cap      int
	kind     *mach.IntArray
	children *mach.IntArray // 4 per node
	lbodies  *mach.IntArray
	lcount   *mach.IntArray
	cx, cy   *mach.F64Array
	half     *mach.F64Array
	mpole    *mach.F64Array // 2(terms+1) per node
	local    *mach.F64Array
	locks    []mach.Lock

	allocLock mach.Lock
	allocN    *mach.IntArray
	root      int

	minmax  *mach.F64Array
	barrier *mach.Barrier

	posAtForce []float64
	qSnapshot  []float64
}

// New builds the simulation over a clustered 2-D distribution (exercising
// tree adaptivity).
func New(m *mach.Machine, n, steps, terms, leafCap int, seed uint64) (*FMM, error) {
	if n < 2 || terms < 4 || leafCap < 1 {
		return nil, fmt.Errorf("fmm: bad parameters n=%d terms=%d leafcap=%d", n, terms, leafCap)
	}
	f := &FMM{mch: m, n: n, steps: steps, terms: terms, leafCap: leafCap, barrier: m.NewBarrier()}
	f.pos = m.NewF64(2*n, true, mach.Interleaved())
	f.vel = m.NewF64(2*n, true, mach.Interleaved())
	f.fld = m.NewF64(2*n, true, mach.Interleaved())
	f.q = m.NewF64(n, true, mach.Interleaved())

	f.cap = 4*n + 64
	f.kind = m.NewInt(f.cap, true, mach.Interleaved())
	f.children = m.NewInt(4*f.cap, true, mach.Interleaved())
	f.lbodies = m.NewInt(leafCap*f.cap, true, mach.Interleaved())
	f.lcount = m.NewInt(f.cap, true, mach.Interleaved())
	f.cx = m.NewF64(f.cap, true, mach.Interleaved())
	f.cy = m.NewF64(f.cap, true, mach.Interleaved())
	f.half = m.NewF64(f.cap, true, mach.Interleaved())
	f.mpole = m.NewF64(2*(terms+1)*f.cap, true, mach.Interleaved())
	f.local = m.NewF64(2*(terms+1)*f.cap, true, mach.Interleaved())
	f.locks = make([]mach.Lock, f.cap)
	f.allocN = m.NewInt(8, true, mach.Owner(0))
	pad := m.LineSize() / mach.WordBytes
	f.minmax = m.NewF64(m.Procs()*6*pad, true, mach.Interleaved())

	for i, b := range workload.Clustered2D(n, 4, seed) {
		f.pos.Init(2*i, b.X)
		f.pos.Init(2*i+1, b.Y)
		f.q.Init(i, b.Mass)
	}
	return f, nil
}

// Run executes the time-steps; measurement restarts after the first.
func (f *FMM) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		f.timestep(p, 0)
		if f.steps > 1 {
			m.Epoch(p, f.barrier)
			for s := 1; s < f.steps; s++ {
				f.timestep(p, s)
			}
		}
	})
}

func (f *FMM) timestep(p *mach.Proc, step int) {
	lo, hi := partition.Range(p.ID, f.mch.Procs(), f.n)
	pad := f.mch.LineSize() / mach.WordBytes

	// Bounding box reduction.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := lo; i < hi; i++ {
		for d := 0; d < 2; d++ {
			v := f.pos.Get(p, 2*i+d)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			p.Instr(2)
		}
	}
	slot := p.ID * 6 * pad
	f.minmax.Set(p, slot, minV)
	f.minmax.Set(p, slot+1, maxV)
	f.barrier.Wait(p)
	gmin, gmax := math.Inf(1), math.Inf(-1)
	for qd := 0; qd < f.mch.Procs(); qd++ {
		if v := f.minmax.Get(p, qd*6*pad); v < gmin {
			gmin = v
		}
		if v := f.minmax.Get(p, qd*6*pad+1); v > gmax {
			gmax = v
		}
		p.Instr(2)
	}
	center := (gmin + gmax) / 2
	half := (gmax-gmin)/2*1.001 + 1e-9

	// Tree build: parallel insertion with per-node locks.
	if p.ID == 0 {
		f.allocN.Set(p, 0, 0)
		f.root = f.alloc(p, kindInternal, center, center, half)
	}
	f.barrier.Wait(p)
	for i := lo; i < hi; i++ {
		f.insert(p, f.root, i, f.pos.Get(p, 2*i), f.pos.Get(p, 2*i+1))
	}
	f.barrier.Wait(p)

	// Upward pass: multipoles for depth-2 subtrees in parallel, then the
	// shallow top combined by one processor.
	deep, shallow := f.depth2(p)
	for k := p.ID; k < len(deep); k += f.mch.Procs() {
		f.upward(p, deep[k])
	}
	f.barrier.Wait(p)
	if p.ID == 0 {
		for k := len(shallow) - 1; k >= 0; k-- {
			f.combineMpole(p, shallow[k])
		}
	}
	f.barrier.Wait(p)

	// Interaction + downward pass per assigned target subtree: all writes
	// stay within the subtree's locals and its leaves' bodies.
	if f.kind.Get(p, f.root) == kindLeaf {
		if p.ID == 0 {
			f.zeroFields(p, f.root)
			f.p2p(p, f.root, f.root)
		}
	} else {
		for k := p.ID; k < len(deep); k += f.mch.Procs() {
			f.zeroLocals(p, deep[k])
			f.zeroFields(p, deep[k])
			f.dual(p, deep[k], f.root)
			f.downward(p, deep[k])
		}
	}
	f.barrier.Wait(p)

	if step == f.steps-1 && p.ID == 0 {
		//splash:allow accounting verification snapshot of force-time positions; simulated references here would pollute the measured stream
		f.posAtForce = append([]float64(nil), f.pos.Raw()...)
	}
	f.barrier.Wait(p)

	// Integration.
	for i := lo; i < hi; i++ {
		for d := 0; d < 2; d++ {
			v := f.vel.Get(p, 2*i+d) + fmmDt*f.fld.Get(p, 2*i+d)
			f.vel.Set(p, 2*i+d, v)
			f.pos.Set(p, 2*i+d, f.pos.Get(p, 2*i+d)+fmmDt*v)
			p.Flop(4)
		}
	}
	f.barrier.Wait(p)
}

// Verify compares FMM fields of sampled bodies against direct summation.
func (f *FMM) Verify() error {
	if f.posAtForce == nil {
		return fmt.Errorf("fmm: no force snapshot recorded")
	}
	rng := workload.NewRNG(321)
	var worst float64
	for s := 0; s < 24; s++ {
		i := rng.Intn(f.n)
		zi := complex(f.posAtForce[2*i], f.posAtForce[2*i+1])
		var want complex128
		for j := 0; j < f.n; j++ {
			if j == i {
				continue
			}
			zj := complex(f.posAtForce[2*j], f.posAtForce[2*j+1])
			want += complex(f.q.Peek(j), 0) / (zi - zj)
		}
		got := complex(f.fld.Peek(2*i), f.fld.Peek(2*i+1))
		if cmplx.Abs(want) == 0 {
			continue
		}
		if rel := cmplx.Abs(got-want) / cmplx.Abs(want); rel > worst {
			worst = rel
		}
	}
	if worst > 2e-3 {
		return fmt.Errorf("fmm: field error %.2e vs direct summation", worst)
	}
	for i := 0; i < 2*f.n; i++ {
		if v := f.pos.Peek(i); math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fmm: position diverged at body %d", i/2)
		}
	}
	return nil
}
