package fmm

import "math/cmplx"

// 2-D Laplace fast-multipole operators (Greengard & Rokhlin). The complex
// potential of charges q_i at z_i is Φ(z) = Σ q_i·log(z−z_i); a multipole
// expansion about zc is Φ(z) = a₀·log(z−zc) + Σ_{k≥1} a_k/(z−zc)^k and a
// local expansion about zc is Ψ(z) = Σ_{l≥0} b_l·(z−zc)^l. Coefficient
// slices hold terms 0..p.

// binomial returns C(n,k) as float64 (n small: expansion order ≤ ~40).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// p2m forms the multipole expansion about zc of charges q at positions z.
func p2m(q []float64, z []complex128, zc complex128, p int) []complex128 {
	a := make([]complex128, p+1)
	for i := range q {
		d := z[i] - zc
		a[0] += complex(q[i], 0)
		dk := d
		for k := 1; k <= p; k++ {
			a[k] -= complex(q[i]/float64(k), 0) * dk
			dk *= d
		}
	}
	return a
}

// m2m shifts a multipole expansion from center z0 to z1 (t = z0−z1).
func m2m(a []complex128, t complex128) []complex128 {
	p := len(a) - 1
	b := make([]complex128, p+1)
	b[0] = a[0]
	tl := t
	for l := 1; l <= p; l++ {
		s := -a[0] * tl / complex(float64(l), 0)
		tk := complex(1, 0) // t^(l-k), built downward
		// Σ_{k=1..l} a_k·t^{l−k}·C(l−1,k−1)
		for k := l; k >= 1; k-- {
			s += a[k] * tk * complex(binomial(l-1, k-1), 0)
			tk *= t
		}
		b[l] = s
		tl *= t
	}
	return b
}

// m2l converts a multipole expansion about z0 into a local expansion about
// z1 (t = z0−z1, which must be large enough for convergence).
func m2l(a []complex128, t complex128) []complex128 {
	p := len(a) - 1
	b := make([]complex128, p+1)
	// Precompute (−1)^k·a_k/t^k.
	ak := make([]complex128, p+1)
	tk := complex(1, 0)
	sign := 1.0
	for k := 1; k <= p; k++ {
		tk *= t
		sign = -sign
		ak[k] = a[k] * complex(sign, 0) / tk
	}
	s0 := a[0] * cmplx.Log(-t)
	for k := 1; k <= p; k++ {
		s0 += ak[k]
	}
	b[0] = s0
	tl := complex(1, 0)
	for l := 1; l <= p; l++ {
		tl *= t
		s := -a[0] / (complex(float64(l), 0) * tl)
		for k := 1; k <= p; k++ {
			s += ak[k] * complex(binomial(l+k-1, k-1), 0) / tl
		}
		b[l] = s
	}
	return b
}

// l2l shifts a local expansion from center z0 to z1 (t = z1−z0).
func l2l(a []complex128, t complex128) []complex128 {
	p := len(a) - 1
	b := make([]complex128, p+1)
	for l := 0; l <= p; l++ {
		s := complex(0, 0)
		tk := complex(1, 0)
		for k := l; k <= p; k++ {
			s += a[k] * complex(binomial(k, l), 0) * tk
			tk *= t
		}
		b[l] = s
	}
	return b
}

// evalMultipole evaluates Φ(z) and Φ'(z) for dz = z−zc.
func evalMultipole(a []complex128, dz complex128) (phi, field complex128) {
	phi = a[0] * cmplx.Log(dz)
	field = a[0] / dz
	pow := dz
	for k := 1; k < len(a); k++ {
		phi += a[k] / pow
		field -= complex(float64(k), 0) * a[k] / (pow * dz)
		pow *= dz
	}
	return phi, field
}

// evalLocal evaluates Ψ(z) and Ψ'(z) for dz = z−zc.
func evalLocal(b []complex128, dz complex128) (phi, field complex128) {
	phi = b[0]
	pow := complex(1, 0)
	for l := 1; l < len(b); l++ {
		field += complex(float64(l), 0) * b[l] * pow
		pow *= dz
		phi += b[l] * pow
	}
	return phi, field
}
