package fmm

import (
	"math"

	"splash2/internal/mach"
)

// Coefficient I/O: expansions live in shared memory as interleaved
// (re,im) pairs, 2(terms+1) words per node.

func (f *FMM) coeffBase(node int) int { return 2 * (f.terms + 1) * node }

func (f *FMM) readCoeffs(p *mach.Proc, arr *mach.F64Array, node int) []complex128 {
	base := f.coeffBase(node)
	out := make([]complex128, f.terms+1)
	for k := range out {
		out[k] = complex(arr.Get(p, base+2*k), arr.Get(p, base+2*k+1))
	}
	return out
}

func (f *FMM) writeCoeffs(p *mach.Proc, arr *mach.F64Array, node int, c []complex128) {
	base := f.coeffBase(node)
	for k := range c {
		arr.Set(p, base+2*k, real(c[k]))
		arr.Set(p, base+2*k+1, imag(c[k]))
	}
}

func (f *FMM) addCoeffs(p *mach.Proc, arr *mach.F64Array, node int, c []complex128) {
	base := f.coeffBase(node)
	for k := range c {
		arr.Add(p, base+2*k, real(c[k]))
		arr.Add(p, base+2*k+1, imag(c[k]))
		p.Flop(2)
	}
}

func (f *FMM) center(p *mach.Proc, node int) complex128 {
	return complex(f.cx.Get(p, node), f.cy.Get(p, node))
}

// radius is the circumscribed-circle radius of the node's square.
func (f *FMM) radius(p *mach.Proc, node int) float64 {
	return f.half.Get(p, node) * math.Sqrt2
}

// upward computes multipole expansions post-order: P2M at leaves, M2M up.
func (f *FMM) upward(p *mach.Proc, node int) {
	if f.kind.Get(p, node) == kindLeaf {
		n := f.lcount.Get(p, node)
		qs := make([]float64, n)
		zs := make([]complex128, n)
		for k := 0; k < n; k++ {
			b := f.lbodies.Get(p, node*f.leafCap+k)
			qs[k] = f.q.Get(p, b)
			zs[k] = complex(f.pos.Get(p, 2*b), f.pos.Get(p, 2*b+1))
		}
		a := p2m(qs, zs, f.center(p, node), f.terms)
		p.Flop(6 * n * f.terms)
		f.writeCoeffs(p, f.mpole, node, a)
		return
	}
	acc := make([]complex128, f.terms+1)
	zc := f.center(p, node)
	for o := 0; o < 4; o++ {
		c := f.children.Get(p, 4*node+o)
		if c == -1 {
			continue
		}
		f.upward(p, c)
		shifted := m2m(f.readCoeffs(p, f.mpole, c), f.center(p, c)-zc)
		p.Flop(3 * f.terms * f.terms)
		for k := range acc {
			acc[k] += shifted[k]
		}
		p.Flop(2 * (f.terms + 1))
	}
	f.writeCoeffs(p, f.mpole, node, acc)
}

// combineMpole recomputes an internal node's multipole from its children's
// already-final expansions (shallow top of the tree).
func (f *FMM) combineMpole(p *mach.Proc, node int) {
	if f.kind.Get(p, node) == kindLeaf {
		return
	}
	acc := make([]complex128, f.terms+1)
	zc := f.center(p, node)
	for o := 0; o < 4; o++ {
		c := f.children.Get(p, 4*node+o)
		if c == -1 {
			continue
		}
		shifted := m2m(f.readCoeffs(p, f.mpole, c), f.center(p, c)-zc)
		p.Flop(3 * f.terms * f.terms)
		for k := range acc {
			acc[k] += shifted[k]
		}
		p.Flop(2 * (f.terms + 1))
	}
	f.writeCoeffs(p, f.mpole, node, acc)
}

// zeroLocals clears the local expansions of an entire subtree.
func (f *FMM) zeroLocals(p *mach.Proc, node int) {
	zero := make([]complex128, f.terms+1)
	f.writeCoeffs(p, f.local, node, zero)
	if f.kind.Get(p, node) == kindLeaf {
		return
	}
	for o := 0; o < 4; o++ {
		if c := f.children.Get(p, 4*node+o); c != -1 {
			f.zeroLocals(p, c)
		}
	}
}

// zeroFields clears the accumulated fields of bodies in a subtree's leaves.
func (f *FMM) zeroFields(p *mach.Proc, node int) {
	if f.kind.Get(p, node) == kindLeaf {
		n := f.lcount.Get(p, node)
		for k := 0; k < n; k++ {
			b := f.lbodies.Get(p, node*f.leafCap+k)
			f.fld.Set(p, 2*b, 0)
			f.fld.Set(p, 2*b+1, 0)
		}
		return
	}
	for o := 0; o < 4; o++ {
		if c := f.children.Get(p, 4*node+o); c != -1 {
			f.zeroFields(p, c)
		}
	}
}

// dual performs the adaptive interaction traversal between target cell a
// (within this processor's subtree) and source cell b: well-separated
// pairs interact by M2L, leaf pairs directly, and otherwise the larger
// cell is subdivided.
func (f *FMM) dual(p *mach.Proc, a, b int) {
	za, zb := f.center(p, a), f.center(p, b)
	ra, rb := f.radius(p, a), f.radius(p, b)
	d := za - zb
	dist := math.Hypot(real(d), imag(d))
	p.Flop(6)
	if dist >= 2*(ra+rb) {
		loc := m2l(f.readCoeffs(p, f.mpole, b), zb-za)
		p.Flop(4 * f.terms * f.terms)
		f.addCoeffs(p, f.local, a, loc)
		return
	}
	aLeaf := f.kind.Get(p, a) == kindLeaf
	bLeaf := f.kind.Get(p, b) == kindLeaf
	switch {
	case aLeaf && bLeaf:
		f.p2p(p, a, b)
	case bLeaf || (!aLeaf && f.half.Get(p, a) >= f.half.Get(p, b)):
		for o := 0; o < 4; o++ {
			if c := f.children.Get(p, 4*a+o); c != -1 {
				f.dual(p, c, b)
			}
		}
	default:
		for o := 0; o < 4; o++ {
			if c := f.children.Get(p, 4*b+o); c != -1 {
				f.dual(p, a, c)
			}
		}
	}
}

// p2p adds direct interactions from source leaf b's bodies onto target
// leaf a's bodies.
func (f *FMM) p2p(p *mach.Proc, a, b int) {
	na := f.lcount.Get(p, a)
	nb := f.lcount.Get(p, b)
	for i := 0; i < na; i++ {
		bi := f.lbodies.Get(p, a*f.leafCap+i)
		zi := complex(f.pos.Get(p, 2*bi), f.pos.Get(p, 2*bi+1))
		var acc complex128
		for j := 0; j < nb; j++ {
			bj := f.lbodies.Get(p, b*f.leafCap+j)
			if bj == bi {
				continue
			}
			zj := complex(f.pos.Get(p, 2*bj), f.pos.Get(p, 2*bj+1))
			acc += complex(f.q.Get(p, bj), 0) / (zi - zj)
			p.Flop(9)
		}
		f.fld.Add(p, 2*bi, real(acc))
		f.fld.Add(p, 2*bi+1, imag(acc))
		p.Flop(2)
	}
}

// downward propagates local expansions to children (L2L) and evaluates
// them at the bodies of leaves (L2P).
func (f *FMM) downward(p *mach.Proc, node int) {
	if f.kind.Get(p, node) == kindLeaf {
		loc := f.readCoeffs(p, f.local, node)
		zc := f.center(p, node)
		n := f.lcount.Get(p, node)
		for k := 0; k < n; k++ {
			b := f.lbodies.Get(p, node*f.leafCap+k)
			z := complex(f.pos.Get(p, 2*b), f.pos.Get(p, 2*b+1))
			_, fieldVal := evalLocal(loc, z-zc)
			p.Flop(6 * f.terms)
			f.fld.Add(p, 2*b, real(fieldVal))
			f.fld.Add(p, 2*b+1, imag(fieldVal))
			p.Flop(2)
		}
		return
	}
	loc := f.readCoeffs(p, f.local, node)
	zc := f.center(p, node)
	for o := 0; o < 4; o++ {
		c := f.children.Get(p, 4*node+o)
		if c == -1 {
			continue
		}
		shifted := l2l(loc, f.center(p, c)-zc)
		p.Flop(3 * f.terms * f.terms)
		f.addCoeffs(p, f.local, c, shifted)
		f.downward(p, c)
	}
}
