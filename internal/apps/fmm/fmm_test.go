package fmm

import (
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 128 << 10, Assoc: 4, LineSize: 64})
}

func TestFieldsMatchDirectSummation(t *testing.T) {
	m := machine(4)
	f, err := New(m, 256, 2, 12, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(m)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(1)
	f, err := New(m, 128, 1, 10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(m)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyProblemAllDirect(t *testing.T) {
	// n ≤ leafcap: the root is a leaf and everything is P2P.
	m := machine(2)
	f, err := New(m, 6, 1, 8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(m)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherOrderMoreAccurate(t *testing.T) {
	errAt := func(terms int) float64 {
		m := machine(2)
		f, err := New(m, 256, 1, terms, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		f.Run(m)
		// Reuse Verify's direct comparison by measuring worst error
		// manually over a fixed sample.
		var worst float64
		for i := 0; i < 64; i++ {
			zi := complex(f.posAtForce[2*i], f.posAtForce[2*i+1])
			var want complex128
			for j := 0; j < f.n; j++ {
				if j == i {
					continue
				}
				zj := complex(f.posAtForce[2*j], f.posAtForce[2*j+1])
				want += complex(f.q.Peek(j), 0) / (zi - zj)
			}
			got := complex(f.fld.Peek(2*i), f.fld.Peek(2*i+1))
			if d := absC(got - want); absC(want) > 0 && d/absC(want) > worst {
				worst = d / absC(want)
			}
		}
		return worst
	}
	lo := errAt(6)
	hi := errAt(16)
	if hi >= lo {
		t.Fatalf("more terms did not reduce error: p=6 → %g, p=16 → %g", lo, hi)
	}
}

func absC(z complex128) float64 {
	return real(z)*real(z) + imag(z)*imag(z)
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("fmm")
	if err != nil {
		t.Fatal(err)
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"n": 64, "steps": 1, "terms": 10}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if mach.Aggregate(m.Snapshot().Procs).Flops == 0 {
		t.Fatal("no flops")
	}
}

func TestRejectsBadParams(t *testing.T) {
	m := machine(1)
	if _, err := New(m, 1, 1, 10, 8, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(m, 64, 1, 2, 8, 1); err == nil {
		t.Error("terms=2 accepted")
	}
}
