package fmm

import (
	"fmt"

	"splash2/internal/mach"
)

const (
	kindInternal = 0
	kindLeaf     = 1
)

// alloc grabs a quadtree node from the shared pool.
func (f *FMM) alloc(p *mach.Proc, kind int, cx, cy, half float64) int {
	f.allocLock.Acquire(p)
	id := f.allocN.Get(p, 0)
	f.allocN.Set(p, 0, id+1)
	f.allocLock.Release(p)
	if id >= f.cap {
		panic(fmt.Sprintf("fmm: node pool exhausted (%d)", f.cap))
	}
	f.kind.Set(p, id, kind)
	f.lcount.Set(p, id, 0)
	f.cx.Set(p, id, cx)
	f.cy.Set(p, id, cy)
	f.half.Set(p, id, half)
	for o := 0; o < 4; o++ {
		f.children.Set(p, 4*id+o, -1)
	}
	return id
}

// quadrant locates (x,y) within node id, returning the child geometry.
func (f *FMM) quadrant(p *mach.Proc, id int, x, y float64) (q int, ccx, ccy, chalf float64) {
	cx := f.cx.Get(p, id)
	cy := f.cy.Get(p, id)
	h := f.half.Get(p, id) / 2
	ccx, ccy = cx-h, cy-h
	if x >= cx {
		q |= 1
		ccx = cx + h
	}
	if y >= cy {
		q |= 2
		ccy = cy + h
	}
	p.Instr(4)
	return q, ccx, ccy, h
}

// insert adds body b with per-node locking (same discipline as Barnes).
func (f *FMM) insert(p *mach.Proc, root, b int, x, y float64) {
	node := root
	for {
		q, ccx, ccy, chalf := f.quadrant(p, node, x, y)
		f.locks[node].Acquire(p)
		child := f.children.Get(p, 4*node+q)
		switch {
		case child == -1:
			leaf := f.alloc(p, kindLeaf, ccx, ccy, chalf)
			f.lbodies.Set(p, leaf*f.leafCap, b)
			f.lcount.Set(p, leaf, 1)
			f.children.Set(p, 4*node+q, leaf)
			f.locks[node].Release(p)
			return
		case f.kind.Get(p, child) == kindLeaf:
			n := f.lcount.Get(p, child)
			if n < f.leafCap {
				f.lbodies.Set(p, child*f.leafCap+n, b)
				f.lcount.Set(p, child, n+1)
				f.locks[node].Release(p)
				return
			}
			repl := f.splitLeaf(p, child, ccx, ccy, chalf)
			f.children.Set(p, 4*node+q, repl)
			f.locks[node].Release(p)
			node = repl
		default:
			f.locks[node].Release(p)
			node = child
		}
	}
}

// splitLeaf converts a full leaf into a private internal subtree.
func (f *FMM) splitLeaf(p *mach.Proc, leaf int, cx, cy, half float64) int {
	internal := f.alloc(p, kindInternal, cx, cy, half)
	n := f.lcount.Get(p, leaf)
	for k := 0; k < n; k++ {
		b := f.lbodies.Get(p, leaf*f.leafCap+k)
		f.insertPrivate(p, internal, b, f.pos.Get(p, 2*b), f.pos.Get(p, 2*b+1))
	}
	return internal
}

func (f *FMM) insertPrivate(p *mach.Proc, root, b int, x, y float64) {
	node := root
	for {
		q, ccx, ccy, chalf := f.quadrant(p, node, x, y)
		child := f.children.Get(p, 4*node+q)
		switch {
		case child == -1:
			leaf := f.alloc(p, kindLeaf, ccx, ccy, chalf)
			f.lbodies.Set(p, leaf*f.leafCap, b)
			f.lcount.Set(p, leaf, 1)
			f.children.Set(p, 4*node+q, leaf)
			return
		case f.kind.Get(p, child) == kindLeaf:
			n := f.lcount.Get(p, child)
			if n < f.leafCap {
				f.lbodies.Set(p, child*f.leafCap+n, b)
				f.lcount.Set(p, child, n+1)
				return
			}
			repl := f.splitLeaf(p, child, ccx, ccy, chalf)
			f.children.Set(p, 4*node+q, repl)
			node = repl
		default:
			node = child
		}
	}
}

// targetDepth is how deep the work decomposition descends: subtree roots
// at this depth become independently assignable work units (up to 4³ of
// them), giving enough parallel slack for clustered distributions.
const targetDepth = 3

// depth2 lists the subtree roots at targetDepth (plus shallower leaves)
// and the shallow internal nodes above them in pre-order — reversing the
// shallow list therefore visits children before parents. Every caller
// computes the same lists deterministically.
func (f *FMM) depth2(p *mach.Proc) (deep []int, shallowInternal []int) {
	if f.kind.Get(p, f.root) == kindLeaf {
		return nil, nil
	}
	var walk func(node, depth int)
	walk = func(node, depth int) {
		if depth == targetDepth || f.kind.Get(p, node) == kindLeaf {
			deep = append(deep, node)
			return
		}
		shallowInternal = append(shallowInternal, node)
		for o := 0; o < 4; o++ {
			if c := f.children.Get(p, 4*node+o); c != -1 {
				walk(c, depth+1)
			}
		}
	}
	walk(f.root, 0)
	return deep, shallowInternal
}
