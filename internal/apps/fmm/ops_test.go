package fmm

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"splash2/internal/workload"
)

const terms = 16

// directPhiField sums Φ(z) = Σ q·log(z−z_i) and Φ'(z) directly.
func directPhiField(q []float64, zs []complex128, z complex128) (phi, field complex128) {
	for i := range q {
		phi += complex(q[i], 0) * cmplx.Log(z-zs[i])
		field += complex(q[i], 0) / (z - zs[i])
	}
	return
}

// cluster builds a random charge cluster inside the disc |z−zc| < r.
func cluster(rng *workload.RNG, zc complex128, r float64, n int) ([]float64, []complex128) {
	q := make([]float64, n)
	zs := make([]complex128, n)
	for i := range q {
		q[i] = rng.Range(0.1, 1)
		rr := r * math.Sqrt(rng.Float64())
		th := rng.Range(0, 2*math.Pi)
		zs[i] = zc + cmplx.Rect(rr, th)
	}
	return q, zs
}

func relErr(got, want complex128) float64 {
	if cmplx.Abs(want) == 0 {
		return cmplx.Abs(got)
	}
	return cmplx.Abs(got-want) / cmplx.Abs(want)
}

func TestBinomial(t *testing.T) {
	cases := [][3]int{{0, 0, 1}, {5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}}
	for _, c := range cases {
		if got := binomial(c[0], c[1]); got != float64(c[2]) {
			t.Errorf("C(%d,%d) = %v, want %d", c[0], c[1], got, c[2])
		}
	}
	if binomial(3, 5) != 0 || binomial(3, -1) != 0 {
		t.Error("out-of-range binomial not zero")
	}
}

// Property: a multipole expansion reproduces potential and field outside
// the cluster.
func TestP2MAccuracy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		zc := complex(rng.Range(-1, 1), rng.Range(-1, 1))
		q, zs := cluster(rng, zc, 0.5, 20)
		a := p2m(q, zs, zc, terms)
		for trial := 0; trial < 5; trial++ {
			z := zc + cmplx.Rect(rng.Range(1.5, 3), rng.Range(0, 2*math.Pi))
			wantP, wantF := directPhiField(q, zs, z)
			gotP, gotF := evalMultipole(a, z-zc)
			if relErr(gotF, wantF) > 1e-9 || math.Abs(real(gotP-wantP)) > 1e-9*(1+math.Abs(real(wantP))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: M2M-shifted expansions agree with directly formed ones.
func TestM2MAccuracy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		z0 := complex(0.3, -0.2)
		q, zs := cluster(rng, z0, 0.3, 15)
		a := p2m(q, zs, z0, terms)
		z1 := z0 + complex(0.25, -0.15) // new, coarser center
		b := m2m(a, z0-z1)
		for trial := 0; trial < 5; trial++ {
			z := z1 + cmplx.Rect(rng.Range(2, 4), rng.Range(0, 2*math.Pi))
			_, wantF := directPhiField(q, zs, z)
			_, gotF := evalMultipole(b, z-z1)
			if relErr(gotF, wantF) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: M2L local expansions reproduce the far cluster's potential
// inside the target disc, to truncation accuracy.
func TestM2LAccuracy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		zsrc := complex(2.0, 1.0)
		q, zs := cluster(rng, zsrc, 0.4, 15)
		a := p2m(q, zs, zsrc, terms)
		ztgt := complex(-1.0, -0.5) // distance ≈ 3.35, radii 0.4
		b := m2l(a, zsrc-ztgt)
		for trial := 0; trial < 5; trial++ {
			z := ztgt + cmplx.Rect(rng.Range(0, 0.4), rng.Range(0, 2*math.Pi))
			wantP, wantF := directPhiField(q, zs, z)
			gotP, gotF := evalLocal(b, z-ztgt)
			if relErr(gotF, wantF) > 1e-6 {
				return false
			}
			// Potentials agree up to the (real) branch constant? No: the
			// real part is single-valued; compare directly.
			if math.Abs(real(gotP)-real(wantP)) > 1e-6*(1+math.Abs(real(wantP))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: L2L re-centering preserves values inside the sub-disc.
func TestL2LAccuracy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		zsrc := complex(2.5, 0)
		q, zs := cluster(rng, zsrc, 0.3, 10)
		a := p2m(q, zs, zsrc, terms)
		z0 := complex(-0.8, 0.1)
		loc := m2l(a, zsrc-z0)
		z1 := z0 + complex(0.1, -0.08)
		shifted := l2l(loc, z1-z0)
		for trial := 0; trial < 5; trial++ {
			z := z1 + cmplx.Rect(rng.Range(0, 0.1), rng.Range(0, 2*math.Pi))
			want, wantF := evalLocal(loc, z-z0)
			got, gotF := evalLocal(shifted, z-z1)
			if cmplx.Abs(got-want) > 1e-9*(1+cmplx.Abs(want)) || relErr(gotF, wantF) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
