// Package barnes implements the SPLASH-2 Barnes application: gravitational
// N-body simulation in three dimensions over a number of time-steps using
// the Barnes-Hut hierarchical method. The computational domain is an
// octree with leaves containing multiple bodies [HoS95]; most of the time
// is spent in partial traversals of the octree (one per body) computing
// forces. Communication is unstructured and dependent on the particle
// distribution, and no attempt is made at intelligent distribution of body
// data in main memory (§3).
package barnes

import (
	"fmt"
	"math"

	"splash2/internal/apps"
	"splash2/internal/apps/partition"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:      "barnes",
		FlopBased: true,
		Doc:       "Barnes-Hut hierarchical 3-D N-body simulation",
		Defaults: map[string]int{
			"n":       512, // paper default: 16384
			"steps":   2,
			"leafcap": 8,
			"theta10": 8, // opening criterion θ×10 (paper uses θ=1.0)
			"seed":    1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["n"], opt["steps"], opt["leafcap"], float64(opt["theta10"])/10, uint64(opt["seed"]))
		},
	})
}

const (
	gravEps = 0.05 // Plummer softening
	dtStep  = 0.01
)

// Barnes is one configured simulation instance.
type Barnes struct {
	mch   *mach.Machine
	n     int
	steps int
	theta float64

	pos  *mach.F64Array // 3n
	vel  *mach.F64Array // 3n
	acc  *mach.F64Array // 3n
	mass *mach.F64Array // n

	tr      *tree
	root    int
	minmax  *mach.F64Array // per-proc bounding-box slots (6 values, padded)
	barrier *mach.Barrier

	// posAtForce snapshots positions at the last force evaluation so
	// Verify can compare tree forces against direct summation.
	posAtForce []float64
}

// New builds the simulation over a Plummer-model particle distribution.
func New(m *mach.Machine, n, steps, leafCap int, theta float64, seed uint64) (*Barnes, error) {
	if n < 2 || leafCap < 1 {
		return nil, fmt.Errorf("barnes: bad parameters n=%d leafcap=%d", n, leafCap)
	}
	if theta <= 0 {
		return nil, fmt.Errorf("barnes: non-positive opening criterion %g", theta)
	}
	b := &Barnes{mch: m, n: n, steps: steps, theta: theta, barrier: m.NewBarrier()}
	b.pos = m.NewF64(3*n, true, mach.Interleaved())
	b.vel = m.NewF64(3*n, true, mach.Interleaved())
	b.acc = m.NewF64(3*n, true, mach.Interleaved())
	b.mass = m.NewF64(n, true, mach.Interleaved())
	b.tr = newTree(m, n, leafCap)
	pad := m.LineSize() / mach.WordBytes
	b.minmax = m.NewF64(m.Procs()*6*pad, true, mach.Interleaved())

	for i, body := range workload.Plummer3D(n, seed) {
		b.pos.Init(3*i, body.X)
		b.pos.Init(3*i+1, body.Y)
		b.pos.Init(3*i+2, body.Z)
		b.vel.Init(3*i, body.VX)
		b.vel.Init(3*i+1, body.VY)
		b.vel.Init(3*i+2, body.VZ)
		b.mass.Init(i, body.Mass)
	}
	return b, nil
}

// Run executes the time-steps; measurement restarts after the first.
func (b *Barnes) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		b.timestep(p, 0)
		if b.steps > 1 {
			m.Epoch(p, b.barrier)
			for s := 1; s < b.steps; s++ {
				b.timestep(p, s)
			}
		}
	})
}

func (b *Barnes) timestep(p *mach.Proc, step int) {
	lo, hi := partition.Range(p.ID, b.mch.Procs(), b.n)
	pad := b.mch.LineSize() / mach.WordBytes

	// Phase 1: bounding box by per-processor reduction.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			v := b.pos.Get(p, 3*i+d)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			p.Instr(2)
		}
	}
	slot := p.ID * 6 * pad
	b.minmax.Set(p, slot, minV)
	b.minmax.Set(p, slot+1, maxV)
	b.barrier.Wait(p)

	gmin, gmax := math.Inf(1), math.Inf(-1)
	for q := 0; q < b.mch.Procs(); q++ {
		if v := b.minmax.Get(p, q*6*pad); v < gmin {
			gmin = v
		}
		if v := b.minmax.Get(p, q*6*pad+1); v > gmax {
			gmax = v
		}
		p.Instr(2)
	}
	center := (gmin + gmax) / 2
	half := (gmax-gmin)/2*1.001 + 1e-9

	// Phase 2: tree build — one processor resets the pool, then all
	// processors insert their bodies concurrently with per-node locks.
	if p.ID == 0 {
		b.root = b.tr.reset(p, center, center, center, half)
	}
	b.barrier.Wait(p)
	for i := lo; i < hi; i++ {
		x := b.pos.Get(p, 3*i)
		y := b.pos.Get(p, 3*i+1)
		z := b.pos.Get(p, 3*i+2)
		b.tr.insert(p, b.root, i, x, y, z, b.pos)
	}
	b.barrier.Wait(p)

	// Phase 3: centers of mass — the depth-2 subtrees are divided among
	// processors; the shallow top is combined afterwards.
	deep, shallow := b.tr.depth2Nodes(p, b.root)
	for k := p.ID; k < len(deep); k += b.mch.Procs() {
		b.tr.computeCOM(p, deep[k], b.pos, b.mass)
	}
	b.barrier.Wait(p)
	if p.ID == 0 {
		for k := len(shallow) - 1; k >= 0; k-- {
			b.tr.combineCOM(p, shallow[k])
		}
	}
	b.barrier.Wait(p)

	// Phase 4: force computation — one partial tree traversal per body.
	for i := lo; i < hi; i++ {
		ax, ay, az := b.force(p, i)
		b.acc.Set(p, 3*i, ax)
		b.acc.Set(p, 3*i+1, ay)
		b.acc.Set(p, 3*i+2, az)
	}
	b.barrier.Wait(p)

	if step == b.steps-1 && p.ID == 0 {
		//splash:allow accounting verification snapshot of force-time positions; simulated references here would pollute the measured stream
		b.posAtForce = append([]float64(nil), b.pos.Raw()...)
	}
	b.barrier.Wait(p)

	// Phase 5: leapfrog integration of owned bodies.
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			v := b.vel.Get(p, 3*i+d) + dtStep*b.acc.Get(p, 3*i+d)
			b.vel.Set(p, 3*i+d, v)
			b.pos.Set(p, 3*i+d, b.pos.Get(p, 3*i+d)+dtStep*v)
			p.Flop(4)
		}
	}
	b.barrier.Wait(p)
}

// force traverses the octree for body i, applying the opening criterion
// s/d < θ to internal cells and direct interaction within leaves.
func (b *Barnes) force(p *mach.Proc, i int) (ax, ay, az float64) {
	xi := b.pos.Get(p, 3*i)
	yi := b.pos.Get(p, 3*i+1)
	zi := b.pos.Get(p, 3*i+2)
	stack := make([]int, 0, 64)
	stack = append(stack, b.root)
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.tr.kind.Get(p, node) == kindLeaf {
			n := b.tr.lcount.Get(p, node)
			for k := 0; k < n; k++ {
				j := b.tr.lbodies.Get(p, node*b.tr.leafCap+k)
				if j == i {
					continue
				}
				gx, gy, gz := b.accel(p, xi, yi, zi,
					b.pos.Get(p, 3*j), b.pos.Get(p, 3*j+1), b.pos.Get(p, 3*j+2),
					b.mass.Get(p, j))
				ax += gx
				ay += gy
				az += gz
			}
			continue
		}
		// Internal cell: opening criterion against its center of mass.
		cx := b.tr.comX.Get(p, node)
		cy := b.tr.comY.Get(p, node)
		cz := b.tr.comZ.Get(p, node)
		cm := b.tr.comM.Get(p, node)
		if cm == 0 {
			continue
		}
		dx, dy, dz := cx-xi, cy-yi, cz-zi
		dist2 := dx*dx + dy*dy + dz*dz
		size := 2 * b.tr.half.Get(p, node)
		p.Flop(9)
		if size*size < b.theta*b.theta*dist2 {
			gx, gy, gz := b.accel(p, xi, yi, zi, cx, cy, cz, cm)
			ax += gx
			ay += gy
			az += gz
			continue
		}
		for o := 0; o < 8; o++ {
			if c := b.tr.children.Get(p, 8*node+o); c != -1 {
				stack = append(stack, c)
			}
		}
	}
	return ax, ay, az
}

// accel returns the softened gravitational acceleration on (xi,yi,zi) from
// mass m at (xj,yj,zj).
func (b *Barnes) accel(p *mach.Proc, xi, yi, zi, xj, yj, zj, m float64) (ax, ay, az float64) {
	dx, dy, dz := xj-xi, yj-yi, zj-zi
	r2 := dx*dx + dy*dy + dz*dz + gravEps*gravEps
	inv := m / (r2 * math.Sqrt(r2))
	p.Flop(14)
	return dx * inv, dy * inv, dz * inv
}

// directAccel computes the exact O(n) acceleration on body i at the
// snapshot positions (verification only, unsimulated).
func (b *Barnes) directAccel(i int) (ax, ay, az float64) {
	xi, yi, zi := b.posAtForce[3*i], b.posAtForce[3*i+1], b.posAtForce[3*i+2]
	for j := 0; j < b.n; j++ {
		if j == i {
			continue
		}
		dx := b.posAtForce[3*j] - xi
		dy := b.posAtForce[3*j+1] - yi
		dz := b.posAtForce[3*j+2] - zi
		r2 := dx*dx + dy*dy + dz*dz + gravEps*gravEps
		//splash:allow accounting directAccel is the unsimulated direct-summation reference used only by Verify
		inv := b.mass.Peek(j) / (r2 * math.Sqrt(r2))
		ax += dx * inv
		ay += dy * inv
		az += dz * inv
	}
	return
}

// Verify compares the tree-computed accelerations of sampled bodies
// against direct summation at the same positions, and checks finiteness.
func (b *Barnes) Verify() error {
	if b.posAtForce == nil {
		return fmt.Errorf("barnes: no force snapshot recorded")
	}
	for i := 0; i < 3*b.n; i++ {
		if v := b.pos.Peek(i); math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("barnes: position diverged at %d", i/3)
		}
	}
	rng := workload.NewRNG(123)
	var worst float64
	for s := 0; s < 24; s++ {
		i := rng.Intn(b.n)
		dx, dy, dz := b.directAccel(i)
		tx := b.acc.Peek(3 * i)
		ty := b.acc.Peek(3*i + 1)
		tz := b.acc.Peek(3*i + 2)
		mag := math.Sqrt(dx*dx + dy*dy + dz*dz)
		diff := math.Sqrt((tx-dx)*(tx-dx) + (ty-dy)*(ty-dy) + (tz-dz)*(tz-dz))
		if mag == 0 {
			continue
		}
		if rel := diff / mag; rel > worst {
			worst = rel
		}
	}
	// Monopole-only Barnes-Hut at θ≈0.8 is accurate to a few percent.
	if worst > 0.15 {
		return fmt.Errorf("barnes: tree force error %.1f%% vs direct summation", worst*100)
	}
	return nil
}
