package barnes

import (
	"fmt"

	"splash2/internal/mach"
)

// Node kinds in the shared octree pool.
const (
	kindInternal = 0
	kindLeaf     = 1
)

// tree is the shared Barnes-Hut octree: a pool of nodes in simulated
// shared memory, rebuilt every time-step by parallel insertion with
// per-node locks. Leaves hold multiple bodies (leafCap), the improvement
// over SPLASH noted in §3 [HoS95]. No attempt is made at intelligent
// distribution of tree data (§3): the pool is allocated interleaved.
type tree struct {
	mch     *mach.Machine
	cap     int // node pool capacity
	leafCap int

	kind     *mach.IntArray // node kind
	children *mach.IntArray // 8 per node, -1 empty, else node id
	lbodies  *mach.IntArray // leafCap body ids per node
	lcount   *mach.IntArray // bodies per leaf
	cx, cy   *mach.F64Array // geometric center
	cz       *mach.F64Array
	half     *mach.F64Array // half side length
	comX     *mach.F64Array // center of mass + total mass
	comY     *mach.F64Array
	comZ     *mach.F64Array
	comM     *mach.F64Array

	locks []mach.Lock

	allocLock mach.Lock
	allocN    *mach.IntArray // pool bump pointer (slot 0)
}

func newTree(m *mach.Machine, nbodies, leafCap int) *tree {
	t := &tree{mch: m, cap: 4*nbodies + 64, leafCap: leafCap}
	t.kind = m.NewInt(t.cap, true, mach.Interleaved())
	t.children = m.NewInt(8*t.cap, true, mach.Interleaved())
	t.lbodies = m.NewInt(leafCap*t.cap, true, mach.Interleaved())
	t.lcount = m.NewInt(t.cap, true, mach.Interleaved())
	t.cx = m.NewF64(t.cap, true, mach.Interleaved())
	t.cy = m.NewF64(t.cap, true, mach.Interleaved())
	t.cz = m.NewF64(t.cap, true, mach.Interleaved())
	t.half = m.NewF64(t.cap, true, mach.Interleaved())
	t.comX = m.NewF64(t.cap, true, mach.Interleaved())
	t.comY = m.NewF64(t.cap, true, mach.Interleaved())
	t.comZ = m.NewF64(t.cap, true, mach.Interleaved())
	t.comM = m.NewF64(t.cap, true, mach.Interleaved())
	t.locks = make([]mach.Lock, t.cap)
	t.allocN = m.NewInt(8, true, mach.Owner(0))
	return t
}

// reset empties the pool and creates a fresh internal root covering the
// cube [center±half]. Called by one processor between barriers.
func (t *tree) reset(p *mach.Proc, cx, cy, cz, half float64) int {
	t.allocN.Set(p, 0, 0)
	root := t.alloc(p, kindInternal, cx, cy, cz, half)
	return root
}

// alloc grabs a node from the pool and initializes its geometry.
func (t *tree) alloc(p *mach.Proc, kind int, cx, cy, cz, half float64) int {
	t.allocLock.Acquire(p)
	id := t.allocN.Get(p, 0)
	t.allocN.Set(p, 0, id+1)
	t.allocLock.Release(p)
	if id >= t.cap {
		panic(fmt.Sprintf("barnes: node pool exhausted (%d)", t.cap))
	}
	t.kind.Set(p, id, kind)
	t.lcount.Set(p, id, 0)
	t.cx.Set(p, id, cx)
	t.cy.Set(p, id, cy)
	t.cz.Set(p, id, cz)
	t.half.Set(p, id, half)
	for o := 0; o < 8; o++ {
		t.children.Set(p, 8*id+o, -1)
	}
	return id
}

// octant returns the child octant of (x,y,z) within node id, along with
// the child cube geometry. Issues the geometry reads.
func (t *tree) octant(p *mach.Proc, id int, x, y, z float64) (oct int, ccx, ccy, ccz, chalf float64) {
	cx := t.cx.Get(p, id)
	cy := t.cy.Get(p, id)
	cz := t.cz.Get(p, id)
	h := t.half.Get(p, id) / 2
	ccx, ccy, ccz = cx-h, cy-h, cz-h
	if x >= cx {
		oct |= 1
		ccx = cx + h
	}
	if y >= cy {
		oct |= 2
		ccy = cy + h
	}
	if z >= cz {
		oct |= 4
		ccz = cz + h
	}
	p.Instr(6)
	return oct, ccx, ccy, ccz, h
}

// insert adds body b (position x,y,z) to the tree rooted at root, using
// hand-over-hand per-node locking: a child slot and any leaf behind it are
// only mutated while holding the parent's lock.
func (t *tree) insert(p *mach.Proc, root, b int, x, y, z float64, pos *mach.F64Array) {
	node := root
	for {
		oct, ccx, ccy, ccz, chalf := t.octant(p, node, x, y, z)
		t.locks[node].Acquire(p)
		child := t.children.Get(p, 8*node+oct)
		switch {
		case child == -1:
			leaf := t.alloc(p, kindLeaf, ccx, ccy, ccz, chalf)
			t.lbodies.Set(p, leaf*t.leafCap, b)
			t.lcount.Set(p, leaf, 1)
			t.children.Set(p, 8*node+oct, leaf)
			t.locks[node].Release(p)
			return
		case t.kind.Get(p, child) == kindLeaf:
			n := t.lcount.Get(p, child)
			if n < t.leafCap {
				t.lbodies.Set(p, child*t.leafCap+n, b)
				t.lcount.Set(p, child, n+1)
				t.locks[node].Release(p)
				return
			}
			// Split: build a replacement internal subtree privately (it is
			// unreachable until linked), then swap it into the slot.
			repl := t.splitLeaf(p, child, ccx, ccy, ccz, chalf, pos)
			t.children.Set(p, 8*node+oct, repl)
			t.locks[node].Release(p)
			node = repl
		default:
			t.locks[node].Release(p)
			node = child
		}
	}
}

// splitLeaf converts a full leaf into an internal node, reinserting its
// bodies. The new subtree is private to the caller until linked, so no
// locks are needed inside.
func (t *tree) splitLeaf(p *mach.Proc, leaf int, cx, cy, cz, half float64, pos *mach.F64Array) int {
	internal := t.alloc(p, kindInternal, cx, cy, cz, half)
	n := t.lcount.Get(p, leaf)
	for k := 0; k < n; k++ {
		b := t.lbodies.Get(p, leaf*t.leafCap+k)
		bx := pos.Get(p, 3*b)
		by := pos.Get(p, 3*b+1)
		bz := pos.Get(p, 3*b+2)
		t.insertPrivate(p, internal, b, bx, by, bz, pos)
	}
	return internal
}

// insertPrivate inserts into an unlinked subtree without locking.
func (t *tree) insertPrivate(p *mach.Proc, root, b int, x, y, z float64, pos *mach.F64Array) {
	node := root
	for {
		oct, ccx, ccy, ccz, chalf := t.octant(p, node, x, y, z)
		child := t.children.Get(p, 8*node+oct)
		switch {
		case child == -1:
			leaf := t.alloc(p, kindLeaf, ccx, ccy, ccz, chalf)
			t.lbodies.Set(p, leaf*t.leafCap, b)
			t.lcount.Set(p, leaf, 1)
			t.children.Set(p, 8*node+oct, leaf)
			return
		case t.kind.Get(p, child) == kindLeaf:
			n := t.lcount.Get(p, child)
			if n < t.leafCap {
				t.lbodies.Set(p, child*t.leafCap+n, b)
				t.lcount.Set(p, child, n+1)
				return
			}
			repl := t.splitLeaf(p, child, ccx, ccy, ccz, chalf, pos)
			t.children.Set(p, 8*node+oct, repl)
			node = repl
		default:
			node = child
		}
	}
}

// computeCOM runs a post-order pass computing center of mass and total
// mass for the subtree at node; leaves aggregate their bodies.
func (t *tree) computeCOM(p *mach.Proc, node int, pos, mass *mach.F64Array) {
	if t.kind.Get(p, node) == kindLeaf {
		var mx, my, mz, mm float64
		n := t.lcount.Get(p, node)
		for k := 0; k < n; k++ {
			b := t.lbodies.Get(p, node*t.leafCap+k)
			m := mass.Get(p, b)
			mx += m * pos.Get(p, 3*b)
			my += m * pos.Get(p, 3*b+1)
			mz += m * pos.Get(p, 3*b+2)
			mm += m
			p.Flop(7)
		}
		t.storeCOM(p, node, mx, my, mz, mm)
		return
	}
	var mx, my, mz, mm float64
	for o := 0; o < 8; o++ {
		c := t.children.Get(p, 8*node+o)
		if c == -1 {
			continue
		}
		t.computeCOM(p, c, pos, mass)
		m := t.comM.Get(p, c)
		mx += m * t.comX.Get(p, c)
		my += m * t.comY.Get(p, c)
		mz += m * t.comZ.Get(p, c)
		mm += m
		p.Flop(7)
	}
	t.storeCOM(p, node, mx, my, mz, mm)
}

// combineCOM recomputes COM for an internal node from its children's
// already-computed COM values (used for the shallow top of the tree).
func (t *tree) combineCOM(p *mach.Proc, node int) {
	var mx, my, mz, mm float64
	for o := 0; o < 8; o++ {
		c := t.children.Get(p, 8*node+o)
		if c == -1 {
			continue
		}
		m := t.comM.Get(p, c)
		mx += m * t.comX.Get(p, c)
		my += m * t.comY.Get(p, c)
		mz += m * t.comZ.Get(p, c)
		mm += m
		p.Flop(7)
	}
	t.storeCOM(p, node, mx, my, mz, mm)
}

func (t *tree) storeCOM(p *mach.Proc, node int, mx, my, mz, mm float64) {
	if mm > 0 {
		mx /= mm
		my /= mm
		mz /= mm
		p.Flop(3)
	}
	t.comX.Set(p, node, mx)
	t.comY.Set(p, node, my)
	t.comZ.Set(p, node, mz)
	t.comM.Set(p, node, mm)
}

// depth2Nodes lists the nodes exactly two levels below root (plus leaves
// at depth ≤ 2 are excluded — they are handled by the shallow combine).
// Every processor computes the same list deterministically.
func (t *tree) depth2Nodes(p *mach.Proc, root int) (deep []int, shallowInternal []int) {
	shallowInternal = append(shallowInternal, root)
	for o := 0; o < 8; o++ {
		c := t.children.Get(p, 8*root+o)
		if c == -1 {
			continue
		}
		if t.kind.Get(p, c) == kindLeaf {
			deep = append(deep, c) // leaf at depth 1: compute directly
			continue
		}
		shallowInternal = append(shallowInternal, c)
		for o2 := 0; o2 < 8; o2++ {
			g := t.children.Get(p, 8*c+o2)
			if g != -1 {
				deep = append(deep, g)
			}
		}
	}
	return deep, shallowInternal
}
