package barnes

import (
	"math"
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 128 << 10, Assoc: 4, LineSize: 64})
}

func TestForcesMatchDirectSummation(t *testing.T) {
	m := machine(4)
	b, err := New(m, 256, 2, 8, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(m)
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(1)
	b, err := New(m, 128, 1, 4, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(m)
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallThetaIsExact(t *testing.T) {
	// θ→0 forces full traversal to the leaves: tree result must equal
	// direct summation almost exactly.
	m := machine(2)
	b, err := New(m, 64, 1, 2, 0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(m)
	for i := 0; i < b.n; i++ {
		dx, dy, dz := b.directAccel(i)
		if math.Abs(b.acc.Peek(3*i)-dx)+math.Abs(b.acc.Peek(3*i+1)-dy)+math.Abs(b.acc.Peek(3*i+2)-dz) > 1e-9 {
			t.Fatalf("body %d: tree force differs from direct at θ≈0", i)
		}
	}
}

func TestTreeContainsAllBodies(t *testing.T) {
	m := machine(4)
	b, err := New(m, 200, 1, 8, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(m)
	// Walk the final tree (unsimulated) and count bodies in leaves.
	seen := map[int]int{}
	var walk func(node int)
	walk = func(node int) {
		if b.tr.kind.Peek(node) == kindLeaf {
			n := b.tr.lcount.Peek(node)
			for k := 0; k < n; k++ {
				seen[b.tr.lbodies.Peek(node*b.tr.leafCap+k)]++
			}
			return
		}
		for o := 0; o < 8; o++ {
			if c := b.tr.children.Peek(8*node + o); c != -1 {
				walk(c)
			}
		}
	}
	walk(b.root)
	if len(seen) != 200 {
		t.Fatalf("tree holds %d distinct bodies, want 200", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("body %d appears %d times", i, c)
		}
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	m := machine(2)
	b, err := New(m, 128, 1, 4, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(m)
	var walk func(node int)
	var bad bool
	walk = func(node int) {
		if b.tr.kind.Peek(node) == kindLeaf {
			if b.tr.lcount.Peek(node) > 4 {
				bad = true
			}
			return
		}
		for o := 0; o < 8; o++ {
			if c := b.tr.children.Peek(8*node + o); c != -1 {
				walk(c)
			}
		}
	}
	walk(b.root)
	if bad {
		t.Fatal("leaf exceeds capacity")
	}
}

func TestTotalMassConservedInCOM(t *testing.T) {
	m := machine(2)
	b, err := New(m, 100, 1, 8, 0.8, 6)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(m)
	var total float64
	for i := 0; i < 100; i++ {
		total += b.mass.Peek(i)
	}
	if root := b.tr.comM.Peek(b.root); math.Abs(root-total) > 1e-9 {
		t.Fatalf("root COM mass %g, bodies total %g", root, total)
	}
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("barnes")
	if err != nil {
		t.Fatal(err)
	}
	if a.Kernel {
		t.Fatal("barnes is an application, not a kernel")
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"n": 64, "steps": 1}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadParams(t *testing.T) {
	m := machine(1)
	if _, err := New(m, 1, 1, 8, 0.8, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(m, 64, 1, 0, 0.8, 1); err == nil {
		t.Error("leafcap=0 accepted")
	}
	if _, err := New(m, 64, 1, 8, 0, 1); err == nil {
		t.Error("theta=0 accepted")
	}
}
