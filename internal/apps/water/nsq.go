package water

import (
	"fmt"

	"splash2/internal/mach"
)

// Nsq is the O(n²) Water application instance.
type Nsq struct {
	*state
	steps   int
	oldLock bool             // SPLASH-1-style per-pair locking (ablation)
	local   []*mach.F64Array // per-processor private force copies (3n each)
}

// NewNsq builds the O(n²) version: molecules are statically partitioned in
// contiguous blocks, and each processor keeps a private copy of all
// accelerations that it folds into the shared copy under per-molecule
// locks at the end of the force phase — the improved locking strategy of
// §3. With oldLock, every pair interaction instead updates the shared
// accelerations directly under per-molecule locks, the SPLASH-1 strategy
// the paper improved on (ablation).
func NewNsq(m *mach.Machine, n, steps int, oldLock bool, seed uint64) (*Nsq, error) {
	if n < 8 {
		return nil, fmt.Errorf("water-nsq: need ≥ 8 molecules, got %d", n)
	}
	w := &Nsq{state: newState(m, n, seed), steps: steps, oldLock: oldLock}
	w.local = make([]*mach.F64Array, m.Procs())
	for pid := range w.local {
		w.local[pid] = m.NewF64(3*n, false, mach.Owner(pid))
	}
	return w, nil
}

// Run executes the time-steps; measurement restarts after the first step.
func (w *Nsq) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		w.step(p)
		if w.steps > 1 {
			m.Epoch(p, w.barrier)
			for s := 1; s < w.steps; s++ {
				w.step(p)
			}
		}
	})
}

func (w *Nsq) step(p *mach.Proc) {
	lo, hi := w.partitionRange(p.ID)

	// Predict: half-kick and drift for owned molecules, then clear the
	// shared accelerations for the new force evaluation.
	for i := lo; i < hi; i++ {
		w.kickDrift(p, i)
		for d := 0; d < 3; d++ {
			w.acc.Set(p, 3*i+d, 0)
		}
	}
	w.barrier.Wait(p)

	// Inter-molecular forces: half-shell O(n²) pass; pairs (i, i+n/2) are
	// processed only from the lower half to avoid double counting. The
	// default strategy accumulates into a processor-private copy and folds
	// it into the shared accelerations once at the end; the old strategy
	// locks and updates the shared copy on every pair.
	loc := w.local[p.ID]
	if !w.oldLock {
		for k := 0; k < 3*w.n; k++ {
			loc.Set(p, k, 0)
		}
	}
	half := w.n / 2
	var pot float64
	for i := lo; i < hi; i++ {
		xi := w.pos.Get(p, 3*i+0)
		yi := w.pos.Get(p, 3*i+1)
		zi := w.pos.Get(p, 3*i+2)
		for d := 1; d <= half; d++ {
			if d == half && w.n%2 == 0 && i >= half {
				continue
			}
			j := (i + d) % w.n
			fx, fy, fz, u := w.pairInteraction(p, xi, yi, zi, j)
			if u != 0 {
				pot += u
			}
			if fx == 0 && fy == 0 && fz == 0 {
				continue
			}
			if w.oldLock {
				w.addShared(p, i, fx, fy, fz)
				w.addShared(p, j, -fx, -fy, -fz)
			} else {
				loc.Set(p, 3*i+0, loc.Get(p, 3*i+0)+fx)
				loc.Set(p, 3*i+1, loc.Get(p, 3*i+1)+fy)
				loc.Set(p, 3*i+2, loc.Get(p, 3*i+2)+fz)
				loc.Set(p, 3*j+0, loc.Get(p, 3*j+0)-fx)
				loc.Set(p, 3*j+1, loc.Get(p, 3*j+1)-fy)
				loc.Set(p, 3*j+2, loc.Get(p, 3*j+2)-fz)
			}
			p.Flop(6)
		}
	}
	pad := w.mch.LineSize() / mach.WordBytes
	w.epot.Set(p, p.ID*pad, pot)
	w.barrier.Wait(p)

	// Accumulate the private copies into the shared accelerations under
	// per-molecule locks, once per processor at the end of the phase.
	if !w.oldLock {
		for i := 0; i < w.n; i++ {
			fx := loc.Get(p, 3*i+0)
			fy := loc.Get(p, 3*i+1)
			fz := loc.Get(p, 3*i+2)
			if fx == 0 && fy == 0 && fz == 0 {
				continue
			}
			w.addShared(p, i, fx, fy, fz)
			p.Flop(3)
		}
	}
	w.barrier.Wait(p)

	// Correct: second half-kick with the new accelerations.
	for i := lo; i < hi; i++ {
		w.secondKick(p, i)
	}
	w.barrier.Wait(p)
}

// addShared folds one force contribution into the shared accelerations
// under the molecule's lock.
func (w *Nsq) addShared(p *mach.Proc, i int, fx, fy, fz float64) {
	w.molLock[i].Acquire(p)
	w.acc.Set(p, 3*i+0, w.acc.Get(p, 3*i+0)+fx)
	w.acc.Set(p, 3*i+1, w.acc.Get(p, 3*i+1)+fy)
	w.acc.Set(p, 3*i+2, w.acc.Get(p, 3*i+2)+fz)
	w.molLock[i].Release(p)
}

// Verify checks the shared physical invariants and that forces were
// actually computed (non-zero kinetic energy after the first step).
func (w *Nsq) Verify() error {
	if err := w.verifyCommon(); err != nil {
		return err
	}
	var ke float64
	for i := 0; i < 3*w.n; i++ {
		v := w.vel.Peek(i)
		ke += v * v
	}
	if ke == 0 {
		return fmt.Errorf("water-nsq: no molecule ever moved")
	}
	return nil
}
