package water

import (
	"math"
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 64 << 10, Assoc: 4, LineSize: 64})
}

func TestNsqRunsAndVerifies(t *testing.T) {
	m := machine(4)
	w, err := NewNsq(m, 64, 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(m)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpatialRunsAndVerifies(t *testing.T) {
	m := machine(4)
	w, err := NewSpatial(m, 216, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(m)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessorBoth(t *testing.T) {
	for _, name := range []string{"water-nsq", "water-sp"} {
		a, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.FlopBased {
			t.Errorf("%s should be flop-based", name)
		}
		m := machine(1)
		opts := map[string]int{"n": 64, "steps": 2}
		if name == "water-sp" {
			opts["n"] = 125 // box 5 ⇒ 3 cells per side
		}
		r, err := a.Build(m, a.Options(opts))
		if err != nil {
			t.Fatal(err)
		}
		r.Run(m)
		if err := r.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// The two algorithms compute the same physics: after one step from the
// same lattice, per-molecule accelerations must agree (up to accumulation
// rounding).
func TestNsqAndSpatialAgree(t *testing.T) {
	const n = 125
	mn := machine(2)
	wn, err := NewNsq(mn, n, 1, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	wn.Run(mn)

	ms := machine(2)
	ws, err := NewSpatial(ms, n, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ws.Run(ms)

	an := wn.Accelerations()
	as := ws.Accelerations()
	var scale float64
	for _, v := range an {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		t.Fatal("nsq computed zero forces everywhere")
	}
	for i := range an {
		if d := math.Abs(an[i] - as[i]); d > 1e-9*scale {
			t.Fatalf("acc[%d]: nsq %g vs spatial %g", i, an[i], as[i])
		}
	}
}

func TestNsqPairCoverage(t *testing.T) {
	// The half-shell enumeration must cover each unordered pair exactly
	// once for even and odd n.
	for _, n := range []int{8, 9} {
		count := map[[2]int]int{}
		half := n / 2
		for i := 0; i < n; i++ {
			for d := 1; d <= half; d++ {
				if d == half && n%2 == 0 && i >= half {
					continue
				}
				j := (i + d) % n
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				count[[2]int{a, b}]++
			}
		}
		want := n * (n - 1) / 2
		if len(count) != want {
			t.Fatalf("n=%d: covered %d pairs, want %d", n, len(count), want)
		}
		for pr, c := range count {
			if c != 1 {
				t.Fatalf("n=%d: pair %v counted %d times", n, pr, c)
			}
		}
	}
}

func TestSpatialRejectsTinyBox(t *testing.T) {
	m := machine(1)
	if _, err := NewSpatial(m, 27, 1, 1); err == nil {
		t.Fatal("box of 3 units (2 cells) accepted") // cbrt(27)=3 → 2 cells
	}
}

func TestLJPairProperties(t *testing.T) {
	// Beyond the cutoff: exactly zero.
	if f, u := ljPair(cutoff * cutoff * 1.01); f != 0 || u != 0 {
		t.Fatal("interaction beyond cutoff")
	}
	// At very short range the force is repulsive (positive fscale pushes
	// molecules apart along d⃗ = xi − xj).
	if f, _ := ljPair(0.25 * ljSigma * ljSigma); f <= 0 {
		t.Fatalf("short-range force not repulsive: %g", f)
	}
	// Near 1.5σ the force is attractive.
	if f, _ := ljPair(2.25 * ljSigma * ljSigma); f >= 0 {
		t.Fatalf("mid-range force not attractive: %g", f)
	}
}

func TestMinImageAndWrap(t *testing.T) {
	s := &state{box: 10}
	if d := s.minImage(7); d != -3 {
		t.Fatalf("minImage(7) = %v", d)
	}
	if d := s.minImage(-7); d != 3 {
		t.Fatalf("minImage(-7) = %v", d)
	}
	if x := s.wrap(12); x != 2 {
		t.Fatalf("wrap(12) = %v", x)
	}
	if x := s.wrap(-1); x != 9 {
		t.Fatalf("wrap(-1) = %v", x)
	}
}

func TestSpatialCellLocksGenerateCommunication(t *testing.T) {
	m := machine(4)
	w, err := NewSpatial(m, 216, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(m)
	st := m.Snapshot()
	if mach.Aggregate(st.Procs).Locks == 0 {
		t.Fatal("no lock operations recorded")
	}
	if st.Mem.Traffic.TrueSharingData == 0 {
		t.Fatal("no communication detected")
	}
}

// §3: the improved locking strategy (private accumulation, one fold at
// the end) acquires far fewer locks and generates less sharing traffic
// than SPLASH-1-style per-pair locking.
func TestLockingStrategyAblation(t *testing.T) {
	run := func(oldLock bool) (locks uint64, sharing uint64) {
		m := mach.MustNew(mach.Config{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64})
		w, err := NewNsq(m, 125, 1, oldLock, 9)
		if err != nil {
			t.Fatal(err)
		}
		w.Run(m)
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		st := m.Snapshot()
		return mach.Aggregate(st.Procs).Locks, st.Mem.Traffic.TrueSharingData
	}
	newLocks, newSharing := run(false)
	oldLocks, oldSharing := run(true)
	if oldLocks <= newLocks {
		t.Fatalf("old strategy acquired fewer locks: %d <= %d", oldLocks, newLocks)
	}
	if oldSharing <= newSharing {
		t.Fatalf("old strategy shared less data: %d <= %d", oldSharing, newSharing)
	}
}
