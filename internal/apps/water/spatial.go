package water

import (
	"fmt"
	"math"

	"splash2/internal/apps/partition"
	"splash2/internal/mach"
)

// Spatial is the O(n) cell-grid Water application instance.
type Spatial struct {
	*state
	steps    int
	ncell    int            // cells per dimension (≥ 3, cell side ≥ cutoff)
	heads    *mach.IntArray // per-cell list head (molecule index or -1)
	next     *mach.IntArray // per-molecule list link
	cellLock []mach.Lock
}

// NewSpatial builds the O(n) version: a uniform 3-D grid of cells with
// side ≥ the cutoff radius; processors own contiguous ranges of cells.
func NewSpatial(m *mach.Machine, n, steps int, seed uint64) (*Spatial, error) {
	if n < 27 {
		return nil, fmt.Errorf("water-sp: need ≥ 27 molecules, got %d", n)
	}
	w := &Spatial{state: newState(m, n, seed), steps: steps}
	w.ncell = int(w.box / cutoff)
	if w.ncell < 3 {
		return nil, fmt.Errorf("water-sp: box %.2f too small for cutoff %.2f (need ≥ 3 cells)", w.box, cutoff)
	}
	nc3 := w.ncell * w.ncell * w.ncell
	w.heads = m.NewInt(nc3, true, mach.Blocked())
	w.next = m.NewInt(n, true, mach.Blocked())
	w.cellLock = make([]mach.Lock, nc3)

	// Initial binning (input construction, not simulated).
	for c := 0; c < nc3; c++ {
		w.heads.Init(c, -1)
	}
	for i := 0; i < n; i++ {
		c := w.cellOf(w.pos.Peek(3*i), w.pos.Peek(3*i+1), w.pos.Peek(3*i+2))
		w.next.Init(i, w.heads.Peek(c))
		w.heads.Init(c, i)
	}
	return w, nil
}

// cellOf maps a position to its cell index.
func (w *Spatial) cellOf(x, y, z float64) int {
	side := w.box / float64(w.ncell)
	cx := int(x / side)
	cy := int(y / side)
	cz := int(z / side)
	clampc := func(c int) int {
		if c < 0 {
			return 0
		}
		if c >= w.ncell {
			return w.ncell - 1
		}
		return c
	}
	return (clampc(cz)*w.ncell+clampc(cy))*w.ncell + clampc(cx)
}

// cellRange returns this processor's contiguous cell range.
func (w *Spatial) cellRange(pid int) (lo, hi int) {
	return partition.Range(pid, w.mch.Procs(), w.ncell*w.ncell*w.ncell)
}

// Run executes the time-steps; measurement restarts after the first step.
func (w *Spatial) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		w.step(p)
		if w.steps > 1 {
			m.Epoch(p, w.barrier)
			for s := 1; s < w.steps; s++ {
				w.step(p)
			}
		}
	})
}

func (w *Spatial) step(p *mach.Proc) {
	clo, chi := w.cellRange(p.ID)

	// Phase A: kick-drift molecules in owned cells; remember their new
	// cells privately and clear their accelerations.
	type moved struct{ mol, cell int }
	var mine []moved
	for c := clo; c < chi; c++ {
		for i := w.heads.Get(p, c); i != -1; i = w.next.Get(p, i) {
			w.kickDrift(p, i)
			for d := 0; d < 3; d++ {
				w.acc.Set(p, 3*i+d, 0)
			}
			nc := w.cellOf(w.pos.Get(p, 3*i), w.pos.Get(p, 3*i+1), w.pos.Get(p, 3*i+2))
			mine = append(mine, moved{i, nc})
			p.Instr(4) // cell computation
		}
	}
	w.barrier.Wait(p)

	// Phase B: clear owned cell heads.
	for c := clo; c < chi; c++ {
		w.heads.Set(p, c, -1)
	}
	w.barrier.Wait(p)

	// Phase C: re-insert moved molecules under cell locks — molecules
	// crossing into cells owned by other processors are the communication
	// the paper attributes to this application.
	for _, mv := range mine {
		w.cellLock[mv.cell].Acquire(p)
		w.next.Set(p, mv.mol, w.heads.Get(p, mv.cell))
		w.heads.Set(p, mv.cell, mv.mol)
		w.cellLock[mv.cell].Release(p)
	}
	w.barrier.Wait(p)

	// Phase D: forces — owned cells against their 27 neighbor cells, each
	// unordered pair processed exactly once via the j > i filter.
	var pot float64
	for c := clo; c < chi; c++ {
		cx := c % w.ncell
		cy := (c / w.ncell) % w.ncell
		cz := c / (w.ncell * w.ncell)
		for i := w.heads.Get(p, c); i != -1; i = w.next.Get(p, i) {
			xi := w.pos.Get(p, 3*i+0)
			yi := w.pos.Get(p, 3*i+1)
			zi := w.pos.Get(p, 3*i+2)
			for dz := -1; dz <= 1; dz++ {
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nc := (((cz+dz+w.ncell)%w.ncell)*w.ncell+(cy+dy+w.ncell)%w.ncell)*w.ncell + (cx+dx+w.ncell)%w.ncell
						p.Instr(6)
						for j := w.heads.Get(p, nc); j != -1; j = w.next.Get(p, j) {
							if j <= i {
								continue
							}
							fx, fy, fz, u := w.pairInteraction(p, xi, yi, zi, j)
							if u != 0 {
								pot += u
							}
							if fx == 0 && fy == 0 && fz == 0 {
								continue
							}
							w.molLock[i].Acquire(p)
							w.acc.Set(p, 3*i+0, w.acc.Get(p, 3*i+0)+fx)
							w.acc.Set(p, 3*i+1, w.acc.Get(p, 3*i+1)+fy)
							w.acc.Set(p, 3*i+2, w.acc.Get(p, 3*i+2)+fz)
							w.molLock[i].Release(p)
							w.molLock[j].Acquire(p)
							w.acc.Set(p, 3*j+0, w.acc.Get(p, 3*j+0)-fx)
							w.acc.Set(p, 3*j+1, w.acc.Get(p, 3*j+1)-fy)
							w.acc.Set(p, 3*j+2, w.acc.Get(p, 3*j+2)-fz)
							w.molLock[j].Release(p)
							p.Flop(6)
						}
					}
				}
			}
		}
	}
	pad := w.mch.LineSize() / mach.WordBytes
	w.epot.Set(p, p.ID*pad, pot)
	w.barrier.Wait(p)

	// Phase E: second half-kick.
	for c := clo; c < chi; c++ {
		for i := w.heads.Get(p, c); i != -1; i = w.next.Get(p, i) {
			w.secondKick(p, i)
		}
	}
	w.barrier.Wait(p)
}

// Verify checks the shared invariants plus cell-list consistency: every
// molecule appears in exactly one list, and in the cell containing it.
func (w *Spatial) Verify() error {
	if err := w.verifyCommon(); err != nil {
		return err
	}
	seen := make([]int, w.n)
	nc3 := w.ncell * w.ncell * w.ncell
	for c := 0; c < nc3; c++ {
		count := 0
		for i := w.heads.Peek(c); i != -1; i = w.next.Peek(i) {
			seen[i]++
			// The molecule moved after binning only by integration in the
			// same step, so its recorded cell must match its position.
			got := w.cellOf(w.pos.Peek(3*i), w.pos.Peek(3*i+1), w.pos.Peek(3*i+2))
			if got != c {
				return fmt.Errorf("water-sp: molecule %d binned in cell %d but located in %d", i, c, got)
			}
			if count++; count > w.n {
				return fmt.Errorf("water-sp: cycle in cell %d list", c)
			}
		}
	}
	for i, s := range seen {
		if s != 1 {
			return fmt.Errorf("water-sp: molecule %d appears in %d cell lists", i, s)
		}
	}
	var ke float64
	for i := 0; i < 3*w.n; i++ {
		v := w.vel.Peek(i)
		ke += v * v
	}
	if ke == 0 || math.IsNaN(ke) {
		return fmt.Errorf("water-sp: kinetic energy %g", ke)
	}
	return nil
}
