// Package water implements the two SPLASH-2 molecular dynamics
// applications. Water-Nsquared evaluates intermolecular forces with an
// O(n²) half-shell pass over all pairs, updating a private copy of the
// accelerations and accumulating into the shared copy under per-molecule
// locks once at the end — the improved locking strategy that distinguishes
// it from the SPLASH original (§3). Water-Spatial solves the same problem
// with an O(n) algorithm: a uniform 3-D grid of cells is imposed on the
// domain, processors own contiguous regions of cells, and only neighboring
// cells are searched for molecules within the cutoff radius; molecules
// moving between cells cause the cell lists to be updated, which is the
// application's source of communication.
//
// The potential is a truncated Lennard-Jones interaction between point
// molecules integrated with velocity-Verlet (standing in for the original
// 3-site water potential and Gear predictor–corrector; the substitution
// keeps the reference pattern — read both positions, accumulate both
// accelerations — while dividing per-pair flops by a small constant;
// see DESIGN.md).
package water

import (
	"fmt"
	"math"

	"splash2/internal/apps"
	"splash2/internal/apps/partition"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name:      "water-nsq",
		FlopBased: true,
		Doc:       "molecular dynamics, O(n²) pairwise forces",
		Defaults: map[string]int{
			"n":       125, // paper default: 512
			"steps":   3,
			"oldlock": 0, // 1: SPLASH-1-style per-pair locking (ablation)
			"seed":    1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return NewNsq(m, opt["n"], opt["steps"], opt["oldlock"] != 0, uint64(opt["seed"]))
		},
	})
	apps.Register(&apps.App{
		Name:      "water-sp",
		FlopBased: true,
		Doc:       "molecular dynamics, O(n) spatial cell grid",
		Defaults: map[string]int{
			"n":     216, // paper default: 512
			"steps": 3,
			"seed":  1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return NewSpatial(m, opt["n"], opt["steps"], uint64(opt["seed"]))
		},
	})
}

// Physical model constants (reduced units; lattice spacing 1).
const (
	ljEps    = 1e-3
	ljSigma  = 0.8
	cutoff   = 1.5
	timestep = 0.01
)

// state holds the shared molecular arrays common to both versions.
type state struct {
	mch  *mach.Machine
	n    int
	box  float64
	pos  *mach.F64Array // 3n, shared
	vel  *mach.F64Array // 3n, shared
	acc  *mach.F64Array // 3n, shared
	epot *mach.F64Array // per-proc potential slots, line padded

	molLock []mach.Lock
	barrier *mach.Barrier
}

func newState(m *mach.Machine, n int, seed uint64) *state {
	s := &state{
		mch: m, n: n,
		box:     math.Cbrt(float64(n)),
		barrier: m.NewBarrier(),
		molLock: make([]mach.Lock, n),
	}
	s.pos = m.NewF64(3*n, true, mach.Blocked())
	s.vel = m.NewF64(3*n, true, mach.Blocked())
	s.acc = m.NewF64(3*n, true, mach.Blocked())
	pad := m.LineSize() / mach.WordBytes
	s.epot = m.NewF64(m.Procs()*pad, true, mach.Interleaved())

	mols := workload.WaterLattice(n, s.box, seed)
	for i, mol := range mols {
		s.pos.Init(3*i+0, mol.X)
		s.pos.Init(3*i+1, mol.Y)
		s.pos.Init(3*i+2, mol.Z)
	}
	return s
}

// wrap maps a coordinate into [0, box).
func (s *state) wrap(x float64) float64 {
	x = math.Mod(x, s.box)
	if x < 0 {
		x += s.box
	}
	return x
}

// minImage returns the minimum-image displacement component.
func (s *state) minImage(d float64) float64 {
	if d > s.box/2 {
		d -= s.box
	} else if d < -s.box/2 {
		d += s.box
	}
	return d
}

// ljPair evaluates the truncated Lennard-Jones force scale f (force vector
// = f·d⃗) and potential for squared distance r2; zero beyond the cutoff.
func ljPair(r2 float64) (fscale, pot float64) {
	if r2 >= cutoff*cutoff || r2 == 0 {
		return 0, 0
	}
	inv2 := ljSigma * ljSigma / r2
	inv6 := inv2 * inv2 * inv2
	pot = 4 * ljEps * (inv6*inv6 - inv6)
	fscale = 24 * ljEps * (2*inv6*inv6 - inv6) / r2
	return
}

// pairInteraction issues the reads for molecule j's position, computes the
// displacement from i (already loaded), and returns the force components
// and potential. Reference pattern: 3 reads for j, arithmetic flops.
func (s *state) pairInteraction(p *mach.Proc, xi, yi, zi float64, j int) (fx, fy, fz, pot float64) {
	xj := s.pos.Get(p, 3*j+0)
	yj := s.pos.Get(p, 3*j+1)
	zj := s.pos.Get(p, 3*j+2)
	dx := s.minImage(xi - xj)
	dy := s.minImage(yi - yj)
	dz := s.minImage(zi - zj)
	r2 := dx*dx + dy*dy + dz*dz
	p.Flop(11)
	f, u := ljPair(r2)
	if f != 0 {
		p.Flop(14)
	}
	return f * dx, f * dy, f * dz, u
}

// kickDrift advances one molecule through the first Verlet half-kick and
// position drift: v += a·dt/2, x += v·dt (wrapped into the box).
func (s *state) kickDrift(p *mach.Proc, i int) {
	for d := 0; d < 3; d++ {
		v := s.vel.Get(p, 3*i+d) + 0.5*timestep*s.acc.Get(p, 3*i+d)
		s.vel.Set(p, 3*i+d, v)
		x := s.wrap(s.pos.Get(p, 3*i+d) + timestep*v)
		s.pos.Set(p, 3*i+d, x)
		p.Flop(5)
	}
}

// secondKick applies v += a·dt/2 with the new accelerations.
func (s *state) secondKick(p *mach.Proc, i int) {
	for d := 0; d < 3; d++ {
		v := s.vel.Get(p, 3*i+d) + 0.5*timestep*s.acc.Get(p, 3*i+d)
		s.vel.Set(p, 3*i+d, v)
		p.Flop(2)
	}
}

// verifyCommon checks physical invariants shared by both versions:
// finite state, near-zero total momentum (Newton's third law held exactly
// pairwise), and molecules inside the box.
func (s *state) verifyCommon() error {
	var px, py, pz float64
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			x := s.pos.Peek(3*i + d)
			v := s.vel.Peek(3*i + d)
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("water: molecule %d diverged", i)
			}
			if x < 0 || x >= s.box {
				return fmt.Errorf("water: molecule %d outside box: %g", i, x)
			}
		}
		px += s.vel.Peek(3 * i)
		py += s.vel.Peek(3*i + 1)
		pz += s.vel.Peek(3*i + 2)
	}
	if mom := math.Abs(px) + math.Abs(py) + math.Abs(pz); mom > 1e-9*float64(s.n) {
		return fmt.Errorf("water: total momentum drifted to %g", mom)
	}
	return nil
}

// Accelerations exposes the shared acceleration values (cross-validation).
//
//splash:allow accounting result export after the measured phase; cross-validation reads Go values only
func (s *state) Accelerations() []float64 { return s.acc.Raw() }

// partitionRange returns this processor's contiguous molecule range.
func (s *state) partitionRange(pid int) (lo, hi int) {
	return partition.Range(pid, s.mch.Procs(), s.n)
}
