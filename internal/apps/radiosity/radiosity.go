// Package radiosity implements the SPLASH-2 Radiosity application: the
// equilibrium distribution of light in a scene computed by the iterative
// hierarchical diffuse radiosity method [HSA91]. A scene is modeled as
// input polygons; light transport interactions are computed among them and
// polygons are hierarchically subdivided into patches as necessary to
// improve accuracy. Each step iterates over patch interaction lists,
// subdivides patches recursively, and at the end combines patch
// radiosities by an upward pass through the quadtrees. A BSP tree
// accelerates visibility computation between polygon pairs. The
// computation is highly irregular; parallelism is managed by distributed
// task queues with task stealing, and no attempt is made at intelligent
// data distribution (§3, [SGL94]). The input room is synthetic (see
// internal/workload).
package radiosity

import (
	"fmt"
	"math"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func init() {
	apps.Register(&apps.App{
		Name: "radiosity",
		Doc:  "hierarchical diffuse radiosity with BSP visibility",
		Defaults: map[string]int{
			"panels": 2, // wall subdivisions per side; paper input: room
			"iters":  3,
			"seed":   1,
		},
		Build: func(m *mach.Machine, opt map[string]int) (apps.Runner, error) {
			return New(m, opt["panels"], opt["iters"], uint64(opt["seed"]))
		},
	})
}

const (
	geomStride = 16 // words per patch geometry record
	fThresh    = 0.015
	maxLevels  = 3 // receiver refinement depth
)

// Geometry record offsets.
const (
	gCX = iota
	gCY
	gCZ
	gE1X
	gE1Y
	gE1Z
	gE2X
	gE2Y
	gE2Z
	gNX
	gNY
	gNZ
	gArea
	gEmit
	gRefl
)

// Radiosity is one configured solver instance.
type Radiosity struct {
	mch    *mach.Machine
	npolys int
	iters  int
	cap    int // patch pool capacity

	geom     *mach.F64Array // geomStride per patch
	rad      *mach.F64Array // radiosity B
	gathered *mach.F64Array
	children *mach.IntArray // 4 per patch, -1 when leaf
	polyID   *mach.IntArray
	ilist    *mach.IntArray // icap per patch
	icount   *mach.IntArray
	icap     int

	allocLock mach.Lock
	allocN    *mach.IntArray

	bsp     *bspTree
	queues  *mach.TaskQueues
	barrier *mach.Barrier
	minArea float64
}

// New builds the solver from a generated room scene.
func New(m *mach.Machine, panels, iters int, seed uint64) (*Radiosity, error) {
	if panels < 1 || iters < 1 {
		return nil, fmt.Errorf("radiosity: bad parameters panels=%d iters=%d", panels, iters)
	}
	polys := workload.GenRoom(panels, seed)
	r := &Radiosity{mch: m, npolys: len(polys), iters: iters, barrier: m.NewBarrier()}
	r.icap = len(polys)
	// Pool: full refinement of every polygon down to maxLevels.
	perPoly := 1
	for l, pw := 0, 1; l < maxLevels; l++ {
		pw *= 4
		perPoly += pw
	}
	r.cap = len(polys) * perPoly

	r.geom = m.NewF64(geomStride*r.cap, true, mach.Interleaved())
	r.rad = m.NewF64(r.cap, true, mach.Interleaved())
	r.gathered = m.NewF64(r.cap, true, mach.Interleaved())
	r.children = m.NewInt(4*r.cap, true, mach.Interleaved())
	r.polyID = m.NewInt(r.cap, true, mach.Interleaved())
	r.ilist = m.NewInt(r.icap*r.cap, true, mach.Interleaved())
	r.icount = m.NewInt(r.cap, true, mach.Interleaved())
	r.allocN = m.NewInt(8, true, mach.Owner(0))

	// Root patches from the input polygons.
	var minA float64 = math.Inf(1)
	for i := range polys {
		r.initPatch(i, &polys[i], i)
		if a := polys[i].Area(); a < minA {
			minA = a
		}
	}
	r.allocN.Init(0, len(polys))
	r.minArea = minA / 2 // bounds refinement depth for the scaled input

	// Initial interaction lists: facing root polygon pairs.
	for i := 0; i < len(polys); i++ {
		n := 0
		for j := 0; j < len(polys); j++ {
			if j == i {
				continue
			}
			if cp, cq := r.facing(i, j); cp > 0 && cq > 0 {
				r.ilist.Init(i*r.icap+n, j)
				n++
			}
		}
		r.icount.Init(i, n)
	}

	r.bsp = buildBSP(polys)
	r.bsp.upload(m)
	r.queues = m.NewTaskQueues(r.cap + 8)
	return r, nil
}

// initPatch writes a patch record (input construction, unsimulated).
func (r *Radiosity) initPatch(id int, p *workload.Polygon, poly int) {
	base := geomStride * id
	cx, cy, cz := p.Center()
	r.geom.Init(base+gCX, cx)
	r.geom.Init(base+gCY, cy)
	r.geom.Init(base+gCZ, cz)
	for d := 0; d < 3; d++ {
		r.geom.Init(base+gE1X+d, p.E1[d])
		r.geom.Init(base+gE2X+d, p.E2[d])
	}
	nx, ny, nz := cross(p.E1, p.E2)
	l := math.Sqrt(nx*nx + ny*ny + nz*nz)
	nx, ny, nz = nx/l, ny/l, nz/l
	// Orient normals toward the room interior.
	if nx*(0.5-cx)+ny*(0.5-cy)+nz*(0.5-cz) < 0 {
		nx, ny, nz = -nx, -ny, -nz
	}
	r.geom.Init(base+gNX, nx)
	r.geom.Init(base+gNY, ny)
	r.geom.Init(base+gNZ, nz)
	r.geom.Init(base+gArea, p.Area())
	r.geom.Init(base+gEmit, p.Emission)
	r.geom.Init(base+gRefl, p.Reflect)
	r.rad.Init(id, p.Emission)
	for o := 0; o < 4; o++ {
		r.children.Init(4*id+o, -1)
	}
	r.polyID.Init(id, poly)
}

// facing returns the cosines between each patch normal and the line
// connecting their centers (unsimulated; used for input construction).
func (r *Radiosity) facing(i, j int) (float64, float64) {
	gi, gj := geomStride*i, geomStride*j
	//splash:allow accounting facing runs during input construction (interaction-list build), before measurement
	dx := r.geom.Peek(gj+gCX) - r.geom.Peek(gi+gCX)
	//splash:allow accounting facing runs during input construction (interaction-list build), before measurement
	dy := r.geom.Peek(gj+gCY) - r.geom.Peek(gi+gCY)
	//splash:allow accounting facing runs during input construction (interaction-list build), before measurement
	dz := r.geom.Peek(gj+gCZ) - r.geom.Peek(gi+gCZ)
	d := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if d == 0 {
		return 0, 0
	}
	//splash:allow accounting facing runs during input construction (interaction-list build), before measurement
	cp := (r.geom.Peek(gi+gNX)*dx + r.geom.Peek(gi+gNY)*dy + r.geom.Peek(gi+gNZ)*dz) / d
	//splash:allow accounting facing runs during input construction (interaction-list build), before measurement
	cq := -(r.geom.Peek(gj+gNX)*dx + r.geom.Peek(gj+gNY)*dy + r.geom.Peek(gj+gNZ)*dz) / d
	return cp, cq
}

func cross(a, b [3]float64) (x, y, z float64) {
	return a[1]*b[2] - a[2]*b[1], a[2]*b[0] - a[0]*b[2], a[0]*b[1] - a[1]*b[0]
}
