package radiosity

import (
	"fmt"
	"math"

	"splash2/internal/mach"
)

// Run executes the iterations: each step processes patch tasks (gather +
// recursive subdivision) through the stealing task queues, then combines
// radiosities via an upward pass through each polygon's quadtree.
func (r *Radiosity) Run(m *mach.Machine) {
	m.Run(func(p *mach.Proc) {
		for it := 0; it < r.iters; it++ {
			// Seed: current leaves of the polygon quadtrees, distributed
			// round-robin by polygon.
			for poly := p.ID; poly < r.npolys; poly += m.Procs() {
				r.pushLeafTasks(p, poly)
			}
			r.barrier.Wait(p)
			for {
				patch, ok := r.queues.PopOrSteal(p)
				if !ok {
					break
				}
				r.process(p, patch)
				r.queues.Done(p)
			}
			r.barrier.Wait(p)
			// Push-pull: new radiosities up each polygon quadtree.
			for poly := p.ID; poly < r.npolys; poly += m.Procs() {
				r.pull(p, poly)
			}
			r.barrier.Wait(p)
		}
	})
}

// pushLeafTasks enqueues every current leaf patch of a polygon's quadtree.
func (r *Radiosity) pushLeafTasks(p *mach.Proc, patch int) {
	c0 := r.children.Get(p, 4*patch)
	if c0 == -1 {
		r.queues.Push(p, patch)
		return
	}
	for o := 0; o < 4; o++ {
		r.pushLeafTasks(p, r.children.Get(p, 4*patch+o))
	}
}

// process refines or gathers at one leaf patch: if any interaction's
// estimated form factor exceeds the threshold and the patch is large
// enough, the patch subdivides and its children become tasks; otherwise
// the patch gathers radiosity from its interaction list.
func (r *Radiosity) process(p *mach.Proc, patch int) {
	base := geomStride * patch
	area := r.geom.Get(p, base+gArea)
	n := r.icount.Get(p, patch)

	var gathered float64
	refine := false
	for k := 0; k < n; k++ {
		q := r.ilist.Get(p, patch*r.icap+k)
		F := r.formFactor(p, patch, q)
		if F > fThresh && area > r.minArea {
			refine = true
			break
		}
		if F <= 0 {
			continue
		}
		if !r.visible(p, patch, q) {
			continue
		}
		gathered += F * r.rad.Get(p, q)
		p.Flop(2)
	}

	if refine {
		r.subdivide(p, patch)
		return
	}
	refl := r.geom.Get(p, base+gRefl)
	r.gathered.Set(p, patch, refl*gathered)
	p.Flop(1)
}

// formFactor estimates the point-to-area form factor from patch a to b.
func (r *Radiosity) formFactor(p *mach.Proc, a, b int) float64 {
	ga, gb := geomStride*a, geomStride*b
	dx := r.fget(p, gb+gCX) - r.fget(p, ga+gCX)
	dy := r.fget(p, gb+gCY) - r.fget(p, ga+gCY)
	dz := r.fget(p, gb+gCZ) - r.fget(p, ga+gCZ)
	d2 := dx*dx + dy*dy + dz*dz
	if d2 == 0 {
		return 0
	}
	d := math.Sqrt(d2)
	cp := (r.fget(p, ga+gNX)*dx + r.fget(p, ga+gNY)*dy + r.fget(p, ga+gNZ)*dz) / d
	cq := -(r.fget(p, gb+gNX)*dx + r.fget(p, gb+gNY)*dy + r.fget(p, gb+gNZ)*dz) / d
	if p != nil {
		p.Flop(20)
	}
	if cp <= 0 || cq <= 0 {
		return 0
	}
	ab := r.fget(p, gb+gArea)
	return cp * cq * ab / (math.Pi*d2 + ab)
}

// subdivide creates four children covering the patch's rectangle, each
// inheriting the interaction list, and pushes them as new tasks.
func (r *Radiosity) subdivide(p *mach.Proc, patch int) {
	r.allocLock.Acquire(p)
	id := r.allocN.Get(p, 0)
	r.allocN.Set(p, 0, id+4)
	r.allocLock.Release(p)
	if id+4 > r.cap {
		panic("radiosity: patch pool exhausted")
	}

	base := geomStride * patch
	var e1, e2, nrm [3]float64
	for d := 0; d < 3; d++ {
		e1[d] = r.geom.Get(p, base+gE1X+d)
		e2[d] = r.geom.Get(p, base+gE2X+d)
		nrm[d] = r.geom.Get(p, base+gNX+d)
	}
	cx := r.geom.Get(p, base+gCX)
	cy := r.geom.Get(p, base+gCY)
	cz := r.geom.Get(p, base+gCZ)
	// Rectangle corner from center.
	c0 := [3]float64{cx - (e1[0]+e2[0])/2, cy - (e1[1]+e2[1])/2, cz - (e1[2]+e2[2])/2}
	area := r.geom.Get(p, base+gArea)
	emit := r.geom.Get(p, base+gEmit)
	refl := r.geom.Get(p, base+gRefl)
	bRad := r.rad.Get(p, patch)
	poly := r.polyID.Get(p, patch)
	n := r.icount.Get(p, patch)

	for o := 0; o < 4; o++ {
		child := id + o
		cb := geomStride * child
		uo := float64(o&1) / 2
		vo := float64(o>>1) / 2
		ctr := [3]float64{}
		for d := 0; d < 3; d++ {
			half1 := e1[d] / 2
			half2 := e2[d] / 2
			r.geom.Set(p, cb+gE1X+d, half1)
			r.geom.Set(p, cb+gE2X+d, half2)
			r.geom.Set(p, cb+gNX+d, nrm[d])
			ctr[d] = c0[d] + e1[d]*uo + e2[d]*vo + half1/2 + half2/2
		}
		r.geom.Set(p, cb+gCX, ctr[0])
		r.geom.Set(p, cb+gCY, ctr[1])
		r.geom.Set(p, cb+gCZ, ctr[2])
		r.geom.Set(p, cb+gArea, area/4)
		r.geom.Set(p, cb+gEmit, emit)
		r.geom.Set(p, cb+gRefl, refl)
		r.rad.Set(p, child, bRad)
		r.gathered.Set(p, child, 0)
		r.polyID.Set(p, child, poly)
		for oo := 0; oo < 4; oo++ {
			r.children.Set(p, 4*child+oo, -1)
		}
		for k := 0; k < n; k++ {
			r.ilist.Set(p, child*r.icap+k, r.ilist.Get(p, patch*r.icap+k))
		}
		r.icount.Set(p, child, n)
		r.children.Set(p, 4*patch+o, child)
		p.Flop(24)
		r.queues.Push(p, child)
	}
}

// pull combines radiosities upward: leaves take E + gathered, interior
// patches the area-weighted average of their children.
func (r *Radiosity) pull(p *mach.Proc, patch int) float64 {
	base := geomStride * patch
	if r.children.Get(p, 4*patch) == -1 {
		b := r.geom.Get(p, base+gEmit) + r.gathered.Get(p, patch)
		r.rad.Set(p, patch, b)
		p.Flop(1)
		return b
	}
	var sum float64
	for o := 0; o < 4; o++ {
		c := r.children.Get(p, 4*patch+o)
		cb := r.pull(p, c)
		sum += cb * r.geom.Get(p, geomStride*c+gArea)
		p.Flop(2)
	}
	b := sum / r.geom.Get(p, base+gArea)
	r.rad.Set(p, patch, b)
	p.Flop(1)
	return b
}

// Verify checks physical invariants of the converged solution.
func (r *Radiosity) Verify() error {
	total := r.allocN.Peek(0)
	if total <= r.npolys {
		return fmt.Errorf("radiosity: no patch was ever subdivided (%d patches)", total)
	}
	// Energy bound: total radiosity ≤ total emission / (1 − max ρ).
	var emitted, radiated float64
	maxRefl := 0.0
	brightest := 0.0
	brightestIsEmitter := false
	for i := 0; i < r.npolys; i++ {
		base := geomStride * i
		a := r.geom.Peek(base + gArea)
		emitted += r.geom.Peek(base+gEmit) * a
		radiated += r.rad.Peek(i) * a
		if rf := r.geom.Peek(base + gRefl); rf > maxRefl {
			maxRefl = rf
		}
		if b := r.rad.Peek(i); b > brightest {
			brightest = b
			brightestIsEmitter = r.geom.Peek(base+gEmit) > 0
		}
	}
	for i := 0; i < total; i++ {
		b := r.rad.Peek(i)
		if math.IsNaN(b) || b < 0 {
			return fmt.Errorf("radiosity: patch %d radiosity %v", i, b)
		}
	}
	if radiated > emitted/(1-maxRefl)+1e-9 {
		return fmt.Errorf("radiosity: energy bound violated: radiated %g > %g", radiated, emitted/(1-maxRefl))
	}
	if !brightestIsEmitter {
		return fmt.Errorf("radiosity: brightest polygon is not the light source")
	}
	// Children partition parents: areas must sum.
	for i := 0; i < total; i++ {
		if r.children.Peek(4*i) == -1 {
			continue
		}
		var sum float64
		for o := 0; o < 4; o++ {
			sum += r.geom.Peek(geomStride*r.children.Peek(4*i+o) + gArea)
		}
		if parent := r.geom.Peek(geomStride*i + gArea); math.Abs(sum-parent) > 1e-9*(parent+1) {
			return fmt.Errorf("radiosity: children of %d cover %g of %g", i, sum, parent)
		}
	}
	return nil
}

// Patches returns the number of patches in the pool (tests).
//splash:allow accounting result export after the measured phase (patch count for reporting)
func (r *Radiosity) Patches() int { return r.allocN.Peek(0) }
