package radiosity

import (
	"math"
	"sort"

	"splash2/internal/mach"
	"splash2/internal/workload"
)

// bspTree is an axis-aligned BSP over the input polygons, used to
// accelerate the visibility test between patch pairs (§3: "a BSP tree
// which facilitates efficient visibility computation between pairs of
// polygons"). It is built at input time and uploaded into simulated shared
// memory; queries during the solve issue simulated references.
type bspTree struct {
	// Flattened nodes: axis<0 marks a leaf.
	axis  []int
	split []float64
	left  []int
	right []int
	start []int // CSR into items for leaves
	items []int

	// Shared-memory mirrors.
	sAxis  *mach.IntArray
	sSplit *mach.F64Array
	sLeft  *mach.IntArray
	sRight *mach.IntArray
	sStart *mach.IntArray
	sItems *mach.IntArray
}

const bspLeafSize = 4

// buildBSP constructs the tree top-down, splitting at the median polygon
// center along the widest axis.
func buildBSP(polys []workload.Polygon) *bspTree {
	t := &bspTree{}
	ids := make([]int, len(polys))
	for i := range ids {
		ids[i] = i
	}
	centers := make([][3]float64, len(polys))
	for i := range polys {
		x, y, z := polys[i].Center()
		centers[i] = [3]float64{x, y, z}
	}
	var build func(ids []int, depth int) int
	build = func(ids []int, depth int) int {
		node := len(t.axis)
		t.axis = append(t.axis, -1)
		t.split = append(t.split, 0)
		t.left = append(t.left, -1)
		t.right = append(t.right, -1)
		t.start = append(t.start, -1)
		if len(ids) <= bspLeafSize || depth > 12 {
			t.start[node] = len(t.items)
			t.items = append(t.items, ids...)
			// Sentinel end recorded via next leaf's start; store count in
			// split for simplicity.
			t.split[node] = float64(len(ids))
			return node
		}
		// Widest axis of the centers.
		var lo, hi [3]float64
		for d := 0; d < 3; d++ {
			lo[d], hi[d] = math.Inf(1), math.Inf(-1)
		}
		for _, id := range ids {
			for d := 0; d < 3; d++ {
				lo[d] = math.Min(lo[d], centers[id][d])
				hi[d] = math.Max(hi[d], centers[id][d])
			}
		}
		axis := 0
		for d := 1; d < 3; d++ {
			if hi[d]-lo[d] > hi[axis]-lo[axis] {
				axis = d
			}
		}
		sorted := append([]int(nil), ids...)
		sort.Slice(sorted, func(a, b int) bool { return centers[sorted[a]][axis] < centers[sorted[b]][axis] })
		mid := len(sorted) / 2
		splitVal := centers[sorted[mid]][axis]
		t.axis[node] = axis
		t.split[node] = splitVal
		l := build(sorted[:mid], depth+1)
		r := build(sorted[mid:], depth+1)
		t.left[node] = l
		t.right[node] = r
		return node
	}
	build(ids, 0)
	return t
}

// upload copies the tree into simulated shared memory.
func (t *bspTree) upload(m *mach.Machine) {
	n := len(t.axis)
	t.sAxis = m.NewInt(n, true, mach.Interleaved())
	t.sSplit = m.NewF64(n, true, mach.Interleaved())
	t.sLeft = m.NewInt(n, true, mach.Interleaved())
	t.sRight = m.NewInt(n, true, mach.Interleaved())
	t.sStart = m.NewInt(n, true, mach.Interleaved())
	t.sItems = m.NewInt(len(t.items)+1, true, mach.Interleaved())
	for i := 0; i < n; i++ {
		t.sAxis.Init(i, t.axis[i])
		t.sSplit.Init(i, t.split[i])
		t.sLeft.Init(i, t.left[i])
		t.sRight.Init(i, t.right[i])
		t.sStart.Init(i, t.start[i])
	}
	for i, id := range t.items {
		t.sItems.Init(i, id)
	}
}

// visible tests whether the segment between the centers of patches a and b
// is unoccluded by any input polygon other than their own. It walks the
// BSP along the segment and intersects candidate polygons.
func (r *Radiosity) visible(p *mach.Proc, a, b int) bool {
	ga, gb := geomStride*a, geomStride*b
	ox := r.fget(p, ga+gCX)
	oy := r.fget(p, ga+gCY)
	oz := r.fget(p, ga+gCZ)
	dx := r.fget(p, gb+gCX) - ox
	dy := r.fget(p, gb+gCY) - oy
	dz := r.fget(p, gb+gCZ) - oz
	skipA := r.iget(p, r.polyID, a)
	skipB := r.iget(p, r.polyID, b)

	blocked := false
	var walk func(node int, t0, t1 float64)
	walk = func(node int, t0, t1 float64) {
		if blocked || t0 > t1 {
			return
		}
		axis := r.iget(p, r.bsp.sAxis, node)
		if axis < 0 {
			start := r.iget(p, r.bsp.sStart, node)
			count := int(r.fget2(p, r.bsp.sSplit, node))
			for k := start; k < start+count; k++ {
				poly := r.iget(p, r.bsp.sItems, k)
				if poly == skipA || poly == skipB {
					continue
				}
				if r.segmentHitsPatch(p, poly, ox, oy, oz, dx, dy, dz) {
					blocked = true
					return
				}
			}
			return
		}
		o := [3]float64{ox, oy, oz}[axis]
		d := [3]float64{dx, dy, dz}[axis]
		split := r.fget2(p, r.bsp.sSplit, node)
		lft := r.iget(p, r.bsp.sLeft, node)
		rgt := r.iget(p, r.bsp.sRight, node)
		if math.Abs(d) < 1e-12 {
			if o <= split {
				walk(lft, t0, t1)
			}
			if o >= split {
				walk(rgt, t0, t1)
			}
			return
		}
		tSplit := (split - o) / d
		near, far := lft, rgt
		if o > split {
			near, far = rgt, lft
		}
		switch {
		case tSplit > t1:
			walk(near, t0, t1)
		case tSplit < t0:
			walk(far, t0, t1)
		default:
			walk(near, t0, tSplit)
			walk(far, tSplit, t1)
		}
	}
	walk(0, 0.02, 0.98) // epsilon margins exclude the endpoints themselves
	if p != nil {
		p.Flop(10)
	}
	return !blocked
}

// segmentHitsPatch intersects the parametric segment with root patch of
// polygon `poly` (root patches have id == polygon id).
func (r *Radiosity) segmentHitsPatch(p *mach.Proc, poly int, ox, oy, oz, dx, dy, dz float64) bool {
	g := geomStride * poly
	nx := r.fget(p, g+gNX)
	ny := r.fget(p, g+gNY)
	nz := r.fget(p, g+gNZ)
	denom := dx*nx + dy*ny + dz*nz
	if math.Abs(denom) < 1e-12 {
		return false
	}
	// Plane passes through the patch corner.
	cx0 := r.fget(p, g+gCX) - (r.fget(p, g+gE1X)+r.fget(p, g+gE2X))/2
	cy0 := r.fget(p, g+gCY) - (r.fget(p, g+gE1Y)+r.fget(p, g+gE2Y))/2
	cz0 := r.fget(p, g+gCZ) - (r.fget(p, g+gE1Z)+r.fget(p, g+gE2Z))/2
	t := ((cx0-ox)*nx + (cy0-oy)*ny + (cz0-oz)*nz) / denom
	if p != nil {
		p.Flop(20)
	}
	if t <= 0.02 || t >= 0.98 {
		return false
	}
	hx := ox + t*dx - cx0
	hy := oy + t*dy - cy0
	hz := oz + t*dz - cz0
	e1 := [3]float64{r.fget(p, g+gE1X), r.fget(p, g+gE1Y), r.fget(p, g+gE1Z)}
	e2 := [3]float64{r.fget(p, g+gE2X), r.fget(p, g+gE2Y), r.fget(p, g+gE2Z)}
	l1 := e1[0]*e1[0] + e1[1]*e1[1] + e1[2]*e1[2]
	l2 := e2[0]*e2[0] + e2[1]*e2[1] + e2[2]*e2[2]
	u := (hx*e1[0] + hy*e1[1] + hz*e1[2]) / l1
	v := (hx*e2[0] + hy*e2[1] + hz*e2[2]) / l2
	if p != nil {
		p.Flop(20)
	}
	return u >= 0 && u <= 1 && v >= 0 && v <= 1
}

// fget/iget/fget2 access shared data, or Go values when p is nil
// (verification re-execution).
func (r *Radiosity) fget(p *mach.Proc, i int) float64 {
	if p != nil {
		return r.geom.Get(p, i)
	}
	//splash:allow accounting p==nil selects the unsimulated verification re-execution path
	return r.geom.Peek(i)
}

func (r *Radiosity) fget2(p *mach.Proc, a *mach.F64Array, i int) float64 {
	if p != nil {
		return a.Get(p, i)
	}
	//splash:allow accounting p==nil selects the unsimulated verification re-execution path
	return a.Peek(i)
}

func (r *Radiosity) iget(p *mach.Proc, a *mach.IntArray, i int) int {
	if p != nil {
		return a.Get(p, i)
	}
	//splash:allow accounting p==nil selects the unsimulated verification re-execution path
	return a.Peek(i)
}
