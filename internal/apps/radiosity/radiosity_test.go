package radiosity

import (
	"testing"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/workload"
)

func machine(procs int) *mach.Machine {
	return mach.MustNew(mach.Config{Procs: procs, CacheSize: 128 << 10, Assoc: 4, LineSize: 64})
}

func TestSolveAndVerify(t *testing.T) {
	m := machine(4)
	r, err := New(m, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessor(t *testing.T) {
	m := machine(1)
	r, err := New(m, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLightPropagates(t *testing.T) {
	m := machine(2)
	r, err := New(m, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	// After iterations with an emitter present, some non-emitting root
	// polygon must have picked up radiosity.
	lit := 0
	for i := 0; i < r.npolys; i++ {
		if r.geom.Peek(geomStride*i+gEmit) == 0 && r.rad.Peek(i) > 1e-6 {
			lit++
		}
	}
	if lit == 0 {
		t.Fatal("no non-emitter ever received light")
	}
}

func TestSubdivisionOccursAndAreasPartition(t *testing.T) {
	m := machine(2)
	r, err := New(m, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if r.Patches() <= r.npolys {
		t.Fatal("no subdivision happened")
	}
	// Verify() checks the area partition; run it explicitly.
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBSPCoversAllPolygons(t *testing.T) {
	polys := workload.GenRoom(2, 5)
	bsp := buildBSP(polys)
	seen := map[int]int{}
	for _, id := range bsp.items {
		seen[id]++
	}
	if len(seen) != len(polys) {
		t.Fatalf("BSP holds %d of %d polygons", len(seen), len(polys))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("polygon %d appears %d times", id, c)
		}
	}
}

func TestVisibilityOcclusion(t *testing.T) {
	// The occluder tops sit between the floor beneath them and the
	// ceiling; at least one floor↔ceiling pair must be blocked while some
	// other pair is visible.
	m := machine(1)
	r, err := New(m, 3, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	visibleCount, blockedCount := 0, 0
	for i := 0; i < r.npolys; i++ {
		for j := i + 1; j < r.npolys; j++ {
			if cp, cq := r.facing(i, j); cp <= 0 || cq <= 0 {
				continue
			}
			if r.visible(nil, i, j) {
				visibleCount++
			} else {
				blockedCount++
			}
		}
	}
	if visibleCount == 0 {
		t.Fatal("no pair visible")
	}
	if blockedCount == 0 {
		t.Fatal("occluders block nothing")
	}
}

func TestFormFactorProperties(t *testing.T) {
	m := machine(1)
	r, err := New(m, 2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.npolys; i++ {
		for j := 0; j < r.npolys; j++ {
			if i == j {
				continue
			}
			f := r.formFactor(nil, i, j)
			if f < 0 || f > 1 {
				t.Fatalf("form factor out of range: F(%d,%d)=%g", i, j, f)
			}
		}
	}
	// A patch facing away contributes zero: floor-to-floor pairs.
	if f := r.formFactor(nil, 0, 1); f != 0 {
		t.Fatalf("coplanar floor panels have F=%g, want 0", f)
	}
}

func TestRegistered(t *testing.T) {
	a, err := apps.Get("radiosity")
	if err != nil {
		t.Fatal(err)
	}
	if a.FlopBased {
		t.Fatal("radiosity reports bytes/instruction")
	}
	m := machine(2)
	r, err := a.Build(m, a.Options(map[string]int{"panels": 1, "iters": 2}))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}
