package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"splash2/internal/fault"
)

// Cache is the content-addressed on-disk result store. Each entry lives
// at <dir>/<key[:2]>/<key[2:]>.json and wraps the experiment result in an
// envelope carrying a checksum of the value bytes, so truncated or
// corrupted files are detected on read and treated as misses (the entry
// is removed and the experiment recomputed). Writes go through a
// temporary file plus rename, so concurrent runs sharing a cache
// directory never observe partial entries; temporary files orphaned by a
// crashed run are swept on open.
//
// # Concurrency
//
// A Cache is safe for concurrent use by any number of readers and
// writers, in one process or many (splashd serves every request from one
// shared cache directory). The contract, relied on by the serve layer
// and pinned by TestCacheConcurrentAccess:
//
//   - Get/Get: reads share no mutable state; each opens and reads the
//     entry file independently.
//   - Get/Put on the same key: Put is atomic (temp file + rename), so a
//     concurrent Get observes either the complete old entry, the complete
//     new entry, or — transiently, never wrongly — a miss. It can never
//     observe a torn entry: the checksum envelope downgrades any partial
//     read to a miss.
//   - Get/Get on a damaged entry: both readers detect the bad checksum,
//     both may Remove the file; unlinking a file another reader holds
//     open is safe on POSIX, and a failed Remove is ignored.
//   - Put/Put on the same key: last rename wins. Both writers hold the
//     same value bytes for a content-addressed key, so the outcome is
//     identical either way.
//
// Cached values decoded by Get are handed to multiple graphs by the
// runner's memo; consumers must treat them as immutable.
//
// SetFault and EnableLeases are the exceptions: they must be called
// before the cache is shared (test/CLI setup, not runtime controls).
type Cache struct {
	dir string
	inj *fault.Injector
	ls  *leases
}

// DefaultDir returns the default cache location, <user cache dir>/splash2
// (e.g. ~/.cache/splash2 on Linux).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("runner: no user cache dir: %w", err)
	}
	return filepath.Join(base, "splash2"), nil
}

// OpenCache opens (creating if needed) a cache rooted at dir. An empty
// dir selects DefaultDir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		d, err := DefaultDir()
		if err != nil {
			return nil, err
		}
		dir = d
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	sweepStaleTmp(dir)
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root directory.
func (c *Cache) Dir() string { return c.dir }

// SetFault attaches a fault injector to the cache's I/O paths: reads
// evaluate "cache.get:<key>" (errors and short reads), writes evaluate
// "cache.put:<key>", lease acquisitions evaluate "lease.acquire:<key>".
// nil detaches.
func (c *Cache) SetFault(inj *fault.Injector) {
	c.inj = inj
	if c.ls != nil {
		c.ls.inj = inj
	}
}

// EnableLeases turns on cross-process work leases (see lease.go) with
// the given TTL; ttl <= 0 selects DefaultLeaseTTL. Like SetFault it is
// setup-time configuration.
func (c *Cache) EnableLeases(ttl time.Duration) {
	c.ls = newLeases(c.dir, ttl)
	c.ls.inj = c.inj
}

// leaseManager returns the lease manager, or nil when leases are
// disabled (or the cache itself is nil).
func (c *Cache) leaseManager() *leases {
	if c == nil {
		return nil
	}
	return c.ls
}

// staleTmpAge is how old an orphaned temporary file must be before the
// open-time sweep deletes it. The margin keeps the sweep from racing a
// concurrent run's in-flight Put, whose tmp files live for milliseconds.
const staleTmpAge = time.Hour

// sweepStaleTmp deletes temporary files left behind by crashed runs:
// cache entry temps (".tmp-*"), spill container/sidecar temps
// ("<key>.tmp*", "<key>.json.tmp*") and lease-reap leftovers
// (".reap-*"). Real artifacts (.json entries, .sp2t containers and
// their .sp2t.json sidecars, .lease files, journal .jsonl) never match.
// Best-effort: sweep errors never fail OpenCache.
func sweepStaleTmp(dir string) {
	sweepTmp(dir, staleTmpAge)
}

// sweepTmp removes temp artifacts older than age under dir.
func sweepTmp(dir string, age time.Duration) (removed []string) {
	now := time.Now()
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		name := info.Name()
		if !strings.Contains(name, ".tmp") && !strings.Contains(name, ".reap-") {
			return nil
		}
		if now.Sub(info.ModTime()) > age {
			if os.Remove(path) == nil {
				removed = append(removed, path)
			}
		}
		return nil
	})
	return removed
}

// SweepCrashed reclaims artifacts orphaned by dead runs, for an explicit
// resume: every temp file regardless of age, and every lease that is
// expired (mtime beyond ttl) or whose recorded owner is a dead process
// on this host. Live remote owners are untouched — their heartbeat keeps
// the mtime fresh. Returns the removed paths for the resume report.
func (c *Cache) SweepCrashed(ttl time.Duration) []string {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	removed := sweepTmp(c.dir, 0)
	host, _ := os.Hostname()
	filepath.Walk(c.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(info.Name(), ".lease") {
			return nil
		}
		stale := time.Since(info.ModTime()) > ttl
		if !stale {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil
			}
			var rec leaseRecord
			if json.Unmarshal(data, &rec) != nil {
				stale = true // unparsable lease: nobody can release it
			} else if rec.Host == host && rec.PID > 0 && !pidAlive(rec.PID) {
				stale = true
			}
		}
		if stale && os.Remove(path) == nil {
			removed = append(removed, path)
		}
		return nil
	})
	return removed
}

// envelope is the on-disk entry format: the result value plus a SHA-256
// of its bytes for integrity checking.
type envelope struct {
	Sum   string          `json:"sum"`
	Value json.RawMessage `json:"value"`
}

func (c *Cache) path(k Key) string {
	hx := k.String()
	return filepath.Join(c.dir, hx[:2], hx[2:]+".json")
}

// Get loads the entry for k and decodes it with decode. Any failure —
// missing or unreadable file, unparsable envelope, checksum mismatch,
// decode error, even a decode panic — is a miss; damaged entries are
// removed so the recomputed result can be stored cleanly. ctx scopes
// the fault evaluation (injected delays honour request cancellation);
// nil selects context.Background.
func (c *Cache) Get(ctx context.Context, k Key, decode func([]byte) (any, error)) (v any, ok bool) {
	if k.IsZero() {
		return nil, false
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Adversarial entry bytes (or an injected fault) may panic the
	// decoder; a cache read must degrade to a miss, never crash the run.
	defer func() {
		if recover() != nil {
			v, ok = nil, false
		}
	}()
	op := "cache.get:" + k.String()
	if err := c.inj.Do(ctx, op); err != nil {
		return nil, false
	}
	path := c.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	data = c.inj.Data(op, data)
	var env envelope
	if err := json.Unmarshal(data, &env); err == nil && env.Sum == valueSum(env.Value) {
		if v, err := decode(env.Value); err == nil {
			return v, true
		}
	}
	os.Remove(path) // corrupted or stale-format entry
	return nil, false
}

// Put stores value (already-encoded result bytes) under k atomically. A
// failed or faulted Put loses only cache warmth, never data: the caller
// already holds the result. ctx scopes the fault evaluation; nil selects
// context.Background.
func (c *Cache) Put(ctx context.Context, k Key, value []byte) (err error) {
	if k.IsZero() {
		return fmt.Errorf("runner: Put with zero key")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: cache put panicked: %v", p)
		}
	}()
	if err := c.inj.Do(ctx, "cache.put:"+k.String()); err != nil {
		return err
	}
	env, err := json.Marshal(envelope{Sum: valueSum(value), Value: value})
	if err != nil {
		return err
	}
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(env); err != nil {
		tmp.Close() //splash:allow durability cleanup close on an already-failing path; the Write error is what the caller sees and the temp file is removed
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func valueSum(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}
