package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheConcurrentAccess pins the Cache concurrency contract (see the
// Cache doc comment): many goroutines reading and writing overlapping
// keys — with damaged entries thrown in — never observe a torn value and
// never race (the suite runs under -race in CI). Every successful Get
// must decode to the exact value Put stored for that key.
func TestCacheConcurrentAccess(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	goroutines := 16
	rounds := 50
	if testing.Short() {
		goroutines, rounds = 8, 20
	}

	key := func(i int) Key { return KeyOf("conc", i%keys) }
	value := func(i int) []byte { return []byte(fmt.Sprintf(`{"k":%d}`, i%keys)) }
	decode := func(b []byte) (any, error) {
		var v struct{ K int }
		err := json.Unmarshal(b, &v)
		return v.K, err
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := g + r
				switch r % 4 {
				case 0:
					if err := c.Put(context.Background(), key(i), value(i)); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 3:
					// Damage the entry on disk: readers must degrade to a
					// miss, never return garbage or crash.
					os.WriteFile(c.path(key(i)), []byte("not json"), 0o644)
				default:
					if v, ok := c.Get(context.Background(), key(i), decode); ok {
						if got, want := v.(int), i%keys; got != want {
							t.Errorf("Get(key %d) = %d, want %d (torn read)", want, got, want)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// After the storm, every key must round-trip cleanly again.
	for i := 0; i < keys; i++ {
		if err := c.Put(context.Background(), key(i), value(i)); err != nil {
			t.Fatalf("final Put: %v", err)
		}
		v, ok := c.Get(context.Background(), key(i), decode)
		if !ok || v.(int) != i {
			t.Fatalf("final Get(key %d) = %v, %v", i, v, ok)
		}
	}
}

// TestConcurrentGraphsShareWorkerPool runs many graphs at once on one
// Runner and asserts (a) every graph sees correct results, and (b) the
// number of simultaneously executing jobs never exceeds Workers — the
// runner-wide semaphore multiplexes concurrent graphs instead of giving
// each its own pool.
func TestConcurrentGraphsShareWorkerPool(t *testing.T) {
	const workers = 3
	r := New(Options{Workers: workers})
	var running, peak atomic.Int64
	track := func() func() {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return func() { running.Add(-1) }
	}

	graphs := 8
	jobsPer := 6
	if testing.Short() {
		graphs = 4
	}
	var wg sync.WaitGroup
	for gi := 0; gi < graphs; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			g := r.NewGraph()
			jobs := make([]Job[int], jobsPer)
			for ji := 0; ji < jobsPer; ji++ {
				ji := ji
				// Overlapping keys across graphs: job ji is shared by every
				// graph, so concurrent graphs contend on the same work.
				jobs[ji] = Submit(g, Spec{Key: KeyOf("pool", ji)}, func(ctx context.Context) (int, error) {
					defer track()()
					return ji * ji, nil
				})
			}
			if err := g.Wait(context.Background()); err != nil {
				t.Errorf("graph %d: %v", gi, err)
				return
			}
			for ji, j := range jobs {
				if v, err := j.Result(); err != nil || v != ji*ji {
					t.Errorf("graph %d job %d = %d, %v; want %d", gi, ji, v, err, ji*ji)
				}
			}
		}(gi)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrent jobs %d exceeds Workers=%d: graphs are not sharing the pool", p, workers)
	}
	if exec := r.Counts().Executed; exec < int64(jobsPer) {
		t.Fatalf("executed %d < %d distinct jobs", exec, jobsPer)
	}
}

// TestPerGraphKeepGoingIsolation runs a keep-going graph with a failing
// job next to a fail-fast graph on the same Runner: the failure stays in
// its own graph's log and policy, and the clean graph is untouched.
func TestPerGraphKeepGoingIsolation(t *testing.T) {
	r := New(Options{Workers: 2}) // runner default: fail-fast

	boom := errors.New("boom")
	var wg sync.WaitGroup
	wg.Add(2)

	var keepErr, cleanErr error
	var keepFails []*JobError
	keepGraph := r.NewGraph()
	keepGraph.SetKeepGoing(true)
	go func() {
		defer wg.Done()
		bad := Submit(keepGraph, Spec{Label: "bad", Key: KeyOf("iso", "bad")}, func(ctx context.Context) (int, error) {
			return 0, boom
		})
		dep := Submit(keepGraph, Spec{Label: "dep", Key: KeyOf("iso", "dep"), Deps: []Handle{bad}}, func(ctx context.Context) (int, error) {
			return 1, nil
		})
		keepErr = keepGraph.Wait(context.Background())
		if _, err := dep.Result(); err == nil {
			t.Error("dependent of failed job completed successfully")
		}
		keepFails = keepGraph.Failures()
	}()

	cleanGraph := r.NewGraph()
	go func() {
		defer wg.Done()
		ok := Submit(cleanGraph, Spec{Label: "ok", Key: KeyOf("iso", "ok")}, func(ctx context.Context) (int, error) {
			return 42, nil
		})
		cleanErr = cleanGraph.Wait(context.Background())
		if v, err := ok.Result(); err != nil || v != 42 {
			t.Errorf("clean graph job = %d, %v; want 42", v, err)
		}
	}()
	wg.Wait()

	if keepErr != nil {
		t.Fatalf("keep-going graph Wait = %v, want nil", keepErr)
	}
	if cleanErr != nil {
		t.Fatalf("clean graph Wait = %v, want nil", cleanErr)
	}
	if len(keepFails) != 2 { // the failed job and its skipped dependent
		t.Fatalf("keep-going graph logged %d failures, want 2: %v", len(keepFails), keepFails)
	}
	if got := cleanGraph.Failures(); len(got) != 0 {
		t.Fatalf("clean graph logged foreign failures: %v", got)
	}
	if !errors.Is(keepFails[0].Err, boom) && !errors.Is(keepFails[1].Err, boom) {
		t.Fatalf("failure log lost the cause: %v", keepFails)
	}
}

// TestPerGraphProgressSinks attaches a separate OnProgress sink to each
// of two concurrent graphs and asserts neither observes the other's
// events.
func TestPerGraphProgressSinks(t *testing.T) {
	r := New(Options{Workers: 4})
	type sink struct {
		mu     sync.Mutex
		labels map[string]bool
		sum    int
	}
	collect := func(s *sink) ProgressFunc {
		return func(ev ProgressEvent) {
			s.mu.Lock()
			defer s.mu.Unlock()
			if ev.Status == "summary" {
				s.sum++
				return
			}
			s.labels[ev.Label] = true
		}
	}
	a, b := &sink{labels: map[string]bool{}}, &sink{labels: map[string]bool{}}

	var wg sync.WaitGroup
	for i, s := range []*sink{a, b} {
		wg.Add(1)
		go func(i int, s *sink) {
			defer wg.Done()
			g := r.NewGraph()
			g.OnProgress(collect(s))
			for j := 0; j < 3; j++ {
				Submit(g, Spec{Label: fmt.Sprintf("g%d-j%d", i, j), Key: KeyOf("prog", i, j)}, func(ctx context.Context) (int, error) {
					return j, nil
				})
			}
			if err := g.Wait(context.Background()); err != nil {
				t.Errorf("graph %d: %v", i, err)
			}
		}(i, s)
	}
	wg.Wait()

	for label := range a.labels {
		if label[:2] != "g0" {
			t.Fatalf("graph 0 sink saw foreign event %q", label)
		}
	}
	for label := range b.labels {
		if label[:2] != "g1" {
			t.Fatalf("graph 1 sink saw foreign event %q", label)
		}
	}
	if len(a.labels) != 3 || a.sum != 1 || len(b.labels) != 3 || b.sum != 1 {
		t.Fatalf("sinks incomplete: a=%d/%d b=%d/%d (want 3 jobs + 1 summary each)",
			len(a.labels), a.sum, len(b.labels), b.sum)
	}
}

// TestCacheSharedAcrossConcurrentGraphs drives two runners (two
// "processes") over one cache directory concurrently; every job is
// either executed once or served from the shared store, and all results
// agree.
func TestCacheSharedAcrossConcurrentGraphs(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	results := make([][]int, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := OpenCache(dir)
			if err != nil {
				t.Error(err)
				return
			}
			r := New(Options{Workers: 2, Cache: c})
			g := r.NewGraph()
			jobs := make([]Job[int], 5)
			for j := range jobs {
				j := j
				jobs[j] = Submit(g, Spec{Key: KeyOf("shared", j)}, func(ctx context.Context) (int, error) {
					return 100 + j, nil
				})
			}
			if err := g.Wait(context.Background()); err != nil {
				t.Error(err)
				return
			}
			out := make([]int, len(jobs))
			for j, jb := range jobs {
				out[j], _ = jb.Result()
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for i, out := range results {
		for j, v := range out {
			if v != 100+j {
				t.Fatalf("runner %d job %d = %d, want %d", i, j, v, 100+j)
			}
		}
	}
	// The files must exist and round-trip after the storm.
	c, _ := OpenCache(dir)
	n := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			n++
		}
		return nil
	})
	if n != 5 {
		t.Fatalf("cache holds %d entries, want 5", n)
	}
	v, ok := c.Get(context.Background(), KeyOf("shared", 0), func(b []byte) (any, error) {
		var x int
		return x, json.Unmarshal(b, &x)
	})
	if !ok || v.(int) != 100 {
		t.Fatalf("shared entry 0 = %v, %v", v, ok)
	}
}
