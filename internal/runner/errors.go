package runner

import (
	"errors"
	"fmt"
)

// ErrTimeout marks a job attempt that exceeded Options.Timeout. The
// attempt's goroutine is abandoned (it keeps running until it observes
// its context), but the worker slot is reclaimed immediately, so a
// wedged job can never hang the pool.
var ErrTimeout = errors.New("job timed out")

// JobError is the structured failure of one job: instead of crashing or
// aborting the graph, a panicking, failing, timed-out or skipped job is
// converted into one of these. It is the error returned by Job.Result and
// Graph.Wait for failed work, and the record type behind the failure
// manifest.
type JobError struct {
	// Label is the failing job's display label.
	Label string `json:"label"`
	// Key is the job's content address in hex ("" for uncacheable jobs).
	Key string `json:"key,omitempty"`
	// Attempts is how many times the job ran (> 1 after retries).
	Attempts int `json:"attempts,omitempty"`
	// Panicked reports that the job's function panicked; Stack holds the
	// recovered goroutine stack.
	Panicked bool   `json:"panicked,omitempty"`
	Stack    string `json:"stack,omitempty"`
	// TimedOut reports that the last attempt exceeded the job timeout.
	TimedOut bool `json:"timedOut,omitempty"`
	// Skipped reports that the job never ran because a dependency failed;
	// Err names the failed dependency.
	Skipped bool `json:"skipped,omitempty"`
	// Err is the underlying cause.
	Err error `json:"-"`
}

// Error formats as "label: cause" (the FAILED-cell text); stacks are kept
// out of the message and available via the Stack field.
func (e *JobError) Error() string {
	switch {
	case e.Skipped:
		return fmt.Sprintf("%s: skipped: %v", e.Label, e.Err)
	case e.TimedOut && e.Attempts > 1:
		return fmt.Sprintf("%s: %v (attempt %d)", e.Label, e.Err, e.Attempts)
	default:
		return fmt.Sprintf("%s: %v", e.Label, e.Err)
	}
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// Cause returns the failure text without the label prefix.
func (e *JobError) Cause() string {
	if e.Err == nil {
		return ""
	}
	return e.Err.Error()
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t transientError) Error() string { return t.err.Error() }
func (t transientError) Unwrap() error { return t.err }

// Transient wraps err so the scheduler retries the job (bounded by
// Options.Retries, with exponential backoff). Jobs report transient
// failures — contended files, flaky I/O — by returning Transient(err).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err}
}

// IsTransient reports whether err is marked retryable: wrapped by
// Transient, or carrying a `Transient() bool` method (the fault
// injector's errors do, without importing this package).
func IsTransient(err error) bool {
	var t transientError
	if errors.As(err, &t) {
		return true
	}
	var m interface{ Transient() bool }
	return errors.As(err, &m) && m.Transient()
}

// keyStr renders a key for JobError ("" for the zero key).
func keyStr(k Key) string {
	if k.IsZero() {
		return ""
	}
	return k.String()
}
