package runner

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"splash2/internal/fault"
)

// Cross-process work leases.
//
// Two processes sharing a cache directory (a splashd fleet, or a daemon
// plus an operator's ad-hoc characterize run) race to execute the same
// cold experiments. In-process the singleflight memo deduplicates them;
// across processes nothing did, so every daemon paid for every cold
// sweep. Leases extend the coalescing across the process boundary with
// nothing but the filesystem:
//
//   - A job's lease lives next to its cache entry:
//     <dir>/<key[:2]>/<key[2:]>.lease. Acquisition is O_CREATE|O_EXCL —
//     atomic on every filesystem Go supports — so exactly one process
//     wins a cold key.
//   - The winner heartbeats the lease by bumping its mtime every TTL/4
//     while the job runs, writes the result into the cache, then removes
//     the lease. Losers poll: a cache hit ends the wait; a lease whose
//     mtime is older than the TTL belongs to a dead process and is taken
//     over.
//   - Takeover must not double-fire: contenders race to atomically
//     os.Rename the stale lease aside (exactly one rename succeeds) and
//     only the renamer deletes it and re-enters acquisition. A lease can
//     therefore be reclaimed at most once per expiry, and a kill -9'd
//     winner delays its key by at most one TTL — it can never deadlock
//     the fleet.
//
// The protocol is advisory and best-effort by design: any lease-layer
// I/O error degrades to "run the job locally", which costs duplicated
// work, never correctness — results are content-addressed, so two
// processes computing the same key store identical bytes.

// DefaultLeaseTTL is the lease expiry used when EnableLeases is given a
// non-positive TTL. It must comfortably exceed the heartbeat interval
// (TTL/4) under a loaded scheduler, and it bounds how long a crashed
// winner can delay contenders on one key.
const DefaultLeaseTTL = 10 * time.Second

// leaseState says how an acquisition attempt ended.
type leaseState int

const (
	// leaseWon: this process holds the lease and must run the job.
	leaseWon leaseState = iota
	// leaseLost: another live process holds the lease.
	leaseLost
	// leaseErr: the lease layer itself failed; run the job locally.
	leaseErr
)

// leaseRecord is the lease file's JSON payload — forensics for `ls`, the
// journal, and the same-owner check on release. Liveness is carried by
// the file's mtime (heartbeat), not by the payload.
type leaseRecord struct {
	Owner string    `json:"owner"` // host:pid:nonce
	PID   int       `json:"pid"`
	Host  string    `json:"host"`
	Start time.Time `json:"start"`
}

// leases is the per-cache lease manager.
type leases struct {
	dir   string
	ttl   time.Duration
	owner string // host:pid:nonce, unique per Cache instance
	inj   *fault.Injector

	// takeovers observes reclaimed stale leases (runner counter +
	// journal); the context is the request whose contention discovered
	// the stale lease, the argument the reclaimed key's hex string.
	takeovers func(ctx context.Context, key string)
}

// newLeases builds a lease manager rooted at the cache directory.
func newLeases(dir string, ttl time.Duration) *leases {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "unknown"
	}
	var nb [6]byte
	rand.Read(nb[:])
	return &leases{
		dir:   dir,
		ttl:   ttl,
		owner: fmt.Sprintf("%s:%d:%s", host, os.Getpid(), hex.EncodeToString(nb[:])),
	}
}

// path returns the lease file for a key, sharded like the cache entry it
// guards.
func (l *leases) path(k Key) string {
	hx := k.String()
	return filepath.Join(l.dir, hx[:2], hx[2:]+".lease")
}

// tryAcquire attempts to take the lease for k. On leaseWon the caller
// owns the lease and must Release it; a heartbeat goroutine (stopped by
// the returned func) keeps the mtime fresh meanwhile. On leaseLost a
// live owner exists elsewhere. leaseErr means the lease layer is broken
// (unwritable dir, injected fault): callers fall back to local execution.
func (l *leases) tryAcquire(ctx context.Context, k Key) (leaseState, func()) {
	path := l.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return leaseErr, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			if l.reapIfStale(ctx, path) {
				// The stale holder is gone and we removed its lease;
				// immediately re-contend. Another process may win the
				// re-race — that's fine, they're live.
				f, err = os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
				if err != nil {
					return leaseLost, nil
				}
			} else {
				return leaseLost, nil
			}
		} else {
			return leaseErr, nil
		}
	}
	rec := leaseRecord{Owner: l.owner, PID: os.Getpid(), Start: time.Now()}
	if h, _ := os.Hostname(); h != "" {
		rec.Host = h
	}
	data, _ := json.Marshal(rec)
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(path)
		return leaseErr, nil
	}
	// The lease exists and is ours. A crash injected here (after the
	// durable acquisition, before any work) is the nastiest point for
	// contenders: they must take the dead lease over, not wait forever.
	if err := l.inj.Do(ctx, "lease.acquire:"+k.String()); err != nil {
		os.Remove(path)
		return leaseErr, nil
	}
	stop := l.heartbeat(path)
	return leaseWon, func() {
		stop()
		l.release(path)
	}
}

// heartbeat bumps the lease's mtime every ttl/4 until stopped, so a live
// owner's lease never looks stale no matter how long the job runs.
func (l *leases) heartbeat(path string) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(l.ttl / 4)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := time.Now()
				os.Chtimes(path, now, now)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// release removes the lease if this process still owns it. Ownership can
// have moved: if we stalled past the TTL a contender legitimately took
// the lease over, and removing *their* lease would let a third process
// double-run the job.
func (l *leases) release(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // already reaped
	}
	var rec leaseRecord
	if json.Unmarshal(data, &rec) == nil && rec.Owner != l.owner {
		return // taken over; not ours to remove
	}
	os.Remove(path)
}

// reapIfStale checks whether the lease at path has expired and, if so,
// removes it. Returns true only for the one caller that actually
// performed the removal: contenders race os.Rename to a unique reap
// name, and rename's atomicity guarantees a single winner — the losers
// keep waiting and re-probe.
func (l *leases) reapIfStale(ctx context.Context, path string) bool {
	st, err := os.Stat(path)
	if err != nil {
		return false // gone already — treat as "someone else reaped"
	}
	if time.Since(st.ModTime()) <= l.ttl {
		return false
	}
	var nb [6]byte
	rand.Read(nb[:])
	reap := path + ".reap-" + hex.EncodeToString(nb[:])
	if err := os.Rename(path, reap); err != nil {
		return false // lost the reap race
	}
	os.Remove(reap)
	if l.takeovers != nil {
		// Reassemble the key from the sharded lease path:
		// <dir>/<key[:2]>/<key[2:]>.lease.
		base := strings.TrimSuffix(filepath.Base(path), ".lease")
		l.takeovers(ctx, filepath.Base(filepath.Dir(path))+base)
	}
	return true
}

// pidAlive reports whether pid is a live process on this host, via
// signal 0. Conservative: only a definitive "no such process" counts as
// dead — permission errors and platforms without signal support count
// as alive, so a sweep can never kill a live owner's lease.
func pidAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	return !errors.Is(err, os.ErrProcessDone) && !errors.Is(err, syscall.ESRCH)
}

// waitInterval is how often a losing contender re-probes the cache and
// the winner's lease. Short enough that cross-process handoff latency is
// invisible next to experiment runtimes, long enough to keep the wait
// loop's stat/read traffic trivial.
const waitInterval = 25 * time.Millisecond

// wait blocks until the winner's result lands in the cache (returning
// it), the lease disappears or goes stale (returning ok=false so the
// caller re-contends), or ctx expires (returning ctx.Err()).
func (l *leases) wait(ctx context.Context, c *Cache, k Key, decode func([]byte) (any, error)) (v any, ok bool, err error) {
	path := l.path(k)
	t := time.NewTicker(waitInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-t.C:
		}
		if v, ok := c.Get(ctx, k, decode); ok {
			return v, true, nil
		}
		st, err := os.Stat(path)
		if err != nil {
			// Lease gone but no cache entry: the winner failed (or
			// chose not to store). Re-contend and run it ourselves.
			return nil, false, nil
		}
		if time.Since(st.ModTime()) > l.ttl {
			if l.reapIfStale(ctx, path) {
				return nil, false, nil
			}
			// Lost the reap race; the reaper is live and about to
			// re-acquire. Keep waiting on the fresh lease.
		}
	}
}
