package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func decodeInt(b []byte) (any, error) {
	var v int
	err := json.Unmarshal(b, &v)
	return v, err
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("test", "roundtrip")
	if _, ok := c.Get(context.Background(), k, decodeInt); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(context.Background(), k, []byte("123")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(context.Background(), k, decodeInt)
	if !ok || v.(int) != 123 {
		t.Fatalf("got %v, %v", v, ok)
	}
}

func TestCachePutZeroKeyRejected(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), Key{}, []byte("1")); err == nil {
		t.Fatal("zero key accepted")
	}
	if _, ok := c.Get(context.Background(), Key{}, decodeInt); ok {
		t.Fatal("zero key hit")
	}
}

// cacheFiles returns every entry file under the cache root.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestCacheCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("test", "corrupt")
	if err := c.Put(context.Background(), k, []byte("42")); err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func(path string){
		"garbage":    func(p string) { os.WriteFile(p, []byte("not json at all"), 0o644) },
		"truncated":  func(p string) { b, _ := os.ReadFile(p); os.WriteFile(p, b[:len(b)/2], 0o644) },
		"wrong-sum":  func(p string) { os.WriteFile(p, []byte(`{"sum":"00","value":42}`), 0o644) },
		"bad-decode": func(p string) { os.WriteFile(p, mustEnvelope(t, []byte(`"a string"`)), 0o644) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := c.Put(context.Background(), k, []byte("42")); err != nil {
				t.Fatal(err)
			}
			files := cacheFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("cache files = %d, want 1", len(files))
			}
			corrupt(files[0])
			if _, ok := c.Get(context.Background(), k, decodeInt); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			if left := cacheFiles(t, dir); len(left) != 0 {
				t.Fatalf("corrupted entry not removed: %v", left)
			}
			// The slot is reusable after recomputation.
			if err := c.Put(context.Background(), k, []byte("42")); err != nil {
				t.Fatal(err)
			}
			if v, ok := c.Get(context.Background(), k, decodeInt); !ok || v.(int) != 42 {
				t.Fatalf("recomputed entry not served: %v %v", v, ok)
			}
		})
	}
}

func mustEnvelope(t *testing.T, value []byte) []byte {
	t.Helper()
	b, err := json.Marshal(envelope{Sum: valueSum(value), Value: value})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCacheSharding(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("test", "shard")
	if err := c.Put(context.Background(), k, []byte("1")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, k.String()[:2], k.String()[2:]+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at sharded path %s: %v", want, err)
	}
}

func TestDefaultDirIsUnderUserCache(t *testing.T) {
	d, err := DefaultDir()
	if err != nil {
		t.Skip("no user cache dir in this environment")
	}
	if filepath.Base(d) != "splash2" {
		t.Fatalf("default dir %q not a splash2 subdirectory", d)
	}
}
