package runner

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newLeasedCache opens a cache with leases enabled at a test-friendly
// TTL. Each call gets its own manager (own owner nonce), so two caches
// on one directory model two processes.
func newLeasedCache(t *testing.T, dir string, ttl time.Duration) *Cache {
	t.Helper()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableLeases(ttl)
	return c
}

// TestLeaseCoalescesTwoRunners is the acceptance property: two runners
// (standing in for two processes) sharing a cold cache execute an
// expensive job once. The loser adopts the winner's stored result.
func TestLeaseCoalescesTwoRunners(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	runJob := func(ctx context.Context) (int, error) {
		executions.Add(1)
		time.Sleep(300 * time.Millisecond)
		return 77, nil
	}
	key := KeyOf("test", "lease-coalesce")

	runners := []*Runner{
		New(Options{Cache: newLeasedCache(t, dir, time.Second)}),
		New(Options{Cache: newLeasedCache(t, dir, time.Second)}),
	}
	var wg sync.WaitGroup
	results := make([]int, len(runners))
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			g := r.NewGraph()
			j := Submit(g, Spec{Label: "expensive", Key: key}, runJob)
			if err := g.Wait(context.Background()); err != nil {
				t.Errorf("runner %d: %v", i, err)
				return
			}
			results[i], _ = j.Result()
		}(i, r)
	}
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("job executed %d times across two runners, want 1", n)
	}
	for i, v := range results {
		if v != 77 {
			t.Errorf("runner %d got %d, want 77", i, v)
		}
	}
	var acquired, shared int64
	for _, r := range runners {
		c := r.Counts()
		acquired += c.LeaseAcquired
		shared += c.LeaseShared
	}
	if acquired != 1 || shared != 1 {
		t.Errorf("lease counters: acquired=%d shared=%d, want 1/1", acquired, shared)
	}
	// The handoff must leave no lease behind.
	leases, _ := filepath.Glob(filepath.Join(dir, "*", "*.lease"))
	if len(leases) != 0 {
		t.Errorf("leaked leases after clean handoff: %v", leases)
	}
}

// writeStaleLease plants a lease file whose mtime is past the TTL, as a
// crashed process would leave it.
func writeStaleLease(t *testing.T, l *leases, k Key, age time.Duration) string {
	t.Helper()
	path := l.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	rec := leaseRecord{Owner: "deadhost:1:aa", PID: 1, Host: "deadhost", Start: time.Now().Add(-age)}
	data, _ := json.Marshal(rec)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLeaseTakeoverRace: many contenders hit one stale lease at once.
// Exactly one may reap it (rename atomicity) and exactly one may win the
// re-acquisition; everyone else must see leaseLost, never an error and
// never a second takeover.
func TestLeaseTakeoverRace(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("test", "takeover-race")
	var takeovers atomic.Int64

	const contenders = 8
	mgrs := make([]*leases, contenders)
	for i := range mgrs {
		mgrs[i] = newLeases(dir, 100*time.Millisecond)
		mgrs[i].takeovers = func(context.Context, string) { takeovers.Add(1) }
	}
	writeStaleLease(t, mgrs[0], k, time.Minute)

	states := make([]leaseState, contenders)
	releases := make([]func(), contenders)
	var wg sync.WaitGroup
	for i := range mgrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			states[i], releases[i] = mgrs[i].tryAcquire(context.Background(), k)
		}(i)
	}
	wg.Wait()

	won, lost, errs := 0, 0, 0
	for i, s := range states {
		switch s {
		case leaseWon:
			won++
			defer releases[i]()
		case leaseLost:
			lost++
		case leaseErr:
			errs++
		}
	}
	if won != 1 || errs != 0 {
		t.Fatalf("states: won=%d lost=%d err=%d, want exactly one winner and no errors", won, lost, errs)
	}
	if n := takeovers.Load(); n != 1 {
		t.Errorf("stale lease reaped %d times, want exactly 1", n)
	}
}

// TestLeaseHeartbeatKeepsLeaseFresh: a held lease outliving its TTL must
// not look stale — the heartbeat bumps its mtime.
func TestLeaseHeartbeatKeepsLeaseFresh(t *testing.T) {
	dir := t.TempDir()
	l := newLeases(dir, 200*time.Millisecond)
	k := KeyOf("test", "heartbeat")
	state, release := l.tryAcquire(context.Background(), k)
	if state != leaseWon {
		t.Fatalf("tryAcquire = %v, want leaseWon", state)
	}
	defer release()

	time.Sleep(500 * time.Millisecond) // 2.5 TTLs
	st, err := os.Stat(l.path(k))
	if err != nil {
		t.Fatalf("lease vanished while held: %v", err)
	}
	if age := time.Since(st.ModTime()); age > l.ttl {
		t.Errorf("held lease looks stale (age %v > ttl %v); heartbeat not running", age, l.ttl)
	}
	if l.reapIfStale(context.Background(), l.path(k)) {
		t.Error("contender reaped a heartbeating lease")
	}
}

// TestLeaseReleaseRespectsTakeover: releasing after a contender took the
// lease over must not remove the contender's lease.
func TestLeaseReleaseRespectsTakeover(t *testing.T) {
	dir := t.TempDir()
	a := newLeases(dir, time.Hour)
	k := KeyOf("test", "release-owner")
	path := a.path(k)
	state, release := a.tryAcquire(context.Background(), k)
	if state != leaseWon {
		t.Fatalf("tryAcquire = %v, want leaseWon", state)
	}

	// Simulate a takeover: replace the record with another owner's.
	rec := leaseRecord{Owner: "otherhost:9:bb", PID: 9, Host: "otherhost", Start: time.Now()}
	data, _ := json.Marshal(rec)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	release()
	if _, err := os.Stat(path); err != nil {
		t.Error("release removed a lease it no longer owned")
	}
	os.Remove(path)
}

// TestLeaseWaitWinnerVanished: a waiting loser whose winner removed its
// lease without storing must re-contend (ok=false), not wait forever.
func TestLeaseWaitWinnerVanished(t *testing.T) {
	dir := t.TempDir()
	c := newLeasedCache(t, dir, time.Hour)
	l := c.leaseManager()
	k := KeyOf("test", "winner-vanished")
	// No lease on disk at all: wait must return immediately-ish.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, ok, err := l.wait(ctx, c, k, decodeInt)
	if err != nil || ok {
		t.Fatalf("wait = ok=%v err=%v, want re-contend (false, nil)", ok, err)
	}
}

// TestLeaseWaitReapsStaleWinner: a waiter polling a dead winner's lease
// takes it over after the TTL instead of deadlocking on it.
func TestLeaseWaitReapsStaleWinner(t *testing.T) {
	dir := t.TempDir()
	c := newLeasedCache(t, dir, 100*time.Millisecond)
	l := c.leaseManager()
	k := KeyOf("test", "stale-winner")
	writeStaleLease(t, l, k, time.Minute)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, ok, err := l.wait(ctx, c, k, decodeInt)
	if err != nil || ok {
		t.Fatalf("wait = ok=%v err=%v, want takeover re-contend (false, nil)", ok, err)
	}
	if _, err := os.Stat(l.path(k)); !os.IsNotExist(err) {
		t.Error("stale lease still present after wait's takeover")
	}
}

// TestLeaseWaitHonoursContext: a cancelled waiter returns the context
// error instead of polling on.
func TestLeaseWaitHonoursContext(t *testing.T) {
	dir := t.TempDir()
	c := newLeasedCache(t, dir, time.Hour)
	l := c.leaseManager()
	k := KeyOf("test", "wait-ctx")
	// A live (fresh) foreign lease, never released.
	other := newLeases(dir, time.Hour)
	if state, _ := other.tryAcquire(context.Background(), k); state != leaseWon {
		t.Fatal("setup: other manager could not acquire")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, ok, err := l.wait(ctx, c, k, decodeInt)
	if ok || err == nil {
		t.Fatalf("wait = ok=%v err=%v, want context error", ok, err)
	}
}

// deadPID returns the pid of a process that has definitely exited: the
// test binary itself, re-run with no tests selected.
func deadPID(t *testing.T) int {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no executable path:", err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	if err := cmd.Run(); err != nil {
		t.Skip("cannot re-exec test binary:", err)
	}
	return cmd.Process.Pid
}

// TestSweepCrashed: an explicit resume sweep reclaims expired leases,
// same-host dead-owner leases and temp files, while leaving a live
// owner's fresh lease alone.
func TestSweepCrashed(t *testing.T) {
	dir := t.TempDir()
	c := newLeasedCache(t, dir, time.Hour)
	l := c.leaseManager()

	stale := writeStaleLease(t, l, KeyOf("test", "sweep-stale"), 2*time.Hour)

	host, _ := os.Hostname()
	deadKey := KeyOf("test", "sweep-dead-pid")
	deadPath := l.path(deadKey)
	os.MkdirAll(filepath.Dir(deadPath), 0o755)
	rec := leaseRecord{Owner: "x", PID: deadPID(t), Host: host, Start: time.Now()}
	data, _ := json.Marshal(rec)
	if err := os.WriteFile(deadPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	liveKey := KeyOf("test", "sweep-live")
	if state, _ := l.tryAcquire(context.Background(), liveKey); state != leaseWon {
		t.Fatal("setup: could not acquire live lease")
	}
	livePath := l.path(liveKey)

	tmp := filepath.Join(dir, "ab", ".tmp-orphan")
	os.MkdirAll(filepath.Dir(tmp), 0o755)
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed := c.SweepCrashed(time.Hour)
	got := strings.Join(removed, "\n")
	for _, want := range []string{stale, deadPath, tmp} {
		if !strings.Contains(got, want) {
			t.Errorf("sweep did not reclaim %s (removed: %v)", want, removed)
		}
	}
	if _, err := os.Stat(livePath); err != nil {
		t.Errorf("sweep removed a live owner's lease: %v", err)
	}
}

// TestCachePutObstructedPaths: Put must fail loudly (and leave no
// debris) when the entry's path is physically blocked. Unlike the
// permission-based test below, obstructions bind even under root.
func TestCachePutObstructedPaths(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("test", "put-obstructed")
	path := c.path(k)

	// A regular file where the shard directory belongs: MkdirAll fails.
	shard := filepath.Dir(path)
	if err := os.WriteFile(shard, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), k, []byte("1")); err == nil {
		t.Error("Put with a file blocking the shard dir succeeded")
	}
	os.Remove(shard)

	// A directory where the entry belongs: the final rename fails.
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), k, []byte("1")); err == nil {
		t.Error("Put with a directory blocking the entry succeeded")
	}
	os.Remove(path)

	// Neither failure may leak temp files, and a clean Put recovers.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("obstructed Puts leaked temp files: %v", tmps)
	}
	if err := c.Put(context.Background(), k, []byte("4")); err != nil {
		t.Fatalf("Put after obstructions cleared: %v", err)
	}
	if v, ok := c.Get(context.Background(), k, decodeInt); !ok || v.(int) != 4 {
		t.Fatalf("Get after recovery = %v, %v", v, ok)
	}
}

// TestCachePutErrorPaths: Put must fail loudly (and leave no debris)
// when the cache directory cannot be written.
func TestCachePutErrorPaths(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; directory permissions are not enforced")
	}
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("test", "put-error")

	// Read-only cache root: the shard mkdir fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	if err := c.Put(context.Background(), k, []byte("1")); err == nil {
		t.Error("Put into a read-only cache dir succeeded")
	}
	os.Chmod(dir, 0o755)

	// Shard dir exists but is read-only: the temp create fails.
	shard := filepath.Dir(c.path(k))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(shard, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(shard, 0o755) })
	if err := c.Put(context.Background(), k, []byte("1")); err == nil {
		t.Error("Put into a read-only shard dir succeeded")
	}
	os.Chmod(shard, 0o755)

	// The failed Puts must not have leaked temp files.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("failed Puts leaked temp files: %v", tmps)
	}

	// And a clean Put still works afterwards.
	if err := c.Put(context.Background(), k, []byte("9")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if v, ok := c.Get(context.Background(), k, decodeInt); !ok || v.(int) != 9 {
		t.Fatalf("Get after recovery = %v, %v", v, ok)
	}
}
