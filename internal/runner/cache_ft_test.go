package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"splash2/internal/fault"
)

// TestCacheSurvivesGarbageDir fills a cache directory with every flavor
// of garbage a crashed or hostile environment can leave — stray files,
// directories where files belong, unreadable entries, binary junk at
// valid entry paths — and asserts a run over it is still correct.
func TestCacheSurvivesGarbageDir(t *testing.T) {
	dir := t.TempDir()

	// Garbage before the cache is even opened.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "zz", "not-a-file.json"), 0o755); err != nil {
		t.Fatal(err)
	}

	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf("garbage-test", fmt.Sprint(i))
	}
	// Valid entry paths holding binary junk.
	for _, k := range keys[:2] {
		hx := k.String()
		p := filepath.Join(dir, hx[:2], hx[2:]+".json")
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte{0x7f, 0x45, 0x4c, 0x46, 0x00}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unreadable entry (meaningless when running as root, which can
	// read anything regardless of mode bits).
	if os.Geteuid() != 0 {
		hx := keys[2].String()
		p := filepath.Join(dir, hx[:2], hx[2:]+".json")
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("{}"), 0o000); err != nil {
			t.Fatal(err)
		}
	}

	r := New(Options{Workers: 2, Cache: cache})
	g := r.NewGraph()
	jobs := make([]Job[int], len(keys))
	for i, k := range keys {
		i := i
		jobs[i] = Submit(g, Spec{Label: fmt.Sprintf("g-%d", i), Key: k},
			func(ctx context.Context) (int, error) { return i * 10, nil })
	}
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait over garbage cache: %v", err)
	}
	for i, j := range jobs {
		if v, err := j.Result(); err != nil || v != i*10 {
			t.Fatalf("job %d = %v, %v", i, v, err)
		}
	}
	if c := r.Counts(); c.CacheHits != 0 {
		t.Fatalf("garbage served as cache hits: %+v", c)
	}

	// The recomputed entries must now be stored and readable.
	r2 := New(Options{Cache: cache})
	g2 := r2.NewGraph()
	for i, k := range keys {
		i := i
		Submit(g2, Spec{Label: fmt.Sprintf("g-%d", i), Key: k},
			func(ctx context.Context) (int, error) {
				t.Errorf("job %d re-executed despite fresh cache entry", i)
				return 0, nil
			})
	}
	if err := g2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c := r2.Counts(); int(c.CacheHits) != len(keys) {
		t.Fatalf("second run cache hits = %d, want %d", c.CacheHits, len(keys))
	}
}

func TestOpenCacheSweepsStaleTmpFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, ".tmp-1234")
	fresh := filepath.Join(sub, ".tmp-5678")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh tmp file was swept (could belong to a live run): %v", err)
	}
}

func TestCacheFaultInjection(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("cache-fault", "entry")
	val, _ := json.Marshal(1234)
	if err := cache.Put(context.Background(), k, val); err != nil {
		t.Fatal(err)
	}
	decode := func(b []byte) (any, error) {
		var v int
		err := json.Unmarshal(b, &v)
		return v, err
	}
	if v, ok := cache.Get(context.Background(), k, decode); !ok || v != 1234 {
		t.Fatalf("clean Get = %v, %v", v, ok)
	}

	// Injected read error → miss.
	cache.SetFault(fault.New(1, fault.Rule{Pattern: "cache.get:*", Action: fault.Error, Nth: 1}))
	if _, ok := cache.Get(context.Background(), k, decode); ok {
		t.Fatal("faulted Get served a hit")
	}
	// Rule consumed (Nth=1): next Get sees the intact entry.
	if v, ok := cache.Get(context.Background(), k, decode); !ok || v != 1234 {
		t.Fatalf("post-fault Get = %v, %v", v, ok)
	}

	// Injected short read corrupts the envelope mid-flight → miss (and
	// the on-disk entry is dropped as damaged, so the next run recomputes).
	cache.SetFault(fault.New(1, fault.Rule{Pattern: "cache.get:*", Action: fault.ShortRead, Keep: 10}))
	if _, ok := cache.Get(context.Background(), k, decode); ok {
		t.Fatal("short-read Get served a hit")
	}

	// Injected put error is surfaced, not fatal.
	cache.SetFault(fault.New(1, fault.Rule{Pattern: "cache.put:*", Action: fault.Error}))
	if err := cache.Put(context.Background(), k, val); err == nil {
		t.Fatal("faulted Put succeeded")
	}
	// Injected put panic is recovered into an error.
	cache.SetFault(fault.New(1, fault.Rule{Pattern: "cache.put:*", Action: fault.Panic}))
	if err := cache.Put(context.Background(), k, val); err == nil {
		t.Fatal("panicking Put returned nil error")
	}
}

func TestCacheGetRecoversDecodePanic(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("cache-panic", "entry")
	val, _ := json.Marshal("boom")
	if err := cache.Put(context.Background(), k, val); err != nil {
		t.Fatal(err)
	}
	v, ok := cache.Get(context.Background(), k, func(b []byte) (any, error) { panic("decoder bug") })
	if ok || v != nil {
		t.Fatalf("panicking decode served a hit: %v", v)
	}
}
