package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"splash2/internal/fault"
)

func ftRunner(t *testing.T, opts Options) *Runner {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = time.Millisecond
	}
	return New(opts)
}

func TestPanicIsolatedFailFast(t *testing.T) {
	r := ftRunner(t, Options{})
	g := r.NewGraph()
	boom := Submit(g, Spec{Label: "boom"}, func(ctx context.Context) (int, error) {
		panic("kaboom")
	})
	err := g.Wait(context.Background())
	if err == nil {
		t.Fatal("Wait succeeded past a panicking job")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("Wait error %T is not a *JobError: %v", err, err)
	}
	if !je.Panicked || je.Label != "boom" {
		t.Fatalf("JobError = %+v", je)
	}
	if !strings.Contains(je.Stack, "goroutine") {
		t.Fatalf("JobError.Stack does not look like a stack:\n%s", je.Stack)
	}
	if !strings.Contains(je.Error(), "kaboom") {
		t.Fatalf("JobError message %q lost the panic value", je.Error())
	}
	if _, err := boom.Result(); err == nil {
		t.Fatal("panicked job's Result succeeded")
	}
	if c := r.Counts(); c.Failed != 1 {
		t.Fatalf("Counts.Failed = %d, want 1", c.Failed)
	}
}

func TestPanicKeepGoing(t *testing.T) {
	r := ftRunner(t, Options{KeepGoing: true})
	g := r.NewGraph()
	Submit(g, Spec{Label: "boom"}, func(ctx context.Context) (int, error) {
		panic("kaboom")
	})
	ok := Submit(g, Spec{Label: "survivor"}, func(ctx context.Context) (int, error) {
		return 42, nil
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("keep-going Wait failed: %v", err)
	}
	if v, err := ok.Result(); err != nil || v != 42 {
		t.Fatalf("survivor = %v, %v", v, err)
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Label != "boom" || !fails[0].Panicked {
		t.Fatalf("Failures() = %+v", fails)
	}
}

func TestTimeoutAbandonsWedgedJob(t *testing.T) {
	r := ftRunner(t, Options{Timeout: 30 * time.Millisecond, KeepGoing: true})
	g := r.NewGraph()
	released := make(chan struct{})
	wedged := Submit(g, Spec{Label: "wedged"}, func(ctx context.Context) (int, error) {
		<-released // ignores ctx entirely: a truly wedged job
		return 0, nil
	})
	ok := Submit(g, Spec{Label: "quick"}, func(ctx context.Context) (int, error) {
		return 7, nil
	})
	done := make(chan error, 1)
	go func() { done <- g.Wait(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung on a wedged job despite the timeout")
	}
	close(released)
	if _, err := wedged.Result(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("wedged job error = %v, want ErrTimeout", err)
	}
	var je *JobError
	if _, err := wedged.Result(); !errors.As(err, &je) || !je.TimedOut {
		t.Fatalf("wedged job error not a timed-out JobError: %v", err)
	}
	if v, err := ok.Result(); err != nil || v != 7 {
		t.Fatalf("quick job = %v, %v", v, err)
	}
	if c := r.Counts(); c.TimedOut != 1 || c.Failed != 1 {
		t.Fatalf("Counts = %+v", c)
	}
}

func TestRetryTransientRecovers(t *testing.T) {
	r := ftRunner(t, Options{Retries: 3})
	g := r.NewGraph()
	var calls atomic.Int64
	j := Submit(g, Spec{Label: "flaky"}, func(ctx context.Context) (int, error) {
		if calls.Add(1) < 3 {
			return 0, Transient(fmt.Errorf("flaky I/O"))
		}
		return 99, nil
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if v, err := j.Result(); err != nil || v != 99 {
		t.Fatalf("Result = %v, %v", v, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("job ran %d times, want 3", calls.Load())
	}
	if c := r.Counts(); c.Retried != 2 || c.Failed != 0 || c.Executed != 1 {
		t.Fatalf("Counts = %+v", c)
	}
}

func TestRetryExhausted(t *testing.T) {
	r := ftRunner(t, Options{Retries: 2})
	g := r.NewGraph()
	var calls atomic.Int64
	Submit(g, Spec{Label: "doomed"}, func(ctx context.Context) (int, error) {
		calls.Add(1)
		return 0, Transient(errors.New("still down"))
	})
	err := g.Wait(context.Background())
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("Wait error = %v", err)
	}
	if je.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", je.Attempts)
	}
	if calls.Load() != 3 {
		t.Fatalf("job ran %d times, want 3", calls.Load())
	}
	if c := r.Counts(); c.Retried != 2 || c.Failed != 1 {
		t.Fatalf("Counts = %+v", c)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	r := ftRunner(t, Options{Retries: 5})
	g := r.NewGraph()
	var calls atomic.Int64
	Submit(g, Spec{Label: "fatal"}, func(ctx context.Context) (int, error) {
		calls.Add(1)
		return 0, errors.New("permanent")
	})
	if err := g.Wait(context.Background()); err == nil {
		t.Fatal("Wait succeeded")
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent failure retried: %d calls", calls.Load())
	}
	if c := r.Counts(); c.Retried != 0 {
		t.Fatalf("Counts.Retried = %d, want 0", c.Retried)
	}
}

func TestKeepGoingSkipsDependents(t *testing.T) {
	r := ftRunner(t, Options{KeepGoing: true})
	g := r.NewGraph()
	bad := Submit(g, Spec{Label: "bad"}, func(ctx context.Context) (int, error) {
		return 0, errors.New("broken")
	})
	dep := Submit(g, Spec{Label: "dependent", Deps: []Handle{bad}}, func(ctx context.Context) (int, error) {
		t.Error("dependent of a failed job ran")
		return 0, nil
	})
	ok := Submit(g, Spec{Label: "independent"}, func(ctx context.Context) (int, error) {
		return 5, nil
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var je *JobError
	if _, err := dep.Result(); !errors.As(err, &je) || !je.Skipped {
		t.Fatalf("dependent error = %v, want skipped JobError", err)
	}
	if v, err := ok.Result(); err != nil || v != 5 {
		t.Fatalf("independent = %v, %v", v, err)
	}
	c := r.Counts()
	if c.Failed != 1 || c.Skipped != 1 {
		t.Fatalf("Counts = %+v", c)
	}
	fails := r.Failures()
	if len(fails) != 2 {
		t.Fatalf("Failures() has %d records, want 2: %+v", len(fails), fails)
	}
	labels := map[string]bool{}
	for _, f := range fails {
		labels[f.Label] = true
	}
	if !labels["bad"] || !labels["dependent"] {
		t.Fatalf("Failures() labels = %v", labels)
	}
}

func TestFaultInjectionAtJobPoint(t *testing.T) {
	inj := fault.New(3,
		fault.Rule{Pattern: "job:victim", Action: fault.Error},
		fault.Rule{Pattern: "job:flaky", Action: fault.Error, Transient: true, Nth: 1},
	)
	r := ftRunner(t, Options{KeepGoing: true, Retries: 2, Fault: inj})
	g := r.NewGraph()
	victim := Submit(g, Spec{Label: "victim"}, func(ctx context.Context) (int, error) {
		return 1, nil
	})
	flaky := Submit(g, Spec{Label: "flaky"}, func(ctx context.Context) (int, error) {
		return 2, nil
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var ie *fault.InjectedError
	if _, err := victim.Result(); !errors.As(err, &ie) {
		t.Fatalf("victim error = %v, want InjectedError", err)
	}
	// The transient injected error fires once (Nth: 1), then the retry
	// succeeds: fault-injected flakiness heals through the retry policy.
	if v, err := flaky.Result(); err != nil || v != 2 {
		t.Fatalf("flaky = %v, %v", v, err)
	}
	if c := r.Counts(); c.Retried != 1 || c.Failed != 1 {
		t.Fatalf("Counts = %+v", c)
	}
	if n := len(inj.Fired()); n != 2 {
		t.Fatalf("injector fired %d times, want 2", n)
	}
}

func TestInjectedPanicIsRecovered(t *testing.T) {
	inj := fault.New(9, fault.Rule{Pattern: "job:target", Action: fault.Panic})
	r := ftRunner(t, Options{KeepGoing: true, Fault: inj})
	g := r.NewGraph()
	target := Submit(g, Spec{Label: "target"}, func(ctx context.Context) (int, error) {
		return 1, nil
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var je *JobError
	if _, err := target.Result(); !errors.As(err, &je) || !je.Panicked {
		t.Fatalf("target error = %v, want panicked JobError", err)
	}
}

// TestCancellationNoGoroutineLeak cancels mid-graph and asserts the pool
// drains promptly, no goroutines leak, and the on-disk cache stays
// consistent (only completed jobs are stored, with valid entries).
func TestCancellationNoGoroutineLeak(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	r := ftRunner(t, Options{Workers: 4, Cache: cache})
	g := r.NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	for i := 0; i < 32; i++ {
		i := i
		Submit(g, Spec{Label: fmt.Sprintf("slow-%d", i), Key: KeyOf("leaktest", fmt.Sprint(i))},
			func(ctx context.Context) (int, error) {
				started <- struct{}{}
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(10 * time.Second):
					return i, nil
				}
			})
	}
	go func() {
		<-started
		cancel()
	}()
	waitDone := make(chan error, 1)
	go func() { waitDone <- g.Wait(ctx) }()
	select {
	case err := <-waitDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return promptly after cancellation")
	}
	if c := r.Counts(); c.Failed != 0 {
		t.Fatalf("cancellation recorded failures: %+v", c)
	}
	if fails := r.Failures(); len(fails) != 0 {
		t.Fatalf("cancellation produced failure records: %+v", fails)
	}

	// Goroutine count must settle back to the baseline (small slack for
	// runtime housekeeping goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Cache consistency: every stored entry must decode, and no tmp files
	// may remain.
	entries := 0
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.Contains(info.Name(), ".tmp") {
			return fmt.Errorf("stale tmp file left behind: %s", path)
		}
		entries++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r2 := ftRunner(t, Options{Cache: cache})
	g2 := r2.NewGraph()
	for i := 0; i < 32; i++ {
		i := i
		Submit(g2, Spec{Label: fmt.Sprintf("slow-%d", i), Key: KeyOf("leaktest", fmt.Sprint(i))},
			func(ctx context.Context) (int, error) { return i, nil })
	}
	if err := g2.Wait(context.Background()); err != nil {
		t.Fatalf("post-cancel rerun: %v", err)
	}
	c2 := r2.Counts()
	if int(c2.CacheHits) != entries {
		t.Fatalf("rerun served %d cache hits, disk holds %d entries", c2.CacheHits, entries)
	}
}
