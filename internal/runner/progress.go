package runner

import (
	"fmt"
	"io"
	"sync"
)

// ProgressEvent is one structured scheduling notification: a job
// completing (successfully or not) or the end-of-graph summary. Events
// are the machine-readable form of the Options.Progress lines; splashd
// forwards them to streaming clients as server-sent events.
type ProgressEvent struct {
	// Status is "done", "failed" or "skipped" for per-job events, and
	// "summary" for the end-of-graph report.
	Status string `json:"status"`
	// Label identifies the job ("" on summary events).
	Label string `json:"label,omitempty"`
	// Done and Total count the jobs this graph had to execute (cache and
	// memo hits are excluded; they appear in the summary as Served).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cause carries the failure text ("failed") or the name of the failed
	// dependency ("skipped").
	Cause string `json:"cause,omitempty"`

	// Summary-only fields: total jobs in the graph (served included),
	// how many executed, how many were served from cache/memo, and the
	// failure/skip counts of a keep-going graph.
	Jobs     int `json:"jobs,omitempty"`
	Executed int `json:"executed,omitempty"`
	Served   int `json:"served,omitempty"`
	Failed   int `json:"failed,omitempty"`
	Skipped  int `json:"skipped,omitempty"`
}

// ProgressFunc receives progress events. Calls are serialized (one event
// at a time, in completion order) and made from worker goroutines, so a
// sink must be fast and must not block — buffer or drop instead.
type ProgressFunc func(ProgressEvent)

// progress fans one graph's completion notifications out to the
// configured line writer (normally stderr) and event sinks. Only
// executed jobs are reported; cache and memo hits appear in the summary
// instead. The mutex serializes both the writer and the sinks, so
// subscribers observe events in completion order.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	fns   []ProgressFunc
	total int
	done  int
}

func newProgress(w io.Writer, fns []ProgressFunc, total int) *progress {
	return &progress{w: w, fns: fns, total: total}
}

// emit dispatches ev to every sink; the caller holds p.mu.
func (p *progress) emit(ev ProgressEvent) {
	for _, fn := range p.fns {
		fn(ev)
	}
}

func (p *progress) jobDone(label string) {
	if p.w == nil && len(p.fns) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.w != nil {
		fmt.Fprintf(p.w, "[%d/%d] %s\n", p.done, p.total, label)
	}
	p.emit(ProgressEvent{Status: "done", Label: label, Done: p.done, Total: p.total})
}

// jobFailed reports a job that exhausted its attempts; the cause is the
// failure text without the label prefix.
func (p *progress) jobFailed(label, cause string) {
	if p.w == nil && len(p.fns) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.w != nil {
		fmt.Fprintf(p.w, "[%d/%d] FAIL %s: %s\n", p.done, p.total, label, cause)
	}
	p.emit(ProgressEvent{Status: "failed", Label: label, Done: p.done, Total: p.total, Cause: cause})
}

// jobSkipped reports a job never run because dependency dep failed
// (keep-going mode only).
func (p *progress) jobSkipped(label, dep string) {
	if p.w == nil && len(p.fns) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.w != nil {
		fmt.Fprintf(p.w, "[%d/%d] SKIP %s (dependency %s failed)\n", p.done, p.total, label, dep)
	}
	p.emit(ProgressEvent{Status: "skipped", Label: label, Done: p.done, Total: p.total, Cause: dep})
}

// summary emits the per-graph report line and event. needed is how many
// jobs the graph had to run (failures included); the rest were served
// from the cache or the memo.
func (p *progress) summary(jobs, needed, executed, failed, skipped, workers int) {
	if p.w == nil && len(p.fns) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	served := jobs - needed
	if p.w != nil {
		fmt.Fprintf(p.w, "runner: %d jobs — %d executed, %d served from cache/memo (workers=%d)",
			jobs, executed, served, workers)
		if failed > 0 || skipped > 0 {
			fmt.Fprintf(p.w, "; %d failed, %d skipped", failed, skipped)
		}
		fmt.Fprintln(p.w)
	}
	p.emit(ProgressEvent{
		Status: "summary", Done: p.done, Total: p.total,
		Jobs: jobs, Executed: executed, Served: served, Failed: failed, Skipped: skipped,
	})
}
