package runner

import (
	"fmt"
	"io"
	"sync"
)

// progress serializes live per-job completion lines onto one writer
// (normally stderr). Only executed jobs are reported; cache and memo
// hits appear in the graph summary instead.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
}

func newProgress(w io.Writer, total int) *progress {
	return &progress{w: w, total: total}
}

func (p *progress) jobDone(label string) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "[%d/%d] %s\n", p.done, p.total, label)
}

// jobFailed reports a job that exhausted its attempts; the cause is the
// failure text without the label prefix.
func (p *progress) jobFailed(label, cause string) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "[%d/%d] FAIL %s: %s\n", p.done, p.total, label, cause)
}

// jobSkipped reports a job never run because dependency dep failed
// (keep-going mode only).
func (p *progress) jobSkipped(label, dep string) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "[%d/%d] SKIP %s (dependency %s failed)\n", p.done, p.total, label, dep)
}
