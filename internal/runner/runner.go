// Package runner is the parallel experiment scheduler behind the
// characterization engine. The paper's methodology (§5) is an
// embarrassingly parallel grid of independent experiments — programs ×
// processor counts × cache sizes × associativities × line sizes — and
// every experiment is deterministic under PRAM timing, so scheduling
// order cannot change results. The runner exploits both properties:
//
//   - a job model with explicit dependencies, so a Figure-3 sweep is one
//     lazy `record` job feeding N `replay` jobs off a shared trace
//     instead of N full re-executions;
//   - a worker pool (default runtime.GOMAXPROCS) with context
//     cancellation, fail-fast error propagation, and live progress
//     reporting;
//   - a content-addressed result store: an in-memory memo deduplicates
//     identical experiments within a run (Table 1 and Figure 2 share
//     executions; Table 3 reuses Figure 4's points), and an optional
//     on-disk cache (Cache) makes re-running a characterization after
//     changing one flag compute only the delta.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a Runner.
type Options struct {
	// Workers is the number of jobs executed concurrently; ≤ 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache is the on-disk result store; nil disables it.
	Cache *Cache
	// Progress receives one line per executed job plus a per-graph
	// summary; nil disables reporting.
	Progress io.Writer
}

// Counts reports what a Runner has done so far.
type Counts struct {
	// Submitted counts jobs submitted across all graphs, after key
	// deduplication.
	Submitted int64
	// Executed counts jobs whose function actually ran.
	Executed int64
	// CacheHits counts jobs served from the on-disk cache.
	CacheHits int64
	// MemoHits counts jobs served from the in-memory memo.
	MemoHits int64
}

// Runner schedules experiment graphs. It may run many graphs
// sequentially; completed results are memoized across graphs, so a trace
// recorded for Figure 3 is reused by the Figure 7–8 sweep.
type Runner struct {
	opts Options

	memoMu sync.Mutex
	memo   map[Key]any

	submitted, executed, cacheHits, memoHits atomic.Int64
}

// New creates a Runner.
func New(opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{opts: opts, memo: map[Key]any{}}
}

// Workers returns the configured parallelism.
func (r *Runner) Workers() int { return r.opts.Workers }

// Counts returns cumulative scheduling counters.
func (r *Runner) Counts() Counts {
	return Counts{
		Submitted: r.submitted.Load(),
		Executed:  r.executed.Load(),
		CacheHits: r.cacheHits.Load(),
		MemoHits:  r.memoHits.Load(),
	}
}

func (r *Runner) memoGet(k Key) (any, bool) {
	r.memoMu.Lock()
	defer r.memoMu.Unlock()
	v, ok := r.memo[k]
	return v, ok
}

func (r *Runner) memoPut(k Key, v any) {
	r.memoMu.Lock()
	r.memo[k] = v
	r.memoMu.Unlock()
}

// job is the untyped scheduling unit.
type job struct {
	label   string
	key     Key
	lazy    bool
	noStore bool
	deps    []*job
	run     func(ctx context.Context) (any, error)
	decode  func([]byte) (any, error)

	done   chan struct{} // closed on completion
	result any
	err    error

	visited bool // resolve-phase mark
}

func (j *job) complete(v any, err error) {
	j.result, j.err = v, err
	close(j.done)
}

func (j *job) isDone() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Handle is the untyped view of a submitted job, used to declare
// dependencies.
type Handle interface{ raw() *job }

// Job is a typed handle on a submitted job.
type Job[T any] struct{ j *job }

func (h Job[T]) raw() *job { return h.j }

// Result returns the job's value after its graph completed. Calling it
// on an incomplete job (before Wait, or after a failed Wait) returns an
// error rather than blocking.
func (h Job[T]) Result() (T, error) {
	var zero T
	if h.j == nil {
		return zero, fmt.Errorf("runner: nil job")
	}
	if !h.j.isDone() {
		return zero, fmt.Errorf("runner: job %q has not completed", h.j.label)
	}
	if h.j.err != nil {
		return zero, h.j.err
	}
	v, ok := h.j.result.(T)
	if !ok {
		return zero, fmt.Errorf("runner: job %q holds %T, want %T", h.j.label, h.j.result, zero)
	}
	return v, nil
}

// Spec describes a job being submitted.
type Spec struct {
	// Label identifies the job in progress output and errors.
	Label string
	// Key is the job's content address; the zero Key disables caching,
	// memoization and deduplication for this job.
	Key Key
	// Lazy jobs run only when a needed job depends on them — e.g. a trace
	// `record` job that is skipped entirely when every dependent `replay`
	// is served from the cache.
	Lazy bool
	// NoStore keeps the result out of the on-disk cache (it is still
	// memoized in memory and deduplicated). Used for traces, which are
	// too large to persist per configuration.
	NoStore bool
	// Deps must complete before this job runs. They must belong to the
	// same graph or already be complete.
	Deps []Handle
}

// Graph is one batch of jobs executed by a single Wait call.
type Graph struct {
	r  *Runner
	mu sync.Mutex

	jobs   []*job
	byKey  map[Key]*job
	waited bool
	err    error
}

// NewGraph starts an empty job graph.
func (r *Runner) NewGraph() *Graph {
	return &Graph{r: r, byKey: map[Key]*job{}}
}

// Submit adds a job to the graph and returns its handle. Submitting a
// key already present in the graph returns the existing job; a key whose
// result is memoized from an earlier graph completes immediately.
func Submit[T any](g *Graph, spec Spec, run func(ctx context.Context) (T, error)) Job[T] {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.waited {
		panic("runner: Submit after Wait")
	}
	if !spec.Key.IsZero() {
		if j, ok := g.byKey[spec.Key]; ok {
			return Job[T]{j}
		}
	}
	if spec.Label == "" && !spec.Key.IsZero() {
		spec.Label = spec.Key.String()[:12]
	}
	j := &job{
		label:   spec.Label,
		key:     spec.Key,
		lazy:    spec.Lazy,
		noStore: spec.NoStore,
		done:    make(chan struct{}),
		run: func(ctx context.Context) (any, error) {
			return run(ctx)
		},
		decode: func(b []byte) (any, error) {
			var v T
			err := json.Unmarshal(b, &v)
			return v, err
		},
	}
	for _, d := range spec.Deps {
		j.deps = append(j.deps, d.raw())
	}
	g.r.submitted.Add(1)
	if !spec.Key.IsZero() {
		g.byKey[spec.Key] = j
		if v, ok := g.r.memoGet(spec.Key); ok {
			g.r.memoHits.Add(1)
			j.complete(v, nil)
		}
	}
	g.jobs = append(g.jobs, j)
	return Job[T]{j}
}

// Wait resolves the graph (probing the cache for every demanded job,
// skipping lazy jobs nobody needs) and executes the remainder on the
// worker pool. The first job error cancels everything in flight and is
// returned; ctx cancellation behaves the same way. Wait is idempotent:
// repeated calls return the first outcome.
func (g *Graph) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.waited {
		defer g.mu.Unlock()
		return g.err
	}
	g.waited = true
	need := g.resolve()
	g.mu.Unlock()

	g.err = g.execute(ctx, need)
	return g.err
}

// resolve walks from the demanded (non-lazy, incomplete) jobs, probing
// the on-disk cache, and returns the jobs that must execute. A cache hit
// stops the walk, so the dependencies of fully-cached sweeps are never
// demanded.
func (g *Graph) resolve() []*job {
	var need []*job
	var visit func(j *job)
	visit = func(j *job) {
		if j.visited {
			return
		}
		j.visited = true
		if j.isDone() {
			return
		}
		if !j.noStore && g.r.opts.Cache != nil && !j.key.IsZero() {
			if v, ok := g.r.opts.Cache.Get(j.key, j.decode); ok {
				g.r.cacheHits.Add(1)
				g.r.memoPut(j.key, v)
				j.complete(v, nil)
				return
			}
		}
		need = append(need, j)
		for _, d := range j.deps {
			visit(d)
		}
	}
	for _, j := range g.jobs {
		if !j.lazy {
			visit(j)
		}
	}
	return need
}

// execute runs the needed jobs: one goroutine per job waiting on its
// dependencies, gated by a semaphore of Workers slots.
func (g *Graph) execute(parent context.Context, need []*job) error {
	if len(need) == 0 {
		g.report(0, 0)
		return parent.Err()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
		fail     = func(err error) {
			errOnce.Do(func() {
				firstErr = err
				cancel()
			})
		}
		sem      = make(chan struct{}, g.r.opts.Workers)
		wg       sync.WaitGroup
		executed atomic.Int64
	)
	prog := newProgress(g.r.opts.Progress, len(need))
	for _, j := range need {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			for _, d := range j.deps {
				select {
				case <-d.done:
					if d.err != nil {
						j.complete(nil, fmt.Errorf("dependency %s: %w", d.label, d.err))
						return
					}
				case <-ctx.Done():
					j.complete(nil, ctx.Err())
					return
				}
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				j.complete(nil, ctx.Err())
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				j.complete(nil, ctx.Err())
				return
			}
			v, err := j.run(ctx)
			g.r.executed.Add(1)
			executed.Add(1)
			if err != nil {
				j.complete(nil, fmt.Errorf("%s: %w", j.label, err))
				fail(j.err)
				return
			}
			j.complete(v, nil)
			if !j.key.IsZero() {
				g.r.memoPut(j.key, v)
				if !j.noStore && g.r.opts.Cache != nil {
					if data, err := json.Marshal(v); err == nil {
						g.r.opts.Cache.Put(j.key, data) // best-effort
					}
				}
			}
			prog.jobDone(j.label)
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := parent.Err(); err != nil {
		return err
	}
	g.report(len(need), int(executed.Load()))
	return nil
}

// report emits the per-graph summary line.
func (g *Graph) report(needed, executed int) {
	w := g.r.opts.Progress
	if w == nil {
		return
	}
	served := len(g.jobs) - needed
	fmt.Fprintf(w, "runner: %d jobs — %d executed, %d served from cache/memo (workers=%d)\n",
		len(g.jobs), executed, served, g.r.opts.Workers)
}
