// Package runner is the parallel experiment scheduler behind the
// characterization engine. The paper's methodology (§5) is an
// embarrassingly parallel grid of independent experiments — programs ×
// processor counts × cache sizes × associativities × line sizes — and
// every experiment is deterministic under PRAM timing, so scheduling
// order cannot change results. The runner exploits both properties:
//
//   - a job model with explicit dependencies, so a Figure-3 sweep is one
//     lazy `record` job feeding N `replay` jobs off a shared trace
//     instead of N full re-executions;
//   - a worker pool (default runtime.GOMAXPROCS) with context
//     cancellation, fail-fast error propagation, and live progress
//     reporting;
//   - a content-addressed result store: an in-memory memo deduplicates
//     identical experiments within a run (Table 1 and Figure 2 share
//     executions; Table 3 reuses Figure 4's points), and an optional
//     on-disk cache (Cache) makes re-running a characterization after
//     changing one flag compute only the delta.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"splash2/internal/fault"
)

// Options configures a Runner.
type Options struct {
	// Workers is the number of jobs executed concurrently; ≤ 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache is the on-disk result store; nil disables it.
	Cache *Cache
	// Progress receives one line per executed job plus a per-graph
	// summary; nil disables reporting.
	Progress io.Writer
	// OnProgress receives the structured form of the Progress lines for
	// every graph; nil disables it. Per-graph sinks are added with
	// Graph.OnProgress (splashd streams one request's events without
	// seeing its neighbours').
	OnProgress ProgressFunc

	// KeepGoing runs graphs to completion past failed jobs instead of
	// failing fast: dependents of a failure are skipped (completing with
	// a Skipped JobError), every failure is recorded for Failures(), and
	// Wait returns nil unless the context was cancelled. Callers then
	// inspect per-job errors and degrade their output.
	KeepGoing bool
	// Timeout bounds each job attempt; 0 disables. A timed-out attempt
	// is abandoned (its goroutine runs on until it observes its context)
	// and the job fails with ErrTimeout, so a wedged job cannot hang the
	// pool.
	Timeout time.Duration
	// Retries is the number of extra attempts granted to jobs that
	// report transient failures (see Transient); 0 disables retry.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent retry; ≤ 0 selects 50ms.
	RetryBackoff time.Duration
	// Fault is the deterministic fault injector threaded through job
	// execution and cache I/O; nil disables injection.
	Fault *fault.Injector
	// Journal is the durable run journal receiving job lifecycle events;
	// nil disables journaling.
	Journal *Journal
}

// Counts reports what a Runner has done so far.
type Counts struct {
	// Submitted counts jobs submitted across all graphs, after key
	// deduplication.
	Submitted int64
	// Executed counts jobs whose function actually ran.
	Executed int64
	// CacheHits counts jobs served from the on-disk cache.
	CacheHits int64
	// MemoHits counts jobs served from the in-memory memo.
	MemoHits int64
	// Retried counts extra attempts after transient failures.
	Retried int64
	// Failed counts jobs that exhausted their attempts (panics and
	// timeouts included).
	Failed int64
	// Skipped counts jobs never run because a dependency failed.
	Skipped int64
	// TimedOut counts attempts abandoned at the job timeout.
	TimedOut int64
	// LeaseAcquired counts jobs executed under a held cross-process
	// lease (leases enabled, this process won the key).
	LeaseAcquired int64
	// LeaseShared counts jobs satisfied by another process's result:
	// this process lost the lease race and read the winner's cache
	// entry instead of recomputing.
	LeaseShared int64
	// LeaseTakeovers counts stale leases reclaimed from dead processes.
	LeaseTakeovers int64
}

// Runner schedules experiment graphs. It may run many graphs
// sequentially or concurrently; completed results are memoized across
// graphs, so a trace recorded for Figure 3 is reused by the Figure 7–8
// sweep, and a long-running Runner (splashd) keeps every completed
// experiment warm for later requests.
//
// A Runner is safe for concurrent use: many goroutines may build and
// Wait on independent graphs at once. All graphs share one worker pool
// (the Workers semaphore), one memo, one cache and one set of counters;
// memoized result values are shared by reference across graphs and must
// be treated as immutable by every consumer.
type Runner struct {
	opts Options
	// sem is the worker pool shared by every graph: concurrent graphs
	// multiplex the same Workers slots instead of multiplying them, so a
	// daemon running many requests at once cannot oversubscribe the host.
	// Jobs acquire a slot only when their dependencies are complete, so
	// the shared semaphore cannot deadlock a dependency chain.
	sem chan struct{}

	memoMu sync.Mutex
	memo   map[Key]any

	failMu       sync.Mutex
	failures     []*JobError
	failuresLost int64

	submitted, executed, cacheHits, memoHits   atomic.Int64
	retried, failed, skipped, timedOut         atomic.Int64
	leaseAcquired, leaseShared, leaseTakeovers atomic.Int64
}

// New creates a Runner.
func New(opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	r := &Runner{
		opts: opts,
		sem:  make(chan struct{}, opts.Workers),
		memo: map[Key]any{},
	}
	if ls := opts.Cache.leaseManager(); ls != nil {
		ls.takeovers = func(ctx context.Context, key string) {
			r.leaseTakeovers.Add(1)
			r.opts.Journal.LeaseTakeover(ctx, key)
		}
	}
	return r
}

// Workers returns the configured parallelism.
func (r *Runner) Workers() int { return r.opts.Workers }

// Counts returns cumulative scheduling counters.
func (r *Runner) Counts() Counts {
	return Counts{
		Submitted: r.submitted.Load(),
		Executed:  r.executed.Load(),
		CacheHits: r.cacheHits.Load(),
		MemoHits:  r.memoHits.Load(),
		Retried:   r.retried.Load(),
		Failed:    r.failed.Load(),
		Skipped:   r.skipped.Load(),
		TimedOut:  r.timedOut.Load(),

		LeaseAcquired:  r.leaseAcquired.Load(),
		LeaseShared:    r.leaseShared.Load(),
		LeaseTakeovers: r.leaseTakeovers.Load(),
	}
}

// maxFailureLog bounds the runner-wide failure log: a long-running
// engine (splashd) serving failing requests for days must not grow it
// without bound. Per-graph logs (Graph.Failures) are bounded by graph
// size and are what request-scoped manifests read; overflow here loses
// only the global log's tail, counted by MemoStats.FailuresLost.
const maxFailureLog = 4096

// Failures returns every failed and skipped job recorded so far, in
// completion order — the raw material of the failure manifest. The log
// is capped at maxFailureLog entries; per-request manifests should use
// Graph.Failures, which has no cap.
func (r *Runner) Failures() []*JobError {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	return append([]*JobError(nil), r.failures...)
}

func (r *Runner) recordFailure(g *Graph, je *JobError) {
	r.failMu.Lock()
	if len(r.failures) < maxFailureLog {
		r.failures = append(r.failures, je)
	} else {
		r.failuresLost++
	}
	r.failMu.Unlock()
	g.recordFailure(je)
}

// MemoStats reports the size of the Runner's long-lived state, for a
// daemon's metrics endpoint: memoized results held in memory, failure
// log length, and failures dropped past the log cap.
type MemoStats struct {
	MemoEntries  int   `json:"memoEntries"`
	FailureLog   int   `json:"failureLog"`
	FailuresLost int64 `json:"failuresLost"`
}

// MemoStats returns the current long-lived state sizes.
func (r *Runner) MemoStats() MemoStats {
	r.memoMu.Lock()
	entries := len(r.memo)
	r.memoMu.Unlock()
	r.failMu.Lock()
	defer r.failMu.Unlock()
	return MemoStats{MemoEntries: entries, FailureLog: len(r.failures), FailuresLost: r.failuresLost}
}

func (r *Runner) memoGet(k Key) (any, bool) {
	r.memoMu.Lock()
	defer r.memoMu.Unlock()
	v, ok := r.memo[k]
	return v, ok
}

func (r *Runner) memoPut(k Key, v any) {
	r.memoMu.Lock()
	r.memo[k] = v
	r.memoMu.Unlock()
}

// job is the untyped scheduling unit.
type job struct {
	label   string
	key     Key
	lazy    bool
	noStore bool
	deps    []*job
	run     func(ctx context.Context) (any, error)
	decode  func([]byte) (any, error)

	done   chan struct{} // closed on completion
	result any
	err    error

	visited  bool // resolve-phase mark
	attempts int  // attempts consumed (written by the scheduler only)
}

func (j *job) complete(v any, err error) {
	j.result, j.err = v, err
	close(j.done)
}

func (j *job) isDone() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Handle is the untyped view of a submitted job, used to declare
// dependencies.
type Handle interface{ raw() *job }

// Job is a typed handle on a submitted job.
type Job[T any] struct{ j *job }

func (h Job[T]) raw() *job { return h.j }

// Result returns the job's value after its graph completed. Calling it
// on an incomplete job (before Wait, or after a failed Wait) returns an
// error rather than blocking.
func (h Job[T]) Result() (T, error) {
	var zero T
	if h.j == nil {
		return zero, fmt.Errorf("runner: nil job")
	}
	if !h.j.isDone() {
		return zero, fmt.Errorf("runner: job %q has not completed", h.j.label)
	}
	if h.j.err != nil {
		return zero, h.j.err
	}
	v, ok := h.j.result.(T)
	if !ok {
		return zero, fmt.Errorf("runner: job %q holds %T, want %T", h.j.label, h.j.result, zero)
	}
	return v, nil
}

// Spec describes a job being submitted.
type Spec struct {
	// Label identifies the job in progress output and errors.
	Label string
	// Key is the job's content address; the zero Key disables caching,
	// memoization and deduplication for this job.
	Key Key
	// Lazy jobs run only when a needed job depends on them — e.g. a trace
	// `record` job that is skipped entirely when every dependent `replay`
	// is served from the cache.
	Lazy bool
	// NoStore keeps the result out of the on-disk cache (it is still
	// memoized in memory and deduplicated). Used for traces, which are
	// too large to persist per configuration.
	NoStore bool
	// Deps must complete before this job runs. They must belong to the
	// same graph or already be complete.
	Deps []Handle
}

// Graph is one batch of jobs executed by a single Wait call. Concurrent
// graphs on one Runner execute independently — sharing the worker pool,
// memo and cache, but with per-graph failure policy, failure log and
// progress sinks — which is how splashd isolates requests on a shared
// engine.
type Graph struct {
	r  *Runner
	mu sync.Mutex

	jobs      []*job
	byKey     map[Key]*job
	waited    bool
	err       error
	keepGoing bool
	fns       []ProgressFunc

	failMu   sync.Mutex
	failures []*JobError
}

// NewGraph starts an empty job graph with the Runner's failure policy
// and progress sinks.
func (r *Runner) NewGraph() *Graph {
	g := &Graph{r: r, byKey: map[Key]*job{}, keepGoing: r.opts.KeepGoing}
	if r.opts.OnProgress != nil {
		g.fns = append(g.fns, r.opts.OnProgress)
	}
	return g
}

// SetKeepGoing overrides the Runner's KeepGoing policy for this graph:
// a request-scoped graph can run to completion past failures (its
// dependents skipped, failures recorded for Failures) while the engine's
// other graphs stay fail-fast, and vice versa. Must be called before
// Wait.
func (g *Graph) SetKeepGoing(keep bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.waited {
		panic("runner: SetKeepGoing after Wait")
	}
	g.keepGoing = keep
}

// OnProgress adds a progress sink observing only this graph's events
// (see ProgressFunc for the delivery contract). Must be called before
// Wait.
func (g *Graph) OnProgress(fn ProgressFunc) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.waited {
		panic("runner: OnProgress after Wait")
	}
	if fn != nil {
		g.fns = append(g.fns, fn)
	}
}

// Failures returns the failed and skipped jobs of this graph alone, in
// completion order — the per-request twin of Runner.Failures, with no
// log cap.
func (g *Graph) Failures() []*JobError {
	g.failMu.Lock()
	defer g.failMu.Unlock()
	return append([]*JobError(nil), g.failures...)
}

func (g *Graph) recordFailure(je *JobError) {
	g.failMu.Lock()
	g.failures = append(g.failures, je)
	g.failMu.Unlock()
}

// Submit adds a job to the graph and returns its handle. Submitting a
// key already present in the graph returns the existing job; a key whose
// result is memoized from an earlier graph completes immediately.
func Submit[T any](g *Graph, spec Spec, run func(ctx context.Context) (T, error)) Job[T] {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.waited {
		panic("runner: Submit after Wait")
	}
	if !spec.Key.IsZero() {
		if j, ok := g.byKey[spec.Key]; ok {
			return Job[T]{j}
		}
	}
	if spec.Label == "" && !spec.Key.IsZero() {
		spec.Label = spec.Key.String()[:12]
	}
	j := &job{
		label:   spec.Label,
		key:     spec.Key,
		lazy:    spec.Lazy,
		noStore: spec.NoStore,
		done:    make(chan struct{}),
		run: func(ctx context.Context) (any, error) {
			return run(ctx)
		},
		decode: func(b []byte) (any, error) {
			var v T
			err := json.Unmarshal(b, &v)
			return v, err
		},
	}
	for _, d := range spec.Deps {
		j.deps = append(j.deps, d.raw())
	}
	g.r.submitted.Add(1)
	if !spec.Key.IsZero() {
		g.byKey[spec.Key] = j
		if v, ok := g.r.memoGet(spec.Key); ok {
			g.r.memoHits.Add(1)
			j.complete(v, nil)
		}
	}
	g.jobs = append(g.jobs, j)
	return Job[T]{j}
}

// Wait resolves the graph (probing the cache for every demanded job,
// skipping lazy jobs nobody needs) and executes the remainder on the
// worker pool. The first job error cancels everything in flight and is
// returned; ctx cancellation behaves the same way. Wait is idempotent:
// repeated calls return the first outcome.
func (g *Graph) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.waited {
		defer g.mu.Unlock()
		return g.err
	}
	g.waited = true
	need := g.resolve(ctx)
	g.mu.Unlock()

	g.err = g.execute(ctx, need)
	return g.err
}

// resolve walks from the demanded (non-lazy, incomplete) jobs, probing
// the on-disk cache, and returns the jobs that must execute. A cache hit
// stops the walk, so the dependencies of fully-cached sweeps are never
// demanded.
func (g *Graph) resolve(ctx context.Context) []*job {
	var need []*job
	var visit func(j *job)
	visit = func(j *job) {
		if j.visited {
			return
		}
		j.visited = true
		if j.isDone() {
			return
		}
		if !j.noStore && g.r.opts.Cache != nil && !j.key.IsZero() {
			if v, ok := g.r.opts.Cache.Get(ctx, j.key, j.decode); ok {
				g.r.cacheHits.Add(1)
				g.r.memoPut(j.key, v)
				j.complete(v, nil)
				return
			}
		}
		need = append(need, j)
		for _, d := range j.deps {
			visit(d)
		}
	}
	for _, j := range g.jobs {
		if !j.lazy {
			visit(j)
		}
	}
	return need
}

// execute runs the needed jobs: one goroutine per job waiting on its
// dependencies, gated by the Runner-wide semaphore of Workers slots
// (shared with every other graph in flight). Each job runs through
// attempt (panic recovery, timeout, transient retry); under the graph's
// keep-going policy a failure is recorded and its dependents are skipped
// instead of cancelling the graph.
func (g *Graph) execute(parent context.Context, need []*job) error {
	if len(need) == 0 {
		newProgress(g.r.opts.Progress, g.fns, 0).summary(len(g.jobs), 0, 0, 0, 0, g.r.opts.Workers)
		return parent.Err()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
		fail     = func(err error) {
			errOnce.Do(func() {
				firstErr = err
				cancel()
			})
		}
		sem                       = g.r.sem
		wg                        sync.WaitGroup
		executed, failed, skipped atomic.Int64
	)
	keep := g.keepGoing
	prog := newProgress(g.r.opts.Progress, g.fns, len(need))
	for _, j := range need {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			for _, d := range j.deps {
				select {
				case <-d.done:
					if d.err != nil {
						if !keep {
							j.complete(nil, fmt.Errorf("dependency %s: %w", d.label, d.err))
							return
						}
						if ctx.Err() != nil {
							// The graph is being cancelled; a dependency
							// completing with the cancellation error is not
							// a failure to record.
							j.complete(nil, ctx.Err())
							return
						}
						je := &JobError{
							Label:   j.label,
							Key:     keyStr(j.key),
							Skipped: true,
							Err:     fmt.Errorf("dependency %s: %w", d.label, d.err),
						}
						g.r.skipped.Add(1)
						skipped.Add(1)
						g.r.recordFailure(g, je)
						g.r.opts.Journal.JobFail(ctx, je)
						prog.jobSkipped(j.label, d.label)
						j.complete(nil, je)
						return
					}
				case <-ctx.Done():
					j.complete(nil, ctx.Err())
					return
				}
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				j.complete(nil, ctx.Err())
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				j.complete(nil, ctx.Err())
				return
			}
			g.r.opts.Journal.JobStart(ctx, j.label, keyStr(j.key))
			v, shared, err := g.runLeased(ctx, j)
			g.r.executed.Add(1)
			executed.Add(1)
			if err != nil {
				if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
					// Cancellation, not a job fault: complete without
					// recording a failure.
					j.complete(nil, err)
					return
				}
				je := asJobError(j, err)
				g.r.failed.Add(1)
				failed.Add(1)
				g.r.recordFailure(g, je)
				g.r.opts.Journal.JobFail(ctx, je)
				prog.jobFailed(j.label, je.Cause())
				j.complete(nil, je)
				if !keep {
					fail(je)
				}
				return
			}
			j.complete(v, nil)
			if !j.key.IsZero() {
				g.r.memoPut(j.key, v)
			}
			if shared {
				g.r.opts.Journal.JobShared(ctx, j.label, keyStr(j.key))
			} else {
				g.r.opts.Journal.JobDone(ctx, j.label, keyStr(j.key), j.attempts)
			}
			prog.jobDone(j.label)
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := parent.Err(); err != nil {
		return err
	}
	prog.summary(len(g.jobs), len(need), int(executed.Load()), int(failed.Load()), int(skipped.Load()), g.r.opts.Workers)
	return nil
}

// runLeased executes a job, coalescing with other processes when
// cross-process leases are enabled on the cache. The winner of a key's
// lease runs the job and stores the result durably *before* releasing
// the lease, so losers polling the cache observe result-then-release,
// never a gap. Losers wait on the winner's entry instead of recomputing
// (shared=true); if the winner dies its lease expires and is taken over,
// so the loop always terminates in a local execution or a shared result.
// Jobs without a storable key — and any lease-layer error — fall back to
// plain local execution: leases are an optimisation, never a gate.
func (g *Graph) runLeased(ctx context.Context, j *job) (v any, shared bool, err error) {
	c := g.r.opts.Cache
	ls := c.leaseManager()
	if ls == nil || j.key.IsZero() || j.noStore {
		v, err = g.runStored(ctx, j)
		return v, false, err
	}
	for {
		state, release := ls.tryAcquire(ctx, j.key)
		switch state {
		case leaseWon:
			g.r.leaseAcquired.Add(1)
			v, err = g.runStored(ctx, j)
			release()
			return v, false, err
		case leaseErr:
			v, err = g.runStored(ctx, j)
			return v, false, err
		default: // leaseLost: another live process is computing this key
			v, ok, werr := ls.wait(ctx, c, j.key, j.decode)
			if werr != nil {
				return nil, false, werr
			}
			if ok {
				g.r.leaseShared.Add(1)
				return v, true, nil
			}
			// The winner vanished without storing (crash or failure):
			// re-contend and, if we win, run the job ourselves.
		}
	}
}

// runStored runs a job's attempt loop and, on success, stores the result
// in the on-disk cache (best-effort). Storing here — inside the lease
// window rather than after it — is what makes cross-process hand-off
// race-free.
func (g *Graph) runStored(ctx context.Context, j *job) (any, error) {
	v, err := g.attempt(ctx, j)
	if err == nil && !j.key.IsZero() && !j.noStore && g.r.opts.Cache != nil {
		if data, merr := json.Marshal(v); merr == nil {
			// A failed Put must not fail the job: lease waiters detect the
			// missing store ("winner vanished without storing") and re-run.
			g.r.opts.Cache.Put(ctx, j.key, data) //splash:allow durability best-effort store; waiters re-contend on a missing cache entry, so a lost Put costs a re-run, not correctness
		}
	}
	return v, err
}

// attempt runs a job up to 1+Retries times. Only failures marked
// Transient are retried (with exponential backoff from RetryBackoff);
// panics, timeouts and permanent errors consume the job immediately.
func (g *Graph) attempt(ctx context.Context, j *job) (any, error) {
	maxAttempts := 1 + g.r.opts.Retries
	for att := 1; ; att++ {
		j.attempts = att
		v, err := g.runOnce(ctx, j)
		if err == nil || ctx.Err() != nil {
			return v, err
		}
		if att >= maxAttempts || errors.Is(err, ErrTimeout) || !IsTransient(err) {
			return v, err
		}
		g.r.retried.Add(1)
		backoff := g.r.opts.RetryBackoff << (att - 1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// runOnce executes a single attempt on its own goroutine so that a panic
// (the job's own, or an injected one) is recovered into a JobError and a
// timeout can abandon the attempt without stalling the worker. The
// outcome channel is buffered: an abandoned attempt's goroutine delivers
// its result and exits instead of leaking, as soon as the job observes
// its context.
func (g *Graph) runOnce(ctx context.Context, j *job) (any, error) {
	rctx, rcancel := ctx, context.CancelFunc(func() {})
	if g.r.opts.Timeout > 0 {
		rctx, rcancel = context.WithTimeout(ctx, g.r.opts.Timeout)
	}
	defer rcancel()

	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &JobError{
					Panicked: true,
					Stack:    string(debug.Stack()),
					Err:      fmt.Errorf("panic: %v", p),
				}}
			}
		}()
		if err := g.r.opts.Fault.Do(rctx, "job:"+j.label); err != nil {
			ch <- outcome{err: err}
			return
		}
		v, err := j.run(rctx)
		ch <- outcome{v: v, err: err}
	}()
	select {
	case o := <-ch:
		return o.v, g.normalizeTimeout(ctx, rctx, o.err)
	case <-rctx.Done():
		// Prefer a result that raced the deadline.
		select {
		case o := <-ch:
			return o.v, g.normalizeTimeout(ctx, rctx, o.err)
		default:
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		g.r.timedOut.Add(1)
		return nil, fmt.Errorf("%w after %v", ErrTimeout, g.r.opts.Timeout)
	}
}

// normalizeTimeout classifies an attempt error caused by the attempt's
// own deadline as ErrTimeout. A job that observes its context and
// returns the deadline error races the scheduler's timeout branch; both
// paths must classify the failure identically.
func (g *Graph) normalizeTimeout(ctx, rctx context.Context, err error) error {
	if err == nil || ctx.Err() != nil || rctx.Err() == nil || !errors.Is(err, rctx.Err()) {
		return err
	}
	g.r.timedOut.Add(1)
	return fmt.Errorf("%w after %v", ErrTimeout, g.r.opts.Timeout)
}

// asJobError converts an attempt's error into the job's structured
// failure record. Panic JobErrors built inside runOnce are adopted;
// everything else is wrapped.
func asJobError(j *job, err error) *JobError {
	var je *JobError
	if errors.As(err, &je) && je.Panicked && je.Label == "" {
		je.Label = j.label
		je.Key = keyStr(j.key)
		je.Attempts = j.attempts
		return je
	}
	return &JobError{
		Label:    j.label,
		Key:      keyStr(j.key),
		Attempts: j.attempts,
		TimedOut: errors.Is(err, ErrTimeout),
		Err:      err,
	}
}
