package runner

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splash2/internal/fault"
)

// TestJournalRoundTrip: a full run's events survive the write/read cycle
// and fold into the expected summary.
func TestJournalRoundTrip(t *testing.T) {
	dir := JournalDir(t.TempDir())
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j.RunID() == "" || j.Path() == "" {
		t.Fatal("journal has empty identity")
	}
	j.JobStart(nil, "fft", "aa11")
	j.JobDone(nil, "fft", "aa11", 1)
	j.JobStart(nil, "lu", "bb22")
	j.JobFail(nil, &JobError{Label: "lu", Key: "bb22", Attempts: 3, Err: errors.New("boom")})
	j.JobStart(nil, "radix", "cc33")
	j.JobShared(nil, "radix", "cc33")
	j.LeaseTakeover(nil, "dd44")
	j.JobStart(nil, "ocean", "ee55") // never finishes: in flight at "crash"
	if err := j.Close(Counts{Executed: 2}); err != nil {
		t.Fatal(err)
	}
	// run.start + 9 = 10 events.
	if n := j.Appended(); n != 10 {
		t.Errorf("Appended() = %d, want 10", n)
	}

	events, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("read %d events, want 10", len(events))
	}
	s := Summarize(j.Path(), events)
	if s.RunID != j.RunID() {
		t.Errorf("summary RunID = %q, want %q", s.RunID, j.RunID())
	}
	if !s.Ended || s.Resumed {
		t.Errorf("Ended=%v Resumed=%v, want true/false", s.Ended, s.Resumed)
	}
	if s.Done != 1 || s.Failed != 1 || s.Shared != 1 {
		t.Errorf("Done/Failed/Shared = %d/%d/%d, want 1/1/1", s.Done, s.Failed, s.Shared)
	}
	if len(s.InFlight) != 1 || s.InFlight[0] != "ocean" {
		t.Errorf("InFlight = %v, want [ocean]", s.InFlight)
	}
	if s.PID != os.Getpid() {
		t.Errorf("PID = %d, want %d", s.PID, os.Getpid())
	}
}

// TestJournalFailEventDetail: job.fail records the fault op behind an
// injected failure and job.skip keeps its own event type.
func TestJournalFailEventDetail(t *testing.T) {
	dir := JournalDir(t.TempDir())
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.JobFail(nil, &JobError{Label: "fft", Key: "aa", Attempts: 1,
		Err: &fault.InjectedError{Op: "cache.put:aa"}})
	j.JobFail(nil, &JobError{Label: "lu", Skipped: true, Err: errors.New("dependency fft: boom")})
	j.Close(Counts{})

	events, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	var fails, skips int
	for _, ev := range events {
		switch ev.Event {
		case "job.fail":
			fails++
			if ev.FaultOp != "cache.put:aa" {
				t.Errorf("job.fail FaultOp = %q, want cache.put:aa", ev.FaultOp)
			}
		case "job.skip":
			skips++
		}
	}
	if fails != 1 || skips != 1 {
		t.Errorf("fails=%d skips=%d, want 1/1", fails, skips)
	}
}

// writeJournal writes raw journal bytes for reader tests.
func writeJournal(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "20260101T000000-1-ab.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const (
	startLine = `{"t":"2026-01-01T00:00:00Z","ev":"run.start","pid":1}`
	doneLine  = `{"t":"2026-01-01T00:00:01Z","ev":"job.done","label":"fft","key":"aa"}`
	tornLine  = `{"t":"2026-01-01T00:00:02Z","ev":"job.do` // kill -9 mid-write
)

// TestJournalTornTailTolerated: the only damage a crash can cause — a
// truncated final line — is dropped silently.
func TestJournalTornTailTolerated(t *testing.T) {
	path := writeJournal(t, startLine, doneLine, tornLine)
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2 (torn tail dropped)", len(events))
	}
	s := Summarize(path, events)
	if s.Ended || s.Done != 1 {
		t.Errorf("summary of crashed run: Ended=%v Done=%d, want false/1", s.Ended, s.Done)
	}
}

// TestJournalMidFileCorruptionRejected: garbage anywhere but the tail is
// real corruption and must be reported with its line number.
func TestJournalMidFileCorruptionRejected(t *testing.T) {
	path := writeJournal(t, startLine, "garbage{{{", doneLine)
	_, err := ReadJournal(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt line 2") {
		t.Fatalf("ReadJournal = %v, want corrupt line 2 error", err)
	}
}

// TestJournalTornTailThenResumed: MarkResumed appends after a torn tail;
// the reader must accept exactly that pairing.
func TestJournalTornTailThenResumed(t *testing.T) {
	path := writeJournal(t, startLine, doneLine, tornLine)
	if err := MarkResumed(path, "test-resume"); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("resumed journal rejected: %v", err)
	}
	s := Summarize(path, events)
	if !s.Resumed {
		t.Error("summary does not show the resume")
	}
	if s.Ended {
		t.Error("resume must not fake a clean end")
	}
	last := events[len(events)-1]
	if last.Event != "run.resumed" || last.By != "test-resume" {
		t.Errorf("last event = %+v, want run.resumed by test-resume", last)
	}
}

// TestScanJournals: summaries come back sorted by run id, corrupt files
// are skipped rather than blocking the scan.
func TestScanJournals(t *testing.T) {
	if got := ScanJournals(filepath.Join(t.TempDir(), "missing")); got != nil {
		t.Fatalf("scan of missing dir = %v, want nil", got)
	}

	dir := t.TempDir()
	write := func(name string, lines ...string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	endLine := `{"t":"2026-01-01T00:01:00Z","ev":"run.end"}`
	write("b-clean.jsonl", startLine, doneLine, endLine)
	write("a-dead.jsonl", startLine, doneLine)
	write("c-corrupt.jsonl", startLine, "garbage{{{", doneLine)
	write("notes.txt", "not a journal")

	out := ScanJournals(dir)
	if len(out) != 2 {
		t.Fatalf("scanned %d journals, want 2 (corrupt skipped): %+v", len(out), out)
	}
	if out[0].RunID != "a-dead" || out[1].RunID != "b-clean" {
		t.Errorf("scan order = %s, %s; want a-dead, b-clean", out[0].RunID, out[1].RunID)
	}
	if out[0].Ended || !out[1].Ended {
		t.Errorf("Ended flags = %v/%v, want false/true", out[0].Ended, out[1].Ended)
	}
}

// TestJournalAppendFaultIsBestEffort: an injected journal.append failure
// loses forensics, never results — and never panics or errors out.
func TestJournalAppendFaultIsBestEffort(t *testing.T) {
	dir := JournalDir(t.TempDir())
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := fault.Parse("error=journal.append")
	if err != nil {
		t.Fatal(err)
	}
	j.SetFault(fault.New(1, rules...))
	before := j.Appended()
	j.JobStart(nil, "fft", "aa")
	j.JobDone(nil, "fft", "aa", 1)
	if got := j.Appended(); got != before {
		t.Errorf("Appended grew to %d despite injected append faults", got)
	}
	j.SetFault(nil)
	if err := j.Close(Counts{}); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if strings.HasPrefix(ev.Event, "job.") {
			t.Errorf("job event %q survived an injected append fault", ev.Event)
		}
	}
}

// TestJournalNilSafety: every method on a nil *Journal is a no-op.
func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	j.SetFault(nil)
	j.JobStart(nil, "x", "y")
	j.JobDone(nil, "x", "y", 1)
	j.JobFail(nil, &JobError{Label: "x"})
	j.JobShared(nil, "x", "y")
	j.LeaseTakeover(nil, "y")
	if j.RunID() != "" || j.Path() != "" || j.Appended() != 0 {
		t.Error("nil journal has identity")
	}
	if err := j.Close(Counts{}); err != nil {
		t.Error(err)
	}
}
