package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDependencyOrderAndResults(t *testing.T) {
	r := New(Options{Workers: 4})
	g := r.NewGraph()
	base := Submit(g, Spec{Label: "base"}, func(ctx context.Context) (int, error) {
		return 21, nil
	})
	doubled := Submit(g, Spec{Label: "doubled", Deps: []Handle{base}}, func(ctx context.Context) (int, error) {
		v, err := base.Result()
		if err != nil {
			return 0, err
		}
		return 2 * v, nil
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	v, err := doubled.Result()
	if err != nil || v != 42 {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestResultBeforeCompletion(t *testing.T) {
	r := New(Options{Workers: 1})
	g := r.NewGraph()
	j := Submit(g, Spec{Label: "x"}, func(ctx context.Context) (int, error) { return 1, nil })
	if _, err := j.Result(); err == nil {
		t.Fatal("Result before Wait did not error")
	}
}

func TestLazyJobSkippedWithoutDependents(t *testing.T) {
	r := New(Options{Workers: 2})
	g := r.NewGraph()
	var ran atomic.Bool
	Submit(g, Spec{Label: "lazy", Lazy: true}, func(ctx context.Context) (int, error) {
		ran.Store(true)
		return 0, nil
	})
	Submit(g, Spec{Label: "root"}, func(ctx context.Context) (int, error) { return 1, nil })
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Fatal("lazy job without dependents ran")
	}
	if got := r.Counts().Executed; got != 1 {
		t.Fatalf("executed %d jobs, want 1", got)
	}
}

func TestLazyJobRunsWhenDemanded(t *testing.T) {
	r := New(Options{Workers: 2})
	g := r.NewGraph()
	var ran atomic.Bool
	lazy := Submit(g, Spec{Label: "lazy", Lazy: true}, func(ctx context.Context) (int, error) {
		ran.Store(true)
		return 7, nil
	})
	root := Submit(g, Spec{Label: "root", Deps: []Handle{lazy}}, func(ctx context.Context) (int, error) {
		v, err := lazy.Result()
		return v + 1, err
	})
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("demanded lazy job did not run")
	}
	if v, _ := root.Result(); v != 8 {
		t.Fatalf("root = %d", v)
	}
}

func TestKeyDeduplication(t *testing.T) {
	r := New(Options{Workers: 4})
	g := r.NewGraph()
	var runs atomic.Int64
	k := KeyOf("test", "dedup")
	mk := func() Job[int] {
		return Submit(g, Spec{Label: "dup", Key: k}, func(ctx context.Context) (int, error) {
			runs.Add(1)
			return 5, nil
		})
	}
	a, b := mk(), mk()
	if a.raw() != b.raw() {
		t.Fatal("same key produced distinct jobs")
	}
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times", runs.Load())
	}
}

func TestMemoAcrossGraphs(t *testing.T) {
	r := New(Options{Workers: 2})
	var runs atomic.Int64
	k := KeyOf("test", "memo")
	for i := 0; i < 2; i++ {
		g := r.NewGraph()
		j := Submit(g, Spec{Label: "memo", Key: k}, func(ctx context.Context) (string, error) {
			runs.Add(1)
			return "value", nil
		})
		if err := g.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if v, err := j.Result(); err != nil || v != "value" {
			t.Fatalf("graph %d: %q, %v", i, v, err)
		}
	}
	if runs.Load() != 1 {
		t.Fatalf("memoized job ran %d times", runs.Load())
	}
	if c := r.Counts(); c.MemoHits != 1 {
		t.Fatalf("memo hits = %d, want 1", c.MemoHits)
	}
}

func TestFailFastPropagates(t *testing.T) {
	r := New(Options{Workers: 2})
	g := r.NewGraph()
	boom := errors.New("boom")
	bad := Submit(g, Spec{Label: "bad"}, func(ctx context.Context) (int, error) {
		return 0, boom
	})
	dep := Submit(g, Spec{Label: "dep", Deps: []Handle{bad}}, func(ctx context.Context) (int, error) {
		t.Error("dependent of failed job ran")
		return 0, nil
	})
	// Many slow jobs that should be cancelled once bad fails.
	for i := 0; i < 50; i++ {
		Submit(g, Spec{Label: fmt.Sprintf("slow%d", i)}, func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(50 * time.Millisecond):
				return 1, nil
			}
		})
	}
	err := g.Wait(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Wait error = %v, want %v", err, boom)
	}
	if _, err := dep.Result(); err == nil {
		t.Fatal("dependent of failed job has no error")
	}
	// Idempotent: a second Wait returns the same failure.
	if err2 := g.Wait(context.Background()); !errors.Is(err2, boom) {
		t.Fatalf("second Wait = %v", err2)
	}
}

func TestContextCancellation(t *testing.T) {
	r := New(Options{Workers: 2})
	g := r.NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	Submit(g, Spec{Label: "hang"}, func(ctx context.Context) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	go func() {
		<-started
		cancel()
	}()
	if err := g.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

func TestWorkerPoolRunsConcurrently(t *testing.T) {
	const n = 4
	r := New(Options{Workers: n})
	g := r.NewGraph()
	// Each job blocks until all n are running at once: passes only if the
	// pool really provides n-way concurrency.
	gate := make(chan struct{})
	var arrived atomic.Int64
	for i := 0; i < n; i++ {
		Submit(g, Spec{Label: fmt.Sprintf("conc%d", i)}, func(ctx context.Context) (int, error) {
			if arrived.Add(1) == n {
				close(gate)
			}
			select {
			case <-gate:
				return 1, nil
			case <-time.After(10 * time.Second):
				return 0, errors.New("pool never reached full concurrency")
			}
		})
	}
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDiskCacheServesSecondRunner(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("test", "disk", 1)
	run := func() (int, Counts) {
		r := New(Options{Workers: 1, Cache: cache})
		g := r.NewGraph()
		j := Submit(g, Spec{Label: "cached", Key: k}, func(ctx context.Context) (int, error) {
			return 99, nil
		})
		if err := g.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		v, err := j.Result()
		if err != nil {
			t.Fatal(err)
		}
		return v, r.Counts()
	}
	v1, c1 := run()
	if c1.Executed != 1 || v1 != 99 {
		t.Fatalf("first run: executed=%d v=%d", c1.Executed, v1)
	}
	v2, c2 := run()
	if c2.Executed != 0 || c2.CacheHits != 1 || v2 != 99 {
		t.Fatalf("second run not served from cache: %+v v=%d", c2, v2)
	}
}

func TestCacheSkipsLazyDependency(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var records atomic.Int64
	kRec := KeyOf("test", "rec")
	kRep := KeyOf("test", "rep")
	run := func() Counts {
		r := New(Options{Workers: 2, Cache: cache})
		g := r.NewGraph()
		rec := Submit(g, Spec{Label: "record", Key: kRec, Lazy: true, NoStore: true}, func(ctx context.Context) (int, error) {
			records.Add(1)
			return 10, nil
		})
		Submit(g, Spec{Label: "replay", Key: kRep, Deps: []Handle{rec}}, func(ctx context.Context) (int, error) {
			v, err := rec.Result()
			return v * 3, err
		})
		if err := g.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return r.Counts()
	}
	run()
	if records.Load() != 1 {
		t.Fatalf("record ran %d times in first run", records.Load())
	}
	c := run()
	if records.Load() != 1 {
		t.Fatal("record re-ran although every replay was cached")
	}
	if c.Executed != 0 {
		t.Fatalf("second run executed %d jobs, want 0", c.Executed)
	}
}

func TestProgressOutput(t *testing.T) {
	var buf strings.Builder
	r := New(Options{Workers: 1, Progress: &buf})
	g := r.NewGraph()
	Submit(g, Spec{Label: "only-job"}, func(ctx context.Context) (int, error) { return 1, nil })
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[1/1] only-job") {
		t.Fatalf("missing per-job line in %q", out)
	}
	if !strings.Contains(out, "1 executed") {
		t.Fatalf("missing summary line in %q", out)
	}
}

func TestKeyDeterminismAndMapOrder(t *testing.T) {
	a := KeyOf("run", map[string]int{"n": 1024, "b": 8}, "fft")
	b := KeyOf("run", map[string]int{"b": 8, "n": 1024}, "fft")
	if a.String() != b.String() {
		t.Fatal("map key order changed the hash")
	}
	c := KeyOf("run", map[string]int{"n": 1024, "b": 16}, "fft")
	if a.String() == c.String() {
		t.Fatal("different opts collided")
	}
	d := KeyOf("replay", map[string]int{"n": 1024, "b": 8}, "fft")
	if a.String() == d.String() {
		t.Fatal("different kinds collided")
	}
	if (Key{}).IsZero() != true || a.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}
