package runner

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"splash2/internal/fault"
)

// Durable run journal.
//
// The cache makes finished results survive a crash; the journal makes
// the *run* itself legible after one. Each engine run appends JSONL
// events — run.start, job.start, job.done, job.fail, job.skip,
// job.shared, lease.takeover, run.end — to its own file under
// <cacheDir>/journal/<runID>.jsonl. Every event is a single O_APPEND
// write of one line, which POSIX makes atomic for these sizes, so a
// kill -9 can lose at most the tail of the final line; readers tolerate
// exactly that (a truncated last line is dropped, anything else is
// corruption and reported).
//
// A journal whose file lacks a run.end event belongs to a run that died.
// `characterize -resume` scans the journal directory, reports what each
// dead run had finished and was executing (the crash forensics), marks
// the dead journals resumed (append-only — a run.resumed event, never a
// rewrite), sweeps the dead runs' leases and temp artifacts, and then
// relies on the cache to supply everything the dead run completed.

// JournalEvent is one journal line.
type JournalEvent struct {
	// Time is the event timestamp (UTC).
	Time time.Time `json:"t"`
	// Event is the event type: "run.start", "job.start", "job.done",
	// "job.fail", "job.skip", "job.shared", "lease.takeover",
	// "run.resumed", "run.end".
	Event string `json:"ev"`
	// Label is the job label for job.* events.
	Label string `json:"label,omitempty"`
	// Key is the job's content address for job.* and lease events.
	Key string `json:"key,omitempty"`
	// Attempts is the attempt count consumed by a finished/failed job.
	Attempts int `json:"attempts,omitempty"`
	// Cause is the failure cause for job.fail/job.skip.
	Cause string `json:"cause,omitempty"`
	// FaultOp names the injected fault behind a failure, when one fired.
	FaultOp string `json:"faultOp,omitempty"`
	// PID/Host identify the writing process (run.start, run.resumed).
	PID  int    `json:"pid,omitempty"`
	Host string `json:"host,omitempty"`
	// By identifies who resumed a dead run (run.resumed).
	By string `json:"by,omitempty"`
	// Counts carries the final scheduler counters (run.end).
	Counts *Counts `json:"counts,omitempty"`
}

// Journal is an append-only event log for one engine run. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops), so
// journal hooks cost one nil check when journaling is disabled.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	runID    string
	inj      *fault.Injector
	appended int64
	closed   bool
}

// journalDirName is the journal subdirectory under a cache directory.
const journalDirName = "journal"

// JournalDir returns the journal directory for a cache directory.
func JournalDir(cacheDir string) string {
	return filepath.Join(cacheDir, journalDirName)
}

// OpenJournal creates a new run journal in dir. The run id embeds the
// start time, pid and a nonce, so concurrent runs sharing the directory
// never collide.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: journal dir: %w", err)
	}
	var nb [4]byte
	rand.Read(nb[:])
	runID := fmt.Sprintf("%s-%d-%s",
		time.Now().UTC().Format("20060102T150405"), os.Getpid(), hex.EncodeToString(nb[:]))
	path := filepath.Join(dir, runID+".jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j := &Journal{f: f, path: path, runID: runID}
	host, _ := os.Hostname()
	j.append(nil, JournalEvent{Event: "run.start", PID: os.Getpid(), Host: host})
	return j, nil
}

// SetFault attaches a fault injector to the journal's append path
// (operation "journal.append"). Setup-time only, like Cache.SetFault.
func (j *Journal) SetFault(inj *fault.Injector) {
	if j != nil {
		j.inj = inj
	}
}

// RunID returns the journal's run identifier.
func (j *Journal) RunID() string {
	if j == nil {
		return ""
	}
	return j.runID
}

// Path returns the journal file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Appended returns how many events have been durably appended.
func (j *Journal) Appended() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// append writes one event as a single JSONL line. Best-effort: a failed
// append (full disk, injected fault) loses forensics, never results. The
// context scopes the injection point to the request that caused the
// event; lifecycle events (run.start, run.end) pass nil.
func (j *Journal) append(ctx context.Context, ev JournalEvent) {
	if j == nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ev.Time = time.Now().UTC()
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	// The append is a crash injection point: dying between a job's
	// completion and its journal line is exactly the window the reader's
	// truncated-tail tolerance exists for.
	if err := j.inj.Do(ctx, "journal.append"); err != nil {
		return
	}
	if _, err := j.f.Write(data); err != nil {
		return
	}
	j.appended++
}

// JobStart records that a job's attempt loop began.
func (j *Journal) JobStart(ctx context.Context, label, key string) {
	j.append(ctx, JournalEvent{Event: "job.start", Label: label, Key: key})
}

// JobDone records a job that completed successfully.
func (j *Journal) JobDone(ctx context.Context, label, key string, attempts int) {
	j.append(ctx, JournalEvent{Event: "job.done", Label: label, Key: key, Attempts: attempts})
}

// JobFail records a job that exhausted its attempts. When the cause was
// an injected fault the fault operation is recorded too.
func (j *Journal) JobFail(ctx context.Context, je *JobError) {
	if j == nil || je == nil {
		return
	}
	ev := JournalEvent{Event: "job.fail", Label: je.Label, Key: je.Key, Attempts: je.Attempts, Cause: je.Cause()}
	if je.Skipped {
		ev.Event = "job.skip"
	}
	var inj *fault.InjectedError
	if errors.As(je.Err, &inj) {
		ev.FaultOp = inj.Op
	}
	j.append(ctx, ev)
}

// JobShared records a job whose result was obtained by waiting on
// another process's lease instead of executing locally.
func (j *Journal) JobShared(ctx context.Context, label, key string) {
	j.append(ctx, JournalEvent{Event: "job.shared", Label: label, Key: key})
}

// LeaseTakeover records the reclamation of a dead process's lease.
func (j *Journal) LeaseTakeover(ctx context.Context, key string) {
	j.append(ctx, JournalEvent{Event: "lease.takeover", Key: key})
}

// Close appends the run.end event (with final counters) and closes the
// file. A journal without run.end is, by definition, a crashed run.
func (j *Journal) Close(counts Counts) error {
	if j == nil {
		return nil
	}
	j.append(nil, JournalEvent{Event: "run.end", Counts: &counts})
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// maxJournalLine bounds a single journal line on read; real events are
// hundreds of bytes, so anything near the cap is corruption.
const maxJournalLine = 1 << 20

// ReadJournal parses a journal file. A truncated or unparsable *final*
// line — the only damage a crash can inflict on an O_APPEND JSONL file —
// is silently dropped; damage anywhere else is returned as an error with
// the offending line number.
func ReadJournal(path string) ([]JournalEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []JournalEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxJournalLine)
	lineNo := 0
	var badLine int // 1-based index of first unparsable line, 0 if none
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev JournalEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			if badLine == 0 {
				badLine = lineNo
			}
			continue
		}
		if badLine != 0 {
			// A resume appends run.resumed right after a crash's torn
			// tail; that pairing is the expected shape of a resumed
			// journal. A bad line followed by anything else is damage.
			if ev.Event != "run.resumed" {
				return nil, fmt.Errorf("runner: journal %s: corrupt line %d", path, badLine)
			}
			badLine = 0
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runner: journal %s: %w", path, err)
	}
	// badLine set and we got here: the bad line was the last one — the
	// torn tail of a crash. Tolerated.
	return events, nil
}

// RunSummary condenses one journal for resume forensics.
type RunSummary struct {
	// RunID and Path identify the journal.
	RunID string `json:"runId"`
	Path  string `json:"path"`
	// PID and Host identify the process that wrote it.
	PID  int    `json:"pid"`
	Host string `json:"host"`
	// Started is the run.start timestamp.
	Started time.Time `json:"started"`
	// Ended reports whether a run.end event exists (clean shutdown).
	Ended bool `json:"ended"`
	// Resumed reports whether a later run already adopted this journal.
	Resumed bool `json:"resumed"`
	// Done, Failed, Shared count the journal's job outcomes; InFlight
	// lists jobs started but never finished — what the process was
	// executing when it died.
	Done     int      `json:"done"`
	Failed   int      `json:"failed"`
	Shared   int      `json:"shared"`
	InFlight []string `json:"inFlight,omitempty"`
}

// Summarize folds a journal's events into a RunSummary.
func Summarize(path string, events []JournalEvent) RunSummary {
	s := RunSummary{Path: path}
	s.RunID = strings.TrimSuffix(filepath.Base(path), ".jsonl")
	open := map[string]string{} // key -> label, started but not finished
	for _, ev := range events {
		switch ev.Event {
		case "run.start":
			s.PID, s.Host, s.Started = ev.PID, ev.Host, ev.Time
		case "job.start":
			open[ev.Key] = ev.Label
		case "job.done":
			s.Done++
			delete(open, ev.Key)
		case "job.fail", "job.skip":
			s.Failed++
			delete(open, ev.Key)
		case "job.shared":
			s.Shared++
			delete(open, ev.Key)
		case "run.resumed":
			s.Resumed = true
		case "run.end":
			s.Ended = true
		}
	}
	for _, label := range open {
		s.InFlight = append(s.InFlight, label)
	}
	sort.Strings(s.InFlight)
	return s
}

// ScanJournals summarizes every journal in dir, oldest first. A missing
// directory is an empty scan, not an error; unreadable or corrupt
// journals are skipped (a resume must never be blocked by the very
// damage it exists to clean up).
func ScanJournals(dir string) []RunSummary {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []RunSummary
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		events, err := ReadJournal(path)
		if err != nil {
			continue
		}
		out = append(out, Summarize(path, events))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].RunID < out[k].RunID })
	return out
}

// MarkResumed appends a run.resumed event to a dead run's journal, so
// repeated resumes report each crash once. Append-only, honouring the
// journal discipline: the dead run's history is never rewritten.
func MarkResumed(path, by string) error {
	host, _ := os.Hostname()
	ev := JournalEvent{Time: time.Now().UTC(), Event: "run.resumed", By: by, PID: os.Getpid(), Host: host}
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// The dead journal may end in a torn line with no newline; lead with
	// one so this event always starts a fresh line. Readers skip blanks.
	_, err = f.Write(append([]byte{'\n'}, append(data, '\n')...))
	// A failed close can swallow the flush of the resumed marker, and a
	// lost marker makes every later resume re-report this crash.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
