package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SuiteVersion is folded into every cache key. Bump it whenever simulator
// semantics change in a way that alters experiment results (coherence
// protocol, miss classification, traffic accounting, PRAM timing, or any
// program's reference stream): old cache entries then simply stop
// matching and experiments are recomputed — there is no explicit cache
// invalidation step.
const SuiteVersion = "splash2-suite-v6" // v6: sampled reuse-distance estimator, epoch windows, decode-ahead replay

// Key is the content address of one experiment: the SHA-256 of the suite
// version, the experiment kind, and the canonical JSON encoding of every
// identity part (program name, option overrides, machine configuration).
// JSON is canonical here because encoding/json sorts map keys, so two
// equal option maps always hash identically. The zero Key marks a job as
// uncacheable and exempt from deduplication.
type Key struct {
	ok  bool
	sum [sha256.Size]byte
}

// KeyOf builds a key from an experiment kind and its identity parts.
// Parts must be JSON-encodable; a failure to encode is a programming
// error and panics.
func KeyOf(kind string, parts ...any) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", SuiteVersion, kind)
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("runner: unencodable key part %T: %v", p, err))
		}
	}
	k := Key{ok: true}
	h.Sum(k.sum[:0])
	return k
}

// IsZero reports whether the key is the zero (uncacheable) key.
func (k Key) IsZero() bool { return !k.ok }

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k.sum[:]) }
