package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced zero state")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range out of range: %v", v)
		}
		n := r.Intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal moments off: mean=%v var=%v", mean, variance)
	}
}

func TestPlummer3D(t *testing.T) {
	bodies := Plummer3D(500, 1)
	if len(bodies) != 500 {
		t.Fatalf("n=%d", len(bodies))
	}
	var totalMass float64
	for _, b := range bodies {
		totalMass += b.Mass
		r := math.Sqrt(b.X*b.X + b.Y*b.Y + b.Z*b.Z)
		if r > 8.01 {
			t.Fatalf("body outside truncation radius: %v", r)
		}
	}
	if math.Abs(totalMass-1) > 1e-9 {
		t.Fatalf("total mass %v", totalMass)
	}
}

func TestUniformAndClustered2D(t *testing.T) {
	for _, bodies := range [][]Body{Uniform2D(300, 2), Clustered2D(300, 4, 3)} {
		for _, b := range bodies {
			if b.X < 0 || b.X > 1 || b.Y < 0 || b.Y > 1 {
				t.Fatalf("body out of unit square: %+v", b)
			}
		}
	}
}

func TestWaterLattice(t *testing.T) {
	mols := WaterLattice(64, 12.0, 5)
	if len(mols) != 64 {
		t.Fatalf("n=%d", len(mols))
	}
	for _, m := range mols {
		if m.X < 0 || m.X > 12 || m.Y < 0 || m.Y > 12 || m.Z < 0 || m.Z > 12 {
			t.Fatalf("molecule outside box: %+v", m)
		}
	}
	// Minimum separation on a jittered lattice must stay positive.
	for i := range mols {
		for j := i + 1; j < len(mols); j++ {
			dx, dy, dz := mols[i].X-mols[j].X, mols[i].Y-mols[j].Y, mols[i].Z-mols[j].Z
			if dx*dx+dy*dy+dz*dz < 0.25 {
				t.Fatalf("molecules %d,%d too close", i, j)
			}
		}
	}
}

func TestGenBlockSPDStructure(t *testing.T) {
	a := GenBlockSPD(8, 4, 1, 9)
	if a.N != 8 || a.B != 4 {
		t.Fatalf("dims: %d %d", a.N, a.B)
	}
	for j := 0; j < a.N; j++ {
		if len(a.Cols[j]) == 0 || a.Cols[j][0] != j {
			t.Fatalf("column %d missing diagonal block: %v", j, a.Cols[j])
		}
		for k := 1; k < len(a.Cols[j]); k++ {
			if a.Cols[j][k] <= a.Cols[j][k-1] {
				t.Fatalf("column %d rows not sorted: %v", j, a.Cols[j])
			}
		}
		for _, i := range a.Cols[j] {
			if a.Block(i, j) == nil {
				t.Fatalf("pattern lists (%d,%d) but block missing", i, j)
			}
		}
	}
}

// Property: generated matrices are SPD — verified by running a dense
// Cholesky on the expanded matrix and checking all pivots are positive.
func TestGenBlockSPDIsPositiveDefinite(t *testing.T) {
	f := func(seed uint64) bool {
		a := GenBlockSPD(6, 3, 1, seed)
		d := a.Dense()
		n := a.Order()
		// In-place dense Cholesky.
		for k := 0; k < n; k++ {
			if d[k*n+k] <= 0 {
				return false
			}
			d[k*n+k] = math.Sqrt(d[k*n+k])
			for i := k + 1; i < n; i++ {
				d[i*n+k] /= d[k*n+k]
			}
			for j := k + 1; j < n; j++ {
				for i := j; i < n; i++ {
					d[i*n+j] -= d[i*n+k] * d[j*n+k]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseSymmetric(t *testing.T) {
	a := GenBlockSPD(5, 2, 1, 4)
	d := a.Dense()
	n := a.Order()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d[i*n+j] != d[j*n+i] {
				t.Fatalf("dense not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenScene(t *testing.T) {
	s := GenScene(16, 3)
	if len(s.Spheres) != 16 {
		t.Fatalf("spheres=%d", len(s.Spheres))
	}
	for _, sp := range s.Spheres[1:] {
		if sp.Radius <= 0 {
			t.Fatalf("non-positive radius: %+v", sp)
		}
		if sp.X < 0 || sp.X > 1 || sp.Z < 0 || sp.Z > 1 {
			t.Fatalf("sphere outside cluster bounds: %+v", sp)
		}
	}
}

func TestGenVolume(t *testing.T) {
	v := GenVolume(16, 6)
	if len(v.Voxels) != 16*16*16 {
		t.Fatalf("voxel count %d", len(v.Voxels))
	}
	if v.At(-1, 0, 0) != 0 || v.At(0, 0, 16) != 0 {
		t.Fatal("out-of-range access not zero")
	}
	// Corners are outside the ellipsoid: empty. Center is dense.
	if v.At(0, 0, 0) != 0 {
		t.Fatal("corner voxel not empty")
	}
	if v.At(8, 8, 8) <= 0 {
		t.Fatal("center voxel empty")
	}
}

func TestGenRoom(t *testing.T) {
	polys := GenRoom(2, 8)
	// 6 walls × 2×2 panels + light + 2 occluders.
	if len(polys) != 6*4+3 {
		t.Fatalf("polygon count %d", len(polys))
	}
	emitters := 0
	for i := range polys {
		if polys[i].Area() <= 0 {
			t.Fatalf("polygon %d has non-positive area", i)
		}
		if polys[i].Emission > 0 {
			emitters++
		}
		x, y, z := polys[i].Center()
		if x < -0.01 || x > 1.01 || y < -0.01 || y > 1.01 || z < -0.01 || z > 1.01 {
			t.Fatalf("polygon %d center outside room: %v %v %v", i, x, y, z)
		}
	}
	if emitters != 1 {
		t.Fatalf("emitters=%d, want 1", emitters)
	}
}

func TestKeys(t *testing.T) {
	keys := Keys(1000, 1<<16, 12)
	for _, k := range keys {
		if k < 0 || k >= 1<<16 {
			t.Fatalf("key out of range: %d", k)
		}
	}
	// Determinism.
	again := Keys(1000, 1<<16, 12)
	for i := range keys {
		if keys[i] != again[i] {
			t.Fatal("key stream not deterministic")
		}
	}
}
