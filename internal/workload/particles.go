package workload

import "math"

// Body is a point mass used by the N-body applications.
type Body struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	Mass       float64
}

// Plummer3D samples n bodies from a Plummer model — the distribution the
// Barnes-Hut application uses for its galaxy inputs. Positions are scaled
// into roughly the unit cube around the origin.
func Plummer3D(n int, seed uint64) []Body {
	rng := NewRNG(seed)
	bodies := make([]Body, n)
	for i := range bodies {
		// Radius from the Plummer cumulative mass profile.
		m := rng.Range(0.01, 0.99)
		r := 1.0 / math.Sqrt(math.Pow(m, -2.0/3.0)-1.0)
		if r > 8 {
			r = 8
		}
		x, y, z := randomDirection(rng)
		b := &bodies[i]
		b.X, b.Y, b.Z = r*x, r*y, r*z
		// Velocities: isotropic with dispersion falling off with radius.
		v := 0.1 / math.Pow(1+r*r, 0.25)
		vx, vy, vz := randomDirection(rng)
		b.VX, b.VY, b.VZ = v*vx, v*vy, v*vz
		b.Mass = 1.0 / float64(n)
	}
	return bodies
}

// Uniform2D scatters n bodies uniformly in the unit square, the input
// style of the 2-D adaptive FMM.
func Uniform2D(n int, seed uint64) []Body {
	rng := NewRNG(seed)
	bodies := make([]Body, n)
	for i := range bodies {
		b := &bodies[i]
		b.X = rng.Float64()
		b.Y = rng.Float64()
		b.VX = rng.Range(-0.05, 0.05)
		b.VY = rng.Range(-0.05, 0.05)
		b.Mass = 1.0 / float64(n)
	}
	return bodies
}

// Clustered2D places n bodies in a few gaussian clusters, exercising the
// adaptive (non-uniform) tree structure of FMM and Barnes.
func Clustered2D(n, clusters int, seed uint64) []Body {
	rng := NewRNG(seed)
	if clusters < 1 {
		clusters = 1
	}
	centers := make([][2]float64, clusters)
	for i := range centers {
		centers[i] = [2]float64{rng.Range(0.2, 0.8), rng.Range(0.2, 0.8)}
	}
	bodies := make([]Body, n)
	for i := range bodies {
		c := centers[rng.Intn(clusters)]
		b := &bodies[i]
		b.X = clamp01(c[0] + 0.05*rng.Normal())
		b.Y = clamp01(c[1] + 0.05*rng.Normal())
		b.Mass = 1.0 / float64(n)
	}
	return bodies
}

// WaterLattice places n water molecules on a cubic lattice with slight
// jitter inside a box of the given side length (Å), the standard initial
// condition of the Water codes.
func WaterLattice(n int, side float64, seed uint64) []Body {
	rng := NewRNG(seed)
	dim := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := side / float64(dim)
	bodies := make([]Body, 0, n)
	for ix := 0; ix < dim && len(bodies) < n; ix++ {
		for iy := 0; iy < dim && len(bodies) < n; iy++ {
			for iz := 0; iz < dim && len(bodies) < n; iz++ {
				bodies = append(bodies, Body{
					X:    (float64(ix) + 0.5 + 0.1*rng.Range(-1, 1)) * spacing,
					Y:    (float64(iy) + 0.5 + 0.1*rng.Range(-1, 1)) * spacing,
					Z:    (float64(iz) + 0.5 + 0.1*rng.Range(-1, 1)) * spacing,
					Mass: 18.0,
				})
			}
		}
	}
	return bodies
}

func randomDirection(rng *RNG) (x, y, z float64) {
	for {
		x = rng.Range(-1, 1)
		y = rng.Range(-1, 1)
		z = rng.Range(-1, 1)
		r2 := x*x + y*y + z*z
		if r2 > 1e-8 && r2 <= 1 {
			r := math.Sqrt(r2)
			return x / r, y / r, z / r
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 0.99 {
		return 0.99
	}
	return v
}

// Keys generates n pseudo-random non-negative integer keys bounded by max,
// the Radix sort input.
func Keys(n int, max int, seed uint64) []int {
	rng := NewRNG(seed)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(max)
	}
	return keys
}
