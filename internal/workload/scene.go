package workload

import "math"

// Sphere is one primitive of a raytracing scene.
type Sphere struct {
	X, Y, Z float64
	Radius  float64
	// Surface properties: diffuse color component and reflectivity.
	Diffuse float64
	Reflect float64
}

// Scene is the input to the Raytrace application: a cluster of reflective
// spheres above a large ground sphere, with a point light. It substitutes
// for the paper's "car" model: comparable object count, mixed reflective
// and diffuse surfaces, unpredictable secondary-ray directions.
type Scene struct {
	Spheres []Sphere
	LightX  float64
	LightY  float64
	LightZ  float64
	// Bounds of the interesting region, used to build the uniform grid.
	Min, Max [3]float64
}

// GenScene builds a scene with n spheres clustered in the unit cube.
func GenScene(n int, seed uint64) *Scene {
	rng := NewRNG(seed)
	s := &Scene{LightX: 0.5, LightY: 2.0, LightZ: -0.5}
	// Ground: one huge sphere acting as a floor below y=0.
	s.Spheres = append(s.Spheres, Sphere{X: 0.5, Y: -100, Z: 0.5, Radius: 100, Diffuse: 0.8, Reflect: 0.1})
	for i := 1; i < n; i++ {
		r := rng.Range(0.02, 0.08)
		s.Spheres = append(s.Spheres, Sphere{
			X:       rng.Range(0.1, 0.9),
			Y:       rng.Range(r, 0.6),
			Z:       rng.Range(0.1, 0.9),
			Radius:  r,
			Diffuse: rng.Range(0.3, 0.9),
			Reflect: rng.Range(0.0, 0.6),
		})
	}
	s.Min = [3]float64{0, 0, 0}
	s.Max = [3]float64{1, 1, 1}
	return s
}

// Volume is the input to the Volrend application: a cube of voxel
// densities. GenVolume substitutes for the "head" data set with nested
// ellipsoidal shells (skin/skull/brain-like density bands) plus noise, so
// rays see the same kind of coherent opaque surfaces with empty space
// around them.
type Volume struct {
	Dim    int // voxels per side
	Voxels []float64
}

// At returns the density at voxel (x,y,z); out-of-range coordinates are 0.
func (v *Volume) At(x, y, z int) float64 {
	if x < 0 || y < 0 || z < 0 || x >= v.Dim || y >= v.Dim || z >= v.Dim {
		return 0
	}
	return v.Voxels[(z*v.Dim+y)*v.Dim+x]
}

// Index returns the linear voxel index of (x,y,z).
func (v *Volume) Index(x, y, z int) int { return (z*v.Dim+y)*v.Dim + x }

// GenVolume builds a dim³ volume of nested ellipsoid shells.
func GenVolume(dim int, seed uint64) *Volume {
	rng := NewRNG(seed)
	v := &Volume{Dim: dim, Voxels: make([]float64, dim*dim*dim)}
	c := float64(dim-1) / 2
	for z := 0; z < dim; z++ {
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				// Normalized ellipsoidal radius (slightly squashed in z).
				dx := (float64(x) - c) / c
				dy := (float64(y) - c) / c
				dz := (float64(z) - c) / (c * 0.85)
				r := math.Sqrt(dx*dx + dy*dy + dz*dz)
				var d float64
				switch {
				case r > 0.95:
					d = 0 // empty space
				case r > 0.85:
					d = 0.35 // skin-like shell
				case r > 0.70:
					d = 0.9 // skull-like dense shell
				case r > 0.25:
					d = 0.15 // soft interior
				default:
					d = 0.5 // dense core
				}
				if d > 0 {
					d += 0.05 * rng.Range(-1, 1)
					if d < 0 {
						d = 0
					}
				}
				v.Voxels[v.Index(x, y, z)] = d
			}
		}
	}
	return v
}

// Polygon is an input surface for Radiosity: an axis-aligned rectangle
// with an emission and reflectance, described by its corner, two edge
// vectors, and area.
type Polygon struct {
	// Corner and edges (axis aligned in the generated room).
	CX, CY, CZ float64
	E1         [3]float64
	E2         [3]float64
	Emission   float64
	Reflect    float64
}

// Area returns the polygon area (|E1|·|E2| for rectangles).
func (p *Polygon) Area() float64 {
	l1 := math.Sqrt(p.E1[0]*p.E1[0] + p.E1[1]*p.E1[1] + p.E1[2]*p.E1[2])
	l2 := math.Sqrt(p.E2[0]*p.E2[0] + p.E2[1]*p.E2[1] + p.E2[2]*p.E2[2])
	return l1 * l2
}

// Center returns the polygon's centroid.
func (p *Polygon) Center() (x, y, z float64) {
	return p.CX + (p.E1[0]+p.E2[0])/2, p.CY + (p.E1[1]+p.E2[1])/2, p.CZ + (p.E1[2]+p.E2[2])/2
}

// GenRoom builds the Radiosity input: the six walls of a unit room (split
// into panels), a ceiling light panel, and a few box-like occluders —
// structurally equivalent to the paper's "room" model.
func GenRoom(panels int, seed uint64) []Polygon {
	rng := NewRNG(seed)
	if panels < 1 {
		panels = 1
	}
	var polys []Polygon
	step := 1.0 / float64(panels)
	wall := func(f func(u, v float64) (x, y, z float64, e1, e2 [3]float64), refl float64) {
		for i := 0; i < panels; i++ {
			for j := 0; j < panels; j++ {
				x, y, z, e1, e2 := f(float64(i)*step, float64(j)*step)
				polys = append(polys, Polygon{CX: x, CY: y, CZ: z, E1: e1, E2: e2, Reflect: refl})
			}
		}
	}
	sx := [3]float64{step, 0, 0}
	sy := [3]float64{0, step, 0}
	sz := [3]float64{0, 0, step}
	wall(func(u, v float64) (float64, float64, float64, [3]float64, [3]float64) { return u, 0, v, sx, sz }, 0.7) // floor
	wall(func(u, v float64) (float64, float64, float64, [3]float64, [3]float64) { return u, 1, v, sx, sz }, 0.8) // ceiling
	wall(func(u, v float64) (float64, float64, float64, [3]float64, [3]float64) { return u, v, 0, sx, sy }, 0.6)
	wall(func(u, v float64) (float64, float64, float64, [3]float64, [3]float64) { return u, v, 1, sx, sy }, 0.6)
	wall(func(u, v float64) (float64, float64, float64, [3]float64, [3]float64) { return 0, u, v, sy, sz }, 0.6)
	wall(func(u, v float64) (float64, float64, float64, [3]float64, [3]float64) { return 1, u, v, sy, sz }, 0.6)
	// Light panel in the middle of the ceiling.
	polys = append(polys, Polygon{
		CX: 0.4, CY: 0.999, CZ: 0.4,
		E1: [3]float64{0.2, 0, 0}, E2: [3]float64{0, 0, 0.2},
		Emission: 100, Reflect: 0,
	})
	// A couple of occluder tops at random positions.
	for k := 0; k < 2; k++ {
		x := rng.Range(0.1, 0.7)
		z := rng.Range(0.1, 0.7)
		polys = append(polys, Polygon{
			CX: x, CY: 0.3, CZ: z,
			E1: [3]float64{0.2, 0, 0}, E2: [3]float64{0, 0, 0.2},
			Reflect: 0.5,
		})
	}
	return polys
}
