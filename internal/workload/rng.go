// Package workload generates the synthetic inputs that stand in for the
// SPLASH-2 input files (particle distributions for Barnes/FMM, a sparse
// SPD matrix replacing tk15.O for Cholesky, a sphere-cluster scene
// replacing "car" for Raytrace, a density volume replacing "head" for
// Volrend, key streams for Radix), plus a deterministic RNG so every
// experiment is reproducible.
package workload

import "math"

// RNG is a small deterministic xorshift64* generator. The experiments must
// be exactly reproducible across runs and processor counts, so all input
// generation uses this rather than math/rand.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a standard normal variate (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Range returns a uniform value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }
