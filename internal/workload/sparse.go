package workload

// BlockSparse is a symmetric positive-definite matrix stored as a sparse
// lower-triangular pattern of dense B×B blocks — the representation the
// blocked sparse Cholesky kernel factors. It substitutes for the paper's
// tk15.O circuit matrix: same structural character (narrow band plus
// scattered sub-diagonal coupling blocks, SPD by construction).
type BlockSparse struct {
	N int // block dimension: N×N blocks
	B int // scalar block size: each block is B×B

	// Cols[j] lists the block rows i ≥ j with a stored block in column j,
	// sorted ascending; Cols[j][0] == j always (diagonal block).
	Cols [][]int

	// Blocks maps i*N+j to the B×B block values in row-major order.
	Blocks map[int][]float64
}

// Key returns the Blocks map key for block (i,j).
func (a *BlockSparse) Key(i, j int) int { return i*a.N + j }

// Block returns the values of block (i,j), or nil if absent.
func (a *BlockSparse) Block(i, j int) []float64 { return a.Blocks[a.Key(i, j)] }

// Order returns the scalar dimension N*B.
func (a *BlockSparse) Order() int { return a.N * a.B }

// GenBlockSPD generates an SPD block-sparse matrix by constructing a
// sparse lower-triangular factor L (band of width 1 plus `extra` random
// sub-diagonal blocks per column) and forming A = L·Lᵀ at block level.
// Because A is formed from a factor, the kernel's own factorization can be
// verified against ‖A − L̂L̂ᵀ‖.
func GenBlockSPD(nblocks, bsize, extra int, seed uint64) *BlockSparse {
	rng := NewRNG(seed)
	L := &BlockSparse{N: nblocks, B: bsize, Blocks: map[int][]float64{}, Cols: make([][]int, nblocks)}

	// Pattern: diagonal + immediate sub-diagonal + random extras.
	for j := 0; j < nblocks; j++ {
		rows := map[int]bool{j: true}
		if j+1 < nblocks {
			rows[j+1] = true
		}
		for e := 0; e < extra; e++ {
			if j+2 < nblocks {
				rows[j+2+rng.Intn(nblocks-j-2)] = true
			}
		}
		for i := range rows {
			L.Cols[j] = append(L.Cols[j], i)
		}
		sortInts(L.Cols[j])
	}

	// Values: diagonal blocks unit-lower-triangular with dominant positive
	// diagonal; off-diagonal blocks small, keeping A well conditioned.
	for j := 0; j < nblocks; j++ {
		for _, i := range L.Cols[j] {
			blk := make([]float64, bsize*bsize)
			if i == j {
				for r := 0; r < bsize; r++ {
					for c := 0; c < r; c++ {
						blk[r*bsize+c] = 0.1 * rng.Range(-1, 1)
					}
					blk[r*bsize+r] = rng.Range(1.0, 2.0)
				}
			} else {
				for k := range blk {
					blk[k] = 0.1 * rng.Range(-1, 1)
				}
			}
			L.Blocks[L.Key(i, j)] = blk
		}
	}

	return multiplyLLT(L)
}

// multiplyLLT forms A = L·Lᵀ (lower triangle only) at block granularity.
func multiplyLLT(L *BlockSparse) *BlockSparse {
	n, b := L.N, L.B
	A := &BlockSparse{N: n, B: b, Blocks: map[int][]float64{}, Cols: make([][]int, n)}
	// A(i,j) = Σ_k L(i,k)·L(j,k)ᵀ for k ≤ j ≤ i.
	for k := 0; k < n; k++ {
		rows := L.Cols[k]
		for _, j := range rows {
			Ljk := L.Block(j, k)
			for _, i := range rows {
				if i < j {
					continue
				}
				Lik := L.Block(i, k)
				dst := A.Blocks[A.Key(i, j)]
				if dst == nil {
					dst = make([]float64, b*b)
					A.Blocks[A.Key(i, j)] = dst
				}
				// dst += Lik · Ljkᵀ
				for r := 0; r < b; r++ {
					for c := 0; c < b; c++ {
						s := 0.0
						for t := 0; t < b; t++ {
							s += Lik[r*b+t] * Ljk[c*b+t]
						}
						dst[r*b+c] += s
					}
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if A.Blocks[A.Key(i, j)] != nil {
				A.Cols[j] = append(A.Cols[j], i)
			}
		}
	}
	return A
}

// Dense expands the full symmetric matrix for verification (small orders).
func (a *BlockSparse) Dense() []float64 {
	n := a.Order()
	out := make([]float64, n*n)
	for j := 0; j < a.N; j++ {
		for _, i := range a.Cols[j] {
			blk := a.Block(i, j)
			for r := 0; r < a.B; r++ {
				for c := 0; c < a.B; c++ {
					v := blk[r*a.B+c]
					out[(i*a.B+r)*n+(j*a.B+c)] = v
					out[(j*a.B+c)*n+(i*a.B+r)] = v
				}
			}
		}
	}
	return out
}

// NonzeroBlocks returns the number of stored (lower-triangle) blocks.
func (a *BlockSparse) NonzeroBlocks() int { return len(a.Blocks) }

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
