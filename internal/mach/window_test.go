package mach

import (
	"sync"
	"testing"
	"time"
)

func TestMinActiveClockExcludesParked(t *testing.T) {
	m := MustNew(Config{Procs: 3, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
	m.win.clocks[0].Store(100)
	m.win.clocks[1].Store(50)
	m.win.clocks[2].Store(10)
	m.win.parked[0].Store(false)
	m.win.parked[1].Store(false)
	m.win.parked[2].Store(true) // parked laggard must not hold the window
	min, ok := m.minActiveClock()
	if !ok || min != 50 {
		t.Fatalf("min=%d ok=%v, want 50", min, ok)
	}
	m.win.parked[0].Store(true)
	m.win.parked[1].Store(true)
	if _, ok := m.minActiveClock(); ok {
		t.Fatal("all parked reported active")
	}
}

func TestThrottleReleasesWhenLaggardAdvances(t *testing.T) {
	m := MustNew(Config{Procs: 2, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
	fast := m.procs[0]
	slow := m.procs[1]
	fast.unpark()
	slow.unpark()
	fast.time = defaultWindow * 3 // far ahead
	slow.time = 0
	slow.publish()

	done := make(chan struct{})
	go func() {
		fast.throttle()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("throttle returned while laggard was behind")
	case <-time.After(20 * time.Millisecond):
	}
	// Advance the laggard: throttle must release.
	slow.time = defaultWindow * 3
	slow.publish()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("throttle never released after laggard caught up")
	}
}

func TestThrottleReleasesWhenLaggardParks(t *testing.T) {
	m := MustNew(Config{Procs: 2, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
	fast := m.procs[0]
	slow := m.procs[1]
	fast.unpark()
	slow.unpark()
	fast.time = defaultWindow * 5
	slow.time = 0
	slow.publish()

	done := make(chan struct{})
	go func() {
		fast.throttle()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	slow.park() // blocked at a barrier: excluded from the window
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("throttle never released after laggard parked")
	}
}

func TestMinProcNeverThrottles(t *testing.T) {
	m := MustNew(Config{Procs: 2, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
	p := m.procs[0]
	p.unpark()
	m.procs[1].unpark()
	m.win.clocks[1].Store(defaultWindow * 10) // other is far ahead
	p.time = 5
	doneCh := make(chan struct{})
	go func() {
		p.throttle() // the minimum proc must pass immediately
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("minimum-clock processor was throttled")
	}
}

func TestRunBodiesUnparkAndPark(t *testing.T) {
	m := MustNew(Config{Procs: 2, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
	for i := range m.win.parked {
		if !m.win.parked[i].Load() {
			t.Fatal("procs not parked before Run")
		}
	}
	var mu sync.Mutex
	states := map[int]bool{}
	m.Run(func(p *Proc) {
		mu.Lock()
		states[p.ID] = m.win.parked[p.ID].Load()
		mu.Unlock()
	})
	for id, parked := range states {
		if parked {
			t.Fatalf("proc %d parked while running body", id)
		}
	}
	for i := range m.win.parked {
		if !m.win.parked[i].Load() {
			t.Fatalf("proc %d not re-parked after Run", i)
		}
	}
}
