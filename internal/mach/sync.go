package mach

import "sync"

// Barrier is a reusable all-processor barrier with PRAM time semantics:
// every participant leaves with its clock advanced to the maximum arrival
// clock, and the difference is accounted as synchronization wait time.
//
// A barrier is also a full release→acquire edge for batched reference
// capture: every participant flushes its buffer on arrival, and all
// depart in a fresh synchronization epoch strictly above every
// arrival epoch, so recorded pre-barrier events merge before recorded
// post-barrier events regardless of goroutine scheduling.
type Barrier struct {
	n int

	mu           sync.Mutex
	cv           *sync.Cond
	arrived      int
	gen          uint64
	maxTime      uint64
	releaseTime  uint64
	maxEpoch     uint64
	releaseEpoch uint64
}

// NewBarrier returns a barrier for all processors of the machine.
func (m *Machine) NewBarrier() *Barrier { return NewBarrier(m.Procs()) }

// NewBarrier returns a barrier for n participants. A barrier for zero
// (or fewer) participants is unusable — Wait could never release — so
// misuse panics immediately rather than deadlocking the first waiter.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("mach: barrier needs at least one participant")
	}
	b := &Barrier{n: n}
	b.cv = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have arrived.
func (b *Barrier) Wait(p *Proc) { b.wait(p, nil) }

// wait implements Wait; when onRelease is non-nil the last arriver invokes
// it with the release time and release epoch while every other participant
// is still blocked under the barrier mutex — a race-free point for global
// actions like measurement resets (Machine.Epoch).
func (b *Barrier) wait(p *Proc, onRelease func(releaseTime, releaseEpoch uint64)) {
	b.mu.Lock()
	p.c.Barriers++
	if e := p.syncRelease(); e > b.maxEpoch {
		b.maxEpoch = e
	}
	if p.time > b.maxTime {
		b.maxTime = p.time
	}
	b.arrived++
	if b.arrived == b.n {
		b.releaseTime = b.maxTime
		b.releaseEpoch = b.maxEpoch + 1
		b.arrived = 0
		b.maxTime = 0
		b.maxEpoch = 0
		b.gen++
		p.wait(b.releaseTime)
		p.syncAcquire(b.releaseEpoch - 1)
		if onRelease != nil {
			onRelease(b.releaseTime, b.releaseEpoch)
		}
		b.cv.Broadcast()
		b.mu.Unlock()
		return
	}
	gen := b.gen
	p.park()
	for gen == b.gen {
		b.cv.Wait()
	}
	p.unpark()
	p.wait(b.releaseTime)
	p.syncAcquire(b.releaseEpoch - 1)
	b.mu.Unlock()
}

// Lock is a mutual-exclusion lock with PRAM serialization: an acquirer
// whose clock is behind the previous critical section's release time is
// delayed (and the delay accounted as sync wait), so lock contention shows
// up as serialization exactly as in the paper's speedup model. The zero
// value is an unlocked Lock.
//
// A release→acquire pair is an epoch edge for batched capture. Note the
// order in which contending processors acquire a Lock is
// scheduler-dependent, so epochs assigned through contended locks — and
// the merged recording order of the events they protect — vary between
// runs; recordings are byte-stable only for programs whose measured
// phases are barrier/flag-structured (see internal/README.md).
type Lock struct {
	mu          sync.Mutex
	lastRelease uint64
	lastEpoch   uint64
}

// Acquire takes the lock.
func (l *Lock) Acquire(p *Proc) {
	l.mu.Lock()
	p.c.Locks++
	p.wait(l.lastRelease)
	p.syncAcquire(l.lastEpoch)
}

// Release drops the lock, publishing the releaser's clock.
func (l *Lock) Release(p *Proc) {
	if p.time > l.lastRelease {
		l.lastRelease = p.time
	}
	if e := p.syncRelease(); e > l.lastEpoch {
		l.lastEpoch = e
	}
	l.mu.Unlock()
}

// Flag is a one-shot flag ("pause" in SPLASH-2 terminology): waiters block
// until some processor sets it, and leave with their clocks advanced to
// the setter's clock. The zero value is an unset Flag.
//
// For batched reference capture a Flag is a release→acquire edge from
// the *first* setter to every waiter: Set on an already-set flag is a
// no-op and publishes neither time nor epoch, so a second setter's
// buffered references are not ordered before the waiters. Flags
// therefore assume a single setter for epoch/ordering purposes — the
// SPLASH-2 "pause" idiom — and a racing second setter's events merge
// only at its own next synchronization point.
type Flag struct {
	mu       sync.Mutex
	cv       *sync.Cond
	set      bool
	setTime  uint64
	setEpoch uint64
}

// MakeFlags allocates n flags (e.g. one per block column in Cholesky).
func MakeFlags(n int) []Flag { return make([]Flag, n) }

func (f *Flag) cond() *sync.Cond {
	if f.cv == nil {
		f.cv = sync.NewCond(&f.mu)
	}
	return f.cv
}

// Set raises the flag, waking all waiters. Setting twice is a no-op.
func (f *Flag) Set(p *Proc) {
	f.mu.Lock()
	if !f.set {
		f.set = true
		f.setTime = p.time
		f.setEpoch = p.syncRelease()
		f.cond().Broadcast()
	}
	f.mu.Unlock()
}

// Wait blocks until the flag is set, accounting the wait as a pause.
func (f *Flag) Wait(p *Proc) {
	f.mu.Lock()
	p.c.Pauses++
	cv := f.cond()
	p.park()
	for !f.set {
		cv.Wait()
	}
	p.unpark()
	p.wait(f.setTime)
	p.syncAcquire(f.setEpoch)
	f.mu.Unlock()
}

// IsSet reports whether the flag has been raised (no time accounting).
func (f *Flag) IsSet() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}
