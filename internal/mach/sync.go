package mach

import "sync"

// Barrier is a reusable all-processor barrier with PRAM time semantics:
// every participant leaves with its clock advanced to the maximum arrival
// clock, and the difference is accounted as synchronization wait time.
type Barrier struct {
	n int

	mu          sync.Mutex
	cv          *sync.Cond
	arrived     int
	gen         uint64
	maxTime     uint64
	releaseTime uint64
}

// NewBarrier returns a barrier for all processors of the machine.
func (m *Machine) NewBarrier() *Barrier { return NewBarrier(m.Procs()) }

// NewBarrier returns a barrier for n participants. A barrier for zero
// (or fewer) participants is unusable — Wait could never release — so
// misuse panics immediately rather than deadlocking the first waiter.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("mach: barrier needs at least one participant")
	}
	b := &Barrier{n: n}
	b.cv = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have arrived.
func (b *Barrier) Wait(p *Proc) { b.wait(p, nil) }

// wait implements Wait; when onRelease is non-nil the last arriver invokes
// it with the release time while every other participant is still blocked
// under the barrier mutex — a race-free point for global actions like
// measurement resets (Machine.Epoch).
func (b *Barrier) wait(p *Proc, onRelease func(releaseTime uint64)) {
	b.mu.Lock()
	p.c.Barriers++
	if p.time > b.maxTime {
		b.maxTime = p.time
	}
	b.arrived++
	if b.arrived == b.n {
		b.releaseTime = b.maxTime
		b.arrived = 0
		b.maxTime = 0
		b.gen++
		p.wait(b.releaseTime)
		if onRelease != nil {
			onRelease(b.releaseTime)
		}
		b.cv.Broadcast()
		b.mu.Unlock()
		return
	}
	gen := b.gen
	p.park()
	for gen == b.gen {
		b.cv.Wait()
	}
	p.unpark()
	p.wait(b.releaseTime)
	b.mu.Unlock()
}

// Lock is a mutual-exclusion lock with PRAM serialization: an acquirer
// whose clock is behind the previous critical section's release time is
// delayed (and the delay accounted as sync wait), so lock contention shows
// up as serialization exactly as in the paper's speedup model. The zero
// value is an unlocked Lock.
type Lock struct {
	mu          sync.Mutex
	lastRelease uint64
}

// Acquire takes the lock.
func (l *Lock) Acquire(p *Proc) {
	l.mu.Lock()
	p.c.Locks++
	p.wait(l.lastRelease)
}

// Release drops the lock, publishing the releaser's clock.
func (l *Lock) Release(p *Proc) {
	if p.time > l.lastRelease {
		l.lastRelease = p.time
	}
	l.mu.Unlock()
}

// Flag is a one-shot flag ("pause" in SPLASH-2 terminology): waiters block
// until some processor sets it, and leave with their clocks advanced to
// the setter's clock. The zero value is an unset Flag.
type Flag struct {
	mu      sync.Mutex
	cv      *sync.Cond
	set     bool
	setTime uint64
}

// MakeFlags allocates n flags (e.g. one per block column in Cholesky).
func MakeFlags(n int) []Flag { return make([]Flag, n) }

func (f *Flag) cond() *sync.Cond {
	if f.cv == nil {
		f.cv = sync.NewCond(&f.mu)
	}
	return f.cv
}

// Set raises the flag, waking all waiters. Setting twice is a no-op.
func (f *Flag) Set(p *Proc) {
	f.mu.Lock()
	if !f.set {
		f.set = true
		f.setTime = p.time
		f.cond().Broadcast()
	}
	f.mu.Unlock()
}

// Wait blocks until the flag is set, accounting the wait as a pause.
func (f *Flag) Wait(p *Proc) {
	f.mu.Lock()
	p.c.Pauses++
	cv := f.cond()
	p.park()
	for !f.set {
		cv.Wait()
	}
	p.unpark()
	p.wait(f.setTime)
	f.mu.Unlock()
}

// IsSet reports whether the flag has been raised (no time accounting).
func (f *Flag) IsSet() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}
