package mach

import (
	"sync"
	"sync/atomic"
)

// TaskQueues implements the distributed task queues with task stealing
// used by Radiosity, Raytrace, Volrend and Cholesky: one queue per
// processor, locally pushed and popped LIFO, stolen FIFO from victims
// scanned round-robin. Queue slots and head/tail words live in simulated
// shared memory (homed at the owning processor), so queue operations
// generate the communication that stealing causes in the real programs.
//
// Timing model: dequeues of distinct tasks are logically independent, so
// queue mutual exclusion is real-time only (a Go mutex) and does not
// propagate release times between processors the way a data lock does —
// otherwise an owner's local pops would drag every thief's clock forward
// and fabricate serialization. Instead each task carries the logical time
// it was pushed: an executor resumes at max(own clock, push time), which
// is the true dependence. Idle processors block until a push or final
// completion and charge the wait as synchronization time (the paper's
// "user defined synchronization" category for Radiosity).
type TaskQueues struct {
	m           *Machine
	slots       []*IntArray // per-proc circular buffers of task ids
	stamps      []*IntArray // logical push times, parallel to slots
	heads       *IntArray   // per-proc head index (steal end)
	tails       *IntArray   // per-proc tail index (local end)
	qmu         []sync.Mutex
	qEpoch      []uint64       // per-queue sync epoch, guarded by qmu[q]
	sizes       []atomic.Int64 // lock-free emptiness probe mirror
	outstanding atomic.Int64
	capacity    int

	evMu       sync.Mutex
	evCond     *sync.Cond
	version    uint64
	eventTime  uint64
	eventEpoch uint64
}

// Modeled instruction costs: examining one remote queue while stealing,
// and the atomic lock/unlock pair around a queue operation.
const (
	probeCost  = 4
	lockOpCost = 2
)

// NewTaskQueues creates per-processor queues with the given capacity each.
func (m *Machine) NewTaskQueues(capacity int) *TaskQueues {
	t := &TaskQueues{m: m, capacity: capacity}
	t.evCond = sync.NewCond(&t.evMu)
	n := m.Procs()
	t.slots = make([]*IntArray, n)
	t.stamps = make([]*IntArray, n)
	for i := 0; i < n; i++ {
		t.slots[i] = m.NewInt(capacity, true, Owner(i))
		t.stamps[i] = m.NewInt(capacity, true, Owner(i))
	}
	// head/tail counters padded to one line apiece to avoid false sharing
	// between owners — the applications pad their queue headers similarly.
	pad := m.LineSize() / WordBytes
	t.heads = m.NewInt(n*pad, true, Interleaved())
	t.tails = m.NewInt(n*pad, true, Interleaved())
	t.qmu = make([]sync.Mutex, n)
	t.qEpoch = make([]uint64, n)
	t.sizes = make([]atomic.Int64, n)
	return t
}

func (t *TaskQueues) pad() int { return t.m.LineSize() / WordBytes }

// signal records a queue event (push, or last completion) at the caller's
// logical time and wakes blocked thieves. It is an epoch release edge to
// match the waiters' acquire in PopOrSteal.
func (t *TaskQueues) signal(p *Proc) {
	t.evMu.Lock()
	t.version++
	if p.time > t.eventTime {
		t.eventTime = p.time
	}
	if e := p.syncRelease(); e > t.eventEpoch {
		t.eventEpoch = e
	}
	t.evCond.Broadcast()
	t.evMu.Unlock()
}

// Push enqueues a task on p's own queue. Each qmu critical section is an
// epoch acquire/release pair on the queue (like Lock): the slot words a
// pusher writes merge before the reads of whichever processor later pops
// or steals the task, because that processor's critical section joins a
// strictly higher epoch.
func (t *TaskQueues) Push(p *Proc, task int) {
	t.outstanding.Add(1)
	q := p.ID
	t.qmu[q].Lock()
	p.c.Locks++
	p.syncAcquire(t.qEpoch[q])
	p.Instr(lockOpCost)
	tail := t.tails.Get(p, q*t.pad())
	head := t.heads.Get(p, q*t.pad())
	if tail-head >= t.capacity {
		t.qmu[q].Unlock()
		panic("mach: task queue overflow; increase capacity")
	}
	t.slots[q].Set(p, tail%t.capacity, task)
	t.stamps[q].Set(p, tail%t.capacity, int(p.time))
	t.tails.Set(p, q*t.pad(), tail+1)
	t.sizes[q].Add(1)
	if e := p.syncRelease(); e > t.qEpoch[q] {
		t.qEpoch[q] = e
	}
	t.qmu[q].Unlock()
	t.signal(p)
}

// Done marks one previously popped task complete. PopOrSteal only reports
// global exhaustion when every pushed task has been marked Done, so tasks
// that spawn subtasks (Radiosity) terminate correctly.
func (t *TaskQueues) Done(p *Proc) {
	if t.outstanding.Add(-1) == 0 {
		t.signal(p)
	}
}

// PopOrSteal dequeues from p's own queue, stealing from others when empty.
// It returns ok=false only when all tasks everywhere are complete.
func (t *TaskQueues) PopOrSteal(p *Proc) (task int, ok bool) {
	for {
		p.throttle()
		t.evMu.Lock()
		v := t.version
		t.evMu.Unlock()

		if task, ok := t.tryPop(p, p.ID, true); ok {
			return task, true
		}
		n := t.m.Procs()
		for i := 1; i < n; i++ {
			victim := (p.ID + i) % n
			p.Instr(probeCost)
			if t.sizes[victim].Load() == 0 {
				continue
			}
			if task, ok := t.tryPop(p, victim, false); ok {
				return task, true
			}
		}
		if t.outstanding.Load() == 0 {
			// All work complete: idle until the finishing event.
			t.evMu.Lock()
			p.wait(t.eventTime)
			p.syncAcquire(t.eventEpoch)
			t.evMu.Unlock()
			return 0, false
		}
		// Tasks are in flight elsewhere: block until a push or completion,
		// then resume at the waking event's logical time (and epoch).
		t.evMu.Lock()
		p.park()
		for t.version == v && t.outstanding.Load() != 0 {
			t.evCond.Wait()
		}
		p.unpark()
		p.wait(t.eventTime)
		p.syncAcquire(t.eventEpoch)
		t.evMu.Unlock()
	}
}

// tryPop removes one task from queue q: LIFO from the local end for the
// owner, FIFO from the steal end for thieves. The executor's clock
// advances to the task's push time (its true dependence).
func (t *TaskQueues) tryPop(p *Proc, q int, local bool) (int, bool) {
	t.qmu[q].Lock()
	defer t.qmu[q].Unlock()
	p.c.Locks++
	p.syncAcquire(t.qEpoch[q])
	p.Instr(lockOpCost)
	head := t.heads.Get(p, q*t.pad())
	tail := t.tails.Get(p, q*t.pad())
	if head == tail {
		// Empty probe: nothing was written, so there is no dependence to
		// publish — skipping the release spares a buffer flush and epoch
		// advance on every failed steal probe. The probe's own reads stay
		// buffered until the prober's next synchronization point, which
		// is legal (it published nothing for others to acquire).
		return 0, false
	}
	var slot int
	if local {
		tail--
		slot = tail % t.capacity
		t.tails.Set(p, q*t.pad(), tail)
	} else {
		slot = head % t.capacity
		t.heads.Set(p, q*t.pad(), head+1)
	}
	task := t.slots[q].Get(p, slot)
	p.wait(uint64(t.stamps[q].Get(p, slot)))
	t.sizes[q].Add(-1)
	if e := p.syncRelease(); e > t.qEpoch[q] {
		t.qEpoch[q] = e
	}
	return task, true
}

// Outstanding returns the number of pushed-but-not-Done tasks (tests).
func (t *TaskQueues) Outstanding() int64 { return t.outstanding.Load() }
