package mach

import "fmt"

// Placement decides which node's local memory holds each cache line of an
// allocation: it maps a line index within the allocation (0..total-1) to a
// node id. The SPLASH-2 programs state per-application distribution
// guidelines (§2.2); the helpers below cover them.
type Placement func(lineIdx, totalLines, procs int) int

// Blocked distributes lines in contiguous equal chunks across nodes — the
// distribution used when each processor's partition is contiguous (FFT
// rows, LU/Ocean subgrids).
func Blocked() Placement {
	return func(i, total, procs int) int {
		if total == 0 {
			return 0
		}
		h := i * procs / total
		if h >= procs {
			h = procs - 1
		}
		return h
	}
}

// Interleaved distributes consecutive lines round-robin across nodes —
// approximating the "no attempt at intelligent distribution" case (Barnes,
// FMM, Radiosity, Raytrace, Volrend), where pages end up scattered.
func Interleaved() Placement {
	return func(i, total, procs int) int { return i % procs }
}

// Owner places every line in one node's local memory (per-processor
// partitions explicitly allocated locally).
func Owner(o int) Placement {
	return func(i, total, procs int) int { return o % procs }
}

// Alloc reserves words of shared or private simulated memory with the given
// placement and returns its base address. Allocations are rounded up to
// whole cache lines so a line never spans allocations with different homes.
// Alloc is safe for concurrent use (Radiosity subdivides during the
// parallel phase).
func (m *Machine) Alloc(words int, shared bool, place Placement) Addr {
	if words < 0 {
		panic(fmt.Sprintf("mach: negative allocation %d", words))
	}
	if place == nil {
		place = Interleaved()
	}
	lineWords := m.memCfg.LineSize / WordBytes
	lines := (words + lineWords - 1) / lineWords
	if lines == 0 {
		lines = 1
	}

	m.allocMu.Lock()
	base := m.nextLine
	m.nextLine += uint64(lines)
	// Appending may grow in place: slots beyond the published length are
	// written only here (under allocMu) and readers never look past the
	// length of the snapshot they loaded, so the lock-free lookups in
	// homeOf/isShared stay race-free. The store publishes the new entries.
	old := m.hm.Load()
	homes, sharedMap := old.homes, old.shared
	for i := 0; i < lines; i++ {
		h := place(i, lines, m.cfg.Procs)
		if h < 0 || h >= m.cfg.Procs {
			m.allocMu.Unlock()
			panic(fmt.Sprintf("mach: placement returned node %d of %d", h, m.cfg.Procs))
		}
		homes = append(homes, int32(h))
		sharedMap = append(sharedMap, shared)
	}
	m.hm.Store(&homeMap{homes: homes, shared: sharedMap})
	m.allocMu.Unlock()

	if m.sys != nil {
		m.sys.Reserve(m.nextLine * uint64(lineWords))
	}
	return Addr(base) * Addr(m.memCfg.LineSize)
}

// AllocatedWords returns the allocation high-water mark in words.
func (m *Machine) AllocatedWords() uint64 {
	lines := uint64(len(m.hm.Load().homes))
	return lines * uint64(m.memCfg.LineSize/WordBytes)
}
