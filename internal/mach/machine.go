// Package mach simulates a shared-address-space multiprocessor as seen by
// an application: P processors with private caches over physically
// distributed memory, an allocator with explicit data placement, and the
// synchronization primitives the SPLASH-2 programs use (barriers, locks,
// and flag-based pauses).
//
// Timing is the paper's PRAM model (§2.2): every instruction and memory
// reference completes in one cycle, so each processor carries a logical
// clock advanced by its own instruction stream and joined at
// synchronization points. Deviations from ideal speedup therefore measure
// exactly load imbalance, serialization at critical sections, and the
// overhead of redundant computation and parallelism management (§4).
//
// Applications are ordinary Go code: each simulated processor runs in its
// own goroutine and issues explicit Read/Write/Instr/Flop events. Shared
// data lives both in regular Go memory (for values) and in the simulated
// address space (for the reference stream), tied together by the typed
// array helpers in array.go.
package mach

import (
	"fmt"
	"sync"
	"sync/atomic"

	"splash2/internal/memsys"
)

// Addr is a byte address in the simulated shared address space.
type Addr = memsys.Addr

// MemModel selects how much of the memory system is simulated.
type MemModel int

const (
	// FullMem simulates caches, directory and traffic for every reference.
	FullMem MemModel = iota
	// CountOnly counts references but skips cache simulation. PRAM timing
	// is identical either way, so speedup and synchronization studies
	// (Figures 1–2, Table 1) run much faster under CountOnly.
	CountOnly
)

// Config describes a simulated machine.
type Config struct {
	Procs         int
	CacheSize     int
	Assoc         int // memsys.FullyAssoc (0) = fully associative
	LineSize      int
	OverheadBytes int
	MemModel      MemModel
	// NoReplacementHints disables §2.2 replacement hints (ablation).
	NoReplacementHints bool
}

// MemConfig converts to the memory-system configuration.
func (c Config) MemConfig() memsys.Config {
	return memsys.Config{
		Procs:              c.Procs,
		CacheSize:          c.CacheSize,
		Assoc:              c.Assoc,
		LineSize:           c.LineSize,
		OverheadBytes:      c.OverheadBytes,
		NoReplacementHints: c.NoReplacementHints,
	}.WithDefaults()
}

// homeMap is an immutable snapshot of the allocator's placement state:
// per-line home node and shared flag. Alloc publishes a fresh snapshot
// atomically after each allocation, so the memory system's per-reference
// home and sharing lookups read it without taking any lock.
type homeMap struct {
	homes  []int32
	shared []bool
}

// Machine is one simulated multiprocessor.
type Machine struct {
	cfg    Config
	memCfg memsys.Config
	sys    *memsys.System // nil under CountOnly

	allocMu  sync.Mutex // serializes allocators; readers use hm
	nextLine uint64     // allocation high-water mark, in lines
	hm       atomic.Pointer[homeMap]

	procs []*Proc

	statMu   sync.Mutex
	baseTime []uint64
	base     []Counters

	win windowState
	rec *memsys.Recorder
}

// New creates a machine. The zero values of cache parameters take the
// paper's defaults (32 procs, 1 MB 4-way 64 B-line caches, 8 B overhead).
func New(cfg Config) (*Machine, error) {
	mc := cfg.MemConfig()
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	cfg.Procs = mc.Procs
	m := &Machine{cfg: cfg, memCfg: mc}
	m.hm.Store(&homeMap{})
	if cfg.MemModel == FullMem {
		sys, err := memsys.New(mc, m.homeOf)
		if err != nil {
			return nil, err
		}
		m.sys = sys
	}
	m.procs = make([]*Proc, cfg.Procs)
	for i := range m.procs {
		m.procs[i] = &Proc{ID: i, m: m}
	}
	m.setCaptureFlags()
	m.baseTime = make([]uint64, cfg.Procs)
	m.base = make([]Counters, cfg.Procs)
	m.win.init(cfg.Procs)
	return m, nil
}

// MustNew is New for known-good configurations (tests, examples).
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Procs returns the number of processors.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// LineSize returns the cache line size in bytes.
func (m *Machine) LineSize() int { return m.memCfg.LineSize }

// homeOf implements memsys.HomeFn. It runs on every simulated cache
// miss, so it reads the atomically published snapshot instead of
// taking a lock.
func (m *Machine) homeOf(line uint64) int {
	hm := m.hm.Load()
	if line < uint64(len(hm.homes)) {
		return int(hm.homes[line])
	}
	return 0
}

// isShared reports whether the line was allocated as shared data.
func (m *Machine) isShared(line uint64) bool {
	hm := m.hm.Load()
	return line < uint64(len(hm.shared)) && hm.shared[line]
}

// epochFork is the fork half of a phase's fork-join synchronization:
// everything executed before this point happens-before everything in the
// next phase, so every processor joins a fresh epoch strictly above all
// current ones. Must be called while all processors are quiescent.
func (m *Machine) epochFork() {
	var max uint64
	for _, p := range m.procs {
		if p.epoch > max {
			max = p.epoch
		}
	}
	for _, p := range m.procs {
		p.epoch = max + 1
	}
}

// maxEpoch returns the highest processor epoch; processors must be
// quiescent.
func (m *Machine) maxEpoch() uint64 {
	var max uint64
	for _, p := range m.procs {
		if p.epoch > max {
			max = p.epoch
		}
	}
	return max
}

// Run executes body once per processor, each on its own goroutine, and
// waits for all of them. It may be called repeatedly for multi-phase
// programs; logical clocks persist across calls.
func (m *Machine) Run(body func(p *Proc)) {
	m.epochFork()
	var wg sync.WaitGroup
	wg.Add(len(m.procs))
	for _, p := range m.procs {
		go func(p *Proc) {
			defer wg.Done()
			p.unpark()
			defer p.park() // park flushes the reference buffer
			body(p)
		}(p)
	}
	wg.Wait()
}

// RunOne executes body on processor 0 only (sequential setup phases).
func (m *Machine) RunOne(body func(p *Proc)) {
	m.epochFork()
	p := m.procs[0]
	p.unpark()
	defer p.park()
	body(p)
}

// StartRecording begins capturing the global reference stream; the
// resulting trace can be replayed through arbitrary cache configurations
// with memsys.Replay. Call before the parallel phase.
func (m *Machine) StartRecording() {
	m.rec = memsys.NewRecorder(m.memCfg.LineSize)
	m.setCaptureFlags()
}

// setCaptureFlags refreshes each processor's reference-capture state
// from the current memory-system/recorder attachment. Must be called
// whenever either attachment changes, while processors are quiescent.
func (m *Machine) setCaptureFlags() {
	for _, p := range m.procs {
		p.capture = m.sys != nil || m.rec != nil
		p.wantTimes = m.sys != nil
		p.evbase = uint64(p.ID) << 1
		if p.capture && p.evbuf == nil {
			p.evbuf = make([]uint64, 0, refBufCap)
		}
		if p.wantTimes && p.tmbuf == nil {
			p.tmbuf = make([]uint64, 0, refBufCap)
		}
	}
}

// flushAll drains every processor's reference buffer. Must be called
// while all processors are quiescent (between Run phases).
func (m *Machine) flushAll() {
	for _, p := range m.procs {
		p.flushRefs()
	}
}

// FinishRecording stops capture and returns the trace with the current
// home map attached. Returns nil if StartRecording was never called.
func (m *Machine) FinishRecording() *memsys.Trace {
	if m.rec == nil {
		return nil
	}
	m.flushAll()
	homes := append([]int32(nil), m.hm.Load().homes...)
	tr := m.rec.Finish(homes)
	m.rec = nil
	m.setCaptureFlags()
	return tr
}

// ResetStats restarts measurement: memory-system counters are zeroed
// (caches stay warm) and each processor's counter/clock baseline is
// captured. It must be called while all processors are quiescent — use
// Epoch from inside a parallel phase.
func (m *Machine) ResetStats() {
	m.flushAll()
	if m.sys != nil {
		m.sys.ResetStats()
	}
	if m.rec != nil {
		// The marker lands one epoch above everything recorded so far and
		// ties with the next phase's events, where markers merge first.
		m.rec.RecordResetAt(m.maxEpoch() + 1)
	}
	m.statMu.Lock()
	defer m.statMu.Unlock()
	for i, p := range m.procs {
		m.baseTime[i] = p.time
		m.base[i] = p.c
	}
}

// Epoch synchronizes all processors at b and restarts measurement, so that
// steady-state behaviour is measured "after initialization and cold start"
// (§2.2). Every processor must call it. The reset runs inside the barrier
// — executed by the last arriver while the others are still blocked — so
// no processor's counters are read while being mutated.
func (m *Machine) Epoch(p *Proc, b *Barrier) {
	b.wait(p, func(release, releaseEpoch uint64) {
		if m.sys != nil {
			m.sys.ResetStats()
		}
		if m.rec != nil {
			// Every participant flushed on arrival at an epoch below
			// releaseEpoch and departs at releaseEpoch, where markers
			// merge before events.
			m.rec.RecordResetAt(releaseEpoch)
		}
		m.statMu.Lock()
		defer m.statMu.Unlock()
		for i, q := range m.procs {
			// All clocks join to the release time on departure.
			m.baseTime[i] = release
			m.base[i] = q.c
		}
	})
}

// Stats is a measurement snapshot relative to the last ResetStats.
type Stats struct {
	Procs []Counters
	Mem   memsys.Stats // zero under CountOnly
	// Time is the PRAM execution time: the maximum logical clock advance
	// over all processors since the last ResetStats.
	Time uint64
}

// Snapshot captures current counters relative to the measurement baseline.
func (m *Machine) Snapshot() Stats {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	st := Stats{Procs: make([]Counters, len(m.procs))}
	for i, p := range m.procs {
		st.Procs[i] = p.c.sub(m.base[i])
		if d := p.time - m.baseTime[i]; d > st.Time {
			st.Time = d
		}
	}
	if m.sys != nil {
		st.Mem = m.sys.Stats()
	}
	return st
}

// CheckInvariants proxies the memory system's invariant checker (tests).
func (m *Machine) CheckInvariants() error {
	if m.sys == nil {
		return nil
	}
	return m.sys.CheckInvariants()
}

// Counters are the per-processor event counts behind Table 1.
type Counters struct {
	Instr        uint64 // total instructions (includes flops, reads, writes)
	Flops        uint64
	Reads        uint64
	Writes       uint64
	SharedReads  uint64
	SharedWrites uint64
	Barriers     uint64 // barrier episodes encountered by this processor
	Locks        uint64 // lock acquisitions
	Pauses       uint64 // flag-based synchronization waits
	SyncWait     uint64 // cycles spent waiting at synchronization points
}

func (c Counters) sub(b Counters) Counters {
	return Counters{
		Instr: c.Instr - b.Instr, Flops: c.Flops - b.Flops,
		Reads: c.Reads - b.Reads, Writes: c.Writes - b.Writes,
		SharedReads: c.SharedReads - b.SharedReads, SharedWrites: c.SharedWrites - b.SharedWrites,
		Barriers: c.Barriers - b.Barriers, Locks: c.Locks - b.Locks,
		Pauses: c.Pauses - b.Pauses, SyncWait: c.SyncWait - b.SyncWait,
	}
}

// Aggregate sums counters over processors.
func Aggregate(cs []Counters) Counters {
	var a Counters
	for _, c := range cs {
		a.Instr += c.Instr
		a.Flops += c.Flops
		a.Reads += c.Reads
		a.Writes += c.Writes
		a.SharedReads += c.SharedReads
		a.SharedWrites += c.SharedWrites
		a.Barriers += c.Barriers
		a.Locks += c.Locks
		a.Pauses += c.Pauses
		a.SyncWait += c.SyncWait
	}
	return a
}

// String summarizes a stats snapshot for debugging.
func (s Stats) String() string {
	a := Aggregate(s.Procs)
	return fmt.Sprintf("T=%d instr=%d flops=%d reads=%d writes=%d", s.Time, a.Instr, a.Flops, a.Reads, a.Writes)
}
