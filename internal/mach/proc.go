package mach

// Proc is one simulated processor. All methods must be called only from
// the goroutine running that processor's code.
type Proc struct {
	ID int

	m    *Machine
	time uint64 // logical PRAM clock
	c    Counters
}

// Time returns the processor's logical clock (cycles since machine start).
func (p *Proc) Time() uint64 { return p.time }

// Instr accounts n non-memory instructions (one cycle each under PRAM).
func (p *Proc) Instr(n int) {
	p.c.Instr += uint64(n)
	p.time += uint64(n)
	p.publish()
}

// Flop accounts n floating-point operations; flops are instructions too.
func (p *Proc) Flop(n int) {
	p.c.Flops += uint64(n)
	p.c.Instr += uint64(n)
	p.time += uint64(n)
	p.publish()
}

// Read issues a load from byte address a.
func (p *Proc) Read(a Addr) {
	p.c.Instr++
	p.c.Reads++
	p.time++
	p.publish()
	if p.m.isShared(a.Line(p.m.memCfg.LineSize)) {
		p.c.SharedReads++
	}
	if p.m.sys != nil {
		p.m.sys.AccessAt(p.ID, a, false, p.time)
	}
	if p.m.rec != nil {
		p.m.rec.Record(p.ID, a, false)
	}
}

// Write issues a store to byte address a.
func (p *Proc) Write(a Addr) {
	p.c.Instr++
	p.c.Writes++
	p.time++
	p.publish()
	if p.m.isShared(a.Line(p.m.memCfg.LineSize)) {
		p.c.SharedWrites++
	}
	if p.m.sys != nil {
		p.m.sys.AccessAt(p.ID, a, true, p.time)
	}
	if p.m.rec != nil {
		p.m.rec.Record(p.ID, a, true)
	}
}

// ReadN issues n consecutive word loads starting at a.
func (p *Proc) ReadN(a Addr, n int) {
	for i := 0; i < n; i++ {
		p.Read(a + Addr(i*WordBytes))
	}
}

// WriteN issues n consecutive word stores starting at a.
func (p *Proc) WriteN(a Addr, n int) {
	for i := 0; i < n; i++ {
		p.Write(a + Addr(i*WordBytes))
	}
}

// WordBytes re-exports the simulated word size for applications.
const WordBytes = 8

// wait advances the clock to t, accounting the difference as sync wait.
func (p *Proc) wait(t uint64) {
	if t > p.time {
		p.c.SyncWait += t - p.time
		p.time = t
		p.publish()
	}
}
