package mach

// refBufCap is the per-processor reference buffer size. Large enough to
// amortize the memory-system lock to one acquisition per 256 references,
// small enough that a buffer is a few KiB of L1-resident state.
const refBufCap = 256

// Proc is one simulated processor. All methods must be called only from
// the goroutine running that processor's code.
type Proc struct {
	ID int

	m    *Machine
	time uint64 // logical PRAM clock
	c    Counters

	// Batched reference capture (see internal/README.md, "Event ordering
	// under batched capture"). References append to evbuf/tmbuf with no
	// lock and no interface call; flushRefs drains both into the memory
	// system (one lock per batch) and the recorder (private sub-stream)
	// at buffer-full, at every synchronization point, and at phase ends.
	// epoch is the processor's Lamport-style synchronization epoch: it
	// strictly increases across every release→acquire edge the processor
	// participates in, which is what lets the recorder merge per-proc
	// sub-streams into one deterministic legal global order.
	epoch uint64
	evbuf []uint64 // packed addr<<8 | proc<<1 | write
	tmbuf []uint64 // requestor logical clock per event

	// Capture flags, maintained by Machine.setCaptureFlags whenever the
	// memory system or recorder attachment changes. capture gates the
	// whole buffering path; wantTimes gates the per-event clock stamp,
	// which only the memory system consumes (the recorder orders events
	// by sync epoch, not by clock). evbase is the processor's packed
	// proc<<1 bits, hoisted out of the per-reference encode.
	capture   bool
	wantTimes bool
	evbase    uint64
}

// Time returns the processor's logical clock (cycles since machine start).
func (p *Proc) Time() uint64 { return p.time }

// Instr accounts n non-memory instructions (one cycle each under PRAM).
func (p *Proc) Instr(n int) {
	p.c.Instr += uint64(n)
	p.time += uint64(n)
	p.publish()
}

// Flop accounts n floating-point operations; flops are instructions too.
func (p *Proc) Flop(n int) {
	p.c.Flops += uint64(n)
	p.c.Instr += uint64(n)
	p.time += uint64(n)
	p.publish()
}

// buffer appends one reference to the local buffer, flushing when full.
func (p *Proc) buffer(a Addr, write bool) {
	e := uint64(a)<<8 | p.evbase
	if write {
		e |= 1
	}
	p.evbuf = append(p.evbuf, e)
	if p.wantTimes {
		p.tmbuf = append(p.tmbuf, p.time)
	}
	if len(p.evbuf) == refBufCap {
		p.flushRefs()
	}
}

// flushRefs drains the reference buffer into the memory system and the
// recorder. Must be called (directly or via a sync point) before any
// epoch change — recorded events are stamped with the epoch at flush
// time — and before any code reads memory-system statistics.
func (p *Proc) flushRefs() {
	if len(p.evbuf) == 0 {
		return
	}
	if p.m.sys != nil {
		p.m.sys.AccessBatch(p.ID, p.evbuf, p.tmbuf)
	}
	if rec := p.m.rec; rec != nil {
		// The recorder takes ownership of the batch (zero-copy chunk);
		// start a fresh buffer instead of truncating.
		rec.RecordBatch(p.ID, p.epoch, p.evbuf)
		p.evbuf = make([]uint64, 0, refBufCap)
	} else {
		p.evbuf = p.evbuf[:0]
	}
	p.tmbuf = p.tmbuf[:0]
}

// syncRelease flushes the reference buffer and returns the processor's
// epoch for publication into a synchronization object (lock release,
// flag set, barrier arrival). Everything the processor did so far is
// stamped at or below the returned epoch.
func (p *Proc) syncRelease() uint64 {
	p.flushRefs()
	return p.epoch
}

// syncAcquire flushes the reference buffer and joins the epoch published
// by the synchronization object the processor just acquired: subsequent
// events are stamped strictly after every event that happened before the
// matching release.
func (p *Proc) syncAcquire(published uint64) {
	p.flushRefs()
	if published+1 > p.epoch {
		p.epoch = published + 1
	}
}

// Read issues a load from byte address a.
func (p *Proc) Read(a Addr) {
	p.c.Instr++
	p.c.Reads++
	p.time++
	p.publish()
	if p.m.isShared(a.Line(p.m.memCfg.LineSize)) {
		p.c.SharedReads++
	}
	if p.capture {
		p.buffer(a, false)
	}
}

// Write issues a store to byte address a.
func (p *Proc) Write(a Addr) {
	p.c.Instr++
	p.c.Writes++
	p.time++
	p.publish()
	if p.m.isShared(a.Line(p.m.memCfg.LineSize)) {
		p.c.SharedWrites++
	}
	if p.capture {
		p.buffer(a, true)
	}
}

// ReadN issues n consecutive word loads starting at a.
func (p *Proc) ReadN(a Addr, n int) {
	for i := 0; i < n; i++ {
		p.Read(a + Addr(i*WordBytes))
	}
}

// WriteN issues n consecutive word stores starting at a.
func (p *Proc) WriteN(a Addr, n int) {
	for i := 0; i < n; i++ {
		p.Write(a + Addr(i*WordBytes))
	}
}

// WordBytes re-exports the simulated word size for applications.
const WordBytes = 8

// wait advances the clock to t, accounting the difference as sync wait.
func (p *Proc) wait(t uint64) {
	if t > p.time {
		p.c.SyncWait += t - p.time
		p.time = t
		p.publish()
	}
}
