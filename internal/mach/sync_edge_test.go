package mach

import (
	"sync"
	"testing"
)

func edgeMachine(t *testing.T, procs int) *Machine {
	t.Helper()
	return MustNew(Config{Procs: procs, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
}

// TestBarrierReuse drives one barrier through many episodes: every
// episode must join all clocks to the per-episode maximum, and the
// generation logic must keep episodes strictly separated even when the
// same processors race straight back into the next Wait.
func TestBarrierReuse(t *testing.T) {
	const episodes = 5
	m := edgeMachine(t, 4)
	b := m.NewBarrier()
	var mu sync.Mutex
	times := make([][]uint64, episodes) // episode -> clock of each proc after Wait
	m.Run(func(p *Proc) {
		for e := 0; e < episodes; e++ {
			// Unequal work per proc and per episode: the release time
			// must always be the slowest arriver's clock.
			p.Instr((p.ID + 1) * (e + 1) * 10)
			b.Wait(p)
			mu.Lock()
			times[e] = append(times[e], p.Time())
			mu.Unlock()
		}
	})
	var prev uint64
	for e := 0; e < episodes; e++ {
		if len(times[e]) != m.Procs() {
			t.Fatalf("episode %d: %d arrivals, want %d", e, len(times[e]), m.Procs())
		}
		for _, tm := range times[e] {
			if tm != times[e][0] {
				t.Fatalf("episode %d: clocks diverge after barrier: %v", e, times[e])
			}
		}
		if times[e][0] <= prev {
			t.Fatalf("episode %d: release time %d did not advance past %d", e, times[e][0], prev)
		}
		prev = times[e][0]
	}
	// Barrier episodes are counted once per processor per episode.
	for i, c := range m.Snapshot().Procs {
		if c.Barriers != episodes {
			t.Fatalf("proc %d: %d barrier episodes, want %d", i, c.Barriers, episodes)
		}
	}
}

// TestBarrierZeroParticipantsPanics: a zero-participant barrier could
// never release, so constructing one must fail loudly.
func TestBarrierZeroParticipantsPanics(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBarrier(%d) did not panic", n)
				}
			}()
			NewBarrier(n)
		}()
	}
}

// TestZeroProcMachineRejected: a machine with a negative processor
// count must be rejected at construction (zero takes the paper default).
func TestZeroProcMachineRejected(t *testing.T) {
	if _, err := New(Config{Procs: -1, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly}); err == nil {
		t.Fatal("New accepted Procs = -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on Procs = -1")
		}
	}()
	MustNew(Config{Procs: -1, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
}

// TestLockZeroValueSerialization: the zero Lock is usable, and an
// acquirer behind the previous critical section's release time is
// dragged forward with the delay accounted as sync wait.
func TestLockZeroValueSerialization(t *testing.T) {
	m := edgeMachine(t, 2)
	p0, p1 := m.procs[0], m.procs[1]
	var l Lock

	p0.time = 100
	l.Acquire(p0)
	l.Release(p0)

	p1.time = 10
	l.Acquire(p1)
	if p1.time != 100 {
		t.Fatalf("late acquirer clock = %d, want 100 (previous release)", p1.time)
	}
	if p1.c.SyncWait != 90 {
		t.Fatalf("late acquirer SyncWait = %d, want 90", p1.c.SyncWait)
	}
	l.Release(p1)

	// An acquirer already past the release time is not delayed.
	p0.time = 500
	l.Acquire(p0)
	if p0.time != 500 {
		t.Fatalf("ahead acquirer clock = %d, want 500", p0.time)
	}
	l.Release(p0)
	if p0.c.Locks != 2 || p1.c.Locks != 1 {
		t.Fatalf("lock counts = %d/%d, want 2/1", p0.c.Locks, p1.c.Locks)
	}
}

// TestFlagSetTwiceKeepsFirstTime: Set is one-shot — a second Set must
// not move the release time, and waiters join to the first setter.
func TestFlagSetTwiceKeepsFirstTime(t *testing.T) {
	m := edgeMachine(t, 3)
	p0, p1, p2 := m.procs[0], m.procs[1], m.procs[2]
	var f Flag

	p0.time = 50
	f.Set(p0)
	p1.time = 70
	f.Set(p1) // no-op
	if !f.IsSet() {
		t.Fatal("flag not set")
	}

	p2.time = 10
	f.Wait(p2)
	if p2.time != 50 {
		t.Fatalf("waiter clock = %d, want 50 (first Set)", p2.time)
	}
	if p2.c.Pauses != 1 {
		t.Fatalf("waiter Pauses = %d, want 1", p2.c.Pauses)
	}

	// A waiter already ahead of the set time keeps its clock.
	p1.time = 90
	f.Wait(p1)
	if p1.time != 90 {
		t.Fatalf("ahead waiter clock = %d, want 90", p1.time)
	}
}

// TestEpochRestartsMeasurementWindow: Epoch inside a parallel phase
// pauses accounting at the barrier and resumes it from the release
// time — work before the epoch must vanish from the snapshot, work
// after must be measured exactly.
func TestEpochRestartsMeasurementWindow(t *testing.T) {
	m := edgeMachine(t, 4)
	b := m.NewBarrier()
	m.Run(func(p *Proc) {
		p.Instr((p.ID + 1) * 1000) // cold-start work, dropped by the epoch
		m.Epoch(p, b)
		p.Instr(10) // steady-state work, measured
	})
	st := m.Snapshot()
	if st.Time != 10 {
		t.Fatalf("post-epoch Time = %d, want 10", st.Time)
	}
	for i, c := range st.Procs {
		if c.Instr != 10 {
			t.Fatalf("proc %d post-epoch Instr = %d, want 10", i, c.Instr)
		}
		if c.Barriers != 0 {
			t.Fatalf("proc %d: epoch barrier leaked into the measured window (Barriers=%d)", i, c.Barriers)
		}
	}
}

// TestResetStatsBetweenPhases: ResetStats at quiescence is the
// inter-phase form of the measurement window pause/resume.
func TestResetStatsBetweenPhases(t *testing.T) {
	m := edgeMachine(t, 2)
	m.Run(func(p *Proc) { p.Instr(123) })
	m.ResetStats()
	if st := m.Snapshot(); st.Time != 0 || Aggregate(st.Procs).Instr != 0 {
		t.Fatalf("snapshot after ResetStats not empty: %+v", st)
	}
	m.Run(func(p *Proc) { p.Instr(7) })
	st := m.Snapshot()
	if st.Time != 7 {
		t.Fatalf("second-phase Time = %d, want 7", st.Time)
	}
	if got := Aggregate(st.Procs).Instr; got != 14 {
		t.Fatalf("second-phase total Instr = %d, want 14", got)
	}
}

// TestSnapshotMonotonicAcrossEpochs: logical clocks persist across
// epochs (only the measurement baseline moves), so a second epoch in
// the same run measures only its own slice.
func TestSnapshotMonotonicAcrossEpochs(t *testing.T) {
	m := edgeMachine(t, 2)
	b := m.NewBarrier()
	m.Run(func(p *Proc) {
		p.Instr(100)
		m.Epoch(p, b)
		p.Instr(20)
		m.Epoch(p, b)
		p.Instr(3)
	})
	if st := m.Snapshot(); st.Time != 3 {
		t.Fatalf("after two epochs Time = %d, want 3", st.Time)
	}
}
